// Package faults injects measurement faults into the analysis inputs —
// the sample trace, the PBO profile, and the field mapping file — so the
// pipeline's graceful-degradation behaviour can be exercised and measured.
//
// The paper's CycleLoss side rests on PMU measurement it admits is
// imperfect: §4.2 notes the ITC is synchronized only to "within a few
// ticks", that samples are lost on heavily loaded machines, and that the
// sampling frequency is capped; §4.3 argues the concurrency data is stable
// enough to use anyway. The injectors here model those failure modes past
// the point the paper measured — unbounded per-CPU clock drift, bursty
// sample loss, CPU misattribution, duplicated and reordered samples,
// truncated traces, stale FMF lines, corrupted profile counts — each
// deterministic in a seed and parameterized by a severity in [0, 1].
//
// Severity 0 is always the identity: applying a zero-severity spec returns
// the input unchanged, so a severity sweep's first point reproduces the
// clean pipeline exactly.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"structlayout/internal/fieldmap"
	"structlayout/internal/ir"
	"structlayout/internal/profile"
	"structlayout/internal/sampling"
)

// Kind names one injector.
type Kind string

const (
	// Drift applies unbounded per-CPU clock skew: a fixed offset plus a
	// rate error, both growing with severity far beyond the paper's "few
	// ticks".
	Drift Kind = "drift"
	// Loss drops samples in bursts (two-state Markov model), the way a
	// loaded collection machine loses them.
	Loss Kind = "loss"
	// Misattr reassigns samples to a uniformly random CPU.
	Misattr Kind = "misattr"
	// Dup duplicates samples, as a retransmitting collector would.
	Dup Kind = "dup"
	// Reorder shuffles samples within a bounded window.
	Reorder Kind = "reorder"
	// Truncate cuts off the trailing part of the trace.
	Truncate Kind = "truncate"
	// FMFDrop removes lines from the field mapping file (stale FMF).
	FMFDrop Kind = "fmfdrop"
	// ProfCorrupt corrupts profile counts: zeroed, wildly scaled, or (at
	// high severity) negated.
	ProfCorrupt Kind = "profcorrupt"
)

// Kinds lists every injector in canonical order.
var Kinds = []Kind{Drift, Loss, Misattr, Dup, Reorder, Truncate, FMFDrop, ProfCorrupt}

// Spec is a composed fault configuration: per-kind severities plus the
// seed making every injection deterministic.
type Spec struct {
	// Seed drives all injector randomness.
	Seed int64
	// Severity maps each active kind to its severity in [0, 1]. Absent or
	// zero-severity kinds inject nothing.
	Severity map[Kind]float64
}

// New returns an empty (identity) spec with the given seed.
func New(seed int64) *Spec {
	return &Spec{Seed: seed, Severity: make(map[Kind]float64)}
}

// ParseSpec parses the injector grammar: a comma-separated list of
// `kind=severity` terms with optional `seed=N`, e.g.
//
//	drift=0.5,loss=0.3,seed=7
//
// `all=S` sets every kind to severity S. The literal "none" (or an empty
// string) is the identity spec. Severities must lie in [0, 1].
func ParseSpec(s string) (*Spec, error) {
	spec := New(1)
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return spec, nil
	}
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		eq := strings.IndexByte(term, '=')
		if eq < 0 {
			return nil, fmt.Errorf("faults: term %q: want kind=severity", term)
		}
		key, val := strings.TrimSpace(term[:eq]), strings.TrimSpace(term[eq+1:])
		if key == "seed" {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", val)
			}
			spec.Seed = n
			continue
		}
		sev, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: term %q: bad severity %q", term, val)
		}
		if sev < 0 || sev > 1 {
			return nil, fmt.Errorf("faults: term %q: severity %v out of [0,1]", term, sev)
		}
		if key == "all" {
			for _, k := range Kinds {
				spec.Severity[k] = sev
			}
			continue
		}
		if !validKind(Kind(key)) {
			return nil, fmt.Errorf("faults: unknown kind %q (want %s, all or seed)", key, kindList())
		}
		spec.Severity[Kind(key)] = sev
	}
	return spec, nil
}

func validKind(k Kind) bool {
	for _, known := range Kinds {
		if k == known {
			return true
		}
	}
	return false
}

func kindList() string {
	names := make([]string, len(Kinds))
	for i, k := range Kinds {
		names[i] = string(k)
	}
	return strings.Join(names, "/")
}

// String renders the spec in canonical (re-parseable) form.
func (s *Spec) String() string {
	var terms []string
	for _, k := range Kinds {
		if sev := s.Severity[k]; sev > 0 {
			terms = append(terms, fmt.Sprintf("%s=%.3g", k, sev))
		}
	}
	if len(terms) == 0 {
		return "none"
	}
	terms = append(terms, fmt.Sprintf("seed=%d", s.Seed))
	return strings.Join(terms, ",")
}

// IsZero reports whether the spec injects nothing.
func (s *Spec) IsZero() bool {
	for _, sev := range s.Severity {
		if sev > 0 {
			return false
		}
	}
	return true
}

// Scale returns a copy with every severity multiplied by f (clamped to
// [0, 1]). Scaling by 0 yields the identity spec; sweeps use this to walk
// one shape of composed faults through increasing severity.
func (s *Spec) Scale(f float64) *Spec {
	out := New(s.Seed)
	for k, sev := range s.Severity {
		v := sev * f
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		if v > 0 {
			out.Severity[k] = v
		}
	}
	return out
}

// rng returns the injector-private random stream for one kind. Each kind
// owns a stream so severities compose independently: changing one kind's
// severity never perturbs another kind's decisions.
func (s *Spec) rng(k Kind) *rand.Rand {
	idx := int64(0)
	for i, known := range Kinds {
		if k == known {
			idx = int64(i)
		}
	}
	return rand.New(rand.NewSource(s.Seed*1_000_003 + idx*0x9E3779B9 + 7))
}

// sev returns the clamped severity of a kind.
func (s *Spec) sev(k Kind) float64 {
	v := s.Severity[k]
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ApplyTrace returns a faulted copy of the trace. The input is never
// mutated. Injector order is fixed: drift, misattribution, duplication,
// loss, reordering, truncation — the order a real corruption stack would
// compose in (clock skew happens at collection, truncation at storage).
func (s *Spec) ApplyTrace(t *sampling.Trace) *sampling.Trace {
	if t == nil || s.IsZero() {
		return t
	}
	out := &sampling.Trace{
		Samples:        append([]sampling.Sample(nil), t.Samples...),
		IntervalCycles: t.IntervalCycles,
		NumCPUs:        t.NumCPUs,
	}
	s.injectDrift(out)
	s.injectMisattr(out)
	out.Samples = s.injectDup(out.Samples)
	out.Samples = s.injectLoss(out.Samples)
	s.injectReorder(out.Samples)
	out.Samples = s.injectTruncate(out.Samples)
	return out
}

// injectDrift applies a per-CPU offset plus rate error. At severity 1 the
// offset reaches ±20 sampling intervals and the rate error ±20% — far past
// the "few ticks" the paper's ITC synchronization guarantees, enough to
// misalign concurrency slices across CPUs.
func (s *Spec) injectDrift(t *sampling.Trace) {
	sev := s.sev(Drift)
	if sev == 0 || t.NumCPUs <= 0 {
		return
	}
	rng := s.rng(Drift)
	offset := make([]float64, t.NumCPUs)
	rate := make([]float64, t.NumCPUs)
	for cpu := range offset {
		offset[cpu] = (2*rng.Float64() - 1) * sev * 20 * float64(t.IntervalCycles)
		rate[cpu] = (2*rng.Float64() - 1) * sev * 0.2
	}
	for i, smp := range t.Samples {
		skewed := float64(smp.ITC) + offset[smp.CPU] + rate[smp.CPU]*float64(smp.ITC)
		t.Samples[i].ITC = int64(skewed)
	}
}

// injectMisattr reassigns each sample, with probability severity, to a
// uniformly random CPU.
func (s *Spec) injectMisattr(t *sampling.Trace) {
	sev := s.sev(Misattr)
	if sev == 0 || t.NumCPUs <= 0 {
		return
	}
	rng := s.rng(Misattr)
	for i := range t.Samples {
		if rng.Float64() < sev {
			t.Samples[i].CPU = rng.Intn(t.NumCPUs)
		}
	}
}

// injectDup duplicates each sample with probability severity/2 (a fully
// duplicated trace doubles counts without adding information, so even
// severity 1 duplicates only half the samples).
func (s *Spec) injectDup(samples []sampling.Sample) []sampling.Sample {
	sev := s.sev(Dup)
	if sev == 0 {
		return samples
	}
	rng := s.rng(Dup)
	out := make([]sampling.Sample, 0, len(samples))
	for _, smp := range samples {
		out = append(out, smp)
		if rng.Float64() < sev/2 {
			out = append(out, smp)
		}
	}
	return out
}

// injectLoss drops samples in bursts: a two-state Markov chain whose
// stationary drop fraction equals the severity (capped at 0.95) and whose
// bursts last ~20 samples, the shape of buffer-overflow loss on a loaded
// collection machine.
func (s *Spec) injectLoss(samples []sampling.Sample) []sampling.Sample {
	sev := s.sev(Loss)
	if sev == 0 {
		return samples
	}
	drop := sev
	if drop > 0.95 {
		drop = 0.95
	}
	const meanBurst = 20.0
	pExit := 1.0 / meanBurst
	pEnter := drop / ((1 - drop) * meanBurst)
	if pEnter > 1 {
		pEnter = 1
	}
	rng := s.rng(Loss)
	out := make([]sampling.Sample, 0, len(samples))
	dropping := false
	for _, smp := range samples {
		if dropping {
			if rng.Float64() < pExit {
				dropping = false
			}
		} else if rng.Float64() < pEnter {
			dropping = true
		}
		if !dropping {
			out = append(out, smp)
		}
	}
	return out
}

// injectReorder performs severity-proportional swaps of samples within a
// 64-entry window, modelling out-of-order delivery from per-CPU buffers.
func (s *Spec) injectReorder(samples []sampling.Sample) {
	sev := s.sev(Reorder)
	if sev == 0 || len(samples) < 2 {
		return
	}
	rng := s.rng(Reorder)
	swaps := int(sev * float64(len(samples)) / 2)
	for n := 0; n < swaps; n++ {
		i := rng.Intn(len(samples))
		lo := i - 64
		if lo < 0 {
			lo = 0
		}
		j := lo + rng.Intn(i-lo+1)
		samples[i], samples[j] = samples[j], samples[i]
	}
}

// injectTruncate keeps the leading (1 - 0.9*severity) fraction of the
// samples: even severity 1 leaves a 10% stub, the shape of a collection
// run killed early.
func (s *Spec) injectTruncate(samples []sampling.Sample) []sampling.Sample {
	sev := s.sev(Truncate)
	if sev == 0 {
		return samples
	}
	keep := int(float64(len(samples))*(1-0.9*sev) + 0.5)
	if keep < 0 {
		keep = 0
	}
	return samples[:keep]
}

// ApplyProfile returns a faulted copy of the profile; the input is never
// mutated. With probability severity each block count is corrupted:
// zeroed, scaled by up to 4x, or (in one corruption out of five) negated —
// the last being structurally invalid input the pipeline must sanitize.
func (s *Spec) ApplyProfile(pf *profile.Profile) *profile.Profile {
	sev := s.sev(ProfCorrupt)
	if pf == nil || sev == 0 {
		return pf
	}
	out := &profile.Profile{
		ProgramName: pf.ProgramName,
		Blocks:      append([]float64(nil), pf.Blocks...),
		LoopIters:   append([]float64(nil), pf.LoopIters...),
		LoopEntries: append([]float64(nil), pf.LoopEntries...),
	}
	rng := s.rng(ProfCorrupt)
	corrupt := func(v float64) float64 {
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return -v
		default:
			return v * rng.Float64() * 4
		}
	}
	for i, v := range out.Blocks {
		if rng.Float64() < sev {
			out.Blocks[i] = corrupt(v)
		}
	}
	for i, v := range out.LoopIters {
		if rng.Float64() < sev {
			out.LoopIters[i] = corrupt(v)
		}
	}
	return out
}

// ApplyFMF returns a faulted copy of the field mapping file with a
// severity-proportional fraction of its lines missing (a stale FMF from an
// older build of the program). The input is never mutated.
func (s *Spec) ApplyFMF(f *fieldmap.File, p *ir.Program) *fieldmap.File {
	sev := s.sev(FMFDrop)
	if f == nil || sev == 0 {
		return f
	}
	// Decide drops over a deterministically ordered line list: map
	// iteration order must not leak into the injection.
	lines := make([]ir.SourceLine, 0, len(f.Lines))
	for loc := range f.Lines {
		lines = append(lines, loc)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].Less(lines[j]) })
	rng := s.rng(FMFDrop)
	dropped := make(map[ir.SourceLine]bool)
	for _, loc := range lines {
		if rng.Float64() < sev {
			dropped[loc] = true
		}
	}
	return f.Filter(p, func(loc ir.SourceLine) bool { return !dropped[loc] })
}

package faults

import (
	"testing"

	"structlayout/internal/fieldmap"
	"structlayout/internal/ir"
	"structlayout/internal/profile"
	"structlayout/internal/sampling"
)

// testTrace builds a clean, monotone per-CPU trace.
func testTrace(nCPU, perCPU int) *sampling.Trace {
	t := &sampling.Trace{IntervalCycles: 100, NumCPUs: nCPU}
	for i := 0; i < perCPU; i++ {
		for cpu := 0; cpu < nCPU; cpu++ {
			t.Samples = append(t.Samples, sampling.Sample{
				CPU:   cpu,
				ITC:   int64((i + 1) * 100),
				Block: ir.BlockID(i % 3),
			})
		}
	}
	return t
}

func testProgram(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram("faults")
	s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"), ir.I64("c"))
	p.AddStruct(s)
	for _, proc := range []string{"f", "g", "h", "k"} {
		b := p.NewProc(proc)
		b.Read(s, "a", ir.Shared(0))
		b.Write(s, "b", ir.Shared(0))
		b.Loop(4, func(b *ir.Builder) {
			b.Read(s, "b", ir.Shared(0))
			b.Write(s, "c", ir.Shared(0))
		})
		b.Done()
	}
	p.MustFinalize()
	return p
}

func testProfile(n int) *profile.Profile {
	pf := &profile.Profile{ProgramName: "faults", Blocks: make([]float64, n)}
	for i := range pf.Blocks {
		pf.Blocks[i] = float64(10 * (i + 1))
	}
	return pf
}

func sameSamples(a, b []sampling.Sample) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
		check   func(*Spec) bool
	}{
		{"", false, func(s *Spec) bool { return s.IsZero() }},
		{"none", false, func(s *Spec) bool { return s.IsZero() }},
		{"drift=0.5", false, func(s *Spec) bool { return s.Severity[Drift] == 0.5 && !s.IsZero() }},
		{"drift=0.5,loss=0.3,seed=7", false, func(s *Spec) bool {
			return s.Severity[Drift] == 0.5 && s.Severity[Loss] == 0.3 && s.Seed == 7
		}},
		{"all=0.25", false, func(s *Spec) bool {
			for _, k := range Kinds {
				if s.Severity[k] != 0.25 {
					return false
				}
			}
			return true
		}},
		{" drift = 0.5 , seed = 3 ", false, func(s *Spec) bool { return s.Severity[Drift] == 0.5 && s.Seed == 3 }},
		{"drift", true, nil},
		{"drift=", true, nil},
		{"drift=x", true, nil},
		{"drift=1.5", true, nil},
		{"drift=-0.1", true, nil},
		{"bogus=0.5", true, nil},
		{"seed=abc", true, nil},
	}
	for _, c := range cases {
		spec, err := ParseSpec(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %v", c.in, spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if !c.check(spec) {
			t.Errorf("ParseSpec(%q): unexpected spec %v", c.in, spec)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	spec, err := ParseSpec("drift=0.5,loss=0.25,fmfdrop=0.125,seed=99")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", spec.String(), err)
	}
	if again.Seed != spec.Seed || len(again.Severity) != len(spec.Severity) {
		t.Fatalf("round trip changed spec: %q vs %q", spec, again)
	}
	for k, v := range spec.Severity {
		if again.Severity[k] != v {
			t.Fatalf("round trip changed %s: %v vs %v", k, v, again.Severity[k])
		}
	}
	if New(1).String() != "none" {
		t.Fatalf("identity spec renders %q", New(1).String())
	}
}

// Severity 0 must be the exact identity on every input type: the robustness
// sweep's first point has to reproduce the clean pipeline bit-for-bit.
func TestZeroSeverityIsIdentity(t *testing.T) {
	spec := New(42)
	tr := testTrace(4, 50)
	if got := spec.ApplyTrace(tr); got != tr {
		t.Fatal("zero-severity ApplyTrace did not return its input")
	}
	pf := testProfile(8)
	if got := spec.ApplyProfile(pf); got != pf {
		t.Fatal("zero-severity ApplyProfile did not return its input")
	}
	p := testProgram(t)
	f := fieldmap.Build(p)
	if got := spec.ApplyFMF(f, p); got != f {
		t.Fatal("zero-severity ApplyFMF did not return its input")
	}
	if got := spec.Scale(0.5).ApplyTrace(tr); got != tr {
		t.Fatal("scaled identity spec is not the identity")
	}
}

func TestApplyTraceDeterministicAndNonMutating(t *testing.T) {
	spec, err := ParseSpec("all=0.5,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(4, 100)
	before := append([]sampling.Sample(nil), tr.Samples...)
	a := spec.ApplyTrace(tr)
	b := spec.ApplyTrace(tr)
	if !sameSamples(tr.Samples, before) {
		t.Fatal("ApplyTrace mutated its input")
	}
	if !sameSamples(a.Samples, b.Samples) {
		t.Fatal("same spec, same input, different output")
	}
	if sameSamples(a.Samples, before) {
		t.Fatal("severity 0.5 left the trace untouched")
	}
}

func TestIndependentStreams(t *testing.T) {
	// Adding a second kind must not change the first kind's decisions in a
	// way that severity alone does not: loss at 0.5 drops the same samples
	// whether or not drift is also active (drift changes ITCs, not the
	// drop pattern).
	tr := testTrace(2, 200)
	lossOnly, _ := ParseSpec("loss=0.5,seed=5")
	both, _ := ParseSpec("loss=0.5,drift=1,seed=5")
	a := lossOnly.ApplyTrace(tr)
	b := both.ApplyTrace(tr)
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("drift changed loss decisions: %d vs %d samples", len(a.Samples), len(b.Samples))
	}
}

func TestLossReducesSamples(t *testing.T) {
	tr := testTrace(4, 200)
	for _, sev := range []float64{0.25, 0.5, 0.9} {
		spec := New(3)
		spec.Severity[Loss] = sev
		out := spec.ApplyTrace(tr)
		if len(out.Samples) >= len(tr.Samples) {
			t.Fatalf("loss %v did not drop samples (%d -> %d)", sev, len(tr.Samples), len(out.Samples))
		}
		frac := 1 - float64(len(out.Samples))/float64(len(tr.Samples))
		if frac < sev/4 || frac > sev*2.5 {
			t.Errorf("loss %v dropped fraction %.2f, far from target", sev, frac)
		}
	}
}

func TestMisattrStaysInRange(t *testing.T) {
	tr := testTrace(4, 100)
	spec := New(9)
	spec.Severity[Misattr] = 1
	out := spec.ApplyTrace(tr)
	if len(out.Samples) != len(tr.Samples) {
		t.Fatal("misattribution changed the sample count")
	}
	moved := 0
	for i, smp := range out.Samples {
		if smp.CPU < 0 || smp.CPU >= tr.NumCPUs {
			t.Fatalf("sample %d misattributed to CPU %d outside [0,%d)", i, smp.CPU, tr.NumCPUs)
		}
		if smp.CPU != tr.Samples[i].CPU {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("severity-1 misattribution moved nothing")
	}
}

func TestDupGrowsTrace(t *testing.T) {
	tr := testTrace(2, 200)
	spec := New(7)
	spec.Severity[Dup] = 1
	out := spec.ApplyTrace(tr)
	if len(out.Samples) <= len(tr.Samples) {
		t.Fatalf("dup added nothing (%d -> %d)", len(tr.Samples), len(out.Samples))
	}
	if len(out.Samples) > 2*len(tr.Samples) {
		t.Fatalf("dup more than doubled the trace (%d -> %d)", len(tr.Samples), len(out.Samples))
	}
}

func TestTruncateKeepsPrefix(t *testing.T) {
	tr := testTrace(1, 100)
	spec := New(5)
	spec.Severity[Truncate] = 1
	out := spec.ApplyTrace(tr)
	if len(out.Samples) != 10 {
		t.Fatalf("severity-1 truncation kept %d samples, want the 10%% stub", len(out.Samples))
	}
	if !sameSamples(out.Samples, tr.Samples[:10]) {
		t.Fatal("truncation did not keep a prefix")
	}
}

func TestDriftSkewsPerCPU(t *testing.T) {
	tr := testTrace(4, 50)
	spec := New(21)
	spec.Severity[Drift] = 1
	out := spec.ApplyTrace(tr)
	changed := 0
	for i := range out.Samples {
		if out.Samples[i].ITC != tr.Samples[i].ITC {
			changed++
		}
		if out.Samples[i].CPU != tr.Samples[i].CPU || out.Samples[i].Block != tr.Samples[i].Block {
			t.Fatal("drift must only touch timestamps")
		}
	}
	if changed == 0 {
		t.Fatal("severity-1 drift changed no timestamps")
	}
}

func TestReorderPreservesMultiset(t *testing.T) {
	tr := testTrace(4, 100)
	spec := New(13)
	spec.Severity[Reorder] = 1
	out := spec.ApplyTrace(tr)
	if len(out.Samples) != len(tr.Samples) {
		t.Fatal("reorder changed the sample count")
	}
	count := make(map[sampling.Sample]int)
	for _, smp := range tr.Samples {
		count[smp]++
	}
	for _, smp := range out.Samples {
		count[smp]--
	}
	for smp, n := range count {
		if n != 0 {
			t.Fatalf("reorder changed sample content: %+v off by %d", smp, n)
		}
	}
	if sameSamples(out.Samples, tr.Samples) {
		t.Fatal("severity-1 reorder left the order unchanged")
	}
}

func TestApplyProfileCorruptsCopy(t *testing.T) {
	pf := testProfile(32)
	spec := New(17)
	spec.Severity[ProfCorrupt] = 1
	out := spec.ApplyProfile(pf)
	for i, v := range pf.Blocks {
		if v != float64(10*(i+1)) {
			t.Fatal("ApplyProfile mutated its input")
		}
	}
	changed := 0
	for i := range out.Blocks {
		if out.Blocks[i] != pf.Blocks[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("severity-1 corruption changed no counts")
	}
	again := spec.ApplyProfile(pf)
	for i := range out.Blocks {
		if out.Blocks[i] != again.Blocks[i] {
			t.Fatal("profile corruption is not deterministic")
		}
	}
}

func TestApplyFMFDropsLines(t *testing.T) {
	p := testProgram(t)
	f := fieldmap.Build(p)
	if len(f.Lines) == 0 {
		t.Fatal("test program produced an empty FMF")
	}
	spec := New(23)
	spec.Severity[FMFDrop] = 1
	out := spec.ApplyFMF(f, p)
	if len(out.Lines) != 0 {
		t.Fatalf("severity-1 fmfdrop kept %d lines", len(out.Lines))
	}
	if len(f.Lines) == 0 {
		t.Fatal("ApplyFMF mutated its input")
	}

	spec.Severity[FMFDrop] = 0.5
	half := spec.ApplyFMF(f, p)
	if len(half.Lines) >= len(f.Lines) {
		t.Fatalf("severity-0.5 fmfdrop kept all %d lines", len(half.Lines))
	}
	again := spec.ApplyFMF(f, p)
	if len(again.Lines) != len(half.Lines) {
		t.Fatal("fmfdrop is not deterministic")
	}
}

func TestScaleClamps(t *testing.T) {
	spec := New(1)
	spec.Severity[Drift] = 0.6
	spec.Severity[Loss] = 0.2
	up := spec.Scale(10)
	if up.Severity[Drift] != 1 || up.Severity[Loss] != 1 {
		t.Fatalf("Scale(10) did not clamp to 1: %v", up.Severity)
	}
	down := spec.Scale(0.5)
	if down.Severity[Drift] != 0.3 || down.Severity[Loss] != 0.1 {
		t.Fatalf("Scale(0.5) wrong: %v", down.Severity)
	}
	if !spec.Scale(0).IsZero() {
		t.Fatal("Scale(0) is not the identity")
	}
	if up.Seed != spec.Seed {
		t.Fatal("Scale changed the seed")
	}
}

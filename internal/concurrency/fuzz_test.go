package concurrency

import (
	"bytes"
	"testing"
)

// FuzzParseText checks the concurrency-map parser never panics.
func FuzzParseText(f *testing.F) {
	f.Add("f.c:1 f.c:2 3.5\n")
	f.Add("# c\nf.c:1 f.c:1 0\n")
	f.Add("x y z")
	f.Add("f.c:1 f.c:2")
	f.Fuzz(func(t *testing.T, src string) {
		p := buildTinyProgram(t)
		_, _ = ParseText(bytes.NewReader([]byte(src)), p)
	})
}

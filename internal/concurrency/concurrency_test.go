package concurrency

import (
	"bytes"
	"math"
	"testing"

	"structlayout/internal/ir"
	"structlayout/internal/sampling"
)

// syntheticTrace builds a trace with explicit samples.
func syntheticTrace(numCPUs int, samples []sampling.Sample) *sampling.Trace {
	return &sampling.Trace{Samples: samples, IntervalCycles: 1, NumCPUs: numCPUs}
}

func mkSamples(slice int64, sliceCycles int64, cpu int, block ir.BlockID, n int) []sampling.Sample {
	out := make([]sampling.Sample, n)
	for i := range out {
		out[i] = sampling.Sample{CPU: cpu, Block: block, ITC: slice*sliceCycles + int64(i)}
	}
	return out
}

func TestCCHandComputed(t *testing.T) {
	const sliceCycles = 1000
	// Slice 0: CPU0 runs B0 5 times, CPU1 runs B1 3 times.
	var samples []sampling.Sample
	samples = append(samples, mkSamples(0, sliceCycles, 0, 0, 5)...)
	samples = append(samples, mkSamples(0, sliceCycles, 1, 1, 3)...)
	// Slice 1: CPU0 runs B0 2 times, CPU1 runs B1 7 times.
	samples = append(samples, mkSamples(1, sliceCycles, 0, 0, 2)...)
	samples = append(samples, mkSamples(1, sliceCycles, 1, 1, 7)...)

	m, err := Compute(syntheticTrace(2, samples), Options{SliceCycles: sliceCycles})
	if err != nil {
		t.Fatal(err)
	}
	// CC(B0,B1) = min(5,3) + min(2,7) = 3 + 2 = 5.
	if got := m.Value(0, 1); got != 5 {
		t.Fatalf("CC(B0,B1) = %v, want 5", got)
	}
	// Same-block concurrency is zero here (each block runs on one CPU).
	if got := m.Value(0, 0); got != 0 {
		t.Fatalf("CC(B0,B0) = %v, want 0", got)
	}
}

func TestCCSameProcessorExcluded(t *testing.T) {
	const sliceCycles = 1000
	// One CPU alternates between B0 and B1: no cross-processor concurrency.
	var samples []sampling.Sample
	samples = append(samples, mkSamples(0, sliceCycles, 0, 0, 4)...)
	samples = append(samples, mkSamples(0, sliceCycles, 0, 1, 4)...)
	m, err := Compute(syntheticTrace(2, samples), Options{SliceCycles: sliceCycles})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Value(0, 1); got != 0 {
		t.Fatalf("CC = %v, want 0 for single-processor execution", got)
	}
}

func TestCCSameBlockTwoCPUs(t *testing.T) {
	const sliceCycles = 1000
	var samples []sampling.Sample
	samples = append(samples, mkSamples(0, sliceCycles, 0, 7, 4)...)
	samples = append(samples, mkSamples(0, sliceCycles, 1, 7, 6)...)
	m, err := Compute(syntheticTrace(2, samples), Options{SliceCycles: sliceCycles})
	if err != nil {
		t.Fatal(err)
	}
	// Ordered pairs (0,1) and (1,0): min(4,6) + min(6,4) = 8.
	if got := m.Value(7, 7); got != 8 {
		t.Fatalf("CC(B7,B7) = %v, want 8", got)
	}
}

func TestCCManyCPUs(t *testing.T) {
	const sliceCycles = 1000
	// 4 CPUs all run B0 twice; one runs B1 three times.
	var samples []sampling.Sample
	for cpu := 0; cpu < 4; cpu++ {
		samples = append(samples, mkSamples(0, sliceCycles, cpu, 0, 2)...)
	}
	samples = append(samples, mkSamples(0, sliceCycles, 3, 1, 3)...)
	m, err := Compute(syntheticTrace(4, samples), Options{SliceCycles: sliceCycles})
	if err != nil {
		t.Fatal(err)
	}
	// CC(B0,B1): ordered pairs (m,n), m runs B0, n runs B1 (n=3 only),
	// m != n: m in {0,1,2}: 3 × min(2,3)=2 -> 6.
	if got := m.Value(0, 1); got != 6 {
		t.Fatalf("CC(B0,B1) = %v, want 6", got)
	}
	// CC(B0,B0): 4 CPUs × 3 others × min(2,2)=2 -> 24.
	if got := m.Value(0, 0); got != 24 {
		t.Fatalf("CC(B0,B0) = %v, want 24", got)
	}
}

func TestRelevantFilter(t *testing.T) {
	const sliceCycles = 1000
	var samples []sampling.Sample
	samples = append(samples, mkSamples(0, sliceCycles, 0, 0, 5)...)
	samples = append(samples, mkSamples(0, sliceCycles, 1, 1, 5)...)
	samples = append(samples, mkSamples(0, sliceCycles, 2, 2, 5)...)
	m, err := Compute(syntheticTrace(3, samples), Options{
		SliceCycles: sliceCycles,
		Relevant:    func(b ir.BlockID) bool { return b != 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Value(0, 1) == 0 {
		t.Fatal("relevant pair filtered out")
	}
	if m.Value(0, 2) != 0 || m.Value(1, 2) != 0 {
		t.Fatal("irrelevant block leaked into the map")
	}
}

func TestComputeNilTrace(t *testing.T) {
	if _, err := Compute(nil, Options{}); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestTopPairsOrdering(t *testing.T) {
	m := &Map{CC: map[Pair]float64{
		MakePair(1, 2): 10,
		MakePair(3, 4): 30,
		MakePair(5, 6): 20,
	}}
	top := m.TopPairs(2)
	if len(top) != 2 || top[0] != MakePair(3, 4) || top[1] != MakePair(5, 6) {
		t.Fatalf("TopPairs = %+v", top)
	}
	all := m.TopPairs(100)
	if len(all) != 3 {
		t.Fatalf("TopPairs(100) = %d entries", len(all))
	}
}

func TestMakePairCanonical(t *testing.T) {
	if MakePair(5, 2) != (Pair{A: 2, B: 5}) {
		t.Fatal("MakePair not canonical")
	}
	if MakePair(2, 5) != MakePair(5, 2) {
		t.Fatal("MakePair not symmetric")
	}
}

func buildTinyProgram(t testing.TB) *ir.Program {
	t.Helper()
	p := ir.NewProgram("cc")
	s := ir.NewStruct("S", ir.I64("a"))
	p.AddStruct(s)
	b := p.NewProc("f")
	b.Read(s, "a", ir.Shared(0))
	b.Write(s, "a", ir.Shared(0))
	b.Done()
	return p.MustFinalize()
}

func TestTextRoundTrip(t *testing.T) {
	p := buildTinyProgram(t)
	blocks := p.Blocks()
	m := &Map{CC: map[Pair]float64{
		MakePair(blocks[0].Global, blocks[1].Global): 12.5,
		MakePair(blocks[1].Global, blocks[1].Global): 3,
	}, SliceCycles: 1000}

	var buf bytes.Buffer
	if err := m.WriteText(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	for pair, v := range m.CC {
		if math.Abs(got.CC[pair]-v) > 1e-9 {
			t.Fatalf("pair %+v: %v vs %v", pair, got.CC[pair], v)
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	p := buildTinyProgram(t)
	cases := []string{
		"f.c:1 f.c:2",         // missing value
		"f.c:1 f.c:2 x",       // bad value
		"nope:9 f.c:2 1.0",    // unknown line
		"malformed f.c:2 1.0", // bad location
		"f.c:zz f.c:2 1.0",    // bad line number
	}
	for _, c := range cases {
		if _, err := ParseText(bytes.NewReader([]byte(c)), p); err == nil {
			t.Fatalf("ParseText(%q) accepted", c)
		}
	}
}

func TestLineScores(t *testing.T) {
	p := buildTinyProgram(t)
	blocks := p.Blocks()
	m := &Map{CC: map[Pair]float64{MakePair(blocks[0].Global, blocks[1].Global): 9}}
	ls := m.LineScores(p)
	if len(ls) != 1 {
		t.Fatalf("LineScores = %d entries", len(ls))
	}
	for k, v := range ls {
		if v != 9 {
			t.Fatalf("score = %v", v)
		}
		if k[1].Less(k[0]) {
			t.Fatal("line pair not canonical")
		}
	}
}

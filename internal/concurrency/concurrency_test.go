package concurrency

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"structlayout/internal/ir"
	"structlayout/internal/sampling"
)

// syntheticTrace builds a trace with explicit samples.
func syntheticTrace(numCPUs int, samples []sampling.Sample) *sampling.Trace {
	return &sampling.Trace{Samples: samples, IntervalCycles: 1, NumCPUs: numCPUs}
}

func mkSamples(slice int64, sliceCycles int64, cpu int, block ir.BlockID, n int) []sampling.Sample {
	out := make([]sampling.Sample, n)
	for i := range out {
		out[i] = sampling.Sample{CPU: cpu, Block: block, ITC: slice*sliceCycles + int64(i)}
	}
	return out
}

func TestCCHandComputed(t *testing.T) {
	const sliceCycles = 1000
	// Slice 0: CPU0 runs B0 5 times, CPU1 runs B1 3 times.
	var samples []sampling.Sample
	samples = append(samples, mkSamples(0, sliceCycles, 0, 0, 5)...)
	samples = append(samples, mkSamples(0, sliceCycles, 1, 1, 3)...)
	// Slice 1: CPU0 runs B0 2 times, CPU1 runs B1 7 times.
	samples = append(samples, mkSamples(1, sliceCycles, 0, 0, 2)...)
	samples = append(samples, mkSamples(1, sliceCycles, 1, 1, 7)...)

	m, err := Compute(syntheticTrace(2, samples), Options{SliceCycles: sliceCycles})
	if err != nil {
		t.Fatal(err)
	}
	// CC(B0,B1) = min(5,3) + min(2,7) = 3 + 2 = 5.
	if got := m.Value(0, 1); got != 5 {
		t.Fatalf("CC(B0,B1) = %v, want 5", got)
	}
	// Same-block concurrency is zero here (each block runs on one CPU).
	if got := m.Value(0, 0); got != 0 {
		t.Fatalf("CC(B0,B0) = %v, want 0", got)
	}
}

func TestCCSameProcessorExcluded(t *testing.T) {
	const sliceCycles = 1000
	// One CPU alternates between B0 and B1: no cross-processor concurrency.
	var samples []sampling.Sample
	samples = append(samples, mkSamples(0, sliceCycles, 0, 0, 4)...)
	samples = append(samples, mkSamples(0, sliceCycles, 0, 1, 4)...)
	m, err := Compute(syntheticTrace(2, samples), Options{SliceCycles: sliceCycles})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Value(0, 1); got != 0 {
		t.Fatalf("CC = %v, want 0 for single-processor execution", got)
	}
}

func TestCCSameBlockTwoCPUs(t *testing.T) {
	const sliceCycles = 1000
	var samples []sampling.Sample
	samples = append(samples, mkSamples(0, sliceCycles, 0, 7, 4)...)
	samples = append(samples, mkSamples(0, sliceCycles, 1, 7, 6)...)
	m, err := Compute(syntheticTrace(2, samples), Options{SliceCycles: sliceCycles})
	if err != nil {
		t.Fatal(err)
	}
	// Ordered pairs (0,1) and (1,0): min(4,6) + min(6,4) = 8.
	if got := m.Value(7, 7); got != 8 {
		t.Fatalf("CC(B7,B7) = %v, want 8", got)
	}
}

func TestCCManyCPUs(t *testing.T) {
	const sliceCycles = 1000
	// 4 CPUs all run B0 twice; one runs B1 three times.
	var samples []sampling.Sample
	for cpu := 0; cpu < 4; cpu++ {
		samples = append(samples, mkSamples(0, sliceCycles, cpu, 0, 2)...)
	}
	samples = append(samples, mkSamples(0, sliceCycles, 3, 1, 3)...)
	m, err := Compute(syntheticTrace(4, samples), Options{SliceCycles: sliceCycles})
	if err != nil {
		t.Fatal(err)
	}
	// CC(B0,B1): ordered pairs (m,n), m runs B0, n runs B1 (n=3 only),
	// m != n: m in {0,1,2}: 3 × min(2,3)=2 -> 6.
	if got := m.Value(0, 1); got != 6 {
		t.Fatalf("CC(B0,B1) = %v, want 6", got)
	}
	// CC(B0,B0): 4 CPUs × 3 others × min(2,2)=2 -> 24.
	if got := m.Value(0, 0); got != 24 {
		t.Fatalf("CC(B0,B0) = %v, want 24", got)
	}
}

func TestRelevantFilter(t *testing.T) {
	const sliceCycles = 1000
	var samples []sampling.Sample
	samples = append(samples, mkSamples(0, sliceCycles, 0, 0, 5)...)
	samples = append(samples, mkSamples(0, sliceCycles, 1, 1, 5)...)
	samples = append(samples, mkSamples(0, sliceCycles, 2, 2, 5)...)
	m, err := Compute(syntheticTrace(3, samples), Options{
		SliceCycles: sliceCycles,
		Relevant:    func(b ir.BlockID) bool { return b != 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Value(0, 1) == 0 {
		t.Fatal("relevant pair filtered out")
	}
	if m.Value(0, 2) != 0 || m.Value(1, 2) != 0 {
		t.Fatal("irrelevant block leaked into the map")
	}
}

func TestComputeNilTrace(t *testing.T) {
	if _, err := Compute(nil, Options{}); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestTopPairsOrdering(t *testing.T) {
	m := &Map{CC: map[Pair]float64{
		MakePair(1, 2): 10,
		MakePair(3, 4): 30,
		MakePair(5, 6): 20,
	}}
	top := m.TopPairs(2)
	if len(top) != 2 || top[0] != MakePair(3, 4) || top[1] != MakePair(5, 6) {
		t.Fatalf("TopPairs = %+v", top)
	}
	all := m.TopPairs(100)
	if len(all) != 3 {
		t.Fatalf("TopPairs(100) = %d entries", len(all))
	}
}

func TestMakePairCanonical(t *testing.T) {
	if MakePair(5, 2) != (Pair{A: 2, B: 5}) {
		t.Fatal("MakePair not canonical")
	}
	if MakePair(2, 5) != MakePair(5, 2) {
		t.Fatal("MakePair not symmetric")
	}
}

func buildTinyProgram(t testing.TB) *ir.Program {
	t.Helper()
	p := ir.NewProgram("cc")
	s := ir.NewStruct("S", ir.I64("a"))
	p.AddStruct(s)
	b := p.NewProc("f")
	b.Read(s, "a", ir.Shared(0))
	b.Write(s, "a", ir.Shared(0))
	b.Done()
	return p.MustFinalize()
}

func TestTextRoundTrip(t *testing.T) {
	p := buildTinyProgram(t)
	blocks := p.Blocks()
	m := &Map{CC: map[Pair]float64{
		MakePair(blocks[0].Global, blocks[1].Global): 12.5,
		MakePair(blocks[1].Global, blocks[1].Global): 3,
	}, SliceCycles: 1000}

	var buf bytes.Buffer
	if err := m.WriteText(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	for pair, v := range m.CC {
		if math.Abs(got.CC[pair]-v) > 1e-9 {
			t.Fatalf("pair %+v: %v vs %v", pair, got.CC[pair], v)
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	p := buildTinyProgram(t)
	cases := []string{
		"f.c:1 f.c:2",         // missing value
		"f.c:1 f.c:2 x",       // bad value
		"nope:9 f.c:2 1.0",    // unknown line
		"malformed f.c:2 1.0", // bad location
		"f.c:zz f.c:2 1.0",    // bad line number
	}
	for _, c := range cases {
		if _, err := ParseText(bytes.NewReader([]byte(c)), p); err == nil {
			t.Fatalf("ParseText(%q) accepted", c)
		}
	}
}

func TestLineScores(t *testing.T) {
	p := buildTinyProgram(t)
	blocks := p.Blocks()
	m := &Map{CC: map[Pair]float64{MakePair(blocks[0].Global, blocks[1].Global): 9}}
	ls := m.LineScores(p)
	if len(ls) != 1 {
		t.Fatalf("LineScores = %d entries", len(ls))
	}
	for k, v := range ls {
		if v != 9 {
			t.Fatalf("score = %v", v)
		}
		if k[1].Less(k[0]) {
			t.Fatal("line pair not canonical")
		}
	}
}

// buildThreeBlockProgram returns a program whose single procedure has three
// blocks on three distinct synthetic source lines.
func buildThreeBlockProgram(t testing.TB) *ir.Program {
	t.Helper()
	p := ir.NewProgram("cc3")
	s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"))
	p.AddStruct(s)
	b := p.NewProc("f")
	b.Read(s, "a", ir.Shared(0))
	b.Write(s, "a", ir.Shared(0))
	b.Read(s, "b", ir.Shared(0))
	b.Done()
	return p.MustFinalize()
}

// TestLineScoresSumsCollapsedPairs is the regression test for the map
// overwrite bug: when two distinct block pairs fall onto the same
// source-line pair, their CC mass must sum, not last-write-wins.
func TestLineScoresSumsCollapsedPairs(t *testing.T) {
	p := buildThreeBlockProgram(t)
	blocks := p.Blocks()
	// Force blocks 1 and 2 onto one source line, so the block pairs
	// (b0,b1) and (b0,b2) collapse onto a single line pair.
	blocks[2].Line = blocks[1].Line
	m := &Map{CC: map[Pair]float64{
		MakePair(blocks[0].Global, blocks[1].Global): 9,
		MakePair(blocks[0].Global, blocks[2].Global): 4,
	}}
	ls := m.LineScores(p)
	if len(ls) != 1 {
		t.Fatalf("LineScores = %d entries, want 1 collapsed entry", len(ls))
	}
	for _, v := range ls {
		if v != 13 {
			t.Fatalf("collapsed line-pair score = %v, want 9+4=13", v)
		}
	}
}

// ccTestTrace builds a deterministic trace rich enough for the invariance
// properties: several slices, every CPU sampling a few blocks with small
// integer counts, so all CC values are exact in float64 and the tests can
// demand exact equality.
func ccTestTrace(numCPUs int) *sampling.Trace {
	const sliceCycles = 1000
	var samples []sampling.Sample
	for slice := int64(0); slice < 5; slice++ {
		for cpu := 0; cpu < numCPUs; cpu++ {
			for blk := 0; blk < 4; blk++ {
				n := int((slice + int64(cpu) + int64(blk)) % 4)
				samples = append(samples, mkSamples(slice, sliceCycles, cpu, ir.BlockID(blk), n)...)
			}
		}
	}
	return &sampling.Trace{Samples: samples, IntervalCycles: 1, NumCPUs: numCPUs}
}

func requireSameMap(t *testing.T, want, got *Map) {
	t.Helper()
	if len(want.CC) != len(got.CC) {
		t.Fatalf("map sizes differ: %d vs %d", len(want.CC), len(got.CC))
	}
	for p, v := range want.CC {
		if got.CC[p] != v {
			t.Fatalf("pair %+v: %v vs %v", p, v, got.CC[p])
		}
	}
}

// TestCCInvariantUnderCPURelabeling: CC only asks whether two DIFFERENT
// processors run two blocks in the same interval, so permuting CPU
// identities must leave the map bit-for-bit unchanged.
func TestCCInvariantUnderCPURelabeling(t *testing.T) {
	const numCPUs = 8
	tr := ccTestTrace(numCPUs)
	base, err := Compute(tr, Options{SliceCycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// (i*3+5) mod 8 is a bijection on [0,8): 3 is coprime with 8.
	relabeled := make([]sampling.Sample, len(tr.Samples))
	for i, s := range tr.Samples {
		s.CPU = (s.CPU*3 + 5) % numCPUs
		relabeled[i] = s
	}
	got, err := Compute(&sampling.Trace{Samples: relabeled, IntervalCycles: 1, NumCPUs: numCPUs}, Options{SliceCycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMap(t, base, got)
}

// TestCCInvariantUnderSampleReordering: slicing buckets samples by ITC, so
// any permutation of the sample stream must produce the identical map.
func TestCCInvariantUnderSampleReordering(t *testing.T) {
	tr := ccTestTrace(4)
	base, err := Compute(tr, Options{SliceCycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20070311))
	for trial := 0; trial < 3; trial++ {
		shuffled := append([]sampling.Sample(nil), tr.Samples...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, err := Compute(&sampling.Trace{Samples: shuffled, IntervalCycles: 1, NumCPUs: 4}, Options{SliceCycles: 1000})
		if err != nil {
			t.Fatal(err)
		}
		requireSameMap(t, base, got)
	}
}

// TestTextRoundTripTopPairsOrdering: serializing and re-parsing the map
// must preserve the TopPairs ranking, including value ties broken by pair
// order. Integer CC values stay exact under the %.6g encoding.
func TestTextRoundTripTopPairsOrdering(t *testing.T) {
	p := buildThreeBlockProgram(t)
	blocks := p.Blocks()
	m := &Map{CC: map[Pair]float64{
		MakePair(blocks[0].Global, blocks[1].Global): 320,
		MakePair(blocks[0].Global, blocks[2].Global): 7500,
		MakePair(blocks[1].Global, blocks[2].Global): 41,
		MakePair(blocks[2].Global, blocks[2].Global): 7500,
	}, SliceCycles: 1000}
	var buf bytes.Buffer
	if err := m.WriteText(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	want := m.TopPairs(len(m.CC))
	have := got.TopPairs(len(got.CC))
	if len(want) != len(have) {
		t.Fatalf("round trip changed pair count: %d vs %d", len(want), len(have))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("TopPairs[%d] = %+v after round trip, want %+v", i, have[i], want[i])
		}
		if m.CC[want[i]] != got.CC[have[i]] {
			t.Fatalf("pair %+v: value %v after round trip, want %v", want[i], got.CC[have[i]], m.CC[want[i]])
		}
	}
}

// BenchmarkAccumulateSlice exercises one interval on a Superdome-width
// machine: 128 CPUs each sampling 8 blocks. The per-CPU index built in
// finish() keeps the m == n diagonal correction O(1) per lookup; before it,
// countFor was a linear scan and this benchmark was quadratic in CPUs.
func BenchmarkAccumulateSlice(b *testing.B) {
	const numCPUs = 128
	sc := sampling.SliceCounts{ByCPU: make([]map[ir.BlockID]float64, numCPUs)}
	for cpu := 0; cpu < numCPUs; cpu++ {
		counts := make(map[ir.BlockID]float64, 8)
		for blk := 0; blk < 8; blk++ {
			counts[ir.BlockID(blk)] = float64(1 + (cpu+blk)%5)
		}
		sc.ByCPU[cpu] = counts
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &Map{CC: make(map[Pair]float64)}
		accumulateSlice(m, sc, nil)
	}
}

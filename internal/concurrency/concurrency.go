// Package concurrency implements the paper's CodeConcurrency metric (§3.2,
// §4.3): a sampled, lightweight estimate of which pieces of code execute at
// the same time on different processors.
//
// The execution is divided into fixed time intervals I. With F_I(P_k, B_i)
// the execution frequency of block B_i on processor P_k during I,
//
//	CC_I(B_i, B_j) = Σ_{P_m ≠ P_n} min(F_I(P_m, B_i), F_I(P_n, B_j))
//	CC(B_i, B_j)   = Σ_I CC_I(B_i, B_j)
//
// A high CC(B_i, B_j) means that whenever some processor executes B_i, some
// other processor is likely executing B_j at roughly the same time — the
// precondition for false sharing between fields those blocks access.
//
// The result is the Concurrency Map: block pairs (equivalently, source-line
// pairs via the one-line-per-block IR) to their CC value.
package concurrency

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"structlayout/internal/diag"
	"structlayout/internal/ir"
	"structlayout/internal/sampling"
)

// Pair is an unordered block pair; A <= B canonically.
type Pair struct {
	A, B ir.BlockID
}

// MakePair canonicalizes a block pair.
func MakePair(a, b ir.BlockID) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Map is the Concurrency Map.
type Map struct {
	// CC holds CodeConcurrency per canonical block pair.
	CC map[Pair]float64
	// SliceCycles records the interval size used.
	SliceCycles int64
}

// Options controls the computation.
type Options struct {
	// SliceCycles is the interval length; the paper uses 1 ms, i.e. 1.2M
	// cycles at 1.2 GHz.
	SliceCycles int64
	// Relevant, when non-nil, restricts the computation to blocks for which
	// it returns true (typically: blocks accessing fields of structs under
	// study). This mirrors the paper's pipeline, which only correlates
	// lines that appear in the field mapping file.
	Relevant func(ir.BlockID) bool
	// Diag, when non-nil, receives data-quality observations (empty trace,
	// single-CPU trace that can never show concurrency, ...).
	Diag *diag.Log
}

// DefaultSliceCycles is 1 ms at the paper's 1.2 GHz clock.
const DefaultSliceCycles = 1_200_000

// Compute builds the Concurrency Map from a sampling trace.
func Compute(trace *sampling.Trace, opts Options) (*Map, error) {
	if opts.SliceCycles <= 0 {
		opts.SliceCycles = DefaultSliceCycles
	}
	if trace == nil {
		return nil, fmt.Errorf("concurrency: nil trace")
	}
	if len(trace.Samples) == 0 {
		opts.Diag.Add(diag.Warning, "concurrency", "empty-trace", "trace has no samples; concurrency map will be empty")
	}
	if trace.NumCPUs == 1 {
		opts.Diag.Add(diag.Warning, "concurrency", "single-cpu", "single-CPU trace can never show cross-processor concurrency")
	}
	m := &Map{CC: make(map[Pair]float64), SliceCycles: opts.SliceCycles}
	slices, err := trace.Slices(opts.SliceCycles)
	if err != nil {
		return nil, fmt.Errorf("concurrency: %w", err)
	}
	for _, slice := range slices {
		accumulateSlice(m, slice, opts.Relevant)
	}
	return m, nil
}

// blockCounts is a block's per-CPU sample counts within one slice.
type blockCounts struct {
	block ir.BlockID
	cpus  []int
	cnt   []float64
	// byCPU indexes cnt by CPU for the m == n diagonal correction.
	byCPU map[int]float64
	// sorted counts and prefix sums for the Σ min computation.
	sorted []float64
	prefix []float64
	total  float64
}

// accumulateSlice adds one interval's CC contributions.
func accumulateSlice(m *Map, sc sampling.SliceCounts, relevant func(ir.BlockID) bool) {
	// Gather per-block count vectors.
	perBlock := make(map[ir.BlockID]*blockCounts)
	for cpu, counts := range sc.ByCPU {
		for blk, n := range counts {
			if relevant != nil && !relevant(blk) {
				continue
			}
			bc := perBlock[blk]
			if bc == nil {
				bc = &blockCounts{block: blk}
				perBlock[blk] = bc
			}
			bc.cpus = append(bc.cpus, cpu)
			bc.cnt = append(bc.cnt, n)
		}
	}
	if len(perBlock) == 0 {
		return
	}
	blocks := make([]*blockCounts, 0, len(perBlock))
	for _, bc := range perBlock {
		bc.finish()
		blocks = append(blocks, bc)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].block < blocks[j].block })

	for i, bi := range blocks {
		for j := i; j < len(blocks); j++ {
			bj := blocks[j]
			v := sumMinPairs(bi, bj)
			if v > 0 {
				m.CC[MakePair(bi.block, bj.block)] += v
			}
		}
	}
}

// finish sorts counts, builds prefix sums and indexes counts by CPU.
func (bc *blockCounts) finish() {
	bc.sorted = append([]float64(nil), bc.cnt...)
	sort.Float64s(bc.sorted)
	bc.prefix = make([]float64, len(bc.sorted)+1)
	for i, v := range bc.sorted {
		bc.prefix[i+1] = bc.prefix[i] + v
		bc.total += v
	}
	bc.byCPU = make(map[int]float64, len(bc.cpus))
	for i, cpu := range bc.cpus {
		bc.byCPU[cpu] = bc.cnt[i]
	}
}

// sumMinAll returns Σ over all n of min(x, b_n) using b's sorted counts.
func (bc *blockCounts) sumMinAll(x float64) float64 {
	// Count of entries <= x.
	k := sort.SearchFloat64s(bc.sorted, x+1e-12) // entries strictly greater than x start at k
	return bc.prefix[k] + x*float64(len(bc.sorted)-k)
}

// sumMinPairs computes Σ_{P_m ≠ P_n} min(F(P_m, B_i), F(P_n, B_j)) over
// ordered processor pairs. The ordered sum is already symmetric in the two
// blocks (swapping i and j relabels m and n), so each unordered block pair
// is accumulated exactly once by the caller. The m == n diagonal — the same
// processor executing both blocks — is excluded: one CPU cannot falsely
// share with itself.
func sumMinPairs(bi, bj *blockCounts) float64 {
	var total float64
	// Σ over all ordered pairs (m, n), computed in O(|cnt| log |cnt|) via
	// bj's sorted counts and prefix sums.
	for _, a := range bi.cnt {
		total += bj.sumMinAll(a)
	}
	// Remove the m == n terms.
	for k, cpu := range bi.cpus {
		if other := bj.countFor(cpu); other > 0 {
			a := bi.cnt[k]
			if a < other {
				total -= a
			} else {
				total -= other
			}
		}
	}
	return total
}

// countFor returns the block's count on the given CPU (0 if absent). The
// index is built once in finish(); without it the m == n correction inside
// sumMinPairs degenerated to a linear scan per CPU, O(P²) per block pair
// on wide machines.
func (bc *blockCounts) countFor(cpu int) float64 { return bc.byCPU[cpu] }

// Value returns CC for a block pair.
func (m *Map) Value(a, b ir.BlockID) float64 { return m.CC[MakePair(a, b)] }

// Blocks returns the set of blocks appearing in any non-zero pair.
func (m *Map) Blocks() map[ir.BlockID]bool {
	out := make(map[ir.BlockID]bool)
	for p := range m.CC {
		out[p.A] = true
		out[p.B] = true
	}
	return out
}

// TopPairs returns the k highest-CC pairs, ties broken by pair ordering.
func (m *Map) TopPairs(k int) []Pair {
	pairs := make([]Pair, 0, len(m.CC))
	for p := range m.CC {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		vi, vj := m.CC[pairs[i]], m.CC[pairs[j]]
		if vi != vj {
			return vi > vj
		}
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	if len(pairs) > k {
		pairs = pairs[:k]
	}
	return pairs
}

// LineScores converts the map to source-line-pair scores for reports and
// for stability comparisons between collection machines (§4.3).
func (m *Map) LineScores(p *ir.Program) map[[2]ir.SourceLine]float64 {
	out := make(map[[2]ir.SourceLine]float64, len(m.CC))
	for pair, v := range m.CC {
		la := p.Block(pair.A).Line
		lb := p.Block(pair.B).Line
		if lb.Less(la) {
			la, lb = lb, la
		}
		// += rather than =: distinct block pairs can collapse onto one
		// source-line pair (two blocks on the same line), and their CC
		// mass must sum instead of the last pair winning.
		out[[2]ir.SourceLine{la, lb}] += v
	}
	return out
}

// WriteText serializes the concurrency map: "fileA:lineA fileB:lineB cc".
func (m *Map) WriteText(w io.Writer, p *ir.Program) error {
	bw := bufio.NewWriter(w)
	pairs := m.TopPairs(len(m.CC))
	for _, pair := range pairs {
		fmt.Fprintf(bw, "%s %s %.6g\n", p.Block(pair.A).Line, p.Block(pair.B).Line, m.CC[pair])
	}
	return bw.Flush()
}

// ParseText reads the WriteText format back into a map.
func ParseText(r io.Reader, p *ir.Program) (*Map, error) {
	table := p.LineTable()
	m := &Map{CC: make(map[Pair]float64)}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Fields(text)
		if len(parts) != 3 {
			return nil, fmt.Errorf("concurrency: line %d: want 3 fields, got %d", lineno, len(parts))
		}
		ba, err := lookupLine(table, parts[0])
		if err != nil {
			return nil, fmt.Errorf("concurrency: line %d: %w", lineno, err)
		}
		bb, err := lookupLine(table, parts[1])
		if err != nil {
			return nil, fmt.Errorf("concurrency: line %d: %w", lineno, err)
		}
		v, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("concurrency: line %d: bad value %q", lineno, parts[2])
		}
		m.CC[MakePair(ba, bb)] += v
	}
	return m, sc.Err()
}

func lookupLine(table map[ir.SourceLine]*ir.BasicBlock, tok string) (ir.BlockID, error) {
	i := strings.LastIndexByte(tok, ':')
	if i < 0 {
		return 0, fmt.Errorf("malformed location %q", tok)
	}
	n, err := strconv.Atoi(tok[i+1:])
	if err != nil {
		return 0, fmt.Errorf("malformed line number %q", tok)
	}
	b := table[ir.SourceLine{File: tok[:i], Line: n}]
	if b == nil {
		return 0, fmt.Errorf("unknown source line %q", tok)
	}
	return b.Global, nil
}

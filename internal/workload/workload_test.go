package workload

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"structlayout/internal/ir"
	"structlayout/internal/machine"
)

func newSuite(t testing.TB) *Suite {
	t.Helper()
	s, err := NewSuite(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStructShapesMatchPaper(t *testing.T) {
	a := StructA()
	if n := a.Type.NumFields(); n <= 100 {
		t.Fatalf("struct A has %d fields; the paper's A has more than one hundred", n)
	}
	for _, ks := range AllStructs() {
		if ks.Type.NumFields() < 20 {
			t.Fatalf("struct %s has only %d fields; B..E should have many", ks.Label, ks.Type.NumFields())
		}
		lay := ks.Baseline(128)
		if err := lay.Validate(); err != nil {
			t.Fatalf("struct %s baseline: %v", ks.Label, err)
		}
		if lay.NumLines() < 2 {
			t.Fatalf("struct %s spans %d lines; transformed layouts must span multiple cache lines (§5.1)",
				ks.Label, lay.NumLines())
		}
	}
}

func TestBaselineAIsolation(t *testing.T) {
	a := StructA()
	lay := a.Baseline(128)
	// Each statistics counter must own its cache line (no other stat and no
	// hot read field on it).
	for i := 0; i < NumStatClasses; i++ {
		si := a.Type.FieldIndex(nameStat(i))
		for j := 0; j < NumStatClasses; j++ {
			if i == j {
				continue
			}
			if lay.SameLine(si, a.Type.FieldIndex(nameStat(j))) {
				t.Fatalf("baseline A: stat%d and stat%d share a line", i, j)
			}
		}
		for _, hot := range []string{"pt_state", "pt_pid", "pt_vm0"} {
			if lay.SameLine(si, a.Type.FieldIndex(hot)) {
				t.Fatalf("baseline A: stat%d shares a line with %s", i, hot)
			}
		}
	}
	// The planted mistake: pt_seq lives in the hot read line.
	if !lay.SameLine(a.Type.FieldIndex("pt_seq"), a.Type.FieldIndex("pt_state")) {
		t.Fatal("baseline A: pt_seq should share the hot line (the planted hazard)")
	}
	// pt_load is isolated from the hot reads.
	if lay.SameLine(a.Type.FieldIndex("pt_load"), a.Type.FieldIndex("pt_state")) {
		t.Fatal("baseline A: pt_load must not share the hot read line")
	}
	// The VM walk group is contiguous on one line.
	for i := 1; i < 6; i++ {
		if !lay.SameLine(a.Type.FieldIndex("pt_vm0"), a.Type.FieldIndex(nameVM(i))) {
			t.Fatalf("baseline A: pt_vm0 and pt_vm%d on different lines", i)
		}
	}
}

func nameStat(i int) string { return "pt_stat" + string(rune('0'+i)) }
func nameVM(i int) string   { return "pt_vm" + string(rune('0'+i)) }

func TestBaselineBPlantedRefcnt(t *testing.T) {
	b := StructB()
	lay := b.Baseline(128)
	st := b.Type
	if !lay.SameLine(st.FieldIndex("vn_refcnt"), st.FieldIndex("vn_type")) {
		t.Fatal("baseline B: vn_refcnt should share the hot line (the planted hazard)")
	}
	if !lay.SameLine(st.FieldIndex("vn_hash"), st.FieldIndex("vn_next")) {
		t.Fatal("baseline B: the hash-chain pair should be together")
	}
}

func TestSuiteConstruction(t *testing.T) {
	s := newSuite(t)
	if s.Prog.NumBlocks() == 0 {
		t.Fatal("program has no blocks")
	}
	for _, label := range Labels() {
		if s.Struct(label) == nil {
			t.Fatalf("missing struct %s", label)
		}
	}
	for cpu := 0; cpu < 16; cpu++ {
		if s.Prog.Proc(s.EntryFor(cpu)) == nil {
			t.Fatalf("missing entry proc for cpu %d", cpu)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	bad := DefaultParams()
	bad.ScanInstances = 0
	if _, err := NewSuite(bad); err == nil {
		t.Fatal("zero ScanInstances accepted")
	}
	bad = DefaultParams()
	bad.SeqWriteProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("bad SeqWriteProb accepted")
	}
	bad = DefaultParams()
	bad.LoadWriteProb = -0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad LoadWriteProb accepted")
	}
	bad = DefaultParams()
	bad.NumMounts = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero NumMounts accepted")
	}
	bad = DefaultParams()
	bad.Cache.Sets = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("bad cache accepted")
	}
}

func TestThreadParamsPrivateInstancesDistinct(t *testing.T) {
	s := newSuite(t)
	seenProc := map[int]bool{}
	seenVnode := map[int]bool{}
	for cpu := 0; cpu < 128; cpu++ {
		ps := s.ThreadParams(cpu, 1)
		if seenProc[ps[ParamProc]] {
			t.Fatalf("proc instance %d reused", ps[ParamProc])
		}
		seenProc[ps[ParamProc]] = true
		if seenVnode[ps[ParamVnode]] {
			t.Fatalf("vnode instance %d reused", ps[ParamVnode])
		}
		seenVnode[ps[ParamVnode]] = true
		if ps[ParamVnode] < s.Params.NumMounts {
			t.Fatalf("vnode instance %d collides with mounts", ps[ParamVnode])
		}
		if ps[ParamProc] == 0 {
			t.Fatal("no thread may own the shared proc entry (instance 0)")
		}
		if ps[ParamMount] < 0 || ps[ParamMount] >= s.Params.NumMounts {
			t.Fatalf("mount index %d out of range", ps[ParamMount])
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	s := newSuite(t)
	base := s.BaselineLayouts(128)
	topo := machine.Way16()
	r1, err := s.RunOnce(topo, base, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunOnce(topo, base, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Completed != r2.Completed {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", r1.Cycles, r1.Completed, r2.Cycles, r2.Completed)
	}
	if r1.Coherence != r2.Coherence {
		t.Fatalf("coherence stats differ:\n%+v\n%+v", r1.Coherence, r2.Coherence)
	}
}

func TestSeedsVaryOutcome(t *testing.T) {
	s := newSuite(t)
	base := s.BaselineLayouts(128)
	topo := machine.Bus4()
	r1, _ := s.RunOnce(topo, base, 1, nil)
	r2, _ := s.RunOnce(topo, base, 2, nil)
	if r1.Cycles == r2.Cycles {
		t.Fatal("different seeds produced identical cycle counts; runs would have zero variance")
	}
}

func TestThroughputMetric(t *testing.T) {
	s := newSuite(t)
	topo := machine.Bus4()
	res, err := s.RunOnce(topo, s.BaselineLayouts(128), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != int64(topo.NumCPUs())*s.Params.ScriptsPerThread {
		t.Fatalf("completed = %d", res.Completed)
	}
	tput := Throughput(topo, res)
	want := float64(res.Completed) / (float64(res.Cycles) / topo.ClockHz) * 3600
	if tput != want {
		t.Fatalf("throughput = %v, want %v", tput, want)
	}
}

func TestMeasureProtocol(t *testing.T) {
	s := newSuite(t)
	m, err := s.Measure(machine.Bus4(), s.BaselineLayouts(128), 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 4 || m.Mean <= 0 {
		t.Fatalf("measurement = %+v", m)
	}
	if _, err := s.Measure(machine.Bus4(), nil, 0, 1); err == nil {
		t.Fatal("zero runs accepted")
	}
}

func TestCollectProducesProfileAndTrace(t *testing.T) {
	s := newSuite(t)
	pf, trace, err := s.Collect(machine.Way16(), s.BaselineLayouts(128), 5)
	if err != nil {
		t.Fatal(err)
	}
	if pf == nil || trace == nil || len(trace.Samples) == 0 {
		t.Fatal("collection produced no data")
	}
	nonzero := 0
	for _, c := range pf.Blocks {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero < s.Prog.NumBlocks()/2 {
		t.Fatalf("only %d of %d blocks executed", nonzero, s.Prog.NumBlocks())
	}
}

func TestPrivateAliasOracle(t *testing.T) {
	s := newSuite(t)
	oracle := PrivateAliasOracle(s.Prog)
	var privBlock, sharedBlock, mountBlock ir.BlockID = -1, -1, -1
	for _, blk := range s.Prog.Blocks() {
		instrs := blk.FieldInstrs()
		if len(instrs) == 0 {
			continue
		}
		allPriv, anyShared, anyMount := true, false, false
		for _, in := range instrs {
			switch in.Inst.Kind {
			case ir.InstShared, ir.InstLoopVar:
				anyShared = true
				allPriv = false
			case ir.InstParam:
				if in.Inst.Index == ParamMount {
					anyMount = true
					allPriv = false
				}
			}
		}
		if allPriv && privBlock < 0 {
			privBlock = blk.Global
		}
		if anyShared && sharedBlock < 0 {
			sharedBlock = blk.Global
		}
		if anyMount && mountBlock < 0 {
			mountBlock = blk.Global
		}
	}
	if privBlock < 0 || sharedBlock < 0 || mountBlock < 0 {
		t.Fatalf("blocks not found: priv=%d shared=%d mount=%d", privBlock, sharedBlock, mountBlock)
	}
	if !oracle(privBlock, privBlock) {
		t.Fatal("two private blocks should be non-aliasing")
	}
	if oracle(privBlock, sharedBlock) {
		t.Fatal("shared-instance block must alias")
	}
	if oracle(privBlock, mountBlock) {
		t.Fatal("mount block must alias")
	}
}

func TestWithLayoutDoesNotMutate(t *testing.T) {
	s := newSuite(t)
	base := s.BaselineLayouts(128)
	alt := s.Struct("A").Baseline(128)
	alt.Name = "alt"
	derived := base.WithLayout("A", alt)
	if base["A"].Name == "alt" {
		t.Fatal("WithLayout mutated the receiver")
	}
	if derived["A"].Name != "alt" || derived["B"] != base["B"] {
		t.Fatal("WithLayout result wrong")
	}
}

// TestBaselineFingerprints pins the hand-tuned baseline layouts. The
// experiment calibration (EXPERIMENTS.md) depends on these exact layouts;
// if a struct definition or baseline order changes, the figures must be
// recalibrated and these fingerprints updated deliberately.
func TestBaselineFingerprints(t *testing.T) {
	want := map[string]string{
		"A": "dde70bbaf8bd832b",
		"B": "7476001bf17d6216",
		"C": "09ecc28f0e842a7c",
		"D": "345fe140506488f9",
		"E": "9b7b02fa8ed2b19e",
	}
	for _, ks := range AllStructs() {
		h := sha256.Sum256([]byte(ks.Baseline(128).Dump()))
		got := fmt.Sprintf("%x", h[:8])
		if got != want[ks.Label] {
			t.Errorf("struct %s baseline fingerprint %s != %s — baseline changed; "+
				"recalibrate the experiments and update EXPERIMENTS.md before updating this test",
				ks.Label, got, want[ks.Label])
		}
	}
}

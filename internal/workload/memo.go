package workload

import (
	"bytes"
	"encoding/json"

	"structlayout/internal/machine"
	"structlayout/internal/memo"
	"structlayout/internal/profile"
	"structlayout/internal/sampling"
)

// Measurements and collections are pure functions of (suite parameters,
// layouts, topology, run count, seeds), so both Measure and Collect are
// memoized through the process-wide memo.Shared() cache. The figure loops
// measure the same baseline cell per machine in several configurations
// (Figure 8 and Figure 10 share all their Superdome128 "auto" cells, the
// robustness sweep re-measures the Figure 9 baseline), and a warm disk
// cache (-cache-dir) carries whole pipeline re-runs.
//
// Values are stored as JSON: Go's encoder writes float64 in shortest-exact
// form, so a decoded Measurement is bit-identical to the computed one and
// cached runs render byte-identical tables. Collect hits decode fresh
// Profile/Trace values on every call, so a caller mutating its collection
// (fault injection, sanitizing) can never poison the cache.

// hashConfig adds every measurement-relevant suite input: the program
// identity, all workload parameters (the IR program is constructed from
// them), cache geometry, topology and the layout set.
func (s *Suite) hashConfig(h *memo.Hasher, topo *machine.Topology, ls Layouts) {
	h.Str("prog", s.Prog.Name)
	p := s.Params
	h.Int("p.scan", p.ScanInstances)
	h.Int("p.bursts", p.SyscallBursts)
	h.F64("p.seqwrite", p.SeqWriteProb)
	h.F64("p.loadwrite", p.LoadWriteProb)
	h.Int("p.crossvm", int64(p.CrossVMReads))
	h.Int("p.probes", p.LookupProbes)
	h.Int("p.mmscan", p.MMScan)
	h.Int("p.ioscan", p.IOScan)
	h.Int("p.usersweep", p.UserSweep)
	h.Int("p.scripts", p.ScriptsPerThread)
	h.Int("p.mounts", int64(p.NumMounts))
	h.CacheConfig("cache", p.Cache)
	h.Topology("topo", topo)
	// Arena layouts: hash the effective layout for every label, including
	// baseline fallbacks, exactly as newRunner resolves them.
	lineSize := int(p.Cache.LineSize)
	eff := make(Layouts, len(s.byLabel))
	for _, label := range Labels() {
		lay := ls[label]
		if lay == nil {
			lay = s.byLabel[label].Baseline(lineSize)
		}
		eff[label] = lay
	}
	h.Layouts("layouts", eff)
}

// measurementValue is the cached form of a Measurement.
type measurementValue struct {
	Mean float64   `json:"mean"`
	Runs []float64 `json:"runs"`
}

func (s *Suite) measureKey(topo *machine.Topology, ls Layouts, n int, baseSeed int64) memo.Key {
	h := memo.NewHasher()
	h.Str("kind", "measure")
	s.hashConfig(h, topo, ls)
	h.Int("runs", int64(n))
	h.Int("seed", baseSeed)
	// The simulation mode and every sampling parameter are part of a
	// measurement's identity: a sampled result must never replace (or be
	// replaced by) an exact one, and changing the window, period or seed
	// changes the simulated subset. Shards is deliberately NOT hashed —
	// sharding is byte-identical by contract, so sharded and unsharded
	// runs share cache entries.
	h.SimConfig("sim", s.Sim)
	// Measure is clean by contract (fault injection applies to collections,
	// never to throughput runs); record that in the key so a future faulted
	// variant can never collide with it.
	h.FaultSpec("inject", nil)
	return h.Sum()
}

// measureMemo wraps the raw measurement in the shared cache.
func (s *Suite) measureMemo(topo *machine.Topology, ls Layouts, n int, baseSeed int64,
	compute func() (Measurement, error)) (Measurement, error) {
	k := s.measureKey(topo, ls, n, baseSeed)
	raw, err := memo.Shared().Do(k, func() ([]byte, error) {
		m, err := compute()
		if err != nil {
			return nil, err
		}
		return json.Marshal(measurementValue{Mean: m.Mean, Runs: m.Runs})
	})
	if err != nil {
		return Measurement{}, err
	}
	var v measurementValue
	if err := json.Unmarshal(raw, &v); err != nil {
		// A corrupt cache entry (hand-edited or damaged disk tier) degrades
		// to recomputation, matching the pipeline's degrade-don't-die rule.
		return compute()
	}
	return Measurement{Mean: v.Mean, Runs: v.Runs}, nil
}

// collectValue is the cached form of one collection: the two artifact
// streams in their canonical file encodings, so the cache reuses the same
// serialization (and on decode, the same validation) as the on-disk
// profile/trace formats.
type collectValue struct {
	Profile json.RawMessage `json:"profile"`
	Trace   json.RawMessage `json:"trace"`
}

func (s *Suite) collectKey(topo *machine.Topology, ls Layouts, seed int64) memo.Key {
	h := memo.NewHasher()
	h.Str("kind", "collect")
	s.hashConfig(h, topo, ls)
	h.Int("seed", seed)
	// The sampling parameters are compile-time constants but participate in
	// the key: changing them changes every trace.
	h.Int("interval", CollectSampleInterval)
	h.Int("drift", 8)
	h.F64("loss", 0.02)
	return h.Sum()
}

// collectMemo wraps a collection in the shared cache. Hits decode fresh
// values; the cache never hands out aliased pointers.
func (s *Suite) collectMemo(topo *machine.Topology, ls Layouts, seed int64,
	compute func() (*profile.Profile, *sampling.Trace, error)) (*profile.Profile, *sampling.Trace, error) {
	k := s.collectKey(topo, ls, seed)
	raw, err := memo.Shared().Do(k, func() ([]byte, error) {
		pf, tr, err := compute()
		if err != nil {
			return nil, err
		}
		var pbuf, tbuf bytes.Buffer
		if err := pf.WriteJSON(&pbuf); err != nil {
			return nil, err
		}
		if err := tr.WriteJSON(&tbuf); err != nil {
			return nil, err
		}
		return json.Marshal(collectValue{Profile: pbuf.Bytes(), Trace: tbuf.Bytes()})
	})
	if err != nil {
		return nil, nil, err
	}
	var v collectValue
	if err := json.Unmarshal(raw, &v); err != nil {
		return compute()
	}
	pf, perr := profile.ReadJSON(bytes.NewReader(v.Profile), s.Prog)
	tr, terr := sampling.ReadJSON(bytes.NewReader(v.Trace))
	if perr != nil || terr != nil {
		// Corrupt or shape-mismatched entry (e.g. a stale disk tier written
		// for a differently-parameterized program): recompute fresh.
		return compute()
	}
	return pf, tr, nil
}

package workload

import (
	"fmt"

	"structlayout/internal/exec"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/parallel"
	"structlayout/internal/profile"
	"structlayout/internal/sampling"
	"structlayout/internal/stats"
)

// Collection-time sampling parameters. The paper samples every 100k cycles
// and buckets into 1 ms slices on runs lasting minutes; our simulated runs
// last tens of milliseconds, so both knobs scale down by ~10x, preserving
// the paper's ~12 samples per slice per CPU.
const (
	// CollectSampleInterval is the PMU sampling period in cycles.
	CollectSampleInterval = 2_500
	// CollectSliceCycles is the CodeConcurrency interval length in cycles.
	CollectSliceCycles = 125_000
)

// Layouts maps struct labels ("A".."E") to layouts. Missing labels fall
// back to the baseline layout.
type Layouts map[string]*layout.Layout

// BaselineLayouts returns every struct's hand-tuned layout.
func (s *Suite) BaselineLayouts(lineSize int) Layouts {
	out := make(Layouts, len(s.byLabel))
	for label, ks := range s.byLabel {
		out[label] = ks.Baseline(lineSize)
	}
	return out
}

// WithLayout returns a copy of ls with one struct's layout replaced: the
// paper transforms "their layouts individually" (§5.1).
func (ls Layouts) WithLayout(label string, lay *layout.Layout) Layouts {
	out := make(Layouts, len(ls)+1)
	for k, v := range ls {
		out[k] = v
	}
	out[label] = lay
	return out
}

// newRunner assembles an exec.Runner for one measurement run. The suite's
// Shards setting turns on the sharded directory (an allocation detail:
// results are byte-identical at any count); its Sim setting applies to
// measurement runs only — a run with a collector attached (smp != nil) is
// always exact, because the PMU trace must observe every access.
func (s *Suite) newRunner(topo *machine.Topology, ls Layouts, seed int64, smp *sampling.Config) (*exec.Runner, error) {
	cache := s.Params.Cache
	cache.Shards = s.Shards
	sim := s.Sim
	if smp != nil {
		sim = exec.SimConfig{}
	}
	r, err := exec.NewRunner(s.Prog, exec.Config{
		Topo:     topo,
		Cache:    cache,
		Seed:     seed,
		Sampling: smp,
		Sim:      sim,
	})
	if err != nil {
		return nil, err
	}
	lineSize := int(s.Params.Cache.LineSize)
	// Arena addresses depend on definition order; iterate labels in fixed
	// order so identical configurations replay identically.
	for _, label := range Labels() {
		ks := s.byLabel[label]
		lay := ls[label]
		if lay == nil {
			lay = ks.Baseline(lineSize)
		}
		count := ks.ArenaCount
		if ks.Label == "D" && count < topo.NumCPUs() {
			count = topo.NumCPUs() // per-CPU runqueues need one per CPU
		}
		if err := r.DefineArena(lay, count); err != nil {
			return nil, err
		}
	}
	for cpu := 0; cpu < topo.NumCPUs(); cpu++ {
		if err := r.AddThread(cpu, s.EntryFor(cpu), s.ThreadParams(cpu, seed), s.Params.ScriptsPerThread); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// RunOnce executes one run and returns the raw result.
func (s *Suite) RunOnce(topo *machine.Topology, ls Layouts, seed int64, smp *sampling.Config) (*exec.Result, error) {
	r, err := s.newRunner(topo, ls, seed, smp)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// Throughput converts a run's outcome to SDET's metric: scripts per hour.
func Throughput(topo *machine.Topology, res *exec.Result) float64 {
	secs := topo.Seconds(res.Cycles)
	if secs <= 0 {
		return 0
	}
	return float64(res.Completed) / secs * 3600
}

// Measurement is the paper's aggregated result of one configuration.
type Measurement struct {
	// Mean is the outlier-trimmed mean throughput in scripts/hour.
	Mean float64
	// Runs holds each run's throughput.
	Runs []float64
}

// SpeedupOver returns the relative performance versus a baseline
// measurement, in percent.
func (m Measurement) SpeedupOver(base Measurement) float64 {
	return stats.SpeedupPercent(m.Mean, base.Mean)
}

// Measure runs the protocol of §5: n measured runs (the paper uses 10
// after a warm-up), outliers removed, mean reported. Seeds vary per run.
//
// The runs execute in parallel up to parallel.Limit(): each run's seed is a
// pure function of its index (never of scheduling), each run owns all its
// simulator state, and throughputs are gathered by run index — so the
// measurement is byte-identical at any worker count.
//
// Measurements are memoized through memo.Shared(): the result is a pure
// function of the arguments plus the suite's parameters, so a repeated
// configuration (the figure loops share baselines and variant cells across
// machines) is simulated once per process — or once ever, with a disk
// cache. Cached results round-trip through JSON losslessly, so hits are
// bit-identical to fresh computation.
func (s *Suite) Measure(topo *machine.Topology, ls Layouts, n int, baseSeed int64) (Measurement, error) {
	if n <= 0 {
		return Measurement{}, fmt.Errorf("workload: need at least one run")
	}
	return s.measureMemo(topo, ls, n, baseSeed, func() (Measurement, error) {
		runs, err := parallel.Map(n, func(i int) (float64, error) {
			res, err := s.RunOnce(topo, ls, baseSeed+int64(i)*1009+1, nil)
			if err != nil {
				return 0, err
			}
			return Throughput(topo, res), nil
		})
		if err != nil {
			return Measurement{}, err
		}
		return Measurement{Mean: stats.TrimmedMean(runs), Runs: runs}, nil
	})
}

// Collect performs the tool's data-collection phase (§4): one profiled,
// PMU-sampled run under the baseline layouts on the given collection
// machine (the paper uses a 16-way machine for its experiments).
//
// Collections are memoized like measurements; every hit decodes a fresh
// Profile/Trace pair, so callers that mutate their collection (fault
// injection, sanitizing) never alias cache-held state.
func (s *Suite) Collect(topo *machine.Topology, ls Layouts, seed int64) (*profile.Profile, *sampling.Trace, error) {
	return s.collectMemo(topo, ls, seed, func() (*profile.Profile, *sampling.Trace, error) {
		res, err := s.RunOnce(topo, ls, seed, &sampling.Config{
			IntervalCycles: CollectSampleInterval,
			DriftMaxCycles: 8,
			LossProb:       0.02,
			Seed:           seed + 17,
		})
		if err != nil {
			return nil, nil, err
		}
		return res.Profile, res.Trace, nil
	})
}

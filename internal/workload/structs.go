// Package workload builds the reproduction's stand-in for the paper's
// evaluation environment (§5): five kernel-style record types with the
// qualitative properties of the HP-UX structs A–E, a multi-process
// SDET-like script workload that stresses them, hand-tuned baseline
// layouts, and the measurement protocol (warm-up + N runs, outlier-trimmed
// mean of the scripts/hour throughput).
//
// The real structs are proprietary; these are synthesized to match the
// paper's published characteristics:
//
//   - A has over one hundred fields and is the only struct with heavy
//     false sharing (per-CPU-class statistics written into one shared
//     instance); the naive sort-by-hotness layout packs those counters
//     next to hot read-mostly fields and collapses on a 128-way machine.
//   - B..E have many fields but only minor false sharing; their layouts
//     mostly trade spatial locality.
//   - All baselines are "hand-tuned over many years": near-optimal, with
//     the small residual mistakes (a split affinity pair, a stray written
//     field in a hot read line) that §5.2's incremental mode is shown to
//     find and fix.
package workload

import (
	"fmt"

	"structlayout/internal/ir"
	"structlayout/internal/layout"
)

// KernelStruct is one synthetic kernel record plus its hand-tuned layout.
type KernelStruct struct {
	// Label is the paper's name for it: "A".."E".
	Label string
	// Type is the record type.
	Type *ir.StructType
	// BaselineOrder is the hand-tuned declaration order.
	BaselineOrder []int
	// ArenaCount is how many instances the kernel arena holds.
	ArenaCount int
}

// Baseline materializes the hand-tuned layout at the given line size. The
// baseline orders are static data defined in this package, so a failure is
// a programmer error and the panic here is a deliberate invariant; a bad
// lineSize from user input is the one caller-supplied failure mode.
func (k *KernelStruct) Baseline(lineSize int) *layout.Layout {
	l, err := layout.FromOrder(k.Type, "baseline", k.BaselineOrder, lineSize)
	if err != nil {
		panic(fmt.Sprintf("workload: struct %s baseline order is invalid (programmer error?): %v", k.Label, err))
	}
	return l
}

// NumStatClasses is the number of per-CPU-class statistics slots in struct
// A. CPUs hash into these classes; each class writes only its own counter,
// so co-locating two classes' counters creates pure false sharing.
const NumStatClasses = 8

// fieldNames collects names for order-by-name helpers.
func orderOf(st *ir.StructType, names ...string) []int {
	out := make([]int, 0, len(names))
	for _, n := range names {
		i := st.FieldIndex(n)
		if i < 0 {
			panic(fmt.Sprintf("workload: struct %s has no field %q", st.Name, n))
		}
		out = append(out, i)
	}
	if len(out) != len(st.Fields) {
		panic(fmt.Sprintf("workload: order for %s names %d of %d fields", st.Name, len(out), len(st.Fields)))
	}
	return out
}

// StructA synthesizes the paper's struct A: a process-table-entry-like
// record with 108 fields, hot read-mostly state, two spatial-affinity
// groups walked by a table scan, per-CPU-class statistics counters, a
// per-instance lock, and a long cold tail.
//
// Planted baseline imperfection (what §5.2's "best" mode finds): pt_seq, a
// rarely-but-concurrently written sequence field, sits in the hot
// read-mostly line. Everything else about the baseline is tuned: the VM and
// CPU walk groups share one line, each statistics counter owns a line
// (padded by its scratch buffer), and the lock is isolated.
func StructA() *KernelStruct {
	var fields []ir.Field
	add := func(fs ...ir.Field) {
		fields = append(fields, fs...)
	}
	// Hot read-mostly kernel state (read by every CPU on the shared
	// instance).
	hot := []string{"pt_state", "pt_flags", "pt_pri", "pt_nice", "pt_addr", "pt_wchan", "pt_pid", "pt_uid"}
	for _, n := range hot {
		add(ir.I64(n))
	}
	// Moderately written sequence number (baseline mistake #1: lives with
	// the hot reads).
	add(ir.I64("pt_seq"))
	// Global load average: read on several syscall paths together with the
	// hot state (a genuine affinity edge) but also written by every CPU.
	// The hand-tuned baseline isolates it; the greedy clusterer is tempted
	// to pull it next to the hot reads because the sampled CycleLoss edge
	// is small next to the profiled CycleGain edge — the deliberate
	// suboptimality behind the paper's ~5% automatic-layout slowdown on
	// struct A.
	add(ir.I64("pt_load"))
	// Affinity group VM: walked together by the table scan.
	for i := 0; i < 6; i++ {
		add(ir.I64(fmt.Sprintf("pt_vm%d", i)))
	}
	// Affinity group CPU: read together on a slower path.
	for i := 0; i < 4; i++ {
		add(ir.I64(fmt.Sprintf("pt_cpu%d", i)))
	}
	// Per-CPU-class statistics counters (the false-sharing hazard) and
	// their per-class scratch buffers (cold, 120 bytes: the hand-tuned
	// baseline uses them to keep each counter alone on its line).
	for i := 0; i < NumStatClasses; i++ {
		add(ir.I64(fmt.Sprintf("pt_stat%d", i)))
		add(ir.Arr(fmt.Sprintf("pt_statbuf%d", i), 15, 8, 8))
	}
	// Per-instance spinlock.
	add(ir.I64("pt_lock"))
	// Cold tail: 72 fields of mixed widths.
	for i := 0; i < 20; i++ {
		add(ir.I64(fmt.Sprintf("pt_c64_%02d", i)))
	}
	for i := 0; i < 20; i++ {
		add(ir.I32(fmt.Sprintf("pt_c32_%02d", i)))
	}
	for i := 0; i < 20; i++ {
		add(ir.I16(fmt.Sprintf("pt_c16_%02d", i)))
	}
	for i := 0; i < 12; i++ {
		add(ir.I8(fmt.Sprintf("pt_c8_%02d", i)))
	}
	st := ir.NewStruct("proc_entry", fields...)

	// Hand-tuned baseline order.
	var names []string
	names = append(names, hot...)
	names = append(names, "pt_seq") // mistake #1: written field in hot line
	for i := 0; i < 7; i++ {        // pad line 0 to 128 bytes with cold
		names = append(names, fmt.Sprintf("pt_c64_%02d", i))
	}
	// Line 1: the VM walk group, the CPU walk group, cold fill.
	for i := 0; i < 6; i++ {
		names = append(names, fmt.Sprintf("pt_vm%d", i))
	}
	for i := 0; i < 4; i++ {
		names = append(names, fmt.Sprintf("pt_cpu%d", i))
	}
	for i := 7; i < 13; i++ {
		names = append(names, fmt.Sprintf("pt_c64_%02d", i))
	}
	// Line 2: the lock and the global load average, isolated from all
	// read-mostly lines by cold fields.
	names = append(names, "pt_lock", "pt_load")
	for i := 13; i < 20; i++ {
		names = append(names, fmt.Sprintf("pt_c64_%02d", i))
	}
	for i := 0; i < 14; i++ {
		names = append(names, fmt.Sprintf("pt_c32_%02d", i))
	}
	// Lines 3..10: one stat counter per line, padded by its scratch buffer
	// (8 + 120 = 128 bytes each).
	for i := 0; i < NumStatClasses; i++ {
		names = append(names, fmt.Sprintf("pt_stat%d", i), fmt.Sprintf("pt_statbuf%d", i))
	}
	// Cold tail.
	for i := 14; i < 20; i++ {
		names = append(names, fmt.Sprintf("pt_c32_%02d", i))
	}
	for i := 0; i < 20; i++ {
		names = append(names, fmt.Sprintf("pt_c16_%02d", i))
	}
	for i := 0; i < 12; i++ {
		names = append(names, fmt.Sprintf("pt_c8_%02d", i))
	}
	return &KernelStruct{Label: "A", Type: st, BaselineOrder: orderOf(st, names...), ArenaCount: 512}
}

// StructB synthesizes struct B: a vnode-like record of 36 fields. Its
// residual baseline issues are a hot affinity pair split across lines and a
// shared reference count sitting in the hot read line — the combination
// behind the paper's best single improvement (+3.2% via the incremental
// mode).
func StructB() *KernelStruct {
	var fields []ir.Field
	hot := []string{"vn_type", "vn_flags", "vn_size", "vn_dev"}
	for _, n := range hot {
		fields = append(fields, ir.I64(n))
	}
	// Affinity pair 1 (lookup path) and 2 (attribute path).
	fields = append(fields, ir.I64("vn_hash"), ir.I64("vn_next"))
	fields = append(fields, ir.I64("vn_atime"), ir.I64("vn_mtime"))
	// Mount-point reference count: written by every CPU on a few shared
	// mount instances (the minor false-sharing hazard).
	fields = append(fields, ir.I64("vn_refcnt"))
	// Per-instance write fields (owner-only).
	fields = append(fields, ir.I64("vn_wcount"), ir.I64("vn_dirty"))
	// Lock.
	fields = append(fields, ir.I64("vn_lock"))
	// Cold tail: 24 fields.
	for i := 0; i < 12; i++ {
		fields = append(fields, ir.I64(fmt.Sprintf("vn_c64_%02d", i)))
	}
	for i := 0; i < 12; i++ {
		fields = append(fields, ir.I32(fmt.Sprintf("vn_c32_%02d", i)))
	}
	st := ir.NewStruct("vnode", fields...)

	var names []string
	// Line 0: hot reads + refcnt (mistake: the shared-written refcount in
	// the read-mostly line) + the hash-chain pair + timestamps + fill.
	names = append(names, hot...)
	names = append(names, "vn_refcnt", "vn_hash", "vn_next", "vn_atime", "vn_mtime")
	for i := 0; i < 3; i++ {
		names = append(names, fmt.Sprintf("vn_c64_%02d", i))
	}
	// Line 1: per-instance write fields, the lock, and the cold tail.
	names = append(names, "vn_wcount", "vn_dirty", "vn_lock")
	for i := 3; i < 12; i++ {
		names = append(names, fmt.Sprintf("vn_c64_%02d", i))
	}
	for i := 0; i < 12; i++ {
		names = append(names, fmt.Sprintf("vn_c32_%02d", i))
	}
	return &KernelStruct{Label: "B", Type: st, BaselineOrder: orderOf(st, names...), ArenaCount: 1024}
}

// StructC synthesizes struct C: a memory-object record of 28 fields with a
// clean baseline; the automatic layout only finds minor locality headroom.
func StructC() *KernelStruct {
	var fields []ir.Field
	for i := 0; i < 4; i++ {
		fields = append(fields, ir.I64(fmt.Sprintf("mo_h%d", i)))
	}
	fields = append(fields, ir.I64("mo_base"), ir.I64("mo_len"), ir.I64("mo_prot"))
	fields = append(fields, ir.I64("mo_owner"), ir.I64("mo_gen"))
	for i := 0; i < 10; i++ {
		fields = append(fields, ir.I64(fmt.Sprintf("mo_c64_%02d", i)))
	}
	for i := 0; i < 9; i++ {
		fields = append(fields, ir.I32(fmt.Sprintf("mo_c32_%02d", i)))
	}
	st := ir.NewStruct("memobj", fields...)

	var names []string
	// Line 0: the fault-path walk group, except mo_prot, which the
	// baseline strands on line 1 — the small locality headroom the tool
	// finds.
	for i := 0; i < 4; i++ {
		names = append(names, fmt.Sprintf("mo_h%d", i))
	}
	names = append(names, "mo_base", "mo_len", "mo_owner", "mo_gen")
	for i := 0; i < 8; i++ {
		names = append(names, fmt.Sprintf("mo_c64_%02d", i))
	}
	names = append(names, "mo_prot", "mo_c64_08", "mo_c64_09")
	for i := 0; i < 9; i++ {
		names = append(names, fmt.Sprintf("mo_c32_%02d", i))
	}
	return &KernelStruct{Label: "C", Type: st, BaselineOrder: orderOf(st, names...), ArenaCount: 1024}
}

// StructD synthesizes struct D: a per-CPU scheduler-queue record of 25
// fields. Its baseline is nearly optimal; the one residual issue is
// rq_steal — a flag remote CPUs set when they steal work — sharing the line
// with the owner's tick-path fields, which costs a little on large
// machines.
func StructD() *KernelStruct {
	var fields []ir.Field
	for i := 0; i < 6; i++ {
		fields = append(fields, ir.I64(fmt.Sprintf("rq_h%d", i)))
	}
	fields = append(fields, ir.I64("rq_clock"), ir.I64("rq_load"), ir.I64("rq_steal"))
	for i := 0; i < 10; i++ {
		fields = append(fields, ir.I64(fmt.Sprintf("rq_c64_%02d", i)))
	}
	for i := 0; i < 6; i++ {
		fields = append(fields, ir.I32(fmt.Sprintf("rq_c32_%02d", i)))
	}
	st := ir.NewStruct("runq", fields...)

	var names []string
	for i := 0; i < 6; i++ {
		names = append(names, fmt.Sprintf("rq_h%d", i))
	}
	names = append(names, "rq_clock", "rq_load", "rq_steal")
	for i := 0; i < 10; i++ {
		names = append(names, fmt.Sprintf("rq_c64_%02d", i))
	}
	for i := 0; i < 6; i++ {
		names = append(names, fmt.Sprintf("rq_c32_%02d", i))
	}
	return &KernelStruct{Label: "D", Type: st, BaselineOrder: orderOf(st, names...), ArenaCount: 512}
}

// StructE synthesizes struct E: a buffer-header record of 32 fields with a
// mildly shuffled baseline (its affinity group interleaves with cold
// fields), so the automatic layout finds a small locality win.
func StructE() *KernelStruct {
	var fields []ir.Field
	for i := 0; i < 5; i++ {
		fields = append(fields, ir.I64(fmt.Sprintf("bh_h%d", i)))
	}
	fields = append(fields, ir.I64("bh_blkno"), ir.I64("bh_dev"), ir.I64("bh_qstate"))
	for i := 0; i < 16; i++ {
		fields = append(fields, ir.I64(fmt.Sprintf("bh_c64_%02d", i)))
	}
	for i := 0; i < 8; i++ {
		fields = append(fields, ir.I32(fmt.Sprintf("bh_c32_%02d", i)))
	}
	st := ir.NewStruct("bufhdr", fields...)

	var names []string
	// Line 0: the walk group minus bh_h4, which the baseline strands on
	// line 1 — struct E's small locality headroom.
	names = append(names, "bh_h0", "bh_h1", "bh_h2", "bh_h3", "bh_blkno")
	for i := 0; i < 11; i++ {
		names = append(names, fmt.Sprintf("bh_c64_%02d", i))
	}
	names = append(names, "bh_h4", "bh_dev", "bh_qstate")
	for i := 11; i < 16; i++ {
		names = append(names, fmt.Sprintf("bh_c64_%02d", i))
	}
	for i := 0; i < 8; i++ {
		names = append(names, fmt.Sprintf("bh_c32_%02d", i))
	}
	return &KernelStruct{Label: "E", Type: st, BaselineOrder: orderOf(st, names...), ArenaCount: 1024}
}

// AllStructs returns A..E in order.
func AllStructs() []*KernelStruct {
	return []*KernelStruct{StructA(), StructB(), StructC(), StructD(), StructE()}
}

package workload

import (
	"fmt"
	"sync"

	"structlayout/internal/coherence"
	"structlayout/internal/exec"
	"structlayout/internal/ir"
)

// Params are the workload's tunable knobs. They control the mix of kernel
// paths a script executes and therefore how strongly each layout property
// (spatial locality, false sharing, footprint) shows up in throughput.
// Defaults are calibrated so the figure shapes of the paper reproduce on
// the simulated machines.
type Params struct {
	// ScanInstances is how many proc_entry instances the table scan walks.
	ScanInstances int64
	// SyscallBursts is how many syscalls each script issues.
	SyscallBursts int64
	// SeqWriteProb is the probability a syscall bumps pt_seq (the planted
	// hot-line write hazard of struct A).
	SeqWriteProb float64
	// LoadWriteProb is the probability a scheduler-class syscall updates
	// the global load average pt_load. Low enough that the sampled
	// CycleLoss edge stays small next to pt_load's read affinity with the
	// hot state — the bait for the greedy clusterer.
	LoadWriteProb float64
	// CrossVMReads is how many times the syscall path touches pt_vm0 of
	// its own process entry, creating a cross-group affinity edge that
	// tempts the greedy clusterer into splitting the VM group (off by
	// default; kept as an ablation knob).
	CrossVMReads int
	// LookupProbes is the vnode hash-chain probe count per lookup.
	LookupProbes int64
	// MMScan and IOScan are the memobj/bufhdr walk lengths.
	MMScan int64
	// IOScan see MMScan.
	IOScan int64
	// UserSweep is the per-script private-memory sweep length (models the
	// benchmark's user-mode code trashing the cache between syscalls).
	UserSweep int64
	// ScriptsPerThread is the SDET scripts each simulated CPU completes.
	ScriptsPerThread int64
	// NumMounts is how many shared mount-point vnodes take refcount hits.
	NumMounts int
	// Cache is the per-CPU cache geometry used in evaluation runs.
	Cache coherence.Config
}

// DefaultParams returns the calibrated configuration.
func DefaultParams() Params {
	return Params{
		ScanInstances:    384,
		SyscallBursts:    96,
		SeqWriteProb:     0.005,
		LoadWriteProb:    0.05,
		CrossVMReads:     0,
		LookupProbes:     48,
		MMScan:           24,
		IOScan:           24,
		UserSweep:        48,
		ScriptsPerThread: 3,
		NumMounts:        4,
		// 128 KiB per CPU: the slice of the 6 MB Itanium L3 effectively
		// available to these structures under full SDET pressure.
		Cache: coherence.Config{LineSize: 128, Sets: 128, Ways: 8},
	}
}

// Validate sanity-checks the knobs.
func (p Params) Validate() error {
	if p.ScanInstances <= 0 || p.SyscallBursts <= 0 || p.LookupProbes <= 0 ||
		p.MMScan <= 0 || p.IOScan <= 0 || p.UserSweep <= 0 || p.ScriptsPerThread <= 0 {
		return fmt.Errorf("workload: non-positive loop knob in %+v", p)
	}
	if p.SeqWriteProb < 0 || p.SeqWriteProb > 1 {
		return fmt.Errorf("workload: SeqWriteProb %v out of range", p.SeqWriteProb)
	}
	if p.LoadWriteProb < 0 || p.LoadWriteProb > 1 {
		return fmt.Errorf("workload: LoadWriteProb %v out of range", p.LoadWriteProb)
	}
	if p.NumMounts <= 0 {
		return fmt.Errorf("workload: NumMounts must be positive")
	}
	if p.CrossVMReads < 0 {
		return fmt.Errorf("workload: negative CrossVMReads")
	}
	return p.Cache.Validate()
}

// Thread parameter slots.
const (
	// ParamProc selects the thread's own proc_entry instance.
	ParamProc = 0
	// ParamVnode selects the thread's working vnode.
	ParamVnode = 1
	// ParamMount selects the shared mount vnode whose refcount it bumps.
	ParamMount = 2
	// ParamMemObj selects the thread's memory object.
	ParamMemObj = 3
)

// Suite is the assembled benchmark: program, structs, knobs.
type Suite struct {
	Prog    *ir.Program
	Params  Params
	byLabel map[string]*KernelStruct

	// Sim selects exact or interval-sampled simulation for Measure runs.
	// Collections ignore it (the PMU trace needs every access). Sampled
	// measurements are keyed separately in the memo cache — they can
	// never silently replace exact results.
	Sim exec.SimConfig
	// Shards is the coherence directory shard count (0 means 1). Shard
	// counts are an allocation detail — results are byte-identical at any
	// value — so Shards is deliberately absent from memo keys.
	Shards int
}

// NewSuite builds the SDET-like program over structs A..E.
func NewSuite(p Params) (*Suite, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Suite{Params: p, byLabel: make(map[string]*KernelStruct)}
	prog := ir.NewProgram("sdet")
	for _, ks := range AllStructs() {
		s.byLabel[ks.Label] = ks
		prog.AddStruct(ks.Type)
	}
	prog.AddRegion("userbuf", 256<<10, true)

	a := s.byLabel["A"].Type
	b := s.byLabel["B"].Type
	c := s.byLabel["C"].Type
	d := s.byLabel["D"].Type
	e := s.byLabel["E"].Type

	// syscall_enter_<k>: the per-CPU-class fast path. Reads the global
	// kernel state, bumps its class's statistics counter on the shared
	// proc entry, sometimes bumps pt_seq, and touches its own entry under
	// the per-entry lock. Classes 0..3 also consult the global load
	// average alongside the hot state (the affinity bait); classes 4..7
	// occasionally update it (the false-sharing hazard).
	// account_stat_<k>: the statistics-accounting helper. Isolating the
	// counter bump in its own procedure mirrors real kernels (accounting
	// macros/functions) and, because affinity is intra-procedural (§3.1),
	// keeps the counters free of gain edges: their layout is decided by
	// CycleLoss alone.
	for k := 0; k < NumStatClasses; k++ {
		bd := prog.NewProc(fmt.Sprintf("account_stat_%d", k))
		bd.Write(a, fmt.Sprintf("pt_stat%d", k), ir.Shared(0))
		bd.Done()
	}

	for k := 0; k < NumStatClasses; k++ {
		bd := prog.NewProc(fmt.Sprintf("syscall_enter_%d", k))
		bd.Lock(a, "pt_lock", ir.Param(ParamProc))
		for _, f := range []string{"pt_state", "pt_flags", "pt_pri", "pt_nice", "pt_addr", "pt_wchan", "pt_pid", "pt_uid"} {
			bd.Read(a, f, ir.Shared(0))
		}
		if k < NumStatClasses/2 {
			bd.Read(a, "pt_load", ir.Shared(0))
		}
		for i := 0; i < p.CrossVMReads; i++ {
			bd.Read(a, "pt_vm0", ir.Param(ParamProc))
		}
		bd.If(p.SeqWriteProb, func(bd *ir.Builder) {
			bd.Write(a, "pt_seq", ir.Shared(0))
		})
		if k >= NumStatClasses/2 {
			bd.If(p.LoadWriteProb, func(bd *ir.Builder) {
				bd.Write(a, "pt_load", ir.Shared(0))
			})
		}
		bd.Call(fmt.Sprintf("account_stat_%d", k))
		bd.Unlock(a, "pt_lock", ir.Param(ParamProc))
		bd.Compute(120)
		bd.Done()
	}

	// proc_scan: the table walk that gives the VM and CPU groups their
	// spatial affinity (Figure 1's pattern).
	{
		bd := prog.NewProc("proc_scan")
		bd.Loop(p.ScanInstances, func(bd *ir.Builder) {
			for i := 0; i < 6; i++ {
				bd.Read(a, fmt.Sprintf("pt_vm%d", i), ir.LoopVar())
			}
			bd.If(0.25, func(bd *ir.Builder) {
				for i := 0; i < 4; i++ {
					bd.Read(a, fmt.Sprintf("pt_cpu%d", i), ir.LoopVar())
				}
			})
			bd.Compute(20)
		})
		bd.Done()
	}

	// vfs_lookup: hash-chain probes (vn_hash then vn_next per probe — the
	// affinity pair the baseline splits), then work on the thread's own
	// vnode, then a refcount bump on a shared mount vnode (struct B's
	// false-sharing hazard).
	{
		bd := prog.NewProc("vfs_lookup")
		bd.Loop(p.LookupProbes, func(bd *ir.Builder) {
			bd.Read(b, "vn_hash", ir.LoopVar())
			bd.Read(b, "vn_type", ir.LoopVar()) // reject non-matching entries
			bd.Read(b, "vn_next", ir.LoopVar())
			bd.Compute(12)
		})
		for _, f := range []string{"vn_type", "vn_flags", "vn_size", "vn_dev"} {
			bd.Read(b, f, ir.Param(ParamVnode))
		}
		bd.Read(b, "vn_atime", ir.Param(ParamVnode))
		bd.Read(b, "vn_mtime", ir.Param(ParamVnode))
		bd.Lock(b, "vn_lock", ir.Param(ParamVnode))
		bd.Write(b, "vn_wcount", ir.Param(ParamVnode))
		bd.Write(b, "vn_dirty", ir.Param(ParamVnode))
		bd.Unlock(b, "vn_lock", ir.Param(ParamVnode))
		// Mount-point crossing: read the mount vnode's flags, then bump
		// its refcount. The reads and the read-modify-write hit the same
		// shared instances from every CPU, so whatever line holds
		// vn_refcnt falsely shares with whatever read-mostly fields are
		// laid out next to it. The branch keeps the crossing in its own
		// basic block: unlike the private-vnode traffic above, these
		// accesses target shared instances, so the alias oracle must not
		// suppress their CycleLoss.
		bd.If(0.98, func(bd *ir.Builder) {
			bd.Read(b, "vn_type", ir.Param(ParamMount))
			bd.Read(b, "vn_flags", ir.Param(ParamMount))
			bd.Read(b, "vn_refcnt", ir.Param(ParamMount))
			bd.Write(b, "vn_refcnt", ir.Param(ParamMount))
		})
		bd.Compute(80)
		bd.Done()
	}

	// mm_fault: walks memory objects reading the lookup group together.
	{
		bd := prog.NewProc("mm_fault")
		bd.Loop(p.MMScan, func(bd *ir.Builder) {
			for i := 0; i < 4; i++ {
				bd.Read(c, fmt.Sprintf("mo_h%d", i), ir.LoopVar())
			}
			bd.Read(c, "mo_base", ir.LoopVar())
			bd.Read(c, "mo_len", ir.LoopVar())
			bd.Read(c, "mo_prot", ir.LoopVar())
			bd.Compute(16)
		})
		bd.Write(c, "mo_gen", ir.Param(ParamMemObj))
		bd.Compute(60)
		bd.Done()
	}

	// sched_tick: per-CPU runqueue bookkeeping, plus a load-balancing scan
	// over the first queues that occasionally marks a victim queue's
	// rq_steal flag — the cross-CPU write that makes rq_steal's placement
	// matter.
	{
		bd := prog.NewProc("sched_tick")
		bd.Loop(8, func(bd *ir.Builder) {
			for i := 0; i < 6; i++ {
				bd.Read(d, fmt.Sprintf("rq_h%d", i), ir.PerCPU())
			}
			bd.Read(d, "rq_clock", ir.PerCPU())
			bd.Write(d, "rq_load", ir.PerCPU())
			bd.Compute(24)
		})
		bd.Loop(16, func(bd *ir.Builder) {
			bd.Read(d, "rq_load", ir.LoopVar())
			bd.If(0.05, func(bd *ir.Builder) {
				bd.Write(d, "rq_steal", ir.LoopVar())
			})
			bd.Compute(10)
		})
		bd.Done()
	}

	// io_submit: buffer-header walk (struct E's affinity group).
	{
		bd := prog.NewProc("io_submit")
		bd.Loop(p.IOScan, func(bd *ir.Builder) {
			for i := 0; i < 5; i++ {
				bd.Read(e, fmt.Sprintf("bh_h%d", i), ir.LoopVar())
			}
			bd.Read(e, "bh_blkno", ir.LoopVar())
			bd.Compute(16)
		})
		bd.Write(e, "bh_qstate", ir.Param(ParamVnode))
		bd.Compute(60)
		bd.Done()
	}

	// script_<k>: one SDET script for stat class k: a burst of syscalls,
	// then the heavier kernel paths, then user-mode memory traffic.
	for k := 0; k < NumStatClasses; k++ {
		bd := prog.NewProc(fmt.Sprintf("script_%d", k))
		kk := k
		bd.Loop(p.SyscallBursts, func(bd *ir.Builder) {
			bd.Call(fmt.Sprintf("syscall_enter_%d", kk))
		})
		bd.Call("vfs_lookup")
		bd.Call("proc_scan")
		bd.Call("mm_fault")
		bd.Call("sched_tick")
		bd.Call("io_submit")
		bd.Loop(p.UserSweep, func(bd *ir.Builder) {
			bd.MemSweep("userbuf", ir.Write, 1024)
			bd.Compute(30)
		})
		bd.Done()
	}

	if err := prog.Finalize(); err != nil {
		return nil, err
	}
	s.Prog = prog
	return s, nil
}

// Struct returns the kernel struct with the paper label "A".."E".
func (s *Suite) Struct(label string) *KernelStruct { return s.byLabel[label] }

// Labels returns the five labels in order.
func Labels() []string { return []string{"A", "B", "C", "D", "E"} }

// EntryFor returns the script procedure a CPU's thread runs.
func (s *Suite) EntryFor(cpu int) string {
	return fmt.Sprintf("script_%d", cpu%NumStatClasses)
}

// PrivateAliasOracle implements the paper's alias-analysis mitigation for
// CycleLoss over-approximation (§3.2): "whenever alias analysis determines
// that the addresses of two structure instances do not alias, then we can
// conclude that there is no false sharing between the fields of those
// structures even though the basic blocks containing them are highly
// concurrent."
//
// In this workload the facts are static: the ParamProc, ParamVnode and
// ParamMemObj parameter slots are assigned pairwise-distinct instances per
// thread (see ThreadParams), and PerCPU instances are private by
// construction. A block pair is declared non-aliasing when every struct
// access in both blocks resolves through one of those private selectors.
func PrivateAliasOracle(prog *ir.Program) func(b1, b2 ir.BlockID) bool {
	private := func(id ir.BlockID) bool {
		for _, in := range prog.Block(id).FieldInstrs() {
			switch in.Inst.Kind {
			case ir.InstPerCPU:
			case ir.InstParam:
				if in.Inst.Index == ParamMount {
					return false // mounts are shared instances
				}
			default:
				return false // Shared and LoopVar instances alias
			}
		}
		return true
	}
	// The memo is guarded: one oracle may serve analyses running on
	// different workers (the robustness sweep fans severity cells out in
	// parallel), and the verdict per block is deterministic either way.
	var mu sync.Mutex
	cache := make(map[ir.BlockID]bool)
	memo := func(id ir.BlockID) bool {
		mu.Lock()
		v, ok := cache[id]
		mu.Unlock()
		if !ok {
			v = private(id)
			mu.Lock()
			cache[id] = v
			mu.Unlock()
		}
		return v
	}
	return func(b1, b2 ir.BlockID) bool { return memo(b1) && memo(b2) }
}

// ThreadParams assigns a CPU's parameter vector. Assignments are stable
// across runs (run-to-run variance comes from branch draws and random
// memory offsets, like rerunning SDET on warm hardware).
func (s *Suite) ThreadParams(cpu int, seed int64) []int {
	params := make([]int, 4)
	// Instance 0 of proc_entry is the shared kernel-global entry; threads'
	// own entries start above it so no thread's per-entry lock lives in
	// the globally read instance.
	params[ParamProc] = cpu + 8
	params[ParamVnode] = s.Params.NumMounts + cpu*3
	params[ParamMount] = cpu % s.Params.NumMounts
	params[ParamMemObj] = cpu * 5
	return params
}

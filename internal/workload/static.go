package workload

import (
	"structlayout/internal/machine"
	"structlayout/internal/staticshare"
)

// StaticConfig derives the static sharing analysis configuration that
// matches the measurement harness on one machine (see newRunner): one
// thread per CPU entering its script with its stable parameter vector,
// and the five kernel arenas' instance counts (runqueues padded to the
// CPU count exactly as the runner pads them). The seed parameter mirrors
// ThreadParams' signature; assignments are seed-independent today, so the
// derived configuration is too.
func (s *Suite) StaticConfig(topo *machine.Topology, seed int64) *staticshare.Config {
	cfg := &staticshare.Config{Arenas: make(map[string]int, len(s.byLabel))}
	for _, label := range Labels() {
		ks := s.byLabel[label]
		count := ks.ArenaCount
		if ks.Label == "D" && count < topo.NumCPUs() {
			count = topo.NumCPUs()
		}
		cfg.Arenas[ks.Type.Name] = count
	}
	for cpu := 0; cpu < topo.NumCPUs(); cpu++ {
		cfg.Threads = append(cfg.Threads, staticshare.Thread{
			CPU:    cpu,
			Proc:   s.EntryFor(cpu),
			Params: s.ThreadParams(cpu, seed),
			Iters:  s.Params.ScriptsPerThread,
		})
	}
	return cfg
}

package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapGathersByIndex(t *testing.T) {
	for _, lim := range []int{1, 2, 4, 13} {
		SetLimit(lim)
		got, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("limit %d: %v", lim, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("limit %d: out[%d] = %d, want %d", lim, i, v, i*i)
			}
		}
	}
	SetLimit(runtime.GOMAXPROCS(0))
}

func TestMapSmallestIndexError(t *testing.T) {
	SetLimit(8)
	defer SetLimit(runtime.GOMAXPROCS(0))
	var ran atomic.Int64
	_, err := Map(50, func(i int) (int, error) {
		ran.Add(1)
		if i%7 == 3 {
			return 0, fmt.Errorf("item %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "item 3" {
		t.Fatalf("want error from smallest failing index 3, got %v", err)
	}
	if ran.Load() != 50 {
		t.Fatalf("errors must not cancel remaining work: ran %d of 50", ran.Load())
	}
}

func TestMapZeroAndOne(t *testing.T) {
	if out, err := Map(0, func(int) (int, error) { return 1, nil }); err != nil || len(out) != 0 {
		t.Fatalf("n=0: %v %v", out, err)
	}
	out, err := Map(1, func(int) (int, error) { return 7, nil })
	if err != nil || out[0] != 7 {
		t.Fatalf("n=1: %v %v", out, err)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	SetLimit(4)
	defer SetLimit(runtime.GOMAXPROCS(0))
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in fn must re-raise on the caller")
		}
	}()
	Map(16, func(i int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
}

func TestNestedMapNoDeadlock(t *testing.T) {
	SetLimit(3)
	defer SetLimit(runtime.GOMAXPROCS(0))
	got, err := Map(8, func(i int) (int, error) {
		inner, err := Map(8, func(j int) (int, error) { return i*8 + j, nil })
		if err != nil {
			return 0, err
		}
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := 0
		for j := 0; j < 8; j++ {
			want += i*8 + j
		}
		if v != want {
			t.Fatalf("nested out[%d] = %d, want %d", i, v, want)
		}
	}
}

// TestConcurrencyBounded checks the global token bucket: even with many
// overlapping Map calls, no more than Limit() items run at once.
func TestConcurrencyBounded(t *testing.T) {
	const lim = 4
	SetLimit(lim)
	defer SetLimit(runtime.GOMAXPROCS(0))
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			ForEach(20, func(i int) error {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				for k := 0; k < 1000; k++ { // busy beat
					_ = k * k
				}
				inFlight.Add(-1)
				return nil
			})
		}()
	}
	close(gate)
	wg.Wait()
	// 3 caller goroutines each count as a worker even when the bucket is
	// empty, so the hard bound is lim + callers - 1.
	if p := peak.Load(); p > lim+2 {
		t.Fatalf("peak concurrency %d exceeds bound %d", p, lim+2)
	}
}

func TestForEachError(t *testing.T) {
	sentinel := errors.New("nope")
	if err := ForEach(4, func(i int) error {
		if i == 2 {
			return sentinel
		}
		return nil
	}); !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

func TestSeedForDeterministicAndDistinct(t *testing.T) {
	a := SeedFor(20070311, 3, "A", "auto", "Superdome128")
	b := SeedFor(20070311, 3, "A", "auto", "Superdome128")
	if a != b {
		t.Fatal("SeedFor must be a pure function of its arguments")
	}
	seen := map[int64]string{}
	for _, s := range []string{"A", "B", "C"} {
		for _, v := range []string{"auto", "hotness"} {
			for i := 0; i < 4; i++ {
				k := SeedFor(20070311, i, s, v)
				id := fmt.Sprintf("%s/%s/%d", s, v, i)
				if prev, dup := seen[k]; dup {
					t.Fatalf("seed collision: %s and %s", prev, id)
				}
				seen[k] = id
			}
		}
	}
	// Label boundaries must matter: ("ab","c") != ("a","bc").
	if SeedFor(1, 0, "ab", "c") == SeedFor(1, 0, "a", "bc") {
		t.Fatal("label boundary not separated in hash")
	}
}

func TestSetLimitClamps(t *testing.T) {
	SetLimit(-3)
	if Limit() != 1 {
		t.Fatalf("Limit() = %d after SetLimit(-3), want 1", Limit())
	}
	SetLimit(runtime.GOMAXPROCS(0))
}

package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestMapCtxUncancelledMatchesMap pins that an uncancelled context changes
// nothing: same results, same error selection, at several worker counts.
func TestMapCtxUncancelledMatchesMap(t *testing.T) {
	defer SetLimit(Limit())
	for _, lim := range []int{1, 2, 8} {
		SetLimit(lim)
		fn := func(i int) (int, error) {
			if i == 7 {
				return 0, fmt.Errorf("item 7")
			}
			return i * i, nil
		}
		want, wantErr := Map(16, fn)
		got, gotErr := MapCtx(context.Background(), 16, func(_ context.Context, i int) (int, error) { return fn(i) })
		if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("lim %d: err %v vs %v", lim, wantErr, gotErr)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("lim %d item %d: %d vs %d", lim, i, want[i], got[i])
			}
		}
	}
}

// TestMapCtxCancelStopsDequeue cancels the context from inside an early
// item and asserts that later items are never dequeued: a timed-out
// request must stop consuming workers instead of running its remaining
// work to completion.
func TestMapCtxCancelStopsDequeue(t *testing.T) {
	defer SetLimit(Limit())
	for _, lim := range []int{1, 4} {
		SetLimit(lim)
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 1000
		_, err := MapCtx(ctx, n, func(ctx context.Context, i int) (struct{}, error) {
			ran.Add(1)
			if i < lim {
				// The first items (one per worker at most) cancel the batch.
				cancel()
			} else {
				// Any other item that slipped in before the cancellation was
				// visible parks until it is, so the count below is exact:
				// items never race ahead of the cancel signal.
				<-ctx.Done()
			}
			return struct{}{}, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("lim %d: err = %v, want context.Canceled", lim, err)
		}
		// Every worker may finish the item it already dequeued plus at most
		// one more it grabbed before observing the cancellation.
		if got := ran.Load(); got > int64(3*lim) {
			t.Fatalf("lim %d: %d items ran after cancellation (want <= %d)", lim, got, 3*lim)
		}
		cancel()
	}
}

// TestMapCtxCancelledBeforeCallRunsNothing: a dead context on entry runs
// zero items and reports the context error.
func TestMapCtxCancelledBeforeCallRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, 64, func(_ context.Context, i int) (struct{}, error) {
		ran.Add(1)
		return struct{}{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", ran.Load())
	}
}

// TestMapCtxItemErrorWinsOverLaterSkips: an item's own error keeps the
// smallest-failing-index rule even when cancellation also skipped items.
func TestMapCtxItemErrorWinsOverLaterSkips(t *testing.T) {
	defer SetLimit(Limit())
	SetLimit(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	_, err := MapCtx(ctx, 10, func(_ context.Context, i int) (struct{}, error) {
		if i == 2 {
			cancel()
			return struct{}{}, boom
		}
		return struct{}{}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the item's own error", err)
	}
}

// TestForEachCtxPropagatesCtx pins that items receive the caller's context.
func TestForEachCtxPropagatesCtx(t *testing.T) {
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	err := ForEachCtx(ctx, 4, func(ctx context.Context, i int) error {
		if ctx.Value(key{}) != "v" {
			return fmt.Errorf("item %d: context not propagated", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Package parallel fans independent, index-addressed work items out over a
// bounded worker pool without giving up determinism. Results are gathered by
// item index, never by completion order, so callers that derive all per-item
// state (seeds, RNG streams) from the index alone produce byte-identical
// output at any worker count, including 1.
//
// The pool is a process-global token bucket: a Map/ForEach call runs items on
// the calling goroutine and additionally spawns a helper goroutine per free
// token. Nested calls therefore never deadlock — when the bucket is empty the
// inner call simply degrades to an inline serial loop — and the total number
// of goroutines doing work at any instant never exceeds Limit().
package parallel

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	mu     sync.Mutex
	limit  = runtime.GOMAXPROCS(0)
	bucket = newBucket(limit)
)

// newBucket returns a token channel holding n-1 tokens: the caller of
// Map/ForEach always counts as one worker, so n-1 helpers may join it.
func newBucket(n int) chan struct{} {
	b := make(chan struct{}, n-1+1) // never zero-capacity
	for i := 0; i < n-1; i++ {
		b <- struct{}{}
	}
	return b
}

// SetLimit sets the maximum number of concurrently running work items across
// all Map/ForEach calls in the process. Values below 1 are clamped to 1
// (pure serial, inline execution). Calls already in flight keep the limit
// they started with.
func SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	limit = n
	bucket = newBucket(n)
}

// Limit reports the current worker limit.
func Limit() int {
	mu.Lock()
	defer mu.Unlock()
	return limit
}

func current() (int, chan struct{}) {
	mu.Lock()
	defer mu.Unlock()
	return limit, bucket
}

type panicBox struct{ val any }

// Map evaluates fn(0..n-1) with at most Limit() items in flight and returns
// the results indexed by item. If any item returns an error, Map returns the
// error of the smallest failing index (a deterministic choice) after all
// items have run; it never cancels remaining work, so side effects are
// identical regardless of which item failed first in wall-clock time. A
// panic inside fn is re-raised on the calling goroutine after all workers
// have stopped.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// MapCtx is Map with cooperative cancellation: once ctx is cancelled, no
// further work item is dequeued — items already running finish (an item is
// never interrupted mid-run), and the skipped items' slots keep their zero
// values. When cancellation prevented at least one item from running,
// MapCtx returns ctx's error, so a caller can never mistake a partial
// gather for a complete one; an item's own error still wins the
// smallest-failing-index rule among the items that ran. With an
// uncancelled ctx, MapCtx behaves exactly like Map, so seeded callers keep
// byte-identical output at any worker count. A nil ctx means
// context.Background().
func MapCtx[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	errs := make([]error, n)
	lim, tok := current()

	var panicked atomic.Pointer[panicBox]
	var skipped atomic.Bool
	runItem := func(i int) {
		if ctx.Err() != nil {
			skipped.Store(true)
			return
		}
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicBox{val: r})
			}
		}()
		out[i], errs[i] = fn(ctx, i)
	}

	if lim <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			runItem(i)
		}
	} else {
		var next atomic.Int64
		work := func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runItem(i)
			}
		}
		var wg sync.WaitGroup
		// Spawn one helper per immediately-available token, at most n-1.
	spawn:
		for h := 0; h < n-1; h++ {
			select {
			case <-tok:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { tok <- struct{}{} }()
					work()
				}()
			default:
				break spawn
			}
		}
		work() // the caller is always a worker
		wg.Wait()
	}

	if p := panicked.Load(); p != nil {
		panic(p.val)
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	if skipped.Load() {
		return out, ctx.Err()
	}
	return out, nil
}

// ForEach is Map for work items with no result value.
func ForEach(n int, fn func(i int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// ForEachCtx is MapCtx for work items with no result value.
func ForEachCtx(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	_, err := MapCtx(ctx, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// SeedFor derives a per-item RNG seed from a base seed, a run index, and any
// number of identifying labels (struct, variant, machine, ...). The stream is
// a pure function of its arguments — never of scheduling — so seeded work
// stays deterministic under any parallelism. Distinct label tuples get
// decorrelated streams via FNV-1a.
func SeedFor(base int64, runIdx int, labels ...string) int64 {
	h := fnv.New64a()
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "#%d", runIdx)
	return base ^ int64(h.Sum64())
}

// Package coherence implements a MESI cache-coherence simulator with
// per-CPU private caches, a directory, and a coherence granularity of one
// cache line (the paper's Itanium systems keep coherence at the 128-byte L2
// line, §1). It supplies the mechanism whose cost the layout tool tries to
// minimize: a write to a line invalidates every other cached copy, and the
// subsequent misses pay the machine topology's cache-to-cache latencies —
// more than 1000 cycles across crossbars on a big Superdome, roughly an L2
// miss on a small bus box.
//
// The simulator also classifies misses (cold / replacement / coherence) and
// flags coherence events whose invalidating write did not overlap the bytes
// the victim accesses — i.e. ground-truth false sharing. The layout tool
// never sees these flags (it must infer false sharing from CodeConcurrency,
// like the paper's tool); they exist for evaluation and tests.
package coherence

import (
	"fmt"

	"structlayout/internal/machine"
)

// State is a MESI line state.
type State uint8

// MESI states. Invalid lines are simply absent from the cache.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter state name.
func (s State) String() string { return [...]string{"I", "S", "E", "M"}[s] }

// MissKind classifies why an access was not a plain hit.
type MissKind uint8

const (
	// MissNone: the access hit.
	MissNone MissKind = iota
	// MissCold: this CPU never held the line.
	MissCold
	// MissReplacement: the line was evicted for capacity earlier.
	MissReplacement
	// MissCoherence: the line was invalidated by another CPU's write.
	MissCoherence
	// MissUpgrade: the line was present Shared but the access was a write,
	// requiring invalidation of the other copies.
	MissUpgrade
)

// String names the miss kind.
func (m MissKind) String() string {
	return [...]string{"none", "cold", "replacement", "coherence", "upgrade"}[m]
}

// Protocol selects the coherence protocol. The paper's machines implement
// hardware coherence in the MESI family (§1 cites MESI, MSI, MOSI, MOESI);
// MESI is the default, MSI is available to quantify what the Exclusive
// state buys (silent E→M upgrades for private data).
type Protocol uint8

const (
	// MESI is the four-state protocol (default).
	MESI Protocol = iota
	// MSI drops the Exclusive state: a lone reader holds Shared, so its
	// own later write still pays an upgrade transaction.
	MSI
)

// String names the protocol.
func (p Protocol) String() string {
	if p == MSI {
		return "MSI"
	}
	return "MESI"
}

// Config sets the cache geometry. The default mirrors the paper's Itanium 2
// parts: 128-byte coherence lines and a 6 MB private cache.
type Config struct {
	LineSize int64
	Sets     int
	Ways     int
	// Protocol selects MESI (default) or MSI.
	Protocol Protocol
}

// DefaultItanium returns the 6 MB, 12-way, 128 B/line configuration.
func DefaultItanium() Config {
	return Config{LineSize: 128, Sets: 4096, Ways: 12}
}

// SmallCache returns a deliberately tiny cache for tests that need to
// provoke capacity evictions quickly.
func SmallCache() Config {
	return Config{LineSize: 128, Sets: 8, Ways: 2}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("coherence: line size %d not a positive power of two", c.LineSize)
	}
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("coherence: set count %d not a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("coherence: non-positive associativity %d", c.Ways)
	}
	if c.Protocol != MESI && c.Protocol != MSI {
		return fmt.Errorf("coherence: unknown protocol %d", c.Protocol)
	}
	return nil
}

// AccessResult reports one access's outcome.
type AccessResult struct {
	// Latency in cycles, per the machine's latency model.
	Latency int64
	// Miss is MissNone for hits.
	Miss MissKind
	// FalseSharing marks a coherence miss or upgrade whose triggering
	// remote write did not overlap the bytes of this access.
	FalseSharing bool
	// WriterAddr/WriterLen describe the invalidating write when
	// FalseSharing is set, so callers can attribute the event to the
	// *causing* field as well as the victim (what perf c2c's HITM report
	// does).
	WriterAddr int64
	WriterLen  int32
	// Invalidations is the number of remote copies invalidated.
	Invalidations int
	// Supplier is the CPU that supplied the line (-1 = memory or none).
	Supplier int
}

// Stats aggregates counters, globally and per CPU.
type Stats struct {
	Accesses      uint64
	Hits          uint64
	ColdMisses    uint64
	ReplMisses    uint64
	CohMisses     uint64
	Upgrades      uint64
	FalseSharing  uint64 // coherence events classified as false sharing
	TrueSharing   uint64 // coherence events with overlapping bytes
	Invalidations uint64 // copies invalidated by this CPU's writes
	Writebacks    uint64
	MemFetches    uint64
}

// add merges o into s.
func (s *Stats) add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.ColdMisses += o.ColdMisses
	s.ReplMisses += o.ReplMisses
	s.CohMisses += o.CohMisses
	s.Upgrades += o.Upgrades
	s.FalseSharing += o.FalseSharing
	s.TrueSharing += o.TrueSharing
	s.Invalidations += o.Invalidations
	s.Writebacks += o.Writebacks
	s.MemFetches += o.MemFetches
}

// Misses returns the total full misses (excluding upgrades).
func (s Stats) Misses() uint64 { return s.ColdMisses + s.ReplMisses + s.CohMisses }

// lineInfo is the directory entry plus sharing history for one line.
type lineInfo struct {
	line    int64
	sharers bitset // CPUs currently holding the line
	owner   int32  // CPU holding it E/M, -1 otherwise

	everCached  bitset // CPUs that ever held the line (cold classification)
	invalidated bitset // CPUs whose copy was invalidated (vs evicted)

	lastWriter   int32 // CPU of the most recent invalidating write
	lastWriteLo  int32 // byte range of that write within the line
	lastWriteHi  int32
	hasLastWrite bool
}

// way is one cache slot. The line tag is kept inline so the per-access set
// scan compares integers in the slot array instead of chasing the lineInfo
// pointer per way.
type way struct {
	line  int64
	info  *lineInfo
	state State
}

// cpuCache is one CPU's private cache: Sets × Ways with LRU order per set
// (most recently used last). Sets are allocated lazily on first touch with
// capacity exactly Ways, so the steady state never allocates: evictions
// shift in place and the append reuses the same backing array.
type cpuCache struct {
	sets [][]way
}

// slabSize is how many lineInfo entries (and their three bitsets) one
// directory slab allocation holds.
const slabSize = 256

// System is a full multiprocessor coherence domain. It is not safe for
// concurrent use: the execution engine drives it single-threaded under a
// virtual clock, which keeps simulations deterministic.
type System struct {
	topo   *machine.Topology
	cfg    Config
	caches []cpuCache

	// Directory. Lines below flatLines resolve through the flat slice —
	// one load instead of a map probe on the miss path; everything else
	// (out-of-arena addresses, tests with sparse address spaces) falls
	// back to the map. ReserveDirectory sizes the flat region.
	flat      []*lineInfo
	flatLines int64
	lines     map[int64]*lineInfo

	// lineInfo slab pool: entries and their bitset backing are carved from
	// chunked allocations instead of three small allocs per new line.
	slab     []lineInfo
	slabBits []uint64
	slabPos  int

	lineShift uint
	setMask   int64
	words     int // bitset words per CPU set

	global Stats
	perCPU []Stats
}

// NewSystem builds a coherence domain over the topology.
func NewSystem(topo *machine.Topology, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := topo.NumCPUs()
	s := &System{
		topo:   topo,
		cfg:    cfg,
		caches: make([]cpuCache, n),
		lines:  make(map[int64]*lineInfo),
		perCPU: make([]Stats, n),
		words:  (n + 63) / 64,
	}
	for i := int64(1); i < cfg.LineSize; i <<= 1 {
		s.lineShift++
	}
	s.setMask = int64(cfg.Sets - 1)
	for i := range s.caches {
		s.caches[i].sets = make([][]way, cfg.Sets)
	}
	return s, nil
}

// ReserveDirectory pre-sizes the flat directory to cover addresses in
// [0, maxAddr]. The execution engine calls it with the top of its bump
// allocator so every arena- and region-backed line takes the flat path;
// addresses beyond the reservation still work through the map fallback.
// Existing entries are preserved.
func (s *System) ReserveDirectory(maxAddr int64) {
	if maxAddr < 0 {
		return
	}
	n := maxAddr>>s.lineShift + 1
	if n <= s.flatLines {
		return
	}
	flat := make([]*lineInfo, n)
	copy(flat, s.flat)
	// Migrate map entries that the grown flat region now covers.
	for line, li := range s.lines {
		if line >= 0 && line < n {
			flat[line] = li
			delete(s.lines, line)
		}
	}
	s.flat, s.flatLines = flat, n
}

// lookup returns the directory entry for line, or nil.
func (s *System) lookup(line int64) *lineInfo {
	if uint64(line) < uint64(s.flatLines) {
		return s.flat[line]
	}
	return s.lines[line]
}

// getOrCreate returns the directory entry for line, allocating from the
// slab pool on first touch.
func (s *System) getOrCreate(line int64) *lineInfo {
	if li := s.lookup(line); li != nil {
		return li
	}
	if s.slabPos == len(s.slab) {
		s.slab = make([]lineInfo, slabSize)
		s.slabBits = make([]uint64, slabSize*3*s.words)
		s.slabPos = 0
	}
	li := &s.slab[s.slabPos]
	base := s.slabPos * 3 * s.words
	s.slabPos++
	li.line = line
	li.sharers = bitset(s.slabBits[base : base+s.words])
	li.everCached = bitset(s.slabBits[base+s.words : base+2*s.words])
	li.invalidated = bitset(s.slabBits[base+2*s.words : base+3*s.words])
	li.owner = -1
	li.lastWriter = -1
	if uint64(line) < uint64(s.flatLines) {
		s.flat[line] = li
	} else {
		if s.lines == nil {
			s.lines = make(map[int64]*lineInfo)
		}
		s.lines[line] = li
	}
	return li
}

// forEachLine visits every directory entry (flat and map-backed).
func (s *System) forEachLine(fn func(line int64, li *lineInfo)) {
	for line, li := range s.flat {
		if li != nil {
			fn(int64(line), li)
		}
	}
	for line, li := range s.lines {
		fn(line, li)
	}
}

// Config returns the cache geometry.
func (s *System) Config() Config { return s.cfg }

// GlobalStats returns aggregate counters.
func (s *System) GlobalStats() Stats { return s.global }

// CPUStats returns one CPU's counters.
func (s *System) CPUStats(cpu int) Stats { return s.perCPU[cpu] }

// Access performs one read or write of size bytes at addr by cpu and
// returns its outcome. Accesses that straddle a line boundary are split and
// their latencies summed.
func (s *System) Access(cpu int, addr int64, size int, write bool) AccessResult {
	if size <= 0 {
		panic(fmt.Sprintf("coherence: non-positive access size %d", size))
	}
	line := addr >> s.lineShift
	endLine := (addr + int64(size) - 1) >> s.lineShift
	res := s.accessLine(cpu, line, int32(addr-line<<s.lineShift), int32(min64(addr+int64(size), (line+1)<<s.lineShift)-(line<<s.lineShift)), write)
	for l := line + 1; l <= endLine; l++ {
		hi := int32(s.cfg.LineSize)
		if l == endLine {
			hi = int32(addr + int64(size) - l<<s.lineShift)
		}
		r2 := s.accessLine(cpu, l, 0, hi, write)
		res.Latency += r2.Latency
		res.Invalidations += r2.Invalidations
		if r2.Miss != MissNone && res.Miss == MissNone {
			res.Miss = r2.Miss
		}
		if r2.FalseSharing && !res.FalseSharing {
			res.WriterAddr, res.WriterLen = r2.WriterAddr, r2.WriterLen
		}
		res.FalseSharing = res.FalseSharing || r2.FalseSharing
	}
	return res
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// accessLine handles a single-line access touching bytes [lo,hi).
func (s *System) accessLine(cpu int, line int64, lo, hi int32, write bool) AccessResult {
	st := &s.perCPU[cpu]
	st.Accesses++
	s.global.Accesses++

	setIdx := line & s.setMask
	set := s.caches[cpu].sets[setIdx]

	// Repeat-access fast path: after any access, the line sits in the MRU
	// slot (hits rotate it there, fills append there), and nothing another
	// CPU does can move it — removeLine deletes it (the tag check below
	// fails), downgradeOwner rewrites state in place (read through the slot
	// stays current). So one tag compare against the MRU slot replaces the
	// set scan, and the LRU rotation is skipped because rotating the MRU
	// element is the identity. Reads hit in any state; writes keep the fast
	// path only in Modified (nothing can change) and Exclusive (the silent
	// E→M upgrade); a Shared write needs the directory and falls through.
	if n := len(set); n > 0 && set[n-1].line == line {
		w := &set[n-1]
		if !write {
			st.Hits++
			s.global.Hits++
			return AccessResult{Latency: s.topo.HitLatency, Supplier: -1}
		}
		switch w.state {
		case Modified:
			st.Hits++
			s.global.Hits++
			w.info.recordWrite(cpu, lo, hi)
			return AccessResult{Latency: s.topo.HitLatency, Supplier: -1}
		case Exclusive:
			w.state = Modified
			st.Hits++
			s.global.Hits++
			w.info.recordWrite(cpu, lo, hi)
			return AccessResult{Latency: s.topo.HitLatency, Supplier: -1}
		}
	}

	// Look up in this CPU's cache.
	for i := range set {
		if set[i].line != line {
			continue
		}
		w := set[i]
		// Present. Bump LRU.
		copy(set[i:], set[i+1:])
		set[len(set)-1] = w
		li := w.info
		if !write {
			st.Hits++
			s.global.Hits++
			return AccessResult{Latency: s.topo.HitLatency, Supplier: -1}
		}
		switch w.state {
		case Modified:
			st.Hits++
			s.global.Hits++
			li.recordWrite(cpu, lo, hi)
			return AccessResult{Latency: s.topo.HitLatency, Supplier: -1}
		case Exclusive:
			set[len(set)-1].state = Modified
			st.Hits++
			s.global.Hits++
			li.recordWrite(cpu, lo, hi)
			return AccessResult{Latency: s.topo.HitLatency, Supplier: -1}
		default: // Shared: upgrade
			lat, inv := s.invalidateOthers(cpu, li)
			set[len(set)-1].state = Modified
			li.owner = int32(cpu)
			st.Upgrades++
			s.global.Upgrades++
			li.recordWrite(cpu, lo, hi)
			if lat < s.topo.HitLatency {
				lat = s.topo.HitLatency
			}
			return AccessResult{Latency: lat, Miss: MissUpgrade, Invalidations: inv, Supplier: -1}
		}
	}

	// Miss path.
	li := s.getOrCreate(line)

	res := AccessResult{Supplier: -1}
	switch {
	case !li.everCached.get(cpu):
		res.Miss = MissCold
		st.ColdMisses++
		s.global.ColdMisses++
	case li.invalidated.get(cpu):
		res.Miss = MissCoherence
		st.CohMisses++
		s.global.CohMisses++
		if li.hasLastWrite && int(li.lastWriter) != cpu && (hi <= li.lastWriteLo || lo >= li.lastWriteHi) {
			res.FalseSharing = true
			res.WriterAddr = line<<s.lineShift + int64(li.lastWriteLo)
			res.WriterLen = li.lastWriteHi - li.lastWriteLo
			st.FalseSharing++
			s.global.FalseSharing++
		} else if li.hasLastWrite && int(li.lastWriter) != cpu {
			st.TrueSharing++
			s.global.TrueSharing++
		}
	default:
		res.Miss = MissReplacement
		st.ReplMisses++
		s.global.ReplMisses++
	}

	var newState State
	if write {
		// Read-for-ownership: fetch and invalidate everyone else.
		fetchLat := s.fetchLatency(cpu, li, &res)
		invLat, inv := s.invalidateOthers(cpu, li)
		if invLat > fetchLat {
			fetchLat = invLat
		}
		res.Latency = fetchLat
		res.Invalidations = inv
		newState = Modified
		li.owner = int32(cpu)
		li.recordWrite(cpu, lo, hi)
	} else {
		res.Latency = s.fetchLatency(cpu, li, &res)
		if li.owner >= 0 {
			// Downgrade the owner to Shared; Modified data is written back.
			ownerCPU := int(li.owner)
			if s.downgradeOwner(ownerCPU, line) {
				st.Writebacks++
				s.global.Writebacks++
			}
			li.owner = -1
			newState = Shared
		} else if !li.sharers.empty() {
			newState = Shared
		} else if s.cfg.Protocol == MSI {
			// MSI has no Exclusive state: lone readers hold Shared and pay
			// a real upgrade on their own first write.
			newState = Shared
		} else {
			newState = Exclusive
			li.owner = int32(cpu)
		}
	}

	s.insert(cpu, setIdx, li, newState)
	li.sharers.set(cpu)
	li.everCached.set(cpu)
	li.invalidated.clear(cpu)
	return res
}

// fetchLatency computes where the line comes from and the resulting cost,
// setting res.Supplier.
func (s *System) fetchLatency(cpu int, li *lineInfo, res *AccessResult) int64 {
	if li.owner >= 0 && int(li.owner) != cpu {
		res.Supplier = int(li.owner)
		return s.topo.TransferLatency(int(li.owner), cpu)
	}
	if nearest := li.sharers.nearest(cpu, s.topo); nearest >= 0 {
		res.Supplier = nearest
		return s.topo.TransferLatency(nearest, cpu)
	}
	s.perCPU[cpu].MemFetches++
	s.global.MemFetches++
	return s.topo.MemLatency(cpu, li.line)
}

// invalidateOthers removes all other CPUs' copies; returns the worst-case
// round-trip latency and the invalidation count.
func (s *System) invalidateOthers(cpu int, li *lineInfo) (int64, int) {
	var worst int64
	count := 0
	li.sharers.forEach(func(other int) {
		if other == cpu {
			return
		}
		if s.removeLine(other, li.line) {
			count++
			li.invalidated.set(other)
			if lat := s.topo.TransferLatency(cpu, other); lat > worst {
				worst = lat
			}
		}
		li.sharers.clear(other)
	})
	if count > 0 {
		s.perCPU[cpu].Invalidations += uint64(count)
		s.global.Invalidations += uint64(count)
	}
	if int(li.owner) != cpu {
		li.owner = -1
	}
	return worst, count
}

// downgradeOwner transitions the owner's copy M/E -> S; reports whether a
// writeback (from M) occurred.
func (s *System) downgradeOwner(owner int, line int64) bool {
	set := s.caches[owner].sets[line&s.setMask]
	for i := range set {
		if set[i].line == line {
			wb := set[i].state == Modified
			set[i].state = Shared
			return wb
		}
	}
	return false
}

// removeLine deletes the line from a CPU's cache; reports whether it was
// present.
func (s *System) removeLine(cpu int, line int64) bool {
	set := s.caches[cpu].sets[line&s.setMask]
	for i := range set {
		if set[i].line == line {
			copy(set[i:], set[i+1:])
			s.caches[cpu].sets[line&s.setMask] = set[:len(set)-1]
			return true
		}
	}
	return false
}

// insert places the line into the CPU's cache, evicting LRU on overflow.
// The set keeps its fixed Ways-capacity backing array, so eviction shifts
// in place and the append never allocates after the first touch.
func (s *System) insert(cpu int, setIdx int64, li *lineInfo, st State) {
	set := s.caches[cpu].sets[setIdx]
	if set == nil {
		set = make([]way, 0, s.cfg.Ways)
	}
	if len(set) >= s.cfg.Ways {
		victim := set[0]
		copy(set, set[1:])
		set = set[:len(set)-1]
		victim.info.sharers.clear(cpu)
		// Eviction is not an invalidation: the next miss is a replacement
		// miss, so do not touch victim.info.invalidated.
		if int(victim.info.owner) == cpu {
			victim.info.owner = -1
			if victim.state == Modified {
				s.perCPU[cpu].Writebacks++
				s.global.Writebacks++
			}
		}
	}
	s.caches[cpu].sets[setIdx] = append(set, way{line: li.line, info: li, state: st})
}

// StateOf reports the MESI state of the line holding addr in the CPU's
// cache (Invalid if absent). Intended for tests.
func (s *System) StateOf(cpu int, addr int64) State {
	line := addr >> s.lineShift
	for _, w := range s.caches[cpu].sets[line&s.setMask] {
		if w.line == line {
			return w.state
		}
	}
	return Invalid
}

// recordWrite remembers the byte range of the most recent write for
// false-sharing classification.
func (li *lineInfo) recordWrite(cpu int, lo, hi int32) {
	li.lastWriter = int32(cpu)
	li.lastWriteLo = lo
	li.lastWriteHi = hi
	li.hasLastWrite = true
}

// CheckInvariants verifies MESI invariants over the whole system: at most
// one owner per line, owner implies no other sharers, directory matches the
// caches. Tests call it after random access sequences.
func (s *System) CheckInvariants() error {
	// Rebuild the sharer view from the caches.
	type holder struct {
		cpu   int
		state State
	}
	holders := make(map[int64][]holder)
	for cpu := range s.caches {
		for _, set := range s.caches[cpu].sets {
			for _, w := range set {
				holders[w.line] = append(holders[w.line], holder{cpu, w.state})
			}
		}
	}
	for line, hs := range holders {
		li := s.lookup(line)
		if li == nil {
			return fmt.Errorf("line %d cached but has no directory entry", line)
		}
		exclusive := 0
		for _, h := range hs {
			if h.state == Modified || h.state == Exclusive {
				exclusive++
				if int(li.owner) != h.cpu {
					return fmt.Errorf("line %d: cpu %d holds %s but directory owner is %d", line, h.cpu, h.state, li.owner)
				}
			}
			if !li.sharers.get(h.cpu) {
				return fmt.Errorf("line %d: cpu %d holds copy but is not in sharer set", line, h.cpu)
			}
		}
		if exclusive > 1 {
			return fmt.Errorf("line %d has %d exclusive holders", line, exclusive)
		}
		if exclusive == 1 && len(hs) > 1 {
			return fmt.Errorf("line %d owned exclusively but has %d holders", line, len(hs))
		}
		if n := li.sharers.count(); n != len(hs) {
			return fmt.Errorf("line %d: directory says %d sharers, caches hold %d", line, n, len(hs))
		}
	}
	// No directory entry may claim sharers that hold nothing.
	var stale error
	s.forEachLine(func(line int64, li *lineInfo) {
		if stale == nil && li.sharers.count() != len(holders[line]) {
			stale = fmt.Errorf("line %d: stale sharers in directory", line)
		}
	})
	return stale
}

// Package coherence implements a MESI cache-coherence simulator with
// per-CPU private caches, a directory, and a coherence granularity of one
// cache line (the paper's Itanium systems keep coherence at the 128-byte L2
// line, §1). It supplies the mechanism whose cost the layout tool tries to
// minimize: a write to a line invalidates every other cached copy, and the
// subsequent misses pay the machine topology's cache-to-cache latencies —
// more than 1000 cycles across crossbars on a big Superdome, roughly an L2
// miss on a small bus box.
//
// The simulator also classifies misses (cold / replacement / coherence) and
// flags coherence events whose invalidating write did not overlap the bytes
// the victim accesses — i.e. ground-truth false sharing. The layout tool
// never sees these flags (it must infer false sharing from CodeConcurrency,
// like the paper's tool); they exist for evaluation and tests.
package coherence

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"structlayout/internal/machine"
)

// State is a MESI line state.
type State uint8

// MESI states. Invalid lines are simply absent from the cache.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter state name.
func (s State) String() string { return [...]string{"I", "S", "E", "M"}[s] }

// MissKind classifies why an access was not a plain hit.
type MissKind uint8

const (
	// MissNone: the access hit.
	MissNone MissKind = iota
	// MissCold: this CPU never held the line.
	MissCold
	// MissReplacement: the line was evicted for capacity earlier.
	MissReplacement
	// MissCoherence: the line was invalidated by another CPU's write.
	MissCoherence
	// MissUpgrade: the line was present Shared but the access was a write,
	// requiring invalidation of the other copies.
	MissUpgrade
)

// String names the miss kind.
func (m MissKind) String() string {
	return [...]string{"none", "cold", "replacement", "coherence", "upgrade"}[m]
}

// Protocol selects the coherence protocol. The paper's machines implement
// hardware coherence in the MESI family (§1 cites MESI, MSI, MOSI, MOESI);
// MESI is the default, MSI is available to quantify what the Exclusive
// state buys (silent E→M upgrades for private data).
type Protocol uint8

const (
	// MESI is the four-state protocol (default).
	MESI Protocol = iota
	// MSI drops the Exclusive state: a lone reader holds Shared, so its
	// own later write still pays an upgrade transaction.
	MSI
)

// String names the protocol.
func (p Protocol) String() string {
	if p == MSI {
		return "MSI"
	}
	return "MESI"
}

// Config sets the cache geometry. The default mirrors the paper's Itanium 2
// parts: 128-byte coherence lines and a 6 MB private cache.
type Config struct {
	LineSize int64
	Sets     int
	Ways     int
	// Protocol selects MESI (default) or MSI.
	Protocol Protocol
	// Shards is the number of directory shards (a power of two; 0 means 1).
	// A line's directory entry is allocated from shard line&(Shards-1), so
	// callers that partition the address space by line — the execution
	// engine's thread groups — can drive disjoint regions concurrently:
	// each shard's mutable allocation state (map tier, slab pool) has its
	// own lock, and every counter is per-CPU. Sharding never changes any
	// result: stats, states and latencies are byte-identical at any count.
	Shards int
}

// DefaultItanium returns the 6 MB, 12-way, 128 B/line configuration.
func DefaultItanium() Config {
	return Config{LineSize: 128, Sets: 4096, Ways: 12}
}

// SmallCache returns a deliberately tiny cache for tests that need to
// provoke capacity evictions quickly.
func SmallCache() Config {
	return Config{LineSize: 128, Sets: 8, Ways: 2}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("coherence: line size %d not a positive power of two", c.LineSize)
	}
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("coherence: set count %d not a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("coherence: non-positive associativity %d", c.Ways)
	}
	if c.Protocol != MESI && c.Protocol != MSI {
		return fmt.Errorf("coherence: unknown protocol %d", c.Protocol)
	}
	if c.Shards < 0 || c.Shards&(c.Shards-1) != 0 {
		return fmt.Errorf("coherence: shard count %d not a power of two", c.Shards)
	}
	return nil
}

// AccessResult reports one access's outcome.
type AccessResult struct {
	// Latency in cycles, per the machine's latency model.
	Latency int64
	// Miss is MissNone for hits.
	Miss MissKind
	// FalseSharing marks a coherence miss or upgrade whose triggering
	// remote write did not overlap the bytes of this access.
	FalseSharing bool
	// WriterAddr/WriterLen describe the invalidating write when
	// FalseSharing is set, so callers can attribute the event to the
	// *causing* field as well as the victim (what perf c2c's HITM report
	// does).
	WriterAddr int64
	WriterLen  int32
	// Invalidations is the number of remote copies invalidated.
	Invalidations int
	// Supplier is the CPU that supplied the line (-1 = memory or none).
	Supplier int
}

// Stats aggregates counters, globally and per CPU.
type Stats struct {
	Accesses      uint64
	Hits          uint64
	ColdMisses    uint64
	ReplMisses    uint64
	CohMisses     uint64
	Upgrades      uint64
	FalseSharing  uint64 // coherence events classified as false sharing
	TrueSharing   uint64 // coherence events with overlapping bytes
	Invalidations uint64 // copies invalidated by this CPU's writes
	Writebacks    uint64
	MemFetches    uint64
}

// Add merges o into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.ColdMisses += o.ColdMisses
	s.ReplMisses += o.ReplMisses
	s.CohMisses += o.CohMisses
	s.Upgrades += o.Upgrades
	s.FalseSharing += o.FalseSharing
	s.TrueSharing += o.TrueSharing
	s.Invalidations += o.Invalidations
	s.Writebacks += o.Writebacks
	s.MemFetches += o.MemFetches
}

// Misses returns the total full misses (excluding upgrades).
func (s Stats) Misses() uint64 { return s.ColdMisses + s.ReplMisses + s.CohMisses }

// lineInfo is the directory entry plus sharing history for one line.
type lineInfo struct {
	line    int64
	sharers bitset // CPUs currently holding the line
	owner   int32  // CPU holding it E/M, -1 otherwise

	everCached  bitset // CPUs that ever held the line (cold classification)
	invalidated bitset // CPUs whose copy was invalidated (vs evicted)

	lastWriter   int32 // CPU of the most recent invalidating write
	lastWriteLo  int32 // byte range of that write within the line
	lastWriteHi  int32
	hasLastWrite bool
}

// way is one cache slot. The line tag is kept inline so the per-access set
// scan compares integers in the slot array instead of chasing the lineInfo
// pointer per way.
// cpuCache is one CPU's private cache: Sets × Ways with LRU order per set
// (most recently used last), stored struct-of-arrays. Set setIdx occupies
// [setIdx*Ways, setIdx*Ways+n[setIdx]) in each array. Keeping the tags in
// their own contiguous array means the hit path's MRU probe and tag scan
// touch one or two host cache lines per set, instead of chasing a slice
// header to a separately allocated entry array. The arrays are allocated
// on the CPU's first access, so idle CPUs of a wide topology cost nothing;
// after that the steady state never allocates — evictions shift in place.
type cpuCache struct {
	lines []int64 // tags
	info  []*lineInfo
	state []State
	n     []int16 // per-set occupancy
}

func (c *cpuCache) init(cfg Config) {
	c.lines = make([]int64, cfg.Sets*cfg.Ways)
	c.info = make([]*lineInfo, len(c.lines))
	c.state = make([]State, len(c.lines))
	c.n = make([]int16, cfg.Sets)
}

// slabSize is how many lineInfo entries (and their three bitsets) one
// directory slab allocation holds.
const slabSize = 256

// dirShard is one shard of the directory's mutable allocation state: the
// sparse map tier and the slab pool new entries are carved from. The flat
// directory slice is shared across shards (callers that run concurrently
// partition lines, so distinct goroutines write distinct elements); only
// allocation — which mutates the slab cursor and the map — takes the
// shard's lock.
type dirShard struct {
	mu    sync.Mutex
	lines map[int64]*lineInfo

	// lineInfo slab pool: entries and their bitset backing are carved from
	// chunked allocations instead of three small allocs per new line.
	slab     []lineInfo
	slabBits []uint64
	slabPos  int
}

// System is a full multiprocessor coherence domain. The execution engine
// drives it under a virtual clock, which keeps simulations deterministic.
// It is safe for concurrent use only under the engine's partitioning
// contract: concurrent callers must drive disjoint sets of lines (and
// disjoint CPUs) — then directory entries, cache sets and per-CPU counters
// are all touched by one goroutine each, and the per-shard locks serialize
// the only shared mutation, slab/map allocation.
type System struct {
	topo   *machine.Topology
	cfg    Config
	caches []cpuCache

	// Directory. Lines below flatLines resolve through the flat slice —
	// one load instead of a map probe on the miss path; everything else
	// (out-of-arena addresses, tests with sparse address spaces) falls
	// back to the per-shard maps. ReserveDirectory sizes the flat region.
	flat      []*lineInfo
	flatLines int64

	shards    []dirShard
	shardMask int64

	lineShift uint
	setMask   int64
	words     int // bitset words per CPU set

	// perCPU holds every counter; the global view is their sum. Keeping a
	// single per-access increment (instead of the old paired per-CPU +
	// global bump) is what lets partitioned callers run without atomics:
	// each CPU belongs to exactly one caller.
	perCPU []Stats

	// warm is the per-CPU discard bin for Warm accesses: the transition
	// code increments counters unconditionally (keeping the exact path
	// branch-free), and Warm simply aims them here. Per CPU so warming
	// obeys the same partitioning contract as Access.
	warm []Stats

	// pinned is the per-CPU bin for AccessPinned: accesses a sampled run
	// measures in full rather than at the sampling rate (lock words). The
	// run's extrapolation adds this stratum at weight 1 while scaling the
	// windowed stratum, so always-measured traffic is never multiplied by
	// the inverse sampling rate.
	pinned []Stats

	// near[cpu] partitions the other CPUs into equal-transfer-latency
	// classes, ascending by latency, each class one bitset's worth of mask
	// words. Scanning classes in order and taking the lowest set bit of
	// (class ∧ sharers) yields the same CPU as bitset.nearest — the
	// lowest-indexed minimum-latency sharer — in a handful of word ops
	// instead of a per-sharer walk (on a 128-way box a widely shared line
	// made every miss scan up to 128 sharers).
	near [][]latClass
}

// latClass is one equal-latency group of CPUs relative to some home CPU.
type latClass struct {
	mask []uint64
}

// NewSystem builds a coherence domain over the topology.
func NewSystem(topo *machine.Topology, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	n := topo.NumCPUs()
	s := &System{
		topo:      topo,
		cfg:       cfg,
		caches:    make([]cpuCache, n),
		shards:    make([]dirShard, cfg.Shards),
		shardMask: int64(cfg.Shards - 1),
		perCPU:    make([]Stats, n),
		warm:      make([]Stats, n),
		pinned:    make([]Stats, n),
		words:     (n + 63) / 64,
	}
	for i := int64(1); i < cfg.LineSize; i <<= 1 {
		s.lineShift++
	}
	s.setMask = int64(cfg.Sets - 1)
	for i := range s.shards {
		s.shards[i].lines = make(map[int64]*lineInfo)
	}
	s.buildNearTable(n)
	return s, nil
}

// buildNearTable precomputes the per-CPU latency classes used by
// nearestSharer.
func (s *System) buildNearTable(n int) {
	s.near = make([][]latClass, n)
	for cpu := 0; cpu < n; cpu++ {
		byLat := make(map[int64]bitset)
		lats := make([]int64, 0, 4)
		for other := 0; other < n; other++ {
			if other == cpu {
				continue
			}
			lat := s.topo.TransferLatency(other, cpu)
			m, ok := byLat[lat]
			if !ok {
				m = newBitset(s.words)
				byLat[lat] = m
				lats = append(lats, lat)
			}
			m.set(other)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		classes := make([]latClass, len(lats))
		for i, lat := range lats {
			classes[i] = latClass{mask: byLat[lat]}
		}
		s.near[cpu] = classes
	}
}

// nearestSharer returns the lowest-indexed minimum-latency member of sh
// other than cpu, or -1 — the same answer as bitset.nearest, via the
// precomputed class masks.
func (s *System) nearestSharer(cpu int, sh bitset) int {
	for ci := range s.near[cpu] {
		mask := s.near[cpu][ci].mask
		for w, m := range mask {
			if v := uint64(sh[w]) & m; v != 0 {
				return w<<6 + bits.TrailingZeros64(v)
			}
		}
	}
	return -1
}

// ReserveDirectory pre-sizes the flat directory to cover addresses in
// [0, maxAddr]. The execution engine calls it with the top of its bump
// allocator so every arena- and region-backed line takes the flat path;
// addresses beyond the reservation still work through the map fallback.
// Existing entries are preserved. Not safe concurrently with accesses.
func (s *System) ReserveDirectory(maxAddr int64) {
	if maxAddr < 0 {
		return
	}
	n := maxAddr>>s.lineShift + 1
	if n <= s.flatLines {
		return
	}
	flat := make([]*lineInfo, n)
	copy(flat, s.flat)
	// Migrate map entries that the grown flat region now covers.
	for i := range s.shards {
		sh := &s.shards[i]
		for line, li := range sh.lines {
			if line >= 0 && line < n {
				flat[line] = li
				delete(sh.lines, line)
			}
		}
	}
	s.flat, s.flatLines = flat, n
}

// lookup returns the directory entry for line, or nil.
func (s *System) lookup(line int64) *lineInfo {
	if uint64(line) < uint64(s.flatLines) {
		return s.flat[line]
	}
	sh := &s.shards[line&s.shardMask]
	sh.mu.Lock()
	li := sh.lines[line]
	sh.mu.Unlock()
	return li
}

// alloc carves one lineInfo (and its bitset backing) from the shard's slab
// pool. Callers hold the shard lock.
func (sh *dirShard) alloc(line int64, words int) *lineInfo {
	if sh.slabPos == len(sh.slab) {
		sh.slab = make([]lineInfo, slabSize)
		sh.slabBits = make([]uint64, slabSize*3*words)
		sh.slabPos = 0
	}
	li := &sh.slab[sh.slabPos]
	base := sh.slabPos * 3 * words
	sh.slabPos++
	li.line = line
	li.sharers = bitset(sh.slabBits[base : base+words])
	li.everCached = bitset(sh.slabBits[base+words : base+2*words])
	li.invalidated = bitset(sh.slabBits[base+2*words : base+3*words])
	li.owner = -1
	li.lastWriter = -1
	return li
}

// getOrCreate returns the directory entry for line, allocating from the
// line's shard on first touch. Under the partitioning contract a given
// line is only ever created by one goroutine; the shard lock serializes
// the slab cursor and map, the only state distinct lines share.
func (s *System) getOrCreate(line int64) *lineInfo {
	if uint64(line) < uint64(s.flatLines) {
		if li := s.flat[line]; li != nil {
			return li
		}
		sh := &s.shards[line&s.shardMask]
		sh.mu.Lock()
		li := sh.alloc(line, s.words)
		sh.mu.Unlock()
		s.flat[line] = li
		return li
	}
	sh := &s.shards[line&s.shardMask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if li := sh.lines[line]; li != nil {
		return li
	}
	li := sh.alloc(line, s.words)
	sh.lines[line] = li
	return li
}

// forEachLine visits every directory entry (flat and map-backed). Not safe
// concurrently with accesses.
func (s *System) forEachLine(fn func(line int64, li *lineInfo)) {
	for line, li := range s.flat {
		if li != nil {
			fn(int64(line), li)
		}
	}
	for i := range s.shards {
		for line, li := range s.shards[i].lines {
			fn(line, li)
		}
	}
}

// Config returns the cache geometry.
func (s *System) Config() Config { return s.cfg }

// GlobalStats returns aggregate counters: the sum of every CPU's. Each
// increment lands on exactly one CPU's counters, so the sum equals what a
// single global tally would have counted, shard mode or not.
func (s *System) GlobalStats() Stats {
	var g Stats
	for i := range s.perCPU {
		g.Add(s.perCPU[i])
	}
	return g
}

// CPUStats returns one CPU's counters.
func (s *System) CPUStats(cpu int) Stats { return s.perCPU[cpu] }

// Access performs one read or write of size bytes at addr by cpu and
// returns its outcome. Accesses that straddle a line boundary are split and
// their latencies summed.
func (s *System) Access(cpu int, addr int64, size int, write bool) (res AccessResult) {
	s.access(cpu, addr, size, write, &s.perCPU[cpu], &res)
	return
}

// AccessInto is Access writing its outcome into *res instead of returning
// it, sparing the by-value result copy on the execution engine's hottest
// call edge. *res is fully overwritten.
func (s *System) AccessInto(cpu int, addr int64, size int, write bool, res *AccessResult) {
	*res = AccessResult{}
	s.access(cpu, addr, size, write, &s.perCPU[cpu], res)
}

// Warm performs the identical MESI transitions (and returns the identical
// outcome, latency included) as Access, but records no statistics: the
// counters land in a per-CPU discard bin. The sampled execution mode drives
// every off-window access through here — SMARTS-style functional warming —
// so that measured windows open on exactly the cache and directory state an
// exact run would have, instead of a stale one whose inflated miss rate
// would bias every extrapolated counter.
func (s *System) Warm(cpu int, addr int64, size int, write bool) (res AccessResult) {
	s.access(cpu, addr, size, write, &s.warm[cpu], &res)
	return
}

// AccessPinned is Access counting into the pinned stratum instead of the
// CPU's main counters. Sampled runs drive lock-word accesses — which are
// always measured, whatever window is open — through here, so GlobalStats
// covers exactly the rate-sampled accesses and PinnedStats the full-count
// ones; the extrapolation scales only the former.
func (s *System) AccessPinned(cpu int, addr int64, size int, write bool) (res AccessResult) {
	s.access(cpu, addr, size, write, &s.pinned[cpu], &res)
	return
}

// PinnedStats returns the summed pinned-stratum counters.
func (s *System) PinnedStats() Stats {
	var g Stats
	for i := range s.pinned {
		g.Add(s.pinned[i])
	}
	return g
}

// access fills res (which must be zeroed by the caller) with the outcome.
// The out-parameter style keeps the hot accessLine call from copying a
// multi-word AccessResult up through three stack frames per access.
func (s *System) access(cpu int, addr int64, size int, write bool, st *Stats, res *AccessResult) {
	if size <= 0 {
		panic(fmt.Sprintf("coherence: non-positive access size %d", size))
	}
	line := addr >> s.lineShift
	endLine := (addr + int64(size) - 1) >> s.lineShift
	s.accessLine(cpu, line, int32(addr-line<<s.lineShift), int32(min64(addr+int64(size), (line+1)<<s.lineShift)-(line<<s.lineShift)), write, st, res)
	for l := line + 1; l <= endLine; l++ {
		hi := int32(s.cfg.LineSize)
		if l == endLine {
			hi = int32(addr + int64(size) - l<<s.lineShift)
		}
		var r2 AccessResult
		s.accessLine(cpu, l, 0, hi, write, st, &r2)
		res.Latency += r2.Latency
		res.Invalidations += r2.Invalidations
		if r2.Miss != MissNone && res.Miss == MissNone {
			res.Miss = r2.Miss
		}
		if r2.FalseSharing && !res.FalseSharing {
			res.WriterAddr, res.WriterLen = r2.WriterAddr, r2.WriterLen
		}
		res.FalseSharing = res.FalseSharing || r2.FalseSharing
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// accessLine handles a single-line access touching bytes [lo,hi), counting
// into st (the CPU's real counters, or its warm discard bin). res must
// arrive zeroed.
func (s *System) accessLine(cpu int, line int64, lo, hi int32, write bool, st *Stats, res *AccessResult) {
	st.Accesses++
	res.Supplier = -1

	setIdx := line & s.setMask
	c := &s.caches[cpu]
	if c.n == nil {
		c.init(s.cfg)
	}
	base := int(setIdx) * s.cfg.Ways
	n := int(c.n[setIdx])

	// Repeat-access fast path: after any access, the line sits in the MRU
	// slot (hits rotate it there, fills append there), and nothing another
	// CPU does can move it — removeLine deletes it (the tag check below
	// fails), downgradeOwner rewrites state in place (read through the slot
	// stays current). So one tag compare against the MRU slot replaces the
	// set scan, and the LRU rotation is skipped because rotating the MRU
	// element is the identity. Reads hit in any state; writes keep the fast
	// path only in Modified (nothing can change) and Exclusive (the silent
	// E→M upgrade); a Shared write needs the directory and falls through.
	if mru := base + n - 1; n > 0 && c.lines[mru] == line {
		if !write {
			st.Hits++
			res.Latency = s.topo.HitLatency
			return
		}
		switch c.state[mru] {
		case Modified:
			st.Hits++
			c.info[mru].recordWrite(cpu, lo, hi)
			res.Latency = s.topo.HitLatency
			return
		case Exclusive:
			c.state[mru] = Modified
			st.Hits++
			c.info[mru].recordWrite(cpu, lo, hi)
			res.Latency = s.topo.HitLatency
			return
		}
	}

	// Look up in this CPU's cache.
	for i := base; i < base+n; i++ {
		if c.lines[i] != line {
			continue
		}
		li := c.info[i]
		state := c.state[i]
		// Present. Bump LRU: rotate the line to the MRU slot.
		mru := base + n - 1
		copy(c.lines[i:mru], c.lines[i+1:mru+1])
		copy(c.info[i:mru], c.info[i+1:mru+1])
		copy(c.state[i:mru], c.state[i+1:mru+1])
		c.lines[mru], c.info[mru] = line, li
		if !write {
			c.state[mru] = state
			st.Hits++
			res.Latency = s.topo.HitLatency
			return
		}
		switch state {
		case Modified:
			c.state[mru] = state
			st.Hits++
			li.recordWrite(cpu, lo, hi)
			res.Latency = s.topo.HitLatency
			return
		case Exclusive:
			c.state[mru] = Modified
			st.Hits++
			li.recordWrite(cpu, lo, hi)
			res.Latency = s.topo.HitLatency
			return
		default: // Shared: upgrade
			lat, inv := s.invalidateOthers(cpu, li, st)
			c.state[mru] = Modified
			li.owner = int32(cpu)
			st.Upgrades++
			li.recordWrite(cpu, lo, hi)
			if lat < s.topo.HitLatency {
				lat = s.topo.HitLatency
			}
			res.Latency, res.Miss, res.Invalidations = lat, MissUpgrade, inv
			return
		}
	}

	// Miss path.
	li := s.getOrCreate(line)

	switch {
	case !li.everCached.get(cpu):
		res.Miss = MissCold
		st.ColdMisses++
	case li.invalidated.get(cpu):
		res.Miss = MissCoherence
		st.CohMisses++
		if li.hasLastWrite && int(li.lastWriter) != cpu && (hi <= li.lastWriteLo || lo >= li.lastWriteHi) {
			res.FalseSharing = true
			res.WriterAddr = line<<s.lineShift + int64(li.lastWriteLo)
			res.WriterLen = li.lastWriteHi - li.lastWriteLo
			st.FalseSharing++
		} else if li.hasLastWrite && int(li.lastWriter) != cpu {
			st.TrueSharing++
		}
	default:
		res.Miss = MissReplacement
		st.ReplMisses++
	}

	var newState State
	if write {
		// Read-for-ownership: fetch and invalidate everyone else.
		fetchLat := s.fetchLatency(cpu, li, res, st)
		invLat, inv := s.invalidateOthers(cpu, li, st)
		if invLat > fetchLat {
			fetchLat = invLat
		}
		res.Latency = fetchLat
		res.Invalidations = inv
		newState = Modified
		li.owner = int32(cpu)
		li.recordWrite(cpu, lo, hi)
	} else {
		res.Latency = s.fetchLatency(cpu, li, res, st)
		if li.owner >= 0 {
			// Downgrade the owner to Shared; Modified data is written back.
			ownerCPU := int(li.owner)
			if s.downgradeOwner(ownerCPU, line) {
				st.Writebacks++
				}
			li.owner = -1
			newState = Shared
		} else if !li.sharers.empty() {
			newState = Shared
		} else if s.cfg.Protocol == MSI {
			// MSI has no Exclusive state: lone readers hold Shared and pay
			// a real upgrade on their own first write.
			newState = Shared
		} else {
			newState = Exclusive
			li.owner = int32(cpu)
		}
	}

	s.insert(cpu, setIdx, li, newState, st)
	li.sharers.set(cpu)
	li.everCached.set(cpu)
	li.invalidated.clear(cpu)
}

// fetchLatency computes where the line comes from and the resulting cost,
// setting res.Supplier.
func (s *System) fetchLatency(cpu int, li *lineInfo, res *AccessResult, st *Stats) int64 {
	if li.owner >= 0 && int(li.owner) != cpu {
		res.Supplier = int(li.owner)
		return s.topo.TransferLatency(int(li.owner), cpu)
	}
	if nearest := s.nearestSharer(cpu, li.sharers); nearest >= 0 {
		res.Supplier = nearest
		return s.topo.TransferLatency(nearest, cpu)
	}
	st.MemFetches++
	return s.topo.MemLatency(cpu, li.line)
}

// invalidateOthers removes all other CPUs' copies; returns the worst-case
// round-trip latency and the invalidation count.
func (s *System) invalidateOthers(cpu int, li *lineInfo, st *Stats) (int64, int) {
	var worst int64
	count := 0
	li.sharers.forEach(func(other int) {
		if other == cpu {
			return
		}
		if s.removeLine(other, li.line) {
			count++
			li.invalidated.set(other)
			if lat := s.topo.TransferLatency(cpu, other); lat > worst {
				worst = lat
			}
		}
		li.sharers.clear(other)
	})
	if count > 0 {
		st.Invalidations += uint64(count)
	}
	if int(li.owner) != cpu {
		li.owner = -1
	}
	return worst, count
}

// downgradeOwner transitions the owner's copy M/E -> S; reports whether a
// writeback (from M) occurred.
func (s *System) downgradeOwner(owner int, line int64) bool {
	c := &s.caches[owner]
	if c.n == nil {
		return false
	}
	setIdx := line & s.setMask
	base := int(setIdx) * s.cfg.Ways
	for i := base; i < base+int(c.n[setIdx]); i++ {
		if c.lines[i] == line {
			wb := c.state[i] == Modified
			c.state[i] = Shared
			return wb
		}
	}
	return false
}

// removeLine deletes the line from a CPU's cache; reports whether it was
// present.
func (s *System) removeLine(cpu int, line int64) bool {
	c := &s.caches[cpu]
	if c.n == nil {
		return false
	}
	setIdx := line & s.setMask
	base := int(setIdx) * s.cfg.Ways
	top := base + int(c.n[setIdx])
	for i := base; i < top; i++ {
		if c.lines[i] == line {
			copy(c.lines[i:top-1], c.lines[i+1:top])
			copy(c.info[i:top-1], c.info[i+1:top])
			copy(c.state[i:top-1], c.state[i+1:top])
			c.info[top-1] = nil
			c.n[setIdx]--
			return true
		}
	}
	return false
}

// insert places the line into the CPU's cache, evicting LRU on overflow.
// The set's window in the backing arrays is fixed, so eviction shifts in
// place and the fill never allocates.
func (s *System) insert(cpu int, setIdx int64, li *lineInfo, newState State, st *Stats) {
	c := &s.caches[cpu]
	if c.n == nil {
		c.init(s.cfg)
	}
	base := int(setIdx) * s.cfg.Ways
	n := int(c.n[setIdx])
	if n >= s.cfg.Ways {
		victim := c.info[base]
		victimState := c.state[base]
		top := base + n
		copy(c.lines[base:top-1], c.lines[base+1:top])
		copy(c.info[base:top-1], c.info[base+1:top])
		copy(c.state[base:top-1], c.state[base+1:top])
		n--
		victim.sharers.clear(cpu)
		// Eviction is not an invalidation: the next miss is a replacement
		// miss, so do not touch victim.invalidated.
		if int(victim.owner) == cpu {
			victim.owner = -1
			if victimState == Modified {
				st.Writebacks++
			}
		}
	}
	c.lines[base+n] = li.line
	c.info[base+n] = li
	c.state[base+n] = newState
	c.n[setIdx] = int16(n + 1)
}

// StateOf reports the MESI state of the line holding addr in the CPU's
// cache (Invalid if absent). Intended for tests.
func (s *System) StateOf(cpu int, addr int64) State {
	line := addr >> s.lineShift
	c := &s.caches[cpu]
	if c.n == nil {
		return Invalid
	}
	setIdx := line & s.setMask
	base := int(setIdx) * s.cfg.Ways
	for i := base; i < base+int(c.n[setIdx]); i++ {
		if c.lines[i] == line {
			return c.state[i]
		}
	}
	return Invalid
}

// recordWrite remembers the byte range of the most recent write for
// false-sharing classification.
func (li *lineInfo) recordWrite(cpu int, lo, hi int32) {
	li.lastWriter = int32(cpu)
	li.lastWriteLo = lo
	li.lastWriteHi = hi
	li.hasLastWrite = true
}

// CheckInvariants verifies MESI invariants over the whole system: at most
// one owner per line, owner implies no other sharers, directory matches the
// caches. Tests call it after random access sequences.
func (s *System) CheckInvariants() error {
	// Rebuild the sharer view from the caches.
	type holder struct {
		cpu   int
		state State
	}
	holders := make(map[int64][]holder)
	for cpu := range s.caches {
		c := &s.caches[cpu]
		if c.n == nil {
			continue
		}
		for setIdx := range c.n {
			base := setIdx * s.cfg.Ways
			for i := base; i < base+int(c.n[setIdx]); i++ {
				holders[c.lines[i]] = append(holders[c.lines[i]], holder{cpu, c.state[i]})
			}
		}
	}
	for line, hs := range holders {
		li := s.lookup(line)
		if li == nil {
			return fmt.Errorf("line %d cached but has no directory entry", line)
		}
		exclusive := 0
		for _, h := range hs {
			if h.state == Modified || h.state == Exclusive {
				exclusive++
				if int(li.owner) != h.cpu {
					return fmt.Errorf("line %d: cpu %d holds %s but directory owner is %d", line, h.cpu, h.state, li.owner)
				}
			}
			if !li.sharers.get(h.cpu) {
				return fmt.Errorf("line %d: cpu %d holds copy but is not in sharer set", line, h.cpu)
			}
		}
		if exclusive > 1 {
			return fmt.Errorf("line %d has %d exclusive holders", line, exclusive)
		}
		if exclusive == 1 && len(hs) > 1 {
			return fmt.Errorf("line %d owned exclusively but has %d holders", line, len(hs))
		}
		if n := li.sharers.count(); n != len(hs) {
			return fmt.Errorf("line %d: directory says %d sharers, caches hold %d", line, n, len(hs))
		}
	}
	// No directory entry may claim sharers that hold nothing.
	var stale error
	s.forEachLine(func(line int64, li *lineInfo) {
		if stale == nil && li.sharers.count() != len(holders[line]) {
			stale = fmt.Errorf("line %d: stale sharers in directory", line)
		}
	})
	return stale
}

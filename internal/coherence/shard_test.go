package coherence

import (
	"math/rand"
	"testing"

	"structlayout/internal/machine"
)

// driveMixed replays one seeded access mix (reads/writes, partial-line
// accesses, enough lines to evict in a small cache) against a system.
func driveMixed(t *testing.T, cfg Config, reserve bool) *System {
	t.Helper()
	topo := machine.Bus4()
	s := mustSystem(t, topo, cfg)
	if reserve {
		s.ReserveDirectory(256 * cfg.LineSize)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50000; i++ {
		cpu := rng.Intn(topo.NumCPUs())
		line := int64(rng.Intn(200))
		off := int64(rng.Intn(int(cfg.LineSize)/8)) * 8 // line-interior, no straddle
		write := rng.Intn(3) == 0
		s.Access(cpu, line*cfg.LineSize+off, 8, write)
	}
	return s
}

// TestShardingByteIdentical pins the sharding contract: shard count is an
// allocation detail, never an observable. Per-CPU stats, global stats,
// per-line states and invariants must be byte-identical at every shard
// count, with and without a reserved flat directory.
func TestShardingByteIdentical(t *testing.T) {
	topo := machine.Bus4()
	for _, reserve := range []bool{false, true} {
		base := driveMixed(t, SmallCache(), reserve)
		for _, shards := range []int{1, 2, 8, 64} {
			cfg := SmallCache()
			cfg.Shards = shards
			s := driveMixed(t, cfg, reserve)
			for cpu := 0; cpu < topo.NumCPUs(); cpu++ {
				if got, want := s.CPUStats(cpu), base.CPUStats(cpu); got != want {
					t.Fatalf("shards=%d reserve=%v cpu %d stats %+v, unsharded %+v", shards, reserve, cpu, got, want)
				}
			}
			if got, want := s.GlobalStats(), base.GlobalStats(); got != want {
				t.Fatalf("shards=%d reserve=%v global stats %+v, unsharded %+v", shards, reserve, got, want)
			}
			for line := int64(0); line < 200; line++ {
				for cpu := 0; cpu < topo.NumCPUs(); cpu++ {
					if got, want := s.StateOf(cpu, line*cfg.LineSize), base.StateOf(cpu, line*cfg.LineSize); got != want {
						t.Fatalf("shards=%d line %d cpu %d state %v, unsharded %v", shards, line, cpu, got, want)
					}
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("shards=%d reserve=%v: %v", shards, reserve, err)
			}
		}
	}
}

// TestGlobalStatsIsPerCPUSum: with the global counters derived rather than
// stored, the derivation must be exact — every increment lands on exactly
// one CPU.
func TestGlobalStatsIsPerCPUSum(t *testing.T) {
	s := driveMixed(t, SmallCache(), true)
	var sum Stats
	for cpu := 0; cpu < machine.Bus4().NumCPUs(); cpu++ {
		sum.Add(s.CPUStats(cpu))
	}
	if g := s.GlobalStats(); g != sum {
		t.Fatalf("GlobalStats %+v != per-CPU sum %+v", g, sum)
	}
	if g := s.GlobalStats(); g.Accesses != 50000 {
		t.Fatalf("accesses %d, want 50000", g.Accesses)
	}
}

// TestShardValidate rejects non-power-of-two shard counts.
func TestShardValidate(t *testing.T) {
	for _, bad := range []int{-1, 3, 6, 12} {
		cfg := SmallCache()
		cfg.Shards = bad
		if err := cfg.Validate(); err == nil {
			t.Fatalf("Shards=%d validated", bad)
		}
	}
	for _, ok := range []int{0, 1, 2, 4, 128} {
		cfg := SmallCache()
		cfg.Shards = ok
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Shards=%d rejected: %v", ok, err)
		}
	}
}

package coherence

import (
	"math/rand"
	"testing"

	"structlayout/internal/machine"
)

// refModel is a deliberately naive MESI reference: per-line per-CPU states
// in maps, no capacity limits, the protocol transcribed directly from a
// textbook table. With an effectively infinite cache (no evictions), the
// production simulator must agree with it on every observable: hit/miss,
// miss classification, invalidation counts, and final line states.
type refModel struct {
	n     int
	state map[int64][]State
	ever  map[int64][]bool
	inval map[int64][]bool
}

func newRefModel(n int) *refModel {
	return &refModel{
		n:     n,
		state: map[int64][]State{},
		ever:  map[int64][]bool{},
		inval: map[int64][]bool{},
	}
}

func (m *refModel) line(l int64) ([]State, []bool, []bool) {
	if m.state[l] == nil {
		m.state[l] = make([]State, m.n)
		m.ever[l] = make([]bool, m.n)
		m.inval[l] = make([]bool, m.n)
	}
	return m.state[l], m.ever[l], m.inval[l]
}

// access returns (miss kind, invalidations).
func (m *refModel) access(cpu int, l int64, write bool) (MissKind, int) {
	st, ever, inval := m.line(l)
	present := st[cpu] != Invalid

	var kind MissKind
	switch {
	case present:
		if !write || st[cpu] == Modified {
			kind = MissNone
		} else if st[cpu] == Exclusive {
			kind = MissNone // silent E->M upgrade
		} else {
			kind = MissUpgrade
		}
	case !ever[cpu]:
		kind = MissCold
	case inval[cpu]:
		kind = MissCoherence
	default:
		kind = MissReplacement // unreachable with infinite cache
	}

	invalidations := 0
	if write {
		for o := 0; o < m.n; o++ {
			if o != cpu && st[o] != Invalid {
				st[o] = Invalid
				inval[o] = true
				invalidations++
			}
		}
		st[cpu] = Modified
	} else if !present {
		// Read miss: join as Shared if anyone holds it, else Exclusive.
		shared := false
		for o := 0; o < m.n; o++ {
			if o != cpu && st[o] != Invalid {
				shared = true
				if st[o] == Modified || st[o] == Exclusive {
					st[o] = Shared
				}
			}
		}
		if shared {
			st[cpu] = Shared
		} else {
			st[cpu] = Exclusive
		}
	}
	ever[cpu] = true
	inval[cpu] = false
	return kind, invalidations
}

// TestAgainstReferenceModel drives both models with identical random access
// sequences (full 8-byte line writes, so no false-sharing classification
// ambiguity) and requires bit-identical observable behaviour.
func TestAgainstReferenceModel(t *testing.T) {
	topo := machine.Way16()
	// Effectively infinite cache: every line maps somewhere with room.
	cfg := Config{LineSize: 128, Sets: 1024, Ways: 64}
	sys := mustSystem(t, topo, cfg)
	ref := newRefModel(topo.NumCPUs())

	rng := rand.New(rand.NewSource(20070311))
	for i := 0; i < 100000; i++ {
		cpu := rng.Intn(topo.NumCPUs())
		line := int64(rng.Intn(64))
		write := rng.Intn(3) == 0

		got := sys.Access(cpu, line*cfg.LineSize, 8, write)
		wantKind, wantInv := ref.access(cpu, line, write)

		if got.Miss != wantKind {
			t.Fatalf("step %d (cpu %d line %d write %v): miss %v, reference says %v",
				i, cpu, line, write, got.Miss, wantKind)
		}
		if got.Invalidations != wantInv {
			t.Fatalf("step %d: invalidations %d, reference says %d", i, got.Invalidations, wantInv)
		}
	}
	// Final states agree everywhere.
	for line, states := range ref.state {
		for cpu, want := range states {
			got := sys.StateOf(cpu, line*cfg.LineSize)
			// The production model may hold S where the reference computed
			// S; E/M must match exactly; Invalid must match.
			if got != want {
				t.Fatalf("final state line %d cpu %d: %v, reference %v", line, cpu, got, want)
			}
		}
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

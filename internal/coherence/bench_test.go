package coherence

import (
	"math/rand"
	"testing"

	"structlayout/internal/machine"
)

// accessPattern pre-generates a deterministic access stream so the
// benchmark measures the simulator, not the generator. The mix mirrors the
// SDET workload: mostly-read scans over a shared arena plus contended
// writes to a handful of hot lines.
type accessPattern struct {
	cpu   []int
	addr  []int64
	size  []int
	write []bool
}

func makePattern(n, cpus int, maxAddr int64) *accessPattern {
	rng := rand.New(rand.NewSource(42))
	p := &accessPattern{
		cpu:   make([]int, n),
		addr:  make([]int64, n),
		size:  make([]int, n),
		write: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		p.cpu[i] = rng.Intn(cpus)
		if rng.Intn(10) == 0 {
			// Hot contended lines near the base (locks, counters).
			p.addr[i] = 128 + int64(rng.Intn(16))*8
			p.write[i] = true
		} else {
			p.addr[i] = 128 + rng.Int63n(maxAddr-256)
			p.write[i] = rng.Intn(4) == 0
		}
		p.size[i] = 8
	}
	return p
}

func benchmarkAccess(b *testing.B, topo *machine.Topology, cfg Config) {
	const streamLen = 1 << 16
	pat := makePattern(streamLen, topo.NumCPUs(), 1<<20)
	sys, err := NewSystem(topo, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys.ReserveDirectory(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % streamLen
		sys.Access(pat.cpu[j], pat.addr[j], pat.size[j], pat.write[j])
	}
}

// BenchmarkCoherenceAccess measures the simulator's per-access cost — the
// inner loop of every measured run — on the two evaluation machines.
func BenchmarkCoherenceAccess(b *testing.B) {
	b.Run("Bus4", func(b *testing.B) {
		benchmarkAccess(b, machine.Bus4(), Config{LineSize: 128, Sets: 128, Ways: 8})
	})
	b.Run("Superdome128", func(b *testing.B) {
		benchmarkAccess(b, machine.Superdome128(), Config{LineSize: 128, Sets: 128, Ways: 8})
	})
}

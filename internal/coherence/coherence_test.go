package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"structlayout/internal/machine"
)

func mustSystem(t testing.TB, topo *machine.Topology, cfg Config) *System {
	t.Helper()
	s, err := NewSystem(topo, cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func newSD(t testing.TB) *System {
	t.Helper()
	return mustSystem(t, machine.Superdome128(), DefaultItanium())
}

func TestColdMissThenHit(t *testing.T) {
	s := newSD(t)
	r := s.Access(0, 0x1000, 8, false)
	if r.Miss != MissCold {
		t.Fatalf("first access: miss=%v", r.Miss)
	}
	if r.Latency <= s.topo.HitLatency {
		t.Fatalf("cold miss latency %d too low", r.Latency)
	}
	r = s.Access(0, 0x1000, 8, false)
	if r.Miss != MissNone || r.Latency != s.topo.HitLatency {
		t.Fatalf("second access: %+v", r)
	}
	if st := s.StateOf(0, 0x1000); st != Exclusive {
		t.Fatalf("state after lone read = %v, want E", st)
	}
}

func TestReadSharing(t *testing.T) {
	s := newSD(t)
	s.Access(0, 0x2000, 8, false)
	r := s.Access(1, 0x2000, 8, false)
	if r.Supplier != 0 {
		t.Fatalf("supplier = %d, want 0", r.Supplier)
	}
	if s.StateOf(0, 0x2000) != Shared || s.StateOf(1, 0x2000) != Shared {
		t.Fatal("both copies should be Shared")
	}
}

func TestWriteUpgradeInvalidates(t *testing.T) {
	s := newSD(t)
	s.Access(0, 0x3000, 8, false)
	s.Access(1, 0x3000, 8, false)
	r := s.Access(0, 0x3000, 8, true)
	if r.Miss != MissUpgrade || r.Invalidations != 1 {
		t.Fatalf("upgrade: %+v", r)
	}
	if s.StateOf(0, 0x3000) != Modified {
		t.Fatal("writer should be Modified")
	}
	if s.StateOf(1, 0x3000) != Invalid {
		t.Fatal("other copy should be invalidated")
	}
}

func TestFalseSharingClassification(t *testing.T) {
	s := newSD(t)
	// CPU0 reads bytes [0,8); CPU1 writes bytes [64,72) of the same line.
	s.Access(0, 0x4000, 8, false)
	s.Access(1, 0x4040, 8, true)
	// CPU0's next read of its disjoint bytes is a false-sharing miss.
	r := s.Access(0, 0x4000, 8, false)
	if r.Miss != MissCoherence {
		t.Fatalf("miss = %v, want coherence", r.Miss)
	}
	if !r.FalseSharing {
		t.Fatal("disjoint byte ranges should classify as false sharing")
	}
	// True sharing: CPU1 writes the same bytes CPU0 reads.
	s.Access(1, 0x4000, 8, true)
	r = s.Access(0, 0x4000, 8, false)
	if r.Miss != MissCoherence || r.FalseSharing {
		t.Fatalf("overlapping write should be true sharing: %+v", r)
	}
	gs := s.GlobalStats()
	if gs.FalseSharing != 1 || gs.TrueSharing != 1 {
		t.Fatalf("stats: false=%d true=%d", gs.FalseSharing, gs.TrueSharing)
	}
}

func TestModifiedSupplyWritesBack(t *testing.T) {
	s := newSD(t)
	s.Access(0, 0x5000, 8, true)
	if s.StateOf(0, 0x5000) != Modified {
		t.Fatal("writer not Modified")
	}
	r := s.Access(1, 0x5000, 8, false)
	if r.Supplier != 0 {
		t.Fatalf("supplier = %d", r.Supplier)
	}
	if s.StateOf(0, 0x5000) != Shared || s.StateOf(1, 0x5000) != Shared {
		t.Fatal("after remote read both should be Shared")
	}
	if s.GlobalStats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", s.GlobalStats().Writebacks)
	}
}

func TestRemoteLatencyDependsOnDistance(t *testing.T) {
	s := newSD(t)
	// Line owned modified by CPU 0.
	s.Access(0, 0x6000, 8, true)
	near := s.Access(1, 0x6000, 8, false) // same chip
	// Re-own by CPU 0.
	s.Access(0, 0x6000, 8, true)
	far := s.Access(127, 0x6000, 8, false) // other crossbar
	if far.Latency <= near.Latency {
		t.Fatalf("far latency %d should exceed near %d", far.Latency, near.Latency)
	}
	if far.Latency != 1000 {
		t.Fatalf("inter-crossbar transfer = %d, want 1000", far.Latency)
	}
}

func TestPingPong(t *testing.T) {
	s := newSD(t)
	// Two CPUs on different crossbars alternately writing the same line:
	// every access after the first pair must be a coherence event.
	s.Access(0, 0x7000, 8, true)
	s.Access(32, 0x7008, 8, true)
	for i := 0; i < 10; i++ {
		r0 := s.Access(0, 0x7000, 8, true)
		if r0.Miss != MissCoherence || !r0.FalseSharing {
			t.Fatalf("iter %d cpu0: %+v", i, r0)
		}
		r1 := s.Access(32, 0x7008, 8, true)
		if r1.Miss != MissCoherence || !r1.FalseSharing {
			t.Fatalf("iter %d cpu32: %+v", i, r1)
		}
	}
}

func TestCapacityEvictionIsReplacementMiss(t *testing.T) {
	s := mustSystem(t, machine.Bus4(), SmallCache())
	cfg := s.Config()
	// Fill one set beyond capacity: lines mapping to set 0 are multiples of
	// Sets*LineSize.
	strideBytes := int64(cfg.Sets) * cfg.LineSize
	for i := 0; i <= cfg.Ways; i++ {
		s.Access(0, int64(i)*strideBytes, 8, false)
	}
	// Line 0 was evicted; re-access must be a replacement miss.
	r := s.Access(0, 0, 8, false)
	if r.Miss != MissReplacement {
		t.Fatalf("miss = %v, want replacement", r.Miss)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	s := mustSystem(t, machine.Bus4(), SmallCache())
	cfg := s.Config()
	strideBytes := int64(cfg.Sets) * cfg.LineSize
	s.Access(0, 0, 8, true) // dirty line 0
	for i := 1; i <= cfg.Ways; i++ {
		s.Access(0, int64(i)*strideBytes, 8, false)
	}
	if s.GlobalStats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", s.GlobalStats().Writebacks)
	}
}

func TestLineStraddlingAccess(t *testing.T) {
	s := newSD(t)
	lineSize := s.Config().LineSize
	r := s.Access(0, lineSize-4, 8, false) // crosses a line boundary
	if r.Latency <= s.topo.MemLatency(0, 0) {
		t.Fatalf("straddling access latency %d should cover two fetches", r.Latency)
	}
	if s.StateOf(0, lineSize-4) == Invalid || s.StateOf(0, lineSize) == Invalid {
		t.Fatal("both lines should be cached")
	}
}

func TestRFOInvalidatesAllSharers(t *testing.T) {
	s := newSD(t)
	for cpu := 0; cpu < 8; cpu++ {
		s.Access(cpu, 0x8000, 8, false)
	}
	r := s.Access(9, 0x8000, 8, true)
	if r.Invalidations != 8 {
		t.Fatalf("invalidations = %d, want 8", r.Invalidations)
	}
	for cpu := 0; cpu < 8; cpu++ {
		if s.StateOf(cpu, 0x8000) != Invalid {
			t.Fatalf("cpu %d still holds the line", cpu)
		}
	}
	if s.StateOf(9, 0x8000) != Modified {
		t.Fatal("writer not Modified")
	}
}

func TestInvariantsAfterRandomWorkload(t *testing.T) {
	for _, topoFn := range []func() *machine.Topology{machine.Bus4, machine.Way16} {
		topo := topoFn()
		s := mustSystem(t, topo, SmallCache())
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 20000; i++ {
			cpu := rng.Intn(topo.NumCPUs())
			addr := int64(rng.Intn(64)) * 16 // 4 lines' worth of hot addresses
			size := 1 << rng.Intn(4)
			s.Access(cpu, addr, size, rng.Intn(3) == 0)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
		gs := s.GlobalStats()
		if gs.Accesses == 0 || gs.Hits == 0 || gs.CohMisses == 0 {
			t.Fatalf("%s: implausible stats %+v", topo.Name, gs)
		}
	}
}

func TestInvariantsProperty(t *testing.T) {
	topo := machine.Bus4()
	type op struct {
		CPU   uint8
		Line  uint8
		Write bool
	}
	f := func(ops []op) bool {
		s := mustSystem(t, topo, SmallCache())
		for _, o := range ops {
			s.Access(int(o.CPU)%topo.NumCPUs(), int64(o.Line)*8, 8, o.Write)
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LineSize: 0, Sets: 4, Ways: 1},
		{LineSize: 96, Sets: 4, Ways: 1},
		{LineSize: 128, Sets: 3, Ways: 1},
		{LineSize: 128, Sets: 4, Ways: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %+v should be invalid", c)
		}
	}
	if err := DefaultItanium().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newSD(t)
	s.Access(0, 0, 8, false)
	s.Access(0, 0, 8, false)
	s.Access(1, 0, 8, true)
	gs := s.GlobalStats()
	if gs.Accesses != 3 {
		t.Fatalf("accesses = %d", gs.Accesses)
	}
	if gs.Hits != 1 || gs.ColdMisses != 2 {
		t.Fatalf("hits=%d cold=%d", gs.Hits, gs.ColdMisses)
	}
	c0 := s.CPUStats(0)
	c1 := s.CPUStats(1)
	if c0.Accesses != 2 || c1.Accesses != 1 {
		t.Fatalf("per-cpu accesses: %d, %d", c0.Accesses, c1.Accesses)
	}
	if c1.Invalidations != 1 {
		t.Fatalf("cpu1 invalidations = %d", c1.Invalidations)
	}
	if gs.Misses() != 2 {
		t.Fatalf("Misses() = %d", gs.Misses())
	}
}

func TestMissKindStrings(t *testing.T) {
	if MissCold.String() != "cold" || MissUpgrade.String() != "upgrade" || MissNone.String() != "none" {
		t.Fatal("miss kind strings wrong")
	}
	if Modified.String() != "M" || Invalid.String() != "I" {
		t.Fatal("state strings wrong")
	}
}

func TestMSIHasNoSilentUpgrade(t *testing.T) {
	cfg := DefaultItanium()
	cfg.Protocol = MSI
	s := mustSystem(t, machine.Bus4(), cfg)
	// Lone reader then own write: MESI would upgrade silently via E; MSI
	// must pay an upgrade transaction.
	s.Access(0, 0x100, 8, false)
	if st := s.StateOf(0, 0x100); st != Shared {
		t.Fatalf("MSI lone read state = %v, want S", st)
	}
	r := s.Access(0, 0x100, 8, true)
	if r.Miss != MissUpgrade {
		t.Fatalf("MSI own-write after read: %+v, want upgrade", r)
	}

	mesi := mustSystem(t, machine.Bus4(), DefaultItanium())
	mesi.Access(0, 0x100, 8, false)
	if st := mesi.StateOf(0, 0x100); st != Exclusive {
		t.Fatalf("MESI lone read state = %v, want E", st)
	}
	rm := mesi.Access(0, 0x100, 8, true)
	if rm.Miss != MissNone {
		t.Fatalf("MESI silent upgrade broken: %+v", rm)
	}
}

func TestMSIInvariantsRandom(t *testing.T) {
	cfg := SmallCache()
	cfg.Protocol = MSI
	topo := machine.Way16()
	s := mustSystem(t, topo, cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		s.Access(rng.Intn(topo.NumCPUs()), int64(rng.Intn(64))*16, 8, rng.Intn(3) == 0)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// No line may ever be Exclusive under MSI.
	for cpu := 0; cpu < topo.NumCPUs(); cpu++ {
		for line := int64(0); line < 8; line++ {
			if s.StateOf(cpu, line*128) == Exclusive {
				t.Fatalf("Exclusive state under MSI (cpu %d line %d)", cpu, line)
			}
		}
	}
}

func TestProtocolValidation(t *testing.T) {
	cfg := DefaultItanium()
	cfg.Protocol = Protocol(9)
	if err := cfg.Validate(); err == nil {
		t.Fatal("bogus protocol accepted")
	}
	if MESI.String() != "MESI" || MSI.String() != "MSI" {
		t.Fatal("protocol names wrong")
	}
}

package coherence

import (
	"math/bits"

	"structlayout/internal/machine"
)

// bitset is a fixed-size CPU set (128 CPUs = 2 words).
type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << uint(i&63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach visits set bits in ascending order. It snapshots each word before
// iterating so callers may clear bits during the walk.
func (b bitset) forEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			fn(i)
		}
	}
}

// nearest returns the member with the smallest transfer latency to cpu
// (excluding cpu itself), or -1 if the set is empty or contains only cpu.
func (b bitset) nearest(cpu int, topo *machine.Topology) int {
	best := -1
	var bestLat int64
	b.forEach(func(i int) {
		if i == cpu {
			return
		}
		lat := topo.TransferLatency(i, cpu)
		if best == -1 || lat < bestLat {
			best, bestLat = i, lat
		}
	})
	return best
}

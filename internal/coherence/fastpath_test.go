package coherence

import (
	"testing"

	"structlayout/internal/machine"
)

// These tests target the MRU repeat-access fast path: every scenario where
// the cached MRU slot could go stale between two same-line accesses by one
// CPU must still produce the full-path outcome.

func fpSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(machine.Bus4(), SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestFastPathRemoteInvalidationBetweenRepeats: CPU 0 writes a line twice,
// but CPU 1 writes it in between. The second CPU-0 access must see a
// coherence miss, not a stale fast-path hit.
func TestFastPathRemoteInvalidationBetweenRepeats(t *testing.T) {
	sys := fpSystem(t)
	if r := sys.Access(0, 0, 8, true); r.Miss != MissCold {
		t.Fatalf("first write: %v", r.Miss)
	}
	if r := sys.Access(0, 0, 8, true); r.Miss != MissNone {
		t.Fatalf("repeat write should hit: %v", r.Miss)
	}
	if r := sys.Access(1, 0, 8, true); r.Miss != MissCold {
		t.Fatalf("remote write: %v", r.Miss)
	}
	if r := sys.Access(0, 0, 8, true); r.Miss != MissCoherence {
		t.Fatalf("access after remote invalidation must be a coherence miss, got %v", r.Miss)
	}
}

// TestFastPathRemoteDowngradeBetweenRepeats: CPU 0 holds Modified; CPU 1
// reads (downgrading CPU 0 to Shared in place); CPU 0's next write must
// take the upgrade path, invalidating CPU 1.
func TestFastPathRemoteDowngradeBetweenRepeats(t *testing.T) {
	sys := fpSystem(t)
	sys.Access(0, 0, 8, true)
	if r := sys.Access(1, 0, 8, false); r.Supplier != 0 {
		t.Fatalf("remote read should be supplied by owner, got %d", r.Supplier)
	}
	if got := sys.StateOf(0, 0); got != Shared {
		t.Fatalf("owner state after remote read = %v, want S", got)
	}
	r := sys.Access(0, 0, 8, true)
	if r.Miss != MissUpgrade || r.Invalidations != 1 {
		t.Fatalf("write after downgrade = %v (%d invalidations), want upgrade invalidating 1", r.Miss, r.Invalidations)
	}
}

// TestFastPathSilentUpgradeRepeat: a read then write by the same CPU uses
// the silent E→M transition through the fast path; a third write stays M.
func TestFastPathSilentUpgradeRepeat(t *testing.T) {
	sys := fpSystem(t)
	sys.Access(0, 0, 8, false)
	if got := sys.StateOf(0, 0); got != Exclusive {
		t.Fatalf("after lone read: %v, want E", got)
	}
	if r := sys.Access(0, 0, 8, true); r.Miss != MissNone {
		t.Fatalf("silent E→M upgrade should be a hit, got %v", r.Miss)
	}
	if got := sys.StateOf(0, 0); got != Modified {
		t.Fatalf("after write: %v, want M", got)
	}
	if r := sys.Access(0, 0, 8, true); r.Miss != MissNone {
		t.Fatalf("repeat M write should hit, got %v", r.Miss)
	}
}

// TestFastPathMSIRepeatWrite: under MSI a lone reader holds Shared, so the
// fast path must fall through to a real upgrade on the first write, then
// hit on the second.
func TestFastPathMSIRepeatWrite(t *testing.T) {
	sys, err := NewSystem(machine.Bus4(), Config{LineSize: 128, Sets: 8, Ways: 2, Protocol: MSI})
	if err != nil {
		t.Fatal(err)
	}
	sys.Access(0, 0, 8, false)
	if r := sys.Access(0, 0, 8, true); r.Miss != MissUpgrade {
		t.Fatalf("MSI lone-reader write must be an upgrade, got %v", r.Miss)
	}
	if r := sys.Access(0, 0, 8, true); r.Miss != MissNone {
		t.Fatalf("repeat write after upgrade should hit, got %v", r.Miss)
	}
}

// TestFastPathEvictionBetweenRepeats: filling the set evicts the line; the
// next same-line access must be a replacement miss, not a hit on a
// displaced MRU slot.
func TestFastPathEvictionBetweenRepeats(t *testing.T) {
	sys := fpSystem(t) // SmallCache: 8 sets, 2 ways
	cfg := sys.Config()
	setSpan := cfg.LineSize * int64(cfg.Sets)
	sys.Access(0, 0, 8, true)
	// Two more lines mapping to set 0 evict line 0 (2-way set).
	sys.Access(0, setSpan, 8, true)
	sys.Access(0, 2*setSpan, 8, true)
	if r := sys.Access(0, 0, 8, true); r.Miss != MissReplacement {
		t.Fatalf("access after eviction = %v, want replacement miss", r.Miss)
	}
}

// TestFastPathFalseSharingRecording: repeat Modified writes through the
// fast path must keep recording their byte ranges, so a later disjoint
// reader still classifies false sharing correctly.
func TestFastPathFalseSharingRecording(t *testing.T) {
	sys := fpSystem(t)
	sys.Access(0, 0, 8, true)
	sys.Access(0, 8, 8, true) // same line, fast path, must update lastWrite
	r := sys.Access(1, 64, 8, false)
	if r.Miss != MissCold {
		t.Fatalf("cold read: %v", r.Miss)
	}
	// CPU 1 now shares; CPU 0 writes bytes [8,16) again, invalidating 1.
	sys.Access(0, 8, 8, true)
	// CPU 1 re-reads disjoint bytes [64,72): false sharing against [8,16).
	r = sys.Access(1, 64, 8, false)
	if r.Miss != MissCoherence || !r.FalseSharing {
		t.Fatalf("disjoint re-read = %v (fs=%v), want coherence miss with false sharing", r.Miss, r.FalseSharing)
	}
	if r.WriterAddr != 8 || r.WriterLen != 8 {
		t.Fatalf("recorded writer range = [%d,+%d), want [8,+8)", r.WriterAddr, r.WriterLen)
	}
}

package memo

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GCResult summarizes one disk-tier garbage collection pass.
type GCResult struct {
	// Scanned entries (and their byte total) found before collection.
	Scanned      int
	ScannedBytes int64
	// Removed entries (and their byte total): aged out or evicted for the
	// size budget. Stale temp files from interrupted writes count too.
	Removed      int
	RemovedBytes int64
	// Corrupt counts partially written entries (crash torn, not valid
	// JSON) found and removed regardless of age or size budget. They are
	// included in Removed/RemovedBytes.
	Corrupt int
}

// String renders the pass outcome.
func (r GCResult) String() string {
	s := fmt.Sprintf("scanned %d entries (%d bytes), removed %d (%d bytes), %d kept (%d bytes)",
		r.Scanned, r.ScannedBytes, r.Removed, r.RemovedBytes, r.Scanned-r.Removed, r.ScannedBytes-r.RemovedBytes)
	if r.Corrupt > 0 {
		s += fmt.Sprintf(", %d corrupt collected", r.Corrupt)
	}
	return s
}

// GC ages the disk tier: entries whose modification time is older than
// maxAge are removed, then the oldest remaining entries are evicted until
// the tier fits within maxBytes. A zero maxAge or maxBytes disables that
// criterion; emptied shard directories are pruned. The in-memory tier is
// untouched — it dies with the process anyway — and concurrent readers
// are safe: an entry vanishing between stat and use degrades to a cache
// miss by construction.
func (c *Cache) GC(now time.Time, maxAge time.Duration, maxBytes int64) (GCResult, error) {
	c.mu.Lock()
	dir := c.dir
	c.mu.Unlock()
	var res GCResult
	if dir == "" {
		return res, fmt.Errorf("memo: GC needs a disk tier (no cache dir set)")
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	shards, err := os.ReadDir(dir)
	if err != nil {
		return res, fmt.Errorf("memo: GC: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		shardPath := filepath.Join(dir, shard.Name())
		files, err := os.ReadDir(shardPath)
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			isEntry := strings.HasSuffix(f.Name(), ".json")
			isTemp := strings.HasPrefix(f.Name(), ".tmp-")
			if !isEntry && !isTemp {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			if isTemp {
				// Leftovers from interrupted writes: age out with the same
				// horizon, but never let them linger past a size-only GC.
				if maxAge <= 0 || now.Sub(info.ModTime()) > maxAge {
					if os.Remove(filepath.Join(shardPath, f.Name())) == nil {
						res.Removed++
						res.RemovedBytes += info.Size()
					}
				}
				continue
			}
			path := filepath.Join(shardPath, f.Name())
			res.Scanned++
			res.ScannedBytes += info.Size()
			// A partially written entry (a crash mid-write on a filesystem
			// that exposed the rename before the data) is garbage whatever
			// its age: it can never hit, only waste a read. Collect it now.
			if raw, rerr := os.ReadFile(path); rerr == nil && !json.Valid(raw) {
				if os.Remove(path) == nil {
					res.Removed++
					res.RemovedBytes += info.Size()
					res.Corrupt++
				}
				continue
			}
			entries = append(entries, entry{
				path:  path,
				size:  info.Size(),
				mtime: info.ModTime(),
			})
		}
	}
	// Oldest first; ties break by path for determinism.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	var kept int64
	for _, e := range entries {
		kept += e.size
	}
	remove := func(e entry) {
		if err := os.Remove(e.path); err == nil || os.IsNotExist(err) {
			res.Removed++
			res.RemovedBytes += e.size
			kept -= e.size
		}
	}
	idx := 0
	if maxAge > 0 {
		for ; idx < len(entries) && now.Sub(entries[idx].mtime) > maxAge; idx++ {
			remove(entries[idx])
		}
	}
	if maxBytes > 0 {
		for ; idx < len(entries) && kept > maxBytes; idx++ {
			remove(entries[idx])
		}
	}
	// Prune shard directories the pass emptied; a non-empty or racing
	// directory just stays.
	for _, shard := range shards {
		if shard.IsDir() {
			os.Remove(filepath.Join(dir, shard.Name()))
		}
	}
	return res, nil
}

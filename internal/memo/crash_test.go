package memo

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// tornEntry simulates a crash mid-write on a filesystem that exposed the
// final name before the data made it to disk: a truncated (invalid JSON)
// value under the entry's real path.
func tornEntry(t *testing.T, c *Cache, label string) Key {
	t.Helper()
	h := NewHasher()
	h.Str("torn", label)
	k := h.Sum()
	p := c.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(`{"mean": 1.5, "runs": [1.`), 0o644); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestGetToleratesTornEntry(t *testing.T) {
	c := New()
	if err := c.SetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	k := tornEntry(t, c, "a")
	recomputed := false
	v, err := c.Do(k, func() ([]byte, error) {
		recomputed = true
		return []byte(`{"mean":2}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("torn entry served as a hit instead of degrading to a miss")
	}
	if string(v) != `{"mean":2}` {
		t.Fatalf("got %q", v)
	}
	if st := c.Stats(); st.Errors == 0 {
		t.Fatal("torn entry read did not count as a disk error")
	}
	// The recomputation must have overwritten the torn file atomically: a
	// fresh cache (cold memory tier) now serves the entry from disk.
	c2 := New()
	if err := c2.SetDir(c.dir); err != nil {
		t.Fatal(err)
	}
	v2, ok := c2.get(k)
	if !ok || string(v2) != `{"mean":2}` {
		t.Fatalf("disk tier after recovery: ok=%v v=%q", ok, v2)
	}
}

func TestGCCollectsTornEntries(t *testing.T) {
	c := New()
	if err := c.SetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	seedDisk(t, c, 3, now)
	k := tornEntry(t, c, "b")
	torn := c.path(k)
	// Zero criteria: a plain pass keeps every valid entry but still
	// collects the torn one.
	res, err := c.GC(now, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1 (%s)", res.Corrupt, res)
	}
	if res.Removed != 1 {
		t.Fatalf("Removed = %d, want 1 (%s)", res.Removed, res)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn entry still on disk: %v", err)
	}
	// Valid entries survived.
	if res.Scanned-res.Removed != 3 {
		t.Fatalf("kept %d entries, want 3", res.Scanned-res.Removed)
	}
}

func TestGCSizeBudgetIgnoresCollectedCorruptBytes(t *testing.T) {
	c := New()
	if err := c.SetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	paths := seedDisk(t, c, 2, now)
	tornEntry(t, c, "c")
	var valid int64
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		valid += fi.Size()
	}
	// Budget exactly the valid bytes: with correct accounting nothing valid
	// is evicted (the corrupt entry's bytes are gone, not "kept").
	res, err := c.GC(now, 0, valid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != 1 || res.Removed != 1 {
		t.Fatalf("removed %d (%d corrupt), want only the corrupt entry (%s)", res.Removed, res.Corrupt, res)
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("valid entry evicted to pay for corrupt bytes: %v", err)
		}
	}
}

package memo

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// seedDisk writes n entries through the cache and returns their paths,
// oldest first by the mtimes this helper assigns.
func seedDisk(t *testing.T, c *Cache, n int, now time.Time) []string {
	t.Helper()
	var paths []string
	for i := 0; i < n; i++ {
		h := NewHasher()
		h.Int("i", int64(i))
		k := h.Sum()
		if _, err := c.Do(k, func() ([]byte, error) { return []byte(`{"v":` + string(rune('0'+i)) + `}`), nil }); err != nil {
			t.Fatal(err)
		}
		p := c.path(k)
		// Age entries by index: entry i is (n-i) hours old.
		mtime := now.Add(-time.Duration(n-i) * time.Hour)
		if err := os.Chtimes(p, mtime, mtime); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths
}

func TestGCByAge(t *testing.T) {
	c := New()
	if err := c.SetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	paths := seedDisk(t, c, 4, now) // ages 4h, 3h, 2h, 1h
	res, err := c.GC(now, 150*time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 4 || res.Removed != 2 {
		t.Fatalf("scanned %d removed %d; want 4, 2", res.Scanned, res.Removed)
	}
	for i, p := range paths {
		_, err := os.Stat(p)
		gone := os.IsNotExist(err)
		if wantGone := i < 2; gone != wantGone {
			t.Errorf("entry %d: gone=%v, want %v", i, gone, wantGone)
		}
	}
}

func TestGCBySizeBudgetEvictsOldestFirst(t *testing.T) {
	c := New()
	if err := c.SetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	paths := seedDisk(t, c, 4, now)
	var per int64
	if fi, err := os.Stat(paths[0]); err == nil {
		per = fi.Size()
	} else {
		t.Fatal(err)
	}
	// Budget for exactly two entries: the two oldest must go.
	res, err := c.GC(now, 0, 2*per)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 2 {
		t.Fatalf("removed %d; want 2", res.Removed)
	}
	for i, p := range paths {
		_, err := os.Stat(p)
		gone := os.IsNotExist(err)
		if wantGone := i < 2; gone != wantGone {
			t.Errorf("entry %d: gone=%v, want %v", i, gone, wantGone)
		}
	}
}

func TestGCZeroCriteriaKeepsEverything(t *testing.T) {
	c := New()
	if err := c.SetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	seedDisk(t, c, 3, now)
	res, err := c.GC(now, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 0 || res.Scanned != 3 {
		t.Fatalf("scanned %d removed %d; want 3, 0", res.Scanned, res.Removed)
	}
}

func TestGCRemovesStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	c := New()
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	seedDisk(t, c, 1, now)
	shard := filepath.Join(dir, "aa")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(shard, ".tmp-123456")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := now.Add(-48 * time.Hour)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GC(now, 24*time.Hour, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("stale temp file survived GC")
	}
}

func TestGCRequiresDiskTier(t *testing.T) {
	if _, err := New().GC(time.Now(), time.Hour, 0); err == nil {
		t.Fatal("GC without a disk tier should error")
	}
}

// TestGCThenMissRecomputes: a collected entry is a clean miss afterwards,
// not an error.
func TestGCThenMissRecomputes(t *testing.T) {
	c := New()
	if err := c.SetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	seedDisk(t, c, 1, now)
	if _, err := c.GC(now, time.Minute, 0); err != nil {
		t.Fatal(err)
	}
	c.Clear() // drop the memory tier so the disk miss is observable
	h := NewHasher()
	h.Int("i", 0)
	recomputed := false
	v, err := c.Do(h.Sum(), func() ([]byte, error) { recomputed = true; return []byte(`{"v":0}`), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !recomputed || string(v) != `{"v":0}` {
		t.Fatalf("collected entry should recompute cleanly (recomputed=%v, v=%q)", recomputed, v)
	}
}

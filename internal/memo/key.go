package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
	"sort"

	"structlayout/internal/coherence"
	"structlayout/internal/exec"
	"structlayout/internal/faults"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
)

// Key identifies one cached computation: the sha256 of a canonical
// encoding of everything that can influence its result.
type Key [sha256.Size]byte

// Hasher accumulates canonical key components. Every component is written
// as a length-prefixed tagged record, so distinct component sequences can
// never produce the same byte stream by concatenation coincidence
// ("ab"+"c" vs "a"+"bc"), and a component's meaning is fixed by its tag
// rather than its position.
//
// The zero value is not usable; call NewHasher, which seeds the stream
// with SchemaVersion so every key is invalidated by a schema bump.
type Hasher struct {
	h hash.Hash
}

// NewHasher returns a Hasher seeded with the schema version.
func NewHasher() *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Int("schema", SchemaVersion)
	return h
}

// record writes one tagged, length-prefixed component.
func (h *Hasher) record(tag string, payload []byte) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(tag)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	h.h.Write(hdr[:])
	h.h.Write([]byte(tag))
	h.h.Write(payload)
}

// Str adds a string component.
func (h *Hasher) Str(tag, v string) { h.record(tag, []byte(v)) }

// Int adds an integer component.
func (h *Hasher) Int(tag string, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.record(tag, b[:])
}

// Ints adds an integer-slice component.
func (h *Hasher) Ints(tag string, vs []int64) {
	b := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	h.record(tag, b)
}

// F64 adds a float64 component by exact bit pattern.
func (h *Hasher) F64(tag string, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	h.record(tag, b[:])
}

// Layout adds a layout's memory-relevant content: the struct identity
// (name plus each field's size and alignment) and the byte placement
// (offsets, total size, line size). The layout's display Name and the
// Order permutation are deliberately excluded — Offsets already determines
// where every field lives, so two layouts that place bytes identically
// hash equal even if they were derived differently or labeled differently.
func (h *Hasher) Layout(tag string, l *layout.Layout) {
	h.Str(tag+".struct", l.Struct.Name)
	fs := make([]int64, 0, 2*len(l.Struct.Fields))
	for _, f := range l.Struct.Fields {
		fs = append(fs, int64(f.Size), int64(f.Align))
	}
	h.Ints(tag+".fields", fs)
	offs := make([]int64, len(l.Offsets))
	for i, o := range l.Offsets {
		offs[i] = int64(o)
	}
	h.Ints(tag+".offsets", offs)
	h.Int(tag+".size", int64(l.Size))
	h.Int(tag+".linesize", int64(l.LineSize))
}

// Layouts adds a label→layout map in sorted-label order, so the key is
// independent of map iteration order.
func (h *Hasher) Layouts(tag string, ls map[string]*layout.Layout) {
	labels := make([]string, 0, len(ls))
	for k := range ls {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	h.Int(tag+".n", int64(len(labels)))
	for _, k := range labels {
		h.Str(tag+".label", k)
		h.Layout(tag+"["+k+"]", ls[k])
	}
}

// Topology adds every latency-relevant topology parameter. Name is
// included: built-in machines are identified by name, and hashing it
// guards against two differently named machines being conflated if they
// momentarily share parameters.
func (h *Hasher) Topology(tag string, t *machine.Topology) {
	h.Str(tag+".name", t.Name)
	shape := make([]int64, len(t.Shape))
	for i, s := range t.Shape {
		shape[i] = int64(s)
	}
	h.Ints(tag+".shape", shape)
	h.Ints(tag+".c2c", t.CacheToCache)
	h.Int(tag+".membase", t.MemBase)
	h.Int(tag+".memper", t.MemPerLevel)
	h.Int(tag+".hit", t.HitLatency)
	h.F64(tag+".clock", t.ClockHz)
}

// CacheConfig adds the simulated cache geometry and protocol.
func (h *Hasher) CacheConfig(tag string, c coherence.Config) {
	h.Int(tag+".linesize", c.LineSize)
	h.Int(tag+".sets", int64(c.Sets))
	h.Int(tag+".ways", int64(c.Ways))
	h.Int(tag+".protocol", int64(c.Protocol))
}

// SimConfig adds the simulation mode and its sampling parameters. The
// coherence shard count is deliberately not part of any key: sharding is
// byte-identical by contract (pinned by the exec/coherence differential
// tests), so sharded and unsharded runs share cache entries, whereas a
// sampled result must never collide with an exact one.
func (h *Hasher) SimConfig(tag string, c exec.SimConfig) {
	h.Int(tag+".mode", int64(c.Mode))
	h.Int(tag+".window", c.WindowOps)
	h.Int(tag+".period", c.Period)
	h.Int(tag+".seed", c.Seed)
}

// FaultSpec adds a fault-injection spec via its canonical String form
// (sorted kinds, seed; "none" for nil or identity specs). A nil spec and
// an all-zero-severity spec hash equal, matching their identical effect.
func (h *Hasher) FaultSpec(tag string, s *faults.Spec) {
	if s == nil {
		h.Str(tag, "none")
		return
	}
	h.Str(tag, s.String())
}

// Sum finalizes the key. The Hasher must not be used afterwards.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// String returns a short hex prefix for logs.
func (k Key) String() string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[2*i] = hexdigits[k[i]>>4]
		b[2*i+1] = hexdigits[k[i]&0xf]
	}
	return string(b[:])
}

package memo

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"structlayout/internal/coherence"
	"structlayout/internal/faults"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
)

func testStruct() *ir.StructType {
	return ir.NewStruct("S",
		ir.Field{Name: "a", Size: 8, Align: 8},
		ir.Field{Name: "b", Size: 4, Align: 4},
		ir.Field{Name: "c", Size: 2, Align: 2},
	)
}

func testLayouts(t *testing.T) map[string]*layout.Layout {
	t.Helper()
	st := testStruct()
	base, err := layout.Original(st, 128)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := layout.FromOrder(st, "alt", []int{2, 1, 0}, 128)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*layout.Layout{"A": base, "B": alt}
}

// keyOf builds a representative measurement key the way workload does.
func keyOf(t *testing.T, ls map[string]*layout.Layout, seed int64, spec *faults.Spec) Key {
	t.Helper()
	h := NewHasher()
	h.Str("kind", "measure")
	h.Layouts("layouts", ls)
	h.Topology("topo", machine.Bus4())
	h.CacheConfig("cache", coherence.DefaultItanium())
	h.Int("runs", 3)
	h.Int("seed", seed)
	h.FaultSpec("inject", spec)
	return h.Sum()
}

// TestKeyIterationOrderInvariant rebuilds the same logical layout map many
// times; Go randomizes map iteration order, so any order sensitivity in
// Hasher.Layouts would produce differing keys across attempts.
func TestKeyIterationOrderInvariant(t *testing.T) {
	want := keyOf(t, testLayouts(t), 42, nil)
	for i := 0; i < 20; i++ {
		got := keyOf(t, testLayouts(t), 42, nil)
		if got != want {
			t.Fatalf("attempt %d: key differs for identical layout map: %s vs %s", i, got, want)
		}
	}
}

// TestKeyLabelRenameInvariant: renaming a layout (its display Name) without
// changing byte placement must not change the key — the cached measurement
// depends only on where bytes live.
func TestKeyRenameInvariant(t *testing.T) {
	ls1 := testLayouts(t)
	ls2 := testLayouts(t)
	for _, l := range ls2 {
		l.Name = "renamed-" + l.Name
	}
	if keyOf(t, ls1, 42, nil) != keyOf(t, ls2, 42, nil) {
		t.Fatal("key changed when only layout display names changed")
	}
}

// TestKeyOrderPermutationEquivalence: two layouts derived through different
// Order permutations that happen to land every field at the same offset
// hash equal (Order excluded), while a permutation that moves bytes does
// not.
func TestKeyOrderPermutationEquivalence(t *testing.T) {
	st := ir.NewStruct("U",
		ir.Field{Name: "x", Size: 8, Align: 8},
		ir.Field{Name: "y", Size: 8, Align: 8},
	)
	a, err := layout.FromOrder(st, "a", []int{0, 1}, 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := layout.FromOrder(st, "b", []int{1, 0}, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Same bytes, forced: copy a's offsets into a layout built the other way.
	c := *b
	c.Offsets = append([]int(nil), a.Offsets...)
	ka := keyOf(t, map[string]*layout.Layout{"L": a}, 1, nil)
	kb := keyOf(t, map[string]*layout.Layout{"L": b}, 1, nil)
	kc := keyOf(t, map[string]*layout.Layout{"L": &c}, 1, nil)
	if ka == kb {
		t.Fatal("layouts with different byte placement collided")
	}
	if ka != kc {
		t.Fatal("layouts with identical byte placement but different Order hashed differently")
	}
}

// TestKeySensitivity: every input that can change a measurement must change
// the key.
func TestKeySensitivity(t *testing.T) {
	ls := testLayouts(t)
	base := keyOf(t, ls, 42, nil)

	if keyOf(t, ls, 43, nil) == base {
		t.Fatal("seed change did not change key")
	}

	spec := faults.New(7)
	spec.Severity[faults.Kinds[0]] = 0.5
	if keyOf(t, ls, 42, spec) == base {
		t.Fatal("fault spec did not change key")
	}
	spec2 := faults.New(8)
	spec2.Severity[faults.Kinds[0]] = 0.5
	if keyOf(t, ls, 42, spec) == keyOf(t, ls, 42, spec2) {
		t.Fatal("fault specs differing only in seed collided")
	}
	spec3 := faults.New(7)
	spec3.Severity[faults.Kinds[0]] = 0.9
	if keyOf(t, ls, 42, spec) == keyOf(t, ls, 42, spec3) {
		t.Fatal("fault specs differing only in severity collided")
	}

	// Identity spec ≡ nil spec: both inject nothing.
	if keyOf(t, ls, 42, faults.New(5)) != base {
		t.Fatal("identity fault spec keyed differently from nil")
	}

	// Different label for the same layout is a different request.
	one := map[string]*layout.Layout{"A": ls["A"]}
	oneRenamedLabel := map[string]*layout.Layout{"Z": ls["A"]}
	if keyOf(t, one, 42, nil) == keyOf(t, oneRenamedLabel, 42, nil) {
		t.Fatal("map label change collided (labels are part of the request)")
	}

	// Topology and cache geometry.
	h1 := NewHasher()
	h1.Topology("topo", machine.Bus4())
	h2 := NewHasher()
	h2.Topology("topo", machine.Way16())
	if h1.Sum() == h2.Sum() {
		t.Fatal("different topologies collided")
	}
	h3 := NewHasher()
	h3.CacheConfig("c", coherence.DefaultItanium())
	h4 := NewHasher()
	h4.CacheConfig("c", coherence.SmallCache())
	if h3.Sum() == h4.Sum() {
		t.Fatal("different cache configs collided")
	}
}

// TestKeyNoConcatenationAmbiguity: tagged length-prefixed records must keep
// adjacent strings from sliding into each other.
func TestKeyNoConcatenationAmbiguity(t *testing.T) {
	h1 := NewHasher()
	h1.Str("t", "ab")
	h1.Str("t", "c")
	h2 := NewHasher()
	h2.Str("t", "a")
	h2.Str("t", "bc")
	if h1.Sum() == h2.Sum() {
		t.Fatal("string boundary ambiguity")
	}
}

func TestCacheDoSingleFlight(t *testing.T) {
	c := New()
	h := NewHasher()
	h.Str("k", "x")
	k := h.Sum()

	var calls atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Do(k, func() ([]byte, error) {
				calls.Add(1)
				return []byte("val"), nil
			})
			if err != nil || string(v) != "val" {
				t.Errorf("Do: %q, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits()+1 < 1 {
		t.Fatalf("stats = %+v, want exactly 1 miss", st)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := New()
	h := NewHasher()
	h.Str("k", "err")
	k := h.Sum()
	calls := 0
	_, err := c.Do(k, func() ([]byte, error) { calls++; return nil, fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("want error")
	}
	v, err := c.Do(k, func() ([]byte, error) { calls++; return []byte("ok"), nil })
	if err != nil || string(v) != "ok" {
		t.Fatalf("retry: %q, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors must not be cached)", calls)
	}
}

func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	c1 := New()
	if err := c1.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	h := NewHasher()
	h.Str("k", "disk")
	k := h.Sum()
	if _, err := c1.Do(k, func() ([]byte, error) { return []byte(`"persisted"`), nil }); err != nil {
		t.Fatal(err)
	}

	// Fresh cache, same dir: value must come from disk without compute.
	c2 := New()
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	v, err := c2.Do(k, func() ([]byte, error) {
		t.Error("compute ran despite disk entry")
		return nil, nil
	})
	if err != nil || string(v) != `"persisted"` {
		t.Fatalf("disk hit: %q, %v", v, err)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 disk hit, 0 misses", st)
	}

	// Second lookup is a memory hit (promoted).
	if _, err := c2.Do(k, func() ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats = %+v, want 1 mem hit after promotion", st)
	}

	// Corrupt entries degrade to recomputation, not failure.
	c3 := New()
	if err := c3.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	ents, err := filepath.Glob(filepath.Join(dir, "*", "*.json"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("glob: %v %v", ents, err)
	}
	if err := os.Remove(ents[0]); err != nil {
		t.Fatal(err)
	}
	v, err = c3.Do(k, func() ([]byte, error) { return []byte(`"recomputed"`), nil })
	if err != nil || string(v) != `"recomputed"` {
		t.Fatalf("recompute after removal: %q, %v", v, err)
	}
}

func TestCacheClear(t *testing.T) {
	c := New()
	h := NewHasher()
	h.Str("k", "clear")
	k := h.Sum()
	if _, err := c.Do(k, func() ([]byte, error) { return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	c.Clear()
	calls := 0
	if _, err := c.Do(k, func() ([]byte, error) { calls++; return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatal("Clear did not drop the memory tier")
	}
	if st := c.Stats(); st.Misses != 1 || st.MemHits != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

// Package memo is a content-addressed measurement cache. A simulated
// measurement is a pure function of its configuration — workload
// parameters, layouts, machine topology, cache geometry, run count, seeds,
// fault spec — so its result can be keyed by a canonical hash of that
// configuration and reused instead of re-simulated. The experiments
// pipeline measures the same (workload, layout, machine, seed) cell many
// times across figure configs (Figure 8 and Figure 10 share their baseline
// and every "auto" cell; the robustness sweep re-measures the Figure 9
// baseline); memoization computes each distinct cell once.
//
// The cache has two tiers: an in-memory tier that is always on (it can
// only return what an identical computation would produce), and an
// optional on-disk tier (-cache-dir on cmd/experiments and cmd/layouttool)
// that persists results across processes, making warm re-runs of the whole
// figure pipeline nearly free.
//
// Correctness rests on three rules:
//
//   - keys are canonical: logically identical configurations hash equal
//     regardless of map iteration order or display names, and any input
//     that can change a result (seed, fault spec, run count) is hashed;
//   - values round-trip losslessly: results are stored as JSON, and Go's
//     encoding/json writes float64 in shortest-exact form, so a decoded
//     measurement is bit-identical to the computed one — warm and cold
//     runs render byte-identical tables;
//   - the schema version participates in every key, so a change to what a
//     measurement means invalidates all prior entries by construction
//     (bump SchemaVersion; stale disk entries simply never hit again).
package memo

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// SchemaVersion invalidates every previously cached entry when the meaning
// or encoding of cached values changes. It is hashed into every key.
//
// Version history:
//   - 2: measurement keys carry the simulation mode and sampling
//     parameters, and the scheduler's strict (time, id) shared-operation
//     ordering changed every simulated interleaving.
//   - 1: initial schema.
const SchemaVersion = 2

// Stats counts cache outcomes. Counters only increase; subtract two
// snapshots to attribute traffic to a pipeline stage.
type Stats struct {
	// MemHits served from the in-memory tier.
	MemHits uint64
	// DiskHits served from the on-disk tier (and promoted to memory).
	DiskHits uint64
	// Misses computed fresh.
	Misses uint64
	// Errors counts disk-tier read/write failures (the cache degrades to
	// recomputation; an unreadable entry is never an error for the caller).
	Errors uint64
}

// Hits returns the total served-from-cache count.
func (s Stats) Hits() uint64 { return s.MemHits + s.DiskHits }

// Sub returns the per-stage delta s - prev.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		MemHits:  s.MemHits - prev.MemHits,
		DiskHits: s.DiskHits - prev.DiskHits,
		Misses:   s.Misses - prev.Misses,
		Errors:   s.Errors - prev.Errors,
	}
}

// Cache is a two-tier content-addressed store. The zero value is not
// usable; call New.
type Cache struct {
	mu       sync.Mutex
	mem      map[Key][]byte
	inflight map[Key]*flight
	dir      string
	stats    Stats
}

// flight is one in-progress computation other goroutines can wait on.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// New returns an empty cache with only the in-memory tier enabled.
func New() *Cache {
	return &Cache{
		mem:      make(map[Key][]byte),
		inflight: make(map[Key]*flight),
	}
}

// shared is the process-wide cache consulted by workload.Measure/Collect.
// Like parallel's worker pool, it is deliberately process-global: every
// measurement in the process is a pure function of its key, so sharing one
// cache is always sound and spares threading a handle through every suite
// and pipeline constructor.
var shared = New()

// Shared returns the process-wide cache.
func Shared() *Cache { return shared }

// SetDir enables the on-disk tier rooted at dir, creating it if needed.
// An empty dir disables the disk tier.
func (c *Cache) SetDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("memo: cache dir: %w", err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dir = dir
	return nil
}

// Clear drops the in-memory tier and resets counters. The disk tier, if
// any, is untouched. Tests use it to force cold-cache behaviour.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem = make(map[Key][]byte)
	c.stats = Stats{}
}

// Contains reports whether k would be served from a tier right now,
// without computing, promoting, or counting anything. Callers use it to
// pick a degradation rung: a present entry means the work is (nearly)
// free replay, an absent one means real computation. The answer is
// advisory — a concurrent GC or writer can change it — so callers must
// still be correct when a later Do misses.
func (c *Cache) Contains(k Key) bool {
	c.mu.Lock()
	_, inMem := c.mem[k]
	dir := c.dir
	c.mu.Unlock()
	if inMem {
		return true
	}
	if dir == "" {
		return false
	}
	fi, err := os.Stat(c.path(k))
	return err == nil && fi.Size() > 0
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// path returns the disk-tier file for a key.
func (c *Cache) path(k Key) string {
	h := hex.EncodeToString(k[:])
	return filepath.Join(c.dir, h[:2], h[2:]+".json")
}

// get consults both tiers. Callers hold no locks.
func (c *Cache) get(k Key) ([]byte, bool) {
	c.mu.Lock()
	if v, ok := c.mem[k]; ok {
		c.stats.MemHits++
		c.mu.Unlock()
		return v, true
	}
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return nil, false
	}
	path := c.path(k)
	v, err := os.ReadFile(path)
	if err == nil && !json.Valid(v) {
		// A torn entry from a crashed writer (every cached value is JSON, so
		// a valid entry always parses). Collect it and degrade to a miss;
		// the recomputation will overwrite it atomically.
		os.Remove(path)
		err = fmt.Errorf("memo: corrupt disk entry %s", path)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if !os.IsNotExist(err) {
			c.stats.Errors++
		}
		return nil, false
	}
	c.stats.DiskHits++
	c.mem[k] = v
	return v, true
}

// put stores a value in both tiers. Disk failures degrade silently: the
// next process recomputes.
func (c *Cache) put(k Key, v []byte) {
	c.mu.Lock()
	c.mem[k] = v
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return
	}
	path := c.path(k)
	err := os.MkdirAll(filepath.Dir(path), 0o755)
	if err == nil {
		// Write-temp, fsync, then rename: concurrent processes never observe
		// a torn entry, and a crash (or power loss) between write and rename
		// leaves only a temp file, never a short entry under the final name.
		var tmp *os.File
		tmp, err = os.CreateTemp(filepath.Dir(path), ".tmp-*")
		if err == nil {
			_, err = tmp.Write(v)
			if serr := tmp.Sync(); err == nil {
				err = serr
			}
			if cerr := tmp.Close(); err == nil {
				err = cerr
			}
			if err == nil {
				err = os.Rename(tmp.Name(), path)
			}
			if err != nil {
				os.Remove(tmp.Name())
			} else if d, derr := os.Open(filepath.Dir(path)); derr == nil {
				// Persist the rename itself; best-effort (some filesystems
				// reject directory fsync, and the entry is only a cache).
				d.Sync()
				d.Close()
			}
		}
	}
	if err != nil {
		c.mu.Lock()
		c.stats.Errors++
		c.mu.Unlock()
	}
}

// Do returns the cached value for k, computing and storing it on a miss.
// Values must be valid JSON (every caller stores encoding/json output):
// the disk tier uses JSON validity to detect and collect partially
// written entries left by a crashed writer, so a non-JSON value would be
// persisted but never served back.
// Concurrent callers with the same key share one computation (the pipeline
// fans identical cells out over the worker pool; without single-flight a
// cold cache would compute duplicates in parallel and win nothing).
// Compute errors propagate to every waiter and are never cached.
func (c *Cache) Do(k Key, compute func() ([]byte, error)) ([]byte, error) {
	for {
		if v, ok := c.get(k); ok {
			return v, nil
		}
		c.mu.Lock()
		// Re-check the memory tier under the lock: a racing flight may have
		// landed between get and here.
		if v, ok := c.mem[k]; ok {
			c.stats.MemHits++
			c.mu.Unlock()
			return v, nil
		}
		if fl, ok := c.inflight[k]; ok {
			c.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return nil, fl.err
			}
			// A satisfied waiter is a hit for accounting: the work was
			// shared, not repeated.
			c.mu.Lock()
			c.stats.MemHits++
			c.mu.Unlock()
			return fl.val, nil
		}
		fl := &flight{done: make(chan struct{})}
		c.inflight[k] = fl
		c.stats.Misses++
		c.mu.Unlock()

		fl.val, fl.err = compute()
		if fl.err == nil {
			c.put(k, fl.val)
		}
		c.mu.Lock()
		delete(c.inflight, k)
		c.mu.Unlock()
		close(fl.done)
		if fl.err != nil {
			return nil, fl.err
		}
		return fl.val, nil
	}
}

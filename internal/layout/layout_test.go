package layout

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"structlayout/internal/ir"
)

func mixedStruct() *ir.StructType {
	return ir.NewStruct("M",
		ir.I8("c1"),  // 0
		ir.I64("q1"), // 1
		ir.I16("h1"), // 2
		ir.I32("w1"), // 3
		ir.I64("q2"), // 4
		ir.I8("c2"),  // 5
		ir.Ptr("p1"), // 6
		ir.I32("w2"), // 7
	)
}

func mustOriginal(t testing.TB, st *ir.StructType, lineSize int) *Layout {
	t.Helper()
	l, err := Original(st, lineSize)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustSortByHotness(t testing.TB, st *ir.StructType, hot map[int]float64, lineSize int) *Layout {
	t.Helper()
	l, err := SortByHotness(st, hot, lineSize)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestOriginalLayoutCRules(t *testing.T) {
	st := mixedStruct()
	l := mustOriginal(t, st, 128)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// c1 at 0, q1 aligned to 8, h1 at 16, w1 at 20, q2 at 24, c2 at 32,
	// p1 at 40, w2 at 48, size aligned to 8 -> 56.
	want := []int{0, 8, 16, 20, 24, 32, 40, 48}
	for i, w := range want {
		if l.Offsets[i] != w {
			t.Fatalf("offset[%d] = %d, want %d", i, l.Offsets[i], w)
		}
	}
	if l.Size != 56 {
		t.Fatalf("size = %d, want 56", l.Size)
	}
}

func TestFromOrderRejectsBadPermutations(t *testing.T) {
	st := mixedStruct()
	if _, err := FromOrder(st, "x", []int{0, 1}, 128); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := FromOrder(st, "x", []int{0, 0, 1, 2, 3, 4, 5, 6}, 128); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := FromOrder(st, "x", []int{0, 1, 2, 3, 4, 5, 6, 99}, 128); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, err := FromOrder(st, "x", []int{0, 1, 2, 3, 4, 5, 6, 7}, 0); err == nil {
		t.Fatal("zero line size accepted")
	}
}

func TestSortByHotness(t *testing.T) {
	st := mixedStruct()
	hot := map[int]float64{0: 100, 1: 1, 2: 50, 4: 90, 6: 80}
	l := mustSortByHotness(t, st, hot, 128)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8-aligned group by hotness: q2(90), p1(80), q1(1); then 4-aligned:
	// w1,w2 (both 0 -> index order); then 2: h1(50); then 1: c1(100), c2.
	want := []int{4, 6, 1, 3, 7, 2, 0, 5}
	for i, fi := range want {
		if l.Order[i] != fi {
			t.Fatalf("order[%d] = %d (%s), want %d", i, l.Order[i], st.Fields[l.Order[i]].Name, fi)
		}
	}
	// Dense packing: only the trailing alignment pad (36 -> 40) remains.
	if l.PaddingBytes() != 4 {
		t.Fatalf("padding = %d, want 4", l.PaddingBytes())
	}
}

func TestPackClustersSeparateLines(t *testing.T) {
	st := mixedStruct()
	clusters := [][]int{{1, 4}, {0, 2, 3}, {5, 6, 7}}
	l, err := PackClusters(st, "packed", clusters, 128, PackOptions{OneClusterPerLine: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.LineOf(1) != 0 || l.LineOf(4) != 0 {
		t.Fatal("cluster 0 not on line 0")
	}
	if l.LineOf(0) != 1 || l.LineOf(2) != 1 || l.LineOf(3) != 1 {
		t.Fatal("cluster 1 not on line 1")
	}
	if l.LineOf(5) != 2 {
		t.Fatal("cluster 2 not on line 2")
	}
	if l.NumLines() != 3 {
		t.Fatalf("lines = %d, want 3", l.NumLines())
	}
}

func TestPackClustersFirstFit(t *testing.T) {
	st := mixedStruct()
	clusters := [][]int{{1, 4}, {0, 2, 3}, {5, 6, 7}}
	l, err := PackClusters(st, "packed", clusters, 128, PackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Everything fits in one 128-byte line when no separation is required.
	if l.NumLines() != 1 {
		t.Fatalf("lines = %d, want 1", l.NumLines())
	}
}

func TestPackClustersSeparationPredicate(t *testing.T) {
	st := mixedStruct()
	clusters := [][]int{{1, 4}, {0, 2, 3}, {5, 6, 7}}
	sep := func(a, b int) bool { return (a == 0 && b == 1) || (a == 1 && b == 0) }
	l, err := PackClusters(st, "packed", clusters, 128, PackOptions{Separate: sep})
	if err != nil {
		t.Fatal(err)
	}
	if l.SameLine(1, 0) {
		t.Fatal("separated clusters share a line")
	}
	// Cluster 2 has no separation constraint; it may share with cluster 1.
	if !l.SameLine(0, 5) {
		t.Fatal("unconstrained cluster should pack onto line with cluster 1")
	}
}

func TestPackClustersTooBig(t *testing.T) {
	st := ir.NewStruct("Big", ir.Arr("a", 20, 8, 8), ir.I64("b"))
	if _, err := PackClusters(st, "x", [][]int{{0, 1}}, 128, PackOptions{}); err == nil {
		t.Fatal("oversized cluster accepted")
	}
}

func TestApplyConstraints(t *testing.T) {
	st := mixedStruct()
	orig := mustOriginal(t, st, 32) // small lines to force multi-line layout
	// Constrain q1+q2 together and p1 in a different cluster.
	clusters := [][]int{{1, 4}, {6}}
	l, err := ApplyConstraints(orig, "best", clusters)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if !l.SameLine(1, 4) {
		t.Fatal("same-cluster fields not co-located")
	}
	if l.SameLine(1, 6) || l.SameLine(4, 6) {
		t.Fatal("different clusters share a line")
	}
}

func TestApplyConstraintsPreservesUnconstrainedOrder(t *testing.T) {
	st := mixedStruct()
	orig := mustOriginal(t, st, 128)
	l, err := ApplyConstraints(orig, "best", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Equal(orig) {
		t.Fatal("no constraints should reproduce the original layout")
	}
}

func TestApplyConstraintsDuplicateField(t *testing.T) {
	st := mixedStruct()
	orig := mustOriginal(t, st, 128)
	if _, err := ApplyConstraints(orig, "x", [][]int{{1, 4}, {4}}); err == nil {
		t.Fatal("duplicate field across clusters accepted")
	}
}

func TestLinesOfSpanningField(t *testing.T) {
	st := ir.NewStruct("S", ir.I64("a"), ir.Arr("buf", 40, 8, 8), ir.I64("b"))
	l := mustOriginal(t, st, 128)
	lines := l.LinesOf(1) // 320-byte array from offset 8 spans lines 0..2
	if len(lines) != 3 || lines[0] != 0 || lines[2] != 2 {
		t.Fatalf("LinesOf = %v", lines)
	}
	if !l.SameLine(0, 1) {
		t.Fatal("a shares line 0 with buf")
	}
	if !l.SameLine(1, 2) {
		t.Fatal("buf shares line 2 with b")
	}
	if l.SameLine(0, 2) {
		t.Fatal("a and b do not share lines")
	}
}

func TestLineAlignedSize(t *testing.T) {
	st := mixedStruct()
	l := mustOriginal(t, st, 128)
	if l.LineAlignedSize() != 128 {
		t.Fatalf("LineAlignedSize = %d", l.LineAlignedSize())
	}
	l32 := mustOriginal(t, st, 32)
	if l32.LineAlignedSize() != 64 {
		t.Fatalf("LineAlignedSize(32) = %d, want 64", l32.LineAlignedSize())
	}
}

func TestDumpMentionsLines(t *testing.T) {
	st := mixedStruct()
	l := mustOriginal(t, st, 32)
	d := l.Dump()
	if !strings.Contains(d, "-- line 0 --") || !strings.Contains(d, "-- line 1 --") {
		t.Fatalf("dump missing line markers:\n%s", d)
	}
}

// Property: any permutation yields a valid, non-overlapping, aligned layout
// no smaller than the dense minimum and no larger than worst-case padding.
func TestRandomPermutationsValid(t *testing.T) {
	st := mixedStruct()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := rng.Perm(len(st.Fields))
		l, err := FromOrder(st, "rand", order, 128)
		if err != nil {
			return false
		}
		if l.Validate() != nil {
			return false
		}
		return l.Size >= st.MinBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SortByHotness places within each alignment group in descending
// hotness order.
func TestSortByHotnessMonotone(t *testing.T) {
	st := mixedStruct()
	f := func(h0, h1, h2, h3, h4, h5, h6, h7 uint16) bool {
		hot := map[int]float64{
			0: float64(h0), 1: float64(h1), 2: float64(h2), 3: float64(h3),
			4: float64(h4), 5: float64(h5), 6: float64(h6), 7: float64(h7),
		}
		l, err := SortByHotness(st, hot, 128)
		if err != nil {
			return false
		}
		for i := 1; i < len(l.Order); i++ {
			a, b := l.Order[i-1], l.Order[i]
			if st.Fields[a].Align == st.Fields[b].Align && hot[a] < hot[b] {
				return false
			}
		}
		return l.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmitC(t *testing.T) {
	st := ir.NewStruct("conn",
		ir.I64("a"), ir.I32("b"), ir.I16("c"), ir.I8("d"),
		ir.Arr("buf", 3, 8, 8), ir.Pad("resv", 5),
	)
	l, err := PackClusters(st, "emit", [][]int{{0}, {1, 2, 3}, {4, 5}}, 64,
		layoutPackSeparateAll())
	if err != nil {
		t.Fatal(err)
	}
	c := l.EmitC()
	for _, want := range []string{
		"struct conn {",
		"uint64_t        a;",
		"uint32_t        b;",
		"uint16_t        c;",
		"uint8_t         d;",
		"_Alignas(8) char buf[24];",
		"char            resv[5];",
		"/* ---- cache line 0 ---- */",
		"/* ---- cache line 1 ---- */",
		"__pad0[",
	} {
		if !strings.Contains(c, want) {
			t.Fatalf("EmitC missing %q:\n%s", want, c)
		}
	}
	// Offsets in comments match the layout.
	if !strings.Contains(c, "/* offset    0 */") {
		t.Fatalf("offset comments missing:\n%s", c)
	}
}

// layoutPackSeparateAll forces one cluster per line for the emit test.
func layoutPackSeparateAll() PackOptions {
	return PackOptions{OneClusterPerLine: true}
}

// TestEmitCPaddingAccountsForEverything: declared members plus pads cover
// the full struct size with no overlap (parse sizes back out of the text).
func TestEmitCPaddingAccountsForEverything(t *testing.T) {
	st := mixedStruct()
	hot := map[int]float64{0: 5, 4: 9}
	l := mustSortByHotness(t, st, hot, 32)
	c := l.EmitC()
	// Count pad bytes mentioned and field bytes; compare with Size.
	total := 0
	for _, f := range st.Fields {
		total += f.Size
	}
	for _, line := range strings.Split(c, "\n") {
		if i := strings.Index(line, "__pad"); i >= 0 {
			var idx, n int
			if _, err := fmt.Sscanf(line[i:], "__pad%d[%d]", &idx, &n); err != nil {
				t.Fatalf("unparseable pad line %q: %v", line, err)
			}
			total += n
		}
	}
	if total != l.Size {
		t.Fatalf("members+pads = %d bytes, layout size %d:\n%s", total, l.Size, c)
	}
}

package layout

import (
	"fmt"
	"strings"
)

// EmitC renders the layout as a C structure definition with explicit
// padding members, the concrete artifact the paper's semi-automatic flow
// hands back to the programmer ("a programmer can use the suggested
// layout", §1). Field types are chosen by size/alignment: natural scalars
// become uintNN_t, anything else becomes a char array with an alignment
// attribute. Explicit pad members make the cache-line structure visible
// and survive compilers that would otherwise repack.
func (l *Layout) EmitC() string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* layout %q: %d bytes, %d cache lines of %d bytes */\n",
		l.Name, l.Size, l.NumLines(), l.LineSize)
	fmt.Fprintf(&b, "struct %s {\n", l.Struct.Name)

	type slot struct {
		off, size int
		fi        int // -1 for padding
	}
	slots := make([]slot, 0, len(l.Order)*2)
	pos := 0
	padSeq := 0
	for _, fi := range l.Order {
		off := l.Offsets[fi]
		if off > pos {
			slots = append(slots, slot{off: pos, size: off - pos, fi: -1})
			padSeq++
		}
		slots = append(slots, slot{off: off, size: l.Struct.Fields[fi].Size, fi: fi})
		pos = off + l.Struct.Fields[fi].Size
	}
	if l.Size > pos {
		slots = append(slots, slot{off: pos, size: l.Size - pos, fi: -1})
	}

	line := -1
	padIdx := 0
	for _, s := range slots {
		if ln := s.off / l.LineSize; ln != line {
			line = ln
			fmt.Fprintf(&b, "\t/* ---- cache line %d ---- */\n", line)
		}
		if s.fi < 0 {
			fmt.Fprintf(&b, "\tchar            __pad%d[%d];%s\n", padIdx, s.size, offComment(s.off))
			padIdx++
			continue
		}
		f := l.Struct.Fields[s.fi]
		fmt.Fprintf(&b, "\t%s%s\n", cDecl(f.Name, f.Size, f.Align), offComment(s.off))
	}
	b.WriteString("};\n")
	return b.String()
}

func offComment(off int) string {
	return fmt.Sprintf(" /* offset %4d */", off)
}

// cDecl picks a C declaration for a field.
func cDecl(name string, size, align int) string {
	switch {
	case size == 1 && align == 1:
		return fmt.Sprintf("uint8_t         %s;", name)
	case size == 2 && align == 2:
		return fmt.Sprintf("uint16_t        %s;", name)
	case size == 4 && align == 4:
		return fmt.Sprintf("uint32_t        %s;", name)
	case size == 8 && align == 8:
		return fmt.Sprintf("uint64_t        %s;", name)
	case align == 1:
		return fmt.Sprintf("char            %s[%d];", name, size)
	default:
		return fmt.Sprintf("_Alignas(%d) char %s[%d];", align, name, size)
	}
}

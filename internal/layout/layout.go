// Package layout turns field orders, cluster partitions and layout
// constraints into concrete structure layouts: byte offsets with C
// alignment rules, padding, and cache-line assignment.
//
// Three layout producers from the paper live here:
//
//   - Original: the declaration order (the hand-tuned baseline in §5).
//   - SortByHotness: the naive heuristic of §5.1 — group fields by
//     alignment, sort each group by hotness, pack densely.
//   - PackClusters / ApplyConstraints: materializations of the FLG
//     clustering output (§4.4) and of the incremental "best performance"
//     mode (§5.2) that alters an existing layout to satisfy the important
//     clustering constraints.
//
// The paper's model assumes record instances are allocated at cache-line
// boundaries (true for the HP-UX arena allocator, §2); LineAlignedSize is
// the arena stride under that assumption.
package layout

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/ir"
)

// Layout assigns every field of a struct a byte offset.
type Layout struct {
	// Struct is the record type being laid out.
	Struct *ir.StructType
	// Name labels the layout in reports ("baseline", "flg-auto", ...).
	Name string
	// Order lists field indices in memory order.
	Order []int
	// Offsets maps field index -> byte offset.
	Offsets []int
	// Size is the struct size including trailing padding to MaxAlign.
	Size int
	// LineSize is the coherence-line size used for line assignment.
	LineSize int
}

// FromOrder lays fields out in the given order with C alignment rules:
// each field is placed at the next offset aligned to its requirement.
func FromOrder(st *ir.StructType, name string, order []int, lineSize int) (*Layout, error) {
	if lineSize <= 0 {
		return nil, fmt.Errorf("layout: non-positive line size %d", lineSize)
	}
	if err := checkPermutation(st, order); err != nil {
		return nil, err
	}
	l := &Layout{
		Struct:   st,
		Name:     name,
		Order:    append([]int(nil), order...),
		Offsets:  make([]int, len(st.Fields)),
		LineSize: lineSize,
	}
	off := 0
	for _, fi := range order {
		f := st.Fields[fi]
		off = align(off, f.Align)
		l.Offsets[fi] = off
		off += f.Size
	}
	l.Size = align(off, st.MaxAlign())
	if l.Size == 0 {
		l.Size = 1
	}
	return l, nil
}

// Original returns the declaration-order layout. The order is a valid
// permutation by construction, so the only error source is a bad line
// size, which reaches this function from user input (flags, configs).
func Original(st *ir.StructType, lineSize int) (*Layout, error) {
	order := make([]int, len(st.Fields))
	for i := range order {
		order[i] = i
	}
	return FromOrder(st, "baseline", order, lineSize)
}

// SortByHotness implements the naive heuristic the paper evaluates against
// (§5.1): "divides the fields into groups based on the alignment
// requirements. Then it sorts each group by hotness and places the field in
// that order. This results in a highly packed layout with hot fields placed
// close to each other." Alignment groups are emitted from the largest
// alignment down, so the packing wastes no padding; within a group, hotter
// fields come first. Ties break by field index for determinism.
func SortByHotness(st *ir.StructType, hotness map[int]float64, lineSize int) (*Layout, error) {
	order := make([]int, len(st.Fields))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := st.Fields[order[a]], st.Fields[order[b]]
		if fa.Align != fb.Align {
			return fa.Align > fb.Align
		}
		ha, hb := hotness[order[a]], hotness[order[b]]
		if ha != hb {
			return ha > hb
		}
		return order[a] < order[b]
	})
	return FromOrder(st, "sort-by-hotness", order, lineSize)
}

// PackOptions controls cluster materialization.
type PackOptions struct {
	// OneClusterPerLine forces every cluster onto its own cache line
	// (the paper's idealized model). When false, clusters pack first-fit
	// into lines but never co-resident with a cluster they must be
	// separated from.
	OneClusterPerLine bool
	// Separate reports whether two clusters (by index) must not share a
	// cache line — typically "a negative FLG edge connects them". May be
	// nil when no separation constraints exist.
	Separate func(ci, cj int) bool
}

// PackClusters lays out a cluster partition. Clusters are placed in the
// given order; each cluster's fields stay contiguous and within one cache
// line (the clustering algorithm guarantees each cluster fits in a line).
// Padding is inserted when a cluster starts a new line.
func PackClusters(st *ir.StructType, name string, clusters [][]int, lineSize int, opts PackOptions) (*Layout, error) {
	var flat []int
	for _, c := range clusters {
		flat = append(flat, c...)
	}
	if err := checkPermutation(st, flat); err != nil {
		return nil, err
	}
	for ci, c := range clusters {
		if w := clusterBytes(st, c); w > lineSize {
			return nil, fmt.Errorf("layout: cluster %d needs %d bytes > line size %d", ci, w, lineSize)
		}
	}

	l := &Layout{
		Struct:   st,
		Name:     name,
		Offsets:  make([]int, len(st.Fields)),
		LineSize: lineSize,
	}
	off := 0
	lineOccupants := make(map[int][]int) // line -> cluster indices
	for ci, c := range clusters {
		start := off
		// Would this cluster's aligned placement spill past the line end?
		end := start
		for _, fi := range c {
			end = align(end, st.Fields[fi].Align) + st.Fields[fi].Size
		}
		newLine := opts.OneClusterPerLine && start%lineSize != 0
		if !newLine && end > (start/lineSize+1)*lineSize && start%lineSize != 0 {
			newLine = true
		}
		if !newLine && opts.Separate != nil {
			for _, cj := range lineOccupants[start/lineSize] {
				if opts.Separate(ci, cj) || opts.Separate(cj, ci) {
					newLine = true
					break
				}
			}
		}
		if newLine {
			off = align(off, lineSize)
		}
		firstLine := off / lineSize
		for _, fi := range c {
			f := st.Fields[fi]
			off = align(off, f.Align)
			l.Offsets[fi] = off
			off += f.Size
			l.Order = append(l.Order, fi)
		}
		for line := firstLine; line <= (off-1)/lineSize; line++ {
			lineOccupants[line] = append(lineOccupants[line], ci)
		}
	}
	l.Size = align(off, st.MaxAlign())
	if l.Size == 0 {
		l.Size = 1
	}
	return l, nil
}

// ApplyConstraints implements the incremental mode of §5.2: keep the
// original layout's field order, but enforce the subgraph clustering's
// constraints — fields in the same cluster become adjacent (same line), and
// fields in different clusters never share a line.
//
// Each cluster becomes a movable unit anchored at its earliest member's
// original position; all remaining fields are singleton units in original
// order. Units lay out sequentially; a cluster unit starts a new line when
// the current line already holds a member of a different cluster or cannot
// fit it whole, and a singleton unit starts a new line when the current
// line holds a cluster that must be kept apart from... nothing — singletons
// are unconstrained and simply pack.
func ApplyConstraints(orig *Layout, name string, clusters [][]int) (*Layout, error) {
	st := orig.Struct
	inCluster := make(map[int]int) // field -> cluster index
	for ci, c := range clusters {
		for _, fi := range c {
			if fi < 0 || fi >= len(st.Fields) {
				return nil, fmt.Errorf("layout: constraint field %d out of range", fi)
			}
			if prev, dup := inCluster[fi]; dup {
				return nil, fmt.Errorf("layout: field %d in clusters %d and %d", fi, prev, ci)
			}
			inCluster[fi] = ci
		}
		if w := clusterBytes(st, c); w > orig.LineSize {
			return nil, fmt.Errorf("layout: constraint cluster %d needs %d bytes > line size", ci, w)
		}
	}

	// Build unit list in original order.
	type unit struct {
		cluster int // -1 for singleton
		fields  []int
	}
	var units []unit
	emitted := make(map[int]bool)
	for _, fi := range orig.Order {
		ci, clustered := inCluster[fi]
		if !clustered {
			units = append(units, unit{cluster: -1, fields: []int{fi}})
			continue
		}
		if emitted[fi] {
			continue
		}
		// Emit the whole cluster at its first member's position, members in
		// original relative order.
		members := append([]int(nil), clusters[ci]...)
		sort.Slice(members, func(a, b int) bool {
			return orig.Offsets[members[a]] < orig.Offsets[members[b]]
		})
		for _, m := range members {
			emitted[m] = true
		}
		units = append(units, unit{cluster: ci, fields: members})
	}

	l := &Layout{
		Struct:   st,
		Name:     name,
		Offsets:  make([]int, len(st.Fields)),
		LineSize: orig.LineSize,
	}
	lineSize := orig.LineSize
	off := 0
	lineClusters := make(map[int]map[int]bool) // line -> set of cluster ids
	markLines := func(from, to, ci int) {
		for line := from / lineSize; line <= (to-1)/lineSize; line++ {
			if lineClusters[line] == nil {
				lineClusters[line] = make(map[int]bool)
			}
			lineClusters[line][ci] = true
		}
	}
	for _, u := range units {
		start := off
		end := start
		for _, fi := range u.fields {
			end = align(end, st.Fields[fi].Align) + st.Fields[fi].Size
		}
		if u.cluster >= 0 {
			newLine := false
			// Must not share its line(s) with another cluster.
			for line := start / lineSize; line <= (end-1)/lineSize; line++ {
				for other := range lineClusters[line] {
					if other != u.cluster {
						newLine = true
					}
				}
			}
			// Must fit within one line.
			if end > (start/lineSize+1)*lineSize && start%lineSize != 0 {
				newLine = true
			}
			if newLine {
				off = align(off, lineSize)
			}
		} else {
			// Singleton: if placing it would land on a line claimed by a
			// cluster, that is fine (clusters only exclude *other
			// clusters*), so just pack.
			_ = u
		}
		ustart := off
		for _, fi := range u.fields {
			f := st.Fields[fi]
			off = align(off, f.Align)
			l.Offsets[fi] = off
			off += f.Size
			l.Order = append(l.Order, fi)
		}
		if u.cluster >= 0 {
			markLines(ustart, off, u.cluster)
		}
	}
	l.Size = align(off, st.MaxAlign())
	if l.Size == 0 {
		l.Size = 1
	}
	// Re-check separation: a singleton placed after a cluster may share its
	// line (allowed), but two clusters must never share.
	if err := l.checkClusterSeparation(clusters); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Layout) checkClusterSeparation(clusters [][]int) error {
	lineOf := make(map[int]int)
	for ci, c := range clusters {
		for _, fi := range c {
			lineOf[fi] = ci
		}
	}
	byLine := make(map[int]int) // line -> cluster claiming it
	for fi, ci := range lineOf {
		for _, line := range l.LinesOf(fi) {
			if prev, ok := byLine[line]; ok && prev != ci {
				return fmt.Errorf("layout: clusters %d and %d share line %d", prev, ci, line)
			}
			byLine[line] = ci
		}
	}
	return nil
}

// LineOf returns the cache line index of the field's first byte.
func (l *Layout) LineOf(fi int) int { return l.Offsets[fi] / l.LineSize }

// FieldAt returns the index of the field containing the byte offset, or -1
// for padding or out-of-range offsets.
func (l *Layout) FieldAt(off int) int {
	for fi, f := range l.Struct.Fields {
		if off >= l.Offsets[fi] && off < l.Offsets[fi]+f.Size {
			return fi
		}
	}
	return -1
}

// LinesOf returns all cache lines the field occupies.
func (l *Layout) LinesOf(fi int) []int {
	first := l.Offsets[fi] / l.LineSize
	last := (l.Offsets[fi] + l.Struct.Fields[fi].Size - 1) / l.LineSize
	out := make([]int, 0, last-first+1)
	for i := first; i <= last; i++ {
		out = append(out, i)
	}
	return out
}

// SameLine reports whether two fields share any cache line.
func (l *Layout) SameLine(f1, f2 int) bool {
	for _, a := range l.LinesOf(f1) {
		for _, b := range l.LinesOf(f2) {
			if a == b {
				return true
			}
		}
	}
	return false
}

// NumLines returns the number of cache lines the layout spans.
func (l *Layout) NumLines() int { return (l.Size + l.LineSize - 1) / l.LineSize }

// LineAlignedSize returns the arena stride: the size rounded up to a whole
// number of cache lines (instances are line-aligned, §2).
func (l *Layout) LineAlignedSize() int { return l.NumLines() * l.LineSize }

// Validate checks structural sanity: the order is a permutation, offsets
// respect alignment, and no two fields overlap.
func (l *Layout) Validate() error {
	if err := checkPermutation(l.Struct, l.Order); err != nil {
		return err
	}
	type span struct{ lo, hi, fi int }
	spans := make([]span, 0, len(l.Struct.Fields))
	for fi, f := range l.Struct.Fields {
		off := l.Offsets[fi]
		if off < 0 || off+f.Size > l.Size {
			return fmt.Errorf("layout %s: field %s at [%d,%d) outside size %d", l.Name, f.Name, off, off+f.Size, l.Size)
		}
		if off%f.Align != 0 {
			return fmt.Errorf("layout %s: field %s at %d violates alignment %d", l.Name, f.Name, off, f.Align)
		}
		spans = append(spans, span{off, off + f.Size, fi})
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].lo < spans[b].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return fmt.Errorf("layout %s: fields %s and %s overlap",
				l.Name, l.Struct.Fields[spans[i-1].fi].Name, l.Struct.Fields[spans[i].fi].Name)
		}
	}
	return nil
}

// PaddingBytes returns the bytes lost to padding.
func (l *Layout) PaddingBytes() int { return l.Size - l.Struct.MinBytes() }

// Dump renders the layout line by line.
func (l *Layout) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "layout %s of struct %s: %d bytes, %d lines, %d padding\n",
		l.Name, l.Struct.Name, l.Size, l.NumLines(), l.PaddingBytes())
	curLine := -1
	for _, fi := range l.Order {
		f := l.Struct.Fields[fi]
		if line := l.LineOf(fi); line != curLine {
			curLine = line
			fmt.Fprintf(&b, "  -- line %d --\n", curLine)
		}
		fmt.Fprintf(&b, "  %4d  %-24s size=%d\n", l.Offsets[fi], f.Name, f.Size)
	}
	return b.String()
}

// Equal reports whether two layouts place every field identically.
func (l *Layout) Equal(o *Layout) bool {
	if l.Struct != o.Struct || l.Size != o.Size {
		return false
	}
	for i := range l.Offsets {
		if l.Offsets[i] != o.Offsets[i] {
			return false
		}
	}
	return true
}

func clusterBytes(st *ir.StructType, c []int) int {
	end := 0
	for _, fi := range c {
		end = align(end, st.Fields[fi].Align) + st.Fields[fi].Size
	}
	return end
}

func checkPermutation(st *ir.StructType, order []int) error {
	if len(order) != len(st.Fields) {
		return fmt.Errorf("layout: order has %d entries for %d fields", len(order), len(st.Fields))
	}
	seen := make([]bool, len(st.Fields))
	for _, fi := range order {
		if fi < 0 || fi >= len(st.Fields) {
			return fmt.Errorf("layout: field index %d out of range", fi)
		}
		if seen[fi] {
			return fmt.Errorf("layout: field index %d repeated", fi)
		}
		seen[fi] = true
	}
	return nil
}

func align(off, a int) int { return (off + a - 1) / a * a }

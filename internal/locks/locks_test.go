package locks

import (
	"testing"

	"structlayout/internal/ir"
)

// buildLocked: two procs, each taking the same shared lock around writes to
// different fields; a third proc writes unlocked.
func buildLocked(t testing.TB) (*ir.Program, *ir.StructType) {
	t.Helper()
	p := ir.NewProgram("locked")
	s := ir.NewStruct("S", ir.I64("lk"), ir.I64("a"), ir.I64("b"), ir.I64("c"))
	p.AddStruct(s)

	pa := p.NewProc("writerA")
	pa.Lock(s, "lk", ir.Shared(0))
	pa.Write(s, "a", ir.Shared(0))
	pa.Unlock(s, "lk", ir.Shared(0))
	pa.Done()

	pb := p.NewProc("writerB")
	pb.Lock(s, "lk", ir.Shared(0))
	pb.Write(s, "b", ir.Shared(0))
	pb.Unlock(s, "lk", ir.Shared(0))
	pb.Done()

	pc := p.NewProc("writerC")
	pc.Write(s, "c", ir.Shared(0))
	pc.Done()
	return p.MustFinalize(), s
}

// findAccess locates (block, seq) of the first access to the named field.
func findAccess(t testing.TB, p *ir.Program, s *ir.StructType, field string) (ir.BlockID, int) {
	t.Helper()
	fi := s.FieldIndex(field)
	for _, b := range p.Blocks() {
		for seq, in := range b.FieldInstrs() {
			if in.Op == ir.OpField && in.Field == fi {
				return b.Global, seq
			}
		}
	}
	t.Fatalf("no access to %s", field)
	return 0, 0
}

func TestHeldSetsAndExclusion(t *testing.T) {
	p, s := buildLocked(t)
	info, err := Analyze(p, []string{"writerA", "writerB", "writerC"})
	if err != nil {
		t.Fatal(err)
	}
	ba, sa := findAccess(t, p, s, "a")
	bb, sb := findAccess(t, p, s, "b")
	bc, sc := findAccess(t, p, s, "c")

	if held := info.HeldAt(ba, sa); len(held) != 1 || held[0].Field != s.FieldIndex("lk") {
		t.Fatalf("held at a = %v", held)
	}
	if held := info.HeldAt(bc, sc); len(held) != 0 {
		t.Fatalf("held at c = %v, want none", held)
	}

	excl := info.MutualExclusion()
	if !excl(ba, sa, bb, sb) {
		t.Fatal("a and b are both under the shared lock: must be mutually excluded")
	}
	if excl(ba, sa, bc, sc) {
		t.Fatal("c is unlocked: no exclusion with a")
	}
	for _, proc := range []string{"writerA", "writerB", "writerC"} {
		if !info.Balanced(proc) {
			t.Fatalf("%s should be balanced", proc)
		}
	}
}

func TestPerInstanceLockExcludesNothing(t *testing.T) {
	p := ir.NewProgram("perinst")
	s := ir.NewStruct("S", ir.I64("lk"), ir.I64("a"), ir.I64("b"))
	p.AddStruct(s)
	w := p.NewProc("w")
	w.Lock(s, "lk", ir.Param(0))
	w.Write(s, "a", ir.Param(0))
	w.Write(s, "b", ir.Param(0))
	w.Unlock(s, "lk", ir.Param(0))
	w.Done()
	p.MustFinalize()

	info, err := Analyze(p, []string{"w"})
	if err != nil {
		t.Fatal(err)
	}
	ba, sa := findAccess(t, p, s, "a")
	bb, sb := findAccess(t, p, s, "b")
	// The lock IS held...
	if len(info.HeldAt(ba, sa)) != 1 {
		t.Fatal("per-instance lock not tracked")
	}
	// ...but two threads hold different instances: no mutual exclusion.
	if info.MutualExclusion()(ba, sa, bb, sb) {
		t.Fatal("per-instance lock must not establish cross-thread exclusion")
	}
}

func TestInterproceduralPropagation(t *testing.T) {
	p := ir.NewProgram("interproc")
	s := ir.NewStruct("S", ir.I64("lk"), ir.I64("a"))
	p.AddStruct(s)
	callee := p.NewProc("callee")
	callee.Write(s, "a", ir.Shared(0))
	callee.Done()
	caller := p.NewProc("caller")
	caller.Lock(s, "lk", ir.Shared(0))
	caller.Call("callee")
	caller.Unlock(s, "lk", ir.Shared(0))
	caller.Done()
	p.MustFinalize()

	info, err := Analyze(p, []string{"caller"})
	if err != nil {
		t.Fatal(err)
	}
	ba, sa := findAccess(t, p, s, "a")
	if held := info.HeldAt(ba, sa); len(held) != 1 {
		t.Fatalf("callee access should inherit the caller's lock, held=%v", held)
	}
}

func TestCallSiteIntersection(t *testing.T) {
	// callee called once under the lock and once without: held = ∅.
	p := ir.NewProgram("mixedctx")
	s := ir.NewStruct("S", ir.I64("lk"), ir.I64("a"))
	p.AddStruct(s)
	callee := p.NewProc("callee")
	callee.Write(s, "a", ir.Shared(0))
	callee.Done()
	caller := p.NewProc("caller")
	caller.Lock(s, "lk", ir.Shared(0))
	caller.Call("callee")
	caller.Unlock(s, "lk", ir.Shared(0))
	caller.Call("callee") // unlocked call site
	caller.Done()
	p.MustFinalize()

	info, err := Analyze(p, []string{"caller"})
	if err != nil {
		t.Fatal(err)
	}
	ba, sa := findAccess(t, p, s, "a")
	if held := info.HeldAt(ba, sa); len(held) != 0 {
		t.Fatalf("mixed call contexts must intersect to empty, held=%v", held)
	}
}

func TestEntryProcIgnoresCallSites(t *testing.T) {
	// A proc that is both a thread entry and called under a lock: entry
	// status wins (a thread may start there with nothing held).
	p := ir.NewProgram("dualentry")
	s := ir.NewStruct("S", ir.I64("lk"), ir.I64("a"))
	p.AddStruct(s)
	both := p.NewProc("both")
	both.Write(s, "a", ir.Shared(0))
	both.Done()
	caller := p.NewProc("caller")
	caller.Lock(s, "lk", ir.Shared(0))
	caller.Call("both")
	caller.Unlock(s, "lk", ir.Shared(0))
	caller.Done()
	p.MustFinalize()

	info, err := Analyze(p, []string{"caller", "both"})
	if err != nil {
		t.Fatal(err)
	}
	ba, sa := findAccess(t, p, s, "a")
	if held := info.HeldAt(ba, sa); len(held) != 0 {
		t.Fatalf("entry proc must start with nothing held, held=%v", held)
	}
}

func TestBranchIntersection(t *testing.T) {
	// Lock acquired in only one branch arm: after the join nothing is
	// definitely held; inside the locked arm it is.
	p := ir.NewProgram("branchy")
	s := ir.NewStruct("S", ir.I64("lk"), ir.I64("a"), ir.I64("b"))
	p.AddStruct(s)
	f := p.NewProc("f")
	f.IfElse(0.5,
		func(b *ir.Builder) {
			b.Lock(s, "lk", ir.Shared(0))
			b.Write(s, "a", ir.Shared(0))
			b.Unlock(s, "lk", ir.Shared(0))
		},
		func(b *ir.Builder) {
			b.Compute(1)
		},
	)
	f.Write(s, "b", ir.Shared(0))
	f.Done()
	p.MustFinalize()

	info, err := Analyze(p, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	ba, sa := findAccess(t, p, s, "a")
	bb, sb := findAccess(t, p, s, "b")
	if len(info.HeldAt(ba, sa)) != 1 {
		t.Fatal("locked-arm access should hold the lock")
	}
	if len(info.HeldAt(bb, sb)) != 0 {
		t.Fatal("post-join access must not claim the lock")
	}
	if !info.Balanced("f") {
		t.Fatal("f is balanced")
	}
}

func TestLoopBalance(t *testing.T) {
	p := ir.NewProgram("loopy")
	s := ir.NewStruct("S", ir.I64("lk"), ir.I64("a"))
	p.AddStruct(s)
	f := p.NewProc("balanced")
	f.Loop(10, func(b *ir.Builder) {
		b.Lock(s, "lk", ir.Shared(0))
		b.Write(s, "a", ir.Shared(0))
		b.Unlock(s, "lk", ir.Shared(0))
	})
	f.Done()
	p.MustFinalize()
	info, err := Analyze(p, []string{"balanced"})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Balanced("balanced") {
		t.Fatal("balanced loop misclassified")
	}
	ba, sa := findAccess(t, p, s, "a")
	if len(info.HeldAt(ba, sa)) != 1 {
		t.Fatal("in-loop access should hold the lock")
	}
}

func TestAnalyzeUnknownEntry(t *testing.T) {
	p := ir.NewProgram("e")
	f := p.NewProc("f")
	f.Compute(1)
	f.Done()
	p.MustFinalize()
	if _, err := Analyze(p, []string{"ghost"}); err == nil {
		t.Fatal("unknown entry accepted")
	}
}

func TestAnalyzeNilProgram(t *testing.T) {
	if _, err := Analyze(nil, nil); err == nil {
		t.Fatal("nil program accepted")
	}
}

// TestAnalyzeDamagedCFGNoPanic mutates a finalized program the way
// measurement-fault tests damage CFGs; Analyze must degrade to an error
// (or a conservative result) instead of panicking.
func TestAnalyzeDamagedCFGNoPanic(t *testing.T) {
	t.Run("nil-instr-struct", func(t *testing.T) {
		p, s := buildLocked(t)
		for _, b := range p.Blocks() {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpLock {
					b.Instrs[i].Struct = nil
				}
			}
		}
		info, err := Analyze(p, []string{"writerA", "writerB", "writerC"})
		if err == nil && info == nil {
			t.Fatal("nil info without error")
		}
		if err == nil {
			// Damaged lock keys must never claim exclusion on real fields.
			ba, sa := findAccess(t, p, s, "a")
			bb, sb := findAccess(t, p, s, "b")
			if info.MutualExclusion()(ba, sa, bb, sb) {
				t.Fatal("damaged lock keys claimed exclusion")
			}
		}
	})
	t.Run("nil-exec-block", func(t *testing.T) {
		p, _ := buildLocked(t)
		for _, pr := range p.Procs {
			for i := range pr.Tree {
				if eb, ok := pr.Tree[i].(*ir.ExecBlock); ok {
					eb.Block = nil
					break
				}
			}
		}
		if _, err := Analyze(p, []string{"writerA", "writerB", "writerC"}); err != nil {
			t.Logf("degraded with error (fine): %v", err)
		}
	})
	t.Run("nil-tree-node", func(t *testing.T) {
		p, _ := buildLocked(t)
		pr := p.Proc("writerA")
		pr.Tree[0] = nil
		if _, err := Analyze(p, []string{"writerA", "writerB", "writerC"}); err != nil {
			t.Logf("degraded with error (fine): %v", err)
		}
	})
}

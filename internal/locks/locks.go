// Package locks implements the lock analysis the paper lists as future
// work (§7: "We will seek to improve the affinity information by a variety
// of means, in particular ... by lock analysis"). It computes, for every
// field-touching instruction, the set of spinlocks definitely held when it
// executes, interprocedurally over the acyclic call graph.
//
// Its main consumer is a mutual-exclusion oracle for CycleLoss: two
// accesses both performed under the same *shared-instance* lock can never
// execute concurrently, so sampled CodeConcurrency between their blocks is
// a false alarm — the fields may be co-located without false sharing. (A
// lock on a per-thread instance excludes nothing: each thread holds its
// own lock.) This is a second, orthogonal mitigation of the CycleLoss
// over-approximation, alongside the alias oracle of §3.2.
package locks

import (
	"fmt"
	"sort"

	"structlayout/internal/ir"
)

// Key identifies a lock: a field of a struct, qualified by the instance
// expression it is acquired through. Two acquisitions with syntactically
// identical shared-instance expressions take the same runtime lock; all
// other kinds are per-thread or data-dependent and excluded from mutual
// exclusion reasoning (but still tracked, e.g. for affinity hints).
type Key struct {
	Struct string
	Field  int
	Inst   ir.InstExpr
}

// SharedInstance reports whether this lock is one runtime lock for all
// threads.
func (k Key) SharedInstance() bool { return k.Inst.Kind == ir.InstShared }

// String renders the key.
func (k Key) String() string {
	return fmt.Sprintf("%s.#%d@%s", k.Struct, k.Field, k.Inst)
}

// Info is the analysis result.
type Info struct {
	// heldAt maps (block, field-instruction sequence) to the locks
	// definitely held when that instruction executes.
	heldAt map[instrRef][]Key
	// balanced records procedures whose body acquires and releases
	// symmetrically; unbalanced procedures poison their callers.
	balanced map[string]bool
}

type instrRef struct {
	block ir.BlockID
	seq   int
}

// HeldAt returns the locks definitely held when the seq-th field-touching
// instruction of the block executes (nil when unknown or none).
func (in *Info) HeldAt(b ir.BlockID, seq int) []Key { return in.heldAt[instrRef{b, seq}] }

// Balanced reports whether the procedure's lock discipline was analyzable
// (every path releases what it acquires).
func (in *Info) Balanced(proc string) bool { return in.balanced[proc] }

// MutualExclusion returns an oracle telling the FLG that two field accesses
// cannot be concurrent: they share a held lock on a shared instance.
func (in *Info) MutualExclusion() func(b1 ir.BlockID, s1 int, b2 ir.BlockID, s2 int) bool {
	return func(b1 ir.BlockID, s1 int, b2 ir.BlockID, s2 int) bool {
		h1 := in.heldAt[instrRef{b1, s1}]
		if len(h1) == 0 {
			return false
		}
		h2 := in.heldAt[instrRef{b2, s2}]
		if len(h2) == 0 {
			return false
		}
		for _, k1 := range h1 {
			// Keys whose struct name was lost to CFG damage could collapse
			// distinct locks into one; they never ground exclusion.
			if !k1.SharedInstance() || k1.Struct == "" {
				continue
			}
			for _, k2 := range h2 {
				if k1 == k2 {
					return true
				}
			}
		}
		return false
	}
}

// Analyze runs the analysis. entries names the procedures threads may start
// in; they (and procedures with no call sites) are analyzed with an empty
// entry lock set. Procedures reached only through calls inherit the
// intersection of their call sites' held sets.
//
// Damaged or partial programs (nil tree nodes, instructions without a
// struct, calls to undefined procedures, cyclic call graphs) never panic:
// the analysis either tolerates the damage, treating the affected path as
// unanalyzable, or returns an error the caller can degrade on — the
// pipeline's contract is to fall back to a no-exclusion oracle with a
// lock-analysis-failed diagnostic rather than abort the run.
func Analyze(p *ir.Program, entries []string) (info *Info, err error) {
	defer func() {
		if r := recover(); r != nil {
			info, err = nil, fmt.Errorf("locks: analysis failed on damaged program: %v", r)
		}
	}()
	if p == nil {
		return nil, fmt.Errorf("locks: nil program")
	}
	isEntry := make(map[string]bool, len(entries))
	for _, e := range entries {
		if p.Proc(e) == nil {
			return nil, fmt.Errorf("locks: unknown entry procedure %q", e)
		}
		isEntry[e] = true
	}
	info = &Info{
		heldAt:   make(map[instrRef][]Key),
		balanced: make(map[string]bool),
	}
	a := &analyzer{prog: p, info: info, callCtx: make(map[string][]lockSet)}

	order, err := topoOrder(p)
	if err != nil {
		return nil, err
	}
	for _, pr := range order {
		if pr == nil {
			continue
		}
		entrySet := lockSet{}
		if !isEntry[pr.Name] {
			if ctxs, ok := a.callCtx[pr.Name]; ok && len(ctxs) > 0 {
				entrySet = intersectAll(ctxs)
			}
			// No call sites and not an entry: unreachable; analyze with ∅.
		}
		a.analyzeProc(pr, entrySet)
	}
	return info, nil
}

// lockSet is an ordered set of keys (small; linear ops suffice).
type lockSet []Key

func (s lockSet) has(k Key) bool {
	for _, x := range s {
		if x == k {
			return true
		}
	}
	return false
}

func (s lockSet) add(k Key) lockSet {
	if s.has(k) {
		return s
	}
	out := append(append(lockSet{}, s...), k)
	return out
}

func (s lockSet) remove(k Key) lockSet {
	out := make(lockSet, 0, len(s))
	for _, x := range s {
		if x != k {
			out = append(out, x)
		}
	}
	return out
}

func (s lockSet) clone() lockSet { return append(lockSet{}, s...) }

func (s lockSet) equal(o lockSet) bool {
	if len(s) != len(o) {
		return false
	}
	for _, k := range s {
		if !o.has(k) {
			return false
		}
	}
	return true
}

func intersect(a, b lockSet) lockSet {
	out := lockSet{}
	for _, k := range a {
		if b.has(k) {
			out = append(out, k)
		}
	}
	return out
}

func intersectAll(sets []lockSet) lockSet {
	out := sets[0].clone()
	for _, s := range sets[1:] {
		out = intersect(out, s)
	}
	return out
}

// analyzer carries shared state.
type analyzer struct {
	prog *ir.Program
	info *Info
	// callCtx collects, per callee, the held set at each call site.
	callCtx map[string][]lockSet
}

// analyzeProc walks the execution tree with a running held set.
func (a *analyzer) analyzeProc(pr *ir.Procedure, entry lockSet) {
	exit, ok := a.walk(pr.Tree, entry.clone())
	a.info.balanced[pr.Name] = ok && exit.equal(entry)
}

// walk processes nodes, returning the held set at exit and whether the
// walk stayed analyzable.
func (a *analyzer) walk(nodes []ir.ExecNode, held lockSet) (lockSet, bool) {
	ok := true
	for _, n := range nodes {
		switch n := n.(type) {
		case nil:
			// Damaged tree: the path past this node is unanalyzable.
			ok = false
			held = lockSet{}
		case *ir.ExecBlock:
			if n.Block == nil {
				ok = false
				held = lockSet{}
				continue
			}
			held = a.walkBlock(n.Block, held)
		case *ir.ExecLoop:
			// One symbolic iteration; require balance, otherwise drop to ∅
			// (a loop that accumulates locks would deadlock at runtime).
			after, bodyOK := a.walk(n.Body, held.clone())
			if !bodyOK || !after.equal(held) {
				ok = false
				held = lockSet{}
			}
		case *ir.ExecIf:
			thenOut, thenOK := a.walk(n.Then, held.clone())
			elseOut, elseOK := a.walk(n.Else, held.clone())
			if !thenOK || !elseOK {
				ok = false
			}
			held = intersect(thenOut, elseOut)
		}
	}
	return held, ok
}

// walkBlock processes one block's instructions, recording held sets for
// field-touching instructions by their FieldInstrs sequence number.
func (a *analyzer) walkBlock(b *ir.BasicBlock, held lockSet) lockSet {
	seq := 0
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpLock:
			// The acquire itself is not protected by the lock it takes.
			a.record(b.Global, seq, held)
			held = held.add(Key{Struct: lockStructName(in), Field: in.Field, Inst: in.Inst})
			seq++
		case ir.OpUnlock:
			// The release write still happens under the lock.
			a.record(b.Global, seq, held)
			held = held.remove(Key{Struct: lockStructName(in), Field: in.Field, Inst: in.Inst})
			seq++
		case ir.OpField:
			a.record(b.Global, seq, held)
			seq++
		case ir.OpCall:
			a.callCtx[in.Callee] = append(a.callCtx[in.Callee], held.clone())
		}
	}
	return held
}

// lockStructName tolerates instructions whose struct pointer was damaged:
// the key degrades to an empty struct name instead of panicking. Such keys
// never match a SharedInstance key of a real struct from a different field,
// so exclusion facts stay sound.
func lockStructName(in ir.Instr) string {
	if in.Struct == nil {
		return ""
	}
	return in.Struct.Name
}

func (a *analyzer) record(b ir.BlockID, seq int, held lockSet) {
	if len(held) == 0 {
		return
	}
	a.info.heldAt[instrRef{b, seq}] = held.clone()
}

// topoOrder returns procedures with callers before callees (valid because
// ir.Finalize rejects recursion). Ties break by name for determinism.
func topoOrder(p *ir.Program) ([]*ir.Procedure, error) {
	callees := make(map[string]map[string]bool)
	callers := make(map[string]int)
	for _, pr := range p.Procs {
		callers[pr.Name] += 0
		for _, b := range pr.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				if callees[pr.Name] == nil {
					callees[pr.Name] = make(map[string]bool)
				}
				if !callees[pr.Name][in.Callee] {
					callees[pr.Name][in.Callee] = true
					callers[in.Callee]++
				}
			}
		}
	}
	var ready []string
	for name, n := range callers {
		if n == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready)
	var order []*ir.Procedure
	resolved := 0
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		// Calls to undefined procedures (possible on damaged or partial
		// programs — Finalize rejects them, but the analysis must not rely
		// on a finalized input) contribute nothing to held sets; drop them
		// from the order instead of dereferencing nil.
		if pr := p.Proc(name); pr != nil {
			order = append(order, pr)
			resolved++
		}
		var next []string
		for callee := range callees[name] {
			callers[callee]--
			if callers[callee] == 0 {
				next = append(next, callee)
			}
		}
		sort.Strings(next)
		ready = append(ready, next...)
	}
	if resolved != len(p.Procs) {
		return nil, fmt.Errorf("locks: call graph not acyclic")
	}
	return order, nil
}

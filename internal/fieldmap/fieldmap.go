// Package fieldmap builds the paper's Field Mapping File (FMF, §4.3): a map
// from source lines to the struct fields accessed in the basic blocks
// behind those lines, with read/write flags. The concurrency pipeline joins
// this file with the Concurrency Map to turn block-level concurrency into
// field-level CycleLoss.
//
// In the paper the FMF is emitted by a new compiler component and written
// to disk for an external script; this package provides both the in-memory
// index and a line-oriented text serialization round-trip for the
// command-line tools.
package fieldmap

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"structlayout/internal/ir"
)

// Entry is one field access within a source line's basic block. Seq is the
// access's position among the block's field-touching instructions, which
// lets instruction-level analyses (e.g. lock-based mutual exclusion) refine
// block-level joins.
type Entry struct {
	Struct string
	Field  int
	Acc    ir.AccessKind
	Seq    int
}

// File maps source lines to their field accesses. Lines without field
// accesses do not appear.
type File struct {
	// Lines maps each source line to its accesses (static, per execution).
	Lines map[ir.SourceLine][]Entry
	// blocks maps each block to the same data for block-keyed consumers.
	blocks map[ir.BlockID][]Entry
}

// Build derives the FMF from the finalized program. Lock and unlock
// instructions count as writes of their field, consistent with
// BasicBlock.FieldInstrs.
func Build(p *ir.Program) *File {
	f := &File{
		Lines:  make(map[ir.SourceLine][]Entry),
		blocks: make(map[ir.BlockID][]Entry),
	}
	for _, b := range p.Blocks() {
		var entries []Entry
		for seq, in := range b.FieldInstrs() {
			entries = append(entries, Entry{Struct: in.Struct.Name, Field: in.Field, Acc: in.Acc, Seq: seq})
		}
		if entries != nil {
			f.Lines[b.Line] = entries
			f.blocks[b.Global] = entries
		}
	}
	return f
}

// FromLines builds a File from a line-keyed access table, reconstructing
// the block index through the program's line table. Lines that name no
// known block are kept in the line index only (a stale FMF may reference
// source lines the current program no longer has).
func FromLines(lines map[ir.SourceLine][]Entry, p *ir.Program) *File {
	f := &File{
		Lines:  make(map[ir.SourceLine][]Entry, len(lines)),
		blocks: make(map[ir.BlockID][]Entry, len(lines)),
	}
	table := p.LineTable()
	for loc, entries := range lines {
		f.Lines[loc] = entries
		if b, ok := table[loc]; ok {
			f.blocks[b.Global] = entries
		}
	}
	return f
}

// Filter returns a copy of the file containing only the lines keep accepts.
func (f *File) Filter(p *ir.Program, keep func(ir.SourceLine) bool) *File {
	lines := make(map[ir.SourceLine][]Entry, len(f.Lines))
	for loc, entries := range f.Lines {
		if keep(loc) {
			lines[loc] = entries
		}
	}
	return FromLines(lines, p)
}

// CoverageRatio reports the fraction of the program's field-touching
// blocks that the file has entries for. A complete FMF (as Build emits)
// covers 1.0; a stale or truncated one covers less, and the consuming
// pipeline uses the ratio to decide how much to trust CycleLoss joins.
// A program with no field-touching blocks is trivially fully covered.
func (f *File) CoverageRatio(p *ir.Program) float64 {
	total, covered := 0, 0
	for _, b := range p.Blocks() {
		if len(b.FieldInstrs()) == 0 {
			continue
		}
		total++
		if len(f.blocks[b.Global]) > 0 {
			covered++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(covered) / float64(total)
}

// At returns the accesses recorded for a source line.
func (f *File) At(line ir.SourceLine) []Entry { return f.Lines[line] }

// AtBlock returns the accesses recorded for a block.
func (f *File) AtBlock(id ir.BlockID) []Entry { return f.blocks[id] }

// BlocksTouching returns, for one struct, every block that accesses it,
// with that block's accesses filtered to the struct. hasWrite reports
// whether the block writes any field of the struct.
func (f *File) BlocksTouching(structName string) map[ir.BlockID][]Entry {
	out := make(map[ir.BlockID][]Entry)
	for id, entries := range f.blocks {
		for _, e := range entries {
			if e.Struct == structName {
				out[id] = append(out[id], e)
			}
		}
	}
	return out
}

// TouchesWithWrite reports whether any entry writes.
func TouchesWithWrite(entries []Entry) bool {
	for _, e := range entries {
		if e.Acc == ir.Write {
			return true
		}
	}
	return false
}

// WriteText serializes the file in the paper's "simple and easily parseable
// format": one line per source line, sorted, entries as struct.field/R|W.
func (f *File) WriteText(w io.Writer) error {
	lines := make([]ir.SourceLine, 0, len(f.Lines))
	for l := range f.Lines {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].Less(lines[j]) })
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		fmt.Fprintf(bw, "%s:%d", l.File, l.Line)
		for _, e := range f.Lines[l] {
			fmt.Fprintf(bw, " %s.%d/%s", e.Struct, e.Field, e.Acc)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ParseText reads the WriteText format. The block-keyed index is
// reconstructed via the program's line table.
func ParseText(r io.Reader, p *ir.Program) (*File, error) {
	lines := make(map[ir.SourceLine][]Entry)
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Fields(text)
		loc, err := parseLoc(parts[0])
		if err != nil {
			return nil, fmt.Errorf("fieldmap: line %d: %w", lineno, err)
		}
		var entries []Entry
		for seq, tok := range parts[1:] {
			e, err := parseEntry(tok)
			if err != nil {
				return nil, fmt.Errorf("fieldmap: line %d: %w", lineno, err)
			}
			e.Seq = seq
			entries = append(entries, e)
		}
		if len(entries) == 0 {
			return nil, fmt.Errorf("fieldmap: line %d: no entries", lineno)
		}
		lines[loc] = entries
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromLines(lines, p), nil
}

func parseLoc(tok string) (ir.SourceLine, error) {
	i := strings.LastIndexByte(tok, ':')
	if i < 0 {
		return ir.SourceLine{}, fmt.Errorf("malformed location %q", tok)
	}
	n, err := strconv.Atoi(tok[i+1:])
	if err != nil {
		return ir.SourceLine{}, fmt.Errorf("malformed line number in %q", tok)
	}
	return ir.SourceLine{File: tok[:i], Line: n}, nil
}

func parseEntry(tok string) (Entry, error) {
	slash := strings.LastIndexByte(tok, '/')
	if slash < 0 {
		return Entry{}, fmt.Errorf("malformed entry %q", tok)
	}
	acc := tok[slash+1:]
	var kind ir.AccessKind
	switch acc {
	case "R":
		kind = ir.Read
	case "W":
		kind = ir.Write
	default:
		return Entry{}, fmt.Errorf("malformed access kind %q", acc)
	}
	dot := strings.LastIndexByte(tok[:slash], '.')
	if dot < 0 {
		return Entry{}, fmt.Errorf("malformed entry %q", tok)
	}
	fi, err := strconv.Atoi(tok[dot+1 : slash])
	if err != nil {
		return Entry{}, fmt.Errorf("malformed field index in %q", tok)
	}
	return Entry{Struct: tok[:dot], Field: fi, Acc: kind}, nil
}

package fieldmap

import (
	"strings"
	"testing"
)

// FuzzParseText checks the FMF parser never panics and that accepted input
// re-serializes stably for lines that map to known blocks.
func FuzzParseText(f *testing.F) {
	f.Add("f.c:1 S.0/R S.1/W\n")
	f.Add("# comment\n\nx.c:2 T.3/R\n")
	f.Add("bad")
	f.Add("a:b:c d.e/Q")
	f.Fuzz(func(t *testing.T, src string) {
		p, _ := buildProgram(t)
		_, _ = ParseText(strings.NewReader(src), p)
	})
}

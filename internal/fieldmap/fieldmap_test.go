package fieldmap

import (
	"bytes"
	"strings"
	"testing"

	"structlayout/internal/ir"
)

func buildProgram(t testing.TB) (*ir.Program, *ir.StructType) {
	t.Helper()
	p := ir.NewProgram("fm")
	s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"), ir.I64("lk"))
	p.AddStruct(s)
	b := p.NewProc("f")
	b.Read(s, "a", ir.Shared(0))
	b.Write(s, "b", ir.Shared(0))
	b.Loop(4, func(b *ir.Builder) {
		b.Lock(s, "lk", ir.Shared(0))
		b.Read(s, "a", ir.Shared(0))
		b.Unlock(s, "lk", ir.Shared(0))
	})
	b.Compute(5)
	b.Done()
	return p.MustFinalize(), s
}

func TestBuildIndexesBlocks(t *testing.T) {
	p, _ := buildProgram(t)
	f := Build(p)
	// Two blocks carry field accesses: the pre-loop straight-line block and
	// the loop body block (Compute-only block has none... it shares the
	// body? No: Compute(5) is after the loop -> separate block, no fields).
	withFields := 0
	for _, b := range p.Blocks() {
		entries := f.AtBlock(b.Global)
		if len(entries) > 0 {
			withFields++
			if len(f.At(b.Line)) != len(entries) {
				t.Fatalf("line/block views disagree for %s", b.Line)
			}
		}
	}
	if withFields != 2 {
		t.Fatalf("blocks with fields = %d, want 2", withFields)
	}
}

func TestLockCountsAsWrite(t *testing.T) {
	p, _ := buildProgram(t)
	f := Build(p)
	found := false
	for _, entries := range f.Lines {
		for _, e := range entries {
			if e.Field == 2 { // lk
				found = true
				if e.Acc != ir.Write {
					t.Fatal("lock access not recorded as write")
				}
			}
		}
	}
	if !found {
		t.Fatal("lock field not in FMF")
	}
}

func TestBlocksTouching(t *testing.T) {
	p, _ := buildProgram(t)
	f := Build(p)
	m := f.BlocksTouching("S")
	if len(m) != 2 {
		t.Fatalf("BlocksTouching = %d blocks, want 2", len(m))
	}
	m2 := f.BlocksTouching("Nope")
	if len(m2) != 0 {
		t.Fatal("unknown struct matched blocks")
	}
	// The loop-body block both reads a and writes lk.
	hasWriteBlock := 0
	for _, entries := range m {
		if TouchesWithWrite(entries) {
			hasWriteBlock++
		}
	}
	if hasWriteBlock != 2 { // pre-loop block writes b; body block locks lk
		t.Fatalf("blocks with writes = %d, want 2", hasWriteBlock)
	}
}

func TestTextRoundTrip(t *testing.T) {
	p, _ := buildProgram(t)
	f := Build(p)
	var buf bytes.Buffer
	if err := f.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Lines) != len(f.Lines) {
		t.Fatalf("lines: %d vs %d", len(got.Lines), len(f.Lines))
	}
	for line, entries := range f.Lines {
		ge := got.Lines[line]
		if len(ge) != len(entries) {
			t.Fatalf("line %s entry count differs", line)
		}
		for i := range entries {
			if ge[i] != entries[i] {
				t.Fatalf("line %s entry %d: %+v vs %+v", line, i, ge[i], entries[i])
			}
		}
	}
	// Block index reconstructed.
	for id, entries := range f.blocks {
		if len(got.AtBlock(id)) != len(entries) {
			t.Fatalf("block %d index not reconstructed", id)
		}
	}
}

func TestParseErrors(t *testing.T) {
	p, _ := buildProgram(t)
	cases := []string{
		"nofield",
		"f.c:1 S.x/R",        // non-numeric field index
		"f.c:1 S.1/Q",        // bad access kind
		"f.c:1 bad",          // malformed entry
		"f.c:notaline S.1/R", // bad line number
		"f.c:1",              // no entries
	}
	for _, c := range cases {
		if _, err := ParseText(strings.NewReader(c), p); err == nil {
			t.Fatalf("ParseText(%q) accepted", c)
		}
	}
	// Comments and blanks are fine.
	if _, err := ParseText(strings.NewReader("# comment\n\n"), p); err != nil {
		t.Fatal(err)
	}
}

package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"structlayout/internal/memo"
	"structlayout/internal/parallel"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenReduced renders the reduced-config figures exactly as the
// determinism golden records them.
func goldenReduced(t *testing.T) string {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Runs = 2
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	f8, err := p.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(f8.String())
	f9, err := p.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(f9.String())
	f10, err := p.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(f10.String())
	rcfg := cfg
	rcfg.Runs = 1
	r, err := Robustness(rcfg, nil, []float64{0, 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString(r.String())
	return sb.String()
}

func TestGoldenReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("full reduced pipeline in -short mode")
	}
	got := goldenReduced(t)
	path := filepath.Join("testdata", "golden_reduced.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("reduced pipeline output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDeterministicAcrossWorkerCounts is the parallel harness's core
// contract: the same pipeline at -j 1, -j 4 and -j GOMAXPROCS renders
// byte-identical figures. Golden comparison pins the serial content; the
// other worker counts must match it exactly. Run under -race this also
// exercises the pool for data races across the whole pipeline.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full reduced pipeline in -short mode")
	}
	old := parallel.Limit()
	defer parallel.SetLimit(old)

	limits := []int{1, 4, runtime.GOMAXPROCS(0)}
	outs := make([]string, len(limits))
	for i, lim := range limits {
		// Drop the measurement cache so every worker count simulates from
		// scratch: with it warm, runs after the first would trivially replay
		// cached cells instead of exercising the pool.
		memo.Shared().Clear()
		parallel.SetLimit(lim)
		outs[i] = goldenReduced(t)
	}
	for i := 1; i < len(limits); i++ {
		if outs[i] != outs[0] {
			t.Fatalf("-j %d output differs from -j %d:\n--- j=%d ---\n%s\n--- j=%d ---\n%s",
				limits[i], limits[0], limits[i], outs[i], limits[0], outs[0])
		}
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_reduced.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != string(want) {
		t.Fatal("parallel-run output differs from committed golden")
	}
}

// fig810 renders Figures 8 and 10 from a fresh reduced pipeline — the two
// tables the memoization fast path must reproduce bit-for-bit.
func fig810(t *testing.T) string {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Runs = 2
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := p.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	f10, err := p.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	return f8.String() + f10.String()
}

// TestDeterministicColdWarmCache is the memoization contract: the figure
// tables are byte-identical whether every measurement is simulated fresh,
// computed into a cold disk cache, or replayed from a warm one — at any
// worker count. Cached values round-trip through JSON, so any encoding
// loss or key collision would show up here as a table diff.
func TestDeterministicColdWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced pipeline ×4 in -short mode")
	}
	oldLimit := parallel.Limit()
	defer func() {
		parallel.SetLimit(oldLimit)
		if err := memo.Shared().SetDir(""); err != nil {
			t.Error(err)
		}
		memo.Shared().Clear()
	}()
	dir := t.TempDir()

	type variant struct {
		name string
		jobs int
		dir  string
	}
	variants := []variant{
		{"uncached -j 1", 1, ""},
		{"cold-disk -j 8", 8, dir},
		{"warm-disk -j 1", 1, dir},
		{"warm-disk -j 8", 8, dir},
	}
	outs := make([]string, len(variants))
	for i, v := range variants {
		memo.Shared().Clear() // every variant starts with a cold memory tier
		if err := memo.Shared().SetDir(v.dir); err != nil {
			t.Fatal(err)
		}
		parallel.SetLimit(v.jobs)
		outs[i] = fig810(t)
		st := memo.Shared().Stats()
		switch {
		case v.dir == "" || i == 1:
			if st.Misses == 0 {
				t.Fatalf("%s: expected fresh computation, stats %+v", v.name, st)
			}
		default:
			if st.Misses != 0 || st.DiskHits == 0 {
				t.Fatalf("%s: expected pure disk replay, stats %+v", v.name, st)
			}
		}
	}
	for i := 1; i < len(variants); i++ {
		if outs[i] != outs[0] {
			t.Fatalf("%s output differs from %s:\n--- %s ---\n%s\n--- %s ---\n%s",
				variants[i].name, variants[0].name, variants[i].name, outs[i], variants[0].name, outs[0])
		}
	}
}

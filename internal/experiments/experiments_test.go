package experiments

import (
	"strings"
	"testing"

	"structlayout/internal/quality"
)

// reducedConfig keeps test wall-clock sane while preserving the shapes.
func reducedConfig() Config {
	cfg := DefaultConfig()
	cfg.Runs = 2
	return cfg
}

var pipelineCache *Pipeline

func getPipeline(t *testing.T) *Pipeline {
	t.Helper()
	if pipelineCache == nil {
		p, err := NewPipeline(reducedConfig())
		if err != nil {
			t.Fatal(err)
		}
		pipelineCache = p
	}
	return pipelineCache
}

func TestPipelineProducesLayouts(t *testing.T) {
	p := getPipeline(t)
	for _, label := range []string{"A", "B", "C", "D", "E"} {
		if p.Auto[label] == nil || p.Best[label] == nil || p.Hotness[label] == nil {
			t.Fatalf("missing layout for %s", label)
		}
		if err := p.Auto[label].Validate(); err != nil {
			t.Fatalf("auto %s: %v", label, err)
		}
		if err := p.Best[label].Validate(); err != nil {
			t.Fatalf("best %s: %v", label, err)
		}
		if err := p.Hotness[label].Validate(); err != nil {
			t.Fatalf("hotness %s: %v", label, err)
		}
		if p.Reports[label] == "" {
			t.Fatalf("missing report for %s", label)
		}
	}
}

func TestToolSeparatesStructAStats(t *testing.T) {
	p := getPipeline(t)
	st := p.Suite.Struct("A").Type
	lay := p.Auto["A"]
	// The per-class statistics counters must not share lines with each
	// other or with the hot read fields: this is the core soundness claim
	// of the CycleLoss pipeline.
	for i := 0; i < 8; i++ {
		si := st.FieldIndex("pt_stat" + string(rune('0'+i)))
		for j := i + 1; j < 8; j++ {
			sj := st.FieldIndex("pt_stat" + string(rune('0'+j)))
			if lay.SameLine(si, sj) {
				t.Fatalf("auto A: stat%d and stat%d share a line", i, j)
			}
		}
		if lay.SameLine(si, st.FieldIndex("pt_state")) {
			t.Fatalf("auto A: stat%d shares the hot line", i)
		}
	}
	// pt_seq must be separated from the hot reads (the fix).
	if lay.SameLine(st.FieldIndex("pt_seq"), st.FieldIndex("pt_state")) {
		t.Fatal("auto A: pt_seq still shares the hot line")
	}
	// The deliberate greedy bait: pt_load ends up with the hot reads.
	if !lay.SameLine(st.FieldIndex("pt_load"), st.FieldIndex("pt_state")) {
		t.Fatal("auto A: pt_load was not pulled into the hot cluster (the planted greedy suboptimality)")
	}
	// Incremental mode keeps the baseline's isolation of pt_load AND fixes
	// pt_seq.
	best := p.Best["A"]
	if best.SameLine(st.FieldIndex("pt_load"), st.FieldIndex("pt_state")) {
		t.Fatal("best A: pt_load must stay isolated")
	}
	if best.SameLine(st.FieldIndex("pt_seq"), st.FieldIndex("pt_state")) {
		t.Fatal("best A: pt_seq not fixed")
	}
}

func TestToolFixesStructBRefcnt(t *testing.T) {
	p := getPipeline(t)
	st := p.Suite.Struct("B").Type
	for name, lay := range map[string]interface {
		SameLine(a, b int) bool
	}{"auto": p.Auto["B"], "best": p.Best["B"]} {
		if lay.SameLine(st.FieldIndex("vn_refcnt"), st.FieldIndex("vn_type")) {
			t.Fatalf("%s B: vn_refcnt still shares the hot line", name)
		}
		if !lay.SameLine(st.FieldIndex("vn_hash"), st.FieldIndex("vn_next")) {
			t.Fatalf("%s B: hash-chain pair split", name)
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	p := getPipeline(t)
	fig, err := p.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + fig.String())
	rows := rowMap(fig)
	// Sort-by-hotness collapses on A: "more than 2X" degradation.
	if got := rows["A"].Pct["hotness"]; got > -40 {
		t.Fatalf("hotness(A) = %+.2f%%; expected a collapse (paper: >2x)", got)
	}
	// The automatic layout is a small slowdown on A (paper: -5.29%).
	if got := rows["A"].Pct["auto"]; got > -0.5 || got < -15 {
		t.Fatalf("auto(A) = %+.2f%%; expected a small slowdown around -5%%", got)
	}
	// B..E: small speedups; hotness never collapses there.
	for _, label := range []string{"B", "C", "D", "E"} {
		if got := rows[label].Pct["auto"]; got < -0.5 || got > 10 {
			t.Fatalf("auto(%s) = %+.2f%%; expected a small speedup", label, got)
		}
		if got := rows[label].Pct["hotness"]; got < -5 {
			t.Fatalf("hotness(%s) = %+.2f%%; only A has heavy false sharing", label, got)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	p := getPipeline(t)
	fig, err := p.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + fig.String())
	// "The new layouts show marginal speedup over baseline in all five
	// cases" on the 4-way machine.
	for _, row := range fig.Rows {
		got := row.Pct["auto"]
		if got < -0.5 || got > 10 {
			t.Fatalf("auto(%s) on Bus4 = %+.2f%%; expected marginal speedup", row.Label, got)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	p := getPipeline(t)
	fig, err := p.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + fig.String())
	rows := rowMap(fig)
	// A: the incremental layout wins and is a real speedup (paper: +2.65%
	// vs the automatic layout's -5.29%).
	if rows["A"].Pct["best"] <= 0 {
		t.Fatalf("best(A) = %+.2f%%; expected positive", rows["A"].Pct["best"])
	}
	if rows["A"].Pct["best"] <= rows["A"].Pct["auto"] {
		t.Fatal("incremental must beat automatic for A")
	}
	// B: incremental slightly better than automatic (the paper's +3.2%).
	if rows["B"].Pct["best"] <= rows["B"].Pct["auto"] {
		t.Fatalf("best(B)=%.2f should beat auto(B)=%.2f", rows["B"].Pct["best"], rows["B"].Pct["auto"])
	}
	// C, D: the automatic layout is already the best (within tolerance).
	for _, label := range []string{"C", "D"} {
		if rows[label].Pct["best"] > rows[label].Pct["auto"]+0.75 {
			t.Fatalf("best(%s)=%.2f unexpectedly far above auto=%.2f",
				label, rows[label].Pct["best"], rows[label].Pct["auto"])
		}
	}
	if !strings.Contains(fig.String(), "[incremental ") && !strings.Contains(fig.String(), "[auto ") {
		t.Fatal("figure should mark winners")
	}
}

func TestConcurrencyStability(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	p := getPipeline(t)
	res, err := p.ConcurrencyStability(20)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	// §4.3: high-CC source-line pairs remain "more or less the same"
	// between the 4-way and 16-way collection machines. The top-20
	// overlap is discretized in 5% steps (one pair), so the floor sits a
	// step below half to absorb single-pair flips when scheduler
	// tie-breaking changes; rank correlation guards the overall shape.
	if res.TopOverlap < 0.45 {
		t.Fatalf("top-pair overlap %.2f; expected stability across machines", res.TopOverlap)
	}
	if res.RankCorrelation < 0.3 {
		t.Fatalf("rank correlation %.2f too weak", res.RankCorrelation)
	}
}

func rowMap(f *Figure) map[string]Row {
	out := make(map[string]Row, len(f.Rows))
	for _, r := range f.Rows {
		out[r.Label] = r
	}
	return out
}

func TestRobustnessSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	cfg := reducedConfig()
	cfg.Runs = 1
	res, err := Robustness(cfg, nil, []float64{0, 0.5, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	// Severity 0 must reproduce the clean pipeline exactly: identical
	// layouts (distance 0), no degradation, and the same measured speedup.
	clean := res.Rows[0]
	if clean.Err != "" {
		t.Fatalf("clean row errored: %s", clean.Err)
	}
	if clean.LayoutDistance != 0 {
		t.Fatalf("severity 0 moved %.0f%% of fields; injection must be the identity", clean.LayoutDistance*100)
	}
	if clean.Degraded {
		t.Fatal("severity 0 flagged degraded")
	}
	if clean.SpeedupPct != res.CleanSpeedupPct {
		t.Fatalf("severity 0 speedup %.4f != clean %.4f", clean.SpeedupPct, res.CleanSpeedupPct)
	}
	if clean.Verdict != quality.OK.String() {
		t.Fatalf("severity 0 quality verdict %s (score %.3f), want OK", clean.Verdict, clean.Quality)
	}
	// Full severity composes every injector: the trace must shrink (loss +
	// truncation beat duplication) and the empty FMF must flag degradation.
	worst := res.Rows[2]
	if worst.Err != "" {
		t.Fatalf("graceful mode errored at full severity: %s", worst.Err)
	}
	if worst.Samples >= clean.Samples {
		t.Fatalf("full-severity trace has %d samples, clean %d; loss+truncation should shrink it", worst.Samples, clean.Samples)
	}
	if !worst.Degraded {
		t.Fatal("full-severity input not flagged degraded")
	}
	if worst.Diags == 0 {
		t.Fatal("full-severity input produced no diagnostics")
	}
	if worst.Verdict == quality.OK.String() {
		t.Fatalf("full-severity input scored %s (%.3f); the quality gate must not pass it", worst.Verdict, worst.Quality)
	}
	if worst.Quality >= clean.Quality {
		t.Fatalf("full-severity quality %.3f did not drop below clean %.3f", worst.Quality, clean.Quality)
	}
}

// TestQualityCalibrationThresholds pins the calibration contract from the
// issue: over the analyze-only sweep, clean collections grade OK while
// low-severity corruption (0.10–0.25) is already flagged SUSPECT. This is
// the test that keeps SuspectBelow honest if the score composition changes.
func TestQualityCalibrationThresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	cfg := reducedConfig()
	points, err := QualityCalibration(cfg, nil, []float64{0, 0.1, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + QualityReport(points))
	want := map[float64]string{0: "OK", 0.1: "SUSPECT", 0.25: "SUSPECT"}
	for _, pt := range points {
		if pt.Err != "" {
			t.Fatalf("severity %.2f rejected: %s", pt.Severity, pt.Err)
		}
		if pt.Verdict != want[pt.Severity] {
			t.Fatalf("severity %.2f graded %s (%s), want %s", pt.Severity, pt.Verdict, pt.Assessment, want[pt.Severity])
		}
	}
}

func TestPredictionAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	p := getPipeline(t)
	rows, err := p.PredictionAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + PredictionReport(rows))
	byLabel := map[string]PredictionRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// Struct A carries the heavy false sharing; the ranking must correlate.
	// (Its single top prediction is pt_lock — the §3.2 instance-blind
	// over-approximation crediting a per-thread lock, which the alias
	// oracle cannot clear because the lock's block also reads shared
	// state. The paper documents exactly this weakness, so the top-hit
	// check is not asserted for A.)
	if a := byLabel["A"]; a.Rank < 0.3 {
		t.Fatalf("struct A: prediction rank correlation %.2f too weak", a.Rank)
	}
	// For the cleaner structs the predictor must nail the top offender.
	hits := 0
	for _, label := range []string{"B", "C", "D", "E"} {
		r := byLabel[label]
		if r.TopHit {
			hits++
		}
		if r.Rank < 0.3 {
			t.Fatalf("struct %s: prediction rank correlation %.2f too weak", label, r.Rank)
		}
	}
	if hits < 3 {
		t.Fatalf("top predicted hazard hit the measured top-3 for only %d of B..E", hits)
	}
}

package experiments

import (
	"testing"

	"structlayout/internal/exec"
	"structlayout/internal/memo"
)

// TestCrossFigureMemoSharing pins the figure suite's cache economics,
// the conclusion of auditing Figure 8's 11 cold misses against Figure 10's
// 6 hits: every Figure 8 cell (baseline + {auto,hotness}×5 structs on
// Superdome128) is a genuinely distinct measurement — there is no
// canonicalization gap to close — while Figure 10 shares its baseline and
// five auto cells with Figure 8 byte-for-byte, so identical effective
// configurations across figures must resolve to identical cache entries.
// It also pins the mode separation: a sampled pass may never be served an
// exact figure's entries (or vice versa), because SimConfig is part of the
// measurement key.
func TestCrossFigureMemoSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation run")
	}
	p := getPipeline(t)
	memo.Shared().Clear()
	last := memo.Shared().Stats()
	delta := func() memo.Stats {
		now := memo.Shared().Stats()
		d := now.Sub(last)
		last = now
		return d
	}

	if _, err := p.Fig8(); err != nil {
		t.Fatal(err)
	}
	if d := delta(); d.Misses != 11 || d.Hits() != 0 {
		t.Fatalf("cold Fig8: %d misses / %d hits, want 11 / 0 (baseline + 2 variants × 5 structs, all distinct)", d.Misses, d.Hits())
	}

	// Fig10 reuses Fig8's Superdome128 baseline and auto cells; only the
	// five best-layout cells are new.
	if _, err := p.Fig10(); err != nil {
		t.Fatal(err)
	}
	if d := delta(); d.Misses != 5 || d.Hits() != 6 {
		t.Fatalf("Fig10 after Fig8: %d misses / %d hits, want 5 / 6 (baseline + auto×5 shared)", d.Misses, d.Hits())
	}

	// Fig9 runs on Bus4: a different topology is a different measurement,
	// so nothing can be shared.
	if _, err := p.Fig9(); err != nil {
		t.Fatal(err)
	}
	if d := delta(); d.Misses != 6 || d.Hits() != 0 {
		t.Fatalf("Fig9: %d misses / %d hits, want 6 / 0 (Bus4 shares nothing with Superdome128)", d.Misses, d.Hits())
	}

	// A repeated figure replays entirely from cache.
	if _, err := p.Fig8(); err != nil {
		t.Fatal(err)
	}
	if d := delta(); d.Misses != 0 || d.Hits() != 11 {
		t.Fatalf("warm Fig8: %d misses / %d hits, want 0 / 11", d.Misses, d.Hits())
	}

	// A sampled pass over the same figure shares nothing with the exact
	// entries: approximate results never silently stand in for exact ones.
	p.Suite.Sim = exec.SimConfig{Mode: exec.SimSampled}
	defer func() { p.Suite.Sim = exec.SimConfig{} }()
	if _, err := p.Fig8(); err != nil {
		t.Fatal(err)
	}
	if d := delta(); d.Misses != 11 || d.Hits() != 0 {
		t.Fatalf("sampled Fig8 over warm exact cache: %d misses / %d hits, want 11 / 0", d.Misses, d.Hits())
	}
}

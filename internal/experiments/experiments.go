// Package experiments regenerates the paper's evaluation (§5): Figures 8,
// 9 and 10, plus the §4.3 observation that high-concurrency line pairs are
// stable across collection machines. Each driver returns structured rows so
// both the command-line harness and the benchmark suite can print or assert
// on them.
//
// The pipeline is the paper's: collect a PBO profile and PMU samples by
// running the SDET-like workload under the baseline layouts on a 16-way
// collection machine; build each struct's FLG; produce the automatic, the
// sort-by-hotness, and the incremental ("best") layouts; then measure each
// layout change individually on the target machine against the hand-tuned
// baseline, averaging outlier-trimmed throughput over repeated runs.
package experiments

import (
	"fmt"
	"sort"

	"structlayout/internal/core"
	"structlayout/internal/exec"
	"structlayout/internal/flg"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/parallel"
	"structlayout/internal/profile"
	"structlayout/internal/workload"
)

// Config parameterizes the reproduction.
type Config struct {
	// Params are the workload knobs.
	Params workload.Params
	// CollectTopo is the machine used for profile+concurrency collection;
	// the paper uses its 16-way machine.
	CollectTopo *machine.Topology
	// CollectScripts lengthens collection runs (more samples).
	CollectScripts int64
	// Runs is the measured-run count per configuration (the paper uses 10).
	Runs int
	// BaseSeed seeds the whole reproduction.
	BaseSeed int64
	// Sim selects exact or interval-sampled simulation for measurement
	// runs. Collection is always exact regardless (the PMU trace must
	// observe every access). Sampled figures carry extrapolated counts and
	// memoize under distinct keys from exact ones.
	Sim exec.SimConfig
	// Shards is the coherence-directory shard count for every run
	// (0 or 1 = unsharded). Results are byte-identical at any count.
	Shards int
	// Tool configures the layout tool.
	Tool core.Options
}

// DefaultConfig returns the calibrated configuration. Runs defaults to 10
// per the paper's protocol; benchmarks drop it to 3 for wall-clock sanity.
func DefaultConfig() Config {
	p := workload.DefaultParams()
	return Config{
		Params:         p,
		CollectTopo:    machine.Way16(),
		CollectScripts: 12,
		Runs:           10,
		BaseSeed:       20070311, // CGO'07 opened March 11 2007
		Tool: core.Options{
			LineSize:    int(p.Cache.LineSize),
			SliceCycles: workload.CollectSliceCycles,
			// k1/k2 balance profiled CycleGain against sampled CycleLoss.
			// Profile counts run ~2-3 orders of magnitude above sample
			// counts; k1=4 keeps moderate real affinities (e.g. a lock
			// with the fields it guards) from being shattered by tiny
			// sampled concurrency, while leaving gain-free pairs (the
			// per-class statistics counters) fully separated.
			FLG: flg.Options{K1: 4, K2: 1},
		},
	}
}

// Pipeline holds everything derived from one collection phase.
type Pipeline struct {
	Cfg       Config
	Suite     *workload.Suite
	Analysis  *core.Analysis
	Baselines workload.Layouts
	// Auto, Hotness and Best map struct labels to the three evaluated
	// layouts.
	Auto    workload.Layouts
	Hotness workload.Layouts
	Best    workload.Layouts
	// Reports keeps each struct's advisory report text.
	Reports map[string]string
}

// NewPipeline runs collection and the layout tool for all five structs.
func NewPipeline(cfg Config) (*Pipeline, error) {
	suite, err := workload.NewSuite(cfg.Params)
	if err != nil {
		return nil, err
	}
	suite.Sim = cfg.Sim
	suite.Shards = cfg.Shards
	lineSize := int(cfg.Params.Cache.LineSize)
	baselines := suite.BaselineLayouts(lineSize)

	// Collection phase: longer run under baseline layouts.
	collectParams := cfg.Params
	if cfg.CollectScripts > 0 {
		collectParams.ScriptsPerThread = cfg.CollectScripts
	}
	collectSuite, err := workload.NewSuite(collectParams)
	if err != nil {
		return nil, err
	}
	// Collection runs sharded too (byte-identical), but never sampled:
	// the suite zeroes Sim whenever a collector is attached.
	collectSuite.Shards = cfg.Shards
	pf, trace, err := collectSuite.Collect(cfg.CollectTopo, collectSuite.BaselineLayouts(lineSize), cfg.BaseSeed)
	if err != nil {
		return nil, fmt.Errorf("experiments: collection: %w", err)
	}

	toolOpts := cfg.Tool
	toolOpts.LineSize = lineSize
	if toolOpts.FLG.AliasOracle == nil {
		toolOpts.FLG.AliasOracle = workload.PrivateAliasOracle(collectSuite.Prog)
	}
	analysis, err := core.NewAnalysis(collectSuite.Prog, pf, trace, toolOpts)
	if err != nil {
		return nil, err
	}

	p := &Pipeline{
		Cfg:       cfg,
		Suite:     suite,
		Analysis:  analysis,
		Baselines: baselines,
		Auto:      make(workload.Layouts),
		Hotness:   make(workload.Layouts),
		Best:      make(workload.Layouts),
		Reports:   make(map[string]string),
	}
	hotCounts := profile.ProgramFieldCounts(collectSuite.Prog, pf)
	for _, label := range workload.Labels() {
		ks := suite.Struct(label)
		sugg, err := analysis.Suggest(ks.Type.Name, baselines[label])
		if err != nil {
			return nil, fmt.Errorf("experiments: suggest %s: %w", label, err)
		}
		p.Auto[label] = sugg.Auto
		p.Reports[label] = sugg.Report.String()

		hot := make(map[int]float64, len(ks.Type.Fields))
		for fi := range ks.Type.Fields {
			hot[fi] = hotCounts[profile.FieldKey{Struct: ks.Type.Name, Field: fi}].Total()
		}
		hotLay, err := layout.SortByHotness(ks.Type, hot, lineSize)
		if err != nil {
			return nil, fmt.Errorf("experiments: hotness layout %s: %w", label, err)
		}
		p.Hotness[label] = hotLay

		best, _, err := analysis.Best(ks.Type.Name, baselines[label])
		if err != nil {
			return nil, fmt.Errorf("experiments: best %s: %w", label, err)
		}
		p.Best[label] = best
	}
	return p, nil
}

// Row is one struct's outcome on one machine.
type Row struct {
	Label string
	// Baseline is the baseline throughput (scripts/hour).
	Baseline float64
	// Pct maps layout name ("auto", "hotness", "best") to speedup percent
	// over baseline.
	Pct map[string]float64
}

// Figure is one regenerated figure.
type Figure struct {
	Name    string
	Machine string
	Rows    []Row
}

// measureVariants evaluates, per struct, each named layout individually
// against the shared baseline measurement.
//
// The baseline and every label×variant cell are independent measurements
// (each re-derives its seeds from the shared base seed), so they fan out
// over the worker pool; cells are enumerated in sorted order and results
// assembled by index, keeping the rows byte-identical at any -j.
func (p *Pipeline) measureVariants(topo *machine.Topology, variants map[string]workload.Layouts) ([]Row, error) {
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}
	sort.Strings(names)
	type cell struct{ label, name string }
	var cells []cell
	for _, label := range workload.Labels() {
		for _, name := range names {
			cells = append(cells, cell{label, name})
		}
	}
	// Item 0 is the shared baseline; items 1.. are the cells.
	ms, err := parallel.Map(len(cells)+1, func(i int) (workload.Measurement, error) {
		if i == 0 {
			return p.Suite.Measure(topo, p.Baselines, p.Cfg.Runs, p.Cfg.BaseSeed)
		}
		c := cells[i-1]
		m, err := p.Suite.Measure(topo, p.Baselines.WithLayout(c.label, variants[c.name][c.label]), p.Cfg.Runs, p.Cfg.BaseSeed)
		if err != nil {
			return m, fmt.Errorf("experiments: %s/%s on %s: %w", c.label, c.name, topo.Name, err)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	base := ms[0]
	var rows []Row
	for _, label := range workload.Labels() {
		rows = append(rows, Row{Label: label, Baseline: base.Mean, Pct: make(map[string]float64)})
	}
	for i, c := range cells {
		rows[i/len(names)].Pct[c.name] = ms[i+1].SpeedupOver(base)
	}
	return rows, nil
}

// Fig8 regenerates Figure 8: automatic layout and sort-by-hotness versus
// baseline on the 128-way machine.
func (p *Pipeline) Fig8() (*Figure, error) {
	rows, err := p.measureVariants(machine.Superdome128(), map[string]workload.Layouts{
		"auto":    p.Auto,
		"hotness": p.Hotness,
	})
	if err != nil {
		return nil, err
	}
	return &Figure{Name: "Figure 8", Machine: "Superdome128", Rows: rows}, nil
}

// Fig9 regenerates Figure 9: the same automatic layouts on the 4-way bus
// machine.
func (p *Pipeline) Fig9() (*Figure, error) {
	rows, err := p.measureVariants(machine.Bus4(), map[string]workload.Layouts{
		"auto": p.Auto,
	})
	if err != nil {
		return nil, err
	}
	return &Figure{Name: "Figure 9", Machine: "Bus4", Rows: rows}, nil
}

// Fig10 regenerates Figure 10: each struct's best layout (automatic or
// incremental) on the 128-way machine. Both candidates are measured; the
// figure reports the better one, which the paper found to be the
// incremental layout for A and B and the automatic one for C and D.
func (p *Pipeline) Fig10() (*Figure, error) {
	rows, err := p.measureVariants(machine.Superdome128(), map[string]workload.Layouts{
		"auto": p.Auto,
		"best": p.Best,
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		auto, best := rows[i].Pct["auto"], rows[i].Pct["best"]
		winner := "auto"
		pct := auto
		if best > auto {
			winner, pct = "incremental", best
		}
		rows[i].Pct["winner:"+winner] = pct
	}
	return &Figure{Name: "Figure 10", Machine: "Superdome128", Rows: rows}, nil
}

// String renders a figure as the paper-style table.
func (f *Figure) String() string {
	s := fmt.Sprintf("%s (%s)\n", f.Name, f.Machine)
	for _, r := range f.Rows {
		s += fmt.Sprintf("  struct %s (baseline %.0f scripts/hour):", r.Label, r.Baseline)
		for _, name := range []string{"auto", "hotness", "best"} {
			if v, ok := r.Pct[name]; ok {
				s += fmt.Sprintf("  %s %+0.2f%%", name, v)
			}
		}
		for name, v := range r.Pct {
			if len(name) > 7 && name[:7] == "winner:" {
				s += fmt.Sprintf("  [%s %+0.2f%%]", name[7:], v)
			}
		}
		s += "\n"
	}
	return s
}

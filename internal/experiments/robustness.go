package experiments

import (
	"fmt"

	"structlayout/internal/core"
	"structlayout/internal/faults"
	"structlayout/internal/fieldmap"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/parallel"
	"structlayout/internal/profile"
	"structlayout/internal/quality"
	"structlayout/internal/sampling"
	"structlayout/internal/workload"
)

// RobustnessRow is one point of the fault-severity sweep: how the layout
// tool's output degrades when the composed fault spec is scaled to
// Severity and applied to the profile, the sample trace and the FMF.
type RobustnessRow struct {
	// Severity is the Scale factor applied to the base spec.
	Severity float64
	// Spec is the scaled spec in canonical form.
	Spec string
	// Samples is the trace size reaching the analysis after injection.
	Samples int
	// Degraded reports whether the analysis flagged itself degraded.
	Degraded bool
	// Diags counts aggregated diagnostic entries.
	Diags int
	// LayoutDistance is the mean (over structs) fraction of fields placed
	// on a different cache line than in the clean automatic layout. Zero
	// severity must reproduce the clean layouts exactly (distance 0).
	LayoutDistance float64
	// SpeedupPct is the throughput gain of the faulted automatic layouts
	// (all structs applied together) over the hand-tuned baseline.
	SpeedupPct float64
	// Quality is the composite measurement-quality score of the faulted
	// analysis, and Verdict its graded band (OK / SUSPECT / DEGRADED) —
	// the row that calibrates internal/quality's thresholds.
	Quality float64
	Verdict string
	// Err is set when the analysis refused the faulted input outright; the
	// quality columns are then meaningless.
	Err string
}

// RobustnessResult is the severity→quality-degradation table.
type RobustnessResult struct {
	Machine string
	// BaseSpec is the unscaled fault shape being swept.
	BaseSpec string
	// CleanSpeedupPct is the clean (severity 0) automatic layouts'
	// throughput gain over baseline — the yardstick the rows decay from.
	CleanSpeedupPct float64
	Rows            []RobustnessRow
}

// DefaultSeverities is the sweep used by the CLI and the tests.
var DefaultSeverities = []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9}

// Robustness collects one clean profile+trace, then replays the analysis
// under the base fault spec scaled to each severity, recording how far the
// automatic layouts drift from the clean ones and how much measured
// throughput they give up. The analysis runs in graceful (non-strict) mode:
// the point of the sweep is to watch degradation, not to die at the first
// diagnostic. Expect the quality columns to worsen monotonically with
// severity — in expectation, not pointwise, since the injectors are random.
//
// A nil base sweeps every fault kind at full strength; nil severities use
// DefaultSeverities; a nil topo measures on the 4-way bus machine.
func Robustness(cfg Config, base *faults.Spec, severities []float64, topo *machine.Topology) (*RobustnessResult, error) {
	if base == nil {
		base = faults.New(cfg.BaseSeed)
		for _, k := range faults.Kinds {
			base.Severity[k] = 1
		}
	}
	if len(severities) == 0 {
		severities = DefaultSeverities
	}
	if topo == nil {
		topo = machine.Bus4()
	}

	sw, err := newSweep(cfg)
	if err != nil {
		return nil, err
	}
	suite, baselines, trace := sw.suite, sw.baselines, sw.trace

	cleanAutos, _, err := sw.analyze(base.Scale(0))
	if err != nil {
		return nil, fmt.Errorf("experiments: robustness clean analysis: %w", err)
	}
	baseMeas, err := suite.Measure(topo, baselines, cfg.Runs, cfg.BaseSeed)
	if err != nil {
		return nil, err
	}
	cleanMeas, err := suite.Measure(topo, withAll(baselines, cleanAutos), cfg.Runs, cfg.BaseSeed)
	if err != nil {
		return nil, err
	}

	res := &RobustnessResult{
		Machine:         topo.Name,
		BaseSpec:        base.String(),
		CleanSpeedupPct: cleanMeas.SpeedupOver(baseMeas),
	}
	// Severity cells are independent: each scales the spec, re-runs the
	// analysis and re-measures from the shared base seed, so they fan out
	// over the worker pool and the table assembles by severity index.
	rows, err := parallel.Map(len(severities), func(i int) (RobustnessRow, error) {
		sev := severities[i]
		sp := base.Scale(sev)
		row := RobustnessRow{Severity: sev, Spec: sp.String(), Samples: len(sp.ApplyTrace(trace).Samples)}
		autos, a, err := sw.analyze(sp)
		if err != nil {
			row.Err = err.Error()
			return row, nil
		}
		row.Degraded = a.Degraded()
		row.Diags = a.Diag.Len()
		row.Quality = a.Quality.Score
		row.Verdict = a.QualityVerdict().String()
		row.LayoutDistance = layoutDistance(cleanAutos, autos)
		m, err := suite.Measure(topo, withAll(baselines, autos), cfg.Runs, cfg.BaseSeed)
		if err != nil {
			row.Err = err.Error()
			return row, nil
		}
		row.SpeedupPct = m.SpeedupOver(baseMeas)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// sweep holds one clean collection of the built-in workload plus everything
// needed to replay the analysis under scaled fault specs. Robustness (which
// also measures throughput) and QualityCalibration (analyze-only) share it.
type sweep struct {
	suite, collectSuite *workload.Suite
	baselines           workload.Layouts
	pf                  *profile.Profile
	trace               *sampling.Trace
	fullFMF             *fieldmap.File
	toolOpts            core.Options
}

func newSweep(cfg Config) (*sweep, error) {
	suite, err := workload.NewSuite(cfg.Params)
	if err != nil {
		return nil, err
	}
	lineSize := int(cfg.Params.Cache.LineSize)
	sw := &sweep{suite: suite, baselines: suite.BaselineLayouts(lineSize)}

	collectParams := cfg.Params
	if cfg.CollectScripts > 0 {
		collectParams.ScriptsPerThread = cfg.CollectScripts
	}
	sw.collectSuite, err = workload.NewSuite(collectParams)
	if err != nil {
		return nil, err
	}
	sw.pf, sw.trace, err = sw.collectSuite.Collect(cfg.CollectTopo, sw.collectSuite.BaselineLayouts(lineSize), cfg.BaseSeed)
	if err != nil {
		return nil, fmt.Errorf("experiments: robustness collection: %w", err)
	}
	sw.fullFMF = fieldmap.Build(sw.collectSuite.Prog)

	sw.toolOpts = cfg.Tool
	sw.toolOpts.LineSize = lineSize
	if sw.toolOpts.FLG.AliasOracle == nil {
		sw.toolOpts.FLG.AliasOracle = workload.PrivateAliasOracle(sw.collectSuite.Prog)
	}
	return sw, nil
}

// analyze replays the analysis pipeline over the shared collection with the
// given fault spec applied, and derives every struct's automatic layout.
func (sw *sweep) analyze(sp *faults.Spec) (workload.Layouts, *core.Analysis, error) {
	opts := sw.toolOpts
	opts.FMF = sp.ApplyFMF(sw.fullFMF, sw.collectSuite.Prog)
	a, err := core.NewAnalysis(sw.collectSuite.Prog, sp.ApplyProfile(sw.pf), sp.ApplyTrace(sw.trace), opts)
	if err != nil {
		return nil, nil, err
	}
	autos := make(workload.Layouts, len(workload.Labels()))
	for _, label := range workload.Labels() {
		ks := sw.suite.Struct(label)
		sugg, err := a.Suggest(ks.Type.Name, sw.baselines[label])
		if err != nil {
			return nil, nil, fmt.Errorf("suggest %s: %w", label, err)
		}
		autos[label] = sugg.Auto
	}
	return autos, a, nil
}

// QualityPoint is one severity's measurement-quality outcome.
type QualityPoint struct {
	Severity float64
	// Assessment is the faulted analysis's composite assessment.
	Assessment *quality.Assessment
	// Verdict is the graded band after diagnostic escalation.
	Verdict string
	// Err is set when the analysis refused the faulted input outright.
	Err string
}

// QualityCalibration is the analyze-only severity sweep behind the
// thresholds in internal/quality: it collects once, replays the analysis
// under the base spec scaled to each severity, and reports score and
// component breakdown per point — no throughput measurement, so it is cheap
// enough to iterate on while picking SuspectBelow/DegradedBelow. A nil base
// sweeps every fault kind at full strength, matching Robustness.
func QualityCalibration(cfg Config, base *faults.Spec, severities []float64) ([]QualityPoint, error) {
	if base == nil {
		base = faults.New(cfg.BaseSeed)
		for _, k := range faults.Kinds {
			base.Severity[k] = 1
		}
	}
	if len(severities) == 0 {
		severities = DefaultSeverities
	}
	sw, err := newSweep(cfg)
	if err != nil {
		return nil, err
	}
	return parallel.Map(len(severities), func(i int) (QualityPoint, error) {
		sev := severities[i]
		pt := QualityPoint{Severity: sev}
		_, a, err := sw.analyze(base.Scale(sev))
		if err != nil {
			pt.Err = err.Error()
			return pt, nil
		}
		pt.Assessment = a.Quality
		pt.Verdict = a.QualityVerdict().String()
		return pt, nil
	})
}

// QualityReport renders the calibration sweep.
func QualityReport(points []QualityPoint) string {
	s := "quality calibration sweep (composed faults over the built-in workload)\n"
	s += fmt.Sprintf("thresholds: SUSPECT below %.2f, DEGRADED below %.2f\n", quality.SuspectBelow, quality.DegradedBelow)
	for _, pt := range points {
		if pt.Err != "" {
			s += fmt.Sprintf("  severity %.2f  analysis rejected input: %s\n", pt.Severity, pt.Err)
			continue
		}
		s += fmt.Sprintf("  severity %.2f  %8s  %s\n", pt.Severity, pt.Verdict, pt.Assessment)
	}
	return s
}

// withAll overlays every struct's variant layout onto the baselines.
func withAll(base workload.Layouts, variants workload.Layouts) workload.Layouts {
	out := base
	for label, lay := range variants {
		out = out.WithLayout(label, lay)
	}
	return out
}

// layoutDistance averages, over structs and fields, whether a field sits on
// a different cache line than in the reference layout.
func layoutDistance(ref, got workload.Layouts) float64 {
	moved, total := 0, 0
	for label, r := range ref {
		g, ok := got[label]
		if !ok {
			continue
		}
		total += len(r.Offsets)
		moved += movedFields(r, g)
	}
	if total == 0 {
		return 0
	}
	return float64(moved) / float64(total)
}

func movedFields(ref, got *layout.Layout) int {
	n := 0
	for fi := range ref.Offsets {
		if fi >= len(got.Offsets) || ref.LineOf(fi) != got.LineOf(fi) {
			n++
		}
	}
	return n
}

// String renders the degradation table.
func (r *RobustnessResult) String() string {
	s := fmt.Sprintf("robustness sweep on %s (faults: %s)\n", r.Machine, r.BaseSpec)
	s += fmt.Sprintf("clean automatic layouts: %+.2f%% over baseline\n", r.CleanSpeedupPct)
	s += "  severity  samples  degraded  diags  quality   verdict  layout-dist  auto-speedup\n"
	for _, row := range r.Rows {
		if row.Err != "" {
			s += fmt.Sprintf("  %8.2f  %7d  analysis rejected input: %s\n", row.Severity, row.Samples, row.Err)
			continue
		}
		deg := "no"
		if row.Degraded {
			deg = "YES"
		}
		s += fmt.Sprintf("  %8.2f  %7d  %8s  %5d  %7.3f  %8s  %10.0f%%  %+11.2f%%\n",
			row.Severity, row.Samples, deg, row.Diags, row.Quality, row.Verdict,
			row.LayoutDistance*100, row.SpeedupPct)
	}
	return s
}

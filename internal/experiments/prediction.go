package experiments

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/machine"
	"structlayout/internal/stats"
	"structlayout/internal/workload"
)

// PredictionRow correlates, for one struct, the tool's *predicted*
// false-sharing hazard per field (the FLG's CycleLoss mass, computed from
// sampled CodeConcurrency on the 16-way collection machine) against the
// *measured* false-sharing events per field (the coherence simulator's
// ground truth under the baseline layout on the 128-way machine).
//
// This evaluates the paper's central bet: that a lightweight, sampling-based
// estimate — collected on a different, smaller machine — ranks the hazards
// the same way the real machine experiences them. The paper could not
// measure this directly ("there is no easy way to measure how many cycles
// are lost due to false sharing on a native execution", §3); the simulator
// can.
type PredictionRow struct {
	Label string
	// Rank is the Spearman correlation between predicted per-field loss
	// mass and measured per-field false-sharing events.
	Rank float64
	// TopHit reports whether the field with the largest predicted hazard
	// is among the top-3 measured offenders.
	TopHit bool
	// Fields is the number of fields with either signal.
	Fields int
}

// PredictionAccuracy runs the study for every struct. Ground truth comes
// from a run under the sort-by-hotness layouts: CycleLoss predicts the
// penalty of *co-locating* a pair, so the measuring layout must actually
// co-locate the hot fields — exactly what the naive heuristic does (under
// the hand-tuned baseline or the declaration order, the known hazards are
// already padded apart and express nothing).
func (p *Pipeline) PredictionAccuracy() ([]PredictionRow, error) {
	dense := p.Baselines
	for _, label := range workload.Labels() {
		dense = dense.WithLayout(label, p.Hotness[label])
	}
	res, err := p.Suite.RunOnce(machine.Superdome128(), dense, p.Cfg.BaseSeed+41, nil)
	if err != nil {
		return nil, err
	}
	var rows []PredictionRow
	for _, label := range workload.Labels() {
		st := p.Suite.Struct(label).Type
		g, err := p.Analysis.BuildFLG(st.Name)
		if err != nil {
			return nil, err
		}
		// A pair's predicted loss can only materialize when the measuring
		// layout actually co-locates the pair; restrict the per-field mass
		// accordingly (apples to apples with the measured counters).
		lay := p.Hotness[label]
		predicted := make(map[int]float64)
		for k, w := range g.Loss {
			if !lay.SameLine(k[0], k[1]) {
				continue
			}
			predicted[k[0]] += w
			predicted[k[1]] += w
		}
		// Measured hazard = victim events + caused events, so writers like
		// a hot lock or counter get credited for the misses they inflict.
		measured := make(map[int]float64)
		for ref, fs := range res.Fields {
			if ref.Struct == st.Name {
				measured[ref.Field] = float64(fs.FalseSharing + fs.CausedFalseSharing)
			}
		}
		// Correlate over the union of fields with any signal.
		union := make(map[int]bool)
		for fi := range predicted {
			union[fi] = true
		}
		for fi, v := range measured {
			if v > 0 {
				union[fi] = true
			}
		}
		if len(union) < 3 {
			rows = append(rows, PredictionRow{Label: label, Fields: len(union)})
			continue
		}
		var xs, ys []float64
		fields := make([]int, 0, len(union))
		for fi := range union {
			fields = append(fields, fi)
		}
		sort.Ints(fields)
		for _, fi := range fields {
			xs = append(xs, predicted[fi])
			ys = append(ys, measured[fi])
		}
		row := PredictionRow{Label: label, Fields: len(union)}
		if r, err := stats.SpearmanRank(xs, ys); err == nil {
			row.Rank = r
		}
		row.TopHit = topPredictedIsTopMeasured(predicted, measured)
		rows = append(rows, row)
	}
	return rows, nil
}

// topPredictedIsTopMeasured checks the headline use: does the field the
// tool would separate first actually belong to the worst measured
// offenders?
func topPredictedIsTopMeasured(predicted, measured map[int]float64) bool {
	bestP, bestPV := -1, 0.0
	for fi, v := range predicted {
		if v > bestPV {
			bestP, bestPV = fi, v
		}
	}
	if bestP < 0 {
		return false
	}
	type kv struct {
		fi int
		v  float64
	}
	var ms []kv
	for fi, v := range measured {
		ms = append(ms, kv{fi, v})
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].v != ms[j].v {
			return ms[i].v > ms[j].v
		}
		return ms[i].fi < ms[j].fi
	})
	for i := 0; i < len(ms) && i < 3; i++ {
		if ms[i].fi == bestP && ms[i].v > 0 {
			return true
		}
	}
	return false
}

// PredictionReport renders the study.
func PredictionReport(rows []PredictionRow) string {
	var sb strings.Builder
	sb.WriteString("CycleLoss prediction accuracy (sampled 16-way prediction vs measured 128-way ground truth)\n")
	fmt.Fprintf(&sb, "%-8s %12s %10s %8s\n", "struct", "rank-corr", "top-hit", "fields")
	for _, r := range rows {
		hit := "no"
		if r.TopHit {
			hit = "yes"
		}
		fmt.Fprintf(&sb, "%-8s %12.2f %10s %8d\n", r.Label, r.Rank, hit, r.Fields)
	}
	return sb.String()
}

package experiments

import (
	"fmt"

	"structlayout/internal/concurrency"
	"structlayout/internal/ir"
	"structlayout/internal/machine"
	"structlayout/internal/parallel"
	"structlayout/internal/stats"
	"structlayout/internal/workload"
)

// StabilityResult quantifies §4.3's observation: "source line pairs with
// high concurrency values remain more or less the same in both the 4 way
// and 16 way machines", even though the absolute CC values differ.
type StabilityResult struct {
	// TopOverlap is the fraction of the top-K line pairs by CC on the
	// 16-way machine that also rank in the top K on the 4-way machine.
	TopOverlap float64
	// RankCorrelation is the Spearman correlation of CC over the union of
	// both machines' top-K pairs.
	RankCorrelation float64
	// K is the pair budget used.
	K int
	// Pairs4 and Pairs16 are the total non-zero pairs on each machine.
	Pairs4, Pairs16 int
}

// ConcurrencyStability collects concurrency data on the 4-way and 16-way
// machines under baseline layouts and compares the high-CC line pairs.
func (p *Pipeline) ConcurrencyStability(k int) (*StabilityResult, error) {
	if k <= 0 {
		k = 20
	}
	collectParams := p.Cfg.Params
	if p.Cfg.CollectScripts > 0 {
		collectParams.ScriptsPerThread = p.Cfg.CollectScripts
	}
	suite, err := workload.NewSuite(collectParams)
	if err != nil {
		return nil, err
	}
	lineSize := int(collectParams.Cache.LineSize)
	base := suite.BaselineLayouts(lineSize)

	// The two collection machines are independent runs; collect them in
	// parallel, gathered by machine index.
	topos := []*machine.Topology{machine.Bus4(), machine.Way16()}
	type machScores struct {
		scores map[[2]ir.SourceLine]float64
		count  int
	}
	collected, err := parallel.Map(len(topos), func(i int) (machScores, error) {
		topo := topos[i]
		_, trace, err := suite.Collect(topo, base, p.Cfg.BaseSeed+int64(topo.NumCPUs()))
		if err != nil {
			return machScores{}, fmt.Errorf("experiments: stability collect on %s: %w", topo.Name, err)
		}
		cm, err := concurrency.Compute(trace, concurrency.Options{SliceCycles: p.Cfg.Tool.SliceCycles})
		if err != nil {
			return machScores{}, err
		}
		return machScores{scores: cm.LineScores(suite.Prog), count: len(cm.CC)}, nil
	})
	if err != nil {
		return nil, err
	}
	scores := []map[[2]ir.SourceLine]float64{collected[0].scores, collected[1].scores}
	counts := []int{collected[0].count, collected[1].count}

	// The machines run different CPU counts, so code bound to scheduler
	// classes absent on the small box never executes there. The paper's
	// comparison is over line pairs observed on both machines; restrict to
	// the intersection before ranking.
	inter4 := make(map[[2]ir.SourceLine]float64)
	inter16 := make(map[[2]ir.SourceLine]float64)
	for pair, v4 := range scores[0] {
		if v16, ok := scores[1][pair]; ok {
			inter4[pair] = v4
			inter16[pair] = v16
		}
	}
	res := &StabilityResult{
		K:          k,
		TopOverlap: stats.OverlapAtK(inter16, inter4, k),
		Pairs4:     counts[0],
		Pairs16:    counts[1],
	}
	var xs, ys []float64
	for pair := range inter4 {
		xs = append(xs, inter4[pair])
		ys = append(ys, inter16[pair])
	}
	if len(xs) >= 2 {
		if r, err := stats.SpearmanRank(xs, ys); err == nil {
			res.RankCorrelation = r
		}
	}
	return res, nil
}

// String renders the result.
func (r *StabilityResult) String() string {
	return fmt.Sprintf("concurrency stability: top-%d overlap %.0f%%, rank correlation %.2f (pairs: 4-way %d, 16-way %d)",
		r.K, r.TopOverlap*100, r.RankCorrelation, r.Pairs4, r.Pairs16)
}

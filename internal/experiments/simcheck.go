package experiments

import (
	"fmt"
	"math"

	"structlayout/internal/exec"
)

// SimCheckBound is the documented error bound for interval-sampled
// simulation, asserted by the simcheck harness and CI: every figure-suite
// cell's sampled mean throughput must land within this relative error of
// the exact measurement. The bound follows from the error model in
// docs/PERF.md: completed-script counts are exact under sampling (every
// thread runs to completion), so throughput error is cycle-estimation
// error only — the EWMA latency estimate charged to off-window accesses —
// which stays in the low single digits of percent on the SDET mix; 10%
// leaves margin for adversarial layouts.
const SimCheckBound = 0.10

// SimCheckCell is one figure-suite measurement compared across modes.
type SimCheckCell struct {
	Figure string
	Label  string
	// Name is "baseline" or the layout name ("auto", "hotness", "best").
	Name string
	// Exact and Sampled are the mean throughputs (scripts/hour).
	Exact   float64
	Sampled float64
	// RelErr is |Sampled-Exact|/Exact.
	RelErr float64
}

// SimCheckResult is the differential validation of sampled mode against
// exact on the full figure suite.
type SimCheckResult struct {
	Cells []SimCheckCell
	// MaxRelErr is the worst cell's relative throughput error.
	MaxRelErr float64
	// Bound is the asserted limit (SimCheckBound).
	Bound float64
}

// Pass reports whether every cell stayed within the bound.
func (r *SimCheckResult) Pass() bool { return r.MaxRelErr <= r.Bound }

// Err returns nil when the check passes, else a descriptive error naming
// the worst cell.
func (r *SimCheckResult) Err() error {
	if r.Pass() {
		return nil
	}
	worst := r.worst()
	return fmt.Errorf("simcheck: sampled mode exceeded the %.0f%% bound: %s %s/%s off by %.1f%% (exact %.0f, sampled %.0f)",
		r.Bound*100, worst.Figure, worst.Label, worst.Name, worst.RelErr*100, worst.Exact, worst.Sampled)
}

func (r *SimCheckResult) worst() SimCheckCell {
	var w SimCheckCell
	for _, c := range r.Cells {
		if c.RelErr >= w.RelErr {
			w = c
		}
	}
	return w
}

// String renders the per-figure summary.
func (r *SimCheckResult) String() string {
	s := fmt.Sprintf("simcheck: %d cells, max relative throughput error %.2f%% (bound %.0f%%)\n",
		len(r.Cells), r.MaxRelErr*100, r.Bound*100)
	byFig := map[string]*SimCheckCell{}
	var order []string
	for i := range r.Cells {
		c := &r.Cells[i]
		if w, ok := byFig[c.Figure]; !ok || c.RelErr > w.RelErr {
			if !ok {
				order = append(order, c.Figure)
			}
			byFig[c.Figure] = c
		}
	}
	for _, fig := range order {
		c := byFig[fig]
		s += fmt.Sprintf("  %-10s worst cell %s/%-8s %.2f%%  (exact %.0f vs sampled %.0f scripts/hour)\n",
			fig, c.Label, c.Name, c.RelErr*100, c.Exact, c.Sampled)
	}
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	return s + verdict + "\n"
}

// SimCheck validates interval-sampled simulation differentially against
// exact on the full figure suite: both modes run the identical pipeline
// (the collection is exact in both — sampling never drives PMU
// collection), and every measured cell's throughput is compared. The
// sampled run memoizes under distinct keys by construction, so this
// doubles as a test that the two modes never share cache entries: a key
// collision would zero every cell's error, which the caller can detect
// via MaxRelErr > 0 on any nontrivial configuration.
func SimCheck(cfg Config) (*SimCheckResult, error) {
	exactCfg := cfg
	exactCfg.Sim = exec.SimConfig{}
	sampledCfg := cfg
	sampledCfg.Sim = exec.SimConfig{Mode: exec.SimSampled}

	figs := func(c Config) ([]*Figure, error) {
		p, err := NewPipeline(c)
		if err != nil {
			return nil, err
		}
		f8, err := p.Fig8()
		if err != nil {
			return nil, err
		}
		f9, err := p.Fig9()
		if err != nil {
			return nil, err
		}
		f10, err := p.Fig10()
		if err != nil {
			return nil, err
		}
		return []*Figure{f8, f9, f10}, nil
	}
	exactFigs, err := figs(exactCfg)
	if err != nil {
		return nil, fmt.Errorf("simcheck exact: %w", err)
	}
	sampledFigs, err := figs(sampledCfg)
	if err != nil {
		return nil, fmt.Errorf("simcheck sampled: %w", err)
	}

	res := &SimCheckResult{Bound: SimCheckBound}
	for i, ef := range exactFigs {
		sf := sampledFigs[i]
		for j, er := range ef.Rows {
			sr := sf.Rows[j]
			res.add(ef.Name, er.Label, "baseline", er.Baseline, sr.Baseline)
			for name, epct := range er.Pct {
				spct, ok := sr.Pct[name]
				if !ok {
					continue
				}
				// Recover the cell's absolute throughput from the speedup:
				// comparing throughputs keeps the metric well-conditioned
				// where the speedups themselves hover near zero.
				res.add(ef.Name, er.Label, name,
					er.Baseline*(1+epct/100), sr.Baseline*(1+spct/100))
			}
		}
	}
	return res, nil
}

func (r *SimCheckResult) add(fig, label, name string, exact, sampled float64) {
	if exact == 0 {
		return
	}
	rel := math.Abs(sampled-exact) / exact
	r.Cells = append(r.Cells, SimCheckCell{
		Figure: fig, Label: label, Name: name,
		Exact: exact, Sampled: sampled, RelErr: rel,
	})
	if rel > r.MaxRelErr {
		r.MaxRelErr = rel
	}
}

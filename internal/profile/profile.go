// Package profile holds execution profiles of IR programs: basic-block
// execution counts and loop trip statistics. It corresponds to the paper's
// PBO ("profile-based optimization") feedback file (§4): the instrumented
// collect run produces precise edge/block counts which the layout analysis
// consumes as CycleGain frequencies.
//
// Because each basic block's instruction list is static, per-field access
// counts are derived exactly from block counts (accesses per block execution
// × block executions); they are not stored separately.
//
// Profiles can also be synthesized statically (StaticEstimate) from loop
// trip counts and branch probabilities, matching the compiler's behaviour
// when no feedback file is available.
package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"structlayout/internal/ir"
)

// Profile records execution counts for one program. Counts are float64:
// measured profiles hold integral values, static estimates hold expected
// (fractional) frequencies.
type Profile struct {
	// ProgramName ties the profile to the program that produced it.
	ProgramName string `json:"program"`
	// Blocks holds execution counts indexed by global ir.BlockID.
	Blocks []float64 `json:"blocks"`
	// LoopIters holds total body iterations indexed by global loop ID.
	LoopIters []float64 `json:"loop_iters"`
	// LoopEntries holds loop entry counts indexed by global loop ID.
	LoopEntries []float64 `json:"loop_entries"`
}

// New returns an empty profile shaped for the finalized program.
func New(p *ir.Program) *Profile {
	return &Profile{
		ProgramName: p.Name,
		Blocks:      make([]float64, p.NumBlocks()),
		LoopIters:   make([]float64, p.NumLoops()),
		LoopEntries: make([]float64, p.NumLoops()),
	}
}

// IncrBlock adds one execution of block id.
func (pf *Profile) IncrBlock(id ir.BlockID) { pf.Blocks[id]++ }

// AddLoop records one entry of the loop with the given body iterations.
func (pf *Profile) AddLoop(global int, iters int64) {
	pf.LoopEntries[global]++
	pf.LoopIters[global] += float64(iters)
}

// Merge accumulates another profile of the same program into pf.
func (pf *Profile) Merge(o *Profile) error {
	if len(pf.Blocks) != len(o.Blocks) || len(pf.LoopIters) != len(o.LoopIters) {
		return fmt.Errorf("profile: shape mismatch (%d/%d blocks, %d/%d loops)",
			len(pf.Blocks), len(o.Blocks), len(pf.LoopIters), len(o.LoopIters))
	}
	for i, v := range o.Blocks {
		pf.Blocks[i] += v
	}
	for i := range o.LoopIters {
		pf.LoopIters[i] += o.LoopIters[i]
		pf.LoopEntries[i] += o.LoopEntries[i]
	}
	return nil
}

// BlockCount returns the execution count of b.
func (pf *Profile) BlockCount(b *ir.BasicBlock) float64 { return pf.Blocks[b.Global] }

// LoopEC returns the paper's ExecutionCount(L): the number of times the
// loop body executed, aggregated over all entries.
func (pf *Profile) LoopEC(l *ir.Loop) float64 { return pf.LoopIters[l.Global] }

// FieldCounts aggregates read/write counts per (struct, field) over a set
// of blocks, weighting each block's static accesses by its execution count.
// Lock and unlock operations count as writes to their field.
type FieldCounts map[FieldKey]Counts

// FieldKey identifies a field of a named struct.
type FieldKey struct {
	Struct string
	Field  int
}

// Counts are dynamic read/write totals.
type Counts struct {
	Reads  float64
	Writes float64
}

// Total returns reads + writes.
func (c Counts) Total() float64 { return c.Reads + c.Writes }

// AccumulateBlock adds block b's per-execution field accesses, scaled by its
// execution count, into fc.
func (pf *Profile) AccumulateBlock(fc FieldCounts, b *ir.BasicBlock) {
	n := pf.BlockCount(b)
	if n == 0 {
		return
	}
	for _, in := range b.FieldInstrs() {
		k := FieldKey{Struct: in.Struct.Name, Field: in.Field}
		c := fc[k]
		if in.Acc == ir.Read {
			c.Reads += n
		} else {
			c.Writes += n
		}
		fc[k] = c
	}
}

// BlockFieldCounts returns the dynamic field counts of a single block.
func (pf *Profile) BlockFieldCounts(b *ir.BasicBlock) FieldCounts {
	fc := make(FieldCounts)
	pf.AccumulateBlock(fc, b)
	return fc
}

// ProgramFieldCounts returns dynamic field counts over the whole program:
// the paper's "hotness" input (a field is hotter if referenced more often).
func ProgramFieldCounts(p *ir.Program, pf *Profile) FieldCounts {
	fc := make(FieldCounts)
	for _, b := range p.Blocks() {
		pf.AccumulateBlock(fc, b)
	}
	return fc
}

// StaticEstimate synthesizes a profile from the program structure alone:
// each procedure is assumed to be called once per call site (entry
// procedures once overall), loops multiply by their trip count, branches by
// their probability. This mirrors a compiler's static frequency estimator
// and lets the tool run without a collect phase.
func StaticEstimate(p *ir.Program, entries []string) (*Profile, error) {
	pf := New(p)
	// Expected call multiplicity per procedure: entries get 1; callees get
	// the sum over call sites of the caller's site frequency. Requires the
	// acyclic call graph Finalize guarantees; process in topological order
	// via memoized recursion over the tree walk below.
	procWeight := make(map[string]float64, len(p.Procs))
	for _, e := range entries {
		if p.Proc(e) == nil {
			return nil, fmt.Errorf("profile: unknown entry procedure %q", e)
		}
		procWeight[e] += 1
	}
	// Iterate procedures in registration order; the ir call-graph check
	// rejects recursion, but callees may precede callers in registration
	// order, so propagate until fixpoint (bounded by proc count).
	for iter := 0; iter < len(p.Procs)+1; iter++ {
		next := make(map[string]float64, len(procWeight))
		for _, e := range entries {
			next[e] += 1
		}
		for _, pr := range p.Procs {
			w := procWeight[pr.Name]
			if w == 0 {
				continue
			}
			addCallWeights(pr.Tree, w, next)
		}
		if weightsEqual(procWeight, next) {
			break
		}
		procWeight = next
	}
	for _, pr := range p.Procs {
		w := procWeight[pr.Name]
		if w == 0 {
			continue
		}
		walkStatic(pr.Tree, w, pf)
	}
	return pf, nil
}

func weightsEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// addCallWeights accumulates callee weights for calls under nodes executed
// with frequency w.
func addCallWeights(nodes []ir.ExecNode, w float64, out map[string]float64) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.ExecBlock:
			for _, in := range n.Block.Instrs {
				if in.Op == ir.OpCall {
					out[in.Callee] += w
				}
			}
		case *ir.ExecLoop:
			addCallWeights(n.Body, w*float64(n.Count), out)
		case *ir.ExecIf:
			addCallWeights(n.Then, w*n.Prob, out)
			addCallWeights(n.Else, w*(1-n.Prob), out)
		}
	}
}

// walkStatic attributes expected block counts for one procedure executed w
// times.
func walkStatic(nodes []ir.ExecNode, w float64, pf *Profile) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.ExecBlock:
			pf.Blocks[n.Block.Global] += w
		case *ir.ExecLoop:
			// Header tests count+1 times per entry.
			pf.Blocks[n.Loop.Header.Global] += w * float64(n.Count+1)
			pf.LoopEntries[n.Loop.Global] += w
			pf.LoopIters[n.Loop.Global] += w * float64(n.Count)
			walkStatic(n.Body, w*float64(n.Count), pf)
		case *ir.ExecIf:
			pf.Blocks[n.Cond.Global] += w
			pf.Blocks[n.Join.Global] += w
			walkStatic(n.Then, w*n.Prob, pf)
			walkStatic(n.Else, w*(1-n.Prob), pf)
		}
	}
}

// WriteJSON serializes the profile.
func (pf *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pf)
}

// ReadJSON deserializes a profile and checks it against the program shape.
func ReadJSON(r io.Reader, p *ir.Program) (*Profile, error) {
	var pf Profile
	if err := json.NewDecoder(r).Decode(&pf); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if pf.ProgramName != p.Name {
		return nil, fmt.Errorf("profile: for program %q, want %q", pf.ProgramName, p.Name)
	}
	if len(pf.Blocks) != p.NumBlocks() || len(pf.LoopIters) != p.NumLoops() || len(pf.LoopEntries) != p.NumLoops() {
		return nil, fmt.Errorf("profile: shape mismatch with program %q", p.Name)
	}
	return &pf, nil
}

package profile

import (
	"bytes"
	"math"
	"testing"

	"structlayout/internal/ir"
)

func buildFig4(t testing.TB, n int64) (*ir.Program, *ir.StructType) {
	t.Helper()
	p := ir.NewProgram("fig4")
	s := ir.NewStruct("S", ir.I64("f1"), ir.I64("f2"), ir.I64("f3"))
	p.AddStruct(s)
	b := p.NewProc("snippet")
	b.Write(s, "f1", ir.Shared(0))
	b.Write(s, "f2", ir.Shared(0))
	b.Loop(n, func(b *ir.Builder) {
		b.Write(s, "f3", ir.Shared(0))
		b.Read(s, "f3", ir.Shared(0))
		b.Read(s, "f1", ir.Shared(0))
		b.Read(s, "f3", ir.Shared(0))
	})
	b.Done()
	return p.MustFinalize(), s
}

func TestStaticEstimateFig4(t *testing.T) {
	const n = 50
	p, s := buildFig4(t, n)
	pf, err := StaticEstimate(p, []string{"snippet"})
	if err != nil {
		t.Fatal(err)
	}
	fc := ProgramFieldCounts(p, pf)
	// Figure 5's annotations: f1 R=N W=n(entry count=1), f2 W=1, f3 R=2N W=N.
	f1 := fc[FieldKey{Struct: s.Name, Field: 0}]
	f2 := fc[FieldKey{Struct: s.Name, Field: 1}]
	f3 := fc[FieldKey{Struct: s.Name, Field: 2}]
	if f1.Reads != n || f1.Writes != 1 {
		t.Fatalf("f1 = %+v", f1)
	}
	if f2.Reads != 0 || f2.Writes != 1 {
		t.Fatalf("f2 = %+v", f2)
	}
	if f3.Reads != 2*n || f3.Writes != n {
		t.Fatalf("f3 = %+v", f3)
	}
	// Hotness: f1 = N + n(=1 entry), f3 = 3N.
	if got := f1.Total(); got != n+1 {
		t.Fatalf("hotness(f1) = %v", got)
	}
	if got := f3.Total(); got != 3*n {
		t.Fatalf("hotness(f3) = %v", got)
	}
	// Loop EC.
	l := p.Proc("snippet").Loops[0]
	if got := pf.LoopEC(l); got != n {
		t.Fatalf("LoopEC = %v", got)
	}
}

func TestStaticEstimateBranches(t *testing.T) {
	p := ir.NewProgram("br")
	s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"))
	p.AddStruct(s)
	b := p.NewProc("f")
	b.IfElse(0.25,
		func(b *ir.Builder) { b.Read(s, "a", ir.Shared(0)) },
		func(b *ir.Builder) { b.Read(s, "b", ir.Shared(0)) },
	)
	b.Done()
	p.MustFinalize()
	pf, err := StaticEstimate(p, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	fc := ProgramFieldCounts(p, pf)
	if got := fc[FieldKey{Struct: "S", Field: 0}].Reads; math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("then-arm weight = %v", got)
	}
	if got := fc[FieldKey{Struct: "S", Field: 1}].Reads; math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("else-arm weight = %v", got)
	}
}

func TestStaticEstimateCalls(t *testing.T) {
	p := ir.NewProgram("calls")
	s := ir.NewStruct("S", ir.I64("a"))
	p.AddStruct(s)
	leaf := p.NewProc("leaf")
	leaf.Read(s, "a", ir.Shared(0))
	leaf.Done()
	mid := p.NewProc("mid")
	mid.Loop(10, func(b *ir.Builder) { b.Call("leaf") })
	mid.Done()
	top := p.NewProc("top")
	top.Call("mid")
	top.Call("leaf")
	top.Done()
	p.MustFinalize()

	pf, err := StaticEstimate(p, []string{"top"})
	if err != nil {
		t.Fatal(err)
	}
	fc := ProgramFieldCounts(p, pf)
	// leaf runs 10 (via mid) + 1 (direct) = 11 times.
	if got := fc[FieldKey{Struct: "S", Field: 0}].Reads; math.Abs(got-11) > 1e-9 {
		t.Fatalf("leaf reads = %v, want 11", got)
	}
}

func TestStaticEstimateUnknownEntry(t *testing.T) {
	p, _ := buildFig4(t, 5)
	if _, err := StaticEstimate(p, []string{"ghost"}); err == nil {
		t.Fatal("expected error for unknown entry")
	}
}

func TestMergeAndJSONRoundTrip(t *testing.T) {
	p, _ := buildFig4(t, 5)
	a, _ := StaticEstimate(p, []string{"snippet"})
	b, _ := StaticEstimate(p, []string{"snippet"})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Blocks {
		if a.Blocks[i] != 2*b.Blocks[i] {
			t.Fatalf("merge: block %d = %v, want %v", i, a.Blocks[i], 2*b.Blocks[i])
		}
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Blocks {
		if got.Blocks[i] != a.Blocks[i] {
			t.Fatalf("roundtrip: block %d = %v", i, got.Blocks[i])
		}
	}
}

func TestReadJSONShapeMismatch(t *testing.T) {
	p1, _ := buildFig4(t, 5)
	p2 := ir.NewProgram("other")
	b := p2.NewProc("f")
	b.Compute(1)
	b.Done()
	p2.MustFinalize()

	pf, _ := StaticEstimate(p1, []string{"snippet"})
	var buf bytes.Buffer
	if err := pf.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(&buf, p2); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestMergeShapeMismatch(t *testing.T) {
	p1, _ := buildFig4(t, 5)
	p2 := ir.NewProgram("other")
	b := p2.NewProc("f")
	b.Compute(1)
	b.Done()
	p2.MustFinalize()
	a := New(p1)
	if err := a.Merge(New(p2)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestIncrAndLoopAccounting(t *testing.T) {
	p, _ := buildFig4(t, 5)
	pf := New(p)
	blk := p.Blocks()[0]
	pf.IncrBlock(blk.Global)
	pf.IncrBlock(blk.Global)
	if pf.BlockCount(blk) != 2 {
		t.Fatalf("BlockCount = %v", pf.BlockCount(blk))
	}
	l := p.Proc("snippet").Loops[0]
	pf.AddLoop(l.Global, 5)
	pf.AddLoop(l.Global, 7)
	if pf.LoopEC(l) != 12 || pf.LoopEntries[l.Global] != 2 {
		t.Fatalf("loop accounting: EC=%v entries=%v", pf.LoopEC(l), pf.LoopEntries[l.Global])
	}
}

package transform

import (
	"strings"
	"testing"

	"structlayout/internal/ir"
	"structlayout/internal/profile"
)

func mustSplit(t testing.TB, p *ir.Program, pf *profile.Profile, st *ir.StructType, opts Options) *SplitAdvice {
	t.Helper()
	adv, err := Split(p, pf, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	return adv
}

// hotColdProgram: two hot fields, one warm, many cold, two never touched.
func hotColdProgram(t testing.TB) (*ir.Program, *ir.StructType, *profile.Profile) {
	t.Helper()
	p := ir.NewProgram("hc")
	fields := []ir.Field{
		ir.I64("hot_a"), ir.I64("hot_b"), ir.I64("warm"),
		ir.Arr("cold_buf", 32, 8, 8), // 256 bytes of cold state
		ir.I64("cold_x"), ir.I64("dead_y"), ir.I64("dead_z"),
	}
	s := ir.NewStruct("S", fields...)
	p.AddStruct(s)
	b := p.NewProc("main")
	b.Loop(10000, func(b *ir.Builder) {
		b.Read(s, "hot_a", ir.Shared(0))
		b.Write(s, "hot_b", ir.Shared(0))
	})
	b.Loop(50, func(b *ir.Builder) {
		b.Read(s, "warm", ir.Shared(0))
	})
	b.Read(s, "cold_buf", ir.Shared(0))
	b.Read(s, "cold_x", ir.Shared(0))
	b.Done()
	p.MustFinalize()
	pf, err := profile.StaticEstimate(p, []string{"main"})
	if err != nil {
		t.Fatal(err)
	}
	return p, s, pf
}

func TestSplitPartitionsByHeat(t *testing.T) {
	p, s, pf := hotColdProgram(t)
	adv := mustSplit(t, p, pf, s, Options{})
	hotSet := map[int]bool{}
	for _, fi := range adv.Hot {
		hotSet[fi] = true
	}
	if !hotSet[s.FieldIndex("hot_a")] || !hotSet[s.FieldIndex("hot_b")] {
		t.Fatalf("hot fields misclassified: %v", adv.Hot)
	}
	// warm = 50 refs vs hottest 10000: below the 1% threshold -> cold.
	if hotSet[s.FieldIndex("warm")] {
		t.Fatal("warm should be cold at the default threshold")
	}
	if len(adv.Dead) != 2 {
		t.Fatalf("dead = %v, want the two never-touched fields", adv.Dead)
	}
	// Partition covers every field exactly once.
	if len(adv.Hot)+len(adv.Cold) != s.NumFields() {
		t.Fatalf("partition sizes %d+%d != %d", len(adv.Hot), len(adv.Cold), s.NumFields())
	}
	if !adv.Worthwhile() {
		t.Fatalf("split should shrink the footprint: %+v", adv)
	}
	if adv.HotLines >= adv.OrigLines {
		t.Fatalf("hot lines %d not below original %d", adv.HotLines, adv.OrigLines)
	}
}

func TestSplitThresholdKnob(t *testing.T) {
	p, s, pf := hotColdProgram(t)
	// A generous threshold keeps warm hot.
	adv := mustSplit(t, p, pf, s, Options{ColdFraction: 0.001})
	for _, fi := range adv.Cold {
		if fi == s.FieldIndex("warm") {
			t.Fatal("warm should be hot at 0.1% threshold")
		}
	}
}

func TestSplitCutWeight(t *testing.T) {
	p, s, pf := hotColdProgram(t)
	weights := map[[2]int]float64{
		{s.FieldIndex("hot_a"), s.FieldIndex("warm")}:  42, // crosses the cut
		{s.FieldIndex("hot_a"), s.FieldIndex("hot_b")}: 7,  // stays hot-side
	}
	adv := mustSplit(t, p, pf, s, Options{AffinityWeights: weights})
	if adv.CutWeight != 42 {
		t.Fatalf("cut weight = %v, want 42", adv.CutWeight)
	}
}

func TestSplitAllHot(t *testing.T) {
	p := ir.NewProgram("allhot")
	s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"))
	p.AddStruct(s)
	b := p.NewProc("main")
	b.Loop(100, func(b *ir.Builder) {
		b.Read(s, "a", ir.Shared(0))
		b.Read(s, "b", ir.Shared(0))
	})
	b.Done()
	p.MustFinalize()
	pf, _ := profile.StaticEstimate(p, []string{"main"})
	adv := mustSplit(t, p, pf, s, Options{})
	if len(adv.Cold) != 0 || adv.Worthwhile() {
		t.Fatalf("uniformly hot struct should not split: %+v", adv)
	}
}

func TestAdvisoryText(t *testing.T) {
	p, s, pf := hotColdProgram(t)
	text := mustSplit(t, p, pf, s, Options{}).String()
	for _, want := range []string{"hot/cold split advisory", "dead (never referenced): dead_y dead_z", "verdict: worthwhile"} {
		if !strings.Contains(text, want) {
			t.Fatalf("advisory missing %q:\n%s", want, text)
		}
	}
}

// Package transform implements the classic single-threaded structure
// transformations the paper positions itself against (§1: "structure
// splitting, structure peeling, field reordering, dead field removal") as
// advisories over the same profile data the layout tool consumes. Field
// reordering is the main tool (internal/core); this package covers the
// rest:
//
//   - dead-field removal: fields with zero dynamic references,
//   - hot/cold structure splitting (peeling): move rarely-referenced
//     fields into a separate cold sub-structure reached by pointer,
//     shrinking the hot working set.
//
// Like the paper's tool, these are advisories: C-level legality (address
// arithmetic, casts, ABI) cannot be proven here, so a programmer applies
// them. The advisory quantifies the footprint effect so the decision is
// informed.
package transform

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/profile"
)

// SplitAdvice is the hot/cold splitting advisory for one struct.
type SplitAdvice struct {
	Struct *ir.StructType
	// Hot and Cold partition the field indices.
	Hot, Cold []int
	// Dead are the cold fields with exactly zero references (removal
	// candidates, a subset of Cold).
	Dead []int
	// HotBytes and ColdBytes are dense sizes of the two parts; the hot
	// part gains one pointer to reach the cold part.
	HotBytes, ColdBytes int
	// HotLines and OrigLines compare cache-line footprints per instance at
	// the advisory's line size (the hot part includes the cold pointer).
	HotLines, OrigLines int
	// CutWeight is the total affinity weight between hot and cold fields —
	// locality the split would destroy. A good split has a small cut.
	CutWeight float64
}

// Options tunes the advisory.
type Options struct {
	// ColdFraction: a field is cold when its dynamic reference count is at
	// most this fraction of the struct's hottest field (default 0.01).
	ColdFraction float64
	// LineSize for footprint accounting (default 128).
	LineSize int
	// AffinityWeights, when non-nil, supplies pair weights used to compute
	// the split's cut cost (e.g. affinity.Graph.Weights).
	AffinityWeights map[[2]int]float64
}

func (o *Options) fillDefaults() {
	if o.ColdFraction == 0 {
		o.ColdFraction = 0.01
	}
	if o.LineSize == 0 {
		o.LineSize = 128
	}
}

// Split computes the hot/cold advisory for one struct from a profile.
func Split(p *ir.Program, pf *profile.Profile, st *ir.StructType, opts Options) (*SplitAdvice, error) {
	opts.fillDefaults()
	counts := profile.ProgramFieldCounts(p, pf)
	hotness := make([]float64, len(st.Fields))
	var max float64
	for fi := range st.Fields {
		hotness[fi] = counts[profile.FieldKey{Struct: st.Name, Field: fi}].Total()
		if hotness[fi] > max {
			max = hotness[fi]
		}
	}
	adv := &SplitAdvice{Struct: st}
	threshold := max * opts.ColdFraction
	for fi, f := range st.Fields {
		switch {
		case hotness[fi] == 0:
			adv.Dead = append(adv.Dead, fi)
			adv.Cold = append(adv.Cold, fi)
			adv.ColdBytes += f.Size
		case hotness[fi] <= threshold:
			adv.Cold = append(adv.Cold, fi)
			adv.ColdBytes += f.Size
		default:
			adv.Hot = append(adv.Hot, fi)
			adv.HotBytes += f.Size
		}
	}
	// The hot part needs a pointer to the cold part (peeling), unless
	// nothing is cold.
	hotBytesWithPtr := adv.HotBytes
	if len(adv.Cold) > 0 {
		hotBytesWithPtr += 8
	}
	adv.HotLines = (hotBytesWithPtr + opts.LineSize - 1) / opts.LineSize
	orig, err := layout.Original(st, opts.LineSize)
	if err != nil {
		return nil, err
	}
	adv.OrigLines = orig.NumLines()
	if adv.HotLines == 0 {
		adv.HotLines = 1
	}
	for _, h := range adv.Hot {
		for _, c := range adv.Cold {
			k := [2]int{h, c}
			if k[0] > k[1] {
				k[0], k[1] = k[1], k[0]
			}
			adv.CutWeight += opts.AffinityWeights[k]
		}
	}
	sort.Ints(adv.Hot)
	sort.Ints(adv.Cold)
	sort.Ints(adv.Dead)
	return adv, nil
}

// Worthwhile reports whether the split shrinks the hot footprint at all.
func (a *SplitAdvice) Worthwhile() bool {
	return len(a.Cold) > 0 && a.HotLines < a.OrigLines
}

// String renders the advisory.
func (a *SplitAdvice) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "hot/cold split advisory for struct %s\n", a.Struct.Name)
	fmt.Fprintf(&sb, "  hot: %d fields, %d bytes -> %d lines (from %d)\n",
		len(a.Hot), a.HotBytes, a.HotLines, a.OrigLines)
	fmt.Fprintf(&sb, "  cold: %d fields, %d bytes (reached via pointer)\n", len(a.Cold), a.ColdBytes)
	if len(a.Dead) > 0 {
		fmt.Fprintf(&sb, "  dead (never referenced):")
		for _, fi := range a.Dead {
			fmt.Fprintf(&sb, " %s", a.Struct.Fields[fi].Name)
		}
		fmt.Fprintln(&sb)
	}
	fmt.Fprintf(&sb, "  affinity cut by the split: %.6g\n", a.CutWeight)
	if a.Worthwhile() {
		fmt.Fprintf(&sb, "  verdict: worthwhile (hot working set shrinks %d -> %d lines)\n", a.OrigLines, a.HotLines)
	} else {
		fmt.Fprintf(&sb, "  verdict: not worthwhile\n")
	}
	return sb.String()
}

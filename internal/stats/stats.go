// Package stats implements the small statistical toolkit the paper's
// evaluation protocol needs (§5): means over repeated runs with outliers
// removed, relative speedups, and the rank correlation used to check that
// high-concurrency line pairs are stable across collection machines (§4.3).
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median returns the median of xs; 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// RemoveOutliers drops values outside median ± k·IQR (Tukey-style fences
// around the median). It never removes everything: if the fence would drop
// all points, the input is returned unchanged. The paper removes outliers
// from its 10 SDET runs before averaging; k=1.5 is the conventional fence.
func RemoveOutliers(xs []float64, k float64) []float64 {
	n := len(xs)
	if n < 4 {
		return append([]float64(nil), xs...)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q1 := quantileSorted(s, 0.25)
	q3 := quantileSorted(s, 0.75)
	iqr := q3 - q1
	lo, hi := q1-k*iqr, q3+k*iqr
	var out []float64
	for _, x := range xs {
		if x >= lo && x <= hi {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		return append([]float64(nil), xs...)
	}
	return out
}

// quantileSorted returns the q-quantile of a sorted slice via linear
// interpolation.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// TrimmedMean removes outliers with the k=1.5 fence and returns the mean of
// the remainder: the paper's run-aggregation procedure.
func TrimmedMean(xs []float64) float64 {
	return Mean(RemoveOutliers(xs, 1.5))
}

// SpeedupPercent returns the relative performance difference of measurement
// x over baseline b, in percent: positive means x is better (throughput
// metric: higher is better).
func SpeedupPercent(x, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (x - b) / b * 100
}

// SpearmanRank returns the Spearman rank correlation of paired samples.
// Ties receive their average rank. Returns an error when fewer than 2 pairs
// or mismatched lengths.
func SpearmanRank(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 pairs, got %d", len(x))
	}
	rx := ranks(x)
	ry := ranks(y)
	return pearson(rx, ry), nil
}

// ranks assigns average ranks (1-based) to xs.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// pearson returns the Pearson correlation coefficient.
func pearson(x, y []float64) float64 {
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// OverlapAtK returns |topK(x) ∩ topK(y)| / k for two keyed score maps:
// the fraction of the k highest-scored keys of x that are also among the k
// highest-scored keys of y. Used for the paper's observation that the
// high-concurrency source-line pairs stay "more or less the same" between
// the 4-way and 16-way collection machines.
func OverlapAtK[K comparable](x, y map[K]float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	tx := topKeys(x, k)
	ty := topKeys(y, k)
	set := make(map[K]bool, len(ty))
	for _, key := range ty {
		set[key] = true
	}
	hits := 0
	for _, key := range tx {
		if set[key] {
			hits++
		}
	}
	den := k
	if len(tx) < den {
		den = len(tx)
	}
	if den == 0 {
		return 0
	}
	return float64(hits) / float64(den)
}

func topKeys[K comparable](m map[K]float64, k int) []K {
	keys := make([]K, 0, len(m))
	for key := range m {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool {
		if m[keys[a]] != m[keys[b]] {
			return m[keys[a]] > m[keys[b]]
		}
		return fmt.Sprint(keys[a]) < fmt.Sprint(keys[b]) // deterministic tiebreak
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	return keys
}

// BootstrapCI returns a percentile-bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95). Deterministic for
// a fixed seed. Degenerate inputs return [mean, mean].
func BootstrapCI(xs []float64, confidence float64, iters int, seed int64) (lo, hi float64) {
	m := Mean(xs)
	if len(xs) < 2 || confidence <= 0 || confidence >= 1 || iters <= 0 {
		return m, m
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, iters)
	for i := range means {
		s := 0.0
		for j := 0; j < len(xs); j++ {
			s += xs[rng.Intn(len(xs))]
		}
		means[i] = s / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	lo = quantileSorted(means, alpha)
	hi = quantileSorted(means, 1-alpha)
	return lo, hi
}

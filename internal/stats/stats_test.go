package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanMedianStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Median(xs); !almostEq(got, 4.5) {
		t.Fatalf("Median = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Fatalf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/degenerate cases wrong")
	}
}

func TestRemoveOutliers(t *testing.T) {
	xs := []float64{100, 101, 99, 100, 102, 98, 100, 101, 99, 500}
	out := RemoveOutliers(xs, 1.5)
	for _, x := range out {
		if x == 500 {
			t.Fatal("outlier 500 survived")
		}
	}
	if len(out) != 9 {
		t.Fatalf("kept %d values, want 9", len(out))
	}
	// Small inputs pass through.
	small := []float64{1, 2, 3}
	if got := RemoveOutliers(small, 1.5); len(got) != 3 {
		t.Fatalf("small input trimmed: %v", got)
	}
}

func TestRemoveOutliersNeverEmpty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		out := RemoveOutliers(xs, 1.5)
		return len(out) >= 1 && len(out) <= len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{10, 10, 10, 10, 10, 10, 10, 10, 10, 1000}
	if got := TrimmedMean(xs); !almostEq(got, 10) {
		t.Fatalf("TrimmedMean = %v, want 10", got)
	}
}

func TestSpeedupPercent(t *testing.T) {
	if got := SpeedupPercent(103.2, 100); !almostEq(got, 3.2) {
		t.Fatalf("SpeedupPercent = %v", got)
	}
	if got := SpeedupPercent(50, 100); !almostEq(got, -50) {
		t.Fatalf("SpeedupPercent = %v", got)
	}
	if got := SpeedupPercent(1, 0); got != 0 {
		t.Fatalf("zero baseline: %v", got)
	}
}

func TestSpearmanPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	r, err := SpearmanRank(x, y)
	if err != nil || !almostEq(r, 1) {
		t.Fatalf("r=%v err=%v", r, err)
	}
	rev := []float64{50, 40, 30, 20, 10}
	r, _ = SpearmanRank(x, rev)
	if !almostEq(r, -1) {
		t.Fatalf("reversed r=%v", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{1, 2, 2, 3}
	r, err := SpearmanRank(x, y)
	if err != nil || !almostEq(r, 1) {
		t.Fatalf("tied r=%v err=%v", r, err)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := SpearmanRank([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for n<2")
	}
	if _, err := SpearmanRank([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func TestSpearmanRange(t *testing.T) {
	f := func(pairs []struct{ X, Y float64 }) bool {
		if len(pairs) < 2 {
			return true
		}
		var x, y []float64
		for _, p := range pairs {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				return true
			}
			x = append(x, p.X)
			y = append(y, p.Y)
		}
		r, err := SpearmanRank(x, y)
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapAtK(t *testing.T) {
	x := map[string]float64{"a": 10, "b": 9, "c": 8, "d": 1}
	y := map[string]float64{"a": 100, "b": 90, "z": 80, "c": 2}
	if got := OverlapAtK(x, y, 3); !almostEq(got, 2.0/3.0) {
		t.Fatalf("OverlapAtK = %v", got)
	}
	if got := OverlapAtK(x, x, 4); !almostEq(got, 1) {
		t.Fatalf("self overlap = %v", got)
	}
	if got := OverlapAtK(x, y, 0); got != 0 {
		t.Fatalf("k=0 overlap = %v", got)
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := []float64{100, 102, 98, 101, 99, 100, 103, 97, 100, 101}
	lo, hi := BootstrapCI(xs, 0.95, 2000, 7)
	m := Mean(xs)
	if !(lo <= m && m <= hi) {
		t.Fatalf("mean %v outside CI [%v, %v]", m, lo, hi)
	}
	if hi-lo <= 0 || hi-lo > 10 {
		t.Fatalf("implausible CI width %v", hi-lo)
	}
	// Deterministic for a fixed seed.
	lo2, hi2 := BootstrapCI(xs, 0.95, 2000, 7)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic")
	}
	// Degenerate inputs collapse to the mean.
	l, h := BootstrapCI([]float64{5}, 0.95, 100, 1)
	if l != 5 || h != 5 {
		t.Fatalf("degenerate CI [%v,%v]", l, h)
	}
}

func TestBootstrapCIWiderWithNoise(t *testing.T) {
	tight := []float64{100, 100, 100, 100, 100, 101, 99, 100}
	wide := []float64{80, 120, 95, 105, 70, 130, 100, 100}
	tl, th := BootstrapCI(tight, 0.95, 1000, 3)
	wl, wh := BootstrapCI(wide, 0.95, 1000, 3)
	if (th - tl) >= (wh - wl) {
		t.Fatalf("noisier data should widen the CI: %v vs %v", th-tl, wh-wl)
	}
}

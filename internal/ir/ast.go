package ir

import "fmt"

// InstKind selects how a field access resolves to a concrete struct
// instance at run time. The analysis side deliberately cannot see instance
// identity — the paper notes (§3.2) that CodeConcurrency over-approximates
// false sharing precisely because it cannot distinguish instances — but the
// execution engine must know which instance each access touches.
type InstKind uint8

const (
	// InstShared resolves to a fixed instance index within the struct's
	// arena: a globally shared object such as a kernel-wide table entry.
	InstShared InstKind = iota
	// InstPerCPU resolves to the instance whose index equals the executing
	// thread's ID (per-CPU data, the classic false-sharing-free pattern —
	// unless the layout packs several logical objects into one line).
	InstPerCPU
	// InstParam resolves to the executing thread's parameter #Index: the
	// workload driver assigns parameter vectors to threads, modelling
	// processes that each work on their own file/proc/vnode object.
	InstParam
	// InstLoopVar resolves to (loop induction variable of the innermost
	// enclosing loop) modulo the arena size: an array sweep over all
	// instances, the Figure 1 pattern from the paper.
	InstLoopVar
)

// InstExpr names the struct instance an access touches.
type InstExpr struct {
	Kind  InstKind
	Index int // instance index (InstShared) or parameter slot (InstParam)
}

// Shared selects the fixed shared instance i.
func Shared(i int) InstExpr { return InstExpr{Kind: InstShared, Index: i} }

// PerCPU selects the executing thread's own instance.
func PerCPU() InstExpr { return InstExpr{Kind: InstPerCPU} }

// Param selects the instance named by the thread's parameter slot k.
func Param(k int) InstExpr { return InstExpr{Kind: InstParam, Index: k} }

// LoopVar selects the instance indexed by the innermost loop's induction
// variable (modulo arena size).
func LoopVar() InstExpr { return InstExpr{Kind: InstLoopVar} }

// String renders the instance expression.
func (e InstExpr) String() string {
	switch e.Kind {
	case InstShared:
		return fmt.Sprintf("shared[%d]", e.Index)
	case InstPerCPU:
		return "percpu"
	case InstParam:
		return fmt.Sprintf("param[%d]", e.Index)
	case InstLoopVar:
		return "loopvar"
	default:
		return "?"
	}
}

// MemPattern describes how a region access computes its address.
type MemPattern uint8

const (
	// MemSeq strides sequentially through the region (streaming sweep);
	// address advances by Stride bytes per executed access and wraps.
	MemSeq MemPattern = iota
	// MemFixed always touches the same offset.
	MemFixed
	// MemRand touches a pseudo-random (seeded, deterministic) offset.
	MemRand
)

// Opcode enumerates executable instructions. Leaf AST statements lower to
// exactly one instruction each.
type Opcode uint8

const (
	// OpField reads or writes a struct field.
	OpField Opcode = iota
	// OpMem reads or writes a memory region.
	OpMem
	// OpCompute burns a fixed number of cycles without memory traffic.
	OpCompute
	// OpLock acquires a spinlock stored in a struct field. Acquisition is a
	// read-modify-write of the field (so it participates in coherence and in
	// false sharing with neighbouring fields) plus blocking semantics.
	OpLock
	// OpUnlock releases a spinlock (a write to the field).
	OpUnlock
	// OpCall transfers to another procedure and returns.
	OpCall
	// OpSpawn forks a child task running another procedure. The spawn is a
	// static fork/join skeleton edge (well-structured futures): the static
	// analysis derives happens-before from it, while the interpreter treats
	// it as a no-op (spawned tasks are modeled as declared threads, not
	// dynamically created ones).
	OpSpawn
	// OpJoin waits for a previously spawned child task, creating the
	// matching happens-before edge. A no-op for the interpreter.
	OpJoin
	// OpSend is a rendezvous send on a named synchronization channel.
	// A no-op for the interpreter; a happens-before edge source for the
	// static analysis when it pairs with a unique OpRecv.
	OpSend
	// OpRecv is the matching rendezvous receive.
	OpRecv
)

// Instr is one executable instruction inside a basic block.
type Instr struct {
	Op Opcode

	// OpField, OpLock, OpUnlock:
	Struct *StructType
	Field  int
	Acc    AccessKind
	Inst   InstExpr

	// OpMem:
	Region  string
	Pattern MemPattern
	Stride  int64
	Offset  int64

	// OpCompute:
	Cycles int64

	// OpCall (also OpSpawn's target procedure):
	Callee string

	// OpSpawn, OpJoin:
	Handle string

	// OpSpawn: the CPU the child task runs on and its parameter vector.
	SpawnCPU    int
	SpawnParams []int

	// OpSend, OpRecv:
	Chan string
}

// String renders a compact instruction mnemonic.
func (in Instr) String() string {
	switch in.Op {
	case OpField:
		return fmt.Sprintf("%s %s.%s %s", in.Acc, in.Struct.Name, in.Struct.Fields[in.Field].Name, in.Inst)
	case OpMem:
		return fmt.Sprintf("%s mem %s", in.Acc, in.Region)
	case OpCompute:
		return fmt.Sprintf("compute %d", in.Cycles)
	case OpLock:
		return fmt.Sprintf("lock %s.%s %s", in.Struct.Name, in.Struct.Fields[in.Field].Name, in.Inst)
	case OpUnlock:
		return fmt.Sprintf("unlock %s.%s %s", in.Struct.Name, in.Struct.Fields[in.Field].Name, in.Inst)
	case OpCall:
		return "call " + in.Callee
	case OpSpawn:
		s := fmt.Sprintf("spawn %s cpu=%d %s", in.Handle, in.SpawnCPU, in.Callee)
		if len(in.SpawnParams) > 0 {
			s += fmt.Sprintf(" params=%v", in.SpawnParams)
		}
		return s
	case OpJoin:
		return "join " + in.Handle
	case OpSend:
		return "send " + in.Chan
	case OpRecv:
		return "recv " + in.Chan
	default:
		return "?"
	}
}

// Stmt is a node of the structured AST from which procedures are built.
// Only the builder constructs statements; the lowering pass consumes them.
type Stmt interface{ stmtNode() }

// AccessStmt is a single field read or write.
type AccessStmt struct {
	Struct *StructType
	Field  int
	Acc    AccessKind
	Inst   InstExpr
}

// MemStmt is a single memory-region access.
type MemStmt struct {
	Region  string
	Acc     AccessKind
	Pattern MemPattern
	Stride  int64
	Offset  int64
}

// ComputeStmt burns cycles.
type ComputeStmt struct{ Cycles int64 }

// LockStmt acquires a field-resident spinlock.
type LockStmt struct {
	Struct *StructType
	Field  int
	Inst   InstExpr
}

// UnlockStmt releases a field-resident spinlock.
type UnlockStmt struct {
	Struct *StructType
	Field  int
	Inst   InstExpr
}

// CallStmt invokes another procedure by name.
type CallStmt struct{ Callee string }

// LoopStmt executes Body Count times. Count is the static trip count used
// both by the interpreter and, for profile-free analysis, as the static
// frequency estimate.
type LoopStmt struct {
	Count int64
	Body  []Stmt
}

// IfStmt executes Then with probability Prob, Else otherwise. The
// interpreter draws from the thread's seeded RNG, keeping runs reproducible.
type IfStmt struct {
	Prob float64
	Then []Stmt
	Else []Stmt
}

// SpawnStmt forks a child task running Callee on the given CPU with the
// given parameter vector, naming the fork with Handle so a later
// JoinStmt can wait for it. Sync statements (spawn/join/send/recv) are
// restricted to the top level of a procedure body, and a procedure
// containing any of them must never be called — Finalize enforces both,
// which keeps the fork/join skeleton series-parallel and statically
// enumerable.
type SpawnStmt struct {
	Handle string
	CPU    int
	Callee string
	Params []int
}

// JoinStmt waits for the spawn named Handle (same procedure body).
type JoinStmt struct{ Handle string }

// SendStmt is a rendezvous send on the named channel.
type SendStmt struct{ Chan string }

// RecvStmt is a rendezvous receive on the named channel.
type RecvStmt struct{ Chan string }

func (*AccessStmt) stmtNode()  {}
func (*MemStmt) stmtNode()     {}
func (*ComputeStmt) stmtNode() {}
func (*LockStmt) stmtNode()    {}
func (*UnlockStmt) stmtNode()  {}
func (*CallStmt) stmtNode()    {}
func (*LoopStmt) stmtNode()    {}
func (*IfStmt) stmtNode()      {}
func (*SpawnStmt) stmtNode()   {}
func (*JoinStmt) stmtNode()    {}
func (*SendStmt) stmtNode()    {}
func (*RecvStmt) stmtNode()    {}

package ir

import "fmt"

// InlineOptions bounds the inlining pass.
type InlineOptions struct {
	// MaxDepth bounds transitive substitution rounds (default 3).
	MaxDepth int
	// MaxStmts is the largest callee body (recursive statement count) that
	// will be inlined (default 50).
	MaxStmts int
}

func (o *InlineOptions) fillDefaults() {
	if o.MaxDepth == 0 {
		o.MaxDepth = 3
	}
	if o.MaxStmts == 0 {
		o.MaxStmts = 50
	}
}

// Inline performs bounded procedure inlining, replacing call statements
// with deep clones of the callee's body. The paper's affinity analysis is
// deliberately intra-procedural (§3.1) and names "post-inline computation"
// as the way to recover inter-procedural affinity (§7): after inlining, a
// caller's accesses and a small callee's accesses share a granularity and
// gain affinity edges.
//
// Inline must run before Finalize. Each round substitutes exactly one call
// level (bodies are snapshotted at round start), so MaxDepth bounds the
// transitive flattening depth independently of declaration order. Inline
// independently detects call cycles, which the builder would otherwise
// only reject at Finalize.
func (p *Program) Inline(opts InlineOptions) error {
	p.mustMutable()
	opts.fillDefaults()
	for round := 0; round < opts.MaxDepth; round++ {
		// Snapshot pre-round bodies so substitution is one level per round.
		snapshot := make(map[string][]Stmt, len(p.Procs))
		for _, pr := range p.Procs {
			snapshot[pr.Name] = pr.Body
		}
		changed := false
		for _, pr := range p.Procs {
			body, didChange, err := p.inlineList(pr.Body, pr.Name, opts, snapshot, map[string]bool{pr.Name: true})
			if err != nil {
				return err
			}
			if didChange {
				pr.Body = body
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return nil
}

// inlineList substitutes eligible calls in one statement list (one level).
func (p *Program) inlineList(stmts []Stmt, caller string, opts InlineOptions, snapshot map[string][]Stmt, onPath map[string]bool) ([]Stmt, bool, error) {
	var out []Stmt
	changed := false
	for _, s := range stmts {
		switch s := s.(type) {
		case *CallStmt:
			if p.procByName[s.Callee] == nil {
				return nil, false, fmt.Errorf("ir: inline: %s calls undefined procedure %q", caller, s.Callee)
			}
			if onPath[s.Callee] {
				return nil, false, fmt.Errorf("ir: inline: recursive call cycle through %q", s.Callee)
			}
			body := snapshot[s.Callee]
			if StmtCount(body) > opts.MaxStmts {
				out = append(out, s)
				continue
			}
			out = append(out, CloneStmts(body)...)
			changed = true
		case *LoopStmt:
			body, didChange, err := p.inlineList(s.Body, caller, opts, snapshot, onPath)
			if err != nil {
				return nil, false, err
			}
			if didChange {
				out = append(out, &LoopStmt{Count: s.Count, Body: body})
				changed = true
			} else {
				out = append(out, s)
			}
		case *IfStmt:
			thenBody, c1, err := p.inlineList(s.Then, caller, opts, snapshot, onPath)
			if err != nil {
				return nil, false, err
			}
			elseBody, c2, err := p.inlineList(s.Else, caller, opts, snapshot, onPath)
			if err != nil {
				return nil, false, err
			}
			if c1 || c2 {
				out = append(out, &IfStmt{Prob: s.Prob, Then: thenBody, Else: elseBody})
				changed = true
			} else {
				out = append(out, s)
			}
		default:
			out = append(out, s)
		}
	}
	return out, changed, nil
}

// StmtCount returns the recursive statement count of a body.
func StmtCount(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		n++
		switch s := s.(type) {
		case *LoopStmt:
			n += StmtCount(s.Body)
		case *IfStmt:
			n += StmtCount(s.Then) + StmtCount(s.Else)
		}
	}
	return n
}

// CloneStmts deep-copies a statement list so inlined bodies never share
// mutable nodes with their origin.
func CloneStmts(stmts []Stmt) []Stmt {
	if stmts == nil {
		return nil
	}
	out := make([]Stmt, 0, len(stmts))
	for _, s := range stmts {
		out = append(out, cloneStmt(s))
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *AccessStmt:
		c := *s
		return &c
	case *MemStmt:
		c := *s
		return &c
	case *ComputeStmt:
		c := *s
		return &c
	case *LockStmt:
		c := *s
		return &c
	case *UnlockStmt:
		c := *s
		return &c
	case *CallStmt:
		c := *s
		return &c
	case *LoopStmt:
		return &LoopStmt{Count: s.Count, Body: CloneStmts(s.Body)}
	case *IfStmt:
		return &IfStmt{Prob: s.Prob, Then: CloneStmts(s.Then), Else: CloneStmts(s.Else)}
	default:
		panic(fmt.Sprintf("ir: clone: unknown statement %T", s))
	}
}

package ir

import "fmt"

// BlockID is a program-global basic-block identifier, assigned at Finalize.
// Profiles, samples and concurrency maps key on BlockID.
type BlockID int32

// BasicBlock is a maximal straight-line run of instructions plus the
// synthetic control blocks (loop headers, branch/join points) produced by
// lowering. Every block carries exactly one synthetic source line; the
// field-mapping file and the concurrency map both key on that line,
// mirroring the paper's IP→source→block correlation (§4.3).
type BasicBlock struct {
	// Index is the block's position within its procedure.
	Index int
	// Global is the program-wide ID, valid after Program.Finalize.
	Global BlockID
	// Proc is the owning procedure.
	Proc *Procedure
	// Instrs are the executable instructions; empty for synthetic blocks.
	Instrs []Instr
	// Succs and Preds are the CFG edges.
	Succs, Preds []*BasicBlock
	// Loop is the innermost loop containing this block, nil if none.
	Loop *Loop
	// Line is the block's synthetic source line.
	Line SourceLine
	// Synthetic marks control-only blocks (headers, conditions, joins).
	Synthetic bool
}

// Name renders proc#index for diagnostics.
func (b *BasicBlock) Name() string { return fmt.Sprintf("%s#%d", b.Proc.Name, b.Index) }

// LoopDepth returns the nesting depth (0 = not in a loop).
func (b *BasicBlock) LoopDepth() int {
	if b.Loop == nil {
		return 0
	}
	return b.Loop.Depth
}

// FieldInstrs returns the field-touching instructions (OpField, OpLock,
// OpUnlock) in the block. Lock operations count as accesses to their field:
// the paper explicitly lists "co-location of lock with the accessed data"
// as a layout concern, and a lock word is just a hot, write-shared field.
func (b *BasicBlock) FieldInstrs() []Instr {
	var out []Instr
	for _, in := range b.Instrs {
		switch in.Op {
		case OpField, OpLock, OpUnlock:
			out = append(out, in)
		}
	}
	return out
}

// Loop is a natural loop produced by lowering a LoopStmt.
type Loop struct {
	// Index is the loop's position within its procedure (preorder).
	Index int
	// Global is the program-wide loop ID, valid after Program.Finalize.
	Global int
	// Proc is the owning procedure.
	Proc *Procedure
	// Parent is the enclosing loop, nil for top-level loops.
	Parent *Loop
	// Children are directly nested loops.
	Children []*Loop
	// Depth is the nesting depth; 1 for outermost loops.
	Depth int
	// Header is the synthetic header block (the trip-count test).
	Header *BasicBlock
	// Blocks are the blocks whose innermost containing loop is this loop
	// (blocks of nested loops live in the nested loop's Blocks).
	Blocks []*BasicBlock
	// TripCount is the static per-entry iteration count.
	TripCount int64

	stmt *LoopStmt
}

// Name renders proc$index.
func (l *Loop) Name() string { return fmt.Sprintf("%s$L%d", l.Proc.Name, l.Index) }

// AllBlocks returns the loop's blocks including nested loops', preorder.
func (l *Loop) AllBlocks() []*BasicBlock {
	out := append([]*BasicBlock(nil), l.Blocks...)
	for _, c := range l.Children {
		out = append(out, c.AllBlocks()...)
	}
	return out
}

// ExecNode is a node of the structured execution tree the interpreter
// walks. Lowering produces one tree per procedure whose leaves reference
// the CFG blocks, so interpretation and CFG-based analysis agree exactly on
// block execution counts.
type ExecNode interface{ execNode() }

// ExecBlock executes one basic block's instructions.
type ExecBlock struct{ Block *BasicBlock }

// ExecLoop executes Body Count times. Header is counted once per iteration
// test (Count+1 times per entry).
type ExecLoop struct {
	Loop  *Loop
	Count int64
	Body  []ExecNode
}

// ExecIf draws against Prob; Cond is counted every execution, Join once per
// execution after the taken arm.
type ExecIf struct {
	Prob       float64
	Cond, Join *BasicBlock
	Then, Else []ExecNode
}

func (*ExecBlock) execNode() {}
func (*ExecLoop) execNode()  {}
func (*ExecIf) execNode()    {}

// Procedure is a single function: a structured body plus, after lowering,
// its CFG, loop nest and execution tree.
type Procedure struct {
	Name string
	// Body is the structured AST the builder produced.
	Body []Stmt
	// Blocks is the lowered CFG in creation order; Blocks[0] is the entry.
	Blocks []*BasicBlock
	// Entry and Exit delimit the CFG.
	Entry, Exit *BasicBlock
	// Loops lists all loops preorder (outer before inner).
	Loops []*Loop
	// Tree is the structured execution tree for the interpreter.
	Tree []ExecNode

	program *Program
}

// Program returns the owning program.
func (pr *Procedure) Program() *Program { return pr.program }

package ir

import "fmt"

// Builder constructs a procedure's structured body with a fluent API.
// Workload definitions (internal/workload) and tests use it to write
// kernel-style code compactly:
//
//	b := prog.NewProc("vfs_lookup")
//	b.Lock(vnode, "v_lock", Param(0))
//	b.Read(vnode, "v_count", Param(0))
//	b.Loop(64, func(b *Builder) {
//		b.Read(dirent, "d_name", LoopVar())
//	})
//	b.Unlock(vnode, "v_lock", Param(0))
//	b.Done()
type Builder struct {
	proc  *Procedure
	stack []*[]Stmt // innermost statement list last
	done  bool
}

// NewProc starts building a procedure registered with the program.
func (p *Program) NewProc(name string) *Builder {
	p.mustMutable()
	pr := &Procedure{Name: name, program: p}
	p.addProc(pr)
	b := &Builder{proc: pr}
	b.stack = append(b.stack, &pr.Body)
	return b
}

func (b *Builder) emit(s Stmt) *Builder {
	if b.done {
		panic("ir: builder used after Done")
	}
	top := b.stack[len(b.stack)-1]
	*top = append(*top, s)
	return b
}

func (b *Builder) fieldIndex(st *StructType, field string) int {
	i := st.FieldIndex(field)
	if i < 0 {
		panic(fmt.Sprintf("ir: struct %s has no field %q", st.Name, field))
	}
	return i
}

// Read emits a load of st.field on the given instance.
func (b *Builder) Read(st *StructType, field string, inst InstExpr) *Builder {
	return b.emit(&AccessStmt{Struct: st, Field: b.fieldIndex(st, field), Acc: Read, Inst: inst})
}

// Write emits a store to st.field on the given instance.
func (b *Builder) Write(st *StructType, field string, inst InstExpr) *Builder {
	return b.emit(&AccessStmt{Struct: st, Field: b.fieldIndex(st, field), Acc: Write, Inst: inst})
}

// ReadI and WriteI are index-based variants for generated code that loops
// over field indices.

// ReadI emits a load of field index fi.
func (b *Builder) ReadI(st *StructType, fi int, inst InstExpr) *Builder {
	b.checkIndex(st, fi)
	return b.emit(&AccessStmt{Struct: st, Field: fi, Acc: Read, Inst: inst})
}

// WriteI emits a store to field index fi.
func (b *Builder) WriteI(st *StructType, fi int, inst InstExpr) *Builder {
	b.checkIndex(st, fi)
	return b.emit(&AccessStmt{Struct: st, Field: fi, Acc: Write, Inst: inst})
}

func (b *Builder) checkIndex(st *StructType, fi int) {
	if fi < 0 || fi >= len(st.Fields) {
		panic(fmt.Sprintf("ir: struct %s: field index %d out of range", st.Name, fi))
	}
}

// Lock emits an acquire of the spinlock stored in st.field.
func (b *Builder) Lock(st *StructType, field string, inst InstExpr) *Builder {
	return b.emit(&LockStmt{Struct: st, Field: b.fieldIndex(st, field), Inst: inst})
}

// Unlock emits a release of the spinlock stored in st.field.
func (b *Builder) Unlock(st *StructType, field string, inst InstExpr) *Builder {
	return b.emit(&UnlockStmt{Struct: st, Field: b.fieldIndex(st, field), Inst: inst})
}

// MemSweep emits a sequential region access (streaming traffic) with the
// given stride.
func (b *Builder) MemSweep(region string, acc AccessKind, stride int64) *Builder {
	b.checkRegion(region)
	return b.emit(&MemStmt{Region: region, Acc: acc, Pattern: MemSeq, Stride: stride})
}

// MemAt emits an access to a fixed offset within a region.
func (b *Builder) MemAt(region string, acc AccessKind, offset int64) *Builder {
	b.checkRegion(region)
	return b.emit(&MemStmt{Region: region, Acc: acc, Pattern: MemFixed, Offset: offset})
}

// MemRandom emits an access to a pseudo-random offset within a region.
func (b *Builder) MemRandom(region string, acc AccessKind) *Builder {
	b.checkRegion(region)
	return b.emit(&MemStmt{Region: region, Acc: acc, Pattern: MemRand})
}

func (b *Builder) checkRegion(region string) {
	if b.proc.program.Region(region) == nil {
		panic(fmt.Sprintf("ir: undefined region %q", region))
	}
}

// Compute emits a pure-compute delay of the given cycles.
func (b *Builder) Compute(cycles int64) *Builder {
	if cycles <= 0 {
		panic("ir: Compute requires positive cycles")
	}
	return b.emit(&ComputeStmt{Cycles: cycles})
}

// Call emits a call to the named procedure (resolved at Finalize).
func (b *Builder) Call(callee string) *Builder {
	return b.emit(&CallStmt{Callee: callee})
}

// Spawn emits a fork of the named procedure as a child task with the
// given handle, CPU and parameter vector. Valid only at the top level of
// a procedure body (Finalize enforces the discipline).
func (b *Builder) Spawn(handle string, cpu int, callee string, params ...int) *Builder {
	return b.emit(&SpawnStmt{Handle: handle, CPU: cpu, Callee: callee, Params: params})
}

// Join emits a wait for the spawn named handle.
func (b *Builder) Join(handle string) *Builder {
	return b.emit(&JoinStmt{Handle: handle})
}

// Send emits a rendezvous send on the named channel.
func (b *Builder) Send(ch string) *Builder {
	return b.emit(&SendStmt{Chan: ch})
}

// Recv emits a rendezvous receive on the named channel.
func (b *Builder) Recv(ch string) *Builder {
	return b.emit(&RecvStmt{Chan: ch})
}

// Loop emits a counted loop; body statements are built inside fn.
func (b *Builder) Loop(count int64, fn func(*Builder)) *Builder {
	if count < 0 {
		panic("ir: negative loop count")
	}
	l := &LoopStmt{Count: count}
	b.emit(l)
	b.stack = append(b.stack, &l.Body)
	fn(b)
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// If emits a probabilistic branch taken with probability p.
func (b *Builder) If(p float64, then func(*Builder)) *Builder {
	return b.IfElse(p, then, nil)
}

// IfElse emits a probabilistic branch with both arms.
func (b *Builder) IfElse(p float64, then, els func(*Builder)) *Builder {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("ir: branch probability %v out of [0,1]", p))
	}
	s := &IfStmt{Prob: p}
	b.emit(s)
	b.stack = append(b.stack, &s.Then)
	then(b)
	b.stack = b.stack[:len(b.stack)-1]
	if els != nil {
		b.stack = append(b.stack, &s.Else)
		els(b)
		b.stack = b.stack[:len(b.stack)-1]
	}
	return b
}

// Done finishes the procedure body. Lowering happens at Program.Finalize.
func (b *Builder) Done() *Procedure {
	if len(b.stack) != 1 {
		panic("ir: unbalanced builder nesting")
	}
	b.done = true
	return b.proc
}

// Package ir provides the compiler intermediate representation substrate used
// by the structure-layout tool chain.
//
// The paper's implementation (CGO 2007, §4) sits inside the HP-UX compiler's
// inter-procedural optimizer SYZYGY: the front end recognizes loops, records
// field accesses per basic block, and attaches source-line information that
// the sampling pipeline later maps back to code. This package reproduces the
// facts that pipeline consumes:
//
//   - record (struct) types with C-like field sizes and alignments,
//   - procedures built from a structured AST (straight-line code, counted
//     loops, probabilistic branches, calls, lock operations),
//   - a lowering pass that produces a basic-block control-flow graph with a
//     loop nest and one synthetic source line per basic block,
//   - per-instruction field-access records (read/write).
//
// The execution engine (internal/exec) interprets the same IR, so profile
// counts, PMU-style samples and the field-mapping file all refer to one
// consistent program representation.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// AccessKind distinguishes reads from writes. The distinction matters twice
// in the paper: CycleGain treats a store target as worthless (store misses
// do not stall the pipeline, §2), and CycleLoss requires at least one of the
// two concurrent accesses to be a write (§3.2).
type AccessKind uint8

const (
	// Read is a load of a field or memory location.
	Read AccessKind = iota
	// Write is a store to a field or memory location.
	Write
)

// String returns "R" for reads and "W" for writes.
func (k AccessKind) String() string {
	if k == Write {
		return "W"
	}
	return "R"
}

// Field is one member of a record type. Size and Align are in bytes and
// follow C layout rules; the concrete offset of a field is a property of a
// layout (internal/layout), not of the type, because the whole point of the
// tool is to re-derive offsets.
type Field struct {
	Name  string
	Size  int
	Align int
}

// StructType is a record type whose field order the tool may permute.
// Fields are identified by their index into Fields; that index is stable
// across layouts (layouts map field index to offset).
type StructType struct {
	Name   string
	Fields []Field
}

// NewStruct returns a struct type with the given fields. It panics on
// malformed field descriptors (zero sizes, non-power-of-two alignment,
// duplicate names) because struct definitions are program text, not input
// data.
func NewStruct(name string, fields ...Field) *StructType {
	st := &StructType{Name: name, Fields: fields}
	seen := make(map[string]bool, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			panic(fmt.Sprintf("ir: struct %s: field %d has empty name", name, i))
		}
		if f.Size <= 0 {
			panic(fmt.Sprintf("ir: struct %s: field %s has size %d", name, f.Name, f.Size))
		}
		if f.Align <= 0 || f.Align&(f.Align-1) != 0 {
			panic(fmt.Sprintf("ir: struct %s: field %s has alignment %d", name, f.Name, f.Align))
		}
		if seen[f.Name] {
			panic(fmt.Sprintf("ir: struct %s: duplicate field %s", name, f.Name))
		}
		seen[f.Name] = true
	}
	return st
}

// NumFields returns the number of fields in the struct.
func (s *StructType) NumFields() int { return len(s.Fields) }

// FieldIndex returns the index of the named field, or -1 if absent.
func (s *StructType) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// MinBytes returns the sum of all field sizes: the size of the densest
// possible packing, ignoring alignment padding. Useful as a lower bound when
// sizing cache-line budgets.
func (s *StructType) MinBytes() int {
	n := 0
	for _, f := range s.Fields {
		n += f.Size
	}
	return n
}

// MaxAlign returns the largest field alignment in the struct.
func (s *StructType) MaxAlign() int {
	a := 1
	for _, f := range s.Fields {
		if f.Align > a {
			a = f.Align
		}
	}
	return a
}

// String returns the struct name.
func (s *StructType) String() string { return s.Name }

// Dump renders the struct type in a C-like syntax, fields in declaration
// order, for reports and golden tests.
func (s *StructType) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s {\n", s.Name)
	for _, f := range s.Fields {
		fmt.Fprintf(&b, "\t%-24s // size=%d align=%d\n", f.Name+";", f.Size, f.Align)
	}
	b.WriteString("}\n")
	return b.String()
}

// Common field constructors for C scalar types, so workload definitions read
// like the kernel headers they imitate.

// I8 declares a 1-byte signed integer field.
func I8(name string) Field { return Field{Name: name, Size: 1, Align: 1} }

// I16 declares a 2-byte integer field.
func I16(name string) Field { return Field{Name: name, Size: 2, Align: 2} }

// I32 declares a 4-byte integer field.
func I32(name string) Field { return Field{Name: name, Size: 4, Align: 4} }

// I64 declares an 8-byte integer field.
func I64(name string) Field { return Field{Name: name, Size: 8, Align: 8} }

// Ptr declares an 8-byte pointer field (the paper's machines are 64-bit).
func Ptr(name string) Field { return Field{Name: name, Size: 8, Align: 8} }

// Pad declares an explicitly named padding/reserved field of n bytes.
func Pad(name string, n int) Field { return Field{Name: name, Size: n, Align: 1} }

// Arr declares an embedded array field of n elements of elemSize bytes.
func Arr(name string, n, elemSize, align int) Field {
	return Field{Name: name, Size: n * elemSize, Align: align}
}

// SourceLine identifies a line of (synthetic) source code. The lowering pass
// assigns one line per basic block; sampling and the field-mapping file key
// on these, mirroring the paper's IP-to-source correlation step (§4.3).
type SourceLine struct {
	File string
	Line int
}

// String renders file:line.
func (l SourceLine) String() string { return fmt.Sprintf("%s:%d", l.File, l.Line) }

// Less orders source lines by file, then line, for deterministic reports.
func (l SourceLine) Less(o SourceLine) bool {
	if l.File != o.File {
		return l.File < o.File
	}
	return l.Line < o.Line
}

// Program is a whole multithreaded program: record types, memory regions,
// and procedures. Programs are immutable once built (Finalize freezes them).
type Program struct {
	Name    string
	Structs []*StructType
	Regions []*Region
	Procs   []*Procedure

	structByName map[string]*StructType
	procByName   map[string]*Procedure
	regionByName map[string]*Region
	blocks       []*BasicBlock // all blocks, indexed by global BlockID
	loops        []*Loop       // all loops, indexed by global loop ID
	finalized    bool
}

// Region is a non-record memory area used to model the rest of the
// program's memory traffic: private scratch space, shared tables, big
// streaming buffers. Regions are what make MemoryDistance (§2) real in the
// simulator: a loop sweeping a large region evicts cached struct lines.
type Region struct {
	Name  string
	Bytes int64
	// PerThread gives each thread its own copy of the region (stack-like or
	// per-CPU data); otherwise the region is shared by all threads.
	PerThread bool
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{
		Name:         name,
		structByName: make(map[string]*StructType),
		procByName:   make(map[string]*Procedure),
		regionByName: make(map[string]*Region),
	}
}

// AddStruct registers a record type with the program.
func (p *Program) AddStruct(s *StructType) {
	p.mustMutable()
	if _, dup := p.structByName[s.Name]; dup {
		panic("ir: duplicate struct " + s.Name)
	}
	p.structByName[s.Name] = s
	p.Structs = append(p.Structs, s)
}

// AddRegion registers a memory region with the program.
func (p *Program) AddRegion(name string, bytes int64, perThread bool) *Region {
	p.mustMutable()
	if _, dup := p.regionByName[name]; dup {
		panic("ir: duplicate region " + name)
	}
	r := &Region{Name: name, Bytes: bytes, PerThread: perThread}
	p.regionByName[name] = r
	p.Regions = append(p.Regions, r)
	return r
}

// Struct returns the named struct type, or nil.
func (p *Program) Struct(name string) *StructType { return p.structByName[name] }

// Proc returns the named procedure, or nil.
func (p *Program) Proc(name string) *Procedure { return p.procByName[name] }

// Region returns the named region, or nil.
func (p *Program) Region(name string) *Region { return p.regionByName[name] }

// Blocks returns all basic blocks in the program indexed by global BlockID.
// Only valid after Finalize.
func (p *Program) Blocks() []*BasicBlock { return p.blocks }

// NumBlocks returns the number of basic blocks in the finalized program.
func (p *Program) NumBlocks() int { return len(p.blocks) }

// Block returns the block with the given global ID.
func (p *Program) Block(id BlockID) *BasicBlock { return p.blocks[id] }

// Loops returns all loops in the program indexed by global loop ID.
// Only valid after Finalize.
func (p *Program) Loops() []*Loop { return p.loops }

// NumLoops returns the number of loops in the finalized program.
func (p *Program) NumLoops() int { return len(p.loops) }

func (p *Program) addProc(pr *Procedure) {
	p.mustMutable()
	if _, dup := p.procByName[pr.Name]; dup {
		panic("ir: duplicate procedure " + pr.Name)
	}
	p.procByName[pr.Name] = pr
	p.Procs = append(p.Procs, pr)
}

func (p *Program) mustMutable() {
	if p.finalized {
		panic("ir: program already finalized")
	}
}

// Finalize lowers every procedure to its CFG, assigns global block IDs and
// source lines, resolves call targets, and validates the result. After
// Finalize the program is immutable.
func (p *Program) Finalize() error {
	if p.finalized {
		return nil
	}
	if err := p.checkSyncStmts(); err != nil {
		return err
	}
	// Deterministic order: procedures in registration order.
	nextLine := 1
	for _, pr := range p.Procs {
		if err := pr.lower(p, &nextLine); err != nil {
			return fmt.Errorf("ir: lowering %s: %w", pr.Name, err)
		}
		for _, b := range pr.Blocks {
			b.Global = BlockID(len(p.blocks))
			p.blocks = append(p.blocks, b)
		}
		for _, l := range pr.Loops {
			l.Global = len(p.loops)
			p.loops = append(p.loops, l)
		}
	}
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			for _, in := range b.Instrs {
				if in.Op == OpCall {
					if p.procByName[in.Callee] == nil {
						return fmt.Errorf("ir: %s calls undefined procedure %q", pr.Name, in.Callee)
					}
				}
				if in.Op == OpSpawn {
					if p.procByName[in.Callee] == nil {
						return fmt.Errorf("ir: %s spawns undefined procedure %q", pr.Name, in.Callee)
					}
				}
			}
		}
	}
	if err := p.validate(); err != nil {
		return err
	}
	p.finalized = true
	return nil
}

// checkSyncStmts enforces the structural discipline of the fork/join
// skeleton before lowering (on the builder AST, where top-level-ness is
// still visible):
//
//   - sync statements (spawn/join/send/recv) appear only at the top level
//     of a procedure body — never inside a loop or branch, which would
//     make the number of fork/join events per execution data-dependent;
//   - spawn handles are unique per procedure, each join names an earlier
//     spawn in the same body, and a handle is joined at most once;
//   - a procedure containing sync statements is a task entry and must
//     never be the target of a call (from anywhere).
//
// Together with the acyclicity check in checkCallGraph (which also walks
// spawn edges) this keeps the task graph a statically known
// series-parallel DAG — the property the happens-before analysis and the
// exhaustive interleaving harness both rely on.
func (p *Program) checkSyncStmts() error {
	isSync := func(s Stmt) bool {
		switch s.(type) {
		case *SpawnStmt, *JoinStmt, *SendStmt, *RecvStmt:
			return true
		}
		return false
	}
	var nestedSync func(stmts []Stmt) Stmt
	nestedSync = func(stmts []Stmt) Stmt {
		for _, s := range stmts {
			if isSync(s) {
				return s
			}
			switch s := s.(type) {
			case *LoopStmt:
				if bad := nestedSync(s.Body); bad != nil {
					return bad
				}
			case *IfStmt:
				if bad := nestedSync(s.Then); bad != nil {
					return bad
				}
				if bad := nestedSync(s.Else); bad != nil {
					return bad
				}
			}
		}
		return nil
	}
	syncProcs := make(map[string]bool)
	for _, pr := range p.Procs {
		spawned := make(map[string]bool) // handle -> declared
		joined := make(map[string]bool)
		hasSync := false
		for _, s := range pr.Body {
			switch s := s.(type) {
			case *SpawnStmt:
				hasSync = true
				if s.Handle == "" {
					return fmt.Errorf("ir: %s: spawn with empty handle", pr.Name)
				}
				if spawned[s.Handle] {
					return fmt.Errorf("ir: %s: duplicate spawn handle %q", pr.Name, s.Handle)
				}
				spawned[s.Handle] = true
			case *JoinStmt:
				hasSync = true
				if !spawned[s.Handle] {
					return fmt.Errorf("ir: %s: join %q does not follow a spawn of that handle", pr.Name, s.Handle)
				}
				if joined[s.Handle] {
					return fmt.Errorf("ir: %s: handle %q joined twice", pr.Name, s.Handle)
				}
				joined[s.Handle] = true
			case *SendStmt, *RecvStmt:
				hasSync = true
			case *LoopStmt:
				if bad := nestedSync(s.Body); bad != nil {
					return fmt.Errorf("ir: %s: sync statement %T nested inside a loop (sync is top-level only)", pr.Name, bad)
				}
			case *IfStmt:
				if bad := nestedSync(append(append([]Stmt{}, s.Then...), s.Else...)); bad != nil {
					return fmt.Errorf("ir: %s: sync statement %T nested inside a branch (sync is top-level only)", pr.Name, bad)
				}
			}
		}
		if hasSync {
			syncProcs[pr.Name] = true
		}
	}
	if len(syncProcs) == 0 {
		return nil
	}
	var calledSync func(pr *Procedure, stmts []Stmt) error
	calledSync = func(pr *Procedure, stmts []Stmt) error {
		for _, s := range stmts {
			switch s := s.(type) {
			case *CallStmt:
				if syncProcs[s.Callee] {
					return fmt.Errorf("ir: %s calls %s, which contains sync statements (task entries must not be called)", pr.Name, s.Callee)
				}
			case *LoopStmt:
				if err := calledSync(pr, s.Body); err != nil {
					return err
				}
			case *IfStmt:
				if err := calledSync(pr, s.Then); err != nil {
					return err
				}
				if err := calledSync(pr, s.Else); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, pr := range p.Procs {
		if err := calledSync(pr, pr.Body); err != nil {
			return err
		}
	}
	return nil
}

// MustFinalize is Finalize that panics on error, for statically known-good
// programs built in tests and workload definitions.
func (p *Program) MustFinalize() *Program {
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

// LineTable returns a map from source line to the basic block it belongs to.
// This is the inverse of the per-block line assignment and stands in for the
// binary's source-correlation tables that the paper's external script uses.
func (p *Program) LineTable() map[SourceLine]*BasicBlock {
	t := make(map[SourceLine]*BasicBlock, len(p.blocks))
	for _, b := range p.blocks {
		t[b.Line] = b
	}
	return t
}

// StructsSorted returns the program's structs sorted by name, for stable
// iteration in reports.
func (p *Program) StructsSorted() []*StructType {
	out := append([]*StructType(nil), p.Structs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

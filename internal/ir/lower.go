package ir

import "fmt"

// lowerer carries the shared state of one procedure's lowering.
type lowerer struct {
	proc     *Procedure
	file     string
	nextLine *int
	loops    []*Loop // loop stack, innermost last
}

// lower converts the structured body into a CFG, loop nest and execution
// tree. Called by Program.Finalize.
func (pr *Procedure) lower(p *Program, nextLine *int) error {
	if pr.Blocks != nil {
		return fmt.Errorf("procedure %s lowered twice", pr.Name)
	}
	lo := &lowerer{proc: pr, file: pr.Name + ".c", nextLine: nextLine}

	pr.Entry = lo.newBlock(true)
	entry, exitBlk, nodes, err := lo.lowerList(pr.Body, pr.Entry)
	if err != nil {
		return err
	}
	pr.Exit = lo.newBlock(true)
	// entry == pr.Entry when the body is empty; otherwise the first body
	// block was linked from pr.Entry inside lowerList.
	_ = entry
	lo.edge(exitBlk, pr.Exit)

	pr.Tree = make([]ExecNode, 0, len(nodes)+2)
	pr.Tree = append(pr.Tree, &ExecBlock{Block: pr.Entry})
	pr.Tree = append(pr.Tree, nodes...)
	pr.Tree = append(pr.Tree, &ExecBlock{Block: pr.Exit})
	return nil
}

func (lo *lowerer) newBlock(synthetic bool) *BasicBlock {
	var innermost *Loop
	if n := len(lo.loops); n > 0 {
		innermost = lo.loops[n-1]
	}
	b := &BasicBlock{
		Index:     len(lo.proc.Blocks),
		Proc:      lo.proc,
		Loop:      innermost,
		Line:      SourceLine{File: lo.file, Line: *lo.nextLine},
		Synthetic: synthetic,
	}
	*lo.nextLine++
	lo.proc.Blocks = append(lo.proc.Blocks, b)
	if innermost != nil {
		innermost.Blocks = append(innermost.Blocks, b)
	}
	return b
}

func (lo *lowerer) edge(from, to *BasicBlock) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// syncBlock lowers one sync statement (spawn/join/send/recv) into a
// dedicated straight-line block holding exactly that instruction. The
// dedicated block gives the happens-before layer a crisp boundary: every
// block of the procedure lies entirely before or entirely after each
// synchronization point.
func (lo *lowerer) syncBlock(last, open **BasicBlock, nodes *[]ExecNode, in Instr) {
	*open = nil
	b := lo.newBlock(false)
	b.Instrs = append(b.Instrs, in)
	lo.edge(*last, b)
	*last = b
	*nodes = append(*nodes, &ExecBlock{Block: b})
}

// lowerList lowers a statement list. last is the block that falls through
// into the list; the returned exit is the block that falls through out of
// it (== last for an empty list).
func (lo *lowerer) lowerList(stmts []Stmt, last *BasicBlock) (entry, exit *BasicBlock, nodes []ExecNode, err error) {
	entry = last
	var open *BasicBlock // current straight-line block accepting instructions

	ensureOpen := func() *BasicBlock {
		if open == nil {
			b := lo.newBlock(false)
			lo.edge(last, b)
			last = b
			open = b
			nodes = append(nodes, &ExecBlock{Block: b})
		}
		return open
	}

	for _, s := range stmts {
		switch s := s.(type) {
		case *AccessStmt:
			b := ensureOpen()
			b.Instrs = append(b.Instrs, Instr{Op: OpField, Struct: s.Struct, Field: s.Field, Acc: s.Acc, Inst: s.Inst})
		case *MemStmt:
			b := ensureOpen()
			b.Instrs = append(b.Instrs, Instr{Op: OpMem, Acc: s.Acc, Region: s.Region, Pattern: s.Pattern, Stride: s.Stride, Offset: s.Offset})
		case *ComputeStmt:
			b := ensureOpen()
			b.Instrs = append(b.Instrs, Instr{Op: OpCompute, Cycles: s.Cycles})
		case *LockStmt:
			b := ensureOpen()
			b.Instrs = append(b.Instrs, Instr{Op: OpLock, Struct: s.Struct, Field: s.Field, Acc: Write, Inst: s.Inst})
		case *UnlockStmt:
			b := ensureOpen()
			b.Instrs = append(b.Instrs, Instr{Op: OpUnlock, Struct: s.Struct, Field: s.Field, Acc: Write, Inst: s.Inst})
		case *CallStmt:
			b := ensureOpen()
			b.Instrs = append(b.Instrs, Instr{Op: OpCall, Callee: s.Callee})
		case *SpawnStmt:
			lo.syncBlock(&last, &open, &nodes, Instr{Op: OpSpawn, Handle: s.Handle, Callee: s.Callee, SpawnCPU: s.CPU, SpawnParams: s.Params})
		case *JoinStmt:
			lo.syncBlock(&last, &open, &nodes, Instr{Op: OpJoin, Handle: s.Handle})
		case *SendStmt:
			lo.syncBlock(&last, &open, &nodes, Instr{Op: OpSend, Chan: s.Chan})
		case *RecvStmt:
			lo.syncBlock(&last, &open, &nodes, Instr{Op: OpRecv, Chan: s.Chan})
		case *LoopStmt:
			if len(s.Body) == 0 {
				return nil, nil, nil, fmt.Errorf("empty loop body in %s", lo.proc.Name)
			}
			open = nil
			var parent *Loop
			if n := len(lo.loops); n > 0 {
				parent = lo.loops[n-1]
			}
			loop := &Loop{
				Index:     len(lo.proc.Loops),
				Proc:      lo.proc,
				Parent:    parent,
				Depth:     len(lo.loops) + 1,
				TripCount: s.Count,
				stmt:      s,
			}
			lo.proc.Loops = append(lo.proc.Loops, loop)
			if parent != nil {
				parent.Children = append(parent.Children, loop)
			}
			lo.loops = append(lo.loops, loop)
			header := lo.newBlock(true)
			loop.Header = header
			lo.edge(last, header)
			_, bodyExit, bodyNodes, berr := lo.lowerList(s.Body, header)
			if berr != nil {
				return nil, nil, nil, berr
			}
			lo.edge(bodyExit, header) // back edge
			lo.loops = lo.loops[:len(lo.loops)-1]
			last = header
			nodes = append(nodes, &ExecLoop{Loop: loop, Count: s.Count, Body: bodyNodes})
		case *IfStmt:
			open = nil
			cond := lo.newBlock(true)
			lo.edge(last, cond)
			_, thenExit, thenNodes, terr := lo.lowerList(s.Then, cond)
			if terr != nil {
				return nil, nil, nil, terr
			}
			_, elseExit, elseNodes, eerr := lo.lowerList(s.Else, cond)
			if eerr != nil {
				return nil, nil, nil, eerr
			}
			join := lo.newBlock(true)
			if thenExit == cond && elseExit == cond {
				// Both arms empty: single fallthrough edge.
				lo.edge(cond, join)
			} else {
				lo.edge(thenExit, join)
				if elseExit != thenExit {
					lo.edge(elseExit, join)
				}
			}
			last = join
			nodes = append(nodes, &ExecIf{Prob: s.Prob, Cond: cond, Join: join, Then: thenNodes, Else: elseNodes})
		default:
			return nil, nil, nil, fmt.Errorf("unknown statement type %T in %s", s, lo.proc.Name)
		}
	}
	return entry, last, nodes, nil
}

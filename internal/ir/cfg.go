package ir

import "sort"

// This file implements classic CFG analyses — reverse postorder, dominator
// computation and natural-loop detection — over the lowered graphs. The
// structured lowering already records the loop nest, so these analyses serve
// two purposes: they cross-check lowering (a natural loop must exist exactly
// where a LoopStmt was lowered; tests assert this), and they make the IR
// usable by analyses that only want to see a flat CFG, the way the paper's
// compiler front end sees code after loop recognition.

// ReversePostorder returns the procedure's blocks in reverse postorder of a
// depth-first search from the entry.
func (pr *Procedure) ReversePostorder() []*BasicBlock {
	seen := make([]bool, len(pr.Blocks))
	var post []*BasicBlock
	var dfs func(b *BasicBlock)
	dfs = func(b *BasicBlock) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(pr.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate-dominator relation with the iterative
// Cooper/Harvey/Kennedy algorithm. The result maps each reachable block to
// its immediate dominator; the entry maps to itself.
func (pr *Procedure) Dominators() map[*BasicBlock]*BasicBlock {
	rpo := pr.ReversePostorder()
	order := make(map[*BasicBlock]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}
	idom := make(map[*BasicBlock]*BasicBlock, len(rpo))
	idom[pr.Entry] = pr.Entry

	intersect := func(a, b *BasicBlock) *BasicBlock {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == pr.Entry {
				continue
			}
			var newIdom *BasicBlock
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue // unprocessed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the given idom relation.
func Dominates(idom map[*BasicBlock]*BasicBlock, a, b *BasicBlock) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return a == b
		}
		b = next
	}
}

// NaturalLoop describes a loop discovered from the CFG alone.
type NaturalLoop struct {
	Header *BasicBlock
	// Body is the set of blocks in the loop, including the header.
	Body map[*BasicBlock]bool
}

// NaturalLoops finds all natural loops of the procedure: for every back edge
// t→h (where h dominates t), the loop body is h plus all blocks that reach t
// without passing through h. Loops sharing a header are merged. Results are
// sorted by header block index.
func (pr *Procedure) NaturalLoops() []*NaturalLoop {
	idom := pr.Dominators()
	byHeader := make(map[*BasicBlock]*NaturalLoop)
	for _, t := range pr.Blocks {
		for _, h := range t.Succs {
			if !Dominates(idom, h, t) {
				continue
			}
			nl := byHeader[h]
			if nl == nil {
				nl = &NaturalLoop{Header: h, Body: map[*BasicBlock]bool{h: true}}
				byHeader[h] = nl
			}
			// Reverse flood fill from t, stopping at h.
			stack := []*BasicBlock{t}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if nl.Body[b] {
					continue
				}
				nl.Body[b] = true
				stack = append(stack, b.Preds...)
			}
		}
	}
	out := make([]*NaturalLoop, 0, len(byHeader))
	for _, nl := range byHeader {
		out = append(out, nl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Header.Index < out[j].Header.Index })
	return out
}

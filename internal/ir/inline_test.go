package ir

import (
	"strings"
	"testing"
)

func TestInlineFlattensSmallCallee(t *testing.T) {
	p := NewProgram("inl")
	s := NewStruct("S", I64("a"), I64("b"))
	p.AddStruct(s)
	leaf := p.NewProc("leaf")
	leaf.Read(s, "b", Shared(0))
	leaf.Done()
	caller := p.NewProc("caller")
	caller.Loop(10, func(b *Builder) {
		b.Read(s, "a", Shared(0))
		b.Call("leaf")
	})
	caller.Done()

	if err := p.Inline(InlineOptions{}); err != nil {
		t.Fatal(err)
	}
	p.MustFinalize()

	// The caller's loop body block must now contain both reads directly.
	pr := p.Proc("caller")
	found := false
	for _, blk := range pr.Blocks {
		reads := 0
		for _, in := range blk.Instrs {
			if in.Op == OpField {
				reads++
			}
			if in.Op == OpCall {
				t.Fatal("call survived inlining")
			}
		}
		if reads == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reads not merged into one block:\n%s", pr.Dump())
	}
}

func TestInlineRespectsSizeBudget(t *testing.T) {
	p := NewProgram("budget")
	s := NewStruct("S", I64("a"))
	p.AddStruct(s)
	big := p.NewProc("big")
	for i := 0; i < 10; i++ {
		big.Read(s, "a", Shared(0))
	}
	big.Done()
	caller := p.NewProc("caller")
	caller.Call("big")
	caller.Done()

	if err := p.Inline(InlineOptions{MaxStmts: 5}); err != nil {
		t.Fatal(err)
	}
	p.MustFinalize()
	d := p.Proc("caller").Dump()
	if !strings.Contains(d, "call big") {
		t.Fatalf("oversized callee was inlined:\n%s", d)
	}
}

func TestInlineTransitive(t *testing.T) {
	p := NewProgram("chain")
	s := NewStruct("S", I64("a"))
	p.AddStruct(s)
	c := p.NewProc("c")
	c.Read(s, "a", Shared(0))
	c.Done()
	b := p.NewProc("b")
	b.Call("c")
	b.Done()
	a := p.NewProc("a")
	a.Call("b")
	a.Done()

	if err := p.Inline(InlineOptions{MaxDepth: 3}); err != nil {
		t.Fatal(err)
	}
	p.MustFinalize()
	d := p.Proc("a").Dump()
	if strings.Contains(d, "call") {
		t.Fatalf("chain not fully flattened:\n%s", d)
	}
	if !strings.Contains(d, "R S.a") {
		t.Fatalf("leaf access missing:\n%s", d)
	}
}

func TestInlineDepthBound(t *testing.T) {
	p := NewProgram("deep")
	s := NewStruct("S", I64("a"))
	p.AddStruct(s)
	prev := "p0"
	p0 := p.NewProc(prev)
	p0.Read(s, "a", Shared(0))
	p0.Done()
	for i := 1; i <= 4; i++ {
		name := "p" + string(rune('0'+i))
		pr := p.NewProc(name)
		pr.Call(prev)
		pr.Done()
		prev = name
	}
	if err := p.Inline(InlineOptions{MaxDepth: 1}); err != nil {
		t.Fatal(err)
	}
	p.MustFinalize()
	// One round substitutes each proc's direct calls with the callee's
	// *pre-round* body, so p4 now calls p2's content... at minimum, calls
	// must still exist somewhere in the chain.
	if !strings.Contains(p.Proc("p4").Dump(), "call") {
		t.Fatal("MaxDepth=1 fully flattened a 4-deep chain")
	}
}

func TestInlineCloneIndependence(t *testing.T) {
	// The same callee inlined at two sites yields independent nodes: no
	// shared statement pointers between procs.
	p := NewProgram("share")
	s := NewStruct("S", I64("a"))
	p.AddStruct(s)
	leaf := p.NewProc("leaf")
	leaf.Loop(3, func(b *Builder) { b.Read(s, "a", Shared(0)) })
	leaf.Done()
	c1 := p.NewProc("c1")
	c1.Call("leaf")
	c1.Done()
	c2 := p.NewProc("c2")
	c2.Call("leaf")
	c2.Done()
	if err := p.Inline(InlineOptions{}); err != nil {
		t.Fatal(err)
	}
	l1 := p.Proc("c1").Body[0].(*LoopStmt)
	l2 := p.Proc("c2").Body[0].(*LoopStmt)
	if l1 == l2 || l1.Body[0] == l2.Body[0] {
		t.Fatal("inlined bodies share statement nodes")
	}
	p.MustFinalize()
}

func TestInlineUndefinedCallee(t *testing.T) {
	p := NewProgram("undef")
	pr := p.NewProc("f")
	pr.Call("ghost")
	pr.Done()
	if err := p.Inline(InlineOptions{}); err == nil {
		t.Fatal("undefined callee accepted")
	}
}

func TestInlineAfterFinalizePanics(t *testing.T) {
	p := NewProgram("late")
	pr := p.NewProc("f")
	pr.Compute(1)
	pr.Done()
	p.MustFinalize()
	defer func() {
		if recover() == nil {
			t.Fatal("Inline after Finalize did not panic")
		}
	}()
	_ = p.Inline(InlineOptions{})
}

func TestStmtCount(t *testing.T) {
	p := NewProgram("count")
	s := NewStruct("S", I64("a"))
	p.AddStruct(s)
	f := p.NewProc("f")
	f.Read(s, "a", Shared(0))    // 1
	f.Loop(2, func(b *Builder) { // 2
		b.Compute(1) // 3
		b.IfElse(0.5,
			func(b *Builder) { b.Compute(1) }, // 5 (if=4)
			func(b *Builder) { b.Compute(1) }, // 6
		)
	})
	f.Done()
	if got := StmtCount(p.Proc("f").Body); got != 6 {
		t.Fatalf("StmtCount = %d, want 6", got)
	}
}

package ir

import "fmt"

// validate checks structural invariants of the finalized program:
// every block is reachable, CFG edges are mutual, the loop nest recorded by
// lowering matches the natural loops recoverable from the CFG, and the call
// graph is acyclic (the interpreter would not terminate on recursion).
func (p *Program) validate() error {
	for _, pr := range p.Procs {
		if err := pr.validate(); err != nil {
			return fmt.Errorf("ir: %s: %w", pr.Name, err)
		}
	}
	return p.checkCallGraph()
}

func (pr *Procedure) validate() error {
	if pr.Entry == nil || pr.Exit == nil {
		return fmt.Errorf("missing entry/exit")
	}
	// Edge symmetry.
	for _, b := range pr.Blocks {
		for _, s := range b.Succs {
			if !contains(s.Preds, b) {
				return fmt.Errorf("edge %s->%s not mirrored in preds", b.Name(), s.Name())
			}
		}
		for _, pd := range b.Preds {
			if !contains(pd.Succs, b) {
				return fmt.Errorf("pred edge %s->%s not mirrored in succs", pd.Name(), b.Name())
			}
		}
		if b.Synthetic && len(b.Instrs) > 0 {
			return fmt.Errorf("synthetic block %s has instructions", b.Name())
		}
	}
	// Reachability.
	reach := make(map[*BasicBlock]bool)
	stack := []*BasicBlock{pr.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[b] {
			continue
		}
		reach[b] = true
		stack = append(stack, b.Succs...)
	}
	for _, b := range pr.Blocks {
		if !reach[b] {
			return fmt.Errorf("block %s unreachable", b.Name())
		}
	}
	// Loop nest consistency with the CFG's natural loops.
	natural := pr.NaturalLoops()
	if len(natural) != len(pr.Loops) {
		return fmt.Errorf("lowered %d loops but CFG has %d natural loops", len(pr.Loops), len(natural))
	}
	byHeader := make(map[*BasicBlock]*NaturalLoop, len(natural))
	for _, nl := range natural {
		byHeader[nl.Header] = nl
	}
	for _, l := range pr.Loops {
		nl := byHeader[l.Header]
		if nl == nil {
			return fmt.Errorf("loop %s: header %s is not a natural-loop header", l.Name(), l.Header.Name())
		}
		want := l.AllBlocks()
		if len(want) != len(nl.Body) {
			return fmt.Errorf("loop %s: lowered body has %d blocks, natural loop has %d", l.Name(), len(want), len(nl.Body))
		}
		for _, b := range want {
			if !nl.Body[b] {
				return fmt.Errorf("loop %s: block %s missing from natural loop body", l.Name(), b.Name())
			}
		}
	}
	return nil
}

// checkCallGraph rejects recursion (direct or mutual), traversing call
// and spawn edges alike: a task that (transitively) spawns its own entry
// procedure would make the fork/join skeleton infinite.
func (p *Program) checkCallGraph() error {
	const (
		white = iota
		grey
		black
	)
	color := make(map[string]int, len(p.Procs))
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		switch color[name] {
		case grey:
			return fmt.Errorf("ir: recursive call cycle: %v -> %s", path, name)
		case black:
			return nil
		}
		color[name] = grey
		pr := p.procByName[name]
		for _, b := range pr.Blocks {
			for _, in := range b.Instrs {
				if in.Op == OpCall || in.Op == OpSpawn {
					if err := visit(in.Callee, append(path, name)); err != nil {
						return err
					}
				}
			}
		}
		color[name] = black
		return nil
	}
	for _, pr := range p.Procs {
		if err := visit(pr.Name, nil); err != nil {
			return err
		}
	}
	return nil
}

func contains(bs []*BasicBlock, b *BasicBlock) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

package ir

import (
	"fmt"
	"strings"
)

// Dump renders the lowered program for debugging and golden tests: each
// procedure's blocks with line numbers, loop depth, instructions and edges.
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, s := range p.Structs {
		b.WriteString(s.Dump())
	}
	for _, r := range p.Regions {
		scope := "shared"
		if r.PerThread {
			scope = "per-thread"
		}
		fmt.Fprintf(&b, "region %s [%d bytes, %s]\n", r.Name, r.Bytes, scope)
	}
	for _, pr := range p.Procs {
		b.WriteString(pr.Dump())
	}
	return b.String()
}

// Dump renders one procedure's CFG.
func (pr *Procedure) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "proc %s (entry=#%d exit=#%d)\n", pr.Name, pr.Entry.Index, pr.Exit.Index)
	for _, blk := range pr.Blocks {
		tags := ""
		if blk.Synthetic {
			tags += " synthetic"
		}
		if blk.Loop != nil {
			tags += fmt.Sprintf(" loop=%s depth=%d", blk.Loop.Name(), blk.Loop.Depth)
		}
		fmt.Fprintf(&b, "  #%d line=%s%s ->%s\n", blk.Index, blk.Line, tags, succList(blk))
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "    %s\n", in)
		}
	}
	for _, l := range pr.Loops {
		fmt.Fprintf(&b, "  loop %s header=#%d trip=%d blocks=%d\n", l.Name(), l.Header.Index, l.TripCount, len(l.Blocks))
	}
	return b.String()
}

func succList(b *BasicBlock) string {
	if len(b.Succs) == 0 {
		return " (none)"
	}
	var sb strings.Builder
	for _, s := range b.Succs {
		fmt.Fprintf(&sb, " #%d", s.Index)
	}
	return sb.String()
}

package ir

import (
	"strings"
	"testing"
)

func figure4Struct() *StructType {
	return NewStruct("S", I64("f1"), I64("f2"), I64("f3"))
}

// figure4Program builds the paper's Figure 4 snippet:
//
//	S.f1 = ; S.f2 = ;
//	for i in 0..N { S.f3 = ; = S.f3 + S.f1; = S.f3 }
func figure4Program(n int64) *Program {
	p := NewProgram("fig4")
	s := figure4Struct()
	p.AddStruct(s)
	b := p.NewProc("snippet")
	b.Write(s, "f1", Shared(0))
	b.Write(s, "f2", Shared(0))
	b.Loop(n, func(b *Builder) {
		b.Write(s, "f3", Shared(0))
		b.Read(s, "f3", Shared(0))
		b.Read(s, "f1", Shared(0))
		b.Read(s, "f3", Shared(0))
	})
	b.Done()
	return p.MustFinalize()
}

func TestStructConstruction(t *testing.T) {
	s := NewStruct("T", I8("a"), I16("b"), I32("c"), I64("d"), Ptr("p"), Pad("pad", 3), Arr("arr", 4, 8, 8))
	if got := s.NumFields(); got != 7 {
		t.Fatalf("NumFields = %d, want 7", got)
	}
	if got := s.MinBytes(); got != 1+2+4+8+8+3+32 {
		t.Fatalf("MinBytes = %d", got)
	}
	if got := s.MaxAlign(); got != 8 {
		t.Fatalf("MaxAlign = %d, want 8", got)
	}
	if got := s.FieldIndex("d"); got != 3 {
		t.Fatalf("FieldIndex(d) = %d, want 3", got)
	}
	if got := s.FieldIndex("nope"); got != -1 {
		t.Fatalf("FieldIndex(nope) = %d, want -1", got)
	}
	if !strings.Contains(s.Dump(), "size=8 align=8") {
		t.Fatalf("Dump missing field info:\n%s", s.Dump())
	}
}

func TestStructPanics(t *testing.T) {
	cases := []struct {
		name   string
		fields []Field
	}{
		{"empty name", []Field{{Name: "", Size: 4, Align: 4}}},
		{"zero size", []Field{{Name: "x", Size: 0, Align: 4}}},
		{"bad align", []Field{{Name: "x", Size: 4, Align: 3}}},
		{"zero align", []Field{{Name: "x", Size: 4, Align: 0}}},
		{"duplicate", []Field{I32("x"), I32("x")}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewStruct(%s) did not panic", c.name)
				}
			}()
			NewStruct("bad", c.fields...)
		})
	}
}

func TestFigure4Lowering(t *testing.T) {
	p := figure4Program(100)
	pr := p.Proc("snippet")
	if pr == nil {
		t.Fatal("procedure missing")
	}
	if len(pr.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(pr.Loops))
	}
	l := pr.Loops[0]
	if l.TripCount != 100 || l.Depth != 1 {
		t.Fatalf("loop trip=%d depth=%d", l.TripCount, l.Depth)
	}
	// Straight-line block before the loop holds the two stores.
	var pre *BasicBlock
	for _, b := range pr.Blocks {
		if !b.Synthetic && b.Loop == nil {
			pre = b
			break
		}
	}
	if pre == nil || len(pre.Instrs) != 2 {
		t.Fatalf("expected one 2-instruction straight-line block before loop, got %+v", pre)
	}
	// The loop body block holds the four accesses.
	var body *BasicBlock
	for _, b := range pr.Blocks {
		if !b.Synthetic && b.Loop == l {
			body = b
		}
	}
	if body == nil || len(body.Instrs) != 4 {
		t.Fatalf("expected one 4-instruction loop-body block")
	}
	// Back edge from body to header exists.
	found := false
	for _, s := range body.Succs {
		if s == l.Header {
			found = true
		}
	}
	if !found {
		t.Fatal("missing back edge body->header")
	}
}

func TestLinesUniqueAndTable(t *testing.T) {
	p := figure4Program(10)
	seen := make(map[SourceLine]bool)
	for _, b := range p.Blocks() {
		if seen[b.Line] {
			t.Fatalf("duplicate line %s", b.Line)
		}
		seen[b.Line] = true
	}
	table := p.LineTable()
	for _, b := range p.Blocks() {
		if table[b.Line] != b {
			t.Fatalf("line table mismatch for %s", b.Line)
		}
	}
}

func TestGlobalBlockIDs(t *testing.T) {
	p := figure4Program(10)
	for i, b := range p.Blocks() {
		if int(b.Global) != i {
			t.Fatalf("block %d has global ID %d", i, b.Global)
		}
		if p.Block(b.Global) != b {
			t.Fatalf("Block(%d) mismatch", b.Global)
		}
	}
}

func TestNestedLoopsAndNaturalLoops(t *testing.T) {
	p := NewProgram("nest")
	s := figure4Struct()
	p.AddStruct(s)
	b := p.NewProc("f")
	b.Loop(10, func(b *Builder) {
		b.Read(s, "f1", Shared(0))
		b.Loop(20, func(b *Builder) {
			b.Read(s, "f2", Shared(0))
			b.Loop(30, func(b *Builder) {
				b.Write(s, "f3", Shared(0))
			})
		})
		b.Read(s, "f3", Shared(0))
	})
	b.Done()
	p.MustFinalize() // validate() cross-checks natural loops

	pr := p.Proc("f")
	if len(pr.Loops) != 3 {
		t.Fatalf("got %d loops, want 3", len(pr.Loops))
	}
	if pr.Loops[0].Depth != 1 || pr.Loops[1].Depth != 2 || pr.Loops[2].Depth != 3 {
		t.Fatalf("depths = %d,%d,%d", pr.Loops[0].Depth, pr.Loops[1].Depth, pr.Loops[2].Depth)
	}
	if pr.Loops[1].Parent != pr.Loops[0] || pr.Loops[2].Parent != pr.Loops[1] {
		t.Fatal("parent links wrong")
	}
	nl := pr.NaturalLoops()
	if len(nl) != 3 {
		t.Fatalf("natural loops = %d, want 3", len(nl))
	}
	// Outer natural loop contains all blocks of inner loops.
	var outer *NaturalLoop
	for _, l := range nl {
		if l.Header == pr.Loops[0].Header {
			outer = l
		}
	}
	if outer == nil {
		t.Fatal("outer natural loop missing")
	}
	for _, blk := range pr.Loops[2].Blocks {
		if !outer.Body[blk] {
			t.Fatalf("inner block %s not in outer natural loop", blk.Name())
		}
	}
}

func TestIfLowering(t *testing.T) {
	p := NewProgram("branch")
	s := figure4Struct()
	p.AddStruct(s)
	b := p.NewProc("f")
	b.Read(s, "f1", Shared(0))
	b.IfElse(0.25,
		func(b *Builder) { b.Write(s, "f2", Shared(0)) },
		func(b *Builder) { b.Write(s, "f3", Shared(0)) },
	)
	b.Read(s, "f1", Shared(0))
	b.Done()
	p.MustFinalize()

	pr := p.Proc("f")
	// Find the cond block: synthetic with 2 successors.
	var cond *BasicBlock
	for _, blk := range pr.Blocks {
		if blk.Synthetic && len(blk.Succs) == 2 {
			cond = blk
		}
	}
	if cond == nil {
		t.Fatal("no 2-successor cond block found")
	}
	idom := pr.Dominators()
	for _, succ := range cond.Succs {
		if !Dominates(idom, cond, succ) {
			t.Fatalf("cond does not dominate arm %s", succ.Name())
		}
	}
	if len(pr.NaturalLoops()) != 0 {
		t.Fatal("branch-only CFG should have no natural loops")
	}
}

func TestEmptyThenArm(t *testing.T) {
	p := NewProgram("emptyif")
	s := figure4Struct()
	p.AddStruct(s)
	b := p.NewProc("f")
	b.If(0.5, func(b *Builder) {}) // both arms empty
	b.Read(s, "f1", Shared(0))
	b.Done()
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
}

func TestRecursionRejected(t *testing.T) {
	p := NewProgram("rec")
	s := figure4Struct()
	p.AddStruct(s)
	a := p.NewProc("a")
	a.Call("b")
	a.Done()
	bb := p.NewProc("b")
	bb.Call("a")
	bb.Done()
	if err := p.Finalize(); err == nil {
		t.Fatal("expected error for mutual recursion")
	}
}

func TestUndefinedCalleeRejected(t *testing.T) {
	p := NewProgram("undef")
	b := p.NewProc("f")
	b.Call("ghost")
	b.Done()
	if err := p.Finalize(); err == nil {
		t.Fatal("expected error for undefined callee")
	}
}

func TestEmptyLoopRejected(t *testing.T) {
	p := NewProgram("emptyloop")
	b := p.NewProc("f")
	b.Loop(5, func(b *Builder) {})
	b.Done()
	if err := p.Finalize(); err == nil {
		t.Fatal("expected error for empty loop body")
	}
}

func TestDumpSmoke(t *testing.T) {
	p := figure4Program(7)
	d := p.Dump()
	for _, want := range []string{"program fig4", "struct S", "proc snippet", "loop snippet$L0", "W S.f1 shared[0]"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Dump missing %q:\n%s", want, d)
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	p := NewProgram("panics")
	s := figure4Struct()
	p.AddStruct(s)

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	b := p.NewProc("f")
	mustPanic("unknown field", func() { b.Read(s, "zz", Shared(0)) })
	mustPanic("bad index", func() { b.ReadI(s, 99, Shared(0)) })
	mustPanic("bad region", func() { b.MemAt("noregion", Read, 0) })
	mustPanic("bad prob", func() { b.If(1.5, func(*Builder) {}) })
	mustPanic("bad compute", func() { b.Compute(0) })
	mustPanic("negative loop", func() { b.Loop(-1, func(*Builder) {}) })
	b.Done()
	mustPanic("after done", func() { b.Compute(1) })
}

func TestExecTreeShape(t *testing.T) {
	p := figure4Program(9)
	pr := p.Proc("snippet")
	// Tree: entry block, straight-line block, loop, exit block.
	if len(pr.Tree) != 4 {
		t.Fatalf("tree has %d nodes, want 4", len(pr.Tree))
	}
	loop, ok := pr.Tree[2].(*ExecLoop)
	if !ok {
		t.Fatalf("third node is %T, want *ExecLoop", pr.Tree[2])
	}
	if loop.Count != 9 || len(loop.Body) != 1 {
		t.Fatalf("loop count=%d body=%d", loop.Count, len(loop.Body))
	}
}

func TestInstExprString(t *testing.T) {
	cases := map[string]InstExpr{
		"shared[3]": Shared(3),
		"percpu":    PerCPU(),
		"param[2]":  Param(2),
		"loopvar":   LoopVar(),
	}
	for want, e := range cases {
		if got := e.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestRegions(t *testing.T) {
	p := NewProgram("regions")
	p.AddRegion("heap", 1<<20, false)
	p.AddRegion("stack", 1<<16, true)
	if r := p.Region("heap"); r == nil || r.PerThread {
		t.Fatal("heap region wrong")
	}
	if r := p.Region("stack"); r == nil || !r.PerThread {
		t.Fatal("stack region wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate region did not panic")
		}
	}()
	p.AddRegion("heap", 1, false)
}

// TestDominatorProperties: on arbitrary structured programs, the entry
// dominates every block and every block dominates itself; loop headers
// dominate their bodies.
func TestDominatorProperties(t *testing.T) {
	p := NewProgram("domprops")
	s := figure4Struct()
	p.AddStruct(s)
	b := p.NewProc("f")
	b.Read(s, "f1", Shared(0))
	b.IfElse(0.5,
		func(b *Builder) {
			b.Loop(3, func(b *Builder) {
				b.Write(s, "f2", Shared(0))
				b.If(0.25, func(b *Builder) { b.Read(s, "f3", Shared(0)) })
			})
		},
		func(b *Builder) { b.Compute(5) },
	)
	b.Loop(2, func(b *Builder) { b.Read(s, "f1", Shared(0)) })
	b.Done()
	p.MustFinalize()

	pr := p.Proc("f")
	idom := pr.Dominators()
	for _, blk := range pr.Blocks {
		if !Dominates(idom, pr.Entry, blk) {
			t.Fatalf("entry does not dominate %s", blk.Name())
		}
		if !Dominates(idom, blk, blk) {
			t.Fatalf("%s does not dominate itself", blk.Name())
		}
	}
	for _, l := range pr.Loops {
		for _, blk := range l.AllBlocks() {
			if !Dominates(idom, l.Header, blk) {
				t.Fatalf("loop header %s does not dominate body block %s", l.Header.Name(), blk.Name())
			}
		}
	}
	// Reverse postorder visits every block exactly once, entry first.
	rpo := pr.ReversePostorder()
	if rpo[0] != pr.Entry || len(rpo) != len(pr.Blocks) {
		t.Fatalf("RPO wrong: first=%s len=%d/%d", rpo[0].Name(), len(rpo), len(pr.Blocks))
	}
	seen := map[*BasicBlock]bool{}
	for _, blk := range rpo {
		if seen[blk] {
			t.Fatalf("RPO repeats %s", blk.Name())
		}
		seen[blk] = true
	}
}

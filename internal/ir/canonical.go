package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Canonical returns a deterministic, semantically complete serialization of
// the program, suitable for content-addressed memoization keys. Two
// programs with equal canonical forms behave identically under the
// interpreter and every analysis: the walk covers struct shapes, regions,
// and the full structured AST of every procedure — including branch
// probabilities and loop trip counts, which the CFG Dump omits.
//
// The walk is over the builder-facing AST (Procedure.Body), not the lowered
// CFG, so it works on both finalized and unfinalized programs and is
// independent of block-numbering details. Floats render via the shortest
// round-trip formatting, so distinct probabilities never collide.
func Canonical(p *Program) string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("program ")
	b.WriteString(p.Name)
	b.WriteByte('\n')
	for _, s := range p.Structs {
		fmt.Fprintf(&b, "struct %s {", s.Name)
		for _, f := range s.Fields {
			fmt.Fprintf(&b, " %s:%d:%d", f.Name, f.Size, f.Align)
		}
		b.WriteString(" }\n")
	}
	for _, r := range p.Regions {
		fmt.Fprintf(&b, "region %s %d perthread=%t\n", r.Name, r.Bytes, r.PerThread)
	}
	for _, pr := range p.Procs {
		fmt.Fprintf(&b, "proc %s {\n", pr.Name)
		canonStmts(&b, pr.Body, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func canonStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *AccessStmt:
			fmt.Fprintf(b, "%s%s %s.%d %s\n", ind, s.Acc, structName(s.Struct), s.Field, s.Inst)
		case *MemStmt:
			fmt.Fprintf(b, "%smem %s %s pat=%d stride=%d off=%d\n", ind, s.Acc, s.Region, s.Pattern, s.Stride, s.Offset)
		case *ComputeStmt:
			fmt.Fprintf(b, "%scompute %d\n", ind, s.Cycles)
		case *LockStmt:
			fmt.Fprintf(b, "%slock %s.%d %s\n", ind, structName(s.Struct), s.Field, s.Inst)
		case *UnlockStmt:
			fmt.Fprintf(b, "%sunlock %s.%d %s\n", ind, structName(s.Struct), s.Field, s.Inst)
		case *CallStmt:
			fmt.Fprintf(b, "%scall %s\n", ind, s.Callee)
		case *SpawnStmt:
			fmt.Fprintf(b, "%sspawn %s cpu=%d %s params=%v\n", ind, s.Handle, s.CPU, s.Callee, s.Params)
		case *JoinStmt:
			fmt.Fprintf(b, "%sjoin %s\n", ind, s.Handle)
		case *SendStmt:
			fmt.Fprintf(b, "%ssend %s\n", ind, s.Chan)
		case *RecvStmt:
			fmt.Fprintf(b, "%srecv %s\n", ind, s.Chan)
		case *LoopStmt:
			fmt.Fprintf(b, "%sloop %d {\n", ind, s.Count)
			canonStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *IfStmt:
			fmt.Fprintf(b, "%sif %s {\n", ind, strconv.FormatFloat(s.Prob, 'g', -1, 64))
			canonStmts(b, s.Then, depth+1)
			fmt.Fprintf(b, "%s} else {\n", ind)
			canonStmts(b, s.Else, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case nil:
			fmt.Fprintf(b, "%snil\n", ind)
		default:
			fmt.Fprintf(b, "%s?%T\n", ind, s)
		}
	}
}

func structName(s *StructType) string {
	if s == nil {
		return "<nil>"
	}
	return s.Name
}

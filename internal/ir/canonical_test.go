package ir

import (
	"strings"
	"testing"
)

func canonProg(branchProb float64, loopCount int64) *Program {
	p := NewProgram("canon")
	s := NewStruct("S", I64("a"), I64("b"))
	p.AddStruct(s)
	callee := p.NewProc("callee")
	callee.Write(s, "b", Shared(0))
	callee.Done()
	main := p.NewProc("main")
	main.Loop(loopCount, func(b *Builder) {
		b.Read(s, "a", LoopVar())
		b.IfElse(branchProb, func(b *Builder) {
			b.Lock(s, "a", Shared(0))
			b.Unlock(s, "a", Shared(0))
		}, func(b *Builder) {
			b.Compute(10)
		})
		b.Call("callee")
	})
	main.Done()
	return p.MustFinalize()
}

func TestCanonicalDeterministic(t *testing.T) {
	a := Canonical(canonProg(0.5, 10))
	b := Canonical(canonProg(0.5, 10))
	if a != b {
		t.Fatal("two identical builds serialize differently")
	}
	if a == "" {
		t.Fatal("empty serialization")
	}
	for _, want := range []string{"canon", "S", "a:8", "callee", "loop", "lock"} {
		if !strings.Contains(a, want) {
			t.Errorf("serialization missing %q:\n%s", want, a)
		}
	}
}

func TestCanonicalDistinguishesSemantics(t *testing.T) {
	base := Canonical(canonProg(0.5, 10))
	if Canonical(canonProg(0.25, 10)) == base {
		t.Error("branch probability change not reflected")
	}
	if Canonical(canonProg(0.5, 20)) == base {
		t.Error("loop count change not reflected")
	}
	// A field rename changes the struct section.
	p := NewProgram("canon")
	s := NewStruct("S", I64("a"), I64("renamed"))
	p.AddStruct(s)
	pr := p.NewProc("main")
	pr.Read(s, "a", Shared(0))
	pr.Done()
	if Canonical(p.MustFinalize()) == base {
		t.Error("structural change not reflected")
	}
}

func TestCanonicalNilSafe(t *testing.T) {
	if Canonical(nil) != "" {
		t.Error("nil program should serialize to the empty string")
	}
}

package exec

import (
	"reflect"
	"testing"

	"structlayout/internal/coherence"
	"structlayout/internal/ir"
	"structlayout/internal/machine"
	"structlayout/internal/sampling"
)

// buildMixedWorkload builds a program exercising every opcode the
// superblock fast path can see: long compute runs (merge fodder), field
// reads/writes on shared and per-CPU instances, contended locks, calls,
// region sweeps and random probes, probabilistic branches and nested
// loops.
func buildMixedWorkload(ncpu int) (*ir.Program, *ir.StructType, []string) {
	p := ir.NewProgram("mixed")
	s := ir.NewStruct("M",
		ir.I64("lock"),
		ir.I64("hot"),
		ir.I64("warm"),
		ir.I64("cold"),
	)
	p.AddStruct(s)
	p.AddRegion("buf", 16<<10, false)
	p.AddRegion("priv", 8<<10, true)

	h := p.NewProc("helper")
	h.Compute(5).Read(s, "warm", ir.Shared(0)).Compute(7).Compute(11)
	h.Done()

	names := make([]string, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		name := "mix" + string(rune('A'+cpu))
		b := p.NewProc(name)
		b.Compute(20).Compute(30).Compute(50) // merged into one superblock
		b.Loop(40, func(b *ir.Builder) {
			b.Lock(s, "lock", ir.Shared(0))
			b.Write(s, "hot", ir.Shared(0))
			b.Compute(15).Compute(25)
			b.Unlock(s, "lock", ir.Shared(0))
			b.IfElse(0.3, func(b *ir.Builder) {
				b.MemSweep("buf", ir.Write, 64)
				b.Compute(9)
			}, func(b *ir.Builder) {
				b.MemRandom("priv", ir.Read)
				b.Call("helper")
			})
			b.Read(s, "cold", ir.PerCPU())
			b.Write(s, "cold", ir.PerCPU())
		})
		b.MemAt("buf", ir.Read, 128)
		b.Done()
		names[cpu] = name
	}
	return p.MustFinalize(), s, names
}

// runMixed executes the mixed workload with the fast path on or off.
func runMixed(t *testing.T, slow bool, smp *sampling.Config) *Result {
	t.Helper()
	p, s, names := buildMixedWorkload(4)
	r, err := NewRunner(p, Config{Topo: machine.Bus4(), Cache: coherence.SmallCache(), Seed: 7, Sampling: smp})
	if err != nil {
		t.Fatal(err)
	}
	r.slowPath = slow
	if err := r.DefineArena(origLayout(t, s), 4); err != nil {
		t.Fatal(err)
	}
	for cpu, name := range names {
		if err := r.AddThread(cpu, name, nil, 3); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFastPathEquivalence: the superblock interpreter must produce a
// Result identical in every observable — cycles, per-thread finish times,
// profile counts, coherence counters, per-field statistics — to the
// reference one-instruction-per-step interpreter.
func TestFastPathEquivalence(t *testing.T) {
	fast := runMixed(t, false, nil)
	slow := runMixed(t, true, nil)
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("fast path diverges from reference interpreter:\nfast: cycles=%d completed=%d coh=%+v\nslow: cycles=%d completed=%d coh=%+v",
			fast.Cycles, fast.Completed, fast.Coherence,
			slow.Cycles, slow.Completed, slow.Coherence)
	}
}

// TestFastPathEquivalenceSampled: with a collector attached, compute
// merging is disabled but the tight loop still runs; traces must match
// sample for sample.
func TestFastPathEquivalenceSampled(t *testing.T) {
	smp := func() *sampling.Config {
		return &sampling.Config{IntervalCycles: 500, DriftMaxCycles: 4, LossProb: 0.05, Seed: 11}
	}
	fast := runMixed(t, false, smp())
	slow := runMixed(t, true, smp())
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("sampled fast path diverges: fast %d samples / %d cycles, slow %d samples / %d cycles",
			len(fast.Trace.Samples), fast.Cycles, len(slow.Trace.Samples), slow.Cycles)
	}
}

// TestMergeComputes checks the decode-time coalescing directly.
func TestMergeComputes(t *testing.T) {
	ds := []decInstr{
		{op: ir.OpCompute, cycles: 3},
		{op: ir.OpCompute, cycles: 4},
		{op: ir.OpField},
		{op: ir.OpCompute, cycles: 5},
		{op: ir.OpCompute, cycles: 6},
		{op: ir.OpCompute, cycles: 7},
		{op: ir.OpCall},
	}
	got := mergeComputes(ds)
	if len(got) != 4 {
		t.Fatalf("merged to %d instrs, want 4", len(got))
	}
	if got[0].cycles != 7 || got[2].cycles != 18 {
		t.Fatalf("merged cycles = %d, %d; want 7, 18", got[0].cycles, got[2].cycles)
	}
	if got[1].op != ir.OpField || got[3].op != ir.OpCall {
		t.Fatal("non-compute instructions moved")
	}
}

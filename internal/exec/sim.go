package exec

import (
	"fmt"
	"math"

	"structlayout/internal/coherence"
)

// SimMode selects the simulation fidelity of a run.
type SimMode uint8

const (
	// SimExact simulates every access through the coherence model.
	SimExact SimMode = iota
	// SimSampled measures a seeded, statistically chosen subset of
	// per-thread access windows; the coherence counters are extrapolated
	// from the measured subset with a reported confidence interval.
	// Off-window accesses are functionally warmed (SMARTS-style): they
	// perform the full MESI transition and are charged its real latency,
	// but record no statistics and cross the interleaving gate only once
	// per bounded runahead span (yieldCheck) instead of per access — so
	// measured windows open on exact-run cache state, and the saving
	// comes from skipping per-access statistics, miss classification and
	// scheduler yields, not from skipping the accesses. Locks are always
	// measured exactly (their interleaving defines the run's structure),
	// so lock handoff chains and deadlocks behave identically to exact
	// mode.
	SimSampled
)

// String names the mode the way the -sim flag spells it.
func (m SimMode) String() string {
	if m == SimSampled {
		return "sampled"
	}
	return "exact"
}

// ParseSimMode parses a -sim flag value.
func ParseSimMode(s string) (SimMode, error) {
	switch s {
	case "", "exact":
		return SimExact, nil
	case "sampled":
		return SimSampled, nil
	}
	return SimExact, fmt.Errorf("exec: unknown sim mode %q (want exact or sampled)", s)
}

// SimConfig parameterizes the sampled mode. The zero value is exact
// simulation.
type SimConfig struct {
	Mode SimMode
	// WindowOps is the sampling window length in per-thread memory
	// accesses (a power of two; default 256). Windows are counted in
	// accesses, not cycles: a time-length window would over-represent slow
	// accesses (a coherence miss occupies hundreds of cycles, a hit one),
	// biasing every extrapolated per-access rate — the same reason SMARTS
	// samples by instruction count. Windows short against the run length
	// keep the measured subset representative.
	WindowOps int64
	// Period is the inverse sampling rate: on average one window in
	// Period is measured (default 4). Window 0 is always measured so
	// every run reports a non-empty sample.
	Period int64
	// Seed drives window selection (default: the run seed). Part of the
	// measurement's identity: memo keys hash it.
	Seed int64
}

func (c *SimConfig) fillDefaults(runSeed int64) {
	if c.WindowOps == 0 {
		c.WindowOps = 1 << 8
	}
	if c.Period == 0 {
		c.Period = 4
	}
	if c.Seed == 0 {
		c.Seed = runSeed
	}
}

// Validate checks the sampled-mode parameters.
func (c SimConfig) Validate() error {
	if c.WindowOps <= 0 || c.WindowOps&(c.WindowOps-1) != 0 {
		return fmt.Errorf("exec: sim window %d accesses not a positive power of two", c.WindowOps)
	}
	if c.Period < 1 {
		return fmt.Errorf("exec: sim period %d < 1", c.Period)
	}
	return nil
}

// simState is the runner's resolved sampling schedule.
type simState struct {
	enabled bool
	shift   uint
	period  uint64
	seed    uint64
	// slack bounds how far past the scheduler limit an off-window access
	// may run before yielding (see yieldCheck).
	slack int64
}

// initSim resolves the run's simulation mode.
func (r *Runner) initSim() error {
	if r.cfg.Sim.Mode != SimSampled {
		return nil
	}
	sc := r.cfg.Sim
	sc.fillDefaults(r.cfg.Seed)
	if err := sc.Validate(); err != nil {
		return err
	}
	if r.collector != nil {
		return fmt.Errorf("exec: sampled simulation cannot drive PMU collection; collect in exact mode")
	}
	r.cfg.Sim = sc
	r.sim.enabled = true
	for w := sc.WindowOps; w > 1; w >>= 1 {
		r.sim.shift++
	}
	r.sim.period = uint64(sc.Period)
	r.sim.seed = uint64(sc.Seed)
	// Off-window runahead bound: a handful of the machine's worst-case
	// transfers (16×, tuned on the figure-suite differential check —
	// larger slack buys speed, smaller buys interleaving fidelity).
	// Scaling it with the topology keeps the temporal fuzz proportional
	// to the latencies it can misorder — a fixed cycle count would be a
	// different fraction of a miss on a bus box than on a 128-way
	// Superdome.
	worst := r.cfg.Topo.MemBase + r.cfg.Topo.MemPerLevel*int64(len(r.cfg.Topo.Shape))
	for _, lat := range r.cfg.Topo.CacheToCache {
		if lat > worst {
			worst = lat
		}
	}
	r.sim.slack = 16 * worst
	for _, t := range r.threads {
		t.simSeed = r.sim.seed ^ mix64(uint64(t.id)+1)
	}
	return nil
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed hash for
// the per-window keep/skip draw.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// onWindow reports whether thread seed tseed's window w is measured: a
// deterministic draw at rate 1/period, window 0 always on. The draw keys on
// the thread's own seed, not just w: threads run the same procedures, so
// their nth windows cover the same program phases, and one shared schedule
// would skip the same phases (first touches, say) on every thread at once —
// a correlated gap no amount of extrapolation can see.
func (s *simState) onWindow(tseed uint64, w int64) bool {
	if w == 0 {
		return true
	}
	return mix64(tseed+uint64(w)*0x9e3779b97f4a7c15)%s.period == 0
}

// simOn reports whether the thread's next memory access falls in a
// measured window, caching the window boundary on the thread (the op
// counter is monotonic, so one shift+hash per window crossing). Windows
// are per thread and counted in that thread's accesses.
func (r *Runner) simOn(t *thread) bool {
	if t.ops >= t.winEnd {
		w := t.ops >> r.sim.shift
		t.winOn = r.sim.onWindow(t.simSeed, w)
		t.winEnd = (w + 1) << r.sim.shift
	}
	return t.winOn
}

// simNext is simOn plus the op-counter advance: execInstr calls it exactly
// once per field/region access. The yield gate (yieldCheck) peeks with
// simOn — same decision, no advance.
func (r *Runner) simNext(t *thread) bool {
	on := r.simOn(t)
	t.ops++
	return on
}

// SampledInfo reports the sampling extrapolation of a SimSampled run.
type SampledInfo struct {
	// WindowOps and Period echo the effective sampling parameters.
	WindowOps int64
	Period    int64
	// SimulatedOps counts the accesses measured through the full model
	// (including lock words, which are always measured); SkippedOps counts
	// the off-window field/region accesses that were functionally warmed
	// — full MESI transition and real latency, no statistics.
	SimulatedOps uint64
	SkippedOps   uint64
	// Scale is the window stratum's extrapolation factor: total
	// field/region accesses over measured ones. Lock-word accesses form a
	// separate, fully measured stratum added at weight 1.
	Scale float64
	// Extrapolated estimates the exact run's counters: the pinned lock
	// stratum plus the windowed stratum scaled by Scale.
	Extrapolated coherence.Stats
	// MissCI95 is the ± half-width of the 95% confidence interval on
	// Extrapolated.Misses() under a binomial sampling model over the
	// windowed stratum (the pinned stratum contributes no variance).
	// Misses cluster in time, so the true interval is somewhat wider; the
	// differential tests against exact mode pin the realized error bound.
	MissCI95 float64
}

// sampledInfo assembles the stratified extrapolation after a sampled run:
// raw covers the windowed field/region accesses (measured at ~1/Period),
// the coherence system's pinned stratum covers lock words (measured in
// full). Because functional warming resolves every off-window access, the
// extrapolated access count is exact; only the miss/invalidation
// classification is estimated.
func (r *Runner) sampledInfo(raw coherence.Stats) *SampledInfo {
	var off uint64
	for _, t := range r.threads {
		off += t.offOps
	}
	pinned := r.coh.PinnedStats()
	info := &SampledInfo{
		WindowOps: r.cfg.Sim.WindowOps,
		Period:    r.cfg.Sim.Period,
		SimulatedOps: raw.Accesses + pinned.Accesses,
		SkippedOps:   off,
		Scale:        1,
	}
	if raw.Accesses > 0 {
		info.Scale = float64(raw.Accesses+off) / float64(raw.Accesses)
	}
	info.Extrapolated = scaleStats(raw, info.Scale)
	info.Extrapolated.Add(pinned)
	if raw.Accesses > 0 {
		p := float64(raw.Misses()) / float64(raw.Accesses)
		info.MissCI95 = 1.96 * math.Sqrt(float64(raw.Accesses)*p*(1-p)) * info.Scale
	}
	return info
}

// scaleStats multiplies every counter by f, rounding to nearest.
func scaleStats(s coherence.Stats, f float64) coherence.Stats {
	sc := func(v uint64) uint64 { return uint64(math.Round(float64(v) * f)) }
	return coherence.Stats{
		Accesses:      sc(s.Accesses),
		Hits:          sc(s.Hits),
		ColdMisses:    sc(s.ColdMisses),
		ReplMisses:    sc(s.ReplMisses),
		CohMisses:     sc(s.CohMisses),
		Upgrades:      sc(s.Upgrades),
		FalseSharing:  sc(s.FalseSharing),
		TrueSharing:   sc(s.TrueSharing),
		Invalidations: sc(s.Invalidations),
		Writebacks:    sc(s.Writebacks),
		MemFetches:    sc(s.MemFetches),
	}
}

// Package exec is the multiprocessor execution engine: it interprets IR
// programs on N simulated CPUs over the coherence simulator, under a global
// virtual clock. It stands in for the paper's native runs on HP-UX
// hardware, producing everything the paper's pipeline collects from a run:
//
//   - precise block/loop execution counts (the PBO profile, §4),
//   - PMU-style samples with synchronized timestamps (Caliper, §4.2),
//   - total cycles, from which the SDET-style throughput metric derives,
//   - per-field coherence statistics (ground truth for evaluation only).
//
// Scheduling is deterministic: the runnable thread with the smallest local
// time executes next (CPU id breaks ties), so identical inputs and seeds
// replay identical interleavings. Field addresses are resolved through a
// layout per struct, with instances placed at cache-line-aligned bases the
// way the HP-UX arena allocator does (§2) — re-running the same workload
// under a different layout is exactly the paper's experiment.
package exec

import (
	"fmt"
	"math/rand"

	"structlayout/internal/coherence"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/parallel"
	"structlayout/internal/profile"
	"structlayout/internal/sampling"
)

// Config parameterizes a run.
type Config struct {
	// Topo is the machine to simulate.
	Topo *machine.Topology
	// Cache is the per-CPU cache geometry.
	Cache coherence.Config
	// Seed drives branch draws, random memory patterns and sampling.
	Seed int64
	// Sampling enables PMU-style collection when non-nil.
	Sampling *sampling.Config
	// CallOverhead is charged per procedure call (default 8 cycles).
	CallOverhead int64
	// BranchCost is charged per synthetic control block (default 1 cycle).
	BranchCost int64
	// LockHandoff is the extra cost of waking a lock waiter beyond the
	// cache-to-cache transfer of the lock word (default 20 cycles).
	LockHandoff int64
	// Sim selects exact or interval-sampled simulation (zero value: exact).
	Sim SimConfig
}

func (c *Config) fillDefaults() {
	if c.CallOverhead == 0 {
		c.CallOverhead = 8
	}
	if c.BranchCost == 0 {
		c.BranchCost = 1
	}
	if c.LockHandoff == 0 {
		c.LockHandoff = 20
	}
}

// FieldRef names a field for statistics attribution.
type FieldRef struct {
	Struct string
	Field  int
}

// FieldStat aggregates what one field's accesses cost during a run.
type FieldStat struct {
	Accesses  uint64
	Misses    uint64
	CohMisses uint64
	Upgrades  uint64
	// FalseSharing counts events where this field's access was the victim.
	FalseSharing uint64
	// CausedFalseSharing counts events where a write to this field
	// invalidated a victim's disjoint bytes (the perf-c2c "HITM source"
	// view: the lock or counter responsible, not just its victims).
	CausedFalseSharing uint64
	StallCycles        int64
}

// Result is everything a run produces.
type Result struct {
	// Cycles is the virtual time at which the last thread finished.
	Cycles int64
	// Completed counts finished top-level procedure iterations ("scripts").
	Completed int64
	// Profile holds precise block and loop counts.
	Profile *profile.Profile
	// Trace holds PMU samples (nil when sampling was disabled).
	Trace *sampling.Trace
	// Coherence aggregates the cache simulator's global counters.
	Coherence coherence.Stats
	// Fields attributes coherence behaviour to struct fields.
	Fields map[FieldRef]*FieldStat
	// ThreadCycles is each thread's finish time.
	ThreadCycles []int64
	// Sampled reports the extrapolation of a SimSampled run (nil for
	// exact runs). When set, Coherence and Fields cover only the measured
	// accesses (the sampled windows plus the always-measured lock words);
	// Sampled.Extrapolated estimates the full population.
	Sampled *SampledInfo
}

// arena is the line-aligned backing store of one struct type's instances.
// It also carries the run's dense per-field statistics and lock table, so
// the per-access hot path indexes slices instead of probing maps.
type arena struct {
	idx    int // position in arenaList; indexes engine stat slices
	base   int64
	count  int
	stride int64
	lay    *layout.Layout
	name   string
	stats  []FieldStat // indexed by field
	locks  []lockState // indexed by instance*numFields + field
}

// regionAlloc places one ir.Region in the address space.
type regionAlloc struct {
	base      int64
	size      int64
	perThread bool
	stride    int64 // distance between per-thread copies
}

// lockState tracks a spinlock's holder and FIFO waiters. The zero value is
// an unheld lock.
type lockState struct {
	holder  *thread
	waiters []*thread
}

// decInstr is one pre-decoded instruction: every name and layout lookup an
// access needs (arena pointer, field offset/size, region index, callee) is
// resolved once at Run start, so the interpreter's inner loop performs no
// map probes.
type decInstr struct {
	op    ir.Opcode
	write bool

	cycles int64         // OpCompute
	callee *ir.Procedure // OpCall

	arena    *arena // OpField / OpLock / OpUnlock
	field    int32
	fieldOff int64
	size     int
	inst     ir.InstExpr
	// instIdx is the decode-resolved instance for shared-instance
	// expressions (the index is the same for every thread); other kinds
	// resolve through the per-thread tables (see instIndex).
	instIdx int32

	region    *regionAlloc // OpMem
	regionIdx int32
	pattern   ir.MemPattern
	stride    int64
	offset    int64
}

// Runner executes one configuration of one program. Build it, define
// arenas/layouts and threads, then call Run once.
type Runner struct {
	prog *ir.Program
	cfg  Config

	coh       *coherence.System
	collector *sampling.Collector
	prof      *profile.Profile

	arenas    map[string]*arena
	arenaList []*arena // definition order, for deterministic reverse mapping
	regions   map[string]*regionAlloc
	regionIdx map[string]int
	nextAdr   int64

	dec [][]decInstr // per-block decoded instructions, indexed by BlockID

	threads []*thread
	cpuUsed map[int]bool
	nparams int // widest thread parameter list (sizes the instance tables)

	sim simState

	completed int64
	ran       bool

	// slowPath disables the superblock fast path (compute merging, tight
	// in-block loop, frameless compute blocks), forcing the reference
	// one-step-at-a-time interpreter. Test-only: the equivalence tests run
	// both paths and require identical Results.
	slowPath bool
}

// NewRunner builds a runner. Layouts must cover every struct the program
// accesses; arena sizes are set via DefineArena before AddThread.
func NewRunner(prog *ir.Program, cfg Config) (*Runner, error) {
	cfg.fillDefaults()
	if cfg.Topo == nil {
		return nil, fmt.Errorf("exec: nil topology")
	}
	coh, err := coherence.NewSystem(cfg.Topo, cfg.Cache)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		prog:      prog,
		cfg:       cfg,
		coh:       coh,
		prof:      profile.New(prog),
		arenas:    make(map[string]*arena),
		regions:   make(map[string]*regionAlloc),
		regionIdx: make(map[string]int),
		cpuUsed:   make(map[int]bool),
		nextAdr:   cfg.Cache.LineSize, // keep address 0 unused
	}
	if cfg.Sampling != nil {
		sc := *cfg.Sampling
		if sc.Seed == 0 {
			sc.Seed = cfg.Seed + 1
		}
		r.collector, err = sampling.NewCollector(sc, cfg.Topo.NumCPUs())
		if err != nil {
			return nil, err
		}
	}
	// Regions are allocated eagerly; per-thread regions reserve one copy
	// per possible CPU.
	for i, reg := range prog.Regions {
		stride := alignUp(reg.Bytes, cfg.Cache.LineSize)
		ra := &regionAlloc{size: reg.Bytes, perThread: reg.PerThread, stride: stride}
		copies := int64(1)
		if reg.PerThread {
			copies = int64(cfg.Topo.NumCPUs())
		}
		ra.base = r.allocate(stride * copies)
		r.regions[reg.Name] = ra
		r.regionIdx[reg.Name] = i
	}
	return r, nil
}

// allocate reserves n bytes of line-aligned address space with one guard
// line of separation, so distinct allocations never falsely share.
func (r *Runner) allocate(n int64) int64 {
	base := r.nextAdr
	r.nextAdr = alignUp(base+n, r.cfg.Cache.LineSize) + r.cfg.Cache.LineSize
	return base
}

func alignUp(n, a int64) int64 { return (n + a - 1) / a * a }

// DefineArena creates count line-aligned instances of the struct laid out
// by lay. Must be called before threads run; one arena per struct.
func (r *Runner) DefineArena(lay *layout.Layout, count int) error {
	if count <= 0 {
		return fmt.Errorf("exec: arena for %s with count %d", lay.Struct.Name, count)
	}
	if int64(lay.LineSize) != r.cfg.Cache.LineSize {
		return fmt.Errorf("exec: layout %s uses line size %d, cache uses %d", lay.Name, lay.LineSize, r.cfg.Cache.LineSize)
	}
	name := lay.Struct.Name
	if _, dup := r.arenas[name]; dup {
		return fmt.Errorf("exec: arena for %s already defined", name)
	}
	if err := lay.Validate(); err != nil {
		return err
	}
	// Cache coloring: pad the instance stride to an odd number of lines so
	// that same-offset lines of successive instances spread over every
	// cache set (gcd(odd, 2^k) = 1). Without this, an even line count
	// aliases all instances onto a fraction of the sets and conflict
	// misses would punish or reward layouts for their *size parity*, an
	// artifact real arena allocators avoid the same way.
	lines := int64(lay.NumLines())
	if lines%2 == 0 {
		lines++
	}
	stride := lines * r.cfg.Cache.LineSize
	nf := len(lay.Struct.Fields)
	a := &arena{
		idx:    len(r.arenaList),
		count:  count,
		stride: stride,
		lay:    lay,
		name:   name,
		stats:  make([]FieldStat, nf),
		locks:  make([]lockState, count*nf),
	}
	a.base = r.allocate(stride * int64(count))
	r.arenas[name] = a
	r.arenaList = append(r.arenaList, a)
	return nil
}

// AddThread binds a thread to a CPU running the named procedure iterations
// times with the given parameter vector. One thread per CPU.
func (r *Runner) AddThread(cpu int, proc string, params []int, iterations int64) error {
	if cpu < 0 || cpu >= r.cfg.Topo.NumCPUs() {
		return fmt.Errorf("exec: cpu %d out of range", cpu)
	}
	if r.cpuUsed[cpu] {
		return fmt.Errorf("exec: cpu %d already has a thread", cpu)
	}
	pr := r.prog.Proc(proc)
	if pr == nil {
		return fmt.Errorf("exec: unknown procedure %q", proc)
	}
	if iterations <= 0 {
		return fmt.Errorf("exec: thread needs positive iterations")
	}
	t := &thread{
		id:      len(r.threads),
		cpu:     cpu,
		entry:   pr,
		params:  append([]int(nil), params...),
		iters:   iterations,
		rng:     rand.New(rand.NewSource(r.cfg.Seed*7919 + int64(cpu)*104729 + 13)),
		cursors: make([]int64, len(r.prog.Regions)),
	}
	t.pushSeq(pr.Tree)
	r.cpuUsed[cpu] = true
	r.threads = append(r.threads, t)
	return nil
}

// Run executes to completion and returns the result. A runner runs once.
func (r *Runner) Run() (*Result, error) {
	if r.ran {
		return nil, fmt.Errorf("exec: runner already ran")
	}
	r.ran = true
	if len(r.threads) == 0 {
		return nil, fmt.Errorf("exec: no threads")
	}
	// Decode the program once: resolves every arena/region/callee name and
	// verifies up front that every accessed struct has an arena.
	if err := r.decode(); err != nil {
		return nil, err
	}
	if err := r.initSim(); err != nil {
		return nil, err
	}
	r.buildInstTables()
	r.coh.ReserveDirectory(r.nextAdr)

	// Partition threads into footprint-disjoint groups and run each group
	// on its own engine. With one group (the common case outside shard
	// mode) this is a plain serial run; with several, the groups execute
	// concurrently — they share only the coherence system, which they
	// drive on disjoint lines and CPUs — and their accumulators merge as
	// commutative sums, so the result is byte-identical either way.
	groups := r.threadGroups()
	engines := make([]*engine, len(groups))
	for i, ts := range groups {
		engines[i] = r.newEngine(ts)
	}
	if len(engines) == 1 {
		if err := engines[0].run(); err != nil {
			return nil, err
		}
	} else if err := parallel.ForEach(len(engines), func(i int) error {
		return engines[i].run()
	}); err != nil {
		return nil, err
	}
	for _, g := range engines {
		if err := r.merge(g); err != nil {
			return nil, err
		}
	}

	// Rebuild the sparse field map from the dense per-arena statistics;
	// only touched fields appear, matching the lazily-populated map the
	// hot path used to maintain.
	fields := make(map[FieldRef]*FieldStat)
	for _, a := range r.arenaList {
		for fi := range a.stats {
			if a.stats[fi] != (FieldStat{}) {
				fs := a.stats[fi]
				fields[FieldRef{Struct: a.name, Field: fi}] = &fs
			}
		}
	}
	res := &Result{
		Completed:    r.completed,
		Profile:      r.prof,
		Coherence:    r.coh.GlobalStats(),
		Fields:       fields,
		ThreadCycles: make([]int64, len(r.threads)),
	}
	for i, t := range r.threads {
		res.ThreadCycles[i] = t.time
		if t.time > res.Cycles {
			res.Cycles = t.time
		}
	}
	if r.sim.enabled {
		res.Sampled = r.sampledInfo(res.Coherence)
		// Fold the always-measured lock stratum into the reported raw
		// counters: Coherence then covers every measured access, while
		// Sampled keeps the strata apart for extrapolation.
		res.Coherence.Add(r.coh.PinnedStats())
	}
	if r.collector != nil {
		res.Trace = r.collector.Finish()
	}
	return res, nil
}

// runUntil advances one thread until it yields the CPU: it would execute a
// shared operation without holding the group's lexicographic-minimum
// (time, id), it parks on a lock, it wakes another thread, or it finishes.
// It is the scheduling-point boundary of the superblock fast path:
// straight-line instruction runs inside a basic block execute in the tight
// inner loop below — one frame lookup per run instead of one full step()
// dispatch (stack probe + frame-kind switch) per instruction — while frame
// management (sequence/loop/if bookkeeping) falls through to step().
//
// The yield condition is checked before every instruction (see engine.run
// for the invariant), so the global order of coherence accesses is a pure
// function of thread time trajectories — bit-identical between the
// superblock path, the one-step-at-a-time slow path, and any grouping.
func (g *engine) runUntil(t *thread, limit int64) error {
	r := g.r
	for {
		if n := len(t.stack); !r.slowPath && n > 0 && t.stack[n-1].kind == fBlock {
			f := &t.stack[n-1]
			dins := f.dins
			for f.idx < len(dins) {
				in := &dins[f.idx]
				// Hoisted fast path of yieldCheck: while the thread holds
				// the lexicographic minimum, no op can require a yield.
				if g.key(t) > limit && g.yieldCheck(t, limit, in) {
					return nil
				}
				f.idx++
				if err := g.execInstr(t, in); err != nil {
					return err
				}
				if t.parked || len(g.woken) > 0 {
					return nil
				}
				if len(t.stack) != n {
					// A call pushed a frame (appending may relocate the
					// stack, invalidating f); resume via the outer loop.
					break
				}
			}
			if len(t.stack) == n && f.idx >= len(f.dins) {
				t.pop()
			}
			continue
		}
		yielded, err := g.step(t, limit)
		if err != nil {
			return err
		}
		if yielded || t.done || t.parked || len(g.woken) > 0 {
			return nil
		}
	}
}

// decode pre-resolves every instruction of the program against the run's
// arenas, regions and procedures. Called once at Run start, after all
// DefineArena calls; errors here are the ones the interpreter used to raise
// lazily (missing arena, unknown region or callee).
func (r *Runner) decode() error {
	r.dec = make([][]decInstr, r.prog.NumBlocks())
	for _, b := range r.prog.Blocks() {
		ds := make([]decInstr, len(b.Instrs))
		for i, in := range b.Instrs {
			d := decInstr{op: in.Op, write: in.Acc == ir.Write}
			switch in.Op {
			case ir.OpCompute:
				d.cycles = in.Cycles
			case ir.OpCall:
				d.callee = r.prog.Proc(in.Callee)
				if d.callee == nil {
					return fmt.Errorf("exec: unknown procedure %q called in %s", in.Callee, b.Name())
				}
			case ir.OpField, ir.OpLock, ir.OpUnlock:
				a := r.arenas[in.Struct.Name]
				if a == nil {
					return fmt.Errorf("exec: no arena for struct %s accessed in %s", in.Struct.Name, b.Name())
				}
				d.arena = a
				d.field = int32(in.Field)
				d.fieldOff = int64(a.lay.Offsets[in.Field])
				d.size = in.Struct.Fields[in.Field].Size
				d.inst = in.Inst
				if in.Inst.Kind == ir.InstShared {
					d.instIdx = int32(in.Inst.Index % a.count)
				}
			case ir.OpMem:
				reg := r.regions[in.Region]
				if reg == nil {
					return fmt.Errorf("exec: unknown region %q", in.Region)
				}
				d.region = reg
				d.regionIdx = int32(r.regionIdx[in.Region])
				d.pattern = in.Pattern
				d.stride = in.Stride
				d.offset = in.Offset
			case ir.OpSpawn, ir.OpJoin, ir.OpSend, ir.OpRecv:
				// Static-only fork/join skeleton markers: the interpreter
				// models spawned tasks as declared threads, so these carry no
				// dynamic semantics here (staticshare derives happens-before
				// from them).
			default:
				return fmt.Errorf("exec: unknown opcode %d", in.Op)
			}
			ds[i] = d
		}
		if r.collector == nil && !r.slowPath {
			ds = mergeComputes(ds)
		}
		r.dec[b.Global] = ds
	}
	return nil
}

// mergeComputes coalesces consecutive OpCompute instructions into one
// superblock-local virtual-time update. Computes touch no shared state —
// no coherence access, no profile count (blocks are counted at entry), no
// lock — so executing a run of them under one yield check instead of one
// per instruction cannot reorder any cross-thread access: a thread's time
// waypoints inside a pure-compute span are invisible to every other
// thread. Merging is disabled for sampled runs, where the collector must
// observe each instruction's time advance individually.
func mergeComputes(ds []decInstr) []decInstr {
	out := ds[:0]
	for _, d := range ds {
		if d.op == ir.OpCompute && len(out) > 0 && out[len(out)-1].op == ir.OpCompute {
			out[len(out)-1].cycles += d.cycles
			continue
		}
		out = append(out, d)
	}
	return out
}


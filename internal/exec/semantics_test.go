package exec

import (
	"sort"
	"testing"

	"structlayout/internal/coherence"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
)

// TestMemoryDistanceEffect validates §2's MemoryDistance concept in the
// simulator itself: when a large streaming sweep separates two field
// accesses, co-locating the fields stops helping — the first field's line
// is evicted before the second access arrives.
func TestMemoryDistanceEffect(t *testing.T) {
	build := func() (*ir.Program, *ir.StructType) {
		p := ir.NewProgram("md")
		s := ir.NewStruct("S", ir.I64("f1"), ir.I64("f2"))
		p.AddStruct(s)
		p.AddRegion("big", 1<<21, false)
		b := p.NewProc("near") // f1 then f2, nothing in between
		b.Loop(2000, func(b *ir.Builder) {
			b.Read(s, "f1", ir.LoopVar())
			b.Read(s, "f2", ir.LoopVar())
		})
		b.Done()
		c := p.NewProc("far") // a cache-sized sweep separates the accesses
		c.Loop(2000, func(b *ir.Builder) {
			b.Read(s, "f1", ir.LoopVar())
			b.Loop(32, func(b *ir.Builder) {
				b.MemSweep("big", ir.Read, 128) // 4 KiB > the 2 KiB test cache
			})
			b.Read(s, "f2", ir.LoopVar())
		})
		c.Done()
		return p.MustFinalize(), s
	}

	run := func(proc string, together bool) uint64 {
		p, s := build()
		var lay *layout.Layout
		if together {
			lay = origLayout(t, s)
		} else {
			var err error
			lay, err = layout.PackClusters(s, "apart", [][]int{{0}, {1}}, 128,
				layout.PackOptions{OneClusterPerLine: true})
			if err != nil {
				t.Fatal(err)
			}
		}
		r, err := NewRunner(p, Config{Topo: machine.Uniprocessor(), Cache: coherence.SmallCache(), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Arena big enough that the walk itself also misses.
		if err := r.DefineArena(lay, 512); err != nil {
			t.Fatal(err)
		}
		if err := r.AddThread(0, proc, nil, 1); err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Count only the struct fields' misses; the sweep's own misses are
		// constant background.
		var misses uint64
		for ref, fs := range res.Fields {
			if ref.Struct == "S" {
				misses += fs.Misses
			}
		}
		return misses
	}

	// Without intervening traffic, co-location halves the misses.
	nearTogether := run("near", true)
	nearApart := run("near", false)
	if nearTogether*3 > nearApart*2 {
		t.Fatalf("co-location should cut misses: together=%d apart=%d", nearTogether, nearApart)
	}
	// With the sweep in between, the benefit collapses (both layouts miss
	// on nearly every access).
	farTogether := run("far", true)
	farApart := run("far", false)
	ratio := float64(farApart) / float64(farTogether)
	if ratio > 1.15 {
		t.Fatalf("with large MemoryDistance co-location should not matter: together=%d apart=%d", farTogether, farApart)
	}
}

// TestLockHandoffOrdering: a waiter never enters the critical section
// before the holder released it, and handoff is FIFO by arrival.
func TestLockHandoffOrdering(t *testing.T) {
	p := ir.NewProgram("handoff")
	s := ir.NewStruct("L", ir.I64("lk"), ir.I64("stamp"))
	p.AddStruct(s)
	for i := 0; i < 3; i++ {
		b := p.NewProc(procName(i))
		b.Lock(s, "lk", ir.Shared(0))
		b.Write(s, "stamp", ir.Shared(0))
		b.Compute(5000)
		b.Unlock(s, "lk", ir.Shared(0))
		b.Done()
	}
	p.MustFinalize()
	r, _ := NewRunner(p, Config{Topo: machine.Bus4(), Cache: coherence.DefaultItanium(), Seed: 1})
	_ = r.DefineArena(origLayout(t, s), 1)
	for i := 0; i < 3; i++ {
		_ = r.AddThread(i, procName(i), nil, 1)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Three 5000-cycle critical sections strictly serialize.
	if res.Cycles < 15000 {
		t.Fatalf("cycles = %d; expected full serialization of 3x5000", res.Cycles)
	}
	// Finish times are pairwise separated by at least one critical section:
	// no two threads were ever inside it together. (Which thread wins the
	// initial tie is a deterministic scheduler artifact, not id order.)
	ts := append([]int64(nil), res.ThreadCycles...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	for i := 1; i < len(ts); i++ {
		if ts[i]-ts[i-1] < 5000 {
			t.Fatalf("critical sections overlapped: finish times %v", res.ThreadCycles)
		}
	}
}

// TestPerThreadRegionIsolation: per-thread regions never produce coherence
// traffic between threads.
func TestPerThreadRegionIsolation(t *testing.T) {
	p := ir.NewProgram("priv")
	p.AddRegion("stack", 1<<16, true)
	b := p.NewProc("main")
	b.Loop(2000, func(b *ir.Builder) {
		b.MemSweep("stack", ir.Write, 64)
	})
	b.Done()
	p.MustFinalize()
	r, _ := NewRunner(p, Config{Topo: machine.Bus4(), Cache: coherence.DefaultItanium(), Seed: 1})
	for cpu := 0; cpu < 4; cpu++ {
		_ = r.AddThread(cpu, "main", nil, 2)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Coherence.CohMisses != 0 || res.Coherence.Invalidations != 0 {
		t.Fatalf("per-thread region produced coherence traffic: %+v", res.Coherence)
	}
}

// TestArenaColoring: instance strides are always an odd number of lines,
// so same-offset lines of successive instances cover every cache set.
func TestArenaColoring(t *testing.T) {
	for _, nFields := range []int{1, 3, 16, 17, 32, 33} {
		fields := make([]ir.Field, nFields)
		for i := range fields {
			fields[i] = i64f(i)
		}
		p := ir.NewProgram("color")
		s := ir.NewStruct("C", fields...)
		p.AddStruct(s)
		b := p.NewProc("main")
		b.ReadI(s, 0, ir.Shared(0))
		b.Done()
		p.MustFinalize()
		r, _ := NewRunner(p, Config{Topo: machine.Uniprocessor(), Cache: coherence.DefaultItanium(), Seed: 1})
		if err := r.DefineArena(origLayout(t, s), 8); err != nil {
			t.Fatal(err)
		}
		a := r.arenas["C"]
		lines := a.stride / 128
		if lines%2 != 1 {
			t.Fatalf("%d fields: stride %d lines is even", nFields, lines)
		}
		if a.stride < int64(origLayout(t, s).LineAlignedSize()) {
			t.Fatalf("%d fields: stride smaller than the layout", nFields)
		}
	}
}

// TestFieldStatAccounting: per-field access totals equal the dynamic field
// instruction count from the profile.
func TestFieldStatAccounting(t *testing.T) {
	p, s, names := buildCounterWorkload(4, 700)
	r, _ := NewRunner(p, Config{Topo: machine.Bus4(), Cache: coherence.DefaultItanium(), Seed: 2})
	_ = r.DefineArena(origLayout(t, s), 1)
	for cpu := 0; cpu < 4; cpu++ {
		_ = r.AddThread(cpu, names[cpu], nil, 1)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var fromStats uint64
	for _, fs := range res.Fields {
		fromStats += fs.Accesses
	}
	var fromProfile float64
	for _, blk := range p.Blocks() {
		fromProfile += res.Profile.BlockCount(blk) * float64(len(blk.FieldInstrs()))
	}
	if float64(fromStats) != fromProfile {
		t.Fatalf("field stats %d != profile-derived %v", fromStats, fromProfile)
	}
}

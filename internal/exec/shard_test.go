package exec

import (
	"math"
	"reflect"
	"testing"

	"structlayout/internal/coherence"
	"structlayout/internal/ir"
	"structlayout/internal/machine"
	"structlayout/internal/parallel"
	"structlayout/internal/sampling"
)

// buildDisjointWorkload builds one procedure per CPU whose static
// footprints are pairwise disjoint: every instance is selected by a
// per-thread parameter or PerCPU(), and the only region is per-thread.
// With count >= ncpu distinct parameter values, threadGroups must split
// the run into ncpu singleton groups.
func buildDisjointWorkload(ncpu int) (*ir.Program, *ir.StructType, []string) {
	p := ir.NewProgram("disjoint")
	s := ir.NewStruct("D",
		ir.I64("lock"),
		ir.I64("hot"),
		ir.I64("cold"),
	)
	p.AddStruct(s)
	p.AddRegion("priv", 8<<10, true)

	names := make([]string, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		name := "own" + string(rune('A'+cpu))
		b := p.NewProc(name)
		b.Compute(10)
		b.Loop(60, func(b *ir.Builder) {
			b.Lock(s, "lock", ir.Param(0))
			b.Write(s, "hot", ir.Param(0))
			b.Compute(5)
			b.Unlock(s, "lock", ir.Param(0))
			b.IfElse(0.4, func(b *ir.Builder) {
				b.MemRandom("priv", ir.Write)
			}, func(b *ir.Builder) {
				b.Read(s, "cold", ir.PerCPU())
			})
		})
		b.Done()
		names[cpu] = name
	}
	return p.MustFinalize(), s, names
}

// runWorkload executes a built workload with the given shard count and
// per-thread params.
func runWorkload(t *testing.T, prog *ir.Program, s *ir.StructType, names []string, shards int, paramOf func(cpu int) []int, sim SimConfig) *Result {
	t.Helper()
	cache := coherence.SmallCache()
	cache.Shards = shards
	r, err := NewRunner(prog, Config{Topo: machine.Bus4(), Cache: cache, Seed: 7, Sim: sim})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DefineArena(origLayout(t, s), 4); err != nil {
		t.Fatal(err)
	}
	for cpu, name := range names {
		var params []int
		if paramOf != nil {
			params = paramOf(cpu)
		}
		if err := r.AddThread(cpu, name, params, 3); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedRunByteIdentical: shard count must be invisible to a run's
// Result, even for the conflicting workload (single group) where sharding
// buys no concurrency.
func TestShardedRunByteIdentical(t *testing.T) {
	prog, s, names := buildMixedWorkload(4)
	base := runWorkload(t, prog, s, names, 0, nil, SimConfig{})
	for _, shards := range []int{1, 2, 8} {
		got := runWorkload(t, prog, s, names, shards, nil, SimConfig{})
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("shards=%d result diverges: cycles=%d coh=%+v vs cycles=%d coh=%+v",
				shards, got.Cycles, got.Coherence, base.Cycles, base.Coherence)
		}
	}
}

// TestGroupParallelByteIdentical: a footprint-disjoint workload splits into
// per-thread groups under shard mode; running those groups concurrently at
// several worker limits must be byte-identical to the serial single-group
// run.
func TestGroupParallelByteIdentical(t *testing.T) {
	prog, s, names := buildDisjointWorkload(4)
	params := func(cpu int) []int { return []int{cpu} }
	base := runWorkload(t, prog, s, names, 0, params, SimConfig{})

	old := parallel.Limit()
	defer parallel.SetLimit(old)
	for _, lim := range []int{1, 2, 4} {
		parallel.SetLimit(lim)
		got := runWorkload(t, prog, s, names, 8, params, SimConfig{})
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("-j %d sharded result diverges: cycles=%d coh=%+v vs serial cycles=%d coh=%+v",
				lim, got.Cycles, got.Coherence, base.Cycles, base.Coherence)
		}
	}
}

// groupsOf decodes a fresh runner and reports its thread partition sizes.
func groupsOf(t *testing.T, prog *ir.Program, s *ir.StructType, names []string, paramOf func(cpu int) []int) []int {
	t.Helper()
	cache := coherence.SmallCache()
	cache.Shards = 8
	r, err := NewRunner(prog, Config{Topo: machine.Bus4(), Cache: cache, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DefineArena(origLayout(t, s), 4); err != nil {
		t.Fatal(err)
	}
	for cpu, name := range names {
		var params []int
		if paramOf != nil {
			params = paramOf(cpu)
		}
		if err := r.AddThread(cpu, name, params, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.decode(); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for _, g := range r.threadGroups() {
		sizes = append(sizes, len(g))
	}
	return sizes
}

// TestThreadGroupsPartition checks the conflict analysis directly: shared
// instances collapse everything into one group, disjoint parameters split
// per thread, and colliding parameters group exactly the colliding pair.
func TestThreadGroupsPartition(t *testing.T) {
	mixedProg, ms, mixedNames := buildMixedWorkload(4)
	if got := groupsOf(t, mixedProg, ms, mixedNames, nil); len(got) != 1 {
		t.Fatalf("shared workload split into %v groups", got)
	}
	prog, s, names := buildDisjointWorkload(4)
	if got := groupsOf(t, prog, s, names, func(cpu int) []int { return []int{cpu} }); len(got) != 4 {
		t.Fatalf("disjoint workload grouped as %v, want 4 singletons", got)
	}
	// Threads 0 and 2 share instance 0 (thread 2's PerCPU read still maps
	// to its own instance 2): expect groups {0,2},{1},{3}.
	collide := func(cpu int) []int {
		if cpu == 2 {
			return []int{0}
		}
		return []int{cpu}
	}
	got := groupsOf(t, prog, s, names, collide)
	if len(got) != 3 {
		t.Fatalf("colliding params grouped as %v, want 3 groups", got)
	}
}

// TestSampledWithinBound: sampled mode must skip a real fraction of
// accesses, report its sampling parameters, and extrapolate the miss count
// to within the documented bound of the exact run (15% relative on this
// workload, far looser than the binomial CI alone because misses cluster).
func TestSampledWithinBound(t *testing.T) {
	prog, s, names := buildMixedWorkload(4)
	exact := runWorkload(t, prog, s, names, 0, nil, SimConfig{})
	if exact.Sampled != nil {
		t.Fatal("exact run carries SampledInfo")
	}
	sampled := runWorkload(t, prog, s, names, 0, nil, SimConfig{Mode: SimSampled, WindowOps: 1 << 7, Period: 4})
	info := sampled.Sampled
	if info == nil {
		t.Fatal("sampled run missing SampledInfo")
	}
	if info.SkippedOps == 0 || info.Scale <= 1 {
		t.Fatalf("sampling skipped nothing: %+v", info)
	}
	if sampled.Completed != exact.Completed {
		t.Fatalf("sampled completed %d, exact %d", sampled.Completed, exact.Completed)
	}
	relErr := func(got, want uint64) float64 {
		return math.Abs(float64(got)-float64(want)) / float64(want)
	}
	if e := relErr(info.Extrapolated.Misses(), exact.Coherence.Misses()); e > 0.15 {
		t.Fatalf("extrapolated misses %d vs exact %d: %.1f%% error",
			info.Extrapolated.Misses(), exact.Coherence.Misses(), 100*e)
	}
	if e := relErr(info.Extrapolated.Accesses, exact.Coherence.Accesses); e > 0.05 {
		t.Fatalf("extrapolated accesses %d vs exact %d: %.1f%% error",
			info.Extrapolated.Accesses, exact.Coherence.Accesses, 100*e)
	}
	cyc := math.Abs(float64(sampled.Cycles)-float64(exact.Cycles)) / float64(exact.Cycles)
	if cyc > 0.15 {
		t.Fatalf("sampled cycles %d vs exact %d: %.1f%% error", sampled.Cycles, exact.Cycles, 100*cyc)
	}
	if info.MissCI95 <= 0 {
		t.Fatalf("missing confidence interval: %+v", info)
	}
}

// TestSampledDeterministic: identical sampled configs replay identical
// results, and the slow-path reference interpreter agrees with the
// superblock path under sampling.
func TestSampledDeterministic(t *testing.T) {
	prog, s, names := buildMixedWorkload(4)
	sim := SimConfig{Mode: SimSampled, WindowOps: 1 << 7, Period: 4}
	a := runWorkload(t, prog, s, names, 0, nil, sim)
	b := runWorkload(t, prog, s, names, 0, nil, sim)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sampled run not deterministic")
	}
	// Different sampling seed: same structure, different subset.
	c := runWorkload(t, prog, s, names, 0, nil, SimConfig{Mode: SimSampled, WindowOps: 1 << 7, Period: 4, Seed: 99})
	if c.Completed != a.Completed {
		t.Fatalf("seed changed completion: %d vs %d", c.Completed, a.Completed)
	}
}

// TestSampledSlowPathEquivalence: the gate and the off-window skip must act
// identically in the superblock fast path and the one-step reference
// interpreter.
func TestSampledSlowPathEquivalence(t *testing.T) {
	prog, s, names := buildMixedWorkload(4)
	sim := SimConfig{Mode: SimSampled, WindowOps: 1 << 7, Period: 4}
	run := func(slow bool) *Result {
		cache := coherence.SmallCache()
		r, err := NewRunner(prog, Config{Topo: machine.Bus4(), Cache: cache, Seed: 7, Sim: sim})
		if err != nil {
			t.Fatal(err)
		}
		r.slowPath = slow
		if err := r.DefineArena(origLayout(t, s), 4); err != nil {
			t.Fatal(err)
		}
		for cpu, name := range names {
			if err := r.AddThread(cpu, name, nil, 3); err != nil {
				t.Fatal(err)
			}
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if fast, slow := run(false), run(true); !reflect.DeepEqual(fast, slow) {
		t.Fatalf("sampled fast path diverges from reference: %+v vs %+v", fast.Coherence, slow.Coherence)
	}
}

// TestSampledRejectsCollector: PMU collection needs every access; the
// combination must fail loudly, not silently degrade the trace.
func TestSampledRejectsCollector(t *testing.T) {
	prog, s, names := buildMixedWorkload(4)
	smp := &sampling.Config{IntervalCycles: 500, Seed: 11}
	r, err := NewRunner(prog, Config{Topo: machine.Bus4(), Cache: coherence.SmallCache(), Seed: 7, Sampling: smp, Sim: SimConfig{Mode: SimSampled}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DefineArena(origLayout(t, s), 4); err != nil {
		t.Fatal(err)
	}
	for cpu, name := range names {
		if err := r.AddThread(cpu, name, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("sampled+collector run succeeded; want error")
	}
}

// TestParseSimMode covers the flag surface.
func TestParseSimMode(t *testing.T) {
	for in, want := range map[string]SimMode{"": SimExact, "exact": SimExact, "sampled": SimSampled} {
		got, err := ParseSimMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSimMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSimMode("fast"); err == nil {
		t.Fatal("ParseSimMode accepted garbage")
	}
	if SimExact.String() != "exact" || SimSampled.String() != "sampled" {
		t.Fatal("SimMode.String mismatch")
	}
}

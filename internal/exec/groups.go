package exec

import "structlayout/internal/ir"

// fpKey is one element of a thread's static memory footprint: a concrete
// arena instance (arena >= 0) or a shared region (arena == -1, inst is the
// region index). Arenas and regions are allocated line-aligned with guard
// lines, so footprint-disjoint threads are cache-line-disjoint.
type fpKey struct {
	arena int
	inst  int
}

// footprint is everything a thread can statically touch.
type footprint struct {
	keys   map[fpKey]struct{}
	arenas map[int]struct{} // arena.idx values touched at all
	wild   map[int]struct{} // arenas touched with a statically unresolvable instance
}

// threadGroups partitions the run's threads into groups whose static
// footprints are pairwise disjoint. Threads in distinct groups can never
// touch the same cache line or lock, so the groups can execute
// concurrently against the sharded coherence directory (each group drives
// its own lines and CPUs) with results byte-identical to a serial run.
//
// Grouping is enabled by shard mode (Cache.Shards > 1); PMU collection
// pins everything to one group, since the collector's trace is a single
// globally-ordered stream. The analysis is conservative: an instance
// expression it cannot resolve statically (loop-variable indexing, or a
// parameter index that would resolve negative) marks the whole arena as
// conflicting with every thread that touches it.
func (r *Runner) threadGroups() [][]*thread {
	if r.cfg.Cache.Shards <= 1 || r.collector != nil || len(r.threads) <= 1 {
		return [][]*thread{r.threads}
	}
	fps := make([]footprint, len(r.threads))
	for i, t := range r.threads {
		fps[i] = r.footprintOf(t)
	}

	parent := make([]int, len(r.threads))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// Threads sharing a concrete instance or shared region conflict.
	owner := make(map[fpKey]int)
	for ti := range fps {
		for k := range fps[ti].keys {
			if o, ok := owner[k]; ok {
				union(o, ti)
			} else {
				owner[k] = ti
			}
		}
	}
	// A wildcard on an arena conflicts with every toucher of that arena.
	touchers := make(map[int][]int)
	wild := make(map[int]bool)
	for ti := range fps {
		for a := range fps[ti].arenas {
			touchers[a] = append(touchers[a], ti)
		}
		for a := range fps[ti].wild {
			wild[a] = true
		}
	}
	for a, ts := range touchers {
		if wild[a] {
			for _, ti := range ts[1:] {
				union(ts[0], ti)
			}
		}
	}

	// Assemble components. Iterating threads in id order makes both the
	// group order (by smallest member) and the order within each group
	// deterministic.
	byRoot := make(map[int]int)
	var groups [][]*thread
	for ti, t := range r.threads {
		root := find(ti)
		gi, ok := byRoot[root]
		if !ok {
			gi = len(groups)
			byRoot[root] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], t)
	}
	return groups
}

// footprintOf walks every ExecNode reachable from the thread's entry
// procedure (following calls, cycle-safe) and collects the instances and
// regions its decoded instructions can address.
func (r *Runner) footprintOf(t *thread) footprint {
	fp := footprint{
		keys:   make(map[fpKey]struct{}),
		arenas: make(map[int]struct{}),
		wild:   make(map[int]struct{}),
	}
	visited := map[*ir.Procedure]bool{t.entry: true}
	var walk func(nodes []ir.ExecNode)
	walk = func(nodes []ir.ExecNode) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *ir.ExecBlock:
				dins := r.dec[n.Block.Global]
				for i := range dins {
					d := &dins[i]
					switch d.op {
					case ir.OpCall:
						if !visited[d.callee] {
							visited[d.callee] = true
							walk(d.callee.Tree)
						}
					case ir.OpField, ir.OpLock, ir.OpUnlock:
						a := d.arena
						fp.arenas[a.idx] = struct{}{}
						inst := -1
						switch d.inst.Kind {
						case ir.InstShared:
							inst = d.inst.Index % a.count
						case ir.InstPerCPU:
							inst = t.cpu % a.count
						case ir.InstParam:
							if d.inst.Index < len(t.params) {
								inst = t.params[d.inst.Index] % a.count
							}
						}
						if inst < 0 {
							fp.wild[a.idx] = struct{}{}
						} else {
							fp.keys[fpKey{a.idx, inst}] = struct{}{}
						}
					case ir.OpMem:
						// Per-thread regions are private (one thread per
						// CPU); shared regions conflict whole.
						if !d.region.perThread {
							fp.keys[fpKey{-1, int(d.regionIdx)}] = struct{}{}
						}
					}
				}
			case *ir.ExecLoop:
				walk(n.Body)
			case *ir.ExecIf:
				walk(n.Then)
				walk(n.Else)
			}
		}
	}
	walk(t.entry.Tree)
	return fp
}

package exec

import (
	"fmt"
	"math/rand"

	"structlayout/internal/coherence"
	"structlayout/internal/ir"
)

// frameKind discriminates interpreter stack frames.
type frameKind uint8

const (
	fSeq frameKind = iota
	fLoop
	fIf
	fBlock
)

// frame is one entry of a thread's explicit interpreter stack. Threads must
// be suspendable between any two instructions (the scheduler interleaves by
// virtual time), so the interpreter cannot use Go recursion.
type frame struct {
	kind frameKind

	nodes []ir.ExecNode // fSeq
	idx   int           // fSeq: next node; fBlock: next instruction

	loop *ir.ExecLoop // fLoop
	iter int64        // fLoop: next iteration index

	ifn *ir.ExecIf // fIf (phase: arm already pushed; next step counts join)

	block *ir.BasicBlock // fBlock
	dins  []decInstr     // fBlock: the block's pre-decoded instructions
}

// thread is one simulated kernel thread pinned to a CPU.
type thread struct {
	id     int
	cpu    int
	entry  *ir.Procedure
	params []int
	iters  int64
	rng    *rand.Rand

	time     int64
	stack    []frame
	loopVals []int64 // innermost loop induction values, last = innermost
	cursors  []int64 // per-region streaming cursors, indexed by region
	curBlock *ir.BasicBlock

	done   bool
	parked bool
}

func (t *thread) pushSeq(nodes []ir.ExecNode) {
	t.stack = append(t.stack, frame{kind: fSeq, nodes: nodes})
}

// step advances the thread by one interpreter action (typically one
// instruction). It updates profile counts, virtual time, coherence state
// and samples as side effects.
func (r *Runner) step(t *thread) error {
	if len(t.stack) == 0 {
		// One top-level iteration ("script") finished.
		r.completed++
		t.iters--
		if t.iters <= 0 {
			t.done = true
			return nil
		}
		t.pushSeq(t.entry.Tree)
		return nil
	}
	f := &t.stack[len(t.stack)-1]
	switch f.kind {
	case fSeq:
		if f.idx >= len(f.nodes) {
			t.pop()
			return nil
		}
		n := f.nodes[f.idx]
		f.idx++
		switch n := n.(type) {
		case *ir.ExecBlock:
			r.prof.IncrBlock(n.Block.Global)
			t.curBlock = n.Block
			if len(n.Block.Instrs) == 0 {
				t.time += r.cfg.BranchCost
				r.sample(t)
			} else if dins := r.dec[n.Block.Global]; !r.slowPath && r.collector == nil && len(dins) == 1 && dins[0].op == ir.OpCompute {
				// A pure-compute block (decode merged its instructions into
				// one) needs no frame: charge its cycles at entry. Invisible
				// to scheduling — the yield check still runs right after.
				t.time += dins[0].cycles
			} else {
				t.stack = append(t.stack, frame{kind: fBlock, block: n.Block, dins: dins})
			}
		case *ir.ExecLoop:
			r.prof.AddLoop(n.Loop.Global, n.Count)
			t.stack = append(t.stack, frame{kind: fLoop, loop: n})
			t.loopVals = append(t.loopVals, 0)
		case *ir.ExecIf:
			r.prof.IncrBlock(n.Cond.Global)
			t.curBlock = n.Cond
			t.time += r.cfg.BranchCost
			r.sample(t)
			arm := n.Then
			if t.rng.Float64() >= n.Prob {
				arm = n.Else
			}
			t.stack = append(t.stack, frame{kind: fIf, ifn: n})
			t.pushSeq(arm)
		default:
			return fmt.Errorf("exec: unknown node %T", n)
		}
	case fLoop:
		// Each visit is one header test.
		r.prof.IncrBlock(f.loop.Loop.Header.Global)
		t.curBlock = f.loop.Loop.Header
		t.time += r.cfg.BranchCost
		r.sample(t)
		if f.iter < f.loop.Count {
			t.loopVals[len(t.loopVals)-1] = f.iter
			f.iter++
			t.pushSeq(f.loop.Body)
		} else {
			t.loopVals = t.loopVals[:len(t.loopVals)-1]
			t.pop()
		}
	case fIf:
		r.prof.IncrBlock(f.ifn.Join.Global)
		t.curBlock = f.ifn.Join
		t.time += r.cfg.BranchCost
		r.sample(t)
		t.pop()
	case fBlock:
		if f.idx >= len(f.dins) {
			t.pop()
			return nil
		}
		in := &f.dins[f.idx]
		f.idx++
		return r.execInstr(t, in)
	}
	return nil
}

func (t *thread) pop() { t.stack = t.stack[:len(t.stack)-1] }

// sample lets the collector observe the thread's new time.
func (r *Runner) sample(t *thread) {
	if r.collector != nil {
		r.collector.Tick(t.cpu, t.time, t.curBlock)
	}
}

// resolveInstance maps an instance expression to a concrete index.
func (r *Runner) resolveInstance(t *thread, a *arena, e ir.InstExpr) (int, error) {
	switch e.Kind {
	case ir.InstShared:
		return e.Index % a.count, nil
	case ir.InstPerCPU:
		return t.cpu % a.count, nil
	case ir.InstParam:
		if e.Index >= len(t.params) {
			return 0, fmt.Errorf("exec: thread %d has no param %d", t.id, e.Index)
		}
		return t.params[e.Index] % a.count, nil
	case ir.InstLoopVar:
		if len(t.loopVals) == 0 {
			return 0, fmt.Errorf("exec: loopvar instance outside any loop")
		}
		return int(t.loopVals[len(t.loopVals)-1] % int64(a.count)), nil
	default:
		return 0, fmt.Errorf("exec: unknown instance kind %d", e.Kind)
	}
}

// execInstr runs one pre-decoded instruction, charging latency and
// recording stats.
func (r *Runner) execInstr(t *thread, in *decInstr) error {
	switch in.op {
	case ir.OpCompute:
		t.time += in.cycles
		r.sample(t)
	case ir.OpCall:
		t.time += r.cfg.CallOverhead
		t.pushSeq(in.callee.Tree)
		r.sample(t)
	case ir.OpField:
		a := in.arena
		idx, err := r.resolveInstance(t, a, in.inst)
		if err != nil {
			return err
		}
		addr := a.base + int64(idx)*a.stride + in.fieldOff
		res := r.coh.Access(t.cpu, addr, in.size, in.write)
		t.time += res.Latency
		r.record(a, in.field, res.Latency, res)
		r.sample(t)
	case ir.OpMem:
		addr, err := r.memAddr(t, in)
		if err != nil {
			return err
		}
		res := r.coh.Access(t.cpu, addr, 8, in.write)
		t.time += res.Latency
		r.sample(t)
	case ir.OpLock:
		return r.execLock(t, in)
	case ir.OpUnlock:
		return r.execUnlock(t, in)
	default:
		return fmt.Errorf("exec: unknown opcode %d", in.op)
	}
	return nil
}

// memAddr resolves a region access address.
func (r *Runner) memAddr(t *thread, in *decInstr) (int64, error) {
	reg := in.region
	base := reg.base
	if reg.perThread {
		base += int64(t.cpu) * reg.stride
	}
	span := reg.size - 8
	if span < 1 {
		span = 1
	}
	var off int64
	switch in.pattern {
	case ir.MemSeq:
		cur := t.cursors[in.regionIdx]
		stride := in.stride
		if stride == 0 {
			stride = 8
		}
		off = cur % span
		t.cursors[in.regionIdx] = cur + stride
	case ir.MemFixed:
		off = in.offset % span
	case ir.MemRand:
		off = t.rng.Int63n(span)
	default:
		return 0, fmt.Errorf("exec: unknown memory pattern %d", in.pattern)
	}
	return base + off, nil
}

// lockFor resolves the lock state and lock-word address for a lock/unlock
// instruction.
func (r *Runner) lockFor(t *thread, in *decInstr) (*lockState, int64, error) {
	a := in.arena
	idx, err := r.resolveInstance(t, a, in.inst)
	if err != nil {
		return nil, 0, err
	}
	addr := a.base + int64(idx)*a.stride + in.fieldOff
	return &a.locks[idx*len(a.stats)+int(in.field)], addr, nil
}

// execLock acquires a field-resident spinlock: a read-modify-write of the
// lock word. Contended acquisition parks the thread FIFO; the release path
// hands the lock (and the cache line, at cache-to-cache cost) to the first
// waiter. Every acquisition dirties the lock's line, so co-locating a hot
// lock with read-mostly fields produces exactly the false-sharing traffic
// the paper's CycleLoss term is meant to catch.
func (r *Runner) execLock(t *thread, in *decInstr) error {
	ls, addr, err := r.lockFor(t, in)
	if err != nil {
		return err
	}
	if ls.holder == nil {
		ls.holder = t
		res := r.coh.Access(t.cpu, addr, in.size, true)
		t.time += res.Latency
		r.record(in.arena, in.field, res.Latency, res)
		r.sample(t)
		return nil
	}
	if ls.holder == t {
		return fmt.Errorf("exec: thread %d re-acquires lock %s.%d it already holds", t.id, in.arena.name, in.field)
	}
	ls.waiters = append(ls.waiters, t)
	t.parked = true
	return nil
}

// execUnlock releases the lock and wakes the next waiter.
func (r *Runner) execUnlock(t *thread, in *decInstr) error {
	ls, addr, err := r.lockFor(t, in)
	if err != nil {
		return err
	}
	if ls.holder != t {
		return fmt.Errorf("exec: thread %d releases lock %s.%d it does not hold", t.id, in.arena.name, in.field)
	}
	res := r.coh.Access(t.cpu, addr, in.size, true)
	t.time += res.Latency
	r.record(in.arena, in.field, res.Latency, res)
	r.sample(t)

	if len(ls.waiters) == 0 {
		ls.holder = nil
		return nil
	}
	w := ls.waiters[0]
	ls.waiters = ls.waiters[1:]
	ls.holder = w
	// The waiter resumes after the release, paying the lock-word transfer.
	wake := t.time + r.cfg.LockHandoff
	if w.time > wake {
		wake = w.time
	}
	w.time = wake
	wres := r.coh.Access(w.cpu, addr, in.size, true)
	w.time += wres.Latency
	r.record(in.arena, in.field, wres.Latency, wres)
	if r.collector != nil {
		r.collector.Tick(w.cpu, w.time, w.curBlock)
	}
	r.woken = append(r.woken, w)
	return nil
}

// record attributes an access result to the field's statistics.
func (r *Runner) record(a *arena, field int32, latency int64, res coherence.AccessResult) {
	fs := &a.stats[field]
	fs.Accesses++
	fs.StallCycles += latency
	switch res.Miss {
	case coherence.MissNone:
	case coherence.MissUpgrade:
		fs.Upgrades++
	case coherence.MissCoherence:
		fs.Misses++
		fs.CohMisses++
	default:
		fs.Misses++
	}
	if res.FalseSharing {
		fs.FalseSharing++
		// Attribute the causing write to its field too, when it lands in a
		// known arena.
		if ca, fi := r.fieldAtAddr(res.WriterAddr); ca != nil {
			ca.stats[fi].CausedFalseSharing++
		}
	}
}

// fieldAtAddr reverse-maps an address to the arena and field occupying it.
// Arenas never overlap, so scanning the (short) definition-ordered list is
// deterministic.
func (r *Runner) fieldAtAddr(addr int64) (*arena, int) {
	for _, a := range r.arenaList {
		if addr < a.base || addr >= a.base+a.stride*int64(a.count) {
			continue
		}
		off := int((addr - a.base) % a.stride)
		if fi := a.lay.FieldAt(off); fi >= 0 {
			return a, fi
		}
		return nil, -1
	}
	return nil, -1
}

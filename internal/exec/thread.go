package exec

import (
	"fmt"
	"math/rand"

	"structlayout/internal/coherence"
	"structlayout/internal/ir"
)

// frameKind discriminates interpreter stack frames.
type frameKind uint8

const (
	fSeq frameKind = iota
	fLoop
	fIf
	fBlock
)

// frame is one entry of a thread's explicit interpreter stack. Threads must
// be suspendable between any two instructions (the scheduler interleaves by
// virtual time), so the interpreter cannot use Go recursion.
type frame struct {
	kind frameKind

	nodes []ir.ExecNode // fSeq
	idx   int           // fSeq: next node; fBlock: next instruction

	loop *ir.ExecLoop // fLoop
	iter int64        // fLoop: next iteration index

	ifn *ir.ExecIf // fIf (phase: arm already pushed; next step counts join)

	block *ir.BasicBlock // fBlock
	dins  []decInstr     // fBlock: the block's pre-decoded instructions
}

// thread is one simulated kernel thread pinned to a CPU.
type thread struct {
	id     int
	cpu    int
	entry  *ir.Procedure
	params []int
	iters  int64
	rng    *rand.Rand

	time     int64
	stack    []frame
	loopVals []int64 // innermost loop induction values, last = innermost
	cursors  []int64 // per-region streaming cursors, indexed by region
	curBlock *ir.BasicBlock

	done   bool
	parked bool

	// Sampled-mode state (see sim.go): the access counter that clocks the
	// sampling windows, the cached decision for the current window, and
	// the count of off-window (warmed, unmeasured) accesses.
	ops     int64 // memory accesses issued, the sampling clock
	winEnd  int64
	winOn   bool
	simSeed uint64 // per-thread window-schedule seed
	offOps  uint64

	// Precomputed instance tables (buildInstTables): a thread's per-CPU
	// and parameter-indexed arena instances are fixed for the whole run,
	// so the access hot path replaces the per-access modulo with a load.
	instPerCPU []int32 // by arena.idx
	instParam  []int32 // by arena.idx*Runner.nparams + param index
}

// buildInstTables fills every thread's instance tables. Called once at Run
// start, after arenas and threads are final.
func (r *Runner) buildInstTables() {
	for _, t := range r.threads {
		if len(t.params) > r.nparams {
			r.nparams = len(t.params)
		}
	}
	for _, t := range r.threads {
		t.instPerCPU = make([]int32, len(r.arenaList))
		t.instParam = make([]int32, len(r.arenaList)*r.nparams)
		for _, a := range r.arenaList {
			t.instPerCPU[a.idx] = int32(t.cpu % a.count)
			for p, v := range t.params {
				t.instParam[a.idx*r.nparams+p] = int32(v % a.count)
			}
		}
	}
}

// instIndex resolves a decoded instruction's instance: shared instances
// were resolved at decode, per-CPU and parameter instances come from the
// thread's tables, and only loop-variable instances (which change every
// iteration) take the generic path.
func (r *Runner) instIndex(t *thread, a *arena, in *decInstr) (int, error) {
	switch in.inst.Kind {
	case ir.InstShared:
		return int(in.instIdx), nil
	case ir.InstPerCPU:
		return int(t.instPerCPU[a.idx]), nil
	case ir.InstParam:
		if in.inst.Index >= len(t.params) {
			return 0, fmt.Errorf("exec: thread %d has no param %d", t.id, in.inst.Index)
		}
		return int(t.instParam[a.idx*r.nparams+in.inst.Index]), nil
	}
	return r.resolveInstance(t, a, in.inst)
}

func (t *thread) pushSeq(nodes []ir.ExecNode) {
	t.stack = append(t.stack, frame{kind: fSeq, nodes: nodes})
}

// step advances the thread by one interpreter action (typically one
// instruction). It updates profile counts, virtual time, coherence state
// and samples as side effects. It returns true when the thread must yield
// before a shared instruction it no longer has the right to execute.
func (g *engine) step(t *thread, limit int64) (bool, error) {
	r := g.r
	if len(t.stack) == 0 {
		// One top-level iteration ("script") finished.
		g.completed++
		t.iters--
		if t.iters <= 0 {
			t.done = true
			return false, nil
		}
		t.pushSeq(t.entry.Tree)
		return false, nil
	}
	f := &t.stack[len(t.stack)-1]
	switch f.kind {
	case fSeq:
		if f.idx >= len(f.nodes) {
			t.pop()
			return false, nil
		}
		n := f.nodes[f.idx]
		f.idx++
		switch n := n.(type) {
		case *ir.ExecBlock:
			g.prof.IncrBlock(n.Block.Global)
			t.curBlock = n.Block
			if len(n.Block.Instrs) == 0 {
				t.time += r.cfg.BranchCost
				g.sample(t)
			} else if dins := r.dec[n.Block.Global]; !r.slowPath && r.collector == nil && len(dins) == 1 && dins[0].op == ir.OpCompute {
				// A pure-compute block (decode merged its instructions into
				// one) needs no frame: charge its cycles at entry. Invisible
				// to scheduling — computes never yield.
				t.time += dins[0].cycles
			} else {
				t.stack = append(t.stack, frame{kind: fBlock, block: n.Block, dins: dins})
			}
		case *ir.ExecLoop:
			g.prof.AddLoop(n.Loop.Global, n.Count)
			t.stack = append(t.stack, frame{kind: fLoop, loop: n})
			t.loopVals = append(t.loopVals, 0)
		case *ir.ExecIf:
			g.prof.IncrBlock(n.Cond.Global)
			t.curBlock = n.Cond
			t.time += r.cfg.BranchCost
			g.sample(t)
			arm := n.Then
			if t.rng.Float64() >= n.Prob {
				arm = n.Else
			}
			t.stack = append(t.stack, frame{kind: fIf, ifn: n})
			t.pushSeq(arm)
		default:
			return false, fmt.Errorf("exec: unknown node %T", n)
		}
	case fLoop:
		// Each visit is one header test.
		g.prof.IncrBlock(f.loop.Loop.Header.Global)
		t.curBlock = f.loop.Loop.Header
		t.time += r.cfg.BranchCost
		g.sample(t)
		if f.iter < f.loop.Count {
			t.loopVals[len(t.loopVals)-1] = f.iter
			f.iter++
			t.pushSeq(f.loop.Body)
		} else {
			t.loopVals = t.loopVals[:len(t.loopVals)-1]
			t.pop()
		}
	case fIf:
		g.prof.IncrBlock(f.ifn.Join.Global)
		t.curBlock = f.ifn.Join
		t.time += r.cfg.BranchCost
		g.sample(t)
		t.pop()
	case fBlock:
		if f.idx >= len(f.dins) {
			t.pop()
			return false, nil
		}
		in := &f.dins[f.idx]
		if g.yieldCheck(t, limit, in) {
			return true, nil
		}
		f.idx++
		return false, g.execInstr(t, in)
	}
	return false, nil
}

func (t *thread) pop() { t.stack = t.stack[:len(t.stack)-1] }

// sample lets the collector observe the thread's new time.
func (g *engine) sample(t *thread) {
	if g.r.collector != nil {
		g.r.collector.Tick(t.cpu, t.time, t.curBlock)
	}
}

// resolveInstance maps an instance expression to a concrete index.
func (r *Runner) resolveInstance(t *thread, a *arena, e ir.InstExpr) (int, error) {
	switch e.Kind {
	case ir.InstShared:
		return e.Index % a.count, nil
	case ir.InstPerCPU:
		return t.cpu % a.count, nil
	case ir.InstParam:
		if e.Index >= len(t.params) {
			return 0, fmt.Errorf("exec: thread %d has no param %d", t.id, e.Index)
		}
		return t.params[e.Index] % a.count, nil
	case ir.InstLoopVar:
		if len(t.loopVals) == 0 {
			return 0, fmt.Errorf("exec: loopvar instance outside any loop")
		}
		return int(t.loopVals[len(t.loopVals)-1] % int64(a.count)), nil
	default:
		return 0, fmt.Errorf("exec: unknown instance kind %d", e.Kind)
	}
}

// execInstr runs one pre-decoded instruction, charging latency and
// recording stats.
func (g *engine) execInstr(t *thread, in *decInstr) error {
	r := g.r
	switch in.op {
	case ir.OpCompute:
		t.time += in.cycles
		g.sample(t)
	case ir.OpCall:
		t.time += r.cfg.CallOverhead
		t.pushSeq(in.callee.Tree)
		g.sample(t)
	case ir.OpField:
		a := in.arena
		idx, err := r.instIndex(t, a, in)
		if err != nil {
			return err
		}
		addr := a.base + int64(idx)*a.stride + in.fieldOff
		if r.sim.enabled && !r.simNext(t) {
			// Off-window: functional warming. The MESI transition (and its
			// real latency) happens; only the statistics are discarded, so
			// the next measured window opens on exact-run cache state.
			res := r.coh.Warm(t.cpu, addr, in.size, in.write)
			t.time += res.Latency
			t.offOps++
			return nil
		}
		var res coherence.AccessResult
		r.coh.AccessInto(t.cpu, addr, in.size, in.write, &res)
		t.time += res.Latency
		g.record(a, in.field, &res)
		g.sample(t)
	case ir.OpMem:
		addr, err := r.memAddr(t, in)
		if err != nil {
			return err
		}
		if r.sim.enabled && !r.simNext(t) {
			res := r.coh.Warm(t.cpu, addr, 8, in.write)
			t.time += res.Latency
			t.offOps++
			return nil
		}
		var res coherence.AccessResult
		r.coh.AccessInto(t.cpu, addr, 8, in.write, &res)
		t.time += res.Latency
		g.sample(t)
	case ir.OpLock:
		return g.execLock(t, in)
	case ir.OpUnlock:
		return g.execUnlock(t, in)
	case ir.OpSpawn, ir.OpJoin, ir.OpSend, ir.OpRecv:
		// Static-only markers (see decode): no time, no traffic.
	default:
		return fmt.Errorf("exec: unknown opcode %d", in.op)
	}
	return nil
}

// memAddr resolves a region access address.
func (r *Runner) memAddr(t *thread, in *decInstr) (int64, error) {
	reg := in.region
	base := reg.base
	if reg.perThread {
		base += int64(t.cpu) * reg.stride
	}
	span := reg.size - 8
	if span < 1 {
		span = 1
	}
	var off int64
	switch in.pattern {
	case ir.MemSeq:
		cur := t.cursors[in.regionIdx]
		stride := in.stride
		if stride == 0 {
			stride = 8
		}
		off = cur % span
		t.cursors[in.regionIdx] = cur + stride
	case ir.MemFixed:
		off = in.offset % span
	case ir.MemRand:
		off = t.rng.Int63n(span)
	default:
		return 0, fmt.Errorf("exec: unknown memory pattern %d", in.pattern)
	}
	return base + off, nil
}

// lockAccess performs a lock-word access. In sampled mode these are always
// measured whatever window is open, so they form their own stratum
// (coherence.AccessPinned): the extrapolation adds them at weight 1 instead
// of multiplying them by the window stratum's inverse sampling rate.
func (r *Runner) lockAccess(cpu int, addr int64, size int, write bool) coherence.AccessResult {
	if r.sim.enabled {
		return r.coh.AccessPinned(cpu, addr, size, write)
	}
	return r.coh.Access(cpu, addr, size, write)
}

// lockFor resolves the lock state and lock-word address for a lock/unlock
// instruction.
func (r *Runner) lockFor(t *thread, in *decInstr) (*lockState, int64, error) {
	a := in.arena
	idx, err := r.instIndex(t, a, in)
	if err != nil {
		return nil, 0, err
	}
	addr := a.base + int64(idx)*a.stride + in.fieldOff
	return &a.locks[idx*len(a.stats)+int(in.field)], addr, nil
}

// execLock acquires a field-resident spinlock: a read-modify-write of the
// lock word. Contended acquisition parks the thread FIFO; the release path
// hands the lock (and the cache line, at cache-to-cache cost) to the first
// waiter. Every acquisition dirties the lock's line, so co-locating a hot
// lock with read-mostly fields produces exactly the false-sharing traffic
// the paper's CycleLoss term is meant to catch.
func (g *engine) execLock(t *thread, in *decInstr) error {
	r := g.r
	ls, addr, err := r.lockFor(t, in)
	if err != nil {
		return err
	}
	if ls.holder == nil {
		ls.holder = t
		res := r.lockAccess(t.cpu, addr, in.size, true)
		t.time += res.Latency
		g.record(in.arena, in.field, &res)
		g.sample(t)
		return nil
	}
	if ls.holder == t {
		return fmt.Errorf("exec: thread %d re-acquires lock %s.%d it already holds", t.id, in.arena.name, in.field)
	}
	ls.waiters = append(ls.waiters, t)
	t.parked = true
	return nil
}

// execUnlock releases the lock and wakes the next waiter. Waking makes the
// caller's runUntil return immediately, so the scheduler recomputes its
// limit with the woken thread back in the queue.
func (g *engine) execUnlock(t *thread, in *decInstr) error {
	r := g.r
	ls, addr, err := r.lockFor(t, in)
	if err != nil {
		return err
	}
	if ls.holder != t {
		return fmt.Errorf("exec: thread %d releases lock %s.%d it does not hold", t.id, in.arena.name, in.field)
	}
	res := r.lockAccess(t.cpu, addr, in.size, true)
	t.time += res.Latency
	g.record(in.arena, in.field, &res)
	g.sample(t)

	if len(ls.waiters) == 0 {
		ls.holder = nil
		return nil
	}
	w := ls.waiters[0]
	ls.waiters = ls.waiters[1:]
	ls.holder = w
	// The waiter resumes after the release, paying the lock-word transfer.
	wake := t.time + r.cfg.LockHandoff
	if w.time > wake {
		wake = w.time
	}
	w.time = wake
	wres := r.lockAccess(w.cpu, addr, in.size, true)
	w.time += wres.Latency
	g.record(in.arena, in.field, &wres)
	if r.collector != nil {
		r.collector.Tick(w.cpu, w.time, w.curBlock)
	}
	g.woken = append(g.woken, w)
	return nil
}

// record attributes an access result to the field's statistics in the
// engine's group-local slices.
func (g *engine) record(a *arena, field int32, res *coherence.AccessResult) {
	fs := &g.stats[a.idx][field]
	fs.Accesses++
	fs.StallCycles += res.Latency
	switch res.Miss {
	case coherence.MissNone:
	case coherence.MissUpgrade:
		fs.Upgrades++
	case coherence.MissCoherence:
		fs.Misses++
		fs.CohMisses++
	default:
		fs.Misses++
	}
	if res.FalseSharing {
		fs.FalseSharing++
		// Attribute the causing write to its field too, when it lands in a
		// known arena. The writer's line is in this group's footprint, so
		// the group-local slice is the right accumulator.
		if ca, fi := g.r.fieldAtAddr(res.WriterAddr); ca != nil {
			g.stats[ca.idx][fi].CausedFalseSharing++
		}
	}
}

// fieldAtAddr reverse-maps an address to the arena and field occupying it.
// Arenas never overlap, so scanning the (short) definition-ordered list is
// deterministic.
func (r *Runner) fieldAtAddr(addr int64) (*arena, int) {
	for _, a := range r.arenaList {
		if addr < a.base || addr >= a.base+a.stride*int64(a.count) {
			continue
		}
		off := int((addr - a.base) % a.stride)
		if fi := a.lay.FieldAt(off); fi >= 0 {
			return a, fi
		}
		return nil, -1
	}
	return nil, -1
}

package exec

import (
	"fmt"
	"math/rand"

	"structlayout/internal/coherence"
	"structlayout/internal/ir"
)

// frameKind discriminates interpreter stack frames.
type frameKind uint8

const (
	fSeq frameKind = iota
	fLoop
	fIf
	fBlock
)

// frame is one entry of a thread's explicit interpreter stack. Threads must
// be suspendable between any two instructions (the scheduler interleaves by
// virtual time), so the interpreter cannot use Go recursion.
type frame struct {
	kind frameKind

	nodes []ir.ExecNode // fSeq
	idx   int           // fSeq: next node; fBlock: next instruction

	loop *ir.ExecLoop // fLoop
	iter int64        // fLoop: next iteration index

	ifn *ir.ExecIf // fIf (phase: arm already pushed; next step counts join)

	block *ir.BasicBlock // fBlock
}

// thread is one simulated kernel thread pinned to a CPU.
type thread struct {
	id     int
	cpu    int
	entry  *ir.Procedure
	params []int
	iters  int64
	rng    *rand.Rand

	time     int64
	stack    []frame
	loopVals []int64          // innermost loop induction values, last = innermost
	cursors  map[string]int64 // per-region streaming cursors
	curBlock *ir.BasicBlock

	done   bool
	parked bool
}

func (t *thread) pushSeq(nodes []ir.ExecNode) {
	t.stack = append(t.stack, frame{kind: fSeq, nodes: nodes})
}

// step advances the thread by one interpreter action (typically one
// instruction). It updates profile counts, virtual time, coherence state
// and samples as side effects.
func (r *Runner) step(t *thread) error {
	if len(t.stack) == 0 {
		// One top-level iteration ("script") finished.
		r.completed++
		t.iters--
		if t.iters <= 0 {
			t.done = true
			return nil
		}
		t.pushSeq(t.entry.Tree)
		return nil
	}
	f := &t.stack[len(t.stack)-1]
	switch f.kind {
	case fSeq:
		if f.idx >= len(f.nodes) {
			t.pop()
			return nil
		}
		n := f.nodes[f.idx]
		f.idx++
		switch n := n.(type) {
		case *ir.ExecBlock:
			r.prof.IncrBlock(n.Block.Global)
			t.curBlock = n.Block
			if len(n.Block.Instrs) == 0 {
				t.time += r.cfg.BranchCost
				r.sample(t)
			} else {
				t.stack = append(t.stack, frame{kind: fBlock, block: n.Block})
			}
		case *ir.ExecLoop:
			r.prof.AddLoop(n.Loop.Global, n.Count)
			t.stack = append(t.stack, frame{kind: fLoop, loop: n})
			t.loopVals = append(t.loopVals, 0)
		case *ir.ExecIf:
			r.prof.IncrBlock(n.Cond.Global)
			t.curBlock = n.Cond
			t.time += r.cfg.BranchCost
			r.sample(t)
			arm := n.Then
			if t.rng.Float64() >= n.Prob {
				arm = n.Else
			}
			t.stack = append(t.stack, frame{kind: fIf, ifn: n})
			t.pushSeq(arm)
		default:
			return fmt.Errorf("exec: unknown node %T", n)
		}
	case fLoop:
		// Each visit is one header test.
		r.prof.IncrBlock(f.loop.Loop.Header.Global)
		t.curBlock = f.loop.Loop.Header
		t.time += r.cfg.BranchCost
		r.sample(t)
		if f.iter < f.loop.Count {
			t.loopVals[len(t.loopVals)-1] = f.iter
			f.iter++
			t.pushSeq(f.loop.Body)
		} else {
			t.loopVals = t.loopVals[:len(t.loopVals)-1]
			t.pop()
		}
	case fIf:
		r.prof.IncrBlock(f.ifn.Join.Global)
		t.curBlock = f.ifn.Join
		t.time += r.cfg.BranchCost
		r.sample(t)
		t.pop()
	case fBlock:
		if f.idx >= len(f.block.Instrs) {
			t.pop()
			return nil
		}
		in := f.block.Instrs[f.idx]
		f.idx++
		return r.execInstr(t, in)
	}
	return nil
}

func (t *thread) pop() { t.stack = t.stack[:len(t.stack)-1] }

// sample lets the collector observe the thread's new time.
func (r *Runner) sample(t *thread) {
	if r.collector != nil {
		r.collector.Tick(t.cpu, t.time, t.curBlock)
	}
}

// resolveInstance maps an instance expression to a concrete index.
func (r *Runner) resolveInstance(t *thread, a *arena, e ir.InstExpr) (int, error) {
	switch e.Kind {
	case ir.InstShared:
		return e.Index % a.count, nil
	case ir.InstPerCPU:
		return t.cpu % a.count, nil
	case ir.InstParam:
		if e.Index >= len(t.params) {
			return 0, fmt.Errorf("exec: thread %d has no param %d", t.id, e.Index)
		}
		return t.params[e.Index] % a.count, nil
	case ir.InstLoopVar:
		if len(t.loopVals) == 0 {
			return 0, fmt.Errorf("exec: loopvar instance outside any loop")
		}
		return int(t.loopVals[len(t.loopVals)-1] % int64(a.count)), nil
	default:
		return 0, fmt.Errorf("exec: unknown instance kind %d", e.Kind)
	}
}

// fieldAddr computes the address and size of a field access.
func (r *Runner) fieldAddr(t *thread, in ir.Instr) (int64, int, error) {
	a := r.arenas[in.Struct.Name]
	idx, err := r.resolveInstance(t, a, in.Inst)
	if err != nil {
		return 0, 0, err
	}
	return a.base + int64(idx)*a.stride + int64(a.lay.Offsets[in.Field]), in.Struct.Fields[in.Field].Size, nil
}

// execInstr runs one instruction, charging latency and recording stats.
func (r *Runner) execInstr(t *thread, in ir.Instr) error {
	switch in.Op {
	case ir.OpCompute:
		t.time += in.Cycles
		r.sample(t)
	case ir.OpCall:
		t.time += r.cfg.CallOverhead
		callee := r.prog.Proc(in.Callee)
		t.pushSeq(callee.Tree)
		r.sample(t)
	case ir.OpField:
		addr, size, err := r.fieldAddr(t, in)
		if err != nil {
			return err
		}
		res := r.coh.Access(t.cpu, addr, size, in.Acc == ir.Write)
		t.time += res.Latency
		r.recordField(in, res.Latency, res)
		r.sample(t)
	case ir.OpMem:
		addr, err := r.memAddr(t, in)
		if err != nil {
			return err
		}
		res := r.coh.Access(t.cpu, addr, 8, in.Acc == ir.Write)
		t.time += res.Latency
		r.sample(t)
	case ir.OpLock:
		return r.execLock(t, in)
	case ir.OpUnlock:
		return r.execUnlock(t, in)
	default:
		return fmt.Errorf("exec: unknown opcode %d", in.Op)
	}
	return nil
}

// memAddr resolves a region access address.
func (r *Runner) memAddr(t *thread, in ir.Instr) (int64, error) {
	reg := r.regions[in.Region]
	if reg == nil {
		return 0, fmt.Errorf("exec: unknown region %q", in.Region)
	}
	base := reg.base
	if reg.perThread {
		base += int64(t.cpu) * reg.stride
	}
	span := reg.size - 8
	if span < 1 {
		span = 1
	}
	var off int64
	switch in.Pattern {
	case ir.MemSeq:
		cur := t.cursors[in.Region]
		stride := in.Stride
		if stride == 0 {
			stride = 8
		}
		off = cur % span
		t.cursors[in.Region] = cur + stride
	case ir.MemFixed:
		off = in.Offset % span
	case ir.MemRand:
		off = t.rng.Int63n(span)
	default:
		return 0, fmt.Errorf("exec: unknown memory pattern %d", in.Pattern)
	}
	return base + off, nil
}

// lockKeyFor resolves the lock identity for a lock/unlock instruction.
func (r *Runner) lockKeyFor(t *thread, in ir.Instr) (lockKey, int64, error) {
	a := r.arenas[in.Struct.Name]
	idx, err := r.resolveInstance(t, a, in.Inst)
	if err != nil {
		return lockKey{}, 0, err
	}
	addr := a.base + int64(idx)*a.stride + int64(a.lay.Offsets[in.Field])
	return lockKey{structName: in.Struct.Name, instance: idx, field: in.Field}, addr, nil
}

// execLock acquires a field-resident spinlock: a read-modify-write of the
// lock word. Contended acquisition parks the thread FIFO; the release path
// hands the lock (and the cache line, at cache-to-cache cost) to the first
// waiter. Every acquisition dirties the lock's line, so co-locating a hot
// lock with read-mostly fields produces exactly the false-sharing traffic
// the paper's CycleLoss term is meant to catch.
func (r *Runner) execLock(t *thread, in ir.Instr) error {
	key, addr, err := r.lockKeyFor(t, in)
	if err != nil {
		return err
	}
	ls := r.locks[key]
	if ls == nil {
		ls = &lockState{}
		r.locks[key] = ls
	}
	if ls.holder == nil {
		ls.holder = t
		res := r.coh.Access(t.cpu, addr, in.Struct.Fields[in.Field].Size, true)
		t.time += res.Latency
		r.recordField(in, res.Latency, res)
		r.sample(t)
		return nil
	}
	if ls.holder == t {
		return fmt.Errorf("exec: thread %d re-acquires lock %v it already holds", t.id, key)
	}
	ls.waiters = append(ls.waiters, t)
	t.parked = true
	return nil
}

// execUnlock releases the lock and wakes the next waiter.
func (r *Runner) execUnlock(t *thread, in ir.Instr) error {
	key, addr, err := r.lockKeyFor(t, in)
	if err != nil {
		return err
	}
	ls := r.locks[key]
	if ls == nil || ls.holder != t {
		return fmt.Errorf("exec: thread %d releases lock %v it does not hold", t.id, key)
	}
	res := r.coh.Access(t.cpu, addr, in.Struct.Fields[in.Field].Size, true)
	t.time += res.Latency
	r.recordField(in, res.Latency, res)
	r.sample(t)

	if len(ls.waiters) == 0 {
		ls.holder = nil
		return nil
	}
	w := ls.waiters[0]
	ls.waiters = ls.waiters[1:]
	ls.holder = w
	// The waiter resumes after the release, paying the lock-word transfer.
	wake := t.time + r.cfg.LockHandoff
	if w.time > wake {
		wake = w.time
	}
	w.time = wake
	wres := r.coh.Access(w.cpu, addr, in.Struct.Fields[in.Field].Size, true)
	w.time += wres.Latency
	r.recordField(in, wres.Latency, wres)
	if r.collector != nil {
		r.collector.Tick(w.cpu, w.time, w.curBlock)
	}
	r.woken = append(r.woken, w)
	return nil
}

// recordField attributes an access result to the field's statistics.
func (r *Runner) recordField(in ir.Instr, latency int64, res coherence.AccessResult) {
	key := FieldRef{Struct: in.Struct.Name, Field: in.Field}
	fs := r.fields[key]
	if fs == nil {
		fs = &FieldStat{}
		r.fields[key] = fs
	}
	fs.Accesses++
	fs.StallCycles += latency
	switch res.Miss {
	case coherence.MissNone:
	case coherence.MissUpgrade:
		fs.Upgrades++
	case coherence.MissCoherence:
		fs.Misses++
		fs.CohMisses++
	default:
		fs.Misses++
	}
	if res.FalseSharing {
		fs.FalseSharing++
		// Attribute the causing write to its field too, when it lands in a
		// known arena.
		if ref, ok := r.fieldAtAddr(res.WriterAddr); ok {
			cf := r.fields[ref]
			if cf == nil {
				cf = &FieldStat{}
				r.fields[ref] = cf
			}
			cf.CausedFalseSharing++
		}
	}
}

// fieldAtAddr reverse-maps an address to the struct field occupying it.
func (r *Runner) fieldAtAddr(addr int64) (FieldRef, bool) {
	for name, a := range r.arenas {
		if addr < a.base || addr >= a.base+a.stride*int64(a.count) {
			continue
		}
		off := int((addr - a.base) % a.stride)
		if fi := a.lay.FieldAt(off); fi >= 0 {
			return FieldRef{Struct: name, Field: fi}, true
		}
		return FieldRef{}, false
	}
	return FieldRef{}, false
}

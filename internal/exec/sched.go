package exec

import (
	"fmt"
	"math/bits"

	"structlayout/internal/ir"
	"structlayout/internal/profile"
)

// engine is the execution state of one thread group: the scheduler queue
// plus every accumulator written on the hot path (profile counts, dense
// per-arena field stats, completion counter, wake list). Groups with
// disjoint static footprints (see threadGroups) share nothing but the
// coherence system — which they drive on disjoint lines and CPUs — so
// engines can run concurrently and merge commutatively, byte-identical to
// a serial run.
type engine struct {
	r       *Runner
	threads []*thread

	// idShift packs a thread's scheduling key (time, id) into one int64:
	// time<<idShift | id. A single integer compare is then the full
	// lexicographic order, removing the tie-break branch from every heap
	// compare and yield check. idShift is the bit width of the group's
	// largest thread id; timeCap guards the shift against overflow.
	idShift uint
	timeCap int64

	prof  *profile.Profile
	stats [][]FieldStat // per-arena (by arena.idx) field statistics
	woken []*thread     // threads released by the current step's unlock

	completed int64
}

func (r *Runner) newEngine(ts []*thread) *engine {
	g := &engine{r: r, threads: ts, prof: profile.New(r.prog)}
	maxID := 0
	for _, t := range ts {
		if t.id > maxID {
			maxID = t.id
		}
	}
	g.idShift = uint(bits.Len(uint(maxID)))
	g.timeCap = int64(1) << (62 - g.idShift)
	g.stats = make([][]FieldStat, len(r.arenaList))
	for i, a := range r.arenaList {
		g.stats[i] = make([]FieldStat, len(a.stats))
	}
	return g
}

// merge folds a finished engine's accumulators into the runner. Every
// accumulator is a commutative sum, so merge order cannot affect results.
func (r *Runner) merge(g *engine) error {
	r.completed += g.completed
	for i, a := range r.arenaList {
		for fi := range g.stats[i] {
			s, d := &g.stats[i][fi], &a.stats[fi]
			d.Accesses += s.Accesses
			d.Misses += s.Misses
			d.CohMisses += s.CohMisses
			d.Upgrades += s.Upgrades
			d.FalseSharing += s.FalseSharing
			d.CausedFalseSharing += s.CausedFalseSharing
			d.StallCycles += s.StallCycles
		}
	}
	return r.prof.Merge(g.prof)
}

// key packs a thread's (time, id) into its single-compare scheduling key.
func (g *engine) key(t *thread) int64 {
	return t.time<<g.idShift | int64(t.id)
}

// run executes the group's threads to completion.
//
// Scheduling invariant: a shared operation (lock/unlock always; field and
// region accesses unless sampled off-window) executes only when its
// thread's pre-op (time, id) is the lexicographic minimum over the group's
// runnable threads. Non-shared operations (compute, calls, control
// bookkeeping, off-window accesses) never yield — they are invisible to
// other threads, so executing them past the limit commutes with everything.
// The order of shared operations is therefore a pure function of the
// threads' virtual-time trajectories, independent of yield granularity and
// of whatever other groups do — which is what makes group-parallel
// execution byte-identical to serial.
func (g *engine) run() error {
	q := make(tq, 0, len(g.threads))
	for _, t := range g.threads {
		q.push(g.key(t), t)
	}
	parked := 0
	for len(q) > 0 {
		t := q[0].t
		limit := int64(1<<63 - 1)
		if len(q) > 1 {
			// The limit is the next-smallest key: the lesser child of the
			// heap root.
			limit = q[1].key
			if len(q) > 2 && q[2].key < limit {
				limit = q[2].key
			}
		}
		if err := g.runUntil(t, limit); err != nil {
			return err
		}
		if t.time >= g.timeCap {
			// Unreachable in practice (2^55 cycles for a 128-thread group);
			// fail loudly rather than let the packed key wrap.
			return fmt.Errorf("exec: thread %d virtual time %d exceeds scheduler cap %d", t.id, t.time, g.timeCap)
		}
		switch {
		case t.done:
			q.popRoot()
		case t.parked:
			q.popRoot()
			parked++
		default:
			q.syncRoot(g.key(t))
		}
		// Re-queue anything the step released. runUntil returns the moment
		// a wake happens, so the next iteration's limit includes the woken
		// thread — without this, the running thread could race past it.
		for _, w := range g.woken {
			w.parked = false
			parked--
			q.push(g.key(w), w)
		}
		g.woken = g.woken[:0]
	}
	if parked > 0 {
		return fmt.Errorf("exec: deadlock: %d threads still parked", parked)
	}
	return nil
}

// yieldCheck reports whether the thread must yield before executing in: its
// pre-op key (time, id) is no longer the group minimum AND the op is shared.
// Off-window accesses in sampled mode get a bounded dispensation instead of
// a full exemption: they may run up to simSlack cycles past the limit
// before yielding. The slack is what buys the speedup (the thread crosses
// the scheduler once per slack span instead of once per access), and its
// bound is what contains the model error — a warm write can commit at most
// simSlack cycles of virtual time earlier than exact order, so it cannot
// invalidate a line a far-future reader would have hit.
func (g *engine) yieldCheck(t *thread, limit int64, in *decInstr) bool {
	if g.key(t) <= limit {
		return false
	}
	switch in.op {
	case ir.OpField, ir.OpMem:
		if g.r.sim.enabled && !g.r.simOn(t) {
			return t.time > limit>>g.idShift+g.r.sim.slack
		}
		return true
	case ir.OpLock, ir.OpUnlock:
		return true
	}
	return false
}

// tq is an inline binary min-heap on packed (time, id) keys. It replaces
// container/heap on the scheduler's hottest edge: the common transition
// "root ran, root's time grew" is one sift-down with no interface calls.
// The keys live inline in the heap entries — a 128-thread group's whole
// heap is a few cache lines of contiguous keys — so sifting never chases
// thread pointers; only the root's key is refreshed (syncRoot) after its
// thread runs. Binary beats higher arity here: the root's key typically
// grows only just past the lesser child (the scheduling limit), so sifts
// terminate after a level or two and wider nodes only add compares.
type tqEnt struct {
	key int64 // engine.key(t): time<<idShift | id
	t   *thread
}

type tq []tqEnt

func (q *tq) push(key int64, t *thread) {
	*q = append(*q, tqEnt{key: key, t: t})
	h := *q
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[i].key >= h[p].key {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// syncRoot refreshes the root's key and restores heap order (the key can
// only have grown).
func (q tq) syncRoot(key int64) {
	q[0].key = key
	q.fixRoot()
}

// fixRoot restores heap order after the root's key increased. The sift
// moves a hole down and writes the displaced entry once at the end: after
// a long-latency miss the root sinks most of the way to the bottom, and
// the hole form does one entry store per level where a swap does three.
func (q tq) fixRoot() {
	n := len(q)
	if n < 2 {
		return
	}
	ent := q[0]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q[r].key < q[l].key {
			m = r
		}
		if q[m].key >= ent.key {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = ent
}

func (q *tq) popRoot() {
	h := *q
	n := len(h) - 1
	h[0] = h[n]
	h[n] = tqEnt{}
	*q = h[:n]
	if n > 1 {
		(*q).fixRoot()
	}
}

package exec

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/ir"
)

// FalseSharingRow is one line of the false-sharing report.
type FalseSharingRow struct {
	Ref  FieldRef
	Name string
	Stat FieldStat
}

// TopFalseSharing ranks fields by observed false-sharing events (ground
// truth from the coherence simulator), breaking ties by stall cycles. This
// is the detector's view — what a tool like perf c2c shows — whereas the
// layout pipeline must *predict* the same hazards from CodeConcurrency
// before they happen.
func (r *Result) TopFalseSharing(p *ir.Program, n int) []FalseSharingRow {
	rows := make([]FalseSharingRow, 0, len(r.Fields))
	for ref, fs := range r.Fields {
		if fs.FalseSharing == 0 && fs.CohMisses == 0 && fs.Upgrades == 0 && fs.CausedFalseSharing == 0 {
			continue
		}
		name := ref.Struct
		if st := p.Struct(ref.Struct); st != nil && ref.Field < len(st.Fields) {
			name = ref.Struct + "." + st.Fields[ref.Field].Name
		}
		rows = append(rows, FalseSharingRow{Ref: ref, Name: name, Stat: *fs})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].Stat, rows[j].Stat
		av, bv := a.FalseSharing+a.CausedFalseSharing, b.FalseSharing+b.CausedFalseSharing
		if av != bv {
			return av > bv
		}
		if a.StallCycles != b.StallCycles {
			return a.StallCycles > b.StallCycles
		}
		return rows[i].Name < rows[j].Name
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// FalseSharingReport renders the top-n offenders.
func (r *Result) FalseSharingReport(p *ir.Program, n int) string {
	rows := r.TopFalseSharing(p, n)
	if len(rows) == 0 {
		return "no coherence traffic attributed to struct fields\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %10s %10s %10s %10s %10s %14s\n",
		"field", "accesses", "coh-miss", "upgrades", "fs-victim", "fs-cause", "stall-cycles")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-32s %10d %10d %10d %10d %10d %14d\n",
			row.Name, row.Stat.Accesses, row.Stat.CohMisses, row.Stat.Upgrades,
			row.Stat.FalseSharing, row.Stat.CausedFalseSharing, row.Stat.StallCycles)
	}
	return sb.String()
}

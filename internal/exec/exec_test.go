package exec

import (
	"fmt"
	"strings"
	"testing"

	"structlayout/internal/coherence"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/profile"
	"structlayout/internal/sampling"
)

// origLayout builds the declaration-order layout at a 128-byte line,
// failing the test on error.
func origLayout(t testing.TB, st *ir.StructType) *layout.Layout {
	t.Helper()
	l, err := layout.Original(st, 128)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func i64f(i int) ir.Field { return ir.I64(fmt.Sprintf("f%02d", i)) }

// buildCounterWorkload builds per-CPU procedures each hammering its own
// counter field of the one shared instance — the canonical false-sharing
// workload.
func buildCounterWorkload(ncpu int, iters int64) (*ir.Program, *ir.StructType, []string) {
	p := ir.NewProgram("counters")
	fields := make([]ir.Field, ncpu)
	for i := range fields {
		fields[i] = i64f(i)
	}
	s := ir.NewStruct("Ctr", fields...)
	p.AddStruct(s)
	names := make([]string, ncpu)
	for cpu := 0; cpu < ncpu; cpu++ {
		name := procName(cpu)
		b := p.NewProc(name)
		fi := cpu
		b.Loop(iters, func(b *ir.Builder) {
			b.ReadI(s, fi, ir.Shared(0))
			b.WriteI(s, fi, ir.Shared(0))
		})
		b.Done()
		names[cpu] = name
	}
	return p.MustFinalize(), s, names
}

func procName(cpu int) string {
	return "worker" + string(rune('A'+cpu))
}

func runCounters(t *testing.T, lay func(*ir.StructType) *layout.Layout, topo *machine.Topology, ncpu int) *Result {
	t.Helper()
	p, s, names := buildCounterWorkload(ncpu, 2000)
	r, err := NewRunner(p, Config{Topo: topo, Cache: coherence.DefaultItanium(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DefineArena(lay(s), 4); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < ncpu; cpu++ {
		if err := r.AddThread(cpu, names[cpu], nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFalseSharingCostsCycles(t *testing.T) {
	topo := machine.Superdome128()
	// Dense layout: all four counters in one 128B line.
	dense := func(s *ir.StructType) *layout.Layout { return origLayout(t, s) }
	// Spread layout: one counter per line via one-cluster-per-line packing.
	spread := func(s *ir.StructType) *layout.Layout {
		clusters := make([][]int, len(s.Fields))
		for i := range clusters {
			clusters[i] = []int{i}
		}
		l, err := layout.PackClusters(s, "spread", clusters, 128, layout.PackOptions{OneClusterPerLine: true})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	// Use 4 CPUs spread across crossbars for maximal coherence cost.
	resDense := runCounters(t, dense, topo, 4)
	resSpread := runCounters(t, spread, topo, 4)

	if resDense.Coherence.FalseSharing == 0 {
		t.Fatal("dense layout produced no false sharing")
	}
	if resSpread.Coherence.FalseSharing != 0 {
		t.Fatalf("spread layout produced %d false-sharing events", resSpread.Coherence.FalseSharing)
	}
	if resDense.Cycles <= 2*resSpread.Cycles {
		t.Fatalf("dense (%d cycles) should be far slower than spread (%d)", resDense.Cycles, resSpread.Cycles)
	}
}

func TestProfileMatchesStaticEstimate(t *testing.T) {
	// Single thread, no branches: measured profile must equal the static
	// estimate exactly.
	p := ir.NewProgram("prof")
	s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"))
	p.AddStruct(s)
	b := p.NewProc("main")
	b.Write(s, "a", ir.Shared(0))
	b.Loop(10, func(b *ir.Builder) {
		b.Read(s, "a", ir.Shared(0))
		b.Loop(5, func(b *ir.Builder) {
			b.Write(s, "b", ir.Shared(0))
		})
	})
	b.Done()
	p.MustFinalize()

	r, err := NewRunner(p, Config{Topo: machine.Uniprocessor(), Cache: coherence.DefaultItanium(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DefineArena(origLayout(t, s), 1); err != nil {
		t.Fatal(err)
	}
	if err := r.AddThread(0, "main", nil, 1); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := profile.StaticEstimate(p, []string{"main"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Blocks {
		if res.Profile.Blocks[i] != want.Blocks[i] {
			t.Fatalf("block %d: measured %v, static %v", i, res.Profile.Blocks[i], want.Blocks[i])
		}
	}
	if res.Profile.LoopIters[0] != 10 || res.Profile.LoopIters[1] != 50 {
		t.Fatalf("loop iters = %v", res.Profile.LoopIters)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		p, s, names := buildCounterWorkload(4, 500)
		r, _ := NewRunner(p, Config{Topo: machine.Bus4(), Cache: coherence.DefaultItanium(), Seed: 99,
			Sampling: &sampling.Config{IntervalCycles: 1000, DriftMaxCycles: 4, LossProb: 0.05, Seed: 3}})
		_ = r.DefineArena(origLayout(t, s), 1)
		for cpu := 0; cpu < 4; cpu++ {
			_ = r.AddThread(cpu, names[cpu], nil, 2)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Completed != b.Completed {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Cycles, a.Completed, b.Cycles, b.Completed)
	}
	if len(a.Trace.Samples) != len(b.Trace.Samples) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace.Samples), len(b.Trace.Samples))
	}
	for i := range a.Trace.Samples {
		if a.Trace.Samples[i] != b.Trace.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestLockSerializes(t *testing.T) {
	p := ir.NewProgram("locks")
	s := ir.NewStruct("L", ir.I64("lock"), ir.I64("data"))
	p.AddStruct(s)
	for cpu := 0; cpu < 4; cpu++ {
		b := p.NewProc(procName(cpu))
		b.Loop(50, func(b *ir.Builder) {
			b.Lock(s, "lock", ir.Shared(0))
			b.Read(s, "data", ir.Shared(0))
			b.Write(s, "data", ir.Shared(0))
			b.Compute(200)
			b.Unlock(s, "lock", ir.Shared(0))
		})
		b.Done()
	}
	p.MustFinalize()

	r, err := NewRunner(p, Config{Topo: machine.Bus4(), Cache: coherence.DefaultItanium(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DefineArena(origLayout(t, s), 1); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 4; cpu++ {
		if err := r.AddThread(cpu, procName(cpu), nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 4 threads × 50 critical sections × ≥200 cycles must serialize.
	if res.Cycles < 4*50*200 {
		t.Fatalf("cycles = %d; critical sections did not serialize", res.Cycles)
	}
	if res.Completed != 4 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestUnlockWithoutHoldErrors(t *testing.T) {
	p := ir.NewProgram("badlock")
	s := ir.NewStruct("L", ir.I64("lock"))
	p.AddStruct(s)
	b := p.NewProc("main")
	b.Unlock(s, "lock", ir.Shared(0))
	b.Done()
	p.MustFinalize()

	r, _ := NewRunner(p, Config{Topo: machine.Uniprocessor(), Cache: coherence.DefaultItanium()})
	_ = r.DefineArena(origLayout(t, s), 1)
	_ = r.AddThread(0, "main", nil, 1)
	if _, err := r.Run(); err == nil {
		t.Fatal("expected unlock-without-hold error")
	}
}

func TestSelfDeadlockErrors(t *testing.T) {
	p := ir.NewProgram("selfdead")
	s := ir.NewStruct("L", ir.I64("lock"))
	p.AddStruct(s)
	b := p.NewProc("main")
	b.Lock(s, "lock", ir.Shared(0))
	b.Lock(s, "lock", ir.Shared(0))
	b.Done()
	p.MustFinalize()

	r, _ := NewRunner(p, Config{Topo: machine.Uniprocessor(), Cache: coherence.DefaultItanium()})
	_ = r.DefineArena(origLayout(t, s), 1)
	_ = r.AddThread(0, "main", nil, 1)
	if _, err := r.Run(); err == nil {
		t.Fatal("expected re-acquire error")
	}
}

func TestMissingArenaErrors(t *testing.T) {
	p := ir.NewProgram("noarena")
	s := ir.NewStruct("S", ir.I64("a"))
	p.AddStruct(s)
	b := p.NewProc("main")
	b.Read(s, "a", ir.Shared(0))
	b.Done()
	p.MustFinalize()

	r, _ := NewRunner(p, Config{Topo: machine.Uniprocessor(), Cache: coherence.DefaultItanium()})
	_ = r.AddThread(0, "main", nil, 1)
	if _, err := r.Run(); err == nil {
		t.Fatal("expected missing-arena error")
	}
}

func TestThreadValidation(t *testing.T) {
	p := ir.NewProgram("tv")
	b := p.NewProc("main")
	b.Compute(1)
	b.Done()
	p.MustFinalize()
	r, _ := NewRunner(p, Config{Topo: machine.Bus4(), Cache: coherence.DefaultItanium()})
	if err := r.AddThread(99, "main", nil, 1); err == nil {
		t.Fatal("cpu out of range accepted")
	}
	if err := r.AddThread(0, "ghost", nil, 1); err == nil {
		t.Fatal("unknown proc accepted")
	}
	if err := r.AddThread(0, "main", nil, 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
	if err := r.AddThread(0, "main", nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.AddThread(0, "main", nil, 1); err == nil {
		t.Fatal("duplicate cpu accepted")
	}
}

func TestParamAndPerCPUInstances(t *testing.T) {
	p := ir.NewProgram("inst")
	s := ir.NewStruct("S", ir.I64("a"))
	p.AddStruct(s)
	b := p.NewProc("main")
	b.Write(s, "a", ir.Param(0))
	b.Write(s, "a", ir.PerCPU())
	b.Loop(3, func(b *ir.Builder) {
		b.Write(s, "a", ir.LoopVar())
	})
	b.Done()
	p.MustFinalize()

	r, _ := NewRunner(p, Config{Topo: machine.Bus4(), Cache: coherence.DefaultItanium(), Seed: 2})
	_ = r.DefineArena(origLayout(t, s), 8)
	if err := r.AddThread(2, "main", []int{5}, 1); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 5 distinct instances touched: param->5, percpu->2, loopvar->0,1,2.
	// All are cold misses (plus hits for re-touch of instance 2).
	fs := res.Fields[FieldRef{Struct: "S", Field: 0}]
	if fs == nil || fs.Accesses != 5 {
		t.Fatalf("field accesses = %+v", fs)
	}
	if fs.Misses != 4 { // instance 2 touched twice: one hit
		t.Fatalf("misses = %d, want 4", fs.Misses)
	}
}

func TestLoopVarOutsideLoopErrors(t *testing.T) {
	p := ir.NewProgram("lv")
	s := ir.NewStruct("S", ir.I64("a"))
	p.AddStruct(s)
	b := p.NewProc("main")
	b.Write(s, "a", ir.LoopVar())
	b.Done()
	p.MustFinalize()
	r, _ := NewRunner(p, Config{Topo: machine.Uniprocessor(), Cache: coherence.DefaultItanium()})
	_ = r.DefineArena(origLayout(t, s), 1)
	_ = r.AddThread(0, "main", nil, 1)
	if _, err := r.Run(); err == nil {
		t.Fatal("expected loopvar error")
	}
}

func TestSamplingProducesTrace(t *testing.T) {
	p, s, names := buildCounterWorkload(4, 2000)
	r, _ := NewRunner(p, Config{Topo: machine.Bus4(), Cache: coherence.DefaultItanium(), Seed: 4,
		Sampling: &sampling.Config{IntervalCycles: 500, DriftMaxCycles: 3, LossProb: 0, Seed: 8}})
	_ = r.DefineArena(origLayout(t, s), 1)
	for cpu := 0; cpu < 4; cpu++ {
		_ = r.AddThread(cpu, names[cpu], nil, 1)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	cpus := map[int]bool{}
	for _, smp := range res.Trace.Samples {
		cpus[smp.CPU] = true
		if smp.Block < 0 || int(smp.Block) >= p.NumBlocks() {
			t.Fatalf("sample block %d out of range", smp.Block)
		}
	}
	if len(cpus) != 4 {
		t.Fatalf("sampled %d CPUs, want 4", len(cpus))
	}
}

func TestMemRegionTraffic(t *testing.T) {
	p := ir.NewProgram("mem")
	p.AddRegion("buf", 1<<20, false)
	p.AddRegion("priv", 1<<16, true)
	b := p.NewProc("main")
	b.Loop(1000, func(b *ir.Builder) {
		b.MemSweep("buf", ir.Read, 128)
		b.MemRandom("priv", ir.Write)
		b.MemAt("buf", ir.Read, 64)
	})
	b.Done()
	p.MustFinalize()

	r, _ := NewRunner(p, Config{Topo: machine.Uniprocessor(), Cache: coherence.SmallCache(), Seed: 6})
	_ = r.AddThread(0, "main", nil, 1)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 3000 instruction-level accesses; random 8-byte accesses may straddle
	// a line boundary and count twice at coherence granularity.
	if res.Coherence.Accesses < 3000 || res.Coherence.Accesses > 3200 {
		t.Fatalf("accesses = %d", res.Coherence.Accesses)
	}
	// The streaming sweep through 1 MiB must evict lines in a small cache.
	if res.Coherence.ReplMisses == 0 {
		t.Fatal("no replacement misses from streaming sweep")
	}
}

func TestRunnerRunsOnce(t *testing.T) {
	p := ir.NewProgram("once")
	b := p.NewProc("main")
	b.Compute(1)
	b.Done()
	p.MustFinalize()
	r, _ := NewRunner(p, Config{Topo: machine.Uniprocessor(), Cache: coherence.DefaultItanium()})
	_ = r.AddThread(0, "main", nil, 1)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestFalseSharingReport(t *testing.T) {
	p, s, names := buildCounterWorkload(4, 500)
	r, _ := NewRunner(p, Config{Topo: machine.Superdome128(), Cache: coherence.DefaultItanium(), Seed: 2})
	_ = r.DefineArena(origLayout(t, s), 1)
	for cpu := 0; cpu < 4; cpu++ {
		_ = r.AddThread(cpu*32, names[cpu], nil, 1)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.TopFalseSharing(p, 10)
	if len(rows) == 0 {
		t.Fatal("counter ping-pong produced no report rows")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Stat.FalseSharing+rows[i].Stat.CausedFalseSharing > rows[i-1].Stat.FalseSharing+rows[i-1].Stat.CausedFalseSharing {
			t.Fatal("rows not sorted by false sharing")
		}
	}
	if !strings.Contains(rows[0].Name, "Ctr.") {
		t.Fatalf("row name %q lacks struct.field form", rows[0].Name)
	}
	text := res.FalseSharingReport(p, 3)
	if !strings.Contains(text, "fs-victim") || !strings.Contains(text, "Ctr.") {
		t.Fatalf("report malformed:\n%s", text)
	}
	lines := strings.Count(text, "\n")
	if lines != 4 { // header + 3 rows
		t.Fatalf("report has %d lines, want 4:\n%s", lines, text)
	}
}

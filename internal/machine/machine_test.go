package machine

import (
	"testing"
	"testing/quick"
)

func TestBuiltinsValidate(t *testing.T) {
	for _, topo := range []*Topology{Superdome128(), Way16(), Bus4(), Uniprocessor()} {
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
	}
}

func TestCPUCounts(t *testing.T) {
	cases := map[string]int{"Superdome128": 128, "Way16": 16, "Bus4": 4, "UP1": 1}
	for _, topo := range []*Topology{Superdome128(), Way16(), Bus4(), Uniprocessor()} {
		if got := topo.NumCPUs(); got != cases[topo.Name] {
			t.Fatalf("%s: NumCPUs = %d, want %d", topo.Name, got, cases[topo.Name])
		}
	}
}

func TestSuperdomeDistances(t *testing.T) {
	sd := Superdome128()
	// CPU coordinates: [crossbar, cell, bus, chip, core]; strides:
	// crossbar=32, cell=8, bus=4, chip=2, core=1.
	cases := []struct {
		a, b int
		want int64
	}{
		{0, 1, 80},    // same chip, sibling core
		{0, 2, 150},   // same bus, other chip
		{0, 4, 220},   // same cell, other bus
		{0, 8, 400},   // same crossbar, other cell
		{0, 32, 1000}, // other crossbar
		{0, 127, 1000},
	}
	for _, c := range cases {
		if got := sd.TransferLatency(c.a, c.b); got != c.want {
			t.Fatalf("TransferLatency(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := sd.TransferLatency(5, 5); got != sd.HitLatency {
		t.Fatalf("self transfer = %d, want hit latency", got)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	sd := Superdome128()
	f := func(a, b uint8) bool {
		x, y := int(a)%128, int(b)%128
		return sd.Distance(x, y) == sd.Distance(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferMonotoneInDistance(t *testing.T) {
	sd := Superdome128()
	// Latency must not decrease as topological distance grows.
	prev := int64(0)
	for d := len(sd.Shape) - 1; d >= 0; d-- {
		if sd.CacheToCache[d] < prev {
			t.Fatalf("latency at level %d (%d) below finer level (%d)", d, sd.CacheToCache[d], prev)
		}
		prev = sd.CacheToCache[d]
	}
}

func TestBus4Flat(t *testing.T) {
	b := Bus4()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			if got := b.TransferLatency(i, j); got != 130 {
				t.Fatalf("bus transfer(%d,%d) = %d", i, j, got)
			}
		}
	}
	// The 4-way box: remote cache only slightly above a memory access.
	if b.CacheToCache[0] > 2*b.MemBase {
		t.Fatal("Bus4 remote-cache latency should be near an L2 miss")
	}
}

func TestMemLatencyHomeAffinity(t *testing.T) {
	sd := Superdome128()
	var local, remote int64
	for line := int64(0); line < 1<<16; line += 37 {
		l := sd.MemLatency(0, line)
		if sd.HomeNode(line) == 0 {
			local = l
		} else {
			remote = l
		}
	}
	if local == 0 || remote == 0 {
		t.Fatal("did not observe both local and remote homes")
	}
	if remote <= local {
		t.Fatalf("remote memory (%d) not slower than local (%d)", remote, local)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	sd := Superdome128()
	for cpu := 0; cpu < sd.NumCPUs(); cpu++ {
		c := sd.Coord(cpu)
		// Recompose.
		got := 0
		for i, v := range c {
			got += v * sd.strides[i]
		}
		if got != cpu {
			t.Fatalf("coord round trip: cpu %d -> %v -> %d", cpu, c, got)
		}
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	bad := []*Topology{
		{Name: "empty", Shape: nil, CacheToCache: nil, MemBase: 1, HitLatency: 1, ClockHz: 1},
		{Name: "zero fanout", Shape: []int{0}, CacheToCache: []int64{1}, MemBase: 1, HitLatency: 1, ClockHz: 1},
		{Name: "wrong lat count", Shape: []int{2, 2}, CacheToCache: []int64{5}, MemBase: 1, HitLatency: 1, ClockHz: 1},
		{Name: "inverted lat", Shape: []int{2, 2}, CacheToCache: []int64{5, 50}, MemBase: 1, HitLatency: 1, ClockHz: 1},
		{Name: "no clock", Shape: []int{2}, CacheToCache: []int64{5}, MemBase: 1, HitLatency: 1, ClockHz: 0},
	}
	for _, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", topo.Name)
		}
	}
}

func TestSeconds(t *testing.T) {
	sd := Superdome128()
	if got := sd.Seconds(1_200_000_000); got != 1.0 {
		t.Fatalf("Seconds = %v, want 1.0", got)
	}
}

func TestIntermediateSuperdomes(t *testing.T) {
	sd32, sd64, sd128 := Superdome32(), Superdome64(), Superdome128()
	if sd32.NumCPUs() != 32 || sd64.NumCPUs() != 64 {
		t.Fatalf("cpu counts: %d, %d", sd32.NumCPUs(), sd64.NumCPUs())
	}
	// Worst-case transfer latency is monotone in machine size.
	worst := func(topo *Topology) int64 { return topo.CacheToCache[0] }
	if worst(sd32) > worst(sd64) || worst(sd64) > worst(sd128) {
		t.Fatal("worst-case latency should not shrink with machine size")
	}
	// Same-chip latency is identical across the family.
	if sd32.TransferLatency(0, 1) != sd128.TransferLatency(0, 1) {
		t.Fatal("same-chip latency differs across the Superdome family")
	}
}

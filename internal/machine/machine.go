// Package machine models the multiprocessor topologies of the paper's
// evaluation (§5): a 128-processor HP Superdome (64 dual-CPU mx2 chips, two
// chips per bus, two buses per cell, four cells per crossbar, four crossbars
// connected together), a small 4-processor bus machine, and the 16-way
// machine used to collect concurrency data (§4.3).
//
// A topology is a tree of grouping levels. The cost of a cache-to-cache
// transfer or a memory access depends on the first (coarsest) level at which
// the two endpoints' coordinates differ — intra-cell latencies are smaller
// than intra-crossbar latencies, which are smaller than inter-crossbar
// latencies; the paper quotes ~1000 cycles for an inter-crossbar cache
// access and "only slightly higher than an L2 miss" for the 4-way bus box.
package machine

import (
	"fmt"
	"strings"
)

// MaxCPUs bounds the processor count a topology may declare; it keeps a
// malformed shape (data-driven topologies) from sizing simulator state to
// absurdity. The paper's largest machine has 128 CPUs.
const MaxCPUs = 1 << 16

// Topology describes one machine.
type Topology struct {
	// Name identifies the machine in reports ("Superdome128", "Bus4", ...).
	Name string
	// Shape lists the fan-out per level from coarsest to finest; the product
	// is the CPU count. Superdome128 is [4 crossbars, 4 cells, 2 buses,
	// 2 chips, 2 cores].
	Shape []int
	// CacheToCache[d] is the latency in cycles of a cache-to-cache line
	// transfer between two CPUs whose coordinates first differ at level d
	// (0 = coarsest). CacheToCache[len(Shape)] is the same-CPU case and is
	// unused for transfers. Must have len(Shape) entries (d in 0..len-1).
	CacheToCache []int64
	// MemBase is the latency of a memory access whose home node is the
	// CPU's own top-level domain.
	MemBase int64
	// MemPerLevel is added once per level separating the CPU from the
	// line's home node (distributed memory: remote-cell memory is slower).
	MemPerLevel int64
	// HitLatency is a cache hit in the CPU's own cache.
	HitLatency int64
	// ClockHz converts cycles to wall time; the paper's CPUs run at 1.2 GHz.
	ClockHz float64

	numCPUs int
	strides []int
	// xfer is the precomputed n×n cache-to-cache latency table (including
	// the same-CPU hit case), built by Validate for machines small enough
	// that the quadratic table is cheap. It turns the per-access
	// TransferLatency from a div/mod loop over levels into one load — the
	// coherence simulator calls it on every remote fetch and invalidation.
	xfer []int64
	// topOf[cpu] is the CPU's coarsest-level coordinate (home-domain check
	// in MemLatency).
	topOf []int32
}

// xferTableMax bounds the CPU count for which Validate precomputes the
// quadratic transfer-latency table (512² × 8 B = 2 MiB worst case).
const xferTableMax = 512

// Validate checks internal consistency and precomputes coordinate strides.
func (t *Topology) Validate() error {
	if len(t.Shape) == 0 {
		return fmt.Errorf("machine %s: empty shape", t.Name)
	}
	n := 1
	for _, s := range t.Shape {
		if s <= 0 {
			return fmt.Errorf("machine %s: non-positive fan-out %d", t.Name, s)
		}
		n *= s
		if n > MaxCPUs {
			return fmt.Errorf("machine %s: %d CPUs exceeds the supported maximum %d", t.Name, n, MaxCPUs)
		}
	}
	if len(t.CacheToCache) != len(t.Shape) {
		return fmt.Errorf("machine %s: CacheToCache has %d entries, want %d", t.Name, len(t.CacheToCache), len(t.Shape))
	}
	for d := 1; d < len(t.CacheToCache); d++ {
		if t.CacheToCache[d] > t.CacheToCache[d-1] {
			return fmt.Errorf("machine %s: latency increases with distance: level %d (%d) > level %d (%d)",
				t.Name, d, t.CacheToCache[d], d-1, t.CacheToCache[d-1])
		}
	}
	if t.HitLatency <= 0 || t.MemBase <= 0 || t.ClockHz <= 0 {
		return fmt.Errorf("machine %s: non-positive base latencies", t.Name)
	}
	t.numCPUs = n
	t.strides = make([]int, len(t.Shape))
	stride := 1
	for i := len(t.Shape) - 1; i >= 0; i-- {
		t.strides[i] = stride
		stride *= t.Shape[i]
	}
	t.topOf = make([]int32, n)
	for cpu := 0; cpu < n; cpu++ {
		t.topOf[cpu] = int32((cpu / t.strides[0]) % t.Shape[0])
	}
	t.xfer = nil
	if n <= xferTableMax {
		t.xfer = make([]int64, n*n)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				d := t.distance(a, b)
				if d >= len(t.Shape) {
					t.xfer[a*n+b] = t.HitLatency
				} else {
					t.xfer[a*n+b] = t.CacheToCache[d]
				}
			}
		}
	}
	return nil
}

// NumCPUs returns the processor count.
func (t *Topology) NumCPUs() int { return t.numCPUs }

// Coord returns the CPU's coordinates, coarsest level first.
func (t *Topology) Coord(cpu int) []int {
	c := make([]int, len(t.Shape))
	for i := range t.Shape {
		c[i] = (cpu / t.strides[i]) % t.Shape[i]
	}
	return c
}

// Distance returns the coarsest level at which a and b differ, or
// len(Shape) when a == b (no transfer needed).
func (t *Topology) Distance(a, b int) int {
	return t.distance(a, b)
}

func (t *Topology) distance(a, b int) int {
	if a == b {
		return len(t.Shape)
	}
	for i := range t.Shape {
		if (a/t.strides[i])%t.Shape[i] != (b/t.strides[i])%t.Shape[i] {
			return i
		}
	}
	return len(t.Shape)
}

// TransferLatency returns the cache-to-cache latency between two CPUs.
// Same-CPU "transfers" cost a hit.
func (t *Topology) TransferLatency(from, to int) int64 {
	if t.xfer != nil {
		return t.xfer[from*t.numCPUs+to]
	}
	d := t.distance(from, to)
	if d >= len(t.Shape) {
		return t.HitLatency
	}
	return t.CacheToCache[d]
}

// HomeNode returns the top-level domain (e.g. crossbar) that owns the
// memory for the given line address. Lines are distributed round-robin over
// top-level domains at 4 KiB-page granularity, approximating the
// Superdome's cell-distributed RAM.
func (t *Topology) HomeNode(line int64) int {
	const pageShift = 12
	top := int64(t.Shape[0])
	return int((line >> pageShift) % top)
}

// MemLatency returns the latency of a memory access by cpu to the given
// line, accounting for the home node's placement.
func (t *Topology) MemLatency(cpu int, line int64) int64 {
	home := t.HomeNode(line)
	myTop := int(t.topOf[cpu])
	if home == myTop {
		return t.MemBase
	}
	return t.MemBase + t.MemPerLevel
}

// Seconds converts cycles to seconds.
func (t *Topology) Seconds(cycles int64) float64 { return float64(cycles) / t.ClockHz }

// Superdome128 models the paper's 128-way HP Superdome: 64 mx2 chips each
// with two Itanium 2 CPUs, two chips per bus, two buses per cell, four
// cells per crossbar, four crossbars. Remote-crossbar cache accesses cost
// around 1000 cycles (§5).
func Superdome128() *Topology {
	t := &Topology{
		Name:  "Superdome128",
		Shape: []int{4, 4, 2, 2, 2}, // crossbar, cell, bus, chip, core
		CacheToCache: []int64{
			1000, // different crossbar
			400,  // same crossbar, different cell
			220,  // same cell, different bus
			150,  // same bus, different chip
			80,   // same chip, other core
		},
		MemBase:     260,
		MemPerLevel: 240,
		HitLatency:  2,
		ClockHz:     1.2e9,
	}
	mustValidate(t)
	return t
}

// Superdome64 models a half-populated Superdome: two crossbars, 64 CPUs.
// Useful for sensitivity studies of false-sharing cost versus machine size.
func Superdome64() *Topology {
	t := &Topology{
		Name:  "Superdome64",
		Shape: []int{2, 4, 2, 2, 2}, // crossbar, cell, bus, chip, core
		CacheToCache: []int64{
			1000, // different crossbar
			400,  // same crossbar, different cell
			220,  // same cell, different bus
			150,  // same bus, different chip
			80,   // same chip, other core
		},
		MemBase:     260,
		MemPerLevel: 240,
		HitLatency:  2,
		ClockHz:     1.2e9,
	}
	mustValidate(t)
	return t
}

// Superdome32 models a single crossbar's worth of cells: 32 CPUs.
func Superdome32() *Topology {
	t := &Topology{
		Name:  "Superdome32",
		Shape: []int{4, 2, 2, 2}, // cell, bus, chip, core
		CacheToCache: []int64{
			400, // different cell
			220, // same cell, different bus
			150, // same bus, different chip
			80,  // same chip, other core
		},
		MemBase:     260,
		MemPerLevel: 160,
		HitLatency:  2,
		ClockHz:     1.2e9,
	}
	mustValidate(t)
	return t
}

// Way16 models the 16-processor machine used for concurrency collection:
// four cells of four CPUs behind one crossbar.
func Way16() *Topology {
	t := &Topology{
		Name:  "Way16",
		Shape: []int{4, 2, 2}, // cell, bus, core
		CacheToCache: []int64{
			380, // different cell
			180, // same cell, different bus
			90,  // same bus
		},
		MemBase:     240,
		MemPerLevel: 120,
		HitLatency:  2,
		ClockHz:     1.2e9,
	}
	mustValidate(t)
	return t
}

// Bus4 models the small 4-processor bus-based machine, where "the cost of
// accessing remote caches is only slightly higher than an L2 miss" (§5).
func Bus4() *Topology {
	t := &Topology{
		Name:         "Bus4",
		Shape:        []int{4}, // one bus, four CPUs
		CacheToCache: []int64{130},
		MemBase:      110,
		MemPerLevel:  0,
		HitLatency:   2,
		ClockHz:      1.2e9,
	}
	mustValidate(t)
	return t
}

// Uniprocessor returns a single-CPU machine, useful for locality-only
// experiments and tests.
func Uniprocessor() *Topology {
	t := &Topology{
		Name:         "UP1",
		Shape:        []int{1},
		CacheToCache: []int64{100},
		MemBase:      110,
		MemPerLevel:  0,
		HitLatency:   2,
		ClockHz:      1.2e9,
	}
	mustValidate(t)
	return t
}

// ByName resolves a machine name from user input (CLI flags, config
// files) to a built-in topology, returning an error — never panicking —
// for unknown names. Matching is case-insensitive.
func ByName(name string) (*Topology, error) {
	switch strings.ToLower(name) {
	case "bus4":
		return Bus4(), nil
	case "way16":
		return Way16(), nil
	case "superdome32":
		return Superdome32(), nil
	case "superdome64":
		return Superdome64(), nil
	case "superdome128":
		return Superdome128(), nil
	case "up1", "uniprocessor":
		return Uniprocessor(), nil
	default:
		return nil, fmt.Errorf("machine: unknown machine %q (want %s)", name, strings.Join(Names(), ", "))
	}
}

// Names lists the built-in machine names ByName accepts.
func Names() []string {
	return []string{"bus4", "way16", "superdome32", "superdome64", "superdome128", "uniprocessor"}
}

// mustValidate guards a programmer-error invariant: the built-in
// topologies above are static literals, so a validation failure means the
// source code itself is wrong, not any input. Data-driven topologies must
// go through Validate (or ByName) and handle the error.
func mustValidate(t *Topology) {
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("machine: built-in topology is invalid (programmer error): %v", err))
	}
}

package sampling_test

import (
	"bytes"
	"strings"
	"testing"

	"structlayout/internal/concurrency"
	"structlayout/internal/diag"
	"structlayout/internal/ir"
	"structlayout/internal/sampling"
)

// FuzzReadJSON drives hostile bytes through the full trace-consumption
// chain: decode, sanitize, slice, and compute a concurrency map. Nothing on
// that path may panic — a malformed trace file must surface as an error or
// as diagnostics, never as a crash (cmd/concmap exits 1 on error and must
// survive arbitrary input).
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"interval_cycles":100,"num_cpus":2,"cpu":[0,1,0],"block":[0,1,2],"itc":[100,150,200]}`))
	f.Add([]byte(`{"interval_cycles":1,"num_cpus":1,"cpu":[],"block":[],"itc":[]}`))
	f.Add([]byte(`{"interval_cycles":100,"num_cpus":4,"cpu":[3,3],"block":[7,7],"itc":[-50,-50]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"interval_cycles":-5,"num_cpus":1000000000,"cpu":[0],"block":[0],"itc":[0]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := sampling.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		log := diag.NewLog()
		clean := sampling.Sanitize(tr, 0, log)
		if len(clean.Samples) > len(tr.Samples) {
			t.Fatal("Sanitize grew the trace")
		}
		if _, err := clean.Slices(1000); err != nil {
			t.Fatalf("Slices on sanitized trace: %v", err)
		}
		if _, err := concurrency.Compute(clean, concurrency.Options{SliceCycles: 1000}); err != nil {
			t.Fatalf("Compute on sanitized trace: %v", err)
		}
	})
}

// FuzzSanitize feeds raw sample values (no JSON framing) through Sanitize
// and the slicer, covering value ranges the structural ReadJSON checks
// forbid — e.g. CPU ids outside the declared count.
func FuzzSanitize(f *testing.F) {
	f.Add(2, int64(100), 0, int32(0), int64(100), 1, int32(1), int64(-5))
	f.Add(1, int64(1), 99, int32(-3), int64(1<<60), -7, int32(1<<30), int64(-1<<60))
	f.Fuzz(func(t *testing.T, nCPU int, interval int64, cpu1 int, blk1 int32, itc1 int64, cpu2 int, blk2 int32, itc2 int64) {
		tr := &sampling.Trace{
			IntervalCycles: interval,
			NumCPUs:        nCPU,
			Samples: []sampling.Sample{
				{CPU: cpu1, Block: ir.BlockID(blk1), ITC: itc1},
				{CPU: cpu2, Block: ir.BlockID(blk2), ITC: itc2},
				{CPU: cpu1, Block: ir.BlockID(blk1), ITC: itc1}, // guaranteed duplicate
			},
		}
		log := diag.NewLog()
		clean := sampling.Sanitize(tr, 10, log)
		for _, s := range clean.Samples {
			if s.CPU < 0 || s.CPU >= nCPU {
				t.Fatalf("sanitized trace kept out-of-range CPU %d", s.CPU)
			}
			if s.Block < 0 || int(s.Block) >= 10 {
				t.Fatalf("sanitized trace kept invalid block %d", s.Block)
			}
		}
		if strings.Contains(log.String(), "%!") {
			t.Fatalf("diagnostic formatting broke: %s", log)
		}
	})
}

package sampling

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	_, blocks := testBlocks(t)
	c, _ := NewCollector(Config{IntervalCycles: 25, DriftMaxCycles: 2, LossProb: 0.1, Seed: 4}, 3)
	c.Tick(0, 2000, blocks[0])
	c.Tick(1, 1500, blocks[1])
	c.Tick(2, 1800, blocks[0])
	tr := c.Finish()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.IntervalCycles != tr.IntervalCycles || got.NumCPUs != tr.NumCPUs {
		t.Fatalf("metadata differs: %+v vs %+v", got, tr)
	}
	if len(got.Samples) != len(tr.Samples) {
		t.Fatalf("sample count %d vs %d", len(got.Samples), len(tr.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d: %+v vs %+v", i, got.Samples[i], tr.Samples[i])
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{"interval_cycles":0,"num_cpus":1,"cpu":[],"block":[],"itc":[]}`,
		`{"interval_cycles":10,"num_cpus":0,"cpu":[],"block":[],"itc":[]}`,
		`{"interval_cycles":10,"num_cpus":1,"cpu":[0],"block":[],"itc":[1]}`,
		`{"interval_cycles":10,"num_cpus":1,"cpu":[5],"block":[0],"itc":[1]}`,
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestReadJSONRejectsHostileValues(t *testing.T) {
	cases := map[string]string{
		"negative interval": `{"interval_cycles":-10,"num_cpus":1,"cpu":[],"block":[],"itc":[]}`,
		"negative num_cpus": `{"interval_cycles":10,"num_cpus":-1,"cpu":[],"block":[],"itc":[]}`,
		"absurd num_cpus":   `{"interval_cycles":10,"num_cpus":1000000000,"cpu":[],"block":[],"itc":[]}`,
		"negative cpu":      `{"interval_cycles":10,"num_cpus":2,"cpu":[-1],"block":[0],"itc":[1]}`,
		"negative block":    `{"interval_cycles":10,"num_cpus":2,"cpu":[0],"block":[-7],"itc":[1]}`,
		"itc array short":   `{"interval_cycles":10,"num_cpus":2,"cpu":[0,1],"block":[0,0],"itc":[1]}`,
	}
	for name, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("%s: accepted %q", name, c)
		}
	}
}

func TestReadJSONPreservesSemanticAnomalies(t *testing.T) {
	// Negative ITC and exact duplicates are collector-plausible (drift,
	// retransmission); ReadJSON must keep them for Sanitize to judge.
	in := `{"interval_cycles":10,"num_cpus":2,"cpu":[0,0,1],"block":[0,0,1],"itc":[-5,-5,3]}`
	tr, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 3 {
		t.Fatalf("kept %d samples, want 3", len(tr.Samples))
	}
	if tr.Samples[0].ITC != -5 || tr.Samples[0] != tr.Samples[1] {
		t.Fatalf("anomalies not preserved: %+v", tr.Samples)
	}
}

package sampling

import (
	"testing"

	"structlayout/internal/diag"
	"structlayout/internal/ir"
)

func testBlocks(t *testing.T) (*ir.Program, []*ir.BasicBlock) {
	t.Helper()
	p := ir.NewProgram("samp")
	s := ir.NewStruct("S", ir.I64("a"))
	p.AddStruct(s)
	b := p.NewProc("f")
	b.Read(s, "a", ir.Shared(0))
	b.Loop(4, func(b *ir.Builder) { b.Write(s, "a", ir.Shared(0)) })
	b.Done()
	p.MustFinalize()
	return p, p.Blocks()
}

func TestTickEmitsAtInterval(t *testing.T) {
	_, blocks := testBlocks(t)
	c, err := NewCollector(Config{IntervalCycles: 100, DriftMaxCycles: 0, LossProb: 0, Seed: 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Advance CPU 0 to t=1000 in one jump: must emit every due sample.
	c.Tick(0, 1000, blocks[1])
	n := len(c.Samples())
	if n < 9 || n > 10 {
		t.Fatalf("got %d samples, want ~10", n)
	}
	for _, s := range c.Samples() {
		if s.CPU != 0 || s.Block != blocks[1].Global {
			t.Fatalf("bad sample %+v", s)
		}
	}
	// No duplicate emission when time does not advance past the next due.
	before := len(c.Samples())
	c.Tick(0, 1000, blocks[1])
	if len(c.Samples()) != before {
		t.Fatal("re-tick at same time emitted samples")
	}
}

func TestDriftBounded(t *testing.T) {
	_, blocks := testBlocks(t)
	cfg := Config{IntervalCycles: 50, DriftMaxCycles: 5, LossProb: 0, Seed: 3}
	c, _ := NewCollector(cfg, 4)
	for cpu := 0; cpu < 4; cpu++ {
		c.Tick(cpu, 10000, blocks[0])
	}
	// Drift is a constant per-CPU offset: consecutive samples on one CPU
	// must be spaced exactly one interval apart.
	last := map[int]int64{}
	for _, s := range c.Samples() {
		if prev, ok := last[s.CPU]; ok {
			if s.ITC-prev != cfg.IntervalCycles {
				t.Fatalf("cpu %d samples %d apart, want %d", s.CPU, s.ITC-prev, cfg.IntervalCycles)
			}
		}
		last[s.CPU] = s.ITC
	}
	if len(last) != 4 {
		t.Fatalf("sampled %d CPUs, want 4", len(last))
	}
}

func TestLossReducesSamples(t *testing.T) {
	_, blocks := testBlocks(t)
	full, _ := NewCollector(Config{IntervalCycles: 10, LossProb: 0, Seed: 1}, 1)
	lossy, _ := NewCollector(Config{IntervalCycles: 10, LossProb: 0.5, Seed: 1}, 1)
	full.Tick(0, 100000, blocks[0])
	lossy.Tick(0, 100000, blocks[0])
	nf, nl := len(full.Samples()), len(lossy.Samples())
	if nl >= nf {
		t.Fatalf("lossy (%d) should have fewer samples than full (%d)", nl, nf)
	}
	if nl < nf/3 {
		t.Fatalf("lossy (%d) dropped far more than half of %d", nl, nf)
	}
}

func TestNilBlockSkipped(t *testing.T) {
	c, _ := NewCollector(Config{IntervalCycles: 10, Seed: 1}, 1)
	c.Tick(0, 1000, nil)
	if len(c.Samples()) != 0 {
		t.Fatal("nil block produced samples")
	}
}

func TestSlices(t *testing.T) {
	_, blocks := testBlocks(t)
	c, _ := NewCollector(Config{IntervalCycles: 10, DriftMaxCycles: 0, LossProb: 0, Seed: 9}, 2)
	c.Tick(0, 500, blocks[0])
	c.Tick(1, 500, blocks[1])
	tr := c.Finish()
	slices, err := tr.Slices(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) == 0 {
		t.Fatal("no slices")
	}
	total := 0.0
	for i, sc := range slices {
		if i > 0 && sc.Slice <= slices[i-1].Slice {
			t.Fatal("slices out of order")
		}
		for cpu, m := range sc.ByCPU {
			for blk, n := range m {
				total += n
				if cpu == 0 && blk != blocks[0].Global {
					t.Fatalf("cpu0 sampled block %d", blk)
				}
			}
		}
	}
	if int(total) != len(tr.Samples) {
		t.Fatalf("slice totals %v != %d samples", total, len(tr.Samples))
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{IntervalCycles: 0},
		{IntervalCycles: 10, DriftMaxCycles: -1},
		{IntervalCycles: 10, LossProb: 1.0},
		{IntervalCycles: 10, LossProb: -0.1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %+v accepted", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCollector(Config{IntervalCycles: -1}, 1); err == nil {
		t.Fatal("NewCollector accepted bad config")
	}
}

func TestDeterminism(t *testing.T) {
	_, blocks := testBlocks(t)
	run := func() []Sample {
		c, _ := NewCollector(Config{IntervalCycles: 10, DriftMaxCycles: 3, LossProb: 0.2, Seed: 42}, 2)
		c.Tick(0, 1234, blocks[0])
		c.Tick(1, 2345, blocks[1])
		return c.Samples()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestNewCollectorRejectsZeroCPUs(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := NewCollector(DefaultConfig(), n); err == nil {
			t.Fatalf("collector accepted %d CPUs", n)
		}
	}
}

func TestHighLossStillTerminates(t *testing.T) {
	_, blocks := testBlocks(t)
	c, err := NewCollector(Config{IntervalCycles: 10, LossProb: 0.99, Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Tick(0, 100000, blocks[0])
	n := len(c.Samples())
	if n == 0 {
		t.Skip("seed lost every sample; acceptable at 99% loss")
	}
	if n > 10000/2 {
		t.Fatalf("99%% loss kept %d of ~10000 samples", n)
	}
}

func TestZeroDriftExactITC(t *testing.T) {
	_, blocks := testBlocks(t)
	c, _ := NewCollector(Config{IntervalCycles: 50, DriftMaxCycles: 0, Seed: 2}, 2)
	c.Tick(0, 5000, blocks[0])
	c.Tick(1, 5000, blocks[0])
	for _, s := range c.Samples() {
		if s.ITC%50 != 0 && s.ITC < 1 {
			t.Fatalf("drift-free sample has implausible ITC %d", s.ITC)
		}
		if s.ITC < 1 || s.ITC > 5000 {
			t.Fatalf("sample ITC %d outside the run", s.ITC)
		}
	}
}

func TestBackwardsVirtualTime(t *testing.T) {
	_, blocks := testBlocks(t)
	c, _ := NewCollector(Config{IntervalCycles: 10, Seed: 3}, 1)
	c.Tick(0, 1000, blocks[0])
	n := len(c.Samples())
	c.Tick(0, 500, blocks[0]) // time runs backwards
	if len(c.Samples()) != n {
		t.Fatal("backwards tick emitted samples")
	}
	if c.BackwardsJumps() != 1 {
		t.Fatalf("backwards jumps = %d, want 1", c.BackwardsJumps())
	}
	c.Tick(0, 2000, blocks[0]) // recovery: sampling resumes, no duplicates
	if len(c.Samples()) <= n {
		t.Fatal("sampling did not resume after the backwards jump")
	}
	seen := map[Sample]bool{}
	for _, s := range c.Samples() {
		if seen[s] {
			t.Fatalf("duplicate sample %+v after backwards jump", s)
		}
		seen[s] = true
	}
}

func TestSanitizeDropsAndCounts(t *testing.T) {
	tr := &Trace{
		IntervalCycles: 100,
		NumCPUs:        2,
		Samples: []Sample{
			{CPU: 0, Block: 0, ITC: 100},
			{CPU: 0, Block: 0, ITC: 100},     // duplicate
			{CPU: 5, Block: 0, ITC: 200},     // bad CPU
			{CPU: -1, Block: 0, ITC: 200},    // bad CPU
			{CPU: 1, Block: -2, ITC: 200},    // bad block
			{CPU: 1, Block: 99, ITC: 200},    // block out of range for numBlocks=3
			{CPU: 0, Block: 1, ITC: -200000}, // absurd ITC (< -1000 intervals)
			{CPU: 0, Block: 1, ITC: 50},      // non-monotonic on CPU 0: kept
			{CPU: 1, Block: 2, ITC: 300},
		},
	}
	log := diag.NewLog()
	clean := Sanitize(tr, 3, log)
	if len(clean.Samples) != 3 {
		t.Fatalf("kept %d samples, want 3: %+v", len(clean.Samples), clean.Samples)
	}
	for code, want := range map[string]int{
		"cpu-range":        2,
		"block-range":      2,
		"itc-absurd":       1,
		"dup-dropped":      1,
		"itc-nonmonotonic": 1,
	} {
		found := false
		for _, d := range log.Entries() {
			if d.Code == code {
				found = true
				if d.Count != want {
					t.Errorf("%s count = %d, want %d", code, d.Count, want)
				}
			}
		}
		if !found {
			t.Errorf("no %s diagnostic", code)
		}
	}
}

func TestSanitizeCleanTraceUnchanged(t *testing.T) {
	_, blocks := testBlocks(t)
	c, _ := NewCollector(Config{IntervalCycles: 10, DriftMaxCycles: 2, Seed: 4}, 2)
	c.Tick(0, 1000, blocks[0])
	c.Tick(1, 1000, blocks[1])
	tr := c.Finish()
	log := diag.NewLog()
	clean := Sanitize(tr, 0, log)
	if log.Len() != 0 {
		t.Fatalf("clean trace produced diagnostics:\n%s", log)
	}
	if len(clean.Samples) != len(tr.Samples) {
		t.Fatalf("clean trace lost samples: %d -> %d", len(tr.Samples), len(clean.Samples))
	}
	for i := range clean.Samples {
		if clean.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d changed: %+v vs %+v", i, clean.Samples[i], tr.Samples[i])
		}
	}
	if Sanitize(nil, 0, log) != nil {
		t.Fatal("Sanitize(nil) != nil")
	}
}

func TestSlicesRejectsBadSliceSize(t *testing.T) {
	tr := &Trace{IntervalCycles: 10, NumCPUs: 1}
	for _, n := range []int64{0, -5} {
		if _, err := tr.Slices(n); err == nil {
			t.Fatalf("Slices accepted %d", n)
		}
	}
}

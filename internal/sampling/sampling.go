// Package sampling simulates the paper's synchronized PMU sampling pipeline
// (§4.2): HP Caliper in whole-system mode samples every CPU at a fixed
// cycle interval; each sample carries the instruction pointer and the
// Itanium Interval Time Counter (ITC), which counts at a fixed relation to
// the clock and is synchronized across CPUs "with only a few ticks drift".
//
// Our samples carry the executing basic block instead of a raw IP — the
// paper's external script immediately maps IPs back to source lines, and a
// block is exactly one synthetic source line in this IR. The collector also
// models sample loss on heavily loaded machines, which the paper cites as a
// reason to cap sampling frequency.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"structlayout/internal/diag"
	"structlayout/internal/ir"
)

// Sample is one PMU sample: which CPU was where, and when.
type Sample struct {
	CPU   int
	Block ir.BlockID
	// ITC is the timestamp in cycles, including the CPU's drift.
	ITC int64
}

// Config parameterizes the collector.
type Config struct {
	// IntervalCycles is the sampling period; the paper uses 100000 CPU
	// cycles.
	IntervalCycles int64
	// DriftMaxCycles bounds the fixed per-CPU ITC offset ("a few ticks").
	DriftMaxCycles int64
	// LossProb drops a sample with this probability, modelling sample loss
	// on loaded machines at high sampling frequencies.
	LossProb float64
	// Seed makes drift and loss deterministic.
	Seed int64
}

// DefaultConfig mirrors the paper's parameters: 100k-cycle interval, a few
// ticks of drift, mild loss.
func DefaultConfig() Config {
	return Config{IntervalCycles: 100000, DriftMaxCycles: 8, LossProb: 0.02, Seed: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.IntervalCycles <= 0 {
		return fmt.Errorf("sampling: non-positive interval %d", c.IntervalCycles)
	}
	if c.DriftMaxCycles < 0 {
		return fmt.Errorf("sampling: negative drift bound")
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("sampling: loss probability %v out of [0,1)", c.LossProb)
	}
	return nil
}

// Collector accumulates samples as the execution engine advances virtual
// time. One collector serves all CPUs of one run (whole-system mode).
type Collector struct {
	cfg       Config
	rng       *rand.Rand
	drift     []int64
	nextDue   []int64
	lastNow   []int64
	backwards int
	samples   []Sample
}

// NewCollector builds a collector for numCPUs processors.
func NewCollector(cfg Config, numCPUs int) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numCPUs <= 0 {
		return nil, fmt.Errorf("sampling: collector needs at least one CPU, got %d", numCPUs)
	}
	c := &Collector{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		drift:   make([]int64, numCPUs),
		nextDue: make([]int64, numCPUs),
		lastNow: make([]int64, numCPUs),
	}
	for i := range c.drift {
		if cfg.DriftMaxCycles > 0 {
			c.drift[i] = c.rng.Int63n(2*cfg.DriftMaxCycles+1) - cfg.DriftMaxCycles
		}
		// Stagger the first sample per CPU the way free-running PMUs do.
		c.nextDue[i] = c.rng.Int63n(cfg.IntervalCycles) + 1
	}
	return c, nil
}

// Tick informs the collector that the CPU has advanced to the given virtual
// time while executing block. Every elapsed sampling period emits one
// sample (unless lost). A backwards jump of virtual time is tolerated — no
// samples are emitted for it (the due clock never rewinds, so no duplicate
// samples can appear) — and counted for diagnostics.
func (c *Collector) Tick(cpu int, now int64, block *ir.BasicBlock) {
	if now < c.lastNow[cpu] {
		c.backwards++
	} else {
		c.lastNow[cpu] = now
	}
	for c.nextDue[cpu] <= now {
		due := c.nextDue[cpu]
		c.nextDue[cpu] += c.cfg.IntervalCycles
		if block == nil {
			continue
		}
		if c.cfg.LossProb > 0 && c.rng.Float64() < c.cfg.LossProb {
			continue
		}
		c.samples = append(c.samples, Sample{CPU: cpu, Block: block.Global, ITC: due + c.drift[cpu]})
	}
}

// Samples returns everything collected so far.
func (c *Collector) Samples() []Sample { return c.samples }

// BackwardsJumps returns how many Tick calls observed virtual time moving
// backwards on some CPU — a collection-side anomaly worth surfacing.
func (c *Collector) BackwardsJumps() int { return c.backwards }

// Trace is an immutable collection of samples plus collection metadata.
type Trace struct {
	Samples        []Sample
	IntervalCycles int64
	NumCPUs        int
}

// Finish freezes the collector into a trace.
func (c *Collector) Finish() *Trace {
	return &Trace{Samples: c.samples, IntervalCycles: c.cfg.IntervalCycles, NumCPUs: len(c.drift)}
}

// SliceCounts holds, for one time slice, the per-CPU execution frequency of
// each block: F_I(P_k, B_i) in the paper's CodeConcurrency definition.
type SliceCounts struct {
	Slice int64
	// ByCPU[cpu][block] = sample count.
	ByCPU []map[ir.BlockID]float64
}

// Slices buckets the trace into fixed-duration time slices (the paper uses
// 1 ms, about 12 samples per slice per CPU at 1.2 GHz and a 100k-cycle
// period). Slices are returned in time order. Samples naming a CPU outside
// [0, NumCPUs) are skipped: a Trace assembled from untrusted input may
// carry them, and bucketing must not fail on them (use Sanitize to count
// and report such samples).
func (t *Trace) Slices(sliceCycles int64) ([]SliceCounts, error) {
	if sliceCycles <= 0 {
		return nil, fmt.Errorf("sampling: non-positive slice size %d", sliceCycles)
	}
	bySlice := make(map[int64]*SliceCounts)
	var order []int64
	for _, s := range t.Samples {
		if s.CPU < 0 || s.CPU >= t.NumCPUs {
			continue
		}
		idx := s.ITC / sliceCycles
		if s.ITC < 0 {
			idx = 0 // drift can push the very first sample below zero
		}
		sc := bySlice[idx]
		if sc == nil {
			sc = &SliceCounts{Slice: idx, ByCPU: make([]map[ir.BlockID]float64, t.NumCPUs)}
			bySlice[idx] = sc
			order = append(order, idx)
		}
		m := sc.ByCPU[s.CPU]
		if m == nil {
			m = make(map[ir.BlockID]float64)
			sc.ByCPU[s.CPU] = m
		}
		m[s.Block]++
	}
	// Deterministic time order.
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]SliceCounts, 0, len(order))
	for _, idx := range order {
		out = append(out, *bySlice[idx])
	}
	return out, nil
}

// Sanitize validates a trace sample-by-sample and returns a cleaned copy,
// recording everything it found in log (which may be nil). numBlocks, when
// positive, bounds valid block ids (a program's block count); non-positive
// means unknown and only negative block ids are rejected.
//
// Checks, in order:
//   - samples naming a CPU outside [0, NumCPUs) are dropped,
//   - samples naming a block outside the valid range are dropped,
//   - samples with an ITC more than 1000 sampling intervals below zero are
//     dropped (legitimate drift reaches a few intervals at most; anything
//     further is corrupt),
//   - exact duplicate samples (same CPU, block, ITC — impossible from a
//     real PMU, whose per-CPU due clock advances strictly) are dropped,
//   - per-CPU ITC monotonicity violations are counted but kept: slicing is
//     order-independent, so reordered samples still contribute.
//
// A clean trace comes back unchanged (same sample values, fresh slice), so
// sanitizing is safe to apply unconditionally.
func Sanitize(t *Trace, numBlocks int, log *diag.Log) *Trace {
	if t == nil {
		return nil
	}
	absurd := int64(-1000) * t.IntervalCycles
	if t.IntervalCycles <= 0 {
		absurd = -1 << 50
	}
	var badCPU, badBlock, badITC, dups, nonMonotonic int
	seen := make(map[Sample]struct{}, len(t.Samples))
	lastITC := make(map[int]int64, t.NumCPUs)
	kept := make([]Sample, 0, len(t.Samples))
	for _, s := range t.Samples {
		switch {
		case s.CPU < 0 || s.CPU >= t.NumCPUs:
			badCPU++
			continue
		case s.Block < 0 || (numBlocks > 0 && int(s.Block) >= numBlocks):
			badBlock++
			continue
		case s.ITC < absurd:
			badITC++
			continue
		}
		if _, ok := seen[s]; ok {
			dups++
			continue
		}
		seen[s] = struct{}{}
		if last, ok := lastITC[s.CPU]; ok && s.ITC < last {
			nonMonotonic++
		} else {
			lastITC[s.CPU] = s.ITC
		}
		kept = append(kept, s)
	}
	log.AddN(diag.Error, "sampling", "cpu-range", badCPU, "sample names a CPU outside [0,%d); dropped", t.NumCPUs)
	log.AddN(diag.Error, "sampling", "block-range", badBlock, "sample names an invalid block id; dropped")
	log.AddN(diag.Warning, "sampling", "itc-absurd", badITC, "sample ITC below any plausible drift; dropped")
	log.AddN(diag.Warning, "sampling", "dup-dropped", dups, "exact duplicate sample; dropped")
	log.AddN(diag.Warning, "sampling", "itc-nonmonotonic", nonMonotonic, "per-CPU ITC went backwards; kept (slicing is order-independent)")
	return &Trace{Samples: kept, IntervalCycles: t.IntervalCycles, NumCPUs: t.NumCPUs}
}

// Package sampling simulates the paper's synchronized PMU sampling pipeline
// (§4.2): HP Caliper in whole-system mode samples every CPU at a fixed
// cycle interval; each sample carries the instruction pointer and the
// Itanium Interval Time Counter (ITC), which counts at a fixed relation to
// the clock and is synchronized across CPUs "with only a few ticks drift".
//
// Our samples carry the executing basic block instead of a raw IP — the
// paper's external script immediately maps IPs back to source lines, and a
// block is exactly one synthetic source line in this IR. The collector also
// models sample loss on heavily loaded machines, which the paper cites as a
// reason to cap sampling frequency.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"structlayout/internal/ir"
)

// Sample is one PMU sample: which CPU was where, and when.
type Sample struct {
	CPU   int
	Block ir.BlockID
	// ITC is the timestamp in cycles, including the CPU's drift.
	ITC int64
}

// Config parameterizes the collector.
type Config struct {
	// IntervalCycles is the sampling period; the paper uses 100000 CPU
	// cycles.
	IntervalCycles int64
	// DriftMaxCycles bounds the fixed per-CPU ITC offset ("a few ticks").
	DriftMaxCycles int64
	// LossProb drops a sample with this probability, modelling sample loss
	// on loaded machines at high sampling frequencies.
	LossProb float64
	// Seed makes drift and loss deterministic.
	Seed int64
}

// DefaultConfig mirrors the paper's parameters: 100k-cycle interval, a few
// ticks of drift, mild loss.
func DefaultConfig() Config {
	return Config{IntervalCycles: 100000, DriftMaxCycles: 8, LossProb: 0.02, Seed: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.IntervalCycles <= 0 {
		return fmt.Errorf("sampling: non-positive interval %d", c.IntervalCycles)
	}
	if c.DriftMaxCycles < 0 {
		return fmt.Errorf("sampling: negative drift bound")
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("sampling: loss probability %v out of [0,1)", c.LossProb)
	}
	return nil
}

// Collector accumulates samples as the execution engine advances virtual
// time. One collector serves all CPUs of one run (whole-system mode).
type Collector struct {
	cfg     Config
	rng     *rand.Rand
	drift   []int64
	nextDue []int64
	samples []Sample
}

// NewCollector builds a collector for numCPUs processors.
func NewCollector(cfg Config, numCPUs int) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Collector{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		drift:   make([]int64, numCPUs),
		nextDue: make([]int64, numCPUs),
	}
	for i := range c.drift {
		if cfg.DriftMaxCycles > 0 {
			c.drift[i] = c.rng.Int63n(2*cfg.DriftMaxCycles+1) - cfg.DriftMaxCycles
		}
		// Stagger the first sample per CPU the way free-running PMUs do.
		c.nextDue[i] = c.rng.Int63n(cfg.IntervalCycles) + 1
	}
	return c, nil
}

// Tick informs the collector that the CPU has advanced to the given virtual
// time while executing block. Every elapsed sampling period emits one
// sample (unless lost).
func (c *Collector) Tick(cpu int, now int64, block *ir.BasicBlock) {
	for c.nextDue[cpu] <= now {
		due := c.nextDue[cpu]
		c.nextDue[cpu] += c.cfg.IntervalCycles
		if block == nil {
			continue
		}
		if c.cfg.LossProb > 0 && c.rng.Float64() < c.cfg.LossProb {
			continue
		}
		c.samples = append(c.samples, Sample{CPU: cpu, Block: block.Global, ITC: due + c.drift[cpu]})
	}
}

// Samples returns everything collected so far.
func (c *Collector) Samples() []Sample { return c.samples }

// Trace is an immutable collection of samples plus collection metadata.
type Trace struct {
	Samples        []Sample
	IntervalCycles int64
	NumCPUs        int
}

// Finish freezes the collector into a trace.
func (c *Collector) Finish() *Trace {
	return &Trace{Samples: c.samples, IntervalCycles: c.cfg.IntervalCycles, NumCPUs: len(c.drift)}
}

// SliceCounts holds, for one time slice, the per-CPU execution frequency of
// each block: F_I(P_k, B_i) in the paper's CodeConcurrency definition.
type SliceCounts struct {
	Slice int64
	// ByCPU[cpu][block] = sample count.
	ByCPU []map[ir.BlockID]float64
}

// Slices buckets the trace into fixed-duration time slices (the paper uses
// 1 ms, about 12 samples per slice per CPU at 1.2 GHz and a 100k-cycle
// period). Slices are returned in time order.
func (t *Trace) Slices(sliceCycles int64) []SliceCounts {
	if sliceCycles <= 0 {
		panic(fmt.Sprintf("sampling: non-positive slice size %d", sliceCycles))
	}
	bySlice := make(map[int64]*SliceCounts)
	var order []int64
	for _, s := range t.Samples {
		idx := s.ITC / sliceCycles
		if s.ITC < 0 {
			idx = 0 // drift can push the very first sample below zero
		}
		sc := bySlice[idx]
		if sc == nil {
			sc = &SliceCounts{Slice: idx, ByCPU: make([]map[ir.BlockID]float64, t.NumCPUs)}
			bySlice[idx] = sc
			order = append(order, idx)
		}
		m := sc.ByCPU[s.CPU]
		if m == nil {
			m = make(map[ir.BlockID]float64)
			sc.ByCPU[s.CPU] = m
		}
		m[s.Block]++
	}
	// Deterministic time order.
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]SliceCounts, 0, len(order))
	for _, idx := range order {
		out = append(out, *bySlice[idx])
	}
	return out
}

package sampling

import (
	"encoding/json"
	"fmt"
	"io"

	"structlayout/internal/ir"
)

// traceJSON is the on-disk form of a Trace. Samples are stored as parallel
// arrays: sample files for long runs are large, and this keeps them compact
// and fast to decode.
type traceJSON struct {
	IntervalCycles int64   `json:"interval_cycles"`
	NumCPUs        int     `json:"num_cpus"`
	CPU            []int   `json:"cpu"`
	Block          []int32 `json:"block"`
	ITC            []int64 `json:"itc"`
}

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	out := traceJSON{
		IntervalCycles: t.IntervalCycles,
		NumCPUs:        t.NumCPUs,
		CPU:            make([]int, len(t.Samples)),
		Block:          make([]int32, len(t.Samples)),
		ITC:            make([]int64, len(t.Samples)),
	}
	for i, s := range t.Samples {
		out.CPU[i] = s.CPU
		out.Block[i] = int32(s.Block)
		out.ITC[i] = s.ITC
	}
	return json.NewEncoder(w).Encode(&out)
}

// MaxCPUs bounds the CPU count a deserialized trace may declare. The
// paper's largest machine has 128 processors; 65536 leaves three orders of
// magnitude of headroom while keeping an adversarial num_cpus from driving
// per-slice allocations (one map slot per CPU per slice) to OOM.
const MaxCPUs = 1 << 16

// ReadJSON deserializes a trace written by WriteJSON. Structural problems
// — disagreeing array lengths, non-positive metadata, an absurd CPU count,
// out-of-range CPU or negative block ids — are errors: a trace file is
// machine-written, so structural damage means the file cannot be trusted
// at all. Semantic anomalies that a real degraded collector produces
// (negative ITC from drift, duplicate or reordered samples) are preserved
// for Sanitize to judge.
func ReadJSON(r io.Reader) (*Trace, error) {
	var in traceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("sampling: decode trace: %w", err)
	}
	if len(in.CPU) != len(in.Block) || len(in.CPU) != len(in.ITC) {
		return nil, fmt.Errorf("sampling: trace arrays disagree: %d/%d/%d", len(in.CPU), len(in.Block), len(in.ITC))
	}
	if in.IntervalCycles <= 0 || in.NumCPUs <= 0 {
		return nil, fmt.Errorf("sampling: trace metadata invalid (interval %d, cpus %d)", in.IntervalCycles, in.NumCPUs)
	}
	if in.NumCPUs > MaxCPUs {
		return nil, fmt.Errorf("sampling: trace declares %d CPUs (limit %d)", in.NumCPUs, MaxCPUs)
	}
	t := &Trace{
		IntervalCycles: in.IntervalCycles,
		NumCPUs:        in.NumCPUs,
		Samples:        make([]Sample, len(in.CPU)),
	}
	for i := range in.CPU {
		if in.CPU[i] < 0 || in.CPU[i] >= in.NumCPUs {
			return nil, fmt.Errorf("sampling: sample %d has cpu %d out of range", i, in.CPU[i])
		}
		if in.Block[i] < 0 {
			return nil, fmt.Errorf("sampling: sample %d has negative block id %d", i, in.Block[i])
		}
		t.Samples[i] = Sample{CPU: in.CPU[i], Block: ir.BlockID(in.Block[i]), ITC: in.ITC[i]}
	}
	return t, nil
}

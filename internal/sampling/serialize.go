package sampling

import (
	"encoding/json"
	"fmt"
	"io"

	"structlayout/internal/ir"
)

// traceJSON is the on-disk form of a Trace. Samples are stored as parallel
// arrays: sample files for long runs are large, and this keeps them compact
// and fast to decode.
type traceJSON struct {
	IntervalCycles int64   `json:"interval_cycles"`
	NumCPUs        int     `json:"num_cpus"`
	CPU            []int   `json:"cpu"`
	Block          []int32 `json:"block"`
	ITC            []int64 `json:"itc"`
}

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	out := traceJSON{
		IntervalCycles: t.IntervalCycles,
		NumCPUs:        t.NumCPUs,
		CPU:            make([]int, len(t.Samples)),
		Block:          make([]int32, len(t.Samples)),
		ITC:            make([]int64, len(t.Samples)),
	}
	for i, s := range t.Samples {
		out.CPU[i] = s.CPU
		out.Block[i] = int32(s.Block)
		out.ITC[i] = s.ITC
	}
	return json.NewEncoder(w).Encode(&out)
}

// ReadJSON deserializes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var in traceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("sampling: decode trace: %w", err)
	}
	if len(in.CPU) != len(in.Block) || len(in.CPU) != len(in.ITC) {
		return nil, fmt.Errorf("sampling: trace arrays disagree: %d/%d/%d", len(in.CPU), len(in.Block), len(in.ITC))
	}
	if in.IntervalCycles <= 0 || in.NumCPUs <= 0 {
		return nil, fmt.Errorf("sampling: trace metadata invalid (interval %d, cpus %d)", in.IntervalCycles, in.NumCPUs)
	}
	t := &Trace{
		IntervalCycles: in.IntervalCycles,
		NumCPUs:        in.NumCPUs,
		Samples:        make([]Sample, len(in.CPU)),
	}
	for i := range in.CPU {
		if in.CPU[i] < 0 || in.CPU[i] >= in.NumCPUs {
			return nil, fmt.Errorf("sampling: sample %d has cpu %d out of range", i, in.CPU[i])
		}
		t.Samples[i] = Sample{CPU: in.CPU[i], Block: ir.BlockID(in.Block[i]), ITC: in.ITC[i]}
	}
	return t, nil
}

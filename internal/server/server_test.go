package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"structlayout/internal/driver"
	"structlayout/internal/irtext"
	"structlayout/internal/machine"
)

// testProgram returns a small valid DSL program. Distinct names keep each
// test's cache keys disjoint (memo.Shared() is process-global), so a test
// that wants the cold rung is not poisoned by an earlier test's replay.
func testProgram(name string) string {
	return fmt.Sprintf(`
program %s

struct stats {
    s_lock  i64
    s_reqs  i64
    s_errs  i64
    s_local arr 4 8 align 8
}

proc bump {
    lock stats.s_lock param 0
    write stats.s_reqs shared 0
    write stats.s_errs shared 0
    unlock stats.s_lock param 0
    compute 20
}

proc worker {
    loop 8 {
        call bump
    }
}

arena stats 8
thread 0 worker params 0 iters 2
thread 1 worker params 1 iters 2
`, name)
}

// testProgramBig is testProgram at a traffic level that yields a usable
// concurrency map: tests asserting a clean (non-degraded) analysis need
// enough concurrent overlap in the trace for the dynamic path to engage.
func testProgramBig(name string) string {
	return fmt.Sprintf(`
program %s

struct conn {
    c_state     i64
    c_accepts   i64
    c_deadline  i64
    c_flags     i64
    c_rxq       i64
    c_txq       i64
    c_peer      arr 2 8 align 8
    c_stats     arr 6 8 align 8
}

proc timeout_scan {
    loop 192 {
        read conn.c_state loopvar
        read conn.c_deadline loopvar
        compute 18
    }
}

proc serve_request {
    read conn.c_flags param 0
    read conn.c_rxq param 0
    write conn.c_txq param 0
    read conn.c_accepts shared 0
    write conn.c_accepts shared 0
    compute 140
}

proc worker {
    loop 24 {
        call serve_request
    }
    call timeout_scan
}

arena conn 64
thread 0 worker params 8 iters 4
thread 1 worker params 9 iters 4
thread 2 worker params 10 iters 4
thread 3 worker params 11 iters 4
`, name)
}

func postAnalyze(t *testing.T, ts *httptest.Server, req AnalyzeRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, ts, "/v1/analyze", body)
}

func postRaw(t *testing.T, ts *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeAnalyze(t *testing.T, body []byte) *AnalyzeResponse {
	t.Helper()
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, body)
	}
	return &ar
}

func TestAnalyzeHappyPath(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postAnalyze(t, ts, AnalyzeRequest{Program: testProgramBig("happy"), Mode: "both", Seed: 11})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ar := decodeAnalyze(t, body)
	if ar.Ladder != LadderFull {
		t.Fatalf("ladder %q, want full", ar.Ladder)
	}
	if ar.Degraded {
		t.Fatalf("clean request labeled degraded: %s", body)
	}
	if ar.Quality.Verdict != "OK" && ar.Quality.Verdict != "SUSPECT" {
		t.Fatalf("verdict %q for a clean collection", ar.Quality.Verdict)
	}
	if len(ar.Structs) != 1 || ar.Structs[0].Struct != "conn" {
		t.Fatalf("structs: %+v", ar.Structs)
	}
	if ar.Structs[0].Auto == nil || ar.Structs[0].Best == nil {
		t.Fatalf("mode both returned auto=%v best=%v", ar.Structs[0].Auto, ar.Structs[0].Best)
	}
	if len(ar.Structs[0].Auto.Fields) != 8 {
		t.Fatalf("auto fields: %+v", ar.Structs[0].Auto.Fields)
	}
	// This program scans c_state/c_deadline while every worker bumps the
	// shared c_accepts on the same line: the lint must fire.
	if len(ar.Lint) == 0 {
		t.Fatal("no lint findings for a seeded false-sharing program")
	}
	st := s.Stats()
	if st.OK != 1 || st.LadderFull != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAnalyzeReplayRung(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := AnalyzeRequest{Program: testProgram("replay"), Seed: 21}
	resp, body := postAnalyze(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: status %d: %s", resp.StatusCode, body)
	}
	if ar := decodeAnalyze(t, body); ar.Ladder != LadderFull {
		t.Fatalf("first ladder %q, want full", ar.Ladder)
	}
	resp, body = postAnalyze(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second: status %d: %s", resp.StatusCode, body)
	}
	if ar := decodeAnalyze(t, body); ar.Ladder != LadderReplay {
		t.Fatalf("second ladder %q, want replay", ar.Ladder)
	}
}

func TestAnalyzeGivenRung(t *testing.T) {
	file, err := irtext.Parse(testProgram("given"))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := machine.ByName("way16")
	if err != nil {
		t.Fatal(err)
	}
	res, err := driver.Collect(file, driver.Config{Topo: topo, Seed: 31}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var pbuf, tbuf bytes.Buffer
	if err := res.Profile.WriteJSON(&pbuf); err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.WriteJSON(&tbuf); err != nil {
		t.Fatal(err)
	}

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postAnalyze(t, ts, AnalyzeRequest{
		Program: testProgram("given"),
		Profile: pbuf.Bytes(),
		Trace:   tbuf.Bytes(),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ar := decodeAnalyze(t, body); ar.Ladder != LadderGiven {
		t.Fatalf("ladder %q, want given", ar.Ladder)
	}

	// A trace without its profile is an input error, not a degradation.
	resp, body = postAnalyze(t, ts, AnalyzeRequest{Program: testProgram("given"), Trace: tbuf.Bytes()})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace-only: status %d: %s", resp.StatusCode, body)
	}
}

func TestAnalyzeStaticRungOnTightBudget(t *testing.T) {
	// A cost guess far above any deadline forces the bottom rung without
	// relying on wall-clock behaviour.
	s := New(Config{CollectCostGuess: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postAnalyze(t, ts, AnalyzeRequest{Program: testProgram("tight"), Seed: 41, DeadlineMS: 2000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ar := decodeAnalyze(t, body)
	if ar.Ladder != LadderStatic {
		t.Fatalf("ladder %q, want static", ar.Ladder)
	}
	if !ar.Degraded || ar.Quality.Verdict != "DEGRADED" {
		t.Fatalf("static rung not labeled: degraded=%v verdict=%q", ar.Degraded, ar.Quality.Verdict)
	}
	found := false
	for _, d := range ar.Diagnostics {
		if d.Code == "deadline-degraded" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no deadline-degraded diagnostic: %+v", ar.Diagnostics)
	}
	// The degraded layout is still a real layout.
	if len(ar.Structs) != 1 || ar.Structs[0].Auto == nil {
		t.Fatalf("structs: %+v", ar.Structs)
	}
	if st := s.Stats(); st.LadderStatic != 1 || st.Degraded != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body []byte
		code string
	}{
		{"truncated json", []byte(`{"program": "pro`), "json"},
		{"unparseable program", mustJSON(t, AnalyzeRequest{Program: "program broken\nstruct {"}), "bad-program"},
		{"unknown machine", mustJSON(t, AnalyzeRequest{Program: testProgram("bad1"), Machine: "cray1"}), "bad-machine"},
		{"unknown mode", mustJSON(t, AnalyzeRequest{Program: testProgram("bad2"), Mode: "fastest"}), "bad-mode"},
		{"unknown struct", mustJSON(t, AnalyzeRequest{Program: testProgram("bad3"), Struct: "nosuch"}), "bad-struct"},
		{"bad fault spec", mustJSON(t, AnalyzeRequest{Program: testProgram("bad4"), Inject: "loss=banana"}), "bad-inject"},
	}
	for _, tc := range cases {
		resp, body := postRaw(t, ts, "/v1/analyze", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Errorf("%s: non-JSON error body %s", tc.name, body)
			continue
		}
		if eb.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, eb.Code, tc.code)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", resp.StatusCode)
	}

	if st := s.Stats(); st.BadRequest != uint64(len(cases))+1 || st.OK != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLintEndpoint(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := mustJSON(t, LintRequest{Program: testProgram("lintme")})
	resp, raw := postRaw(t, ts, "/v1/lint", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var lr LintResponse
	if err := json.Unmarshal(raw, &lr); err != nil {
		t.Fatalf("decoding: %v\n%s", err, raw)
	}
	if lr.Count == 0 || len(lr.Findings) != lr.Count {
		t.Fatalf("findings: %+v", lr)
	}
	if lr.MaxSeverity == "" {
		t.Fatal("empty max severity")
	}
}

func TestLoadSheddingAndQueueDeadline(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.hookAdmitted = func() {
		entered <- struct{}{}
		<-block
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single worker.
	done := make(chan struct{})
	go func() {
		defer close(done)
		postAnalyze(t, ts, AnalyzeRequest{Program: testProgram("shedhold"), Seed: 51})
	}()
	<-entered

	// The worker is held and the queue has one seat. A request with a
	// short deadline queues, then answers 504 when the deadline expires.
	resp, body := postAnalyze(t, ts, AnalyzeRequest{Program: testProgram("shedqa"), Seed: 52, DeadlineMS: 80})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued request: status %d, want 504 (%s)", resp.StatusCode, body)
	}

	// Fill the queue seat for real, then exceed it: explicit 429.
	queued := make(chan struct{})
	go func() {
		defer close(queued)
		postAnalyze(t, ts, AnalyzeRequest{Program: testProgram("shedqb"), Seed: 53, DeadlineMS: 4000})
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 })
	resp, body = postAnalyze(t, ts, AnalyzeRequest{Program: testProgram("shedover"), Seed: 54})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(block)
	<-done
	<-queued
	st := s.Stats()
	if st.Shed != 1 || st.DeadlineHit != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPanicIsolation(t *testing.T) {
	var logs []string
	var logMu sync.Mutex
	s := New(Config{Logf: func(f string, a ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(f, a...))
		logMu.Unlock()
	}})
	var boom atomic.Bool
	s.hookAdmitted = func() {
		if boom.CompareAndSwap(true, false) {
			panic("injected")
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	boom.Store(true)
	resp, body := postAnalyze(t, ts, AnalyzeRequest{Program: testProgram("panicky"), Seed: 61})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (%s)", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "panic" {
		t.Fatalf("error body %s", body)
	}

	// The process survived: health is green, the panic is counted, the
	// diagnostic (with stack) was logged, and the next request succeeds.
	resp, body = postRaw(t, ts, "/v1/analyze", mustJSON(t, AnalyzeRequest{Program: testProgram("panicky"), Seed: 62}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after panic: status %d (%s)", resp.StatusCode, body)
	}
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d after panic", hr.StatusCode)
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Fatalf("stats: %+v", st)
	}
	logMu.Lock()
	defer logMu.Unlock()
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "injected") || !strings.Contains(joined, "goroutine") {
		t.Fatalf("panic log missing value or stack:\n%s", joined)
	}
}

func TestDrain(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if s.Draining() {
		t.Fatal("draining before Drain")
	}
	s.Drain()
	s.Drain() // idempotent

	resp, body := postAnalyze(t, ts, AnalyzeRequest{Program: testProgram("drained"), Seed: 71})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "draining" {
		t.Fatalf("error body %s", body)
	}
	rr, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d while draining, want 503", rr.StatusCode)
	}
	// Liveness stays green: draining is voluntary, not a failure.
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d while draining, want 200", hr.StatusCode)
	}
}

// TestChaosMini is the in-process chaos drill: concurrent clients with
// mixed clean/faulted/tight-deadline/malformed traffic against a small
// worker pool. Every response must be a labeled success or an explicit
// error status, and the server must record zero panics. Run with -race
// this doubles as the server's data-race test.
func TestChaosMini(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 2, StaticReserve: 100 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 6
	const perClient = 8
	var unexpected atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := AnalyzeRequest{
					Program: testProgram(fmt.Sprintf("chaos%d", (id+i)%3)),
					Seed:    int64(81 + i%2),
				}
				switch (id + i) % 4 {
				case 0:
					req.Inject = "loss=0.4,seed=9"
				case 1:
					req.DeadlineMS = 40
				case 2:
					req.Program = "program broken {"
				}
				body, _ := json.Marshal(req)
				resp, raw := postRaw(t, ts, "/v1/analyze", body)
				switch resp.StatusCode {
				case http.StatusOK:
					var ar AnalyzeResponse
					if err := json.Unmarshal(raw, &ar); err != nil || ar.Ladder == "" || ar.Quality.Verdict == "" {
						unexpected.Add(1)
					}
				case http.StatusBadRequest, http.StatusTooManyRequests,
					http.StatusGatewayTimeout, http.StatusServiceUnavailable:
					// Explicit, machine-readable refusals are within contract.
				default:
					t.Errorf("client %d req %d: unexpected status %d: %s", id, i, resp.StatusCode, raw)
				}
			}
		}(c)
	}
	wg.Wait()

	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d unlabeled 200 responses", n)
	}
	st := s.Stats()
	if st.Panics != 0 || st.Errors != 0 {
		t.Fatalf("panics/errors after chaos: %+v", st)
	}
	if st.Requests != clients*perClient {
		t.Fatalf("requests %d, want %d", st.Requests, clients*perClient)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

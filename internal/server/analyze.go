package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"structlayout/internal/core"
	"structlayout/internal/diag"
	"structlayout/internal/driver"
	"structlayout/internal/exec"
	"structlayout/internal/faults"
	"structlayout/internal/fieldmap"
	"structlayout/internal/flg"
	"structlayout/internal/irtext"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/profile"
	"structlayout/internal/quality"
	"structlayout/internal/sampling"
	"structlayout/internal/staticshare"
)

// Ladder rungs, most to least evidence. Every /v1/analyze response names
// the rung it was served from.
const (
	// LadderFull: a fresh sampled collection ran inside the deadline.
	LadderFull = "full"
	// LadderReplay: the collection replayed from the content-addressed
	// cache (an identical program/machine/seed was analyzed before).
	LadderReplay = "replay"
	// LadderGiven: the client supplied its own profile/trace artifacts.
	LadderGiven = "given"
	// LadderStatic: no budget for measurement — layout from the static
	// sharing prior alone, always labeled DEGRADED.
	LadderStatic = "static"
)

// maxBodyBytes bounds request bodies; a DSL program is text, so 4 MiB is
// generous.
const maxBodyBytes = 4 << 20

// AnalyzeRequest is the /v1/analyze body.
type AnalyzeRequest struct {
	// Program is the DSL source (docs/DSL.md).
	Program string `json:"program"`
	// Struct names one struct to lay out; empty means every struct.
	Struct string `json:"struct,omitempty"`
	// Machine is the collection machine (bus4, way16, superdome128, ...).
	Machine string `json:"machine,omitempty"`
	// Mode is auto, best, or both (default auto).
	Mode string `json:"mode,omitempty"`
	// Seed drives the simulated collection (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Inject is a measurement-fault spec (docs/FAULTS.md) applied to the
	// collection, e.g. "loss=0.3,seed=7".
	Inject string `json:"inject,omitempty"`
	// Sim selects the measurement simulation mode: "exact" (default) or
	// "sampled" (interval-sampled, extrapolated; faster but approximate).
	// Collection is always exact — only the optional MeasureRuns
	// measurements are affected. Sampled responses carry a sim-sampled
	// diagnostic.
	Sim string `json:"sim,omitempty"`
	// DeadlineMS is the request deadline; 0 means the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MeasureRuns > 0 additionally measures each suggested layout over
	// this many simulated runs (expensive; needs deadline headroom).
	MeasureRuns int `json:"measure_runs,omitempty"`
	// Profile/Trace, when set, are client-supplied artifacts in the
	// canonical JSON encodings; the server analyzes them instead of
	// collecting (the LadderGiven rung).
	Profile json.RawMessage `json:"profile,omitempty"`
	Trace   json.RawMessage `json:"trace,omitempty"`
	// Strict makes degraded measurement data an error instead of a
	// labeled degradation.
	Strict bool `json:"strict,omitempty"`
}

// FieldWire is one field placement in a layout, in memory order.
type FieldWire struct {
	Name   string `json:"name"`
	Offset int    `json:"offset"`
	Size   int    `json:"size"`
}

// LayoutWire is a layout in wire form.
type LayoutWire struct {
	Name     string      `json:"name"`
	Size     int         `json:"size"`
	LineSize int         `json:"line_size"`
	Fields   []FieldWire `json:"fields"`
}

// StructWire is one struct's layouts.
type StructWire struct {
	Struct string      `json:"struct"`
	Auto   *LayoutWire `json:"auto,omitempty"`
	Best   *LayoutWire `json:"best,omitempty"`
}

// DiagnosticWire is one structured diagnostic.
type DiagnosticWire struct {
	Severity string `json:"severity"`
	Source   string `json:"source"`
	Code     string `json:"code"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// QualityWire is the measurement-quality verdict of the response.
type QualityWire struct {
	Score   float64 `json:"score"`
	Verdict string  `json:"verdict"`
	Summary string  `json:"summary"`
}

// MeasureWire is the optional measurement table.
type MeasureWire struct {
	BaselineMean float64           `json:"baseline_mean"`
	Structs      []MeasureCellWire `json:"structs"`
}

// MeasureCellWire is one struct's measured outcome.
type MeasureCellWire struct {
	Struct     string  `json:"struct"`
	Mean       float64 `json:"mean"`
	SpeedupPct float64 `json:"speedup_pct"`
}

// AnalyzeResponse is the /v1/analyze result. Degradation is an output
// contract: a response is either this (labeled success, possibly
// degraded) or an explicit error status — never a silent partial.
type AnalyzeResponse struct {
	Program     string                `json:"program"`
	Machine     string                `json:"machine"`
	Ladder      string                `json:"ladder"`
	Degraded    bool                  `json:"degraded"`
	Quality     QualityWire           `json:"quality"`
	Structs     []StructWire          `json:"structs"`
	Lint        []staticshare.Finding `json:"lint"`
	Diagnostics []DiagnosticWire      `json:"diagnostics"`
	Measure     *MeasureWire          `json:"measure,omitempty"`
	ElapsedMS   float64               `json:"elapsed_ms"`
}

// LintRequest is the /v1/lint body.
type LintRequest struct {
	Program  string `json:"program"`
	LineSize int    `json:"line_size,omitempty"`
}

// LintResponse is the /v1/lint result.
type LintResponse struct {
	Findings    []staticshare.Finding `json:"findings"`
	Count       int                   `json:"count"`
	MaxSeverity string                `json:"max_severity"`
}

// decodeBody reads a bounded JSON body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method", "POST required")
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "body", fmt.Sprintf("reading body: %v", err))
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, "json", fmt.Sprintf("decoding body: %v", err))
		return false
	}
	return true
}

// deadlineFor clamps the request's deadline to the configured maximum.
func (s *Server) deadlineFor(ms int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	var req LintRequest
	if !decodeBody(w, r, &req) {
		s.badRequest.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(0))
	defer cancel()
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()
	file, err := irtext.Parse(req.Program)
	if err != nil {
		s.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, "bad-program", err.Error())
		return
	}
	lineSize := req.LineSize
	if lineSize <= 0 {
		lineSize = 128
	}
	findings, _, err := staticshare.LintFile(file, lineSize)
	if err != nil {
		s.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, "lint", err.Error())
		return
	}
	staticshare.Rank(findings)
	if findings == nil {
		findings = []staticshare.Finding{}
	}
	s.ok.Add(1)
	writeJSON(w, http.StatusOK, LintResponse{
		Findings:    findings,
		Count:       len(findings),
		MaxSeverity: staticshare.MaxSeverity(findings).String(),
	})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req AnalyzeRequest
	if !decodeBody(w, r, &req) {
		s.badRequest.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req.DeadlineMS))
	defer cancel()

	// Validate everything cheap before burning a worker slot on it.
	file, err := irtext.Parse(req.Program)
	if err != nil {
		s.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, "bad-program", err.Error())
		return
	}
	machineName := req.Machine
	if machineName == "" {
		machineName = s.cfg.DefaultMachine
	}
	topo, err := machine.ByName(machineName)
	if err != nil {
		s.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, "bad-machine", err.Error())
		return
	}
	if err := driver.ValidateThreads(file, topo); err != nil {
		s.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, "bad-threads", err.Error())
		return
	}
	spec, err := faults.ParseSpec(req.Inject)
	if err != nil {
		s.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, "bad-inject", err.Error())
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "auto"
	}
	if mode != "auto" && mode != "best" && mode != "both" {
		s.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, "bad-mode", fmt.Sprintf("unknown mode %q (auto|best|both)", mode))
		return
	}
	simMode, err := exec.ParseSimMode(req.Sim)
	if err != nil {
		s.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, "bad-sim", err.Error())
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	var wantStructs []string
	if req.Struct != "" {
		if file.Prog.Struct(req.Struct) == nil {
			s.badRequest.Add(1)
			writeError(w, http.StatusBadRequest, "bad-struct",
				fmt.Sprintf("program %s has no struct %q", file.Prog.Name, req.Struct))
			return
		}
		wantStructs = []string{req.Struct}
	} else {
		for _, st := range file.Prog.Structs {
			wantStructs = append(wantStructs, st.Name)
		}
		sort.Strings(wantStructs)
	}

	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()

	cfg := driver.Config{Topo: topo, Seed: seed, Inject: spec}
	lineSize := cfg.LineSize()

	// Pick the degradation rung and obtain artifacts.
	pf, trace, cycles, ladder, err := s.collectRung(ctx, &req, file, cfg)
	if err != nil {
		if ctx.Err() != nil {
			s.deadlineHit.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline", "deadline expired during collection")
			return
		}
		s.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, "bad-artifacts", err.Error())
		return
	}

	sc := staticshare.FileConfig(file)
	opts := core.Options{
		LineSize: lineSize,
		Strict:   req.Strict,
		FMF:      spec.ApplyFMF(fieldmap.Build(file.Prog), file.Prog),
		FLG:      flg.Options{K1: 4, K2: 1},
		Static:   &sc,
	}
	if cycles > 0 {
		opts.SliceCycles = cycles/64 + 1
	}
	analysis, err := core.NewAnalysis(file.Prog, pf, trace, opts)
	if err != nil {
		if req.Strict {
			// Strict mode turns degraded measurements into refusals by
			// request; the data, not the request, was unprocessable.
			s.badRequest.Add(1)
			writeError(w, http.StatusUnprocessableEntity, "strict", err.Error())
			return
		}
		s.internalErrs.Add(1)
		s.logf("layoutd: analysis failed: %v", err)
		writeError(w, http.StatusInternalServerError, "internal", "analysis failed (diagnostic captured server-side)")
		return
	}
	if ladder == LadderStatic {
		// The bottom rung is correct but measured by nothing: label it so
		// no client mistakes it for an evidence-backed advisory.
		analysis.Diag.Add(diag.Degraded, "server", "deadline-degraded",
			"no deadline budget for measurement; static-prior-only layout (re-request with a longer deadline for measured evidence)")
	}

	// Layouts per struct, plus the auto variants measurement would need.
	resp := &AnalyzeResponse{
		Program: file.Prog.Name,
		Machine: topo.Name,
		Ladder:  ladder,
	}
	origLayouts := make(map[string]*layout.Layout, len(file.Prog.Structs))
	for _, st := range file.Prog.Structs {
		orig, oerr := layout.Original(st, lineSize)
		if oerr != nil {
			s.badRequest.Add(1)
			writeError(w, http.StatusBadRequest, "bad-struct", oerr.Error())
			return
		}
		origLayouts[st.Name] = orig
	}
	autos := make(map[string]*layout.Layout, len(wantStructs))
	for _, name := range wantStructs {
		sw := StructWire{Struct: name}
		if mode == "auto" || mode == "both" {
			sugg, serr := analysis.Suggest(name, origLayouts[name])
			if serr != nil {
				s.internalErrs.Add(1)
				writeError(w, http.StatusInternalServerError, "internal", serr.Error())
				return
			}
			autos[name] = sugg.Auto
			sw.Auto = layoutWire(sugg.Auto)
		}
		if mode == "best" || mode == "both" {
			best, _, berr := analysis.Best(name, origLayouts[name])
			if berr != nil {
				s.internalErrs.Add(1)
				writeError(w, http.StatusInternalServerError, "internal", berr.Error())
				return
			}
			sw.Best = layoutWire(best)
		}
		resp.Structs = append(resp.Structs, sw)
	}

	resp.Lint = analysis.Lint(origLayouts)
	if resp.Lint == nil {
		resp.Lint = []staticshare.Finding{}
	}

	// Optional measurement, only on rungs with budget for it; a deadline
	// that expires mid-measurement degrades the response (labeled, table
	// omitted) instead of failing it.
	if req.MeasureRuns > 0 && ladder != LadderStatic {
		if mode == "best" {
			for _, name := range wantStructs {
				if autos[name] == nil {
					sugg, serr := analysis.Suggest(name, origLayouts[name])
					if serr != nil {
						s.internalErrs.Add(1)
						writeError(w, http.StatusInternalServerError, "internal", serr.Error())
						return
					}
					autos[name] = sugg.Auto
				}
			}
		}
		// The sim mode applies to measurement only; the collection rungs
		// above always ran exact (the PMU trace must observe every access).
		mcfg := cfg
		mcfg.Sim = exec.SimConfig{Mode: simMode}
		if simMode == exec.SimSampled {
			// Sampled results are approximate and memoize under distinct
			// keys; label the response so no client mistakes the measured
			// speedups for exact ones.
			analysis.Diag.Add(diag.Info, "server", "sim-sampled",
				"measurements ran interval-sampled (extrapolated, approximate); re-request with sim=exact for exact counts")
		}
		ev, merr := driver.EvaluateCtx(ctx, file, mcfg, nil, autos, req.MeasureRuns, analysis.Quality)
		if merr != nil {
			analysis.Diag.Add(diag.Degraded, "server", "measure-deadline",
				"measurement abandoned (%v); layouts delivered without measured speedups", merr)
		} else {
			mw := &MeasureWire{BaselineMean: ev.Baseline.Mean}
			for _, se := range ev.Structs {
				mw.Structs = append(mw.Structs, MeasureCellWire{Struct: se.Struct, Mean: se.Mean, SpeedupPct: se.SpeedupPct})
			}
			resp.Measure = mw
		}
	}

	verdict := analysis.QualityVerdict()
	resp.Quality = QualityWire{
		Score:   analysis.Quality.Score,
		Verdict: verdict.String(),
		Summary: analysis.Quality.String(),
	}
	resp.Degraded = verdict == quality.Degraded
	for _, d := range analysis.Diag.Entries() {
		resp.Diagnostics = append(resp.Diagnostics, DiagnosticWire{
			Severity: d.Severity.String(),
			Source:   d.Source,
			Code:     d.Code,
			Message:  d.Message,
			Count:    d.Count,
		})
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)

	switch ladder {
	case LadderFull:
		s.ladderFull.Add(1)
	case LadderReplay:
		s.ladderReplay.Add(1)
	case LadderGiven:
		s.ladderGiven.Add(1)
	case LadderStatic:
		s.ladderStatic.Add(1)
	}
	if resp.Degraded {
		s.degraded.Add(1)
	}
	s.ok.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// collectRung walks the degradation ladder for one request and returns
// the artifacts plus the rung that produced them:
//
//   - given: the client supplied artifacts; analyze those.
//   - replay: the collection is in the content-addressed cache; replaying
//     is nearly free, so even a tight deadline affords it.
//   - full: enough budget remains (per the smoothed cost estimate) to
//     simulate a fresh collection, holding StaticReserve back; if the
//     collection overruns the reserve boundary anyway, it is abandoned to
//     the background (it still warms the cache for the next request) and
//     the request falls to the static rung.
//   - static: no measurement at all; the caller builds the analysis from
//     a static profile estimate and the static sharing prior.
//
// A nil profile return with nil error means the static rung.
func (s *Server) collectRung(ctx context.Context, req *AnalyzeRequest, file *irtext.File, cfg driver.Config) (*profile.Profile, *sampling.Trace, int64, string, error) {
	if len(req.Profile) > 0 {
		pf, err := profile.ReadJSON(bytes.NewReader(req.Profile), file.Prog)
		if err != nil {
			return nil, nil, 0, "", fmt.Errorf("decoding supplied profile: %w", err)
		}
		var trace *sampling.Trace
		if len(req.Trace) > 0 {
			trace, err = sampling.ReadJSON(bytes.NewReader(req.Trace))
			if err != nil {
				return nil, nil, 0, "", fmt.Errorf("decoding supplied trace: %w", err)
			}
		}
		return pf, trace, 0, LadderGiven, nil
	}
	if len(req.Trace) > 0 {
		return nil, nil, 0, "", fmt.Errorf("a supplied trace needs its matching profile")
	}
	if driver.CollectCacheReady(file, cfg) {
		pf, tr, cycles, err := driver.CollectCached(file, cfg)
		if err != nil {
			return nil, nil, 0, "", err
		}
		return pf, tr, cycles, LadderReplay, nil
	}
	deadline, ok := ctx.Deadline()
	budget := time.Duration(1<<62 - 1)
	if ok {
		budget = time.Until(deadline) - s.cfg.StaticReserve
	}
	if budget < s.collectCost() {
		return s.staticRung(file)
	}
	type out struct {
		pf     *profile.Profile
		tr     *sampling.Trace
		cycles int64
		err    error
	}
	ch := make(chan out, 1)
	started := time.Now()
	go func() {
		// Runs to completion even if abandoned: the result lands in the
		// shared cache, so the next identical request rides the replay
		// rung instead of timing out the same way.
		pf, tr, cycles, err := driver.CollectCached(file, cfg)
		ch <- out{pf, tr, cycles, err}
	}()
	reserve := time.NewTimer(budget)
	defer reserve.Stop()
	select {
	case o := <-ch:
		if o.err != nil {
			return nil, nil, 0, "", o.err
		}
		s.observeCollectCost(time.Since(started))
		return o.pf, o.tr, o.cycles, LadderFull, nil
	case <-reserve.C:
		// Out of measurement budget: degrade, don't die. The abandoned
		// collection keeps warming the cache in the background.
		return s.staticRung(file)
	case <-ctx.Done():
		return nil, nil, 0, "", ctx.Err()
	}
}

// staticRung synthesizes the zero-measurement artifacts: a static profile
// estimate rooted at the declared thread procedures, no trace. The caller
// labels the analysis DEGRADED.
func (s *Server) staticRung(file *irtext.File) (*profile.Profile, *sampling.Trace, int64, string, error) {
	seen := make(map[string]bool)
	var entries []string
	for _, td := range file.Threads {
		if !seen[td.Proc] {
			seen[td.Proc] = true
			entries = append(entries, td.Proc)
		}
	}
	pf, err := profile.StaticEstimate(file.Prog, entries)
	if err != nil {
		return nil, nil, 0, "", err
	}
	return pf, nil, 0, LadderStatic, nil
}

// layoutWire converts a layout to wire form, fields in memory order.
func layoutWire(l *layout.Layout) *LayoutWire {
	w := &LayoutWire{Name: l.Name, Size: l.Size, LineSize: l.LineSize}
	for _, fi := range l.Order {
		w.Fields = append(w.Fields, FieldWire{
			Name:   l.Struct.Fields[fi].Name,
			Offset: l.Offsets[fi],
			Size:   l.Struct.Fields[fi].Size,
		})
	}
	return w
}

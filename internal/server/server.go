// Package server implements layoutd, the long-running layout-analysis
// service: the one-shot analysis pipeline (parse → collect → analyze →
// layout → lint → verdict) behind an HTTP/JSON API shaped for a fleet of
// build bots or CI requests.
//
// Robustness is the design center, as an operational contract rather than
// a library property:
//
//   - Deadlines: every request carries one (client-supplied, clamped to a
//     maximum) propagated via context.Context through measurement and
//     simulation; a request that cannot finish answers an explicit 504.
//   - Admission control: a bounded worker pool plus a bounded wait queue;
//     traffic beyond both is shed with an explicit 429 instead of piling
//     onto latency for everyone.
//   - Degradation ladder: a request short on budget degrades instead of
//     failing — full measurement, then memoized replay, then a
//     static-prior-only layout — with every response labeled by rung,
//     quality verdict, and `degraded` diagnostics.
//   - Panic isolation: a panic in one request's pipeline answers a 500
//     with a structured diagnostic and never takes the process down.
//   - Graceful drain: SIGTERM (via Drain + http.Server.Shutdown) stops
//     admitting, answers 503 to new work, and lets in-flight requests
//     finish.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Config holds layoutd's operational knobs.
type Config struct {
	// Workers is the number of requests analyzed concurrently (default
	// GOMAXPROCS). More wait in the queue; beyond that, 429.
	Workers int
	// QueueDepth is how many admitted-but-waiting requests may queue
	// (default 4×Workers). The queue is where a deadline most often
	// expires, so deep queues trade shed rate for timeout rate.
	QueueDepth int
	// DefaultDeadline applies when a request names none (default 5s).
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-supplied deadlines (default 60s).
	MaxDeadline time.Duration
	// StaticReserve is the slice of a request's budget held back for the
	// static-prior-only rung (default 250ms): collection is abandoned
	// early enough that the bottom rung still answers inside the deadline.
	StaticReserve time.Duration
	// CollectCostGuess seeds the collection-cost estimate before any
	// collection has run (default 300ms). The estimate is an EWMA of
	// observed collection times and drives the full-vs-static choice.
	CollectCostGuess time.Duration
	// DefaultMachine is the collection machine when a request names none
	// (default "way16").
	DefaultMachine string
	// Logf, when non-nil, receives one line per noteworthy server event
	// (panics, drain transitions).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.StaticReserve <= 0 {
		c.StaticReserve = 250 * time.Millisecond
	}
	if c.CollectCostGuess <= 0 {
		c.CollectCostGuess = 300 * time.Millisecond
	}
	if c.DefaultMachine == "" {
		c.DefaultMachine = "way16"
	}
}

// Stats are layoutd's monotonic counters, exposed at /statusz and
// consumed by the chaos benchmark's assertions.
type Stats struct {
	Requests     uint64 `json:"requests"`
	OK           uint64 `json:"ok"`
	BadRequest   uint64 `json:"bad_request"`
	Shed         uint64 `json:"shed"`          // 429: queue full
	DeadlineHit  uint64 `json:"deadline_hit"`  // 504: deadline expired before/while serving
	Unavailable  uint64 `json:"unavailable"`   // 503: draining
	Panics       uint64 `json:"panics"`        // 500: recovered panics
	Errors       uint64 `json:"errors"`        // 500: non-panic internal errors
	Degraded     uint64 `json:"degraded"`      // responses labeled DEGRADED
	LadderFull   uint64 `json:"ladder_full"`   // rung: fresh collection
	LadderReplay uint64 `json:"ladder_replay"` // rung: memoized replay
	LadderStatic uint64 `json:"ladder_static"` // rung: static-prior-only
	LadderGiven  uint64 `json:"ladder_given"`  // rung: client-supplied artifacts
}

// Server is one layoutd instance. Create with New; it is safe for
// concurrent use by the HTTP stack.
type Server struct {
	cfg      Config
	slots    chan struct{} // worker tokens: capacity cfg.Workers
	queued   atomic.Int64  // requests waiting for a slot
	inflight atomic.Int64  // requests holding a slot
	draining atomic.Bool
	costEWMA atomic.Uint64 // float64 bits: smoothed collection seconds
	mux      *http.ServeMux

	requests, ok, badRequest, shed, deadlineHit         atomic.Uint64
	unavailable, panics, internalErrs, degraded         atomic.Uint64
	ladderFull, ladderReplay, ladderStatic, ladderGiven atomic.Uint64

	// hookAdmitted, when non-nil, runs after a request acquires a worker
	// slot and before analysis. Tests use it to hold workers busy or to
	// inject panics at a controlled point.
	hookAdmitted func()
}

// New returns a configured server with its routes installed.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{cfg: cfg, slots: make(chan struct{}, cfg.Workers)}
	s.costEWMA.Store(math.Float64bits(cfg.CollectCostGuess.Seconds()))
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/analyze", s.guard("analyze", s.handleAnalyze))
	s.mux.HandleFunc("/v1/lint", s.guard("lint", s.handleLint))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain flips the server into draining mode: /readyz goes 503 so load
// balancers stop routing here, and new API requests answer 503
// immediately. In-flight requests are unaffected; pair with
// http.Server.Shutdown to wait for them.
func (s *Server) Drain() {
	if !s.draining.Swap(true) {
		s.logf("layoutd: draining (new requests rejected, in-flight finishing)")
	}
}

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:     s.requests.Load(),
		OK:           s.ok.Load(),
		BadRequest:   s.badRequest.Load(),
		Shed:         s.shed.Load(),
		DeadlineHit:  s.deadlineHit.Load(),
		Unavailable:  s.unavailable.Load(),
		Panics:       s.panics.Load(),
		Errors:       s.internalErrs.Load(),
		Degraded:     s.degraded.Load(),
		LadderFull:   s.ladderFull.Load(),
		LadderReplay: s.ladderReplay.Load(),
		LadderStatic: s.ladderStatic.Load(),
		LadderGiven:  s.ladderGiven.Load(),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// guard wraps an API handler with the pieces every request shares: the
// draining gate, request counting, and panic-to-500 recovery with a
// structured diagnostic — one request's panic must never take down the
// process or leak a half-written body into another request.
func (s *Server) guard(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if s.draining.Load() {
			s.unavailable.Add(1)
			writeError(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against another instance")
			return
		}
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.logf("layoutd: panic in %s: %v\n%s", name, rec, debug.Stack())
				// The response may be unwritten (normal case: panic inside
				// the pipeline, before any write). If headers already went
				// out this write fails silently, which is all that is left.
				writeError(w, http.StatusInternalServerError, "panic",
					fmt.Sprintf("internal error in %s (diagnostic captured server-side)", name))
			}
		}()
		h(w, r)
	}
}

// errorBody is the explicit failure contract: every non-200 carries a
// machine-readable code so clients (and the chaos harness) can tell shed
// from timeout from crash.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// admit acquires a worker slot under the request's deadline. The queue is
// strictly bounded: beyond QueueDepth waiting requests the caller is shed
// with 429 immediately (admitting it could only burn its deadline in
// line), and a deadline that expires while queued answers 504.
// On success the returned release func must be called exactly once.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.slots <- struct{}{}:
	default:
		// No free worker: queue if the bounded queue has room.
		if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
			s.queued.Add(-1)
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "overloaded",
				"admission queue full; shed (retry with backoff)")
			return nil, false
		}
		select {
		case s.slots <- struct{}{}:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			s.deadlineHit.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline",
				"deadline expired while queued for a worker")
			return nil, false
		}
	}
	s.inflight.Add(1)
	release = func() {
		s.inflight.Add(-1)
		<-s.slots
	}
	if s.hookAdmitted != nil {
		// The hook stands in for the analysis pipeline, so it can panic
		// like one; a panic past this point must hand the slot back or the
		// worker leaks for the life of the process.
		defer func() {
			if r := recover(); r != nil {
				release()
				panic(r)
			}
		}()
		s.hookAdmitted()
	}
	return release, true
}

// collectCost returns the smoothed observed collection duration.
func (s *Server) collectCost() time.Duration {
	return time.Duration(math.Float64frombits(s.costEWMA.Load()) * float64(time.Second))
}

// observeCollectCost folds one observed collection duration into the
// EWMA (α = 0.3; racing updates may drop an observation, which only
// slows convergence of an estimate that is advisory anyway).
func (s *Server) observeCollectCost(d time.Duration) {
	const alpha = 0.3
	old := math.Float64frombits(s.costEWMA.Load())
	next := (1-alpha)*old + alpha*d.Seconds()
	s.costEWMA.Store(math.Float64bits(next))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up and serving. Panics are reported (the
	// smoke test asserts zero) but do not turn health red — a recovered
	// panic is exactly what recovery is for.
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"panics": s.panics.Load(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ready",
		"inflight": s.inflight.Load(),
		"queued":   s.queued.Load(),
		"workers":  s.cfg.Workers,
		"queue":    s.cfg.QueueDepth,
	})
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"stats":               s.Stats(),
		"inflight":            s.inflight.Load(),
		"queued":              s.queued.Load(),
		"draining":            s.draining.Load(),
		"collect_cost_ms":     float64(s.collectCost()) / float64(time.Millisecond),
		"workers":             s.cfg.Workers,
		"queue_depth":         s.cfg.QueueDepth,
		"default_deadline_ms": s.cfg.DefaultDeadline.Milliseconds(),
	})
}

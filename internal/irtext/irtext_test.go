package irtext

import (
	"strings"
	"testing"
)

const demo = `
# A comment at the top.
program demo

struct conn {
    c_state  i64
    c_events i64
    c_rx     i64
    c_flags  i32
    c_tag    i16
    c_byte   i8
    c_ptr    ptr
    c_pad    pad 3
    c_name   arr 4 8 align 8
}

region userbuf 262144 perthread
region table 1048576 shared

proc poller {
    loop 256 {
        read conn.c_state loopvar
        read conn.c_events loopvar
        compute 25
    }
}

proc worker {
    loop 128 {
        write conn.c_rx shared 0
        if 0.25 {
            memsweep userbuf write 1024
        } else {
            memat table read 64
            memrand table write
        }
        compute 60
    }
    lock conn.c_state param 0     # a lock field for syntax coverage
    write conn.c_flags param 0
    unlock conn.c_state param 0
    read conn.c_tag percpu
}

proc main0 {
    call poller
    call worker
}

arena conn 512
thread 0 main0 params 1 2 iters 4
thread 1 main0 params 3 4 iters 4
`

func TestParseDemo(t *testing.T) {
	f, err := Parse(demo)
	if err != nil {
		t.Fatal(err)
	}
	if f.Prog.Name != "demo" {
		t.Fatalf("program name %q", f.Prog.Name)
	}
	st := f.Prog.Struct("conn")
	if st == nil || st.NumFields() != 9 {
		t.Fatalf("struct conn wrong: %+v", st)
	}
	if st.Fields[8].Size != 32 || st.Fields[8].Align != 8 {
		t.Fatalf("array field wrong: %+v", st.Fields[8])
	}
	if f.Prog.Region("userbuf") == nil || !f.Prog.Region("userbuf").PerThread {
		t.Fatal("userbuf region wrong")
	}
	if f.Prog.Region("table") == nil || f.Prog.Region("table").PerThread {
		t.Fatal("table region wrong")
	}
	for _, proc := range []string{"poller", "worker", "main0"} {
		if f.Prog.Proc(proc) == nil {
			t.Fatalf("missing proc %s", proc)
		}
	}
	if f.Arenas["conn"] != 512 {
		t.Fatalf("arena = %d", f.Arenas["conn"])
	}
	if len(f.Threads) != 2 || f.Threads[1].CPU != 1 || f.Threads[1].Iters != 4 {
		t.Fatalf("threads = %+v", f.Threads)
	}
	if len(f.Threads[0].Params) != 2 || f.Threads[0].Params[1] != 2 {
		t.Fatalf("thread params = %+v", f.Threads[0].Params)
	}
	// Loops were recognized.
	if len(f.Prog.Proc("poller").Loops) != 1 || len(f.Prog.Proc("worker").Loops) != 1 {
		t.Fatal("loop recognition failed")
	}
}

func TestRoundTrip(t *testing.T) {
	f1, err := Parse(demo)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(f1)
	f2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if got, want := f2.Prog.Dump(), f1.Prog.Dump(); got != want {
		t.Fatalf("round trip changed the program:\n--- first ---\n%s\n--- second ---\n%s", want, got)
	}
	if len(f2.Threads) != len(f1.Threads) || f2.Arenas["conn"] != f1.Arenas["conn"] {
		t.Fatal("round trip lost harness declarations")
	}
	// Idempotence: formatting the reparse gives identical text.
	if Format(f2) != text {
		t.Fatal("Format not idempotent")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no program", `struct S { a i64 }`, `expected "program"`},
		{"bad toplevel", `program p  frob x`, "unexpected top-level keyword"},
		{"empty struct", `program p  struct S { }`, "no fields"},
		{"bad field type", `program p  struct S { a i63 }`, "unknown field type"},
		{"dup struct", `program p  struct S { a i64 }  struct S { b i64 }`, "duplicate struct"},
		{"bad region scope", `program p  region r 64 private`, "shared or perthread"},
		{"unknown struct in proc", `program p  proc f { read T.x shared 0 }`, `unknown struct "T"`},
		{"unknown field in proc", `program p  struct S { a i64 }  proc f { read S.b shared 0 }`, `no field "b"`},
		{"bad stmt", `program p  proc f { jump 3 }`, "unknown statement"},
		{"bad inst", `program p  struct S { a i64 }  proc f { read S.a global 0 }`, "unknown instance selector"},
		{"bad prob", `program p  proc f { if 1.5 { compute 1 } }`, "out of [0,1]"},
		{"unterminated", `program p  proc f { compute 1`, "unexpected end of file"},
		{"bad region in mem", `program p  proc f { memrand nowhere read }`, `unknown region "nowhere"`},
		{"empty loop", `program p  proc f { loop 4 { } }`, "empty loop body"},
		{"undefined callee", `program p  proc f { call g }`, "undefined procedure"},
		{"arena unknown struct", `program p  arena T 4`, "undefined struct"},
		{"arena nonpositive", `program p  struct S { a i64 }  arena S 0`, "positive count"},
		{"dup arena", `program p  struct S { a i64 }  arena S 1 arena S 2`, "duplicate arena"},
		{"thread unknown proc", `program p  thread 0 ghost iters 1`, "undefined proc"},
		{"thread bad iters", `program p  proc f { compute 1 }  thread 0 f iters 0`, "must be positive"},
		{"stray char", `program p  proc f { compute 1 } @`, "unexpected character"},
		{"recursion", `program p  proc f { call f }`, "recursive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	src := "program p\nstruct S {\n    a i63\n}\n"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Fatalf("error %q lacks line info", err)
	}
}

func TestNumbersWithExponents(t *testing.T) {
	src := `program p  proc f { if 2.5e-1 { compute 1 } }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Prog.Proc("f") == nil {
		t.Fatal("proc missing")
	}
}

func TestElseBranchLowering(t *testing.T) {
	src := `program p
proc f {
    if 0.5 {
        compute 1
    } else {
        compute 2
        compute 3
    }
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := f.Prog.Proc("f").Dump()
	if !strings.Contains(d, "compute 2") || !strings.Contains(d, "compute 3") {
		t.Fatalf("else arm lost:\n%s", d)
	}
}

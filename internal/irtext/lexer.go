// Package irtext implements a small textual language for the IR, so the
// layout tool can be driven by programs written outside this repository —
// the role the C front end plays in the paper's pipeline. A program file
// declares record types, memory regions, procedures (with loops,
// probabilistic branches, field and memory accesses, locks and calls), and
// the run harness (arenas and threads):
//
//	program demo
//
//	struct conn {
//	    c_state  i64
//	    c_events i64
//	    c_rx     i64
//	    c_name   arr 4 8 align 8
//	}
//
//	region userbuf 262144 perthread
//
//	proc poller {
//	    loop 256 {
//	        read conn.c_state loopvar
//	        read conn.c_events loopvar
//	        compute 25
//	    }
//	}
//
//	proc worker {
//	    loop 256 {
//	        write conn.c_rx shared 0
//	        if 0.1 {
//	            memsweep userbuf write 1024
//	        }
//	        compute 60
//	    }
//	}
//
//	proc main0 { call poller  call worker }
//
//	arena conn 512
//	thread 0 main0 iters 4
//	thread 1 main0 iters 4
//
// '#' starts a comment that runs to end of line. The parser reports errors
// with line and column. Format serializes a finalized program back to this
// syntax, and the round trip is exact up to whitespace.
package irtext

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind discriminates lexical classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLBrace
	tokRBrace
	tokDot
)

// token is one lexeme with its position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokDot:
		return "'.'"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes the input.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '{':
		l.advance()
		return token{kind: tokLBrace, text: "{", line: line, col: col}, nil
	case c == '}':
		l.advance()
		return token{kind: tokRBrace, text: "}", line: line, col: col}, nil
	case c == '.':
		l.advance()
		return token{kind: tokDot, text: ".", line: line, col: col}, nil
	case isDigit(c) || c == '-' || c == '+':
		start := l.pos
		l.advance()
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' ||
			l.src[l.pos] == 'E' || l.src[l.pos] == '-' || l.src[l.pos] == '+') {
			// Accept floats and exponents; strconv validates later.
			if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
				// Sign only valid right after an exponent marker.
				prev := l.src[l.pos-1]
				if prev != 'e' && prev != 'E' {
					break
				}
			}
			l.advance()
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	default:
		return token{}, fmt.Errorf("%d:%d: unexpected character %q", line, col, rune(c))
	}
}

func (l *lexer) advance() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
			continue
		}
		if unicode.IsSpace(rune(c)) {
			l.advance()
			continue
		}
		return
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

// keywords that terminate statement parsing inside a block; used for error
// recovery messages.
var statementKeywords = strings.Join([]string{
	"read", "write", "lock", "unlock", "compute", "call", "loop", "if",
	"memsweep", "memat", "memrand", "spawn", "join", "send", "recv",
}, ", ")

package irtext

import (
	"testing"
)

// FuzzParse checks that arbitrary input never panics the parser, and that
// anything it accepts survives a format/reparse round trip. `go test` runs
// the seed corpus; `go test -fuzz=FuzzParse ./internal/irtext` explores.
func FuzzParse(f *testing.F) {
	f.Add(demo)
	f.Add("program p\nproc f { compute 1 }\n")
	f.Add("program p struct S { a i64 } proc f { read S.a shared 0 }")
	f.Add("program p proc f { if 0.5 { compute 1 } else { compute 2 } }")
	f.Add("program p proc f { loop 3 { compute 1 } } thread 0 f iters 2")
	f.Add("program p # comment only")
	f.Add("}{..")
	f.Add("program p region r 64 shared proc f { memrand r write }")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := Format(file)
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted output rejected: %v\ninput: %q\nformatted:\n%s", err, src, text)
		}
		if again.Prog.Dump() != file.Prog.Dump() {
			t.Fatalf("round trip changed program for input %q", src)
		}
	})
}

package irtext

import (
	"fmt"
	"strconv"

	"structlayout/internal/ir"
)

// ThreadDecl is one `thread` declaration: which CPU runs which procedure
// with which parameters, how many times.
type ThreadDecl struct {
	CPU    int
	Proc   string
	Params []int
	Iters  int64
}

// File is a parsed program plus its run harness.
type File struct {
	// Prog is the finalized program.
	Prog *ir.Program
	// Arenas maps struct name to instance count.
	Arenas map[string]int
	// Threads lists the declared threads in order.
	Threads []ThreadDecl
}

// Parse reads a program in the irtext syntax and finalizes it.
func Parse(src string) (f *File, err error) {
	// The IR builder enforces its own preconditions by panicking (they are
	// programmer errors when the builder is driven from Go code). For text
	// input they are user errors: convert any builder panic to a parse
	// error as a backstop behind the parser's own validation.
	defer func() {
		if r := recover(); r != nil {
			f, err = nil, fmt.Errorf("irtext: invalid program: %v", r)
		}
	}()
	p := &parser{lex: newLexer(src)}
	if err := p.advanceTok(); err != nil {
		return nil, err
	}
	f, err = p.parseFile()
	if err != nil {
		return nil, err
	}
	if err := f.Prog.Finalize(); err != nil {
		return nil, fmt.Errorf("irtext: %w", err)
	}
	for name := range f.Arenas {
		if f.Prog.Struct(name) == nil {
			return nil, fmt.Errorf("irtext: arena for undefined struct %q", name)
		}
	}
	for _, td := range f.Threads {
		if f.Prog.Proc(td.Proc) == nil {
			return nil, fmt.Errorf("irtext: thread references undefined proc %q", td.Proc)
		}
	}
	return f, nil
}

// parser is a one-token-lookahead recursive-descent parser.
type parser struct {
	lex *lexer
	tok token

	prog    *ir.Program
	structs map[string]*ir.StructType
}

func (p *parser) advanceTok() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("irtext: %d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

// errAt reports an error at an already-consumed token's position.
func errAt(t token, format string, args ...interface{}) error {
	return fmt.Errorf("irtext: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// expectIdentTok is expectIdent("") that also returns the token for
// position-accurate errors about its content.
func (p *parser) expectIdentTok() (string, token, error) {
	t := p.tok
	s, err := p.expectIdent("")
	return s, t, err
}

// expectIdent consumes an identifier (optionally a specific one).
func (p *parser) expectIdent(want string) (string, error) {
	if p.tok.kind != tokIdent {
		if want != "" {
			return "", p.errf("expected %q, got %s", want, p.tok)
		}
		return "", p.errf("expected identifier, got %s", p.tok)
	}
	got := p.tok.text
	if want != "" && got != want {
		return "", p.errf("expected %q, got %q", want, got)
	}
	return got, p.advanceTok()
}

// expectInt consumes an integer literal.
func (p *parser) expectInt() (int64, error) {
	if p.tok.kind != tokNumber {
		return 0, p.errf("expected number, got %s", p.tok)
	}
	n, err := strconv.ParseInt(p.tok.text, 10, 64)
	if err != nil {
		return 0, p.errf("malformed integer %q", p.tok.text)
	}
	return n, p.advanceTok()
}

// expectFloat consumes a float literal.
func (p *parser) expectFloat() (float64, error) {
	if p.tok.kind != tokNumber {
		return 0, p.errf("expected number, got %s", p.tok)
	}
	v, err := strconv.ParseFloat(p.tok.text, 64)
	if err != nil {
		return 0, p.errf("malformed number %q", p.tok.text)
	}
	return v, p.advanceTok()
}

func (p *parser) expect(kind tokenKind, what string) error {
	if p.tok.kind != kind {
		return p.errf("expected %s, got %s", what, p.tok)
	}
	return p.advanceTok()
}

// parseFile handles the top level.
func (p *parser) parseFile() (*File, error) {
	if _, err := p.expectIdent("program"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("")
	if err != nil {
		return nil, err
	}
	p.prog = ir.NewProgram(name)
	p.structs = make(map[string]*ir.StructType)
	f := &File{Prog: p.prog, Arenas: make(map[string]int)}

	for p.tok.kind != tokEOF {
		kw, err := p.expectIdent("")
		if err != nil {
			return nil, err
		}
		switch kw {
		case "struct":
			if err := p.parseStruct(); err != nil {
				return nil, err
			}
		case "region":
			if err := p.parseRegion(); err != nil {
				return nil, err
			}
		case "proc":
			if err := p.parseProc(); err != nil {
				return nil, err
			}
		case "arena":
			structName, err := p.expectIdent("")
			if err != nil {
				return nil, err
			}
			count, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if count <= 0 {
				return nil, p.errf("arena %s needs a positive count", structName)
			}
			if _, dup := f.Arenas[structName]; dup {
				return nil, p.errf("duplicate arena for %s", structName)
			}
			f.Arenas[structName] = int(count)
		case "thread":
			td, err := p.parseThread()
			if err != nil {
				return nil, err
			}
			f.Threads = append(f.Threads, td)
		default:
			return nil, p.errf("unexpected top-level keyword %q (want struct, region, proc, arena or thread)", kw)
		}
	}
	return f, nil
}

// parseStruct handles: struct NAME { field type ... }.
func (p *parser) parseStruct() error {
	name, err := p.expectIdent("")
	if err != nil {
		return err
	}
	if _, dup := p.structs[name]; dup {
		return p.errf("duplicate struct %q", name)
	}
	if err := p.expect(tokLBrace, "'{'"); err != nil {
		return err
	}
	var fields []ir.Field
	seen := make(map[string]bool)
	for p.tok.kind != tokRBrace {
		fnameTok := p.tok
		fname, err := p.expectIdent("")
		if err != nil {
			return err
		}
		if seen[fname] {
			return errAt(fnameTok, "duplicate field %q in struct %s", fname, name)
		}
		seen[fname] = true
		f, err := p.parseFieldType(fname)
		if err != nil {
			return err
		}
		if f.Size <= 0 {
			return errAt(fnameTok, "field %q has non-positive size %d", fname, f.Size)
		}
		if f.Align <= 0 || f.Align&(f.Align-1) != 0 {
			return errAt(fnameTok, "field %q has alignment %d (want a positive power of two)", fname, f.Align)
		}
		fields = append(fields, f)
	}
	if err := p.advanceTok(); err != nil { // consume '}'
		return err
	}
	if len(fields) == 0 {
		return fmt.Errorf("irtext: struct %s has no fields", name)
	}
	st := ir.NewStruct(name, fields...)
	p.structs[name] = st
	p.prog.AddStruct(st)
	return nil
}

// parseFieldType handles: i8|i16|i32|i64|ptr | pad N | arr N ELEM align A.
func (p *parser) parseFieldType(fname string) (ir.Field, error) {
	kind, kindTok, err := p.expectIdentTok()
	if err != nil {
		return ir.Field{}, err
	}
	switch kind {
	case "i8":
		return ir.I8(fname), nil
	case "i16":
		return ir.I16(fname), nil
	case "i32":
		return ir.I32(fname), nil
	case "i64":
		return ir.I64(fname), nil
	case "ptr":
		return ir.Ptr(fname), nil
	case "pad":
		n, err := p.expectInt()
		if err != nil {
			return ir.Field{}, err
		}
		return ir.Pad(fname, int(n)), nil
	case "arr":
		n, err := p.expectInt()
		if err != nil {
			return ir.Field{}, err
		}
		elem, err := p.expectInt()
		if err != nil {
			return ir.Field{}, err
		}
		if _, err := p.expectIdent("align"); err != nil {
			return ir.Field{}, err
		}
		a, err := p.expectInt()
		if err != nil {
			return ir.Field{}, err
		}
		return ir.Arr(fname, int(n), int(elem), int(a)), nil
	default:
		return ir.Field{}, errAt(kindTok, "unknown field type %q", kind)
	}
}

// parseRegion handles: region NAME BYTES shared|perthread.
func (p *parser) parseRegion() error {
	nameTok := p.tok
	name, err := p.expectIdent("")
	if err != nil {
		return err
	}
	if p.prog.Region(name) != nil {
		return errAt(nameTok, "duplicate region %q", name)
	}
	bytes, err := p.expectInt()
	if err != nil {
		return err
	}
	if bytes <= 0 {
		return errAt(nameTok, "region %q needs a positive size, got %d", name, bytes)
	}
	scope, err := p.expectIdent("")
	if err != nil {
		return err
	}
	switch scope {
	case "shared":
		p.prog.AddRegion(name, bytes, false)
	case "perthread":
		p.prog.AddRegion(name, bytes, true)
	default:
		return p.errf("region scope must be shared or perthread, got %q", scope)
	}
	return nil
}

// parseProc handles: proc NAME { stmts }.
func (p *parser) parseProc() error {
	nameTok := p.tok
	name, err := p.expectIdent("")
	if err != nil {
		return err
	}
	if p.prog.Proc(name) != nil {
		return errAt(nameTok, "duplicate proc %q", name)
	}
	b := p.prog.NewProc(name)
	if err := p.expect(tokLBrace, "'{'"); err != nil {
		return err
	}
	if err := p.parseStmts(b); err != nil {
		return err
	}
	b.Done()
	return nil
}

// parseStmts parses until the closing brace (consumed).
func (p *parser) parseStmts(b *ir.Builder) error {
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return p.errf("unexpected end of file inside a block")
		}
		kw, err := p.expectIdent("")
		if err != nil {
			return err
		}
		if err := p.parseStmt(b, kw); err != nil {
			return err
		}
	}
	return p.advanceTok() // consume '}'
}

// parseStmt dispatches one statement keyword.
func (p *parser) parseStmt(b *ir.Builder, kw string) error {
	switch kw {
	case "read", "write":
		st, field, err := p.parseFieldRef()
		if err != nil {
			return err
		}
		inst, err := p.parseInst()
		if err != nil {
			return err
		}
		if kw == "read" {
			b.Read(st, field, inst)
		} else {
			b.Write(st, field, inst)
		}
	case "lock", "unlock":
		st, field, err := p.parseFieldRef()
		if err != nil {
			return err
		}
		inst, err := p.parseInst()
		if err != nil {
			return err
		}
		if kw == "lock" {
			b.Lock(st, field, inst)
		} else {
			b.Unlock(st, field, inst)
		}
	case "compute":
		nTok := p.tok
		n, err := p.expectInt()
		if err != nil {
			return err
		}
		if n <= 0 {
			return errAt(nTok, "compute needs positive cycles, got %d", n)
		}
		b.Compute(n)
	case "call":
		callee, err := p.expectIdent("")
		if err != nil {
			return err
		}
		b.Call(callee)
	case "loop":
		nTok := p.tok
		n, err := p.expectInt()
		if err != nil {
			return err
		}
		if n < 0 {
			return errAt(nTok, "loop needs a non-negative count, got %d", n)
		}
		if err := p.expect(tokLBrace, "'{'"); err != nil {
			return err
		}
		var inner error
		b.Loop(n, func(b *ir.Builder) {
			inner = p.parseStmts(b)
		})
		if inner != nil {
			return inner
		}
	case "if":
		prob, err := p.expectFloat()
		if err != nil {
			return err
		}
		if prob < 0 || prob > 1 {
			return p.errf("branch probability %v out of [0,1]", prob)
		}
		if err := p.expect(tokLBrace, "'{'"); err != nil {
			return err
		}
		var thenErr, elseErr error
		b.IfElse(prob,
			func(b *ir.Builder) { thenErr = p.parseStmts(b) },
			func(b *ir.Builder) {
				// The builder invokes this immediately after the then
				// closure, with the parser positioned past the then-block's
				// closing brace — exactly where an optional `else {` sits.
				if thenErr != nil {
					return
				}
				if p.tok.kind == tokIdent && p.tok.text == "else" {
					if elseErr = p.advanceTok(); elseErr != nil {
						return
					}
					if elseErr = p.expect(tokLBrace, "'{'"); elseErr != nil {
						return
					}
					elseErr = p.parseStmts(b)
				}
			})
		if thenErr != nil {
			return thenErr
		}
		if elseErr != nil {
			return elseErr
		}
	case "memsweep":
		region, acc, err := p.parseRegionAcc()
		if err != nil {
			return err
		}
		stride, err := p.expectInt()
		if err != nil {
			return err
		}
		b.MemSweep(region, acc, stride)
	case "memat":
		region, acc, err := p.parseRegionAcc()
		if err != nil {
			return err
		}
		off, err := p.expectInt()
		if err != nil {
			return err
		}
		b.MemAt(region, acc, off)
	case "memrand":
		region, acc, err := p.parseRegionAcc()
		if err != nil {
			return err
		}
		b.MemRandom(region, acc)
	case "spawn":
		handle, err := p.expectIdent("")
		if err != nil {
			return err
		}
		cpuTok := p.tok
		cpu, err := p.expectInt()
		if err != nil {
			return err
		}
		if cpu < 0 {
			return errAt(cpuTok, "spawn needs a non-negative CPU, got %d", cpu)
		}
		callee, err := p.expectIdent("")
		if err != nil {
			return err
		}
		var params []int
		if p.tok.kind == tokIdent && p.tok.text == "params" {
			if err := p.advanceTok(); err != nil {
				return err
			}
			for p.tok.kind == tokNumber {
				n, err := p.expectInt()
				if err != nil {
					return err
				}
				params = append(params, int(n))
			}
		}
		b.Spawn(handle, int(cpu), callee, params...)
	case "join":
		handle, err := p.expectIdent("")
		if err != nil {
			return err
		}
		b.Join(handle)
	case "send":
		ch, err := p.expectIdent("")
		if err != nil {
			return err
		}
		b.Send(ch)
	case "recv":
		ch, err := p.expectIdent("")
		if err != nil {
			return err
		}
		b.Recv(ch)
	default:
		return p.errf("unknown statement %q (want one of: %s)", kw, statementKeywords)
	}
	return nil
}

// parseFieldRef handles STRUCT.FIELD.
func (p *parser) parseFieldRef() (*ir.StructType, string, error) {
	sname, err := p.expectIdent("")
	if err != nil {
		return nil, "", err
	}
	st := p.structs[sname]
	if st == nil {
		return nil, "", p.errf("unknown struct %q", sname)
	}
	if err := p.expect(tokDot, "'.'"); err != nil {
		return nil, "", err
	}
	fname, err := p.expectIdent("")
	if err != nil {
		return nil, "", err
	}
	if st.FieldIndex(fname) < 0 {
		return nil, "", p.errf("struct %s has no field %q", sname, fname)
	}
	return st, fname, nil
}

// parseInst handles: shared N | percpu | param N | loopvar.
func (p *parser) parseInst() (ir.InstExpr, error) {
	kind, err := p.expectIdent("")
	if err != nil {
		return ir.InstExpr{}, err
	}
	switch kind {
	case "shared":
		n, err := p.expectInt()
		if err != nil {
			return ir.InstExpr{}, err
		}
		return ir.Shared(int(n)), nil
	case "percpu":
		return ir.PerCPU(), nil
	case "param":
		n, err := p.expectInt()
		if err != nil {
			return ir.InstExpr{}, err
		}
		return ir.Param(int(n)), nil
	case "loopvar":
		return ir.LoopVar(), nil
	default:
		return ir.InstExpr{}, p.errf("unknown instance selector %q (want shared, percpu, param or loopvar)", kind)
	}
}

// parseRegionAcc handles: REGION read|write.
func (p *parser) parseRegionAcc() (string, ir.AccessKind, error) {
	region, err := p.expectIdent("")
	if err != nil {
		return "", 0, err
	}
	if p.prog.Region(region) == nil {
		return "", 0, p.errf("unknown region %q", region)
	}
	accWord, err := p.expectIdent("")
	if err != nil {
		return "", 0, err
	}
	switch accWord {
	case "read":
		return region, ir.Read, nil
	case "write":
		return region, ir.Write, nil
	default:
		return "", 0, p.errf("access must be read or write, got %q", accWord)
	}
}

// parseThread handles: thread CPU PROC [params N...] iters N.
func (p *parser) parseThread() (ThreadDecl, error) {
	cpu, err := p.expectInt()
	if err != nil {
		return ThreadDecl{}, err
	}
	proc, err := p.expectIdent("")
	if err != nil {
		return ThreadDecl{}, err
	}
	td := ThreadDecl{CPU: int(cpu), Proc: proc, Iters: 1}
	for p.tok.kind == tokIdent {
		switch p.tok.text {
		case "params":
			if err := p.advanceTok(); err != nil {
				return ThreadDecl{}, err
			}
			for p.tok.kind == tokNumber {
				n, err := p.expectInt()
				if err != nil {
					return ThreadDecl{}, err
				}
				td.Params = append(td.Params, int(n))
			}
		case "iters":
			if err := p.advanceTok(); err != nil {
				return ThreadDecl{}, err
			}
			n, err := p.expectInt()
			if err != nil {
				return ThreadDecl{}, err
			}
			if n <= 0 {
				return ThreadDecl{}, p.errf("thread iters must be positive")
			}
			td.Iters = n
		default:
			return td, nil // next top-level keyword
		}
	}
	return td, nil
}

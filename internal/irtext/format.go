package irtext

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/ir"
)

// Format serializes a parsed file back to irtext syntax. Parsing the output
// yields a program whose lowered dump is identical (the round trip is exact
// up to whitespace and comments).
func Format(f *File) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n\n", f.Prog.Name)
	for _, st := range f.Prog.Structs {
		formatStruct(&b, st)
	}
	for _, r := range f.Prog.Regions {
		scope := "shared"
		if r.PerThread {
			scope = "perthread"
		}
		fmt.Fprintf(&b, "region %s %d %s\n", r.Name, r.Bytes, scope)
	}
	if len(f.Prog.Regions) > 0 {
		b.WriteString("\n")
	}
	for _, pr := range f.Prog.Procs {
		fmt.Fprintf(&b, "proc %s {\n", pr.Name)
		formatStmts(&b, pr.Body, 1)
		b.WriteString("}\n\n")
	}
	// Deterministic arena order.
	arenas := make([]string, 0, len(f.Arenas))
	for name := range f.Arenas {
		arenas = append(arenas, name)
	}
	sort.Strings(arenas)
	for _, name := range arenas {
		fmt.Fprintf(&b, "arena %s %d\n", name, f.Arenas[name])
	}
	for _, td := range f.Threads {
		fmt.Fprintf(&b, "thread %d %s", td.CPU, td.Proc)
		if len(td.Params) > 0 {
			b.WriteString(" params")
			for _, p := range td.Params {
				fmt.Fprintf(&b, " %d", p)
			}
		}
		fmt.Fprintf(&b, " iters %d\n", td.Iters)
	}
	return b.String()
}

func formatStruct(b *strings.Builder, st *ir.StructType) {
	fmt.Fprintf(b, "struct %s {\n", st.Name)
	for _, f := range st.Fields {
		fmt.Fprintf(b, "    %-24s %s\n", f.Name, fieldTypeText(f))
	}
	b.WriteString("}\n\n")
}

// fieldTypeText recovers the declaration syntax for a field. Scalar widths
// map back to their keywords; anything else round-trips through arr/pad.
func fieldTypeText(f ir.Field) string {
	switch {
	case f.Size == 1 && f.Align == 1:
		return "i8"
	case f.Size == 2 && f.Align == 2:
		return "i16"
	case f.Size == 4 && f.Align == 4:
		return "i32"
	case f.Size == 8 && f.Align == 8:
		return "i64"
	case f.Align == 1:
		return fmt.Sprintf("pad %d", f.Size)
	default:
		return fmt.Sprintf("arr %d 1 align %d", f.Size, f.Align)
	}
}

func formatStmts(b *strings.Builder, stmts []ir.Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.AccessStmt:
			kw := "read"
			if s.Acc == ir.Write {
				kw = "write"
			}
			fmt.Fprintf(b, "%s%s %s.%s %s\n", ind, kw, s.Struct.Name, s.Struct.Fields[s.Field].Name, instText(s.Inst))
		case *ir.LockStmt:
			fmt.Fprintf(b, "%slock %s.%s %s\n", ind, s.Struct.Name, s.Struct.Fields[s.Field].Name, instText(s.Inst))
		case *ir.UnlockStmt:
			fmt.Fprintf(b, "%sunlock %s.%s %s\n", ind, s.Struct.Name, s.Struct.Fields[s.Field].Name, instText(s.Inst))
		case *ir.ComputeStmt:
			fmt.Fprintf(b, "%scompute %d\n", ind, s.Cycles)
		case *ir.CallStmt:
			fmt.Fprintf(b, "%scall %s\n", ind, s.Callee)
		case *ir.SpawnStmt:
			fmt.Fprintf(b, "%sspawn %s %d %s", ind, s.Handle, s.CPU, s.Callee)
			if len(s.Params) > 0 {
				b.WriteString(" params")
				for _, n := range s.Params {
					fmt.Fprintf(b, " %d", n)
				}
			}
			b.WriteString("\n")
		case *ir.JoinStmt:
			fmt.Fprintf(b, "%sjoin %s\n", ind, s.Handle)
		case *ir.SendStmt:
			fmt.Fprintf(b, "%ssend %s\n", ind, s.Chan)
		case *ir.RecvStmt:
			fmt.Fprintf(b, "%srecv %s\n", ind, s.Chan)
		case *ir.LoopStmt:
			fmt.Fprintf(b, "%sloop %d {\n", ind, s.Count)
			formatStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *ir.IfStmt:
			fmt.Fprintf(b, "%sif %g {\n", ind, s.Prob)
			formatStmts(b, s.Then, depth+1)
			fmt.Fprintf(b, "%s}", ind)
			if len(s.Else) > 0 {
				b.WriteString(" else {\n")
				formatStmts(b, s.Else, depth+1)
				fmt.Fprintf(b, "%s}", ind)
			}
			b.WriteString("\n")
		case *ir.MemStmt:
			acc := "read"
			if s.Acc == ir.Write {
				acc = "write"
			}
			switch s.Pattern {
			case ir.MemSeq:
				stride := s.Stride
				if stride == 0 {
					stride = 8
				}
				fmt.Fprintf(b, "%smemsweep %s %s %d\n", ind, s.Region, acc, stride)
			case ir.MemFixed:
				fmt.Fprintf(b, "%smemat %s %s %d\n", ind, s.Region, acc, s.Offset)
			case ir.MemRand:
				fmt.Fprintf(b, "%smemrand %s %s\n", ind, s.Region, acc)
			}
		}
	}
}

func instText(e ir.InstExpr) string {
	switch e.Kind {
	case ir.InstShared:
		return fmt.Sprintf("shared %d", e.Index)
	case ir.InstPerCPU:
		return "percpu"
	case ir.InstParam:
		return fmt.Sprintf("param %d", e.Index)
	case ir.InstLoopVar:
		return "loopvar"
	default:
		return "?"
	}
}

package core

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/layout"
	"structlayout/internal/profile"
)

// StructRank scores one struct's optimization potential.
type StructRank struct {
	Name string
	// Hotness is the struct's total dynamic reference count.
	Hotness float64
	// NegativeMass is the sum of |negative FLG edge weights|: how much
	// predicted false sharing its current field population carries.
	NegativeMass float64
	// Fields and Lines describe its shape under the original layout.
	Fields int
	Lines  int
}

// Score orders candidates: false-sharing hazard first, then hotness.
func (r StructRank) Score() float64 { return r.NegativeMass*1000 + r.Hotness }

// RankStructs scores every struct in the program — the paper's §5.1 step
// "we identify certain key structures in the kernel based on their
// hotness", extended with the FLG's predicted false-sharing mass so that
// hazard-carrying structs surface even when cooler. Structs whose layout
// would fit in a single cache line are skipped ("we only consider those
// structures whose layout after transformation span multiple cache lines").
func (a *Analysis) RankStructs() ([]StructRank, error) {
	var out []StructRank
	counts := profile.ProgramFieldCounts(a.Prog, a.Profile)
	for _, st := range a.Prog.StructsSorted() {
		orig, err := layout.Original(st, a.Opts.LineSize)
		if err != nil {
			return nil, err
		}
		if orig.NumLines() < 2 {
			continue
		}
		g, err := a.BuildFLG(st.Name)
		if err != nil {
			return nil, err
		}
		r := StructRank{Name: st.Name, Fields: st.NumFields(), Lines: orig.NumLines()}
		for fi := range st.Fields {
			r.Hotness += counts[profile.FieldKey{Struct: st.Name, Field: fi}].Total()
		}
		for _, e := range g.NegativeEdges() {
			r.NegativeMass += -e.Weight()
		}
		if r.Hotness == 0 {
			continue // never touched; nothing to optimize
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score() != out[j].Score() {
			return out[i].Score() > out[j].Score()
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// AdviseAll runs the automatic pipeline for the top-k ranked structs and
// returns their suggestions in rank order (k <= 0 means all).
func (a *Analysis) AdviseAll(k int, originals map[string]*layout.Layout) ([]*Suggestion, error) {
	ranks, err := a.RankStructs()
	if err != nil {
		return nil, err
	}
	if k > 0 && len(ranks) > k {
		ranks = ranks[:k]
	}
	out := make([]*Suggestion, 0, len(ranks))
	for _, r := range ranks {
		sugg, err := a.Suggest(r.Name, originals[r.Name])
		if err != nil {
			return nil, err
		}
		out = append(out, sugg)
	}
	return out, nil
}

// RankReport renders the ranking table.
func RankReport(ranks []StructRank) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %12s %14s %8s %7s %12s\n", "struct", "hotness", "neg-edge-mass", "fields", "lines", "score")
	for _, r := range ranks {
		fmt.Fprintf(&sb, "%-24s %12.4g %14.4g %8d %7d %12.4g\n",
			r.Name, r.Hotness, r.NegativeMass, r.Fields, r.Lines, r.Score())
	}
	return sb.String()
}

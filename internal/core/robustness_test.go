package core

import (
	"math"
	"strings"
	"testing"

	"structlayout/internal/diag"
	"structlayout/internal/faults"
	"structlayout/internal/fieldmap"
	"structlayout/internal/ir"
	"structlayout/internal/sampling"
)

// TestNoTraceDegradesToLocalityOnly: the defined fallback when no
// concurrency collection happened at all.
func TestNoTraceDegradesToLocalityOnly(t *testing.T) {
	p, s := scenario(t)
	pf, _ := collect(t, p, s)
	a, err := NewAnalysis(p, pf, nil, Options{LineSize: 128, SliceCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Concurrency != nil {
		t.Fatal("no trace but a concurrency map appeared")
	}
	if a.Degraded() {
		t.Fatal("a deliberately trace-less analysis is by design, not degraded")
	}
	sugg, err := a.Suggest("S", origLayout(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if err := sugg.Auto.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyTraceFallsBackDegraded: a trace that sanitizes to nothing must
// produce the affinity-only fallback, flag the analysis degraded, and stamp
// the advisory report.
func TestEmptyTraceFallsBackDegraded(t *testing.T) {
	p, s := scenario(t)
	pf, _ := collect(t, p, s)
	// Every sample names an out-of-range CPU: all get sanitized away.
	junk := &sampling.Trace{
		IntervalCycles: 200,
		NumCPUs:        4,
		Samples: []sampling.Sample{
			{CPU: 99, Block: 0, ITC: 100},
			{CPU: -5, Block: 1, ITC: 200},
		},
	}
	a, err := NewAnalysis(p, pf, junk, Options{LineSize: 128, SliceCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Concurrency != nil {
		t.Fatal("junk trace still produced a concurrency map")
	}
	if !a.Degraded() {
		t.Fatalf("analysis not flagged degraded; log:\n%s", a.Diag)
	}
	sugg, err := a.Suggest("S", origLayout(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if !sugg.Report.Degraded() {
		t.Fatal("report not flagged degraded")
	}
	text := sugg.Report.String()
	for _, want := range []string{"DEGRADED", "diagnostics (data quality)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

// TestStrictModeRejectsJunkTrace: the same input that gracefully degrades
// must be fatal under -strict.
func TestStrictModeRejectsJunkTrace(t *testing.T) {
	p, s := scenario(t)
	pf, _ := collect(t, p, s)
	junk := &sampling.Trace{
		IntervalCycles: 200,
		NumCPUs:        4,
		Samples:        []sampling.Sample{{CPU: 99, Block: 0, ITC: 100}},
	}
	if _, err := NewAnalysis(p, pf, junk, Options{LineSize: 128, SliceCycles: 2000, Strict: true}); err == nil {
		t.Fatal("strict mode accepted a trace that needed sanitization")
	}
	_ = s
}

// TestCorruptProfileSanitizedGracefully / rejected strictly.
func TestCorruptProfileHandling(t *testing.T) {
	p, s := scenario(t)
	pf, trace := collect(t, p, s)
	pf.Blocks[0] = -17
	pf.Blocks[1] = math.NaN()

	a, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Profile.Blocks[0] != 0 || a.Profile.Blocks[1] != 0 {
		t.Fatalf("corrupt counts not clamped: %v %v", a.Profile.Blocks[0], a.Profile.Blocks[1])
	}
	if pf.Blocks[0] != -17 {
		t.Fatal("caller's profile was mutated")
	}
	found := false
	for _, d := range a.Diag.Entries() {
		if d.Code == "profile-corrupt" && d.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no profile-corrupt x2 diagnostic:\n%s", a.Diag)
	}

	if _, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000, Strict: true}); err == nil {
		t.Fatal("strict mode accepted a corrupt profile")
	}
}

// TestStaleFMFDegrades: an FMF missing most of its lines must push coverage
// diagnostics and (below 50%) flag degradation, while the pipeline still
// emits a valid layout.
func TestStaleFMFDegrades(t *testing.T) {
	p, s := scenario(t)
	pf, trace := collect(t, p, s)
	full := fieldmap.Build(p)
	empty := full.Filter(p, func(ir.SourceLine) bool { return false })

	a, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000, FMF: empty})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Degraded() {
		t.Fatalf("empty FMF not flagged degraded:\n%s", a.Diag)
	}
	sugg, err := a.Suggest("S", origLayout(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if err := sugg.Auto.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sugg.Graph.Loss) != 0 {
		t.Fatal("empty FMF cannot justify any CycleLoss")
	}

	if _, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000, FMF: empty, Strict: true}); err == nil {
		t.Fatal("strict mode accepted an empty FMF")
	}
}

// TestProfileBlockCountMismatchIsAlwaysFatal: structural damage has no
// graceful fallback.
func TestProfileBlockCountMismatchIsAlwaysFatal(t *testing.T) {
	p, s := scenario(t)
	pf, trace := collect(t, p, s)
	pf.Blocks = pf.Blocks[:len(pf.Blocks)-1]
	if _, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000}); err == nil {
		t.Fatal("truncated profile accepted in graceful mode")
	}
	_ = s
}

// TestFaultedPipelineNeverPanics sweeps composed faults at full severity
// through the whole pipeline; whatever happens must be an error or a
// degraded-but-valid advisory, never a panic.
func TestFaultedPipelineNeverPanics(t *testing.T) {
	p, s := scenario(t)
	pf, trace := collect(t, p, s)
	full := fieldmap.Build(p)
	for _, sevs := range []string{"all=0.25", "all=0.5", "all=1"} {
		spec, err := faults.ParseSpec(sevs + ",seed=77")
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAnalysis(p, spec.ApplyProfile(pf), spec.ApplyTrace(trace), Options{
			LineSize:    128,
			SliceCycles: 2000,
			FMF:         spec.ApplyFMF(full, p),
		})
		if err != nil {
			continue // an error is an acceptable outcome; a panic is not
		}
		sugg, err := a.Suggest("S", origLayout(t, s))
		if err != nil {
			continue
		}
		if err := sugg.Auto.Validate(); err != nil {
			t.Fatalf("%s: faulted pipeline emitted an invalid layout: %v", sevs, err)
		}
		_ = sugg.Report.String() // rendering must not panic either
	}
}

// TestCleanInputNoDiagnostics: the graceful checks must not cry wolf.
func TestCleanInputNoDiagnostics(t *testing.T) {
	a, _ := analysis(t)
	if a.Degraded() {
		t.Fatalf("clean collection flagged degraded:\n%s", a.Diag)
	}
	for _, d := range a.Diag.Entries() {
		if d.Severity >= diag.Degraded {
			t.Fatalf("clean collection produced %v diagnostic: %+v", d.Severity, d)
		}
	}
}

package core

import (
	"testing"

	"structlayout/internal/diag"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/staticshare"
	"structlayout/internal/workload"
)

// scenarioStatic is the static configuration matching the scenario
// harness: four threads entering main0, one 64-instance arena of S.
func scenarioStatic() *staticshare.Config {
	cfg := &staticshare.Config{Arenas: map[string]int{"S": 64}}
	for cpu := 0; cpu < 4; cpu++ {
		cfg.Threads = append(cfg.Threads, staticshare.Thread{CPU: cpu, Proc: "main0", Iters: 3})
	}
	return cfg
}

// TestStaticInvarianceOnCleanTrace is the satellite invariance guarantee:
// enabling the static analysis on a clean collection must not move the
// layouts or the quality score — the prior only blends in when the
// dynamic evidence is missing or degraded.
func TestStaticInvarianceOnCleanTrace(t *testing.T) {
	p, s := scenario(t)
	pf, trace := collect(t, p, s)
	opts := Options{LineSize: 128, SliceCycles: 2000}
	without, err := NewAnalysis(p, pf, trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Static = scenarioStatic()
	with, err := NewAnalysis(p, pf, trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if with.Static == nil {
		t.Fatalf("static analysis did not run; diagnostics:\n%s", with.Diag)
	}
	if with.Quality.Score != without.Quality.Score {
		t.Fatalf("clean-trace quality moved: %v -> %v", without.Quality.Score, with.Quality.Score)
	}
	if !with.Quality.HasStaticCheck || with.Quality.StaticAgreement != 1 {
		t.Fatalf("clean trace should cross-check with full agreement, got %v (has=%v)",
			with.Quality.StaticAgreement, with.Quality.HasStaticCheck)
	}
	sw, err := without.Suggest("S", origLayout(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := with.Suggest("S", origLayout(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Auto.Dump() != ss.Auto.Dump() {
		t.Fatalf("clean-trace layout moved with the static prior enabled:\n--- without ---\n%s--- with ---\n%s",
			sw.Auto.Dump(), ss.Auto.Dump())
	}
	if hasDiag(with, diag.Info, "static-prior") {
		t.Fatal("prior was blended into a clean-trace analysis")
	}
}

// TestStaticPriorSeparatesWriteSharedOnEmptyTrace is the acceptance
// criterion: with no trace at all, the built-in workload's struct A still
// gets its statically-certain write-shared pairs onto distinct cache
// lines, because the static prior floors their CycleLoss above any gain.
func TestStaticPriorSeparatesWriteSharedOnEmptyTrace(t *testing.T) {
	params := workload.DefaultParams()
	params.ScriptsPerThread = 4
	suite, err := workload.NewSuite(params)
	if err != nil {
		t.Fatal(err)
	}
	topo := machine.Bus4()
	lineSize := int(params.Cache.LineSize)
	pf, _, err := suite.Collect(topo, suite.BaselineLayouts(lineSize), 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalysis(suite.Prog, pf, nil, Options{
		LineSize:    lineSize,
		SliceCycles: workload.CollectSliceCycles,
		Static:      suite.StaticConfig(topo, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Concurrency != nil {
		t.Fatal("concurrency map appeared without a trace")
	}
	structName := suite.Struct("A").Type.Name
	sugg, err := a.Suggest(structName, suite.Struct("A").Baseline(lineSize))
	if err != nil {
		t.Fatal(err)
	}
	if !hasDiag(a, diag.Info, "static-prior") {
		t.Fatalf("prior was not blended; diagnostics:\n%s", a.Diag)
	}
	if sugg.Report.Static == nil || sugg.Report.Static.Prior == nil {
		t.Fatal("report should carry the static summary with its prior result")
	}
	pairs := a.Static.Pairs[structName]
	if len(pairs) == 0 {
		t.Fatal("struct A should have classified pairs")
	}
	certain := 0
	for key, pi := range pairs {
		if pi.Class != staticshare.WriteShared || !pi.Certain {
			continue
		}
		certain++
		if sugg.Auto.SameLine(key[0], key[1]) {
			st := sugg.Struct
			t.Errorf("certain write-shared pair %s/%s co-located on line %d",
				st.Fields[key[0]].Name, st.Fields[key[1]].Name, sugg.Auto.LineOf(key[0]))
		}
	}
	if certain == 0 {
		t.Fatal("struct A should have statically-certain write-shared pairs")
	}
}

// TestStaticAnalysisFailureDegrades: an unusable static configuration is
// a diagnosed fallback in graceful mode and fatal in strict mode, the
// same contract as the lock and trace fallbacks.
func TestStaticAnalysisFailureDegrades(t *testing.T) {
	p, s := scenario(t)
	pf, trace := collect(t, p, s)
	bad := scenarioStatic()
	bad.Threads[0].Proc = "no_such_proc"
	a, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000, Static: bad})
	if err != nil {
		t.Fatal(err)
	}
	if a.Static != nil {
		t.Fatal("failed static analysis should leave Static nil")
	}
	if !hasDiag(a, diag.Degraded, "static-analysis-failed") {
		t.Fatalf("missing static-analysis-failed diagnostic:\n%s", a.Diag)
	}
	if _, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000, Static: bad, Strict: true}); err == nil {
		t.Fatal("strict mode should make a failed static analysis fatal")
	}
	_ = s
}

// TestAnalysisLint: the linter surfaces the scenario's seeded hazard (w
// written by every thread on the shared instance, co-located with the
// walk fields in declaration order).
func TestAnalysisLint(t *testing.T) {
	p, s := scenario(t)
	pf, trace := collect(t, p, s)
	a, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000, Static: scenarioStatic()})
	if err != nil {
		t.Fatal(err)
	}
	findings := a.Lint(map[string]*layout.Layout{"S": origLayout(t, s)})
	found := false
	for _, f := range findings {
		if f.Code == staticshare.CodeFalseSharing && f.Struct == "S" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lint should flag the co-located write-shared field w; got %+v", findings)
	}
}

// TestStaticInvarianceOnSyncProgram is the spawn-aware variant of the
// clean-trace invariance pin: a program carrying structured spawn/join
// statements runs the happens-before layer (tasks discovered, ordering
// claimed), yet on a clean trace the layouts and the quality score must
// stay byte-identical to the analysis without the static pass — the
// refinement may only remove claimed concurrency, never perturb a
// healthy dynamic result.
func TestStaticInvarianceOnSyncProgram(t *testing.T) {
	p := ir.NewProgram("toolcase")
	s := ir.NewStruct("S",
		ir.I64("a0"), ir.I64("a1"), ir.I64("w"),
		ir.I64("c0"), ir.I64("c1"),
	)
	p.AddStruct(s)
	reader := p.NewProc("reader")
	reader.Loop(400, func(b *ir.Builder) {
		b.Read(s, "a0", ir.LoopVar())
		b.Read(s, "a1", ir.LoopVar())
		b.Compute(30)
	})
	reader.Done()
	writer := p.NewProc("writer")
	writer.Loop(400, func(b *ir.Builder) {
		b.Write(s, "w", ir.Shared(0))
		b.Compute(40)
	})
	writer.Done()
	helper := p.NewProc("helper")
	helper.Write(s, "w", ir.Shared(0))
	helper.Done()
	main0 := p.NewProc("main0")
	main0.Call("reader")
	main0.Spawn("h", 5, "helper")
	main0.Call("writer")
	main0.Join("h")
	main0.Done()
	prog := p.MustFinalize()

	pf, trace := collect(t, prog, s)
	opts := Options{LineSize: 128, SliceCycles: 2000}
	without, err := NewAnalysis(prog, pf, trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Static = scenarioStatic()
	with, err := NewAnalysis(prog, pf, trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	if with.Static == nil {
		t.Fatalf("static analysis did not run; diagnostics:\n%s", with.Diag)
	}
	// Each of the four root threads spawns its own helper task.
	if got := len(with.Static.Threads); got != 8 {
		t.Fatalf("got %d static tasks, want 8 (4 roots + 4 spawned)", got)
	}
	if with.Static.HBDegraded() {
		t.Fatal("joined spawn must not degrade the happens-before layer")
	}
	if with.Quality.Score != without.Quality.Score {
		t.Fatalf("clean-trace quality moved: %v -> %v", without.Quality.Score, with.Quality.Score)
	}
	if !with.Quality.HasStaticCheck || with.Quality.StaticAgreement != 1 {
		t.Fatalf("clean trace should cross-check with full agreement, got %v (has=%v)",
			with.Quality.StaticAgreement, with.Quality.HasStaticCheck)
	}
	sw, err := without.Suggest("S", origLayout(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := with.Suggest("S", origLayout(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Auto.Dump() != ss.Auto.Dump() {
		t.Fatalf("clean-trace layout moved with the spawn-aware static prior enabled:\n--- without ---\n%s--- with ---\n%s",
			sw.Auto.Dump(), ss.Auto.Dump())
	}
	if hasDiag(with, diag.Info, "static-prior") {
		t.Fatal("prior was blended into a clean-trace analysis")
	}
}

// Package core ties the analysis pipeline together into the paper's
// semi-automatic layout tool (Figure 3): the compiler-side affinity graph,
// the Caliper/PMU concurrency data, and the field mapping file combine into
// a Field Layout Graph per struct; greedy clustering materializes a new
// layout; and an advisory report explains the decision.
//
// Two layout modes mirror the evaluation:
//
//   - Suggest: the fully automatic layout of §5.1 — cluster the whole FLG
//     and pack the clusters (what a compiler transformation would apply
//     when legality allows).
//   - Best: the incremental mode of §5.2 — keep only the important edges
//     (all negative + top-20 positive), cluster that subgraph, and apply
//     the resulting constraints as a minimal change to the original layout.
package core

import (
	"fmt"
	"math"

	"structlayout/internal/affinity"
	"structlayout/internal/cluster"
	"structlayout/internal/concurrency"
	"structlayout/internal/diag"
	"structlayout/internal/fieldmap"
	"structlayout/internal/flg"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/locks"
	"structlayout/internal/profile"
	"structlayout/internal/quality"
	"structlayout/internal/report"
	"structlayout/internal/sampling"
	"structlayout/internal/staticshare"
)

// Options configures the tool.
type Options struct {
	// LineSize is the coherence-line size (default 128, the Itanium L2).
	LineSize int
	// Affinity selects CycleGain heuristic variants.
	Affinity affinity.Options
	// FLG holds k1/k2 and the alias oracle.
	FLG flg.Options
	// SliceCycles is the concurrency interval (default 1 ms at 1.2 GHz,
	// scaled down by callers running short simulations).
	SliceCycles int64
	// TopKPositive is the important-edge budget of the incremental mode
	// (the paper uses 20).
	TopKPositive int
	// OneClusterPerLine packs each cluster onto its own line instead of
	// first-fit packing with separation constraints.
	OneClusterPerLine bool
	// LockEntries, when non-empty, enables lock analysis (internal/locks,
	// the paper's §7 future work): accesses provably serialized by a
	// shared lock contribute no CycleLoss. The slice names the procedures
	// threads may start in.
	LockEntries []string
	// FMF, when non-nil, replaces the field mapping file the analysis
	// would derive from the program — the paper's pipeline reads the FMF
	// from disk, so it can be stale or truncated relative to the program.
	FMF *fieldmap.File
	// Static, when non-nil, enables the zero-profile static sharing
	// analysis (internal/staticshare): its MHP relation cross-validates
	// the sampled concurrency map (feeding the quality score), and its
	// classification becomes a CycleLoss prior whenever the dynamic
	// evidence is missing or the collection grades DEGRADED — so even a
	// trace-less run separates statically-certain write-shared pairs.
	Static *staticshare.Config
	// Strict makes measurement-quality problems fatal: any input the
	// graceful mode would sanitize away or degrade around becomes an
	// error. Use it when a human should re-collect rather than trust a
	// degraded advisory.
	Strict bool
}

func (o *Options) fillDefaults() {
	if o.LineSize == 0 {
		o.LineSize = 128
	}
	if o.SliceCycles == 0 {
		o.SliceCycles = concurrency.DefaultSliceCycles
	}
	if o.TopKPositive == 0 {
		o.TopKPositive = 20
	}
}

// Analysis is everything the tool needs about one program: the collected
// profile and concurrency data plus the derived field mapping file.
type Analysis struct {
	Prog        *ir.Program
	Profile     *profile.Profile
	Concurrency *concurrency.Map
	FMF         *fieldmap.File
	Locks       *locks.Info
	// Static is the static sharing analysis result, nil when not enabled
	// or when it degraded (see the static-analysis-failed diagnostic).
	Static *staticshare.Result
	Opts   Options
	// Diag accumulates everything the input sanity checks and the
	// downstream graph builders noticed about data quality.
	Diag *diag.Log
	// Quality is the composite measurement-quality assessment of the
	// analysis's inputs (internal/quality): one calibrated score in [0,1]
	// instead of the scattered fixed cutoffs the checks used to gate on.
	Quality *quality.Assessment
}

// Degraded reports that some input was unusable and a defined fallback was
// taken (e.g. affinity-only layout). It consults the live log, so graph
// construction that degrades after NewAnalysis is reflected too.
func (a *Analysis) Degraded() bool { return a.Diag.Degraded() }

// QualityVerdict grades the analysis: the score-based verdict, escalated
// to Degraded whenever the diagnostics log recorded a defined fallback
// (a fallback is certain damage; the score alone only suspects it).
func (a *Analysis) QualityVerdict() quality.Verdict {
	v := a.Quality.Verdict()
	if a.Degraded() && v < quality.Degraded {
		v = quality.Degraded
	}
	return v
}

// NewAnalysis assembles an analysis from collected data. trace may be nil
// (no concurrency collection: the tool degrades to locality-only layout,
// like the CGO'06 single-threaded advisor).
//
// Measured inputs are never trusted blindly: the profile is scanned for
// corrupt counts, the trace is sanitized (CPU/block ranges, duplicate
// samples, per-CPU ITC monotonicity), the FMF's coverage of the program is
// measured, and samples are cross-checked against the profile. In graceful
// mode (default) problems are repaired or degraded around and recorded in
// Analysis.Diag; with Options.Strict they are errors.
func NewAnalysis(prog *ir.Program, pf *profile.Profile, trace *sampling.Trace, opts Options) (*Analysis, error) {
	opts.fillDefaults()
	if prog == nil || pf == nil {
		return nil, fmt.Errorf("core: nil program or profile")
	}
	log := diag.NewLog()
	if len(pf.Blocks) != prog.NumBlocks() {
		// Structural mismatch: indexing by BlockID would read out of
		// bounds. Nothing to degrade to — always an error.
		return nil, fmt.Errorf("core: profile has %d block counts, program has %d blocks", len(pf.Blocks), prog.NumBlocks())
	}
	pf, err := sanitizeProfile(pf, opts.Strict, log)
	if err != nil {
		return nil, err
	}
	fmf := opts.FMF
	if fmf == nil {
		fmf = fieldmap.Build(prog)
	}
	cov := fmf.CoverageRatio(prog)
	if cov < 1 {
		sev := diag.Warning
		if cov < 0.5 {
			sev = diag.Degraded
		}
		log.Add(sev, "core", "fmf-coverage",
			"FMF covers %.0f%% of the program's field-touching blocks; uncovered pairs contribute no CycleLoss", cov*100)
		if opts.Strict {
			return nil, fmt.Errorf("core: FMF covers only %.0f%% of field-touching blocks (strict mode)", cov*100)
		}
	}
	a := &Analysis{Prog: prog, Profile: pf, FMF: fmf, Opts: opts, Diag: log}
	if len(opts.LockEntries) > 0 && opts.FLG.ExclusionOracle == nil {
		info, err := locks.Analyze(prog, opts.LockEntries)
		if err != nil {
			// A CFG the lock analysis cannot walk (unknown entry, unknown
			// callee, malformed block) costs an optimization, not
			// correctness: without an exclusion oracle every concurrent
			// pair keeps its full CycleLoss, which is the conservative
			// side. Degrade like the other input failures instead of
			// refusing the whole advisory.
			if opts.Strict {
				return nil, fmt.Errorf("core: lock analysis failed (strict mode): %w", err)
			}
			log.Add(diag.Degraded, "core", "lock-analysis-failed",
				"lock analysis failed (%v); proceeding without a mutual-exclusion oracle, so lock-serialized accesses keep their CycleLoss", err)
		} else {
			a.Locks = info
			a.Opts.FLG.ExclusionOracle = info.MutualExclusion()
		}
	}
	var clean *sampling.Trace
	if trace != nil {
		clean = sampling.Sanitize(trace, prog.NumBlocks(), log)
		if dropped := len(trace.Samples) - len(clean.Samples); dropped > 0 {
			if opts.Strict {
				return nil, fmt.Errorf("core: trace sanitization dropped %d of %d samples (strict mode)", dropped, len(trace.Samples))
			}
			frac := float64(dropped) / float64(len(trace.Samples))
			// Any drop is worth a diagnostic: small losses used to vanish
			// below the 25% cutoff entirely, so nothing downstream could
			// tell a pristine trace from a mildly damaged one. Now every
			// drop is logged and feeds the quality score's retention
			// component; the Degraded escalation keeps its threshold.
			log.Add(diag.Warning, "core", "trace-drops",
				"sanitization dropped %d of %d samples (%.1f%%)", dropped, len(trace.Samples), frac*100)
			if frac > 0.25 {
				log.Add(diag.Degraded, "core", "trace-quality",
					"sanitization dropped %.0f%% of the trace; concurrency evidence is thin", frac*100)
			}
		}
		checkSamplesAgainstProfile(clean, pf, quality.BlockTimeWeights(prog), log)
		// Restrict concurrency to blocks that touch struct fields: the
		// paper's pipeline only correlates lines present in the FMF.
		relevant := func(b ir.BlockID) bool { return len(fmf.AtBlock(b)) > 0 }
		cm, err := concurrency.Compute(clean, concurrency.Options{SliceCycles: opts.SliceCycles, Relevant: relevant, Diag: log})
		if err != nil {
			return nil, err
		}
		if len(cm.CC) == 0 {
			// The defined fallback of §3: with no usable concurrency
			// evidence the FLG reduces to pure CycleGain, i.e. the CGO'06
			// locality-only advisor. The advisory is flagged so a
			// programmer knows false sharing was not ruled out.
			if opts.Strict {
				return nil, fmt.Errorf("core: concurrency map is empty (strict mode); re-collect the trace")
			}
			log.Add(diag.Degraded, "core", "no-concurrency",
				"concurrency map is empty or unusable; falling back to affinity-only (pure CycleGain) layout")
		} else {
			a.Concurrency = cm
		}
	} else {
		log.Add(diag.Info, "core", "no-trace", "no sample trace provided; locality-only analysis by design")
	}
	if opts.Static != nil {
		sres, serr := staticshare.Analyze(prog, *opts.Static)
		if serr != nil {
			// Same contract as the lock-analysis fallback: a program the
			// static pass cannot walk costs the prior and the cross-check,
			// not the whole advisory.
			if opts.Strict {
				return nil, fmt.Errorf("core: static sharing analysis failed (strict mode): %w", serr)
			}
			log.Add(diag.Degraded, "core", "static-analysis-failed",
				"static sharing analysis failed (%v); proceeding without the MHP cross-check or the CycleLoss prior", serr)
		} else {
			a.Static = sres
		}
	}
	qin := quality.Inputs{
		ProfileBlocks: pf.Blocks,
		BlockWeights:  quality.BlockTimeWeights(prog),
		Trace:         clean,
		SliceCycles:   opts.SliceCycles,
		Coverage:      cov,
	}
	if trace != nil {
		qin.RawSamples = len(trace.Samples)
	}
	if a.Static != nil && a.Concurrency != nil {
		// Cross-validate the sampled CC against the static MHP relation:
		// mass on provably-exclusive block pairs is measurement error and
		// feeds the quality score as a consistency signal.
		chk := a.Static.CheckCC(a.Concurrency)
		qin.HasStaticCheck = true
		qin.StaticAgreement = chk.Agreement
		if chk.ContradictedMass > 0 {
			log.AddN(diag.Warning, "core", "cc-mhp-contradiction", chk.ContradictedPairs,
				"sampled CC mass (%.4g total) sits on block pairs the static MHP relation proves exclusive; the trace misattributes concurrency", chk.ContradictedMass)
		}
	}
	a.Quality = quality.Assess(qin)
	// Downstream graph construction reports into the same log.
	a.Opts.FLG.Diag = log
	return a, nil
}

// sanitizeProfile scans the profile for corrupt counts — negative, NaN or
// infinite — and clamps them to zero on a copy. A corrupt count is not
// recoverable (the true value is unknowable), but a zero count only costs
// optimization opportunity, never correctness of the emitted layout.
func sanitizeProfile(pf *profile.Profile, strict bool, log *diag.Log) (*profile.Profile, error) {
	bad := func(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }
	n := 0
	for _, s := range [][]float64{pf.Blocks, pf.LoopIters, pf.LoopEntries} {
		for _, v := range s {
			if bad(v) {
				n++
			}
		}
	}
	if n == 0 {
		return pf, nil
	}
	if strict {
		return nil, fmt.Errorf("core: profile has %d corrupt counts (strict mode)", n)
	}
	out := &profile.Profile{
		ProgramName: pf.ProgramName,
		Blocks:      append([]float64(nil), pf.Blocks...),
		LoopIters:   append([]float64(nil), pf.LoopIters...),
		LoopEntries: append([]float64(nil), pf.LoopEntries...),
	}
	total := 0
	for _, s := range [][]float64{out.Blocks, out.LoopIters, out.LoopEntries} {
		total += len(s)
		for i, v := range s {
			if bad(v) {
				s[i] = 0
			}
		}
	}
	log.AddN(diag.Warning, "core", "profile-corrupt", n, "corrupt profile count (negative/NaN/Inf) clamped to zero")
	if total > 0 && float64(n)/float64(total) > 0.25 {
		log.Add(diag.Degraded, "core", "profile-quality",
			"%.0f%% of profile counts were corrupt; CycleGain weights are unreliable", float64(n)/float64(total)*100)
	}
	return out, nil
}

// checkSamplesAgainstProfile cross-checks the two measured inputs. A block
// the PMU observed executing but the profile claims never ran means the
// two files came from different runs (or one is damaged) — that stays a
// per-block warning. Beyond the binary check, the graded per-block overlap
// of sample mass vs profile mass (quality.MassConsistency) is logged when
// it falls low enough to matter, and feeds the composite quality score.
func checkSamplesAgainstProfile(t *sampling.Trace, pf *profile.Profile, weights []float64, log *diag.Log) {
	overlap, zeroProfile := quality.MassConsistency(pf.Blocks, weights, t.Samples)
	log.AddN(diag.Warning, "core", "sample-profile-mismatch", zeroProfile,
		"block has PMU samples but a zero profile count; profile and trace may be from different runs")
	if len(t.Samples) > 0 && overlap < 0.9 {
		log.Add(diag.Warning, "core", "sample-profile-divergence",
			"sample and profile mass contradict each other on %.0f%% of their mass; the two measurements disagree about where time went", (1-overlap)*100)
	}
}

// Suggestion is the tool's output for one struct.
type Suggestion struct {
	Struct *ir.StructType
	// Graph is the FLG the layouts derive from.
	Graph *flg.Graph
	// Auto is the fully automatic clustering layout (§5.1).
	Auto *layout.Layout
	// AutoClusters is the partition behind Auto.
	AutoClusters cluster.Result
	// Report is the advisory text.
	Report *report.Report
}

// BuildFLG constructs the struct's Field Layout Graph from the analysis.
func (a *Analysis) BuildFLG(structName string) (*flg.Graph, error) {
	g, _, err := a.buildFLG(structName)
	return g, err
}

// buildFLG builds the graph and, when the dynamic CycleLoss evidence is
// missing or the collection grades DEGRADED, blends in the static sharing
// prior — the zero-profile stand-in that keeps statically-certain
// write-shared pairs off a common cache line. The prior result is non-nil
// exactly when the prior changed the graph.
func (a *Analysis) buildFLG(structName string) (*flg.Graph, *staticshare.PriorResult, error) {
	st := a.Prog.Struct(structName)
	if st == nil {
		return nil, nil, fmt.Errorf("core: unknown struct %q", structName)
	}
	ag := affinity.Build(a.Prog, a.Profile, st, a.Opts.Affinity)
	g := flg.Build(ag, a.Concurrency, a.FMF, a.Opts.FLG)
	if a.Static != nil && (a.Concurrency == nil || a.QualityVerdict() == quality.Degraded) {
		pr := a.Static.ApplyPrior(g, staticshare.PriorOptions{})
		if pr.Certain > 0 || pr.Possible > 0 {
			a.Diag.Add(diag.Info, "core", "static-prior",
				"dynamic concurrency evidence missing or degraded; static sharing prior blended into the FLG (certain write-shared pairs forced onto separate lines)")
			return g, &pr, nil
		}
	}
	return g, nil, nil
}

// Suggest runs the automatic pipeline for one struct.
func (a *Analysis) Suggest(structName string, original *layout.Layout) (*Suggestion, error) {
	g, prior, err := a.buildFLG(structName)
	if err != nil {
		return nil, err
	}
	res := cluster.Greedy(g, a.Opts.LineSize)
	lay, err := layout.PackClusters(g.Struct, "flg-auto", res.Clusters, a.Opts.LineSize, layout.PackOptions{
		OneClusterPerLine: a.Opts.OneClusterPerLine,
		Separate:          cluster.SeparatePredicate(g, res.Clusters),
	})
	if err != nil {
		return nil, err
	}
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	var static *staticshare.StructSummary
	if a.Static != nil {
		static = a.Static.Summary(structName)
		if static != nil {
			static.Prior = prior
		}
	}
	return &Suggestion{
		Struct:       g.Struct,
		Graph:        g,
		Auto:         lay,
		AutoClusters: res,
		Report: &report.Report{
			Graph:       g,
			Clustering:  res,
			Suggested:   lay,
			Original:    original,
			TopEdges:    10,
			Diagnostics: a.Diag,
			Quality:     a.Quality,
			Static:      static,
		},
	}, nil
}

// Lint runs the static linter against the analysis: the classification
// checked against the given layouts plus the CC-versus-MHP cross-check of
// the sampled concurrency map. Returns nil when the static analysis is
// not enabled (or degraded).
func (a *Analysis) Lint(layouts map[string]*layout.Layout) []staticshare.Finding {
	if a.Static == nil {
		return nil
	}
	fs := a.Static.Lint(layouts)
	fs = append(fs, a.Static.LintCC(a.Concurrency)...)
	staticshare.Rank(fs)
	return fs
}

// Best runs the incremental mode of §5.2: important edges only, cluster the
// subgraph, and alter the original layout so the constraints are met.
func (a *Analysis) Best(structName string, original *layout.Layout) (*layout.Layout, cluster.Result, error) {
	g, err := a.BuildFLG(structName)
	if err != nil {
		return nil, cluster.Result{}, err
	}
	important := g.ImportantEdges(a.Opts.TopKPositive)
	sub := g.Subgraph(important)
	res := cluster.GreedySubgraph(sub, a.Opts.LineSize)
	lay, err := layout.ApplyConstraints(original, "incremental", res.Clusters)
	if err != nil {
		return nil, cluster.Result{}, err
	}
	if err := lay.Validate(); err != nil {
		return nil, cluster.Result{}, err
	}
	return lay, res, nil
}

// Package core ties the analysis pipeline together into the paper's
// semi-automatic layout tool (Figure 3): the compiler-side affinity graph,
// the Caliper/PMU concurrency data, and the field mapping file combine into
// a Field Layout Graph per struct; greedy clustering materializes a new
// layout; and an advisory report explains the decision.
//
// Two layout modes mirror the evaluation:
//
//   - Suggest: the fully automatic layout of §5.1 — cluster the whole FLG
//     and pack the clusters (what a compiler transformation would apply
//     when legality allows).
//   - Best: the incremental mode of §5.2 — keep only the important edges
//     (all negative + top-20 positive), cluster that subgraph, and apply
//     the resulting constraints as a minimal change to the original layout.
package core

import (
	"fmt"

	"structlayout/internal/affinity"
	"structlayout/internal/cluster"
	"structlayout/internal/concurrency"
	"structlayout/internal/fieldmap"
	"structlayout/internal/flg"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/locks"
	"structlayout/internal/profile"
	"structlayout/internal/report"
	"structlayout/internal/sampling"
)

// Options configures the tool.
type Options struct {
	// LineSize is the coherence-line size (default 128, the Itanium L2).
	LineSize int
	// Affinity selects CycleGain heuristic variants.
	Affinity affinity.Options
	// FLG holds k1/k2 and the alias oracle.
	FLG flg.Options
	// SliceCycles is the concurrency interval (default 1 ms at 1.2 GHz,
	// scaled down by callers running short simulations).
	SliceCycles int64
	// TopKPositive is the important-edge budget of the incremental mode
	// (the paper uses 20).
	TopKPositive int
	// OneClusterPerLine packs each cluster onto its own line instead of
	// first-fit packing with separation constraints.
	OneClusterPerLine bool
	// LockEntries, when non-empty, enables lock analysis (internal/locks,
	// the paper's §7 future work): accesses provably serialized by a
	// shared lock contribute no CycleLoss. The slice names the procedures
	// threads may start in.
	LockEntries []string
}

func (o *Options) fillDefaults() {
	if o.LineSize == 0 {
		o.LineSize = 128
	}
	if o.SliceCycles == 0 {
		o.SliceCycles = concurrency.DefaultSliceCycles
	}
	if o.TopKPositive == 0 {
		o.TopKPositive = 20
	}
}

// Analysis is everything the tool needs about one program: the collected
// profile and concurrency data plus the derived field mapping file.
type Analysis struct {
	Prog        *ir.Program
	Profile     *profile.Profile
	Concurrency *concurrency.Map
	FMF         *fieldmap.File
	Locks       *locks.Info
	Opts        Options
}

// NewAnalysis assembles an analysis from collected data. trace may be nil
// (no concurrency collection: the tool degrades to locality-only layout,
// like the CGO'06 single-threaded advisor).
func NewAnalysis(prog *ir.Program, pf *profile.Profile, trace *sampling.Trace, opts Options) (*Analysis, error) {
	opts.fillDefaults()
	if prog == nil || pf == nil {
		return nil, fmt.Errorf("core: nil program or profile")
	}
	fmf := fieldmap.Build(prog)
	a := &Analysis{Prog: prog, Profile: pf, FMF: fmf, Opts: opts}
	if len(opts.LockEntries) > 0 && opts.FLG.ExclusionOracle == nil {
		info, err := locks.Analyze(prog, opts.LockEntries)
		if err != nil {
			return nil, err
		}
		a.Locks = info
		a.Opts.FLG.ExclusionOracle = info.MutualExclusion()
	}
	if trace != nil {
		// Restrict concurrency to blocks that touch struct fields: the
		// paper's pipeline only correlates lines present in the FMF.
		relevant := func(b ir.BlockID) bool { return len(fmf.AtBlock(b)) > 0 }
		cm, err := concurrency.Compute(trace, concurrency.Options{SliceCycles: opts.SliceCycles, Relevant: relevant})
		if err != nil {
			return nil, err
		}
		a.Concurrency = cm
	}
	return a, nil
}

// Suggestion is the tool's output for one struct.
type Suggestion struct {
	Struct *ir.StructType
	// Graph is the FLG the layouts derive from.
	Graph *flg.Graph
	// Auto is the fully automatic clustering layout (§5.1).
	Auto *layout.Layout
	// AutoClusters is the partition behind Auto.
	AutoClusters cluster.Result
	// Report is the advisory text.
	Report *report.Report
}

// BuildFLG constructs the struct's Field Layout Graph from the analysis.
func (a *Analysis) BuildFLG(structName string) (*flg.Graph, error) {
	st := a.Prog.Struct(structName)
	if st == nil {
		return nil, fmt.Errorf("core: unknown struct %q", structName)
	}
	ag := affinity.Build(a.Prog, a.Profile, st, a.Opts.Affinity)
	return flg.Build(ag, a.Concurrency, a.FMF, a.Opts.FLG), nil
}

// Suggest runs the automatic pipeline for one struct.
func (a *Analysis) Suggest(structName string, original *layout.Layout) (*Suggestion, error) {
	g, err := a.BuildFLG(structName)
	if err != nil {
		return nil, err
	}
	res := cluster.Greedy(g, a.Opts.LineSize)
	lay, err := layout.PackClusters(g.Struct, "flg-auto", res.Clusters, a.Opts.LineSize, layout.PackOptions{
		OneClusterPerLine: a.Opts.OneClusterPerLine,
		Separate:          cluster.SeparatePredicate(g, res.Clusters),
	})
	if err != nil {
		return nil, err
	}
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	return &Suggestion{
		Struct:       g.Struct,
		Graph:        g,
		Auto:         lay,
		AutoClusters: res,
		Report: &report.Report{
			Graph:      g,
			Clustering: res,
			Suggested:  lay,
			Original:   original,
			TopEdges:   10,
		},
	}, nil
}

// Best runs the incremental mode of §5.2: important edges only, cluster the
// subgraph, and alter the original layout so the constraints are met.
func (a *Analysis) Best(structName string, original *layout.Layout) (*layout.Layout, cluster.Result, error) {
	g, err := a.BuildFLG(structName)
	if err != nil {
		return nil, cluster.Result{}, err
	}
	important := g.ImportantEdges(a.Opts.TopKPositive)
	sub := g.Subgraph(important)
	res := cluster.GreedySubgraph(sub, a.Opts.LineSize)
	lay, err := layout.ApplyConstraints(original, "incremental", res.Clusters)
	if err != nil {
		return nil, cluster.Result{}, err
	}
	if err := lay.Validate(); err != nil {
		return nil, cluster.Result{}, err
	}
	return lay, res, nil
}

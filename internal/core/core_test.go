package core

import (
	"strings"
	"testing"

	"structlayout/internal/coherence"
	"structlayout/internal/diag"
	"structlayout/internal/exec"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/profile"
	"structlayout/internal/sampling"
)

func origLayout(t testing.TB, st *ir.StructType) *layout.Layout {
	t.Helper()
	l, err := layout.Original(st, 128)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// scenario builds a small program with a clear right answer: fields a0,a1
// walked together by every CPU; field w written by every CPU on the shared
// instance; cold fields. The tool must co-locate a0/a1 and separate w.
func scenario(t testing.TB) (*ir.Program, *ir.StructType) {
	t.Helper()
	p := ir.NewProgram("toolcase")
	s := ir.NewStruct("S",
		ir.I64("a0"), ir.I64("a1"), ir.I64("w"),
		ir.I64("c0"), ir.I64("c1"),
	)
	p.AddStruct(s)
	reader := p.NewProc("reader")
	reader.Loop(400, func(b *ir.Builder) {
		b.Read(s, "a0", ir.LoopVar())
		b.Read(s, "a1", ir.LoopVar())
		b.Compute(30)
	})
	reader.Done()
	writer := p.NewProc("writer")
	writer.Loop(400, func(b *ir.Builder) {
		b.Write(s, "w", ir.Shared(0))
		b.Compute(40)
	})
	writer.Done()
	main0 := p.NewProc("main0")
	main0.Call("reader")
	main0.Call("writer")
	main0.Done()
	return p.MustFinalize(), s
}

// collect runs the scenario on a 4-way machine gathering profile+samples.
func collect(t testing.TB, p *ir.Program, s *ir.StructType) (*profile.Profile, *sampling.Trace) {
	t.Helper()
	r, err := exec.NewRunner(p, exec.Config{
		Topo:  machine.Bus4(),
		Cache: coherence.DefaultItanium(),
		Seed:  11,
		Sampling: &sampling.Config{
			IntervalCycles: 200,
			DriftMaxCycles: 2,
			Seed:           5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DefineArena(origLayout(t, s), 64); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 4; cpu++ {
		if err := r.AddThread(cpu, "main0", nil, 3); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Profile, res.Trace
}

func analysis(t testing.TB) (*Analysis, *ir.StructType) {
	t.Helper()
	p, s := scenario(t)
	pf, trace := collect(t, p, s)
	a, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	return a, s
}

// hasDiag reports whether the analysis logged the given code at exactly the
// given severity.
func hasDiag(a *Analysis, sev diag.Severity, code string) bool {
	for _, d := range a.Diag.Entries() {
		if d.Code == code && d.Severity == sev {
			return true
		}
	}
	return false
}

// TestTraceDropsAlwaysWarned is the regression test for the silent-drop
// bug: sanitization losses at or below the 25% degradation cutoff used to
// emit no diagnostic at all, so nothing downstream could tell a pristine
// trace from a mildly damaged one.
func TestTraceDropsAlwaysWarned(t *testing.T) {
	p, s := scenario(t)
	pf, trace := collect(t, p, s)

	clean, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if hasDiag(clean, diag.Warning, "trace-drops") {
		t.Fatal("clean trace reported sanitization drops")
	}

	// Append exact duplicates of a few samples: sanitize drops them (a
	// small fraction, far below the 25% Degraded escalation).
	damaged := &sampling.Trace{
		Samples:        append(append([]sampling.Sample(nil), trace.Samples...), trace.Samples[:5]...),
		IntervalCycles: trace.IntervalCycles,
		NumCPUs:        trace.NumCPUs,
	}
	a, err := NewAnalysis(p, pf, damaged, Options{LineSize: 128, SliceCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !hasDiag(a, diag.Warning, "trace-drops") {
		t.Fatalf("small drop emitted no trace-drops warning; diagnostics:\n%s", a.Diag)
	}
	if a.Degraded() {
		t.Fatalf("sub-threshold drop escalated to degraded:\n%s", a.Diag)
	}
}

func TestSuggestSeparatesWriterColocatesWalkers(t *testing.T) {
	a, s := analysis(t)
	orig := origLayout(t, s)
	sugg, err := a.Suggest("S", orig)
	if err != nil {
		t.Fatal(err)
	}
	lay := sugg.Auto
	if err := lay.Validate(); err != nil {
		t.Fatal(err)
	}
	if !lay.SameLine(s.FieldIndex("a0"), s.FieldIndex("a1")) {
		t.Fatalf("walk pair split:\n%s", lay.Dump())
	}
	wi := s.FieldIndex("w")
	if lay.SameLine(wi, s.FieldIndex("a0")) || lay.SameLine(wi, s.FieldIndex("a1")) {
		t.Fatalf("written field shares a line with the walk pair:\n%s", lay.Dump())
	}
	if sugg.Report == nil || sugg.Graph == nil {
		t.Fatal("missing report or graph")
	}
	text := sugg.Report.String()
	for _, want := range []string{"layout advisory for struct S", "intra-cluster weight", "suggested layout"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestBestAppliesConstraintsToOriginal(t *testing.T) {
	a, s := analysis(t)
	orig := origLayout(t, s) // a0,a1,w,c0,c1: w shares the line
	best, res, err := a.Best("S", orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no constraint clusters")
	}
	wi := s.FieldIndex("w")
	if best.SameLine(wi, s.FieldIndex("a0")) {
		t.Fatalf("incremental layout did not separate w:\n%s", best.Dump())
	}
	// Cold fields keep their relative order (minimal change).
	if best.Offsets[s.FieldIndex("c0")] > best.Offsets[s.FieldIndex("c1")] {
		t.Fatal("incremental layout reordered unconstrained fields")
	}
}

func TestAnalysisWithoutTrace(t *testing.T) {
	p, s := scenario(t)
	pf, _ := collect(t, p, s)
	a, err := NewAnalysis(p, pf, nil, Options{LineSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if a.Concurrency != nil {
		t.Fatal("concurrency map appeared without a trace")
	}
	sugg, err := a.Suggest("S", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Locality-only mode: the walk pair still clusters.
	if !sugg.Auto.SameLine(s.FieldIndex("a0"), s.FieldIndex("a1")) {
		t.Fatal("locality-only layout split the walk pair")
	}
}

func TestUnknownStruct(t *testing.T) {
	a, _ := analysis(t)
	if _, err := a.Suggest("Nope", nil); err == nil {
		t.Fatal("unknown struct accepted by Suggest")
	}
	if _, _, err := a.Best("Nope", origLayout(t, a.Prog.Struct("S"))); err == nil {
		t.Fatal("unknown struct accepted by Best")
	}
	if _, err := a.BuildFLG("Nope"); err == nil {
		t.Fatal("unknown struct accepted by BuildFLG")
	}
}

func TestNewAnalysisValidation(t *testing.T) {
	p, s := scenario(t)
	pf, _ := collect(t, p, s)
	if _, err := NewAnalysis(nil, pf, nil, Options{}); err == nil {
		t.Fatal("nil program accepted")
	}
	if _, err := NewAnalysis(p, nil, nil, Options{}); err == nil {
		t.Fatal("nil profile accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fillDefaults()
	if o.LineSize != 128 || o.TopKPositive != 20 || o.SliceCycles <= 0 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestOneClusterPerLineOption(t *testing.T) {
	p, s := scenario(t)
	pf, trace := collect(t, p, s)
	a, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000, OneClusterPerLine: true})
	if err != nil {
		t.Fatal(err)
	}
	sugg, err := a.Suggest("S", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Idealized one-line-per-cluster mode can only use more lines.
	aDefault, _ := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 2000})
	sDefault, err := aDefault.Suggest("S", nil)
	if err != nil {
		t.Fatal(err)
	}
	if sugg.Auto.NumLines() < sDefault.Auto.NumLines() {
		t.Fatalf("one-cluster-per-line used fewer lines (%d) than packed (%d)",
			sugg.Auto.NumLines(), sDefault.Auto.NumLines())
	}
}

// lockScenario: two writers updating different fields under one shared
// lock — serialized, so CodeConcurrency between them is a false alarm.
func lockScenario(t testing.TB) (*ir.Program, *ir.StructType) {
	t.Helper()
	p := ir.NewProgram("lockcase")
	s := ir.NewStruct("G", ir.I64("glock"), ir.I64("x"), ir.I64("y"))
	p.AddStruct(s)
	wx := p.NewProc("writerX")
	wx.Loop(300, func(b *ir.Builder) {
		b.Lock(s, "glock", ir.Shared(0))
		b.Write(s, "x", ir.Shared(0))
		b.Unlock(s, "glock", ir.Shared(0))
		b.Compute(60)
	})
	wx.Done()
	wy := p.NewProc("writerY")
	wy.Loop(300, func(b *ir.Builder) {
		b.Lock(s, "glock", ir.Shared(0))
		b.Write(s, "y", ir.Shared(0))
		b.Unlock(s, "glock", ir.Shared(0))
		b.Compute(60)
	})
	wy.Done()
	return p.MustFinalize(), s
}

func collectLockScenario(t testing.TB, p *ir.Program, s *ir.StructType) (*profile.Profile, *sampling.Trace) {
	t.Helper()
	r, err := exec.NewRunner(p, exec.Config{
		Topo:     machine.Bus4(),
		Cache:    coherence.DefaultItanium(),
		Seed:     21,
		Sampling: &sampling.Config{IntervalCycles: 100, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DefineArena(origLayout(t, s), 1); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 4; cpu++ {
		proc := "writerX"
		if cpu%2 == 1 {
			proc = "writerY"
		}
		if err := r.AddThread(cpu, proc, nil, 2); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Profile, res.Trace
}

func TestLockAnalysisSuppressesCycleLoss(t *testing.T) {
	p, s := lockScenario(t)
	pf, trace := collectLockScenario(t, p, s)
	entries := []string{"writerX", "writerY"}

	without, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 5000})
	if err != nil {
		t.Fatal(err)
	}
	gW, err := without.BuildFLG("G")
	if err != nil {
		t.Fatal(err)
	}
	xi, yi := s.FieldIndex("x"), s.FieldIndex("y")
	if gW.Weight(xi, yi) >= 0 {
		t.Skipf("scenario produced no x/y concurrency (weight %v); nothing to suppress", gW.Weight(xi, yi))
	}

	with, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 5000, LockEntries: entries})
	if err != nil {
		t.Fatal(err)
	}
	if with.Locks == nil {
		t.Fatal("lock info missing")
	}
	gL, err := with.BuildFLG("G")
	if err != nil {
		t.Fatal(err)
	}
	if w := gL.Weight(xi, yi); w < 0 {
		t.Fatalf("lock-protected pair still has negative weight %v", w)
	}
	// The lock word itself still falsely shares with x and y readers of
	// other... the lock is the contended word; its loss edges remain.
	if gL.Weight(s.FieldIndex("glock"), xi) >= 0 && gW.Weight(s.FieldIndex("glock"), xi) < 0 {
		t.Fatal("suppression leaked onto the lock word's own edges")
	}
}

func TestRankStructsAndAdviseAll(t *testing.T) {
	// Two structs: one hot with false sharing, one single-line (skipped),
	// one cold multi-line (skipped for zero hotness).
	p := ir.NewProgram("rank")
	hot := ir.NewStruct("hot", ir.I64("a0"), ir.I64("a1"), ir.I64("w"),
		ir.Arr("tail", 16, 8, 8)) // multi-line
	small := ir.NewStruct("small", ir.I64("x"), ir.I64("y"))
	cold := ir.NewStruct("colds", ir.Arr("blob", 40, 8, 8))
	p.AddStruct(hot)
	p.AddStruct(small)
	p.AddStruct(cold)
	rd := p.NewProc("reader")
	rd.Loop(300, func(b *ir.Builder) {
		b.Read(hot, "a0", ir.LoopVar())
		b.Read(hot, "a1", ir.LoopVar())
		b.Read(small, "x", ir.Shared(0))
		b.Compute(25)
	})
	rd.Done()
	wr := p.NewProc("writer")
	wr.Loop(300, func(b *ir.Builder) {
		b.Write(hot, "w", ir.Shared(0))
		b.Compute(40)
	})
	wr.Done()
	p.MustFinalize()

	r, err := exec.NewRunner(p, exec.Config{
		Topo:     machine.Bus4(),
		Cache:    coherence.DefaultItanium(),
		Seed:     31,
		Sampling: &sampling.Config{IntervalCycles: 150, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []*ir.StructType{hot, small, cold} {
		if err := r.DefineArena(origLayout(t, st), 64); err != nil {
			t.Fatal(err)
		}
	}
	for cpu := 0; cpu < 4; cpu++ {
		proc := "reader"
		if cpu%2 == 1 {
			proc = "writer"
		}
		if err := r.AddThread(cpu, proc, nil, 3); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalysis(p, res.Profile, res.Trace, Options{LineSize: 128, SliceCycles: 3000})
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := a.RankStructs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 1 || ranks[0].Name != "hot" {
		t.Fatalf("ranks = %+v; want only the hot multi-line struct", ranks)
	}
	if ranks[0].NegativeMass <= 0 {
		t.Fatalf("hot struct should carry negative-edge mass: %+v", ranks[0])
	}
	if !strings.Contains(RankReport(ranks), "hot") {
		t.Fatal("rank report malformed")
	}
	suggs, err := a.AdviseAll(0, map[string]*layout.Layout{"hot": origLayout(t, hot)})
	if err != nil {
		t.Fatal(err)
	}
	if len(suggs) != 1 || suggs[0].Struct.Name != "hot" {
		t.Fatalf("AdviseAll = %d suggestions", len(suggs))
	}
	if suggs[0].Auto.SameLine(hot.FieldIndex("w"), hot.FieldIndex("a0")) {
		t.Fatal("advised layout kept the hazard")
	}
}

// TestLockAnalysisFallback: a lock-entry set the CFG walker cannot analyze
// (unknown entry procedure) must degrade to a no-exclusion-oracle analysis
// with a diagnostic, not refuse the advisory — except under Strict.
func TestLockAnalysisFallback(t *testing.T) {
	p, s := lockScenario(t)
	pf, trace := collectLockScenario(t, p, s)
	bad := []string{"writerX", "no-such-proc"}

	a, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 5000, LockEntries: bad})
	if err != nil {
		t.Fatalf("graceful mode errored on unanalyzable lock entries: %v", err)
	}
	if a.Locks != nil || a.Opts.FLG.ExclusionOracle != nil {
		t.Fatal("failed lock analysis still installed an exclusion oracle")
	}
	if !a.Degraded() {
		t.Fatal("fallback not flagged as degraded")
	}
	found := false
	for _, d := range a.Diag.Entries() {
		if d.Code == "lock-analysis-failed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no lock-analysis-failed diagnostic:\n%s", a.Diag)
	}
	// The degraded analysis still produces a layout (conservative: full
	// CycleLoss on lock-serialized pairs).
	if _, err := a.Suggest("G", origLayout(t, s)); err != nil {
		t.Fatalf("degraded analysis cannot suggest: %v", err)
	}

	if _, err := NewAnalysis(p, pf, trace, Options{LineSize: 128, SliceCycles: 5000, LockEntries: bad, Strict: true}); err == nil {
		t.Fatal("strict mode accepted unanalyzable lock entries")
	}
}

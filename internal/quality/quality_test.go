package quality

import (
	"math"
	"strings"
	"testing"

	"structlayout/internal/ir"
	"structlayout/internal/sampling"
)

func sample(cpu int, block ir.BlockID, itc int64) sampling.Sample {
	return sampling.Sample{CPU: cpu, Block: block, ITC: itc}
}

// uniformTrace spreads one sample per (cpu, slice) round-robin over blocks.
func uniformTrace(cpus, slices int, sliceCycles int64, blocks []ir.BlockID) *sampling.Trace {
	t := &sampling.Trace{NumCPUs: cpus, IntervalCycles: sliceCycles}
	i := 0
	for s := 0; s < slices; s++ {
		for c := 0; c < cpus; c++ {
			t.Samples = append(t.Samples, sample(c, blocks[i%len(blocks)], int64(s)*sliceCycles+10))
			i++
		}
	}
	return t
}

func TestGradeBands(t *testing.T) {
	cases := []struct {
		score float64
		want  Verdict
	}{
		{1.0, OK},
		{SuspectBelow, OK},
		{SuspectBelow - 1e-9, Suspect},
		{DegradedBelow, Suspect},
		{DegradedBelow - 1e-9, Degraded},
		{0, Degraded},
	}
	for _, c := range cases {
		if got := Grade(c.score); got != c.want {
			t.Errorf("Grade(%v) = %v, want %v", c.score, got, c.want)
		}
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{OK: "OK", Suspect: "SUSPECT", Degraded: "DEGRADED"} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestNilAssessmentSafe(t *testing.T) {
	var a *Assessment
	if a.Verdict() != OK {
		t.Error("nil assessment must grade OK (no evidence of a problem)")
	}
	if a.String() != "(no assessment)" {
		t.Errorf("nil assessment renders %q", a.String())
	}
}

func TestMassConsistencyCleanIsOne(t *testing.T) {
	// Matching mass with no contradictions: consistency is exactly 1 no
	// matter how differently the mass distributes.
	profile := []float64{100, 5, 1, 0}
	samples := []sampling.Sample{sample(0, 1, 10), sample(0, 1, 20), sample(1, 0, 10), sample(1, 2, 30)}
	overlap, zero := MassConsistency(profile, nil, samples)
	if overlap != 1 {
		t.Errorf("clean overlap = %v, want exactly 1", overlap)
	}
	if zero != 0 {
		t.Errorf("clean zeroProfile = %d, want 0", zero)
	}
}

func TestMassConsistencyZeroProfileContradiction(t *testing.T) {
	// Half the sample mass lands on a block the profile says never ran.
	profile := []float64{10, 0}
	samples := []sampling.Sample{sample(0, 0, 10), sample(0, 1, 20)}
	overlap, zero := MassConsistency(profile, nil, samples)
	if zero != 1 {
		t.Errorf("zeroProfile = %d, want 1", zero)
	}
	if math.Abs(overlap-0.5) > 1e-12 {
		t.Errorf("overlap = %v, want 0.5 (half the sample mass contradicted)", overlap)
	}
}

func TestMassConsistencyMissingSamplesContradiction(t *testing.T) {
	// Block 0 holds ~all weighted profile mass and the trace is large, yet
	// block 0 drew zero samples: the profile mass is contradicted.
	profile := []float64{1000, 1}
	var samples []sampling.Sample
	for i := 0; i < 100; i++ {
		samples = append(samples, sample(0, 1, int64(i)))
	}
	overlap, _ := MassConsistency(profile, nil, samples)
	if overlap > 0.01 {
		t.Errorf("overlap = %v; a sample-starved hot block must collapse consistency", overlap)
	}
	// The same shape with a tiny trace must NOT fire: 2 expected samples
	// stay under the minExpectedSamples floor.
	overlap, _ = MassConsistency(profile, nil, samples[:2])
	if overlap != 1 {
		t.Errorf("overlap = %v; expectations below the floor must not contradict", overlap)
	}
}

func TestMassConsistencyWeights(t *testing.T) {
	// Block 1 is 99x cheaper per execution than block 0; with weights its
	// high count carries little expected mass, so its zero samples stop
	// contradicting.
	profile := []float64{100, 100}
	weights := []float64{99, 1}
	var samples []sampling.Sample
	for i := 0; i < 100; i++ {
		samples = append(samples, sample(0, 0, int64(i)))
	}
	unweighted, _ := MassConsistency(profile, nil, samples)
	weighted, _ := MassConsistency(profile, weights, samples)
	if !(weighted > unweighted) {
		t.Errorf("weights must excuse the cheap block: weighted %v <= unweighted %v", weighted, unweighted)
	}
	if weighted != 1 {
		t.Errorf("weighted = %v, want 1 (expected samples under the floor)", weighted)
	}
}

func TestMassConsistencyDegenerate(t *testing.T) {
	if o, _ := MassConsistency([]float64{1, 2}, nil, nil); o != 0 {
		t.Errorf("no samples: overlap = %v, want 0", o)
	}
	if o, _ := MassConsistency([]float64{0, 0}, nil, []sampling.Sample{sample(0, 0, 1)}); o != 0 {
		t.Errorf("no profile mass: overlap = %v, want 0", o)
	}
	// Out-of-range blocks are ignored, not counted.
	if o, _ := MassConsistency([]float64{5}, nil, []sampling.Sample{sample(0, 7, 1), sample(0, -1, 2)}); o != 0 {
		t.Errorf("only out-of-range samples: overlap = %v, want 0", o)
	}
}

func TestAssessNoTrace(t *testing.T) {
	a := Assess(Inputs{ProfileBlocks: []float64{1, 2}, Coverage: 0.7})
	if a.HasTrace {
		t.Error("HasTrace = true without a trace")
	}
	if a.Score != 0.7 {
		t.Errorf("no-trace score = %v, want the coverage ratio", a.Score)
	}
	if !strings.Contains(a.String(), "no trace") {
		t.Errorf("no-trace rendering %q should say so", a.String())
	}
}

func TestAssessCleanScoresHigh(t *testing.T) {
	blocks := []ir.BlockID{0, 1, 2, 3}
	tr := uniformTrace(4, 50, 1000, blocks)
	a := Assess(Inputs{
		ProfileBlocks: []float64{50, 50, 50, 50},
		Trace:         tr,
		RawSamples:    len(tr.Samples),
		SliceCycles:   1000,
		Coverage:      1,
	})
	if a.Verdict() != OK {
		t.Fatalf("clean uniform inputs graded %v (score %v): %s", a.Verdict(), a.Score, a)
	}
	if a.Consistency != 1 || a.Retention != 1 {
		t.Errorf("clean consistency/retention = %v/%v, want 1/1", a.Consistency, a.Retention)
	}
	if a.Balance < 0.99 || a.Occupancy < 0.99 {
		t.Errorf("uniform balance/occupancy = %v/%v, want ~1", a.Balance, a.Occupancy)
	}
}

func TestAssessDegradedComponentsDragScore(t *testing.T) {
	blocks := []ir.BlockID{0, 1, 2, 3}
	tr := uniformTrace(4, 50, 1000, blocks)
	clean := Assess(Inputs{ProfileBlocks: []float64{50, 50, 50, 50}, Trace: tr, RawSamples: len(tr.Samples), SliceCycles: 1000, Coverage: 1})
	// Same trace but half the raw samples were dropped in sanitization and
	// the FMF covers little: both verdict-relevant components fall.
	hurt := Assess(Inputs{ProfileBlocks: []float64{50, 50, 50, 50}, Trace: tr, RawSamples: 2 * len(tr.Samples), SliceCycles: 1000, Coverage: 0.3})
	if !(hurt.Score < clean.Score) {
		t.Fatalf("hurt score %v not below clean %v", hurt.Score, clean.Score)
	}
	if hurt.Verdict() == OK {
		t.Fatalf("retention 0.5 + coverage 0.3 still graded OK (score %v)", hurt.Score)
	}
}

func TestCPUBalanceActiveCPUsOnly(t *testing.T) {
	// Two active CPUs of a 128-CPU machine, perfectly balanced: a clean
	// partial-machine run must not be penalized for idle CPUs.
	tr := &sampling.Trace{NumCPUs: 128}
	for i := 0; i < 20; i++ {
		tr.Samples = append(tr.Samples, sample(i%2, 0, int64(i)*100))
	}
	if b := cpuBalance(tr); b < 0.999 {
		t.Errorf("balanced partial-machine balance = %v, want ~1", b)
	}
	// All mass on one CPU of a multi-CPU trace: no balance.
	tr2 := &sampling.Trace{NumCPUs: 4, Samples: []sampling.Sample{sample(2, 0, 1), sample(2, 0, 2)}}
	if b := cpuBalance(tr2); b != 0 {
		t.Errorf("single-active-CPU balance = %v, want 0", b)
	}
	// Single-CPU machine: balance does not apply.
	tr3 := &sampling.Trace{NumCPUs: 1, Samples: []sampling.Sample{sample(0, 0, 1)}}
	if b := cpuBalance(tr3); b != 1 {
		t.Errorf("single-CPU-machine balance = %v, want 1", b)
	}
}

func TestSliceOccupancyBurstLoss(t *testing.T) {
	blocks := []ir.BlockID{0}
	full := uniformTrace(2, 40, 1000, blocks)
	// Empty out the middle half of the slices (bursty loss) but keep the
	// span: occupancy must fall.
	var bursty []sampling.Sample
	for _, s := range full.Samples {
		slice := s.ITC / 1000
		if slice >= 10 && slice < 30 {
			continue
		}
		bursty = append(bursty, s)
	}
	burstyTrace := &sampling.Trace{NumCPUs: 2, Samples: bursty}
	fullOcc := sliceOccupancy(full, 1000)
	burstOcc := sliceOccupancy(burstyTrace, 1000)
	if !(burstOcc < fullOcc) {
		t.Errorf("bursty occupancy %v not below full %v", burstOcc, fullOcc)
	}
	if sliceOccupancy(full, 0) != 0 {
		t.Error("non-positive slice size must yield occupancy 0")
	}
	if sliceOccupancy(&sampling.Trace{NumCPUs: 2}, 1000) != 0 {
		t.Error("empty trace must yield occupancy 0")
	}
	one := &sampling.Trace{NumCPUs: 1, Samples: []sampling.Sample{sample(0, 0, 5)}}
	if sliceOccupancy(one, 1000) != 1 {
		t.Error("single-slice trace must yield occupancy 1")
	}
}

func TestRetention(t *testing.T) {
	if r := retention(50, 100); r != 0.5 {
		t.Errorf("retention(50,100) = %v", r)
	}
	if r := retention(10, 0); r != 1 {
		t.Errorf("retention with unknown raw count = %v, want 1", r)
	}
	if r := retention(200, 100); r != 1 {
		t.Errorf("retention must clamp to 1, got %v", r)
	}
}

func TestBlockTimeWeights(t *testing.T) {
	prog := ir.NewProgram("w")
	st := ir.NewStruct("s", ir.I64("a"))
	prog.AddStruct(st)
	prog.NewProc("heavy").Compute(500).Read(st, "a", ir.Shared(0)).Done()
	prog.NewProc("light").Compute(1).Done()
	if err := prog.Finalize(); err != nil {
		t.Fatal(err)
	}
	w := BlockTimeWeights(prog)
	if len(w) != len(prog.Blocks()) {
		t.Fatalf("got %d weights for %d blocks", len(w), len(prog.Blocks()))
	}
	var heavy, light float64
	for _, blk := range prog.Blocks() {
		switch blk.Proc.Name {
		case "heavy":
			heavy += w[blk.Global]
		case "light":
			light += w[blk.Global]
		}
	}
	if !(heavy > 100*light) {
		t.Errorf("compute-heavy proc weight %v should dwarf light %v", heavy, light)
	}
}

// TestScoreDeterministic guards the byte-identical-at-any-j contract: the
// assessment is a pure function of its inputs even when sample order and
// map iteration would tempt nondeterminism.
func TestScoreDeterministic(t *testing.T) {
	blocks := []ir.BlockID{0, 1, 2, 3, 4, 5, 6, 7}
	tr := uniformTrace(8, 100, 777, blocks)
	in := Inputs{ProfileBlocks: []float64{9, 8, 7, 6, 5, 4, 3, 2}, Trace: tr, RawSamples: len(tr.Samples) + 3, SliceCycles: 777, Coverage: 0.83}
	first := Assess(in).String()
	for i := 0; i < 20; i++ {
		if got := Assess(in).String(); got != first {
			t.Fatalf("iteration %d: %q != %q", i, got, first)
		}
	}
}

// TestAssessStaticAgreement: the static MHP cross-check component only
// participates when it disagrees, so clean collections score identically
// with and without the check, and contradictions drag the score.
func TestAssessStaticAgreement(t *testing.T) {
	blocks := []ir.BlockID{0, 1, 2, 3}
	tr := uniformTrace(4, 50, 1000, blocks)
	base := Inputs{
		ProfileBlocks: []float64{50, 50, 50, 50},
		Trace:         tr,
		RawSamples:    len(tr.Samples),
		SliceCycles:   1000,
		Coverage:      1,
	}
	plain := Assess(base)
	agreeing := base
	agreeing.HasStaticCheck = true
	agreeing.StaticAgreement = 1
	agree := Assess(agreeing)
	if agree.Score != plain.Score {
		t.Fatalf("full agreement moved the score: %v -> %v", plain.Score, agree.Score)
	}
	if !agree.HasStaticCheck || agree.StaticAgreement != 1 {
		t.Fatalf("assessment should record the check: %+v", agree)
	}
	if strings.Contains(agree.String(), "static-mhp") {
		t.Error("full agreement should not render the static component")
	}
	disagreeing := base
	disagreeing.HasStaticCheck = true
	disagreeing.StaticAgreement = 0.5
	disagree := Assess(disagreeing)
	if disagree.Score >= plain.Score {
		t.Fatalf("contradicted CC mass did not drag the score: %v vs %v", disagree.Score, plain.Score)
	}
	if !strings.Contains(disagree.String(), "static-mhp") {
		t.Errorf("disagreement should render the static component: %s", disagree)
	}
	// Out-of-range agreement clamps rather than corrupting the geometric mean.
	weird := base
	weird.HasStaticCheck = true
	weird.StaticAgreement = -3
	if a := Assess(weird); a.StaticAgreement != 0 || a.Score < 0 {
		t.Fatalf("agreement should clamp to [0,1]: %+v", a)
	}
}

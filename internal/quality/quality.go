// Package quality scores how trustworthy one analysis's measured inputs
// are. The paper's pipeline (§4.2–4.3) consumes a PBO profile, a PMU
// sample trace, and a field mapping file — all measurements, all imperfect
// in practice. The fixed per-check cutoffs the pipeline used before
// (coverage < 50%, drop fraction > 25%) leave a blind spot: the robustness
// sweep in EXPERIMENTS.md shows layouts turning *harmful* at fault
// severity 0.25 while every individual check still reads "fine".
//
// This package replaces those scattered cutoffs with one composite,
// graded score in [0, 1] per analysis, combining:
//
//   - Consistency: absence of contradictions between sample mass and
//     profile mass per block. The two files measure the same execution, so
//     neither may show activity the other rules out; misattributed samples
//     and zeroed, negated or inflated profile counts all contradict.
//   - Balance: entropy of the per-CPU sample distribution over the CPUs
//     that produced samples. Bursty loss and drift skew it.
//   - Occupancy: entropy of the per-slice sample distribution over the
//     trace's time span. Burst-emptied or compressed slices lower it.
//   - Coverage: the FMF's coverage ratio of the program's field-touching
//     blocks (stale FMFs lower it).
//   - Retention: the fraction of raw samples surviving sanitization
//     (duplicates, impossible CPUs/blocks/timestamps lower it).
//
// The score maps to a graded verdict: OK / SUSPECT / DEGRADED. The
// SUSPECT band is calibrated against the fault-injection severity sweep
// (`cmd/experiments quality`, see EXPERIMENTS.md): clean collections of
// the built-in workload score above SuspectBelow, while composed faults
// at severities 0.10–0.25 — damage that already misleads the layout tool
// but used to trip no threshold at all — fall below it.
package quality

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"structlayout/internal/ir"
	"structlayout/internal/sampling"
)

// Verdict grades an assessment.
type Verdict int

const (
	// OK: the measured inputs look internally consistent; the advisory can
	// be trusted as far as the paper's own protocol trusts measurements.
	OK Verdict = iota
	// Suspect: no single check failed hard, but the composite score sits
	// in the band where the robustness sweep shows layouts already turning
	// harmful. Re-collect before adopting the advisory unattended.
	Suspect
	// Degraded: a defined fallback was taken or the score collapsed; the
	// advisory rests on thin or contradictory evidence.
	Degraded
)

// String renders the verdict the way tables and reports print it.
func (v Verdict) String() string {
	switch v {
	case OK:
		return "OK"
	case Suspect:
		return "SUSPECT"
	case Degraded:
		return "DEGRADED"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Calibrated thresholds. Scores at or above SuspectBelow read OK; scores
// in [DegradedBelow, SuspectBelow) read SUSPECT; below DegradedBelow,
// DEGRADED. Calibration procedure: `go run ./cmd/experiments quality`
// sweeps the composed fault spec over the built-in workload's collection
// and prints score per severity; the thresholds are set so severity 0
// clears SuspectBelow with margin while severities 0.10 and 0.25 fall
// into the SUSPECT band (EXPERIMENTS.md records the sweep).
const (
	SuspectBelow  = 0.97
	DegradedBelow = 0.45
)

// Grade maps a composite score to its verdict band.
func Grade(score float64) Verdict {
	switch {
	case score < DegradedBelow:
		return Degraded
	case score < SuspectBelow:
		return Suspect
	default:
		return OK
	}
}

// Components are the individual quality signals, each in [0, 1] with 1
// meaning "no evidence of a problem".
type Components struct {
	// Consistency is 1 minus the mutually contradicted sample/profile mass.
	Consistency float64
	// Balance is the normalized entropy of per-CPU sample counts.
	Balance float64
	// Occupancy is the normalized entropy of per-slice sample counts.
	Occupancy float64
	// Coverage is the FMF coverage ratio.
	Coverage float64
	// Retention is the fraction of raw samples surviving sanitization.
	Retention float64
	// StaticAgreement is the fraction of sampled CC mass the static
	// may-happen-in-parallel relation considers possible (1 when no
	// static check ran or nothing contradicted; see HasStaticCheck).
	StaticAgreement float64
}

// Assessment is one analysis's measurement-quality outcome.
type Assessment struct {
	Components
	// Score is the composite in [0, 1]: a weighted geometric mean of the
	// applicable components.
	Score float64
	// HasTrace records whether a sample trace was part of the assessment;
	// without one only Coverage applies (locality-only analysis by design).
	HasTrace bool
	// HasStaticCheck records that a static MHP cross-check of the sampled
	// concurrency map ran. The component only joins the composite when it
	// actually disagrees (StaticAgreement < 1): a clean trace carries no
	// contradicted mass, so clean scores are untouched by the check and
	// the calibrated thresholds keep their meaning.
	HasStaticCheck bool
}

// Verdict grades the score. Callers holding a diagnostics log should
// escalate to Degraded when the log records a fallback (core.Analysis
// does this in its QualityVerdict).
func (a *Assessment) Verdict() Verdict {
	if a == nil {
		return OK
	}
	return Grade(a.Score)
}

// String renders the assessment on one line, deterministically.
func (a *Assessment) String() string {
	if a == nil {
		return "(no assessment)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "score %.3f (%s):", a.Score, a.Verdict())
	if !a.HasTrace {
		fmt.Fprintf(&sb, " coverage %.3f (no trace: locality-only analysis)", a.Coverage)
		return sb.String()
	}
	fmt.Fprintf(&sb, " consistency %.3f, balance %.3f, occupancy %.3f, coverage %.3f, retention %.3f",
		a.Consistency, a.Balance, a.Occupancy, a.Coverage, a.Retention)
	if a.HasStaticCheck && a.StaticAgreement < 1 {
		fmt.Fprintf(&sb, ", static-mhp %.3f", a.StaticAgreement)
	}
	return sb.String()
}

// Inputs are the raw quantities an assessment derives from. All of them
// come straight out of the analysis front end: the sanitized profile and
// trace, the pre-sanitization sample count, the concurrency interval, and
// the FMF coverage ratio.
type Inputs struct {
	// ProfileBlocks are the sanitized per-block profile counts.
	ProfileBlocks []float64
	// BlockWeights, when non-nil, are per-execution time estimates per
	// block (see BlockTimeWeights); they make execution counts comparable
	// to time-proportional PMU sample mass.
	BlockWeights []float64
	// Trace is the sanitized sample trace; nil means no concurrency
	// collection happened (locality-only analysis by design).
	Trace *sampling.Trace
	// RawSamples counts the trace's samples before sanitization.
	RawSamples int
	// SliceCycles is the concurrency interval, for slice occupancy.
	SliceCycles int64
	// Coverage is the FMF coverage ratio of the program.
	Coverage float64
	// HasStaticCheck marks that StaticAgreement was computed (a static
	// MHP cross-check of the concurrency map ran).
	HasStaticCheck bool
	// StaticAgreement is the fraction of sampled CC mass the static MHP
	// relation allows; see staticshare.CheckCC.
	StaticAgreement float64
}

// Component weights. Consistency carries the most because it is the only
// signal that cross-checks two independent measurements against each
// other; coverage and retention are the steadiest monotone fault signals
// in the calibration sweep; balance barely moves under any injector on
// this machine model and gets token weight.
const (
	wConsistency = 0.35
	wBalance     = 0.05
	wOccupancy   = 0.10
	wCoverage    = 0.30
	wRetention   = 0.20
	// wStatic weights the static-MHP agreement when (and only when) the
	// cross-check ran and disagreed; clean collections never include it,
	// keeping the calibrated thresholds stable.
	wStatic = 0.10
)

// Assess computes the composite measurement-quality score. The result is
// a pure function of the inputs — every internal accumulation runs in a
// fixed order — so identical collections yield byte-identical renderings
// at any worker count.
func Assess(in Inputs) *Assessment {
	a := &Assessment{}
	a.Coverage = clamp01(in.Coverage)
	a.StaticAgreement = 1
	if in.Trace == nil {
		// Locality-only by design: the trace components do not apply and
		// must not dilute (or inflate) the score.
		a.Consistency, a.Balance, a.Occupancy, a.Retention = 1, 1, 1, 1
		a.Score = a.Coverage
		return a
	}
	a.HasTrace = true
	a.Consistency, _ = MassConsistency(in.ProfileBlocks, in.BlockWeights, in.Trace.Samples)
	a.Balance = cpuBalance(in.Trace)
	a.Occupancy = sliceOccupancy(in.Trace, in.SliceCycles)
	a.Retention = retention(len(in.Trace.Samples), in.RawSamples)
	parts := []weighted{
		{a.Consistency, wConsistency},
		{a.Balance, wBalance},
		{a.Occupancy, wOccupancy},
		{a.Coverage, wCoverage},
		{a.Retention, wRetention},
	}
	if in.HasStaticCheck {
		a.HasStaticCheck = true
		a.StaticAgreement = clamp01(in.StaticAgreement)
		if a.StaticAgreement < 1 {
			// Contradicted CC mass is direct evidence of misattributed
			// samples; let it pull the composite down. Agreement of
			// exactly 1 adds nothing — the geometric mean would otherwise
			// shift every clean score and decalibrate the bands.
			parts = append(parts, weighted{a.StaticAgreement, wStatic})
		}
	}
	a.Score = combine(parts)
	return a
}

type weighted struct{ value, weight float64 }

// combine is a weighted geometric mean: any single collapsed component
// drags the composite down hard, which is the behaviour a trust score
// needs (an average would let four healthy signals mask one dead one).
func combine(parts []weighted) float64 {
	var logSum, wSum float64
	for _, p := range parts {
		v := clamp01(p.value)
		if v < 1e-3 {
			v = 1e-3
		}
		logSum += p.weight * math.Log(v)
		wSum += p.weight
	}
	if wSum == 0 {
		return 0
	}
	return math.Exp(logSum / wSum)
}

// minExpectedSamples is the expected-sample floor above which a block with
// zero observed samples counts as contradicted profile mass. The per-block
// time estimate behind the expectation ignores dynamic contention and can
// be off by an order of magnitude either way; 20 expected samples keeps a
// mis-estimated but honest block from ever tripping the check.
const minExpectedSamples = 20.0

// MassConsistency cross-checks the two measured inputs for contradictions.
// A naive distributional overlap between sample mass and profile mass
// cannot be calibrated here: PMU samples land in proportion to *time*, and
// on this workload time is dominated by dynamic contention (the very false
// sharing the tool hunts), so clean collections legitimately diverge from
// any execution-count or static-cost prediction. What clean collections
// never do is *contradict* each other:
//
//   - sample mass on blocks whose profile count is zero or negative — the
//     PMU saw code run that the profile says never ran (misattributed
//     samples, zeroed or negated profile counts);
//   - profile mass expected to draw many samples (per the BlockTimeWeights
//     estimate scaled to the trace size) yet drawing none at all — counts
//     inflated for code the machine never dwelled in.
//
// The returned overlap is (1 - contradictedSampleMass) * (1 -
// contradictedProfileMass): exactly 1 on clean data, falling as either
// file accuses the other. zeroProfile counts the blocks behind the first
// term, for per-block diagnostics.
func MassConsistency(profileBlocks, weights []float64, samples []sampling.Sample) (overlap float64, zeroProfile int) {
	mass := make([]float64, len(profileBlocks))
	var sTotal float64
	for _, s := range samples {
		if s.Block >= 0 && int(s.Block) < len(mass) {
			mass[s.Block]++
			sTotal++
		}
	}
	weigh := func(b int, v float64) float64 {
		if b < len(weights) {
			return v * weights[b]
		}
		return v
	}
	var pTotal float64
	for b, v := range profileBlocks {
		if v > 0 {
			pTotal += weigh(b, v)
		}
	}
	if sTotal == 0 || pTotal == 0 {
		return 0, 0
	}
	var zMass, mMass float64
	for b, v := range profileBlocks {
		if mass[b] > 0 && v <= 0 {
			zeroProfile++
			zMass += mass[b] / sTotal
		}
		if v > 0 && mass[b] == 0 {
			if pm := weigh(b, v) / pTotal; pm*sTotal >= minExpectedSamples {
				mMass += pm
			}
		}
	}
	return (1 - zMass) * (1 - mMass), zeroProfile
}

// Nominal per-instruction cycle costs for BlockTimeWeights. These mirror
// the execution model's cost structure only roughly — memory latency is
// dynamic (hit vs cache-to-cache transfer vs memory) — but the estimate
// only needs to bring execution counts and time-proportional sample mass
// onto a comparable scale, not to predict latency.
const (
	weightMemOp  = 12.0
	weightLockOp = 24.0
	weightCall   = 8.0
	weightBase   = 1.0
)

// BlockTimeWeights estimates each block's per-execution time in cycles
// from its instruction mix, indexed by global block ID.
func BlockTimeWeights(p *ir.Program) []float64 {
	blocks := p.Blocks()
	out := make([]float64, len(blocks))
	for _, b := range blocks {
		w := weightBase
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCompute:
				w += float64(in.Cycles)
			case ir.OpField, ir.OpMem:
				w += weightMemOp
			case ir.OpLock, ir.OpUnlock:
				w += weightLockOp
			case ir.OpCall:
				w += weightCall
			}
		}
		if int(b.Global) < len(out) {
			out[b.Global] = w
		}
	}
	return out
}

// cpuBalance is the normalized entropy of per-CPU sample counts over the
// CPUs that produced at least one sample. Normalizing over *active* CPUs
// (not the machine's CPU count) keeps a clean partial-machine run — a DSL
// program with two threads on a four-way box — from being penalized for
// the CPUs it never used.
func cpuBalance(t *sampling.Trace) float64 {
	if t.NumCPUs <= 1 {
		return 1
	}
	counts := make([]float64, t.NumCPUs)
	var total float64
	for _, s := range t.Samples {
		if s.CPU >= 0 && s.CPU < t.NumCPUs {
			counts[s.CPU]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	active := 0
	for _, c := range counts {
		if c > 0 {
			active++
		}
	}
	if active <= 1 {
		// All mass on one CPU of a multi-CPU trace: no balance at all.
		return 0
	}
	return entropy(counts, total) / math.Log(float64(active))
}

// sliceOccupancy is the normalized entropy of per-slice sample counts
// over the trace's full time span (empty slices within the span count as
// zero-mass bins). Bursty loss empties slices; the entropy then falls
// below the uniform bound.
func sliceOccupancy(t *sampling.Trace, sliceCycles int64) float64 {
	if sliceCycles <= 0 || len(t.Samples) == 0 {
		return 0
	}
	bySlice := make(map[int64]float64)
	minIdx, maxIdx := int64(math.MaxInt64), int64(math.MinInt64)
	var total float64
	for _, s := range t.Samples {
		idx := s.ITC / sliceCycles
		if s.ITC < 0 {
			idx = 0 // mirror sampling.Slices: drift may push the first sample below zero
		}
		bySlice[idx]++
		total++
		if idx < minIdx {
			minIdx = idx
		}
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	bins := maxIdx - minIdx + 1
	if bins <= 1 {
		return 1
	}
	// Deterministic accumulation order: sort the occupied slice indices.
	idxs := make([]int64, 0, len(bySlice))
	for idx := range bySlice {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	counts := make([]float64, 0, len(idxs))
	for _, idx := range idxs {
		counts = append(counts, bySlice[idx])
	}
	return entropy(counts, total) / math.Log(float64(bins))
}

// retention is the surviving fraction of raw samples.
func retention(kept, raw int) float64 {
	if raw <= 0 {
		return 1
	}
	return clamp01(float64(kept) / float64(raw))
}

// entropy computes -Σ (c/total) ln (c/total) over the counts, in the
// order given (callers fix the order for determinism).
func entropy(counts []float64, total float64) float64 {
	var h float64
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := c / total
		h -= p * math.Log(p)
	}
	return h
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Package diag is the analysis pipeline's shared structured-diagnostics
// type. The paper's measurement side (§4.2, §4.3) rests on PMU data that is
// imperfect in practice — ITC drift, sample loss on loaded machines,
// capped sampling frequency — so every consumer of measured input
// (sampling, concurrency, fieldmap, flg, core) records what it noticed and
// what fallback it took instead of failing. A report then shows the
// programmer whether the advisory rests on clean or degraded evidence.
//
// A Log aggregates diagnostics by (source, code, severity): repeated
// occurrences of the same condition bump a count rather than appending a
// line per sample, so a million dropped samples cost one entry.
package diag

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info records a normal-but-noteworthy observation.
	Info Severity = iota
	// Warning marks suspicious input that did not change the analysis
	// outcome (e.g. a handful of duplicate samples, dropped).
	Warning
	// Degraded marks a defined fallback: the analysis completed, but on
	// reduced evidence (e.g. an empty concurrency map forced an
	// affinity-only layout).
	Degraded
	// Error marks input that had to be rejected outright.
	Error
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Degraded:
		return "degraded"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Diagnostic is one aggregated observation.
type Diagnostic struct {
	// Severity grades the observation.
	Severity Severity
	// Source is the pipeline stage that noticed ("sampling", "flg", ...).
	Source string
	// Code is a stable, machine-matchable identifier of the condition
	// ("itc-nonmonotonic", "fmf-coverage", ...).
	Code string
	// Message is the human-readable text of the first occurrence.
	Message string
	// Count is how many times the condition occurred.
	Count int
}

// String renders one diagnostic line.
func (d Diagnostic) String() string {
	if d.Count > 1 {
		return fmt.Sprintf("[%s] %s/%s: %s (x%d)", d.Severity, d.Source, d.Code, d.Message, d.Count)
	}
	return fmt.Sprintf("[%s] %s/%s: %s", d.Severity, d.Source, d.Code, d.Message)
}

type logKey struct {
	sev    Severity
	source string
	code   string
}

// Log accumulates diagnostics. The zero value is NOT usable; use NewLog.
// All methods tolerate a nil receiver (they drop the diagnostic), so deep
// pipeline stages can take an optional *Log without guarding every call.
// A Log is safe for concurrent use: analyses may run on parallel workers,
// and the aggregated (source, code, severity) keying keeps the rendered
// output independent of arrival order within a key.
type Log struct {
	mu      sync.Mutex
	entries []Diagnostic
	index   map[logKey]int
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{index: make(map[logKey]int)}
}

// Add records one occurrence of a condition.
func (l *Log) Add(sev Severity, source, code, format string, args ...interface{}) {
	l.AddN(sev, source, code, 1, format, args...)
}

// AddN records n occurrences of a condition. n <= 0 records nothing.
func (l *Log) AddN(sev Severity, source, code string, n int, format string, args ...interface{}) {
	if l == nil || n <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := logKey{sev: sev, source: source, code: code}
	if i, ok := l.index[k]; ok {
		l.entries[i].Count += n
		return
	}
	l.index[k] = len(l.entries)
	l.entries = append(l.entries, Diagnostic{
		Severity: sev,
		Source:   source,
		Code:     code,
		Message:  fmt.Sprintf(format, args...),
		Count:    n,
	})
}

// Merge folds another log's entries into l.
func (l *Log) Merge(o *Log) {
	if l == nil || o == nil {
		return
	}
	o.mu.Lock()
	entries := append([]Diagnostic(nil), o.entries...)
	o.mu.Unlock()
	for _, d := range entries {
		l.AddN(d.Severity, d.Source, d.Code, d.Count, "%s", d.Message)
	}
}

// Entries returns the aggregated diagnostics, most severe first (stable
// within a severity: insertion order).
func (l *Log) Entries() []Diagnostic {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]Diagnostic(nil), l.entries...)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// Len returns the number of distinct conditions recorded.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Max returns the highest severity recorded (Info for an empty log).
func (l *Log) Max() Severity {
	max := Info
	if l == nil {
		return max
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, d := range l.entries {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// CountAt sums occurrence counts at exactly the given severity.
func (l *Log) CountAt(sev Severity) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, d := range l.entries {
		if d.Severity == sev {
			n += d.Count
		}
	}
	return n
}

// Degraded reports whether any fallback (or worse) was recorded.
func (l *Log) Degraded() bool { return l.Max() >= Degraded }

// String renders the log one diagnostic per line, most severe first.
func (l *Log) String() string {
	if l.Len() == 0 {
		return "(no diagnostics)\n"
	}
	var sb strings.Builder
	for _, d := range l.Entries() {
		sb.WriteString("  ")
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

package diag

import (
	"strings"
	"testing"
)

func TestAggregation(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		l.Add(Warning, "sampling", "dup", "duplicate sample dropped")
	}
	l.AddN(Warning, "sampling", "dup", 10, "duplicate sample dropped")
	l.Add(Degraded, "core", "no-concurrency", "falling back to affinity-only layout")
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2 aggregated entries", l.Len())
	}
	var dup Diagnostic
	for _, d := range l.Entries() {
		if d.Code == "dup" {
			dup = d
		}
	}
	if dup.Count != 15 {
		t.Fatalf("dup count = %d, want 15", dup.Count)
	}
	if !l.Degraded() {
		t.Fatal("log with Degraded entry not reported degraded")
	}
	if l.Max() != Degraded {
		t.Fatalf("Max = %v, want Degraded", l.Max())
	}
	if l.CountAt(Warning) != 15 {
		t.Fatalf("CountAt(Warning) = %d, want 15", l.CountAt(Warning))
	}
}

func TestEntriesOrderedBySeverity(t *testing.T) {
	l := NewLog()
	l.Add(Info, "a", "i", "info")
	l.Add(Error, "b", "e", "error")
	l.Add(Warning, "c", "w", "warn")
	es := l.Entries()
	for i := 1; i < len(es); i++ {
		if es[i].Severity > es[i-1].Severity {
			t.Fatalf("entries not ordered most-severe-first: %v", es)
		}
	}
	if es[0].Code != "e" {
		t.Fatalf("first entry %v, want the error", es[0])
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Add(Error, "x", "y", "must not crash")
	l.AddN(Warning, "x", "y", 3, "must not crash")
	l.Merge(NewLog())
	if l.Len() != 0 || l.Degraded() || l.Max() != Info || l.Entries() != nil {
		t.Fatal("nil log should behave as empty")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewLog(), NewLog()
	a.AddN(Warning, "s", "x", 2, "thing")
	b.AddN(Warning, "s", "x", 3, "thing")
	b.Add(Info, "s", "y", "other")
	a.Merge(b)
	if a.Len() != 2 || a.CountAt(Warning) != 5 {
		t.Fatalf("merge: len %d countWarn %d, want 2/5", a.Len(), a.CountAt(Warning))
	}
}

func TestString(t *testing.T) {
	l := NewLog()
	if !strings.Contains(l.String(), "no diagnostics") {
		t.Fatal("empty log render")
	}
	l.AddN(Degraded, "core", "no-concurrency", 1, "affinity-only fallback")
	s := l.String()
	if !strings.Contains(s, "degraded") || !strings.Contains(s, "core/no-concurrency") {
		t.Fatalf("render missing fields: %q", s)
	}
	l.AddN(Warning, "sampling", "dup", 7, "dropped")
	if !strings.Contains(l.String(), "(x7)") {
		t.Fatalf("render missing count: %q", l.String())
	}
}

func TestSeverityString(t *testing.T) {
	for sev, want := range map[Severity]string{Info: "info", Warning: "warning", Degraded: "degraded", Error: "error", Severity(42): "severity(42)"} {
		if sev.String() != want {
			t.Fatalf("Severity(%d).String() = %q, want %q", int(sev), sev.String(), want)
		}
	}
}

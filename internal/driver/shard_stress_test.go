package driver

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"structlayout/internal/exec"
	"structlayout/internal/irtext"
	"structlayout/internal/machine"
	"structlayout/internal/memo"
	"structlayout/internal/parallel"
	"structlayout/internal/workload"
)

// The sharded/sampled stress test, companion to TestConcurrentCallersMatchSerial:
// many goroutines drive sharded group-parallel execution (unmemoized
// driver.Run, so every call re-runs the engines), sampled measurement,
// sharded collection and the workload suite's sharded+sampled path, racing
// cold and warm cache states — and every result must be byte-identical to a
// serial pass. The exact sharded runs must additionally match the unsharded
// serial run bit-for-bit: the shard count is an allocation detail, never an
// observable one. Run under -race this is the sharded directory's and the
// group scheduler's data-race test.

// shardProgram gives each thread its own arena instance, so threadGroups
// splits the run into four footprint-disjoint groups that the engines
// execute concurrently when shards are on.
const shardProgram = `
program shardstress

struct rec {
    r_lock i64
    r_hot  i64
    r_cnt  i64
    r_pad  arr 5 8 align 8
}

proc touch {
    lock rec.r_lock param 0
    write rec.r_hot param 0
    read rec.r_cnt param 0
    write rec.r_cnt param 0
    unlock rec.r_lock param 0
    compute 15
}

proc worker {
    loop 12 {
        call touch
    }
}

arena rec 4
thread 0 worker params 0 iters 2
thread 1 worker params 1 iters 2
thread 2 worker params 2 iters 2
thread 3 worker params 3 iters 2
`

// encodeResult canonically dumps everything a run observably produces.
func encodeResult(res *exec.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d completed=%d threads=%v\n", res.Cycles, res.Completed, res.ThreadCycles)
	fmt.Fprintf(&b, "coherence=%+v\n", res.Coherence)
	refs := make([]exec.FieldRef, 0, len(res.Fields))
	for ref := range res.Fields {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Struct != refs[j].Struct {
			return refs[i].Struct < refs[j].Struct
		}
		return refs[i].Field < refs[j].Field
	})
	for _, ref := range refs {
		fmt.Fprintf(&b, "%s.%d=%+v\n", ref.Struct, ref.Field, *res.Fields[ref])
	}
	if res.Sampled != nil {
		fmt.Fprintf(&b, "sampled=%+v\n", *res.Sampled)
	}
	return b.String()
}

func shardStressCases(t *testing.T) []stressCase {
	t.Helper()
	topo, err := machine.ByName("way16")
	if err != nil {
		t.Fatal(err)
	}
	file, err := irtext.Parse(shardProgram)
	if err != nil {
		t.Fatal(err)
	}
	var cases []stressCase

	// Unmemoized runs: exact and sampled, unsharded and sharded. Every
	// replay re-executes the engines, so the concurrent rounds race the
	// group-parallel scheduler itself, not just the cache.
	sampled := exec.SimConfig{Mode: exec.SimSampled, WindowOps: 1 << 6, Period: 3}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"run/exact/shards0", Config{Topo: topo, Seed: 3}},
		{"run/exact/shards8", Config{Topo: topo, Seed: 3, Shards: 8}},
		{"run/sampled/shards0", Config{Topo: topo, Seed: 3, Sim: sampled}},
		{"run/sampled/shards8", Config{Topo: topo, Seed: 3, Sim: sampled, Shards: 8}},
	} {
		cfg := tc.cfg
		cases = append(cases, stressCase{
			name: tc.name,
			run: func() (string, error) {
				res, err := Run(file, cfg, nil)
				if err != nil {
					return "", err
				}
				return encodeResult(res), nil
			},
		})
	}

	// Memoized sharded measurement, exact and sampled: replays race the
	// single-flight cold path and then the warm memory tier.
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"measure/shards8", Config{Topo: topo, Seed: 7, Shards: 8}},
		{"measure/sampled8", Config{Topo: topo, Seed: 7, Shards: 8, Sim: sampled}},
	} {
		cfg := tc.cfg
		cases = append(cases, stressCase{
			name: tc.name,
			run: func() (string, error) {
				m, err := Measure(file, cfg, nil, 3)
				if err != nil {
					return "", err
				}
				b, err := json.Marshal(m)
				return string(b), err
			},
		})
	}

	// Sharded collection: the collector pins execution to one group, but
	// the directory itself stays sharded under it.
	ccfg := Config{Topo: topo, Seed: 5, Shards: 8}
	cases = append(cases, stressCase{
		name: "collect/shards8",
		run: func() (string, error) {
			pf, tr, cycles, err := CollectCached(file, ccfg)
			if err != nil {
				return "", err
			}
			var pbuf, tbuf strings.Builder
			if err := pf.WriteJSON(&pbuf); err != nil {
				return "", err
			}
			if err := tr.WriteJSON(&tbuf); err != nil {
				return "", err
			}
			return fmt.Sprintf("%d\n%s\n%s", cycles, pbuf.String(), tbuf.String()), nil
		},
	})

	// The built-in workload with sharding and sampling on at once.
	suite, err := workload.NewSuite(workload.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	suite.Shards = 8
	suite.Sim = sampled
	ls := suite.BaselineLayouts(128)
	cases = append(cases, stressCase{
		name: "workload/sampled8",
		run: func() (string, error) {
			m, err := suite.Measure(topo, ls, 2, 42)
			if err != nil {
				return "", err
			}
			b, err := json.Marshal(m)
			return string(b), err
		},
	})
	return cases
}

func TestShardedConcurrentCallersMatchSerial(t *testing.T) {
	// The container may be single-CPU; group-parallel engines only overlap
	// when the worker limit allows it.
	old := parallel.Limit()
	parallel.SetLimit(4)
	defer parallel.SetLimit(old)

	cases := shardStressCases(t)

	// Serial ground truth on a cold cache.
	memo.Shared().Clear()
	want := make(map[string]string, len(cases))
	for _, c := range cases {
		got, err := c.run()
		if err != nil {
			t.Fatalf("serial %s: %v", c.name, err)
		}
		want[c.name] = got
	}

	// The shard count must be invisible in the results, in both modes.
	if want["run/exact/shards8"] != want["run/exact/shards0"] {
		t.Fatalf("exact sharded run differs from unsharded:\n got: %.200s\nwant: %.200s",
			want["run/exact/shards8"], want["run/exact/shards0"])
	}
	if want["run/sampled/shards8"] != want["run/sampled/shards0"] {
		t.Fatalf("sampled sharded run differs from unsharded:\n got: %.200s\nwant: %.200s",
			want["run/sampled/shards8"], want["run/sampled/shards0"])
	}

	for round, clear := range []bool{true, false} {
		if clear {
			memo.Shared().Clear()
		}
		const workers = 16
		var wg sync.WaitGroup
		errs := make(chan error, workers*len(cases))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := range cases {
					c := cases[(i+w)%len(cases)]
					got, err := c.run()
					if err != nil {
						errs <- fmt.Errorf("round %d worker %d %s: %w", round, w, c.name, err)
						return
					}
					if got != want[c.name] {
						errs <- fmt.Errorf("round %d worker %d %s: result differs from serial\n got: %.120s\nwant: %.120s",
							round, w, c.name, got, want[c.name])
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

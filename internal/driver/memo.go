package driver

import (
	"bytes"
	"encoding/json"
	"sort"

	"structlayout/internal/ir"
	"structlayout/internal/irtext"
	"structlayout/internal/layout"
	"structlayout/internal/memo"
	"structlayout/internal/profile"
	"structlayout/internal/sampling"
)

// Measure results for DSL programs are pure functions of (program, run
// harness, topology, cache geometry, seed, run count, layouts) — Measure
// nils the sampling config and fault spec per run by contract — so they
// memoize through the process-wide memo.Shared() cache exactly like the
// built-in workload's measurements. What unblocked this is ir.Canonical:
// an arbitrary parsed program now has a deterministic, semantically
// complete serialization to hash, where the built-in suite could hash its
// few scalar parameters instead.

// hashFileConfig hashes everything Measure and Collect share: the
// canonical program, the run harness (arenas, threads), the machine, the
// cache geometry, the seed, and the effective layout of every struct. ok
// is false when some input resists canonical hashing (nil topology,
// un-layoutable struct); callers then skip the cache and compute directly.
func hashFileConfig(h *memo.Hasher, f *irtext.File, cfg Config, layouts map[string]*layout.Layout) bool {
	if cfg.Topo == nil || f.Prog == nil {
		return false
	}
	h.Str("prog", ir.Canonical(f.Prog))
	names := make([]string, 0, len(f.Arenas))
	for name := range f.Arenas {
		names = append(names, name)
	}
	sort.Strings(names)
	h.Int("arenas.n", int64(len(names)))
	for _, name := range names {
		h.Str("arena", name)
		h.Int("arena.count", int64(f.Arenas[name]))
	}
	h.Int("threads.n", int64(len(f.Threads)))
	for _, td := range f.Threads {
		h.Int("t.cpu", int64(td.CPU))
		h.Str("t.proc", td.Proc)
		params := make([]int64, len(td.Params))
		for i, p := range td.Params {
			params[i] = int64(p)
		}
		h.Ints("t.params", params)
		h.Int("t.iters", td.Iters)
	}
	h.Topology("topo", cfg.Topo)
	h.CacheConfig("cache", cfg.Cache)
	h.Int("seed", cfg.Seed)
	// Hash the effective layout of every struct, resolving fallbacks the
	// way Run does (declaration order when no layout is supplied). Structs
	// the program never touches hash their defaults too — a superset of
	// what influences the result is still canonical.
	lineSize := int(cfg.Cache.LineSize)
	eff := make(map[string]*layout.Layout, len(f.Prog.Structs))
	for _, st := range f.Prog.Structs {
		lay := layouts[st.Name]
		if lay == nil {
			var err error
			lay, err = layout.Original(st, lineSize)
			if err != nil {
				return false
			}
		}
		eff[st.Name] = lay
	}
	h.Layouts("layouts", eff)
	return true
}

// measureKey keys one Measure call.
func measureKey(f *irtext.File, cfg Config, layouts map[string]*layout.Layout, n int) (memo.Key, bool) {
	h := memo.NewHasher()
	h.Str("kind", "driver.measure")
	if !hashFileConfig(h, f, cfg, layouts) {
		return memo.Key{}, false
	}
	h.Int("runs", int64(n))
	// The simulation mode and its sampling parameters are part of a
	// measurement's identity: a sampled result must never replace (or be
	// replaced by) an exact one. Shards is deliberately NOT hashed —
	// sharding is byte-identical by contract, so sharded and unsharded
	// runs share cache entries.
	h.SimConfig("sim", cfg.Sim)
	// Measure is clean by contract: fault injection applies to collected
	// artifacts, never to throughput runs. Record that in the key.
	h.FaultSpec("inject", nil)
	return h.Sum(), true
}

// measurementValue is the cached JSON form of a Measurement.
type measurementValue struct {
	Mean float64   `json:"mean"`
	Runs []float64 `json:"runs"`
}

// measureMemo wraps a measurement computation in the shared cache,
// degrading to direct computation when the key cannot be formed or a
// cached entry is corrupt.
func measureMemo(f *irtext.File, cfg Config, layouts map[string]*layout.Layout, n int,
	compute func() (Measurement, error)) (Measurement, error) {
	k, ok := measureKey(f, cfg, layouts, n)
	if !ok {
		return compute()
	}
	raw, err := memo.Shared().Do(k, func() ([]byte, error) {
		m, err := compute()
		if err != nil {
			return nil, err
		}
		return json.Marshal(measurementValue{Mean: m.Mean, Runs: m.Runs})
	})
	if err != nil {
		return Measurement{}, err
	}
	var v measurementValue
	if err := json.Unmarshal(raw, &v); err != nil {
		return compute()
	}
	return Measurement{Mean: v.Mean, Runs: v.Runs}, nil
}

// collectKey keys one Collect call: the shared file config plus the
// effective sampling parameters and the fault spec (Collect hands back
// already-faulted artifacts, so the spec changes the cached value).
func collectKey(f *irtext.File, cfg Config) (memo.Key, bool) {
	cfg.fillDefaults()
	h := memo.NewHasher()
	h.Str("kind", "driver.collect")
	if !hashFileConfig(h, f, cfg, nil) {
		return memo.Key{}, false
	}
	sc := cfg.Sampling
	if sc == nil {
		// Collect's own default; keep in sync with Collect.
		sc = &sampling.Config{IntervalCycles: 2500, DriftMaxCycles: 8, LossProb: 0.02, Seed: cfg.Seed + 17}
	}
	h.Int("s.interval", sc.IntervalCycles)
	h.Int("s.drift", sc.DriftMaxCycles)
	h.F64("s.loss", sc.LossProb)
	h.Int("s.seed", sc.Seed)
	h.FaultSpec("inject", cfg.Inject)
	return h.Sum(), true
}

// collectValue is the cached form of one collection: the artifact streams
// in their canonical file encodings (decode reuses the on-disk formats'
// validation) plus the run's cycle count, which sizes the concurrency
// slices downstream.
type collectValue struct {
	Profile json.RawMessage `json:"profile"`
	Trace   json.RawMessage `json:"trace"`
	Cycles  int64           `json:"cycles"`
}

// CollectCacheReady reports whether CollectCached for these inputs would
// replay from the shared cache instead of simulating. Advisory only (a
// racing GC can evict between the check and the call); layoutd's
// degradation ladder uses it to tell "nearly free replay" from "real
// simulation" when budgeting a request's remaining deadline.
func CollectCacheReady(f *irtext.File, cfg Config) bool {
	k, ok := collectKey(f, cfg)
	return ok && memo.Shared().Contains(k)
}

// CollectCached is Collect through the process-wide memo cache: a pure
// function of (program, harness, topology, sampling, seed, fault spec),
// so repeated collections — a fleet of clients submitting the same
// program, a warm disk tier across restarts — replay instead of
// re-simulating. Hits decode fresh values; callers may mutate the
// returned artifacts freely. Returns the collected profile, trace, and
// the run's cycle count.
func CollectCached(f *irtext.File, cfg Config) (*profile.Profile, *sampling.Trace, int64, error) {
	k, ok := collectKey(f, cfg)
	if !ok {
		res, err := Collect(f, cfg, nil)
		if err != nil {
			return nil, nil, 0, err
		}
		return res.Profile, res.Trace, res.Cycles, nil
	}
	raw, err := memo.Shared().Do(k, func() ([]byte, error) {
		res, err := Collect(f, cfg, nil)
		if err != nil {
			return nil, err
		}
		var pbuf, tbuf bytes.Buffer
		if err := res.Profile.WriteJSON(&pbuf); err != nil {
			return nil, err
		}
		if err := res.Trace.WriteJSON(&tbuf); err != nil {
			return nil, err
		}
		return json.Marshal(collectValue{Profile: pbuf.Bytes(), Trace: tbuf.Bytes(), Cycles: res.Cycles})
	})
	if err != nil {
		return nil, nil, 0, err
	}
	var v collectValue
	if err := json.Unmarshal(raw, &v); err == nil {
		pf, perr := profile.ReadJSON(bytes.NewReader(v.Profile), f.Prog)
		tr, terr := sampling.ReadJSON(bytes.NewReader(v.Trace))
		if perr == nil && terr == nil {
			return pf, tr, v.Cycles, nil
		}
	}
	// Corrupt or shape-mismatched entry: recompute fresh, bypassing the
	// poisoned value (degrade-don't-die).
	res, rerr := Collect(f, cfg, nil)
	if rerr != nil {
		return nil, nil, 0, rerr
	}
	return res.Profile, res.Trace, res.Cycles, nil
}

package driver

import (
	"encoding/json"
	"sort"

	"structlayout/internal/ir"
	"structlayout/internal/irtext"
	"structlayout/internal/layout"
	"structlayout/internal/memo"
)

// Measure results for DSL programs are pure functions of (program, run
// harness, topology, cache geometry, seed, run count, layouts) — Measure
// nils the sampling config and fault spec per run by contract — so they
// memoize through the process-wide memo.Shared() cache exactly like the
// built-in workload's measurements. What unblocked this is ir.Canonical:
// an arbitrary parsed program now has a deterministic, semantically
// complete serialization to hash, where the built-in suite could hash its
// few scalar parameters instead.

// measureKey keys one Measure call. ok is false when some input resists
// canonical hashing (nil topology, un-layoutable struct); callers then
// skip the cache and compute directly.
func measureKey(f *irtext.File, cfg Config, layouts map[string]*layout.Layout, n int) (memo.Key, bool) {
	if cfg.Topo == nil || f.Prog == nil {
		return memo.Key{}, false
	}
	h := memo.NewHasher()
	h.Str("kind", "driver.measure")
	h.Str("prog", ir.Canonical(f.Prog))
	names := make([]string, 0, len(f.Arenas))
	for name := range f.Arenas {
		names = append(names, name)
	}
	sort.Strings(names)
	h.Int("arenas.n", int64(len(names)))
	for _, name := range names {
		h.Str("arena", name)
		h.Int("arena.count", int64(f.Arenas[name]))
	}
	h.Int("threads.n", int64(len(f.Threads)))
	for _, td := range f.Threads {
		h.Int("t.cpu", int64(td.CPU))
		h.Str("t.proc", td.Proc)
		params := make([]int64, len(td.Params))
		for i, p := range td.Params {
			params[i] = int64(p)
		}
		h.Ints("t.params", params)
		h.Int("t.iters", td.Iters)
	}
	h.Topology("topo", cfg.Topo)
	h.CacheConfig("cache", cfg.Cache)
	h.Int("seed", cfg.Seed)
	h.Int("runs", int64(n))
	// Hash the effective layout of every struct, resolving fallbacks the
	// way Run does (declaration order when no layout is supplied). Structs
	// the program never touches hash their defaults too — a superset of
	// what influences the result is still canonical.
	lineSize := int(cfg.Cache.LineSize)
	eff := make(map[string]*layout.Layout, len(f.Prog.Structs))
	for _, st := range f.Prog.Structs {
		lay := layouts[st.Name]
		if lay == nil {
			var err error
			lay, err = layout.Original(st, lineSize)
			if err != nil {
				return memo.Key{}, false
			}
		}
		eff[st.Name] = lay
	}
	h.Layouts("layouts", eff)
	// Measure is clean by contract: fault injection applies to collected
	// artifacts, never to throughput runs. Record that in the key.
	h.FaultSpec("inject", nil)
	return h.Sum(), true
}

// measurementValue is the cached JSON form of a Measurement.
type measurementValue struct {
	Mean float64   `json:"mean"`
	Runs []float64 `json:"runs"`
}

// measureMemo wraps a measurement computation in the shared cache,
// degrading to direct computation when the key cannot be formed or a
// cached entry is corrupt.
func measureMemo(f *irtext.File, cfg Config, layouts map[string]*layout.Layout, n int,
	compute func() (Measurement, error)) (Measurement, error) {
	k, ok := measureKey(f, cfg, layouts, n)
	if !ok {
		return compute()
	}
	raw, err := memo.Shared().Do(k, func() ([]byte, error) {
		m, err := compute()
		if err != nil {
			return nil, err
		}
		return json.Marshal(measurementValue{Mean: m.Mean, Runs: m.Runs})
	})
	if err != nil {
		return Measurement{}, err
	}
	var v measurementValue
	if err := json.Unmarshal(raw, &v); err != nil {
		return compute()
	}
	return Measurement{Mean: v.Mean, Runs: v.Runs}, nil
}

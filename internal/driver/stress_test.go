package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"structlayout/internal/faults"
	"structlayout/internal/irtext"
	"structlayout/internal/machine"
	"structlayout/internal/memo"
	"structlayout/internal/workload"
)

// The concurrent-callers stress test: many goroutines drive driver.Measure,
// driver.CollectCached, and workload.Measure over a mixed set of
// configurations — some fault-injected, some clean, racing cold (single
// flight coalescing) and warm (memory-tier hits) cache states — and every
// result must be byte-identical to the one a serial pass computed. Run
// under -race this is also the memoization layer's data-race test.

const stressProgram = `
program stress%d

struct stats {
    s_lock  i64
    s_reqs  i64
    s_errs  i64
    s_local arr 4 8 align 8
}

proc bump {
    lock stats.s_lock param 0
    write stats.s_reqs shared 0
    write stats.s_errs shared 0
    unlock stats.s_lock param 0
    compute 20
}

proc worker {
    loop 8 {
        call bump
    }
}

arena stats 8
thread 0 worker params 0 iters 2
thread 1 worker params 1 iters 2
`

// stressCase is one configuration a worker can replay.
type stressCase struct {
	name string
	run  func() (string, error) // returns a canonical encoding of the result
}

func stressCases(t *testing.T) []stressCase {
	t.Helper()
	topo, err := machine.ByName("way16")
	if err != nil {
		t.Fatal(err)
	}
	var cases []stressCase

	// driver.Measure over two programs and two seeds.
	for p := 0; p < 2; p++ {
		file, err := irtext.Parse(fmt.Sprintf(stressProgram, p))
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 2; seed++ {
			cfg := Config{Topo: topo, Seed: seed}
			cases = append(cases, stressCase{
				name: fmt.Sprintf("measure/p%d/s%d", p, seed),
				run: func() (string, error) {
					m, err := Measure(file, cfg, nil, 3)
					if err != nil {
						return "", err
					}
					b, err := json.Marshal(m)
					return string(b), err
				},
			})
		}
	}

	// driver.CollectCached with and without fault injection: the faulted
	// artifacts are part of the cached value, so replays must reproduce
	// them bit-for-bit too.
	for _, spec := range []string{"", "loss=0.4,seed=9", "drift=0.5,seed=3"} {
		fs, err := faults.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		file, err := irtext.Parse(fmt.Sprintf(stressProgram, 0))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Topo: topo, Seed: 5, Inject: fs}
		label := spec
		if label == "" {
			label = "clean"
		}
		cases = append(cases, stressCase{
			name: "collect/" + label,
			run: func() (string, error) {
				pf, tr, cycles, err := CollectCached(file, cfg)
				if err != nil {
					return "", err
				}
				var pbuf, tbuf bytes.Buffer
				if err := pf.WriteJSON(&pbuf); err != nil {
					return "", err
				}
				if err := tr.WriteJSON(&tbuf); err != nil {
					return "", err
				}
				return fmt.Sprintf("%d\n%s\n%s", cycles, pbuf.String(), tbuf.String()), nil
			},
		})
	}

	// workload.Measure: the built-in suite's memoized path, sharing the
	// same process-wide cache and worker pool as the driver calls above.
	suite, err := workload.NewSuite(workload.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ls := suite.BaselineLayouts(128)
	for seed := int64(100); seed <= 101; seed++ {
		cases = append(cases, stressCase{
			name: fmt.Sprintf("workload/s%d", seed),
			run: func() (string, error) {
				m, err := suite.Measure(topo, ls, 3, seed)
				if err != nil {
					return "", err
				}
				b, err := json.Marshal(m)
				return string(b), err
			},
		})
	}
	return cases
}

func TestConcurrentCallersMatchSerial(t *testing.T) {
	cases := stressCases(t)

	// Serial ground truth on a cold cache.
	memo.Shared().Clear()
	want := make(map[string]string, len(cases))
	for _, c := range cases {
		got, err := c.run()
		if err != nil {
			t.Fatalf("serial %s: %v", c.name, err)
		}
		want[c.name] = got
	}

	// Concurrent replay, twice over: round one races the cold cache (the
	// interesting window for single-flight and torn-write bugs), round two
	// hits the warm memory tier.
	for round, clear := range []bool{true, false} {
		if clear {
			memo.Shared().Clear()
		}
		const workers = 16
		var wg sync.WaitGroup
		errs := make(chan error, workers*len(cases))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each worker walks the cases at a different phase so distinct
				// keys race each other too, not just identical ones.
				for i := range cases {
					c := cases[(i+w)%len(cases)]
					got, err := c.run()
					if err != nil {
						errs <- fmt.Errorf("round %d worker %d %s: %w", round, w, c.name, err)
						return
					}
					if got != want[c.name] {
						errs <- fmt.Errorf("round %d worker %d %s: result differs from serial\n got: %.120s\nwant: %.120s",
							round, w, c.name, got, want[c.name])
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

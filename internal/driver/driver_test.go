package driver

import (
	"os"
	"path/filepath"
	"testing"

	"structlayout/internal/core"
	"structlayout/internal/faults"
	"structlayout/internal/ir"
	"structlayout/internal/irtext"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/memo"
	"structlayout/internal/parallel"
	"structlayout/internal/sampling"
)

func mustOriginal(t testing.TB, st *ir.StructType, lineSize int) *layout.Layout {
	t.Helper()
	l, err := layout.Original(st, lineSize)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

const demoProgram = `
program demo

struct conn {
    c_state  i64
    c_events i64
    c_rx     i64
    c_cold0  i64
    c_cold1  i64
}

struct side { s_a i64 }

proc poller {
    loop 200 {
        read conn.c_state loopvar
        read conn.c_events loopvar
        compute 20
    }
    read side.s_a shared 0
}

proc worker {
    loop 200 {
        write conn.c_rx shared 0
        compute 50
    }
}

proc main0 { call poller  call worker }

arena conn 256
thread 0 main0 iters 3
thread 1 main0 iters 3
thread 2 main0 iters 3
thread 3 main0 iters 3
`

func parseDemo(t testing.TB) *irtext.File {
	t.Helper()
	f, err := irtext.Parse(demoProgram)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunParsedProgram(t *testing.T) {
	f := parseDemo(t)
	cfg := Config{Topo: machine.Bus4(), Seed: 3}
	origs, err := OriginalLayouts(f, cfg.LineSize())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(f, cfg, origs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 12 {
		t.Fatalf("completed = %d, want 12", res.Completed)
	}
	if res.Coherence.Accesses == 0 {
		t.Fatal("no memory traffic")
	}
}

func TestUndeclaredStructGetsDefaultArena(t *testing.T) {
	// struct side has no arena declaration; Run must still work.
	f := parseDemo(t)
	cfg := Config{Topo: machine.Bus4(), Seed: 1}
	if _, err := Run(f, cfg, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThreadsBeyondMachineSkipped(t *testing.T) {
	src := `
program p
proc f { compute 10 }
thread 0 f iters 1
thread 500 f iters 1
`
	f, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(f, Config{Topo: machine.Bus4()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d; the out-of-range thread should be skipped", res.Completed)
	}
}

func TestCollectThenTool(t *testing.T) {
	// Full DSL-to-advisory path: parse, collect, analyze, suggest.
	f := parseDemo(t)
	cfg := Config{Topo: machine.Bus4(), Seed: 9}
	res, err := Collect(f, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Samples) == 0 {
		t.Fatal("collection produced no samples")
	}
	analysis, err := core.NewAnalysis(f.Prog, res.Profile, res.Trace, core.Options{
		LineSize:    cfg.LineSize(),
		SliceCycles: 25000,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := f.Prog.Struct("conn")
	sugg, err := analysis.Suggest("conn", mustOriginal(t, st, cfg.LineSize()))
	if err != nil {
		t.Fatal(err)
	}
	// The pollers' walk pair clusters; the writer's field separates.
	if !sugg.Auto.SameLine(st.FieldIndex("c_state"), st.FieldIndex("c_events")) {
		t.Fatalf("walk pair split:\n%s", sugg.Auto.Dump())
	}
	if sugg.Auto.SameLine(st.FieldIndex("c_rx"), st.FieldIndex("c_state")) {
		t.Fatalf("written field not separated:\n%s", sugg.Auto.Dump())
	}
}

func TestValidateThreads(t *testing.T) {
	f := parseDemo(t)
	if err := ValidateThreads(f, machine.Bus4()); err != nil {
		t.Fatal(err)
	}
	dup, err := irtext.Parse(`
program p
proc f { compute 1 }
thread 0 f iters 1
thread 0 f iters 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateThreads(dup, machine.Bus4()); err == nil {
		t.Fatal("duplicate cpu accepted")
	}
	far, err := irtext.Parse(`
program p
proc f { compute 1 }
thread 100 f iters 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateThreads(far, machine.Bus4()); err == nil {
		t.Fatal("unrunnable thread set accepted")
	}
}

func TestRunErrors(t *testing.T) {
	f := parseDemo(t)
	if _, err := Run(f, Config{}, nil); err == nil {
		t.Fatal("nil topology accepted")
	}
	noThreads, err := irtext.Parse(`program p
proc f { compute 1 }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(noThreads, Config{Topo: machine.Bus4()}, nil); err == nil {
		t.Fatal("threadless program accepted")
	}
}

// TestMemcachedProgram runs the shipped memcached-like DSL program through
// the full pipeline and checks the tool's decisions: the hash-chain walk
// pair stays together, and both the request counter (written by every
// worker) and the LRU clock (written concurrently with the walk) leave the
// walk line.
func TestMemcachedProgram(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "memcached.slp"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := irtext.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Topo: machine.Bus4(), Seed: 5}
	res, err := Collect(f, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := core.NewAnalysis(f.Prog, res.Profile, res.Trace, core.Options{
		LineSize:    cfg.LineSize(),
		SliceCycles: res.Cycles/64 + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := f.Prog.Struct("item")
	sugg, err := analysis.Suggest("item", mustOriginal(t, st, cfg.LineSize()))
	if err != nil {
		t.Fatal(err)
	}
	lay := sugg.Auto
	hash, next := st.FieldIndex("it_key_hash"), st.FieldIndex("it_next")
	hits, lru := st.FieldIndex("it_hits"), st.FieldIndex("it_lru_clock")
	if !lay.SameLine(hash, next) {
		t.Fatalf("walk pair split:\n%s", lay.Dump())
	}
	if lay.SameLine(hits, hash) || lay.SameLine(hits, next) {
		t.Fatalf("stats counter left in the walk line:\n%s", lay.Dump())
	}
	if lay.SameLine(lru, hash) || lay.SameLine(lru, next) {
		t.Fatalf("LRU clock left in the walk line:\n%s", lay.Dump())
	}
	// The layout change pays off end to end on this machine.
	before, err := Run(f, Config{Topo: cfg.Topo, Seed: 11}, nil)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Run(f, Config{Topo: cfg.Topo, Seed: 11}, map[string]*layout.Layout{"item": lay})
	if err != nil {
		t.Fatal(err)
	}
	if after.Cycles >= before.Cycles {
		t.Fatalf("suggested layout did not help: before=%d after=%d", before.Cycles, after.Cycles)
	}
}

// TestCollectInject checks that a fault spec on the config perturbs the
// collected artifacts, and that the identity spec leaves them untouched.
func TestCollectInject(t *testing.T) {
	f := parseDemo(t)
	cfg := Config{Topo: machine.Bus4(), Seed: 5}
	clean, err := Collect(f, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := faults.ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = zero
	same, err := Collect(f, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Trace.Samples) != len(clean.Trace.Samples) {
		t.Fatalf("identity spec changed the trace: %d vs %d samples",
			len(same.Trace.Samples), len(clean.Trace.Samples))
	}
	lossy, err := faults.ParseSpec("loss=0.8,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = lossy
	faulted, err := Collect(f, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulted.Trace.Samples) >= len(clean.Trace.Samples) {
		t.Fatalf("loss=0.8 did not shrink the trace: %d vs %d samples",
			len(faulted.Trace.Samples), len(clean.Trace.Samples))
	}
}

// TestRunInject checks that the fault spec applies on the collection
// boundary inside Run itself, so every driver path honors -inject: a
// direct sampled Run comes back faulted, while the measurement loop stays
// clean (throughput is simulated, not collected, so a spec on the config
// must not change what Measure reports).
func TestRunInject(t *testing.T) {
	f := parseDemo(t)
	smp := &sampling.Config{IntervalCycles: 2500, DriftMaxCycles: 8, LossProb: 0.02, Seed: 22}
	cfg := Config{Topo: machine.Bus4(), Seed: 5, Sampling: smp}
	clean, err := Run(f, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := faults.ParseSpec("loss=0.8,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inject = lossy
	faulted, err := Run(f, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulted.Trace.Samples) >= len(clean.Trace.Samples) {
		t.Fatalf("direct Run ignored the fault spec: %d vs %d samples",
			len(faulted.Trace.Samples), len(clean.Trace.Samples))
	}

	mcfg := Config{Topo: machine.Bus4(), Seed: 3}
	base, err := Measure(f, mcfg, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	mcfg.Inject = lossy
	under, err := Measure(f, mcfg, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if base.Mean != under.Mean {
		t.Fatalf("fault spec leaked into the measurement loop: %v vs %v", base.Mean, under.Mean)
	}
}

// TestMeasureDeterministicAcrossWorkers runs the same measurement serially
// and with a worker pool: identical per-run throughputs are the contract
// the experiment tables rely on.
func TestMeasureDeterministicAcrossWorkers(t *testing.T) {
	f := parseDemo(t)
	cfg := Config{Topo: machine.Bus4(), Seed: 3}
	old := parallel.Limit()
	defer parallel.SetLimit(old)

	parallel.SetLimit(1)
	serial, err := Measure(f, cfg, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetLimit(4)
	par, err := Measure(f, cfg, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Runs) != len(par.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(serial.Runs), len(par.Runs))
	}
	for i := range serial.Runs {
		if serial.Runs[i] != par.Runs[i] {
			t.Fatalf("run %d differs: serial %v parallel %v", i, serial.Runs[i], par.Runs[i])
		}
	}
	if serial.Mean != par.Mean {
		t.Fatalf("means differ: %v vs %v", serial.Mean, par.Mean)
	}
}

// TestEvaluateMultiStruct exercises the multi-struct measurement loop: each
// declared struct's variant is applied alone and rows come back in sorted
// struct order.
func TestEvaluateMultiStruct(t *testing.T) {
	f := parseDemo(t)
	cfg := Config{Topo: machine.Bus4(), Seed: 3}
	base, err := OriginalLayouts(f, cfg.LineSize())
	if err != nil {
		t.Fatal(err)
	}
	// The variant reverses conn's declaration order.
	st := f.Prog.Struct("conn")
	perm := make([]int, len(st.Fields))
	for i := range perm {
		perm[i] = len(perm) - 1 - i
	}
	rev, err := layout.FromOrder(st, "reversed", perm, cfg.LineSize())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(f, cfg, base, map[string]*layout.Layout{"conn": rev}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Baseline.Mean <= 0 {
		t.Fatalf("non-positive baseline: %v", ev.Baseline.Mean)
	}
	if len(ev.Structs) != 1 || ev.Structs[0].Struct != "conn" {
		t.Fatalf("unexpected rows: %+v", ev.Structs)
	}
	if ev.Structs[0].Mean <= 0 {
		t.Fatalf("non-positive variant mean: %+v", ev.Structs[0])
	}
}

// TestMeasureMemoized: a repeated Measure call with an identical
// configuration is served from the shared cache (no recomputation), and a
// different layout or seed misses.
func TestMeasureMemoized(t *testing.T) {
	f := parseDemo(t)
	cfg := Config{Topo: machine.Bus4(), Seed: 41}
	memo.Shared().Clear()
	before := memo.Shared().Stats()
	m1, err := Measure(f, cfg, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Measure(f, cfg, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := memo.Shared().Stats().Sub(before)
	if d.Hits() == 0 {
		t.Fatalf("second identical Measure did not hit the cache: %+v", d)
	}
	if m1.Mean != m2.Mean || len(m1.Runs) != len(m2.Runs) {
		t.Fatalf("cached measurement differs: %v vs %v", m1, m2)
	}
	// A different seed must not be served from the same entry.
	cfg2 := cfg
	cfg2.Seed = 42
	m3, err := Measure(f, cfg2, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Mean == m1.Mean {
		t.Log("different seed produced an equal mean (possible but unlikely); key separation is asserted below")
	}
	kcfg, kcfg2 := cfg, cfg2
	kcfg.fillDefaults()
	kcfg2.fillDefaults()
	k1, ok1 := measureKey(f, kcfg, nil, 3)
	k2, ok2 := measureKey(f, kcfg2, nil, 3)
	if !ok1 || !ok2 || k1 == k2 {
		t.Fatal("seed change did not change the measurement key")
	}
	// A layout change must change the key too.
	st := f.Prog.Struct("conn")
	alt, err := layout.PackClusters(st, "alt", [][]int{{4, 3, 2, 1, 0}}, 128, layout.PackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k3, ok3 := measureKey(f, kcfg, map[string]*layout.Layout{"conn": alt}, 3)
	if !ok3 || k3 == k1 {
		t.Fatal("layout change did not change the measurement key")
	}
	// Unkeyable configurations degrade to direct computation.
	if _, ok := measureKey(f, Config{}, nil, 3); ok {
		t.Fatal("nil topology should not produce a key")
	}
}

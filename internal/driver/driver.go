// Package driver runs programs parsed from the irtext DSL: it stands in
// for the build-and-run harness around the paper's tool when the input is
// a user-supplied program rather than the built-in SDET workload. Given a
// parsed file (program + arena and thread declarations), it performs the
// collection phase (profiled, PMU-sampled run) and evaluation runs under
// arbitrary layouts.
package driver

import (
	"fmt"

	"structlayout/internal/coherence"
	"structlayout/internal/exec"
	"structlayout/internal/irtext"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/sampling"
)

// Config parameterizes runs of a parsed file.
type Config struct {
	// Topo is the machine to run on.
	Topo *machine.Topology
	// Cache is the per-CPU cache geometry (default: the Itanium 6 MB).
	Cache coherence.Config
	// Seed drives branches, random memory patterns and sampling.
	Seed int64
	// Sampling enables PMU collection when non-nil.
	Sampling *sampling.Config
}

func (c *Config) fillDefaults() {
	if c.Cache.LineSize == 0 {
		c.Cache = coherence.DefaultItanium()
	}
}

// LineSize returns the coherence-line size runs will use.
func (c Config) LineSize() int {
	if c.Cache.LineSize == 0 {
		return int(coherence.DefaultItanium().LineSize)
	}
	return int(c.Cache.LineSize)
}

// OriginalLayouts materializes declaration-order layouts for every declared
// arena.
func OriginalLayouts(f *irtext.File, lineSize int) (map[string]*layout.Layout, error) {
	out := make(map[string]*layout.Layout, len(f.Arenas))
	for name := range f.Arenas {
		l, err := layout.Original(f.Prog.Struct(name), lineSize)
		if err != nil {
			return nil, err
		}
		out[name] = l
	}
	return out, nil
}

// Run executes the file's declared threads under the given layouts (keyed
// by struct name; missing structs get their declaration-order layout).
func Run(f *irtext.File, cfg Config, layouts map[string]*layout.Layout) (*exec.Result, error) {
	cfg.fillDefaults()
	if cfg.Topo == nil {
		return nil, fmt.Errorf("driver: nil topology")
	}
	if len(f.Threads) == 0 {
		return nil, fmt.Errorf("driver: program %s declares no threads", f.Prog.Name)
	}
	r, err := exec.NewRunner(f.Prog, exec.Config{
		Topo:     cfg.Topo,
		Cache:    cfg.Cache,
		Seed:     cfg.Seed,
		Sampling: cfg.Sampling,
	})
	if err != nil {
		return nil, err
	}
	lineSize := int(cfg.Cache.LineSize)
	// Every struct accessed needs an arena; declared arenas use their
	// count, accessed-but-undeclared structs default to one instance.
	declared := make(map[string]bool, len(f.Arenas))
	for name, count := range f.Arenas {
		lay := layouts[name]
		if lay == nil {
			lay, err = layout.Original(f.Prog.Struct(name), lineSize)
			if err != nil {
				return nil, err
			}
		}
		if err := r.DefineArena(lay, count); err != nil {
			return nil, err
		}
		declared[name] = true
	}
	for _, b := range f.Prog.Blocks() {
		for _, in := range b.FieldInstrs() {
			if declared[in.Struct.Name] {
				continue
			}
			lay := layouts[in.Struct.Name]
			if lay == nil {
				lay, err = layout.Original(in.Struct, lineSize)
				if err != nil {
					return nil, err
				}
			}
			if err := r.DefineArena(lay, 1); err != nil {
				return nil, err
			}
			declared[in.Struct.Name] = true
		}
	}
	for _, td := range f.Threads {
		if td.CPU >= cfg.Topo.NumCPUs() {
			// Skip threads beyond this machine's CPU count, so one file
			// can target several machine sizes.
			continue
		}
		if err := r.AddThread(td.CPU, td.Proc, td.Params, td.Iters); err != nil {
			return nil, err
		}
	}
	return r.Run()
}

// Collect performs the tool's data-collection phase for a parsed file:
// one sampled run under declaration-order (or provided) layouts.
func Collect(f *irtext.File, cfg Config, layouts map[string]*layout.Layout) (*exec.Result, error) {
	cfg.fillDefaults()
	if cfg.Sampling == nil {
		cfg.Sampling = &sampling.Config{
			IntervalCycles: 2500,
			DriftMaxCycles: 8,
			LossProb:       0.02,
			Seed:           cfg.Seed + 17,
		}
	}
	return Run(f, cfg, layouts)
}

// ValidateThreads checks the declarations against a machine: duplicate
// CPUs and out-of-range CPUs that would silently never run.
func ValidateThreads(f *irtext.File, topo *machine.Topology) error {
	seen := make(map[int]bool)
	runnable := 0
	for _, td := range f.Threads {
		if td.CPU < 0 {
			return fmt.Errorf("driver: thread on negative cpu %d", td.CPU)
		}
		if seen[td.CPU] {
			return fmt.Errorf("driver: duplicate thread on cpu %d", td.CPU)
		}
		seen[td.CPU] = true
		if td.CPU < topo.NumCPUs() {
			runnable++
		}
	}
	if runnable == 0 {
		return fmt.Errorf("driver: no declared thread fits on %s (%d CPUs)", topo.Name, topo.NumCPUs())
	}
	return nil
}

// Package driver runs programs parsed from the irtext DSL: it stands in
// for the build-and-run harness around the paper's tool when the input is
// a user-supplied program rather than the built-in SDET workload. Given a
// parsed file (program + arena and thread declarations), it performs the
// collection phase (profiled, PMU-sampled run) and evaluation runs under
// arbitrary layouts.
package driver

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"structlayout/internal/coherence"
	"structlayout/internal/exec"
	"structlayout/internal/faults"
	"structlayout/internal/irtext"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/parallel"
	"structlayout/internal/quality"
	"structlayout/internal/sampling"
	"structlayout/internal/stats"
	"structlayout/internal/workload"
)

// Config parameterizes runs of a parsed file.
type Config struct {
	// Topo is the machine to run on.
	Topo *machine.Topology
	// Cache is the per-CPU cache geometry (default: the Itanium 6 MB).
	Cache coherence.Config
	// Seed drives branches, random memory patterns and sampling.
	Seed int64
	// Sampling enables PMU collection when non-nil.
	Sampling *sampling.Config
	// Sim selects exact or interval-sampled simulation for measurement
	// runs. Collection runs are always exact — the PMU trace must observe
	// every access — so Collect zeroes this.
	Sim exec.SimConfig
	// Shards is the coherence-directory shard count (0 or 1 = unsharded).
	// An allocation detail: results are byte-identical at any count.
	Shards int
	// Inject, when non-nil, applies the measurement-fault spec to every
	// collection this config produces (profile and trace), so -inject is
	// honored on the DSL/driver path exactly as on the built-in workload.
	Inject *faults.Spec
}

func (c *Config) fillDefaults() {
	if c.Cache.LineSize == 0 {
		c.Cache = coherence.DefaultItanium()
	}
}

// LineSize returns the coherence-line size runs will use.
func (c Config) LineSize() int {
	if c.Cache.LineSize == 0 {
		return int(coherence.DefaultItanium().LineSize)
	}
	return int(c.Cache.LineSize)
}

// OriginalLayouts materializes declaration-order layouts for every declared
// arena.
func OriginalLayouts(f *irtext.File, lineSize int) (map[string]*layout.Layout, error) {
	out := make(map[string]*layout.Layout, len(f.Arenas))
	for name := range f.Arenas {
		l, err := layout.Original(f.Prog.Struct(name), lineSize)
		if err != nil {
			return nil, err
		}
		out[name] = l
	}
	return out, nil
}

// Run executes the file's declared threads under the given layouts (keyed
// by struct name; missing structs get their declaration-order layout).
func Run(f *irtext.File, cfg Config, layouts map[string]*layout.Layout) (*exec.Result, error) {
	cfg.fillDefaults()
	if cfg.Topo == nil {
		return nil, fmt.Errorf("driver: nil topology")
	}
	if len(f.Threads) == 0 {
		return nil, fmt.Errorf("driver: program %s declares no threads", f.Prog.Name)
	}
	cache := cfg.Cache
	cache.Shards = cfg.Shards
	sim := cfg.Sim
	if cfg.Sampling != nil {
		// A collected run is always exact: the PMU trace must observe
		// every access, and sampled simulation cannot drive a collector.
		sim = exec.SimConfig{}
	}
	r, err := exec.NewRunner(f.Prog, exec.Config{
		Topo:     cfg.Topo,
		Cache:    cache,
		Seed:     cfg.Seed,
		Sampling: cfg.Sampling,
		Sim:      sim,
	})
	if err != nil {
		return nil, err
	}
	lineSize := int(cfg.Cache.LineSize)
	// Every struct accessed needs an arena; declared arenas use their
	// count, accessed-but-undeclared structs default to one instance.
	declared := make(map[string]bool, len(f.Arenas))
	for name, count := range f.Arenas {
		lay := layouts[name]
		if lay == nil {
			lay, err = layout.Original(f.Prog.Struct(name), lineSize)
			if err != nil {
				return nil, err
			}
		}
		if err := r.DefineArena(lay, count); err != nil {
			return nil, err
		}
		declared[name] = true
	}
	for _, b := range f.Prog.Blocks() {
		for _, in := range b.FieldInstrs() {
			if declared[in.Struct.Name] {
				continue
			}
			lay := layouts[in.Struct.Name]
			if lay == nil {
				lay, err = layout.Original(in.Struct, lineSize)
				if err != nil {
					return nil, err
				}
			}
			if err := r.DefineArena(lay, 1); err != nil {
				return nil, err
			}
			declared[in.Struct.Name] = true
		}
	}
	for _, td := range f.Threads {
		if td.CPU >= cfg.Topo.NumCPUs() {
			// Skip threads beyond this machine's CPU count, so one file
			// can target several machine sizes.
			continue
		}
		if err := r.AddThread(td.CPU, td.Proc, td.Params, td.Iters); err != nil {
			return nil, err
		}
	}
	res, err := r.Run()
	if err != nil {
		return nil, err
	}
	if cfg.Inject != nil {
		// The injectors model measurement error, so they sit on the
		// collection boundary: every collected artifact a Run hands out is
		// already faulted, whichever path asked for it (Collect, a direct
		// Run with sampling, or Evaluate's measurement loop — whose Measure
		// nils Inject per run because throughput is simulated, not
		// collected). The simulated run itself is never perturbed.
		res.Profile = cfg.Inject.ApplyProfile(res.Profile)
		res.Trace = cfg.Inject.ApplyTrace(res.Trace)
	}
	return res, nil
}

// Collect performs the tool's data-collection phase for a parsed file:
// one sampled run under declaration-order (or provided) layouts. When the
// config carries a fault spec, the collected profile and trace come back
// already faulted — Run applies the spec on the collection boundary.
func Collect(f *irtext.File, cfg Config, layouts map[string]*layout.Layout) (*exec.Result, error) {
	cfg.fillDefaults()
	if cfg.Sampling == nil {
		cfg.Sampling = &sampling.Config{
			IntervalCycles: 2500,
			DriftMaxCycles: 8,
			LossProb:       0.02,
			Seed:           cfg.Seed + 17,
		}
	}
	return Run(f, cfg, layouts)
}

// Measurement aggregates repeated measured runs of a parsed file under one
// layout set, following the paper's protocol: outliers removed, trimmed
// mean reported.
type Measurement struct {
	// Mean is the outlier-trimmed mean throughput, in completed top-level
	// iterations per virtual hour.
	Mean float64
	// Runs holds each run's throughput.
	Runs []float64
}

// SpeedupOver returns the relative performance versus a baseline, in
// percent.
func (m Measurement) SpeedupOver(base Measurement) float64 {
	return stats.SpeedupPercent(m.Mean, base.Mean)
}

// Measure runs the file n times under the layouts and aggregates
// throughput. Runs fan out over the worker pool up to parallel.Limit();
// each run's seed is a pure function of the run index (never of
// scheduling) and throughputs gather by index, so the measurement is
// byte-identical at any -j. Fault specs never apply here: -inject models
// measurement error in the collected data, not in the program under test.
// Measurements memoize through memo.Shared(), keyed by the canonical IR
// serialization plus the full run harness (see memo.go in this package);
// repeated cells — the multi-struct evaluation loop re-measures its
// baseline per struct variant set, warm disk caches span processes —
// replay instead of re-simulating.
func Measure(f *irtext.File, cfg Config, layouts map[string]*layout.Layout, n int) (Measurement, error) {
	return MeasureCtx(context.Background(), f, cfg, layouts, n)
}

// MeasureCtx is Measure with cooperative cancellation: a cancelled or
// timed-out ctx stops dequeuing remaining runs (runs already simulating
// finish — a single run is never interrupted mid-simulation) and returns
// ctx's error. A cancelled measurement is never cached, so a later
// uncancelled call recomputes the full, deterministic aggregate.
func MeasureCtx(ctx context.Context, f *irtext.File, cfg Config, layouts map[string]*layout.Layout, n int) (Measurement, error) {
	if n <= 0 {
		return Measurement{}, fmt.Errorf("driver: need at least one measured run")
	}
	cfg.fillDefaults()
	compute := func() (Measurement, error) {
		runs, err := parallel.MapCtx(ctx, n, func(ctx context.Context, i int) (float64, error) {
			rcfg := cfg
			rcfg.Seed = parallel.SeedFor(cfg.Seed, i, "driver", f.Prog.Name)
			rcfg.Sampling = nil
			rcfg.Inject = nil
			res, err := Run(f, rcfg, layouts)
			if err != nil {
				return 0, err
			}
			return workload.Throughput(cfg.Topo, res), nil
		})
		if err != nil {
			return Measurement{}, err
		}
		return Measurement{Mean: stats.TrimmedMean(runs), Runs: runs}, nil
	}
	for {
		m, err := measureMemo(f, cfg, layouts, n, compute)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The error is another caller's: concurrent measurements of the
			// same cell share one in-flight computation, and the one doing
			// the computing was cancelled. Our own deadline still holds, so
			// go again — either we compute it ourselves this time or a
			// completed flight serves us.
			continue
		}
		return m, err
	}
}

// StructEval is one struct's outcome when its variant layout is applied
// alone over the base layouts.
type StructEval struct {
	Struct     string
	Mean       float64
	SpeedupPct float64
}

// EvalResult is the multi-struct evaluation table for one machine.
type EvalResult struct {
	Baseline Measurement
	Structs  []StructEval
	// Quality carries the measurement-quality assessment of the collection
	// the variant layouts derive from, so the table states how trustworthy
	// the advice it evaluates was.
	Quality *quality.Assessment
}

// Evaluate is the driver's multi-struct measurement loop — the §5.1
// protocol for DSL programs: measure the file under the base layouts, then
// re-measure with each struct's variant applied individually. The baseline
// and every struct cell are independent measurements, so they fan out over
// the worker pool; rows assemble in sorted struct order, keeping the table
// byte-identical at any -j. q, when non-nil, is the quality assessment of
// the collection that produced the variants; it is attached to the result
// and rendered alongside the table.
func Evaluate(f *irtext.File, cfg Config, base, variants map[string]*layout.Layout, runs int, q *quality.Assessment) (*EvalResult, error) {
	return EvaluateCtx(context.Background(), f, cfg, base, variants, runs, q)
}

// EvaluateCtx is Evaluate under a context: cancellation stops dequeuing
// both whole measurement cells and the runs inside each cell (see
// MeasureCtx), so a timed-out caller stops consuming workers at the next
// run boundary instead of measuring the full table to completion.
func EvaluateCtx(ctx context.Context, f *irtext.File, cfg Config, base, variants map[string]*layout.Layout, runs int, q *quality.Assessment) (*EvalResult, error) {
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}
	sort.Strings(names)
	// Item 0 is the shared baseline measurement; items 1.. the struct cells.
	ms, err := parallel.MapCtx(ctx, len(names)+1, func(ctx context.Context, i int) (Measurement, error) {
		if i == 0 {
			return MeasureCtx(ctx, f, cfg, base, runs)
		}
		name := names[i-1]
		overlay := make(map[string]*layout.Layout, len(base)+1)
		for k, v := range base {
			overlay[k] = v
		}
		overlay[name] = variants[name]
		m, err := MeasureCtx(ctx, f, cfg, overlay, runs)
		if err != nil {
			return m, fmt.Errorf("driver: measuring %s: %w", name, err)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	res := &EvalResult{Baseline: ms[0], Structs: make([]StructEval, len(names)), Quality: q}
	for i, name := range names {
		res.Structs[i] = StructEval{Struct: name, Mean: ms[i+1].Mean, SpeedupPct: ms[i+1].SpeedupOver(ms[0])}
	}
	return res, nil
}

// String renders the evaluation as a small table.
func (r *EvalResult) String() string {
	s := fmt.Sprintf("baseline %.0f iterations/hour\n", r.Baseline.Mean)
	for _, se := range r.Structs {
		s += fmt.Sprintf("  struct %-12s %+0.2f%%\n", se.Struct, se.SpeedupPct)
	}
	if r.Quality != nil {
		s += fmt.Sprintf("  collection quality: %s\n", r.Quality)
	}
	return s
}

// ValidateThreads checks the declarations against a machine: duplicate
// CPUs and out-of-range CPUs that would silently never run.
func ValidateThreads(f *irtext.File, topo *machine.Topology) error {
	seen := make(map[int]bool)
	runnable := 0
	for _, td := range f.Threads {
		if td.CPU < 0 {
			return fmt.Errorf("driver: thread on negative cpu %d", td.CPU)
		}
		if seen[td.CPU] {
			return fmt.Errorf("driver: duplicate thread on cpu %d", td.CPU)
		}
		seen[td.CPU] = true
		if td.CPU < topo.NumCPUs() {
			runnable++
		}
	}
	if runnable == 0 {
		return fmt.Errorf("driver: no declared thread fits on %s (%d CPUs)", topo.Name, topo.NumCPUs())
	}
	return nil
}

// cache.go is the content-addressed per-package report cache: a
// -go-lint run with Options.Cache set keys each package by its source
// file names + contents, the analysis options and the toolchain version,
// and replays the serialized report on a hit — so editing one file
// re-analyzes only its own package while every untouched package comes
// back from the cache (with -cache-dir, across processes). Keys never
// include the directory path: findings, suggestions and notes carry no
// absolute paths (the display path is prefixed at render time), so a hit
// is valid wherever the tree sits.
package gofront

import (
	"encoding/json"
	"fmt"
	"runtime"

	"structlayout/internal/diag"
	"structlayout/internal/memo"
	"structlayout/internal/staticshare"
)

// cacheSchema versions the cached-report encoding and the analysis
// semantics behind it. Bump on any change to extraction, lowering,
// classification or the serialized shape — stale entries then miss
// instead of replaying wrong results.
const cacheSchema = 1

// reportKey derives the content-addressed cache key for one package's
// lint report.
func reportKey(names []string, srcs [][]byte, opts Options) memo.Key {
	h := memo.NewHasher()
	h.Str("kind", "gofront/report")
	h.Int("gofront-schema", cacheSchema)
	h.Str("go-version", runtime.Version())
	h.Str("goarch", opts.GOARCH)
	h.Int("line-size", int64(opts.LineSize))
	h.Int("loop-trip", opts.LoopTrip)
	h.Int("spawns-per-loop-go", int64(opts.SpawnsPerLoopGo))
	h.Int("max-threads", int64(opts.MaxThreads))
	// ExactClassify is keyed though the outputs are proven identical:
	// the bench must never replay one path's timing off the other's
	// entries. FreshImporters is deliberately not keyed — it changes
	// only load cost, never results.
	h.Int("exact-classify", boolInt(opts.ExactClassify))
	h.Int("files", int64(len(names)))
	for i, name := range names {
		h.Str("file-name", name)
		h.Str("file-src", string(srcs[i]))
	}
	return h.Sum()
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// cachedFinding mirrors staticshare.Finding with the severity as its
// integer value: Finding marshals the severity as a display string and
// has no unmarshal inverse, so the cache carries the raw value.
type cachedFinding struct {
	Severity int      `json:"severity"`
	Code     string   `json:"code"`
	Struct   string   `json:"struct,omitempty"`
	Fields   []string `json:"fields,omitempty"`
	Weight   float64  `json:"weight"`
	Message  string   `json:"message"`
}

// cachedReport is the serialized form of a package report: everything
// RenderText, AllFindings and -lint-json consume — not the Model, which
// only uncached callers need.
type cachedReport struct {
	Findings    []cachedFinding `json:"findings"`
	Suggestions []Suggestion    `json:"suggestions"`
	NumStructs  int             `json:"num_structs"`
	NumThreads  int             `json:"num_threads"`
	Notes       []string        `json:"notes,omitempty"`
}

func encodeReport(rep *Report) ([]byte, error) {
	cr := cachedReport{
		Suggestions: rep.Suggestions,
		NumStructs:  rep.NumStructs,
		NumThreads:  rep.NumThreads,
		Notes:       rep.Notes,
	}
	cr.Findings = make([]cachedFinding, len(rep.Findings))
	for i, f := range rep.Findings {
		cr.Findings[i] = cachedFinding{
			Severity: int(f.Severity),
			Code:     f.Code,
			Struct:   f.Struct,
			Fields:   f.Fields,
			Weight:   f.Weight,
			Message:  f.Message,
		}
	}
	return json.Marshal(cr)
}

func decodeReport(dir string, raw []byte) (*Report, error) {
	var cr cachedReport
	if err := json.Unmarshal(raw, &cr); err != nil {
		return nil, fmt.Errorf("corrupt cached report: %w", err)
	}
	rep := &Report{
		Package:     dir,
		Suggestions: cr.Suggestions,
		NumStructs:  cr.NumStructs,
		NumThreads:  cr.NumThreads,
		Notes:       cr.Notes,
	}
	if len(cr.Findings) > 0 {
		rep.Findings = make([]staticshare.Finding, len(cr.Findings))
		for i, f := range cr.Findings {
			rep.Findings[i] = staticshare.Finding{
				Severity: diag.Severity(f.Severity),
				Code:     f.Code,
				Struct:   f.Struct,
				Fields:   f.Fields,
				Weight:   f.Weight,
				Message:  f.Message,
			}
		}
	}
	return rep, nil
}

// lintDir loads and lints one directory, serving the report from the
// cache when one is configured. Errors (unreadable dirs, parse
// failures, analysis failures) are never cached: they return a Report
// with Err set, and the next run retries.
func lintDir(dir string, opts Options) *Report {
	names, srcs, err := readGoFiles(dir)
	if err != nil {
		return &Report{Package: dir, Err: fmt.Errorf("%s: %w", dir, err)}
	}
	if opts.Cache == nil {
		pkg, perr := loadFiles(dir, names, srcs, opts)
		if perr != nil {
			return &Report{Package: dir, Err: fmt.Errorf("%s: %w", dir, perr)}
		}
		return LintPackage(pkg, opts)
	}
	key := reportKey(names, srcs, opts)
	var computed *Report
	raw, err := opts.Cache.Do(key, func() ([]byte, error) {
		pkg, perr := loadFiles(dir, names, srcs, opts)
		if perr != nil {
			return nil, fmt.Errorf("%s: %w", dir, perr)
		}
		rep := LintPackage(pkg, opts)
		if rep.Err != nil {
			return nil, rep.Err
		}
		computed = rep
		return encodeReport(rep)
	})
	if err != nil {
		return &Report{Package: dir, Err: err}
	}
	// Decode the serialized bytes even on a fresh miss, so cold and warm
	// runs render the identical (round-tripped) report.
	rep, derr := decodeReport(dir, raw)
	if derr != nil {
		return &Report{Package: dir, Err: fmt.Errorf("%s: %w", dir, derr)}
	}
	if computed != nil {
		rep.Model = computed.Model
	} else {
		rep.CacheHit = true
	}
	return rep
}

package gofront

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"structlayout/internal/memo"
	"structlayout/internal/parallel"
	"structlayout/internal/staticshare"
)

// corpusPatterns returns the committed real-world corpus, skipping the
// test entirely if it is not checked out (it always is in-tree).
func corpusPatterns(t *testing.T) []string {
	t.Helper()
	if _, err := os.Stat("../../examples/corpus"); err != nil {
		t.Skip("examples/corpus not present")
	}
	return []string{"../../examples/corpus/..."}
}

// renderAll runs the patterns and returns the rendered text plus the
// ranked findings JSON — the two byte-level views determinism is pinned
// on.
func renderAll(t *testing.T, patterns []string, opts Options) (string, string) {
	t.Helper()
	reports, err := Run(patterns, opts)
	if err != nil {
		t.Fatalf("Run(%v): %v", patterns, err)
	}
	js, err := staticshare.MarshalFindings(AllFindings(reports))
	if err != nil {
		t.Fatal(err)
	}
	return RenderText(reports), string(js)
}

// TestZeroMatchPatternDegrades pins the contract for patterns that match
// nothing: Run must not error, and must surface one lint-skipped report
// per dead pattern — alone or mixed with patterns that do match.
func TestZeroMatchPatternDegrades(t *testing.T) {
	empty := t.TempDir()
	dead := filepath.Join(empty, "nothing", "...")

	reports, err := Run([]string{dead}, Options{})
	if err != nil {
		t.Fatalf("Run with only a dead pattern must degrade, got error: %v", err)
	}
	if len(reports) != 1 || reports[0].Err == nil {
		t.Fatalf("want 1 errored report, got %+v", reports)
	}
	if !strings.Contains(reports[0].Err.Error(), "pattern matched no Go packages") {
		t.Errorf("unhelpful zero-match error: %v", reports[0].Err)
	}
	all := AllFindings(reports)
	if len(all) != 1 || all[0].Code != staticshare.CodeLintSkipped {
		t.Fatalf("want one lint-skipped finding, got %+v", all)
	}

	// Mixed with a live package: the live one lints, the dead one reports.
	good := filepath.Join(t.TempDir(), "ok")
	if err := os.MkdirAll(good, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package ok\n\ntype T struct{ a, b int64 }\n\nvar v T\n\nfunc Use() { v.a = 1; v.b = 2 }\n"
	if err := os.WriteFile(filepath.Join(good, "ok.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	reports, err = Run([]string{dead, good}, Options{})
	if err != nil {
		t.Fatalf("mixed run must degrade: %v", err)
	}
	if len(reports) != 2 {
		t.Fatalf("want 2 reports, got %d", len(reports))
	}
	var skipped, ok int
	for _, r := range reports {
		if r.Err != nil {
			skipped++
		} else {
			ok++
		}
	}
	if skipped != 1 || ok != 1 {
		t.Errorf("want 1 skipped + 1 linted, got %d/%d", skipped, ok)
	}
}

// TestCacheColdWarmIdentical pins the cache round trip: a cold run
// misses once per package, a warm run hits every package with zero
// re-analysis, and both render byte-identical text and findings JSON
// (the cold path decodes its own serialized report, so there is no
// fresh-vs-replayed drift to hide).
func TestCacheColdWarmIdentical(t *testing.T) {
	patterns := corpusPatterns(t)
	cache := memo.New()
	opts := Options{Cache: cache}

	before := cache.Stats()
	coldText, coldJSON := renderAll(t, patterns, opts)
	cold := cache.Stats().Sub(before)
	if cold.Misses == 0 || cold.Hits() != 0 {
		t.Fatalf("cold run: want all misses, got %+v", cold)
	}

	before = cache.Stats()
	warmText, warmJSON := renderAll(t, patterns, opts)
	warm := cache.Stats().Sub(before)
	if warm.Misses != 0 {
		t.Fatalf("warm run re-analyzed %d package(s): %+v", warm.Misses, warm)
	}
	if warm.MemHits != cold.Misses {
		t.Errorf("warm run: want %d hits, got %+v", cold.Misses, warm)
	}
	if coldText != warmText {
		t.Errorf("cold and warm rendered text differ:\ncold:\n%s\nwarm:\n%s", coldText, warmText)
	}
	if coldJSON != warmJSON {
		t.Errorf("cold and warm findings JSON differ")
	}

	// Warm reports carry CacheHit and no Model; cold ones the reverse.
	reports, err := Run(patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Err != nil {
			continue
		}
		if !r.CacheHit {
			t.Errorf("%s: warm report not marked CacheHit", r.Package)
		}
		if r.Model != nil {
			t.Errorf("%s: cached replay carries a Model", r.Package)
		}
	}
}

// TestCacheDiskTier pins -cache-dir semantics: a fresh in-memory cache
// pointed at the same directory serves the second run from disk.
func TestCacheDiskTier(t *testing.T) {
	patterns := corpusPatterns(t)
	dir := t.TempDir()

	c1 := memo.New()
	if err := c1.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	coldText, _ := renderAll(t, patterns, Options{Cache: c1})

	c2 := memo.New()
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	before := c2.Stats()
	warmText, _ := renderAll(t, patterns, Options{Cache: c2})
	delta := c2.Stats().Sub(before)
	if delta.Misses != 0 || delta.DiskHits == 0 {
		t.Fatalf("second process: want all disk hits, got %+v", delta)
	}
	if coldText != warmText {
		t.Errorf("disk-replayed text differs from cold run")
	}
}

// TestCacheInvalidationPerPackage pins the tentpole's incremental
// contract: editing one file in a multi-package tree re-analyzes exactly
// that file's package — every other package stays a hit.
func TestCacheInvalidationPerPackage(t *testing.T) {
	root := t.TempDir()
	mk := func(pkg, body string) string {
		dir := filepath.Join(root, pkg)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, pkg+".go")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	tpl := func(pkg string) string {
		return "package " + pkg + "\n\nimport \"sync/atomic\"\n\ntype S struct{ a, b int64 }\n\nvar g S\n\nfunc Start() {\n\tgo w1()\n\tgo w2()\n}\n\nfunc w1() { atomic.AddInt64(&g.a, 1) }\nfunc w2() { atomic.AddInt64(&g.b, 1) }\n"
	}
	mk("alpha", tpl("alpha"))
	edited := mk("beta", tpl("beta"))
	mk("gamma", tpl("gamma"))

	cache := memo.New()
	opts := Options{Cache: cache}
	patterns := []string{filepath.Join(root, "...")}

	if _, err := Run(patterns, opts); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	if _, err := Run(patterns, opts); err != nil {
		t.Fatal(err)
	}
	warm := cache.Stats().Sub(before)
	if warm.Misses != 0 || warm.MemHits != 3 {
		t.Fatalf("pre-edit warm run: want 3 hits 0 misses, got %+v", warm)
	}

	// Touch one package: append a comment (the key hashes contents, so
	// even a semantically inert edit must invalidate that package only).
	src, err := os.ReadFile(edited)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(edited, append(src, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	before = cache.Stats()
	if _, err := Run(patterns, opts); err != nil {
		t.Fatal(err)
	}
	delta := cache.Stats().Sub(before)
	if delta.Misses != 1 || delta.MemHits != 2 {
		t.Fatalf("post-edit run: want exactly 1 miss + 2 hits, got %+v", delta)
	}
}

// TestCorpusDeterminism pins byte-identical output across worker counts
// and pattern orders on the real corpus — the gather-by-index contract
// end to end.
func TestCorpusDeterminism(t *testing.T) {
	corpusPatterns(t)
	// Individual package dirs, to permute pattern order meaningfully.
	dirs, unmatched, err := expandPatterns([]string{"../../examples/corpus/..."})
	if err != nil || len(unmatched) > 0 {
		t.Fatalf("expand: %v %v", err, unmatched)
	}
	if len(dirs) < 10 {
		t.Fatalf("corpus too small: %v", dirs)
	}
	reversed := make([]string, len(dirs))
	for i, d := range dirs {
		reversed[len(dirs)-1-i] = d
	}

	saved := parallel.Limit()
	defer parallel.SetLimit(saved)

	var refText, refJSON string
	for _, j := range []int{1, 2, 8} {
		parallel.SetLimit(j)
		text, js := renderAll(t, dirs, Options{})
		if refText == "" {
			refText, refJSON = text, js
			continue
		}
		if text != refText || js != refJSON {
			t.Fatalf("-j %d output differs from -j 1", j)
		}
		rtext, rjs := renderAll(t, reversed, Options{})
		if rtext != refText || rjs != refJSON {
			t.Fatalf("-j %d reversed-pattern output differs", j)
		}
	}
}

// TestCorpusSummaryEqualsExact extends the staticshare differential gate
// to every corpus and example package through the full frontend: the
// summary-based default and the exact walk must render byte-identical
// findings.
func TestCorpusSummaryEqualsExact(t *testing.T) {
	patterns := append(corpusPatterns(t), "../../examples/gofront/...")
	sumText, sumJSON := renderAll(t, patterns, Options{})
	exactText, exactJSON := renderAll(t, patterns, Options{ExactClassify: true})
	if sumText != exactText {
		t.Errorf("summary and exact rendered text differ:\nsummary:\n%s\nexact:\n%s", sumText, exactText)
	}
	if sumJSON != exactJSON {
		t.Errorf("summary and exact findings JSON differ")
	}
}

// TestCorpusExpectedVerdicts pins the shape of the committed corpus so
// it cannot silently rot: which packages are clean, and that every
// findings-bearing package reports static false sharing or the
// per-thread-lock smell.
func TestCorpusExpectedVerdicts(t *testing.T) {
	reports, err := Run(corpusPatterns(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantClean := map[string]bool{
		"readmostly": true,
		"spscpad":    true,
		"workqueue":  true,
		// The happens-before trio: flagged under flat thread modeling,
		// clean once joins and rendezvous edges are proven.
		"wgfanout":  true,
		"chanstage": true,
		"handoff":   true,
	}
	if len(reports) != 15 {
		t.Fatalf("corpus has %d packages, want 15", len(reports))
	}
	for _, r := range reports {
		if r.Err != nil {
			t.Errorf("%s: skipped: %v", r.Package, r.Err)
			continue
		}
		name := filepath.Base(r.Package)
		if wantClean[name] {
			if len(r.Findings) != 0 {
				t.Errorf("%s: want clean, got %d finding(s): %v", name, len(r.Findings), r.Findings)
			}
			continue
		}
		if len(r.Findings) == 0 {
			t.Errorf("%s: want findings, got clean", name)
			continue
		}
		okCode := false
		for _, f := range r.Findings {
			if f.Code == staticshare.CodeFalseSharing || f.Code == staticshare.CodePerThreadLock {
				okCode = true
			}
		}
		if !okCode {
			t.Errorf("%s: no false-sharing or per-thread-lock finding: %v", name, r.Findings)
		}
	}
}

// TestCachedReportRoundTrip pins the serialization itself: severity
// survives the int detour and the JSON shape stays stable.
func TestCachedReportRoundTrip(t *testing.T) {
	reports, err := Run([]string{"../../examples/gofront/falseshare"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Err != nil {
		t.Fatalf("unexpected reports: %+v", reports)
	}
	raw, err := encodeReport(reports[0])
	if err != nil {
		t.Fatal(err)
	}
	var probe map[string]any
	if err := json.Unmarshal(raw, &probe); err != nil {
		t.Fatal(err)
	}
	back, err := decodeReport(reports[0].Package, raw)
	if err != nil {
		t.Fatal(err)
	}
	a, err := staticshare.MarshalFindings(AllFindings([]*Report{reports[0]}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := staticshare.MarshalFindings(AllFindings([]*Report{back}))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("findings changed across the cache round trip:\nbefore: %s\nafter:  %s", a, b)
	}
}

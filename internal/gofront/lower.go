package gofront

import (
	"go/ast"
	"go/token"
	"go/types"

	"structlayout/internal/ir"
)

// lowerFunc lowers one function body into an IR procedure. Deferred
// mutex releases are emitted at the end of the body (LIFO), matching Go
// function-exit semantics closely enough for lock-region analysis; a
// body that lowers to nothing gets a unit compute so the CFG stays
// well-formed.
func (e *extractor) lowerFunc(fn *goFunc) {
	b := e.prog.NewProc(fn.proc)
	e.deferred = e.deferred[:0]
	start := e.emitted
	e.lowerStmt(b, fn, fn.body)
	for i := len(e.deferred) - 1; i >= 0; i-- {
		e.deferred[i](b)
	}
	if e.emitted == start {
		b.Compute(1)
		e.emitted++
	}
	b.Done()
}

// lowerBody lowers a statement list as a nested arm (loop body, branch
// arm), guaranteeing at least one instruction so lowering never produces
// degenerate empty regions.
func (e *extractor) lowerArm(b *ir.Builder, fn *goFunc, stmt ast.Stmt) {
	start := e.emitted
	if stmt != nil {
		e.lowerStmt(b, fn, stmt)
	}
	if e.emitted == start {
		b.Compute(1)
		e.emitted++
	}
}

func (e *extractor) lowerStmt(b *ir.Builder, fn *goFunc, stmt ast.Stmt) {
	switch s := stmt.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			e.lowerStmt(b, fn, st)
		}
	case *ast.ExprStmt:
		if handles, ok := e.joinAt[stmt]; ok {
			// A proven wg.Wait(): joins order every structured worker's
			// completion before the code below the Wait.
			for _, h := range handles {
				b.Join(h)
				e.emitted++
			}
			return
		}
		if name, ok := e.recvAt[stmt]; ok {
			b.Recv(name)
			e.emitted++
			return
		}
		e.lowerExpr(b, fn, s.X)
	case *ast.AssignStmt:
		if name, ok := e.recvAt[stmt]; ok {
			// v := <-ch: the receive precedes the store, so the store
			// lands in the post-receive segment.
			b.Recv(name)
			e.emitted++
		}
		for _, rhs := range s.Rhs {
			e.lowerExpr(b, fn, rhs)
		}
		for _, lhs := range s.Lhs {
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				e.lowerExpr(b, fn, lhs) // compound assign reads first
			}
			e.lowerWrite(b, fn, lhs)
		}
	case *ast.IncDecStmt:
		e.lowerWrite(b, fn, s.X)
	case *ast.GoStmt:
		// Thread creation is modeled by declareThreads (flat) or a spawn
		// statement (structured); either way argument evaluation happens
		// on the spawning thread. A directly spawned literal's body
		// belongs to its synthetic procedure.
		for _, arg := range s.Call.Args {
			e.lowerExpr(b, fn, arg)
		}
		if _, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); !ok {
			e.lowerExpr(b, fn, s.Call.Fun)
		}
		if pl := e.spawnPlan[s]; pl != nil && pl.cpu >= 0 {
			b.Spawn(pl.handle, pl.cpu, pl.sp.callee.proc, pl.params...)
			e.emitted++
		}
	case *ast.DeferStmt:
		if call, ok := e.mutexCall(s.Call); ok && !call.acquire {
			// Deferred unlock: runs at function exit.
			c := call
			e.deferred = append(e.deferred, func(b *ir.Builder) {
				b.Unlock(c.st.IR, c.field, c.inst)
				e.emitted++
			})
			return
		}
		e.lowerExpr(b, fn, s.Call) // other defers: approximated at the defer site
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			e.lowerExpr(b, fn, r)
		}
	case *ast.IfStmt:
		e.lowerStmt(b, fn, s.Init)
		e.lowerExpr(b, fn, s.Cond)
		if s.Else != nil {
			b.IfElse(0.5,
				func(b *ir.Builder) { e.lowerArm(b, fn, s.Body) },
				func(b *ir.Builder) { e.lowerArm(b, fn, s.Else) })
		} else {
			b.If(0.5, func(b *ir.Builder) { e.lowerArm(b, fn, s.Body) })
		}
	case *ast.ForStmt:
		e.lowerStmt(b, fn, s.Init)
		b.Loop(e.opts.LoopTrip, func(b *ir.Builder) {
			if s.Cond != nil {
				e.lowerExpr(b, fn, s.Cond)
			}
			e.lowerArm(b, fn, s.Body)
			e.lowerStmt(b, fn, s.Post)
		})
	case *ast.RangeStmt:
		e.lowerExpr(b, fn, s.X)
		b.Loop(e.opts.LoopTrip, func(b *ir.Builder) {
			e.lowerArm(b, fn, s.Body)
		})
	case *ast.SwitchStmt:
		e.lowerStmt(b, fn, s.Init)
		e.lowerExpr(b, fn, s.Tag)
		e.lowerClauses(b, fn, s.Body)
	case *ast.TypeSwitchStmt:
		e.lowerStmt(b, fn, s.Init)
		e.lowerStmt(b, fn, s.Assign)
		e.lowerClauses(b, fn, s.Body)
	case *ast.SelectStmt:
		e.lowerClauses(b, fn, s.Body)
	case *ast.SendStmt:
		if name, ok := e.sendAt[stmt]; ok {
			// The value is produced before the rendezvous, so its
			// accesses land in the pre-send segment.
			e.lowerExpr(b, fn, s.Value)
			b.Send(name)
			e.emitted++
			return
		}
		e.lowerExpr(b, fn, s.Chan)
		e.lowerExpr(b, fn, s.Value)
	case *ast.LabeledStmt:
		e.lowerStmt(b, fn, s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						e.lowerExpr(b, fn, v)
					}
				}
			}
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
		// Control transfers carry no field traffic.
	}
}

// lowerClauses lowers switch/select clause bodies, each behind an
// independent coin-flip branch — static frequencies, not semantics.
func (e *extractor) lowerClauses(b *ir.Builder, fn *goFunc, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, x := range c.List {
				e.lowerExpr(b, fn, x)
			}
			stmts = c.Body
		case *ast.CommClause:
			e.lowerStmt(b, fn, c.Comm)
			stmts = c.Body
		}
		if len(stmts) == 0 {
			continue
		}
		b.If(0.5, func(b *ir.Builder) {
			e.lowerArm(b, fn, &ast.BlockStmt{List: stmts})
		})
	}
}

// mutexCallInfo describes a resolved sync.Mutex/RWMutex method call.
type mutexCallInfo struct {
	st      *StructDef
	field   string
	inst    ir.InstExpr
	acquire bool
}

// mutexCall recognizes x.mu.Lock/Unlock/RLock/RUnlock() on a mutex field
// of a lowered struct and mu.Lock() on a bare package/captured mutex
// var. RLock counts as an acquire: the lock word is genuinely written,
// and reader-reader exclusion only ever under-reports sharing hazards.
func (e *extractor) mutexCall(call *ast.CallExpr) (mutexCallInfo, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexCallInfo{}, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return mutexCallInfo{}, false
	}
	// x.mu.Lock(): mu a mutex field of a lowered struct.
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		if def, field, base := e.mutexField(inner); def != nil {
			return mutexCallInfo{st: def, field: field, inst: e.instOf(nil, base), acquire: acquire}, true
		}
	}
	// mu.Lock(): a bare mutex var lowered into the synthetic locks
	// struct (one shared instance; fields distinguish the locks).
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && e.lockSt != nil {
		if v, ok := e.objOf(id).(*types.Var); ok {
			if field, ok := e.lockField[v]; ok {
				return mutexCallInfo{st: e.lockSt, field: field, inst: ir.Shared(0), acquire: acquire}, true
			}
		}
	}
	return mutexCallInfo{}, false
}

// lowerExpr walks an expression emitting the field reads (and lock
// operations, calls) it performs.
func (e *extractor) lowerExpr(b *ir.Builder, fn *goFunc, expr ast.Expr) {
	switch x := expr.(type) {
	case nil:
	case *ast.SelectorExpr:
		e.lowerAccess(b, fn, x, false)
	case *ast.CallExpr:
		e.lowerCall(b, fn, x)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// &x.f escapes the field's address — whoever receives it may
			// write through it (atomic.AddInt64(&s.n, 1) is the idiom).
			if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
				e.lowerAccess(b, fn, sel, true)
				return
			}
		}
		e.lowerExpr(b, fn, x.X)
	case *ast.BinaryExpr:
		e.lowerExpr(b, fn, x.X)
		e.lowerExpr(b, fn, x.Y)
	case *ast.ParenExpr:
		e.lowerExpr(b, fn, x.X)
	case *ast.StarExpr:
		e.lowerExpr(b, fn, x.X)
	case *ast.IndexExpr:
		e.lowerExpr(b, fn, x.X)
		e.lowerExpr(b, fn, x.Index)
	case *ast.IndexListExpr:
		e.lowerExpr(b, fn, x.X)
	case *ast.SliceExpr:
		e.lowerExpr(b, fn, x.X)
		e.lowerExpr(b, fn, x.Low)
		e.lowerExpr(b, fn, x.High)
		e.lowerExpr(b, fn, x.Max)
	case *ast.TypeAssertExpr:
		e.lowerExpr(b, fn, x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			e.lowerExpr(b, fn, elt)
		}
	case *ast.KeyValueExpr:
		e.lowerExpr(b, fn, x.Value)
	case *ast.FuncLit:
		// Synchronously-used literal: its body runs on this goroutine.
		e.lowerStmt(b, fn, x.Body)
	}
}

// lowerCall lowers a call expression: mutex operations become lock
// regions, same-package calls become IR calls (unless dropped to break
// recursion), everything else just evaluates its arguments.
func (e *extractor) lowerCall(b *ir.Builder, fn *goFunc, call *ast.CallExpr) {
	if mc, ok := e.mutexCall(call); ok {
		if mc.acquire {
			b.Lock(mc.st.IR, mc.field, mc.inst)
		} else {
			b.Unlock(mc.st.IR, mc.field, mc.inst)
		}
		e.emitted++
		return
	}
	// Conversions have no callee; just evaluate the operand.
	if tv, ok := e.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			e.lowerExpr(b, fn, arg)
		}
		return
	}
	for _, arg := range call.Args {
		e.lowerExpr(b, fn, arg)
	}
	if callee := e.calleeOf(call); callee != nil {
		if !e.dropped[[2]string{fn.proc, callee.proc}] {
			b.Call(callee.proc)
			e.emitted++
		}
		return
	}
	// Method calls on expressions still evaluate the receiver.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		e.lowerExpr(b, fn, sel.X)
	}
}

// lowerAccess emits the field access a selector performs, if it reaches
// a field of a lowered struct; otherwise it recurses into the base.
func (e *extractor) lowerAccess(b *ir.Builder, fn *goFunc, sel *ast.SelectorExpr, write bool) {
	selection := e.pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		// Qualified identifier (pkg.X) or method value: nothing to emit
		// beyond the base expression.
		if _, isIdent := sel.X.(*ast.Ident); !isIdent {
			e.lowerExpr(b, fn, sel.X)
		}
		return
	}
	def := e.structDefOf(selection.Recv())
	if def == nil {
		e.lowerExpr(b, fn, sel.X)
		return
	}
	// Promoted selections (embedded structs) touch the outer field
	// holding the embedded value: Index()[0] is that field.
	idx := selection.Index()[0]
	if idx < 0 || idx >= len(def.IR.Fields) {
		return
	}
	inst := e.instOf(fn, sel.X)
	if write {
		b.WriteI(def.IR, idx, inst)
	} else {
		b.ReadI(def.IR, idx, inst)
	}
	e.emitted++
}

// lowerWrite emits the store an assignment target performs.
func (e *extractor) lowerWrite(b *ir.Builder, fn *goFunc, lhs ast.Expr) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		e.lowerAccess(b, fn, x, true)
	case *ast.StarExpr:
		e.lowerExpr(b, fn, x.X)
	case *ast.IndexExpr:
		e.lowerExpr(b, fn, x.X)
		e.lowerExpr(b, fn, x.Index)
	case *ast.Ident:
		// Local/global scalar writes don't touch lowered struct fields.
	}
}

// instOf resolves the instance a selector base designates. fn may be nil
// when resolving outside any function position (mutex fields reached
// through globals).
func (e *extractor) instOf(fn *goFunc, base ast.Expr) ir.InstExpr {
	for {
		switch x := base.(type) {
		case *ast.ParenExpr:
			base = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return ir.Param(unknownSlot)
			}
			base = x.X
		case *ast.StarExpr:
			base = x.X
		case *ast.Ident:
			v, ok := e.objOf(x).(*types.Var)
			if !ok {
				return ir.Param(unknownSlot)
			}
			if idx, ok := e.instIdx[v]; ok && idx >= 0 {
				return ir.Shared(idx)
			}
			if fn != nil {
				if slot, ok := fn.paramSlot[v]; ok {
					if _, isPtr := v.Type().(*types.Pointer); isPtr {
						return ir.Param(slot)
					}
					// Value receiver/parameter: the callee owns a copy.
					return ir.PerCPU()
				}
			}
			if !e.isPackageLevel(v) && !v.IsField() {
				return ir.PerCPU() // uncaptured local: frame-private
			}
			return ir.Param(unknownSlot)
		default:
			// Slice/map elements, channel receives, call results, nested
			// fields: statically unknown instance.
			return ir.Param(unknownSlot)
		}
	}
}

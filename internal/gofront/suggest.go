package gofront

import (
	"fmt"
	"go/token"
	"strings"

	"structlayout/internal/staticshare"
)

// Suggestion is a fieldalignment-style rewrite for one struct: a unified
// diff from the declared field order to an order where every pair of
// fields with certain write-sharing lands on distinct coherence lines.
type Suggestion struct {
	// Struct is the Go type name the diff applies to.
	Struct string
	Diff   string
}

// Suggest derives reordering diffs for the structs whose declaration
// order co-locates certainly-write-shared field pairs on one coherence
// line. Output order follows Model.Structs (declaration order), so it is
// deterministic.
func Suggest(model *Model, res *staticshare.Result, lineSize int) []Suggestion {
	if model == nil || res == nil || lineSize <= 0 {
		return nil
	}
	var out []Suggestion
	for _, def := range model.Structs {
		// The synthetic package-locks struct has no Go declaration to
		// rewrite; the same guard covers any future synthetic structs.
		if !token.IsIdentifier(def.GoName) {
			continue
		}
		s := suggestStruct(def, res.Pairs[def.Name], lineSize)
		if s != nil {
			out = append(out, *s)
		}
	}
	return out
}

// suggestStruct builds one suggestion, or nil when the declared order
// already separates every conflicting pair.
func suggestStruct(def *StructDef, pairs map[[2]int]staticshare.PairInfo, lineSize int) *Suggestion {
	n := len(def.IR.Fields)
	if n < 2 || len(pairs) == 0 {
		return nil
	}
	conflict := make([][]bool, n)
	for i := range conflict {
		conflict[i] = make([]bool, n)
	}
	declLines := fieldLines(def, identityOrder(n), lineSize)
	hot := false
	for k, info := range pairs {
		if info.Class != staticshare.WriteShared || !info.Certain {
			continue
		}
		i, j := k[0], k[1]
		if i < 0 || j < 0 || i >= n || j >= n || i == j {
			continue
		}
		conflict[i][j], conflict[j][i] = true, true
		if declLines[i] == declLines[j] {
			hot = true // a conflicting pair shares a line as declared
		}
	}
	if !hot {
		return nil
	}

	// Greedy line packing in declaration order: each field joins the
	// first group holding no field it conflicts with. Groups are then
	// emitted back to back with padding up to the next line boundary
	// between them, so distinct groups occupy distinct coherence lines.
	var groups [][]int
place:
	for i := 0; i < n; i++ {
		for g := range groups {
			ok := true
			for _, j := range groups[g] {
				if conflict[i][j] {
					ok = false
					break
				}
			}
			if ok {
				groups[g] = append(groups[g], i)
				continue place
			}
		}
		groups = append(groups, []int{i})
	}
	if len(groups) < 2 {
		return nil // conflicts exist but cannot be separated by reordering
	}
	return &Suggestion{Struct: def.GoName, Diff: renderDiff(def, groups, lineSize)}
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// fieldLines computes, for a field order, the coherence line index each
// field's offset falls on (sequential align-up layout, the same model
// layout.Original uses for declaration order).
func fieldLines(def *StructDef, order []int, lineSize int) map[int]int {
	lines := make(map[int]int, len(order))
	off := 0
	for _, i := range order {
		f := def.IR.Fields[i]
		off = alignUp(off, f.Align)
		lines[i] = off / lineSize
		off += f.Size
	}
	return lines
}

func alignUp(off, align int) int {
	if align <= 1 {
		return off
	}
	return (off + align - 1) / align * align
}

// renderDiff renders the declared order against the grouped order as a
// unified-style diff of the struct body, with explicit pad fields at
// the group seams.
func renderDiff(def *StructDef, groups [][]int, lineSize int) string {
	type row struct{ name, typ string }
	oldRows := make([]row, 0, len(def.IR.Fields))
	for i := range def.IR.Fields {
		oldRows = append(oldRows, row{fieldGoName(def, i), fieldGoType(def, i)})
	}
	var newRows []row
	off := 0
	for g, group := range groups {
		if g > 0 {
			// Pad to the next line boundary so this group cannot share a
			// line with the previous one.
			pad := alignUp(off, lineSize) - off
			if pad == 0 {
				pad = lineSize
			}
			newRows = append(newRows, row{"_", fmt.Sprintf("[%d]byte", pad)})
			off += pad
		}
		for _, i := range group {
			f := def.IR.Fields[i]
			off = alignUp(off, f.Align)
			newRows = append(newRows, row{fieldGoName(def, i), fieldGoType(def, i)})
			off += f.Size
		}
	}
	width := 0
	for _, r := range append(append([]row{}, oldRows...), newRows...) {
		if len(r.name) > width {
			width = len(r.name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "--- %s (declared)\n", def.GoName)
	fmt.Fprintf(&b, "+++ %s (suggested, %d-byte lines)\n", def.GoName, lineSize)
	fmt.Fprintf(&b, " type %s struct {\n", def.GoName)
	for _, r := range oldRows {
		fmt.Fprintf(&b, "-\t%-*s %s\n", width, r.name, r.typ)
	}
	for _, r := range newRows {
		fmt.Fprintf(&b, "+\t%-*s %s\n", width, r.name, r.typ)
	}
	b.WriteString(" }\n")
	return b.String()
}

func fieldGoName(def *StructDef, i int) string {
	if i < len(def.FieldNames) && def.FieldNames[i] != "" {
		return def.FieldNames[i]
	}
	return def.IR.Fields[i].Name
}

func fieldGoType(def *StructDef, i int) string {
	if i < len(def.FieldTypes) && def.FieldTypes[i] != "" {
		return def.FieldTypes[i]
	}
	return fmt.Sprintf("[%d]byte", def.IR.Fields[i].Size)
}

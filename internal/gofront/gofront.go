// Package gofront is the Go-package frontend for the static sharing
// analysis: it loads real Go packages with go/parser + go/types (stdlib
// only — no go/packages dependency, no `go list` subprocess), extracts
// struct definitions with their field sizes and alignments, derives
// per-goroutine field-access footprints (`go` statements as declared
// threads, sync.Mutex/RWMutex Lock..Unlock call regions as lock-held
// regions, same-package calls followed interprocedurally), and lowers
// the result into internal/ir — so staticshare classification, the
// CycleLoss prior and the lint findings apply to actual Go code
// unchanged. docs/GOFRONT.md states the extraction rules and the known
// unsoundness relative to the DSL path.
package gofront

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"structlayout/internal/diag"
	"structlayout/internal/irtext"
	"structlayout/internal/memo"
	"structlayout/internal/parallel"
	"structlayout/internal/staticshare"
)

// Options parameterize loading and lowering. The zero value is usable:
// every field has a working default.
type Options struct {
	// GOARCH selects the size/alignment model (default amd64, the
	// paper's 64-bit machines).
	GOARCH string
	// LineSize is the coherence-line size the linter checks co-location
	// against (default 128, matching the DSL lint path).
	LineSize int
	// LoopTrip is the assumed trip count for Go loops, whose bounds are
	// rarely static (default 8). It only weights finding ranks.
	LoopTrip int64
	// SpawnsPerLoopGo is how many threads model a `go` statement inside
	// a loop (default 2: enough for distinct-thread conflicts to exist).
	SpawnsPerLoopGo int
	// MaxThreads caps the modeled threads per package (default 16,
	// keeping per-CPU instance indices below the named-instance base).
	MaxThreads int
	// Cache, when non-nil, memoizes per-package reports content-addressed
	// by the source file names + contents, the options and the toolchain
	// (never the directory path, so a hit is valid wherever the tree
	// sits). Cached replays return reports without a Model — callers that
	// need the lowered program must run uncached. Nil disables caching.
	Cache *memo.Cache
	// ExactClassify forces staticshare's exact per-access-pair
	// classification walk instead of the summary-based path. Test and
	// bench use only: the two are bit-identical by construction.
	ExactClassify bool
	// FreshImporters disables the package-level reuse of typechecker
	// importers (each load pays full transitive re-typechecking). Bench
	// use only, to time the un-amortized path honestly.
	FreshImporters bool
}

func (o Options) withDefaults() Options {
	if o.GOARCH == "" {
		o.GOARCH = "amd64"
	}
	if o.LineSize <= 0 {
		o.LineSize = 128
	}
	if o.LoopTrip <= 0 {
		o.LoopTrip = 8
	}
	if o.SpawnsPerLoopGo <= 0 {
		o.SpawnsPerLoopGo = 2
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 16
	}
	return o
}

// Package is one loaded, type-checked Go package.
type Package struct {
	// Dir is the package directory as resolved from the pattern — the
	// stable display name for findings.
	Dir   string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
	// TypeErrs collects tolerated type errors (unresolved imports of
	// non-stdlib packages, and so on). Extraction degrades around them.
	TypeErrs []error
}

// Load resolves package patterns to directories and parses + typechecks
// each, fanning the per-directory work out over internal/parallel with
// gather-by-index (results are sorted by directory, independent of
// pattern order and of -j). A pattern is a directory path, or a path
// ending in "/..." which walks the subtree for every directory holding
// Go files (skipping dot/underscore directories, testdata, and _test.go
// files — the same shape the go tool gives the pattern). Patterns that
// match no Go packages surface as per-pattern load errors (never
// silently dropped); per-package load failures come back in loadErrs
// with the rest of the run intact.
func Load(patterns []string, opts Options) ([]*Package, []error, error) {
	opts = opts.withDefaults()
	dirs, unmatched, err := expandPatterns(patterns)
	if err != nil {
		return nil, nil, err
	}
	var loadErrs []error
	for _, pat := range unmatched {
		loadErrs = append(loadErrs, fmt.Errorf("%s: pattern matched no Go packages", pat))
	}
	type loadRes struct {
		pkg *Package
		err error
	}
	results, _ := parallel.Map(len(dirs), func(i int) (loadRes, error) {
		pkg, perr := loadDir(dirs[i], opts)
		return loadRes{pkg, perr}, nil
	})
	var pkgs []*Package
	for i, res := range results {
		if res.err != nil {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %w", dirs[i], res.err))
			continue
		}
		pkgs = append(pkgs, res.pkg)
	}
	if len(pkgs) == 0 && len(loadErrs) == 0 {
		return nil, nil, fmt.Errorf("gofront: no Go packages match %v", patterns)
	}
	return pkgs, loadErrs, nil
}

// expandPatterns resolves pattern strings to a sorted, deduplicated
// directory list, plus the patterns that matched no Go packages at all
// (so the caller can diagnose them instead of silently linting nothing).
func expandPatterns(patterns []string) (dirs, unmatched []string, err error) {
	seen := make(map[string]bool)
	add := func(dir string) {
		clean := filepath.Clean(dir)
		if !seen[clean] {
			seen[clean] = true
			dirs = append(dirs, clean)
		}
	}
	for _, pat := range patterns {
		if pat == "" {
			continue
		}
		root, recursive := pat, false
		if strings.HasSuffix(pat, "/...") {
			root, recursive = strings.TrimSuffix(pat, "/..."), true
			if root == "" {
				root = "."
			}
		}
		fi, err := os.Stat(root)
		if err != nil || !fi.IsDir() {
			// A dead root is a pattern that matched nothing, not a fatal
			// run error: the caller turns it into a lint-skipped report.
			unmatched = append(unmatched, pat)
			continue
		}
		if !recursive {
			// Explicit directory: always resolved; loadDir reports "no Go
			// files" if it is empty.
			add(root)
			continue
		}
		found := false
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				found = true
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("gofront: %w", err)
		}
		if !found {
			unmatched = append(unmatched, pat)
		}
	}
	sort.Strings(dirs)
	sort.Strings(unmatched)
	return dirs, unmatched, nil
}

func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

// goFileNames lists the non-test Go files of a directory, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// loadDir parses and typechecks one directory as a package. Type errors
// are tolerated (recorded, extraction degrades); parse errors are not —
// without syntax there is nothing to extract.
func loadDir(dir string, opts Options) (*Package, error) {
	names, srcs, err := readGoFiles(dir)
	if err != nil {
		return nil, err
	}
	return loadFiles(dir, names, srcs, opts)
}

// readGoFiles reads the directory's non-test Go sources into memory —
// the same bytes the cache key hashes and the parser consumes, so a key
// always describes exactly what was analyzed.
func readGoFiles(dir string) ([]string, [][]byte, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no Go files")
	}
	srcs := make([][]byte, len(names))
	for i, name := range names {
		src, rerr := os.ReadFile(filepath.Join(dir, name))
		if rerr != nil {
			return nil, nil, rerr
		}
		srcs[i] = src
	}
	return names, srcs, nil
}

// typeBundle is a reusable (FileSet, source importer) pair. The source
// importer re-typechecks every transitive import from source, which for
// sync/atomic-importing packages costs far more than the package's own
// analysis; reusing the importer amortizes that across packages (its
// internal package cache persists), which is where most of the cold
// -go-lint speedup comes from. A bundle serves one goroutine at a time;
// the free list is a bounded channel (not a sync.Pool, whose GC-driven
// drops would make reuse timing-dependent), so a burst of parallel
// loads cannot pin unbounded typechecked state either.
type typeBundle struct {
	fset *token.FileSet
	imp  types.Importer
}

var bundleFree = make(chan *typeBundle, 8)

func acquireBundle(opts Options) *typeBundle {
	if !opts.FreshImporters {
		select {
		case b := <-bundleFree:
			return b
		default:
		}
	}
	fset := token.NewFileSet()
	return &typeBundle{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

func releaseBundle(b *typeBundle, opts Options) {
	if opts.FreshImporters {
		return
	}
	select {
	case bundleFree <- b:
	default:
	}
}

// loadFiles parses and typechecks an in-memory package. Sharing a pooled
// FileSet across packages is safe for extraction: positions are only
// ever compared within one package (a package's files parse
// consecutively, so their offsets are mutually ordered) and nothing
// downstream renders absolute offsets.
func loadFiles(dir string, names []string, srcs [][]byte, opts Options) (*Package, error) {
	bundle := acquireBundle(opts)
	defer releaseBundle(bundle, opts)
	fset := bundle.fset
	var files []*ast.File
	pkgName := ""
	for i, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), srcs[i], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			// Mixed-package directory (e.g. main + lib): keep the first
			// package name seen, drop the stragglers.
			continue
		}
		files = append(files, f)
	}
	sizes := types.SizesFor("gc", opts.GOARCH)
	if sizes == nil {
		return nil, fmt.Errorf("unknown GOARCH %q", opts.GOARCH)
	}
	pkg := &Package{Dir: dir, Name: pkgName, Fset: fset, Files: files, Sizes: sizes}
	conf := types.Config{
		Importer:         bundle.imp,
		Sizes:            sizes,
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error: func(err error) {
			pkg.TypeErrs = append(pkg.TypeErrs, err)
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	// Check reports the first error even with an Error handler set; the
	// handler has collected everything, so the return is advisory.
	tpkg, _ := conf.Check(dir, fset, files, info)
	pkg.Pkg = tpkg
	pkg.Info = info
	return pkg, nil
}

// Report is the lint outcome for one package.
type Report struct {
	// Package is the display path (the resolved directory).
	Package string
	// Findings are ranked staticshare findings, message text unprefixed.
	Findings []staticshare.Finding
	// Suggestions hold fieldalignment-style reordering diffs for structs
	// with certain co-located write-sharing.
	Suggestions []Suggestion
	// NumStructs, NumThreads and Notes summarize the lowered model for
	// rendering — carried on the report so cached replays (which have no
	// Model) render identically to fresh analysis.
	NumStructs int
	NumThreads int
	Notes      []string
	// Model is the lowered program, nil when Err is set or the report
	// was replayed from the cache; tests and the CLI's -lint-json reuse
	// it.
	Model *Model
	// CacheHit marks a report served from Options.Cache.
	CacheHit bool
	// Err is a per-package load or analysis failure: the run degrades to
	// a lint-skipped finding instead of dying.
	Err error
}

// Run loads every package the patterns name and lints each, in parallel
// with gather-by-index (byte-identical output at any -j): the one-call
// frontend the CLI wraps. Per-package failures and patterns matching no
// packages degrade into Reports with Err set (lint-skipped findings via
// AllFindings) so the caller decides the exit policy; only an empty
// pattern set errors. With Options.Cache set, package reports replay
// from the content-addressed cache instead of re-analyzing.
func Run(patterns []string, opts Options) ([]*Report, error) {
	opts = opts.withDefaults()
	dirs, unmatched, err := expandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 && len(unmatched) == 0 {
		return nil, fmt.Errorf("gofront: no Go packages match %v", patterns)
	}
	reports := make([]*Report, 0, len(dirs)+len(unmatched))
	for _, pat := range unmatched {
		reports = append(reports, &Report{
			Package: pat,
			Err:     fmt.Errorf("%s: pattern matched no Go packages", pat),
		})
	}
	linted, _ := parallel.Map(len(dirs), func(i int) (*Report, error) {
		return lintDir(dirs[i], opts), nil
	})
	reports = append(reports, linted...)
	sort.Slice(reports, func(i, j int) bool { return reports[i].Package < reports[j].Package })
	return reports, nil
}

// LintPackage extracts, lowers and lints one loaded package.
func LintPackage(pkg *Package, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{Package: pkg.Dir}
	model, err := Extract(pkg, opts)
	if err != nil {
		rep.Err = fmt.Errorf("%s: %w", pkg.Dir, err)
		return rep
	}
	rep.Model = model
	rep.NumStructs = len(model.Structs)
	rep.NumThreads = len(model.File.Threads)
	rep.Notes = model.Notes
	lint := staticshare.LintFile
	if opts.ExactClassify {
		lint = staticshare.LintFileExact
	}
	findings, res, err := lint(model.File, opts.LineSize)
	if err != nil {
		rep.Err = fmt.Errorf("%s: %w", pkg.Dir, err)
		return rep
	}
	rep.Findings = findings
	rep.Suggestions = Suggest(model, res, opts.LineSize)
	return rep
}

// AllFindings flattens the reports into one ranked finding list with
// package paths prefixed to each message, mapping per-package errors to
// lint-skipped diagnostics — the JSON/exit-code view the CLI shares with
// -lint-dir.
func AllFindings(reports []*Report) []staticshare.Finding {
	var all []staticshare.Finding
	for _, r := range reports {
		if r.Err != nil {
			all = append(all, staticshare.Finding{
				Severity: diag.Degraded,
				Code:     staticshare.CodeLintSkipped,
				Message:  fmt.Sprintf("%s: skipped: %s", r.Package, strings.TrimPrefix(r.Err.Error(), r.Package+": ")),
			})
			continue
		}
		for _, f := range r.Findings {
			f.Message = r.Package + ": " + f.Message
			all = append(all, f)
		}
	}
	staticshare.Rank(all)
	return all
}

// RenderText renders the reports for the terminal, byte-deterministic
// across runs and load orders.
func RenderText(reports []*Report) string {
	var b strings.Builder
	clean := 0
	for _, r := range reports {
		if r.Err == nil && len(r.Findings) == 0 {
			clean++
		}
	}
	fmt.Fprintf(&b, "go-lint: %d package(s), %d clean\n", len(reports), clean)
	for _, r := range reports {
		switch {
		case r.Err != nil:
			fmt.Fprintf(&b, "package %s: skipped: %s\n", r.Package, strings.TrimPrefix(r.Err.Error(), r.Package+": "))
		case len(r.Findings) == 0:
			fmt.Fprintf(&b, "package %s: clean (%d struct(s), %d thread(s))\n",
				r.Package, r.NumStructs, r.NumThreads)
		default:
			fmt.Fprintf(&b, "package %s: %d finding(s)\n", r.Package, len(r.Findings))
			for _, f := range r.Findings {
				fmt.Fprintf(&b, "  %-8s %-28s %s\n", f.Severity, f.Code, f.Message)
			}
			for _, s := range r.Suggestions {
				fmt.Fprintf(&b, "\n  suggested reordering for struct %s:\n", s.Struct)
				for _, line := range strings.Split(strings.TrimRight(s.Diff, "\n"), "\n") {
					b.WriteString("  " + line + "\n")
				}
			}
		}
		for _, note := range r.Notes {
			fmt.Fprintf(&b, "  note: %s\n", note)
		}
	}
	return b.String()
}

// Format returns the lowered program in irtext syntax: the bridge into
// every DSL-driven tool (and the fuzz corpora).
func (m *Model) Format() string { return irtext.Format(m.File) }

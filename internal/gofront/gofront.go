// Package gofront is the Go-package frontend for the static sharing
// analysis: it loads real Go packages with go/parser + go/types (stdlib
// only — no go/packages dependency, no `go list` subprocess), extracts
// struct definitions with their field sizes and alignments, derives
// per-goroutine field-access footprints (`go` statements as declared
// threads, sync.Mutex/RWMutex Lock..Unlock call regions as lock-held
// regions, same-package calls followed interprocedurally), and lowers
// the result into internal/ir — so staticshare classification, the
// CycleLoss prior and the lint findings apply to actual Go code
// unchanged. docs/GOFRONT.md states the extraction rules and the known
// unsoundness relative to the DSL path.
package gofront

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"structlayout/internal/diag"
	"structlayout/internal/irtext"
	"structlayout/internal/staticshare"
)

// Options parameterize loading and lowering. The zero value is usable:
// every field has a working default.
type Options struct {
	// GOARCH selects the size/alignment model (default amd64, the
	// paper's 64-bit machines).
	GOARCH string
	// LineSize is the coherence-line size the linter checks co-location
	// against (default 128, matching the DSL lint path).
	LineSize int
	// LoopTrip is the assumed trip count for Go loops, whose bounds are
	// rarely static (default 8). It only weights finding ranks.
	LoopTrip int64
	// SpawnsPerLoopGo is how many threads model a `go` statement inside
	// a loop (default 2: enough for distinct-thread conflicts to exist).
	SpawnsPerLoopGo int
	// MaxThreads caps the modeled threads per package (default 16,
	// keeping per-CPU instance indices below the named-instance base).
	MaxThreads int
}

func (o Options) withDefaults() Options {
	if o.GOARCH == "" {
		o.GOARCH = "amd64"
	}
	if o.LineSize <= 0 {
		o.LineSize = 128
	}
	if o.LoopTrip <= 0 {
		o.LoopTrip = 8
	}
	if o.SpawnsPerLoopGo <= 0 {
		o.SpawnsPerLoopGo = 2
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 16
	}
	return o
}

// Package is one loaded, type-checked Go package.
type Package struct {
	// Dir is the package directory as resolved from the pattern — the
	// stable display name for findings.
	Dir   string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
	// TypeErrs collects tolerated type errors (unresolved imports of
	// non-stdlib packages, and so on). Extraction degrades around them.
	TypeErrs []error
}

// Load resolves package patterns to directories and parses + typechecks
// each. A pattern is a directory path, or a path ending in "/..." which
// walks the subtree for every directory holding Go files (skipping
// dot/underscore directories, testdata, and _test.go files — the same
// shape the go tool gives the pattern). Results are sorted by directory,
// independent of pattern order, and deduplicated. Per-package load
// failures come back as a *LoadError in the package slot's place only
// when nothing loads; partial failures are the caller's to surface (see
// Run).
func Load(patterns []string, opts Options) ([]*Package, []error, error) {
	opts = opts.withDefaults()
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, nil, err
	}
	var pkgs []*Package
	var loadErrs []error
	for _, dir := range dirs {
		pkg, perr := loadDir(dir, opts)
		if perr != nil {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %w", dir, perr))
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 && len(loadErrs) == 0 {
		return nil, nil, fmt.Errorf("gofront: no Go packages match %v", patterns)
	}
	return pkgs, loadErrs, nil
}

// expandPatterns resolves pattern strings to a sorted, deduplicated
// directory list.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		clean := filepath.Clean(dir)
		if !seen[clean] {
			seen[clean] = true
			dirs = append(dirs, clean)
		}
	}
	for _, pat := range patterns {
		if pat == "" {
			continue
		}
		root, recursive := pat, false
		if strings.HasSuffix(pat, "/...") {
			root, recursive = strings.TrimSuffix(pat, "/..."), true
			if root == "" {
				root = "."
			}
		}
		fi, err := os.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("gofront: %w", err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("gofront: %s is not a directory", root)
		}
		if !recursive {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("gofront: %w", err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

// goFileNames lists the non-test Go files of a directory, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// loadDir parses and typechecks one directory as a package. Type errors
// are tolerated (recorded, extraction degrades); parse errors are not —
// without syntax there is nothing to extract.
func loadDir(dir string, opts Options) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files")
	}
	fset := token.NewFileSet()
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			// Mixed-package directory (e.g. main + lib): keep the first
			// package name seen, drop the stragglers.
			continue
		}
		files = append(files, f)
	}
	sizes := types.SizesFor("gc", opts.GOARCH)
	if sizes == nil {
		return nil, fmt.Errorf("unknown GOARCH %q", opts.GOARCH)
	}
	pkg := &Package{Dir: dir, Name: pkgName, Fset: fset, Files: files, Sizes: sizes}
	conf := types.Config{
		Importer:         importer.ForCompiler(fset, "source", nil),
		Sizes:            sizes,
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error: func(err error) {
			pkg.TypeErrs = append(pkg.TypeErrs, err)
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	// Check reports the first error even with an Error handler set; the
	// handler has collected everything, so the return is advisory.
	tpkg, _ := conf.Check(dir, fset, files, info)
	pkg.Pkg = tpkg
	pkg.Info = info
	return pkg, nil
}

// Report is the lint outcome for one package.
type Report struct {
	// Package is the display path (the resolved directory).
	Package string
	// Findings are ranked staticshare findings, message text unprefixed.
	Findings []staticshare.Finding
	// Suggestions hold fieldalignment-style reordering diffs for structs
	// with certain co-located write-sharing.
	Suggestions []Suggestion
	// Model is the lowered program (nil when Err is set); tests and the
	// CLI's -lint-json reuse it.
	Model *Model
	// Err is a per-package load or analysis failure: the run degrades to
	// a lint-skipped finding instead of dying.
	Err error
}

// Run loads every package the patterns name and lints each: the one-call
// frontend the CLI wraps. Per-package failures degrade into a Report
// with Err set (and a lint-skipped finding from AllFindings); only a run
// where nothing loads at all returns an error.
func Run(patterns []string, opts Options) ([]*Report, error) {
	opts = opts.withDefaults()
	pkgs, loadErrs, err := Load(patterns, opts)
	if err != nil {
		return nil, err
	}
	var reports []*Report
	for _, lerr := range loadErrs {
		reports = append(reports, &Report{Package: loadErrPath(lerr), Err: lerr})
	}
	for _, pkg := range pkgs {
		reports = append(reports, LintPackage(pkg, opts))
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Package < reports[j].Package })
	analyzed := 0
	for _, r := range reports {
		if r.Err == nil {
			analyzed++
		}
	}
	if analyzed == 0 {
		return nil, fmt.Errorf("gofront: every package failed to lint: %v", firstErr(reports))
	}
	return reports, nil
}

func loadErrPath(err error) string {
	s := err.Error()
	if i := strings.Index(s, ":"); i > 0 {
		return s[:i]
	}
	return s
}

func firstErr(reports []*Report) error {
	for _, r := range reports {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// LintPackage extracts, lowers and lints one loaded package.
func LintPackage(pkg *Package, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{Package: pkg.Dir}
	model, err := Extract(pkg, opts)
	if err != nil {
		rep.Err = fmt.Errorf("%s: %w", pkg.Dir, err)
		return rep
	}
	rep.Model = model
	findings, res, err := staticshare.LintFile(model.File, opts.LineSize)
	if err != nil {
		rep.Err = fmt.Errorf("%s: %w", pkg.Dir, err)
		return rep
	}
	rep.Findings = findings
	rep.Suggestions = Suggest(model, res, opts.LineSize)
	return rep
}

// AllFindings flattens the reports into one ranked finding list with
// package paths prefixed to each message, mapping per-package errors to
// lint-skipped diagnostics — the JSON/exit-code view the CLI shares with
// -lint-dir.
func AllFindings(reports []*Report) []staticshare.Finding {
	var all []staticshare.Finding
	for _, r := range reports {
		if r.Err != nil {
			all = append(all, staticshare.Finding{
				Severity: diag.Degraded,
				Code:     staticshare.CodeLintSkipped,
				Message:  fmt.Sprintf("%s: skipped: %s", r.Package, strings.TrimPrefix(r.Err.Error(), r.Package+": ")),
			})
			continue
		}
		for _, f := range r.Findings {
			f.Message = r.Package + ": " + f.Message
			all = append(all, f)
		}
	}
	staticshare.Rank(all)
	return all
}

// RenderText renders the reports for the terminal, byte-deterministic
// across runs and load orders.
func RenderText(reports []*Report) string {
	var b strings.Builder
	clean := 0
	for _, r := range reports {
		if r.Err == nil && len(r.Findings) == 0 {
			clean++
		}
	}
	fmt.Fprintf(&b, "go-lint: %d package(s), %d clean\n", len(reports), clean)
	for _, r := range reports {
		switch {
		case r.Err != nil:
			fmt.Fprintf(&b, "package %s: skipped: %s\n", r.Package, strings.TrimPrefix(r.Err.Error(), r.Package+": "))
		case len(r.Findings) == 0:
			fmt.Fprintf(&b, "package %s: clean (%d struct(s), %d thread(s))\n",
				r.Package, len(r.Model.Structs), len(r.Model.File.Threads))
		default:
			fmt.Fprintf(&b, "package %s: %d finding(s)\n", r.Package, len(r.Findings))
			for _, f := range r.Findings {
				fmt.Fprintf(&b, "  %-8s %-28s %s\n", f.Severity, f.Code, f.Message)
			}
			for _, s := range r.Suggestions {
				fmt.Fprintf(&b, "\n  suggested reordering for struct %s:\n", s.Struct)
				for _, line := range strings.Split(strings.TrimRight(s.Diff, "\n"), "\n") {
					b.WriteString("  " + line + "\n")
				}
			}
		}
		for _, note := range modelNotes(r) {
			fmt.Fprintf(&b, "  note: %s\n", note)
		}
	}
	return b.String()
}

func modelNotes(r *Report) []string {
	if r.Model == nil {
		return nil
	}
	return r.Model.Notes
}

// Format returns the lowered program in irtext syntax: the bridge into
// every DSL-driven tool (and the fuzz corpora).
func (m *Model) Format() string { return irtext.Format(m.File) }

package gofront

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"structlayout/internal/irtext"
	"structlayout/internal/staticshare"
)

var update = flag.Bool("update", false, "rewrite the lowered-program goldens and the derived fuzz corpus entries")

// writePkg materializes a single-file package under a temp dir and
// returns its directory.
func writePkg(t *testing.T, name, src string) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func lintSrc(t *testing.T, name, src string) *Report {
	t.Helper()
	dir := writePkg(t, name, src)
	pkgs, loadErrs, err := Load([]string{dir}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range loadErrs {
		t.Fatalf("load error: %v", e)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	rep := LintPackage(pkgs[0], Options{})
	if rep.Err != nil {
		t.Fatalf("lint failed: %v", rep.Err)
	}
	return rep
}

func hasCode(findings []staticshare.Finding, code string) bool {
	for _, f := range findings {
		if f.Code == code {
			return true
		}
	}
	return false
}

// TestExamplesGolden pins the two golden packages: the false-sharing one
// must produce a static-false-sharing finding with a reordering
// suggestion, the clean one nothing.
func TestExamplesGolden(t *testing.T) {
	reports, err := Run([]string{"../../examples/gofront/..."}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2 (clean + falseshare)", len(reports))
	}
	var clean, bad *Report
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("package %s skipped: %v", r.Package, r.Err)
		}
		switch filepath.Base(r.Package) {
		case "clean":
			clean = r
		case "falseshare":
			bad = r
		}
	}
	if clean == nil || bad == nil {
		t.Fatal("expected reports for both example packages")
	}
	if len(clean.Findings) != 0 {
		t.Errorf("clean package has findings: %+v", clean.Findings)
	}
	if !hasCode(bad.Findings, staticshare.CodeFalseSharing) {
		t.Errorf("falseshare package lacks %s: %+v", staticshare.CodeFalseSharing, bad.Findings)
	}
	if len(bad.Suggestions) == 0 {
		t.Error("falseshare package has no reordering suggestion")
	} else {
		diff := bad.Suggestions[0].Diff
		for _, want := range []string{"--- Metrics (declared)", "+++ Metrics (suggested", "[", "]byte"} {
			if !strings.Contains(diff, want) {
				t.Errorf("suggestion diff missing %q:\n%s", want, diff)
			}
		}
	}
}

// TestExtractStructsAndThreads pins the extraction basics on a small
// synthetic package.
func TestExtractStructsAndThreads(t *testing.T) {
	rep := lintSrc(t, "basics", `
package basics

type S struct {
	a int64
	b int32
	c byte
}

var g S

func Run() {
	go writerA()
	go writerB()
}

func writerA() { g.a = 1 }
func writerB() { g.b = 2 }
`)
	m := rep.Model
	if len(m.Structs) != 1 || m.Structs[0].Name != "S" {
		t.Fatalf("structs = %+v", m.Structs)
	}
	st := m.Structs[0].IR
	wantSizes := []int{8, 4, 1}
	wantAligns := []int{8, 4, 1}
	for i, f := range st.Fields {
		if f.Size != wantSizes[i] || f.Align != wantAligns[i] {
			t.Errorf("field %s: size %d align %d, want %d/%d", f.Name, f.Size, f.Align, wantSizes[i], wantAligns[i])
		}
	}
	// Run's two top-level `go` sites lower to structured spawn
	// statements, so only Run itself is declared; the workers become
	// spawned tasks discovered by the analysis.
	if got := len(m.File.Threads); got != 1 {
		t.Errorf("got %d declared threads, want 1 (workers are structured spawns)", got)
	}
	// Distinct-field writes to one shared instance on one line must be
	// flagged as certain false sharing.
	if !hasCode(rep.Findings, staticshare.CodeFalseSharing) {
		t.Errorf("no %s on shared-global writers: %+v", staticshare.CodeFalseSharing, rep.Findings)
	}
}

// TestLockRegions pins that Lock..Unlock call regions serialize the
// fields accessed inside them.
func TestLockRegions(t *testing.T) {
	rep := lintSrc(t, "locked", `
package locked

import "sync"

type Box struct {
	mu sync.Mutex
	_  [120]byte // keep the data off the mutex line
	n  int64
}

var b Box

func Run() {
	go add()
	go add()
}

func add() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
`)
	// n is only written under b.mu: no certain unlocked write sharing on
	// it, so no false-sharing finding for the pair (mu is padded away).
	if hasCode(rep.Findings, staticshare.CodeFalseSharing) {
		t.Errorf("lock-serialized counter flagged as false sharing: %+v", rep.Findings)
	}
}

// TestCapturedLocalBecomesShared pins closure capture: a struct local
// captured by a spawned literal is a shared instance, not frame-private.
func TestCapturedLocalBecomesShared(t *testing.T) {
	rep := lintSrc(t, "capture", `
package capture

type C struct {
	x int64
	y int64
}

func Run() {
	var c C
	go func() { c.x = 1 }()
	go func() { c.y = 2 }()
	c.x = 3
}
`)
	if !hasCode(rep.Findings, staticshare.CodeFalseSharing) {
		t.Errorf("captured local writes not flagged: %+v", rep.Findings)
	}
}

// TestValueParamStaysPrivate pins the value-copy model: passing a struct
// by value gives the callee its own copy, so no sharing.
func TestValueParamStaysPrivate(t *testing.T) {
	rep := lintSrc(t, "valparam", `
package valparam

type V struct {
	x int64
	y int64
}

func Run() {
	var v V
	go use(v)
	go use(v)
}

func use(v V) { v.x = 1; v.y = 2 }
`)
	if hasCode(rep.Findings, staticshare.CodeFalseSharing) {
		t.Errorf("value-copied struct flagged as shared: %+v", rep.Findings)
	}
}

// TestPointerParamsBindInstances pins interprocedural instance passing:
// two goroutines handed the same *T conflict, two handed distinct *T
// instances do not.
func TestPointerParamsBindInstances(t *testing.T) {
	rep := lintSrc(t, "ptrparam", `
package ptrparam

type P struct {
	x int64
	y int64
}

var one, two P

func Conflict() {
	go write(&one)
	go write(&one)
}

func Disjoint() {
	go write(&two)
	go write(&one)
}

func write(p *P) { p.x = 1; p.y = 2 }
`)
	if !hasCode(rep.Findings, staticshare.CodeFalseSharing) {
		t.Errorf("same-instance pointer params not flagged: %+v", rep.Findings)
	}
}

// TestModelFormatRoundTrips pins that every lowered model formats to
// parseable irtext — the bridge the fuzz corpus and -lint-json rely on.
func TestModelFormatRoundTrips(t *testing.T) {
	reports, err := Run([]string{"../../examples/gofront/..."}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("package %s skipped: %v", r.Package, r.Err)
		}
		text := r.Model.Format()
		if _, perr := irtext.Parse(text); perr != nil {
			t.Errorf("package %s: lowered model does not re-parse: %v\n%s", r.Package, perr, text)
		}
	}
}

// TestLoweredGoldens pins the exact lowering of the example packages as
// committed irtext programs. The same files seed staticshare's FuzzLint
// and (as corpus entries regenerated with -update) irtext's FuzzParse,
// so the fuzzers always explore from realistic gofront output. Run
// `go test ./internal/gofront -run TestLoweredGoldens -update` after a
// deliberate lowering change.
func TestLoweredGoldens(t *testing.T) {
	reports, err := Run([]string{"../../examples/gofront/..."}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("package %s skipped: %v", r.Package, r.Err)
		}
		base := filepath.Base(r.Package)
		text := r.Model.Format()
		golden := filepath.Join("testdata", "lowered_"+base+".slp")
		if *update {
			if err := os.WriteFile(golden, []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
			corpus := filepath.Join("..", "irtext", "testdata", "fuzz", "FuzzParse", "gofront_"+base)
			entry := fmt.Sprintf("go test fuzz v1\nstring(%s)\n", strconv.Quote(text))
			if err := os.WriteFile(corpus, []byte(entry), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (regenerate with -update): %v", err)
		}
		if string(want) != text {
			t.Errorf("lowering of %s drifted from %s (regenerate with -update if deliberate):\ngot:\n%s\nwant:\n%s",
				r.Package, golden, text, want)
		}
	}
}

// TestRunDeterminism pins byte-identical output across runs and load
// orders — the satellite-3 contract for -go-lint.
func TestRunDeterminism(t *testing.T) {
	patterns := []string{"../../examples/gofront/falseshare", "../../examples/gofront/clean"}
	reversed := []string{patterns[1], patterns[0]}
	render := func(pats []string) string {
		t.Helper()
		reports, err := Run(pats, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return RenderText(reports)
	}
	a, b, c := render(patterns), render(patterns), render(reversed)
	if a != b {
		t.Errorf("two identical runs differ:\n--- run1\n%s\n--- run2\n%s", a, b)
	}
	if a != c {
		t.Errorf("pattern order changes output:\n--- fwd\n%s\n--- rev\n%s", a, c)
	}
}

// TestLoadErrorsDegrade pins that an unparseable package inside a
// pattern set degrades to a skipped report, not a dead run.
func TestLoadErrorsDegrade(t *testing.T) {
	root := t.TempDir()
	good := filepath.Join(root, "good")
	bad := filepath.Join(root, "bad")
	for _, d := range []string{good, bad} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(good, "g.go"), []byte("package good\n\nfunc F() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "b.go"), []byte("package bad\n\nfunc {{{\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reports, err := Run([]string{root + "/..."}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var skipped, ok int
	for _, r := range reports {
		if r.Err != nil {
			skipped++
		} else {
			ok++
		}
	}
	if skipped != 1 || ok != 1 {
		t.Fatalf("got %d skipped / %d ok reports, want 1/1", skipped, ok)
	}
	all := AllFindings(reports)
	if !hasCode(all, staticshare.CodeLintSkipped) {
		t.Errorf("no lint-skipped finding for the bad package: %+v", all)
	}
}

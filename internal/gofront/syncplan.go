package gofront

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// structuredSpawn is a `go` site lowered as a structured spawn
// statement instead of a flat thread declaration. cpu is assigned by
// declareThreads so numbering stays continuous with flat threads; -1
// until then.
type structuredSpawn struct {
	sp     *spawn
	handle string
	params []int
	cpu    int
}

// planSync decides which goroutine structure lowers to the DSL's
// structured sync statements (spawn/join/send/recv) rather than the
// flat all-threads-overlap model. Flat is the sound fallback, so every
// rule here only needs to be sufficient, never complete — anything
// unprovable simply stays flat. Sufficiency matters in one direction
// only: a claimed ordering (join, channel edge) must hold in every real
// execution, while an unjoined structured spawn merely starts the child
// at the `go` point, which is exact.
func (e *extractor) planSync() {
	e.spawnPlan = make(map[*ast.GoStmt]*structuredSpawn)
	e.joinAt = make(map[ast.Stmt][]string)
	e.sendAt = make(map[ast.Stmt]string)
	e.recvAt = make(map[ast.Stmt]string)
	// Sync statements are rejected by ir.Finalize inside procedures that
	// are called, so emission is gated on never-called — computed from
	// the pre-breakCycles call lists, which over-approximates reachable
	// calls and is therefore safe.
	called := make(map[string]bool)
	for _, fn := range e.funcs {
		for _, c := range fn.calls {
			called[c] = true
		}
	}
	handles := 0
	for _, fn := range e.funcs {
		e.planSpawns(fn, called, &handles)
	}
	e.planChannels(called)
}

// planSpawns structures the eligible `go` sites of one function and,
// where a sync.WaitGroup provably joins exactly those sites, attaches
// join edges to its Wait call.
//
// A `go` site is structured when it sits directly in the function's
// top-level statement list (the DSL allows sync statements only
// there), is not in a loop, resolves to a same-package leaf callee (no
// nested `go`: keeps the spawn graph a tree), and the spawner itself is
// never called.
//
// Joins require real proof: one top-level Wait, every Add top-level
// with a constant argument, the Add sum equal to the number of
// structured spawns whose callee calls Done exactly once (top-level or
// deferred), every spawn site textually before the Wait, and no other
// use of the WaitGroup anywhere in the package. Any unaccounted use —
// an Add in a loop, the group passed to a helper, a Done in a flat
// thread — rejects the joins while keeping the spawns.
func (e *extractor) planSpawns(fn *goFunc, called map[string]bool, handles *int) {
	if len(fn.spawns) == 0 || called[fn.proc] {
		return
	}
	site := make(map[*ast.GoStmt]*spawn, len(fn.spawns))
	for _, sp := range fn.spawns {
		if sp.stmt != nil && !sp.inLoop {
			site[sp.stmt] = sp
		}
	}
	type wgInfo struct {
		addSum  int64
		addBad  bool
		waits   []ast.Stmt
		waitPos int
		accepts map[*ast.Ident]bool
	}
	wgs := make(map[*types.Var]*wgInfo)
	info := func(v *types.Var) *wgInfo {
		w := wgs[v]
		if w == nil {
			w = &wgInfo{accepts: make(map[*ast.Ident]bool)}
			wgs[v] = w
		}
		return w
	}
	type plannedSpawn struct {
		pl  *structuredSpawn
		pos int
	}
	var planned []plannedSpawn
	for i, stmt := range fn.body.List {
		switch s := stmt.(type) {
		case *ast.GoStmt:
			sp := site[s]
			if sp == nil || sp.callee == fn || len(sp.callee.spawns) > 0 {
				continue
			}
			pl := &structuredSpawn{sp: sp, handle: fmt.Sprintf("g%d", *handles), params: e.spawnParams(sp), cpu: -1}
			*handles++
			e.spawnPlan[s] = pl
			planned = append(planned, plannedSpawn{pl, i})
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			v, id, method, ok := e.waitGroupCall(call)
			if !ok {
				continue
			}
			w := info(v)
			switch method {
			case "Add":
				if k, ok := e.constArg(call); ok {
					w.addSum += k
					w.accepts[id] = true
				} else {
					w.addBad = true
				}
			case "Wait":
				w.waits = append(w.waits, stmt)
				w.waitPos = i
			}
		}
	}
	for v, w := range wgs {
		if w.addBad || len(w.waits) != 1 {
			continue
		}
		// Re-find the Wait's receiver ident to whitelist it.
		if call, ok := w.waits[0].(*ast.ExprStmt).X.(*ast.CallExpr); ok {
			if _, id, _, ok := e.waitGroupCall(call); ok {
				w.accepts[id] = true
			}
		}
		var hs []string
		ordered := true
		for _, ps := range planned {
			doneID := e.soleDoneIdent(ps.pl.sp.callee, v)
			if doneID == nil {
				continue
			}
			if ps.pos > w.waitPos {
				// A worker spawned after the Wait shares the group's
				// counter; the arithmetic proof no longer covers it.
				ordered = false
				break
			}
			w.accepts[doneID] = true
			hs = append(hs, ps.pl.handle)
		}
		if !ordered || len(hs) == 0 || int64(len(hs)) != w.addSum {
			continue
		}
		if !e.usesWhitelisted(v, w.accepts) {
			continue
		}
		e.joinAt[w.waits[0]] = hs
	}
}

// planChannels finds channels provably usable as single rendezvous
// edges: an unbuffered make-initialized variable whose every use in the
// package is exactly one top-level send and one top-level receive, in
// distinct never-called functions. close(), select, range, buffered
// makes or passing the channel around all disqualify it — any of those
// lets the receive complete or repeat without the matching send.
func (e *extractor) planChannels(called map[string]bool) {
	type endpoint struct {
		fn   *goFunc
		stmt ast.Stmt
		id   *ast.Ident
	}
	type chanInfo struct {
		sends, recvs []endpoint
	}
	infos := make(map[*types.Var]*chanInfo)
	get := func(v *types.Var) *chanInfo {
		ci := infos[v]
		if ci == nil {
			ci = &chanInfo{}
			infos[v] = ci
		}
		return ci
	}
	for _, fn := range e.funcs {
		for _, stmt := range fn.body.List {
			switch s := stmt.(type) {
			case *ast.SendStmt:
				if v, id := e.chanVarOf(s.Chan); v != nil {
					get(v).sends = append(get(v).sends, endpoint{fn, stmt, id})
				}
			case *ast.ExprStmt:
				if v, id := e.recvOf(s.X); v != nil {
					get(v).recvs = append(get(v).recvs, endpoint{fn, stmt, id})
				}
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 && len(s.Lhs) == 1 {
					if v, id := e.recvOf(s.Rhs[0]); v != nil {
						get(v).recvs = append(get(v).recvs, endpoint{fn, stmt, id})
					}
				}
			}
		}
	}
	vars := make([]*types.Var, 0, len(infos))
	for v := range infos {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	n := 0
	for _, v := range vars {
		ci := infos[v]
		if len(ci.sends) != 1 || len(ci.recvs) != 1 {
			continue
		}
		snd, rcv := ci.sends[0], ci.recvs[0]
		if snd.fn == rcv.fn || called[snd.fn.proc] || called[rcv.fn.proc] {
			continue
		}
		if !e.unbufferedMake(v) {
			continue
		}
		if !e.usesWhitelisted(v, map[*ast.Ident]bool{snd.id: true, rcv.id: true}) {
			continue
		}
		name := fmt.Sprintf("ch%d", n)
		n++
		e.sendAt[snd.stmt] = name
		e.recvAt[rcv.stmt] = name
	}
}

// demoteSpawn reverts a structured spawn to the flat model (thread cap
// reached), dropping any join that referenced its handle.
func (e *extractor) demoteSpawn(pl *structuredSpawn) {
	delete(e.spawnPlan, pl.sp.stmt)
	for stmt, hs := range e.joinAt {
		out := hs[:0]
		for _, h := range hs {
			if h != pl.handle {
				out = append(out, h)
			}
		}
		if len(out) == 0 {
			delete(e.joinAt, stmt)
		} else {
			e.joinAt[stmt] = out
		}
	}
}

// waitGroupCall recognizes wg.Add/Done/Wait on a bare sync.WaitGroup
// variable (package-level or captured local), returning the variable
// and the receiver ident for whitelisting.
func (e *extractor) waitGroupCall(call *ast.CallExpr) (*types.Var, *ast.Ident, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil, "", false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return nil, nil, "", false
	}
	base := ast.Unparen(sel.X)
	if u, ok := base.(*ast.UnaryExpr); ok && u.Op == token.AND {
		base = ast.Unparen(u.X)
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return nil, nil, "", false
	}
	v, ok := e.objOf(id).(*types.Var)
	if !ok || !isWaitGroup(v.Type()) {
		return nil, nil, "", false
	}
	return v, id, sel.Sel.Name, true
}

func isWaitGroup(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// constArg returns the single argument's constant integer value.
func (e *extractor) constArg(call *ast.CallExpr) (int64, bool) {
	if len(call.Args) != 1 {
		return 0, false
	}
	tv, ok := e.pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// soleDoneIdent returns the receiver ident of the callee's single
// wg.Done() call when that call is top-level or a top-level defer —
// the shapes that guarantee exactly one Done per task execution.
func (e *extractor) soleDoneIdent(callee *goFunc, v *types.Var) *ast.Ident {
	var ids []*ast.Ident
	ast.Inspect(callee.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if w, id, m, ok := e.waitGroupCall(call); ok && w == v && m == "Done" {
				ids = append(ids, id)
			}
		}
		return true
	})
	if len(ids) != 1 {
		return nil
	}
	for _, stmt := range callee.body.List {
		var call *ast.CallExpr
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			call, _ = s.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = s.Call
		}
		if call == nil {
			continue
		}
		if w, id, m, ok := e.waitGroupCall(call); ok && w == v && m == "Done" && id == ids[0] {
			return id
		}
	}
	return nil
}

// usesWhitelisted reports whether every use of v in the package is one
// of the accepted idents. The scan covers whole files, so uses in
// package-level initializers and un-lowered bodies count too.
func (e *extractor) usesWhitelisted(v *types.Var, accepts map[*ast.Ident]bool) bool {
	good := true
	for _, f := range e.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if !good {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if e.pkg.Info.Uses[id] == v && !accepts[id] {
					good = false
				}
			}
			return true
		})
	}
	return good
}

// chanVarOf resolves a channel expression to its bare variable.
func (e *extractor) chanVarOf(expr ast.Expr) (*types.Var, *ast.Ident) {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	v, ok := e.objOf(id).(*types.Var)
	if !ok {
		return nil, nil
	}
	if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
		return nil, nil
	}
	return v, id
}

// recvOf matches a bare `<-ch` receive expression.
func (e *extractor) recvOf(expr ast.Expr) (*types.Var, *ast.Ident) {
	u, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return nil, nil
	}
	return e.chanVarOf(u.X)
}

// unbufferedMake reports whether v's declaration initializes it with an
// unbuffered make(chan T). A zero-valued declaration assigned later
// fails here or in the use whitelist, either way rejecting the channel.
func (e *extractor) unbufferedMake(v *types.Var) bool {
	found := false
	isMake := func(expr ast.Expr) bool {
		call, ok := ast.Unparen(expr).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return false
		}
		_, isBuiltin := e.pkg.Info.Uses[id].(*types.Builtin)
		return isBuiltin
	}
	for _, f := range e.pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			switch d := node.(type) {
			case *ast.ValueSpec:
				for i, name := range d.Names {
					if e.pkg.Info.Defs[name] == v && i < len(d.Values) && isMake(d.Values[i]) {
						found = true
					}
				}
			case *ast.AssignStmt:
				if d.Tok != token.DEFINE || len(d.Lhs) != len(d.Rhs) {
					return true
				}
				for i, lhs := range d.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && e.pkg.Info.Defs[id] == v && isMake(d.Rhs[i]) {
						found = true
					}
				}
			}
			return true
		})
	}
	return found
}

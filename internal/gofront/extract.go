package gofront

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"structlayout/internal/ir"
	"structlayout/internal/irtext"
)

// instBase is the first instance index handed to named objects (package
// vars, captured locals). Per-CPU instances resolve to thread CPUs, which
// MaxThreads keeps below this base, so the two index spaces never
// collide and declared arena counts keep every distinctness proof exact.
const instBase = 64

// unknownSlot is the parameter slot used for instance expressions the
// frontend cannot resolve (slice/map elements, pointers from other
// packages, nested objects). No thread ever binds it, so staticshare
// sees the access as possibly-overlapping — conservative, never certain.
const unknownSlot = 1 << 20

// Model is the lowered form of one Go package.
type Model struct {
	Pkg     *Package
	File    *irtext.File
	Structs []*StructDef
	// Notes record constructs the extraction dropped or approximated,
	// deterministically ordered; they surface in the CLI output so a
	// silent cap never reads as full coverage.
	Notes []string
}

// StructDef ties an IR struct to its Go declaration.
type StructDef struct {
	// Name is the IR struct name; GoName the declared Go type name
	// (equal unless sanitization had to rename).
	Name   string
	GoName string
	IR     *ir.StructType
	// FieldNames and FieldTypes give, per IR field index, the Go field
	// name and its rendered type expression (for suggestion diffs).
	FieldNames []string
	FieldTypes []string
}

// goFunc is one lowerable function body: a declared function or method,
// or a synthetic procedure for a `go func(){...}()` literal.
type goFunc struct {
	proc string // IR procedure name
	body *ast.BlockStmt
	sig  *types.Signature
	// paramSlot maps receiver (slot 0) and parameters (slots 1..) to
	// thread-parameter slots.
	paramSlot map[*types.Var]int
	// spawns lists the function's direct `go` statements in source
	// order; calls the resolved same-package callees (proc names).
	spawns []*spawn
	calls  []string
	lit    *ast.FuncLit // set for synthetic go-literal procs
}

type spawn struct {
	callee *goFunc
	recv   ast.Expr // method receiver at the spawn site, nil otherwise
	args   []ast.Expr
	inLoop bool
	stmt   *ast.GoStmt // the spawn site, for structured-emission planning
}

type extractor struct {
	pkg  *Package
	opts Options
	prog *ir.Program

	structs      []*StructDef
	structByType map[*types.TypeName]*StructDef

	funcs     []*goFunc
	funcByObj map[*types.Func]*goFunc

	// instIdx assigns shared instance indices to package-level struct
	// vars and goroutine-captured locals; lockField maps bare mutex vars
	// to fields of the synthetic locks struct.
	instIdx   map[*types.Var]int
	nextInst  int
	lockSt    *StructDef
	lockField map[*types.Var]string

	names    map[string]bool // taken IR identifiers
	dropped  map[[2]string]bool
	threads  []irtext.ThreadDecl
	notes    []string
	emitted  int // accesses/statements emitted by the current lowering
	deferred []func(*ir.Builder)

	// Structured-sync plan (see syncplan.go): `go` sites lowered as
	// spawn statements, WaitGroup Waits that become joins, and channel
	// endpoints that become rendezvous send/recv statements.
	spawnPlan map[*ast.GoStmt]*structuredSpawn
	joinAt    map[ast.Stmt][]string
	sendAt    map[ast.Stmt]string
	recvAt    map[ast.Stmt]string
}

// Extract lowers a loaded package into the IR plus its thread and arena
// declarations. Builder preconditions panic on programmer errors; for
// arbitrary input packages they are data errors, so a recover backstop
// converts them.
func Extract(pkg *Package, opts Options) (m *Model, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("gofront: extraction failed: %v", r)
		}
	}()
	opts = opts.withDefaults()
	e := &extractor{
		pkg:          pkg,
		opts:         opts,
		prog:         ir.NewProgram(sanitizeIdent(pkg.Name)),
		structByType: make(map[*types.TypeName]*StructDef),
		funcByObj:    make(map[*types.Func]*goFunc),
		instIdx:      make(map[*types.Var]int),
		lockField:    make(map[*types.Var]string),
		names:        make(map[string]bool),
		dropped:      make(map[[2]string]bool),
		nextInst:     instBase,
	}
	e.collectStructs()
	e.collectFuncs()
	for _, fn := range e.funcs {
		e.prescan(fn)
	}
	e.assignInstances()
	e.breakCycles()
	e.planSync()
	e.declareThreads()
	for _, fn := range e.funcs {
		e.lowerFunc(fn)
	}
	if err := e.prog.Finalize(); err != nil {
		return nil, fmt.Errorf("gofront: %w", err)
	}
	arenas := make(map[string]int, len(e.prog.Structs))
	for _, st := range e.prog.Structs {
		arenas[st.Name] = e.nextInst
	}
	sort.Strings(e.notes)
	return &Model{
		Pkg:     pkg,
		File:    &irtext.File{Prog: e.prog, Arenas: arenas, Threads: e.threads},
		Structs: e.structs,
		Notes:   e.notes,
	}, nil
}

func (e *extractor) note(format string, args ...any) {
	e.notes = append(e.notes, fmt.Sprintf(format, args...))
}

// uniqueName sanitizes a Go identifier into an unused irtext identifier.
func (e *extractor) uniqueName(name string) string {
	name = sanitizeIdent(name)
	for e.names[name] {
		name += "_"
	}
	e.names[name] = true
	return name
}

func sanitizeIdent(name string) string {
	if name == "" {
		return "x"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// collectStructs lowers every package-scope struct type, scope order
// sorted. Un-sizable structs (type parameters, unresolved field types)
// are skipped with a note.
func (e *extractor) collectStructs() {
	astTypes := e.astStructTypes()
	scope := e.pkg.Pkg.Scope()
	names := append([]string(nil), scope.Names()...)
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || st.NumFields() == 0 {
			continue
		}
		if named.TypeParams().Len() > 0 {
			e.note("struct %s skipped: generic struct sizes are not static", name)
			continue
		}
		def := e.lowerStruct(name, st, astTypes[name])
		if def == nil {
			continue
		}
		e.prog.AddStruct(def.IR)
		e.structs = append(e.structs, def)
		e.structByType[tn] = def
	}
}

func (e *extractor) lowerStruct(goName string, st *types.Struct, astST *ast.StructType) *StructDef {
	def := &StructDef{GoName: goName, Name: e.uniqueName(goName)}
	astFieldTypes := flattenFieldTypes(astST, e.pkg.Fset)
	var fields []ir.Field
	seen := make(map[string]bool)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		size, align, ok := e.safeSize(f.Type())
		if !ok {
			e.note("struct %s skipped: field %s has no static size", goName, f.Name())
			return nil
		}
		irName := sanitizeIdent(f.Name())
		if irName == "_" || seen[irName] {
			irName = fmt.Sprintf("_f%d", i)
		}
		seen[irName] = true
		fields = append(fields, ir.Field{Name: irName, Size: size, Align: align})
		def.FieldNames = append(def.FieldNames, f.Name())
		ft := ""
		if i < len(astFieldTypes) {
			ft = astFieldTypes[i]
		}
		def.FieldTypes = append(def.FieldTypes, ft)
	}
	def.IR = ir.NewStruct(def.Name, fields...)
	return def
}

// safeSize sizes a type, tolerating invalid types from unresolved
// imports (8/8 — a pointer-sized guess) and refusing only types the
// sizer cannot handle at all.
func (e *extractor) safeSize(t types.Type) (size, align int, ok bool) {
	defer func() {
		if recover() != nil {
			size, align, ok = 0, 0, false
		}
	}()
	if bt, isBasic := t.Underlying().(*types.Basic); isBasic && bt.Kind() == types.Invalid {
		return 8, 8, true
	}
	sz := e.pkg.Sizes.Sizeof(t)
	al := e.pkg.Sizes.Alignof(t)
	if sz <= 0 {
		sz = 1 // zero-size fields (struct{}) still occupy a slot
	}
	if al <= 0 || al&(al-1) != 0 {
		al = 1
	}
	return int(sz), int(al), true
}

// astStructTypes maps type names to their AST struct nodes.
func (e *extractor) astStructTypes() map[string]*ast.StructType {
	out := make(map[string]*ast.StructType)
	for _, f := range e.pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					out[ts.Name.Name] = st
				}
			}
		}
	}
	return out
}

// flattenFieldTypes renders one type string per flattened field of the
// AST struct (a `a, b int64` group yields two entries).
func flattenFieldTypes(st *ast.StructType, fset *token.FileSet) []string {
	if st == nil {
		return nil
	}
	var out []string
	for _, f := range st.Fields.List {
		var b strings.Builder
		printer.Fprint(&b, fset, f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1 // embedded
		}
		for i := 0; i < n; i++ {
			out = append(out, b.String())
		}
	}
	return out
}

// collectFuncs registers every declared function and method with a body.
func (e *extractor) collectFuncs() {
	for _, f := range e.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := e.pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok {
				continue
			}
			name := fd.Name.Name
			if sig.Recv() != nil {
				name = recvTypeName(sig.Recv().Type()) + "_" + name
			}
			fn := &goFunc{
				proc:      e.uniqueName(name),
				body:      fd.Body,
				sig:       sig,
				paramSlot: paramSlots(sig),
			}
			e.funcs = append(e.funcs, fn)
			e.funcByObj[obj] = fn
		}
	}
	sort.Slice(e.funcs, func(i, j int) bool { return e.funcs[i].proc < e.funcs[j].proc })
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return "recv"
}

func paramSlots(sig *types.Signature) map[*types.Var]int {
	slots := make(map[*types.Var]int)
	if r := sig.Recv(); r != nil {
		slots[r] = 0
	}
	for i := 0; i < sig.Params().Len(); i++ {
		slots[sig.Params().At(i)] = i + 1
	}
	return slots
}

// prescan walks a function body collecting `go` spawn sites, call edges
// and captured variables — everything thread and instance assignment
// need before lowering. Function literals directly spawned become
// synthetic procedures (prescanned recursively, appended to e.funcs);
// all other literals are treated as part of the enclosing body.
func (e *extractor) prescan(fn *goFunc) {
	litProcs := 0
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				walk(arg, inLoop)
			}
			callee, recv := e.resolveSpawn(fn, n.Call, &litProcs)
			if callee == nil {
				e.note("proc %s: `go` statement target not a package function; thread dropped", fn.proc)
				return
			}
			fn.spawns = append(fn.spawns, &spawn{callee: callee, recv: recv, args: n.Call.Args, inLoop: inLoop, stmt: n})
		case *ast.CallExpr:
			for _, arg := range n.Args {
				walk(arg, inLoop)
			}
			walk(n.Fun, inLoop)
			if callee := e.calleeOf(n); callee != nil {
				fn.calls = append(fn.calls, callee.proc)
			}
		case *ast.ForStmt:
			walk(n.Init, inLoop)
			walk(n.Cond, true)
			walk(n.Post, true)
			walk(n.Body, true)
		case *ast.RangeStmt:
			walk(n.X, inLoop)
			walk(n.Body, true)
		case *ast.FuncLit:
			// Non-spawned literal: body belongs to the enclosing proc.
			walk(n.Body, inLoop)
		default:
			var children []ast.Node
			ast.Inspect(n, func(c ast.Node) bool {
				if c == nil || c == n {
					return c == n
				}
				children = append(children, c)
				return false
			})
			for _, c := range children {
				walk(c, inLoop)
			}
		}
	}
	walk(fn.body, false)
}

// resolveSpawn resolves a `go` call target to a lowerable function,
// synthesizing a procedure for directly-spawned literals.
func (e *extractor) resolveSpawn(parent *goFunc, call *ast.CallExpr, litProcs *int) (*goFunc, ast.Expr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		sig, _ := e.pkg.Info.Types[fun].Type.(*types.Signature)
		if sig == nil {
			return nil, nil
		}
		*litProcs++
		lit := &goFunc{
			proc:      e.uniqueName(fmt.Sprintf("%s_go%d", parent.proc, *litProcs)),
			body:      fun.Body,
			sig:       sig,
			paramSlot: paramSlots(sig),
			lit:       fun,
		}
		e.funcs = append(e.funcs, lit)
		e.captureVars(fun)
		e.prescan(lit)
		return lit, nil
	case *ast.Ident:
		if obj, ok := e.pkg.Info.Uses[fun].(*types.Func); ok {
			return e.funcByObj[obj], nil
		}
	case *ast.SelectorExpr:
		if obj, ok := e.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if callee := e.funcByObj[obj]; callee != nil {
				return callee, fun.X
			}
		}
	}
	return nil, nil
}

// calleeOf resolves a non-go call expression to a same-package function.
func (e *extractor) calleeOf(call *ast.CallExpr) *goFunc {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := e.pkg.Info.Uses[fun].(*types.Func); ok {
			return e.funcByObj[obj]
		}
	case *ast.SelectorExpr:
		if obj, ok := e.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return e.funcByObj[obj]
		}
	}
	return nil
}

// captureVars marks variables a spawned literal references but does not
// declare: they outlive the spawning frame and are shared between the
// spawner and the goroutine, so struct-typed ones get shared instances
// and bare mutexes join the synthetic locks struct.
func (e *extractor) captureVars(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := e.pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the literal
		}
		if e.isPackageLevel(obj) {
			return true // already a named instance
		}
		if _, done := e.instIdx[obj]; done {
			return true
		}
		// Reserve deterministically later (assignInstances sorts); mark
		// with a placeholder here.
		e.instIdx[obj] = -1
		return true
	})
}

func (e *extractor) isPackageLevel(v *types.Var) bool {
	return v.Parent() == e.pkg.Pkg.Scope()
}

// assignInstances gives shared instance indices to package-level struct
// vars (sorted by name) and captured struct locals (sorted by position),
// and builds the synthetic locks struct for bare sync.Mutex/RWMutex vars
// in the same order.
func (e *extractor) assignInstances() {
	var lockVars []*types.Var
	scope := e.pkg.Pkg.Scope()
	names := append([]string(nil), scope.Names()...)
	sort.Strings(names)
	for _, name := range names {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok {
			continue
		}
		switch {
		case e.structDefOf(v.Type()) != nil:
			e.instIdx[v] = e.nextInst
			e.nextInst++
		case isBareMutex(v.Type()):
			lockVars = append(lockVars, v)
		}
	}
	// Captured locals, position-sorted (files parse in sorted order, so
	// positions are deterministic).
	var captured []*types.Var
	for v, idx := range e.instIdx {
		if idx == -1 {
			captured = append(captured, v)
		}
	}
	sort.Slice(captured, func(i, j int) bool { return captured[i].Pos() < captured[j].Pos() })
	for _, v := range captured {
		switch {
		case e.structDefOf(v.Type()) != nil:
			e.instIdx[v] = e.nextInst
			e.nextInst++
		case isBareMutex(v.Type()):
			delete(e.instIdx, v)
			lockVars = append(lockVars, v)
		default:
			delete(e.instIdx, v) // captured non-struct: nothing to place
		}
	}
	if len(lockVars) == 0 {
		return
	}
	def := &StructDef{GoName: "(package locks)", Name: e.uniqueName("pkg_locks")}
	var fields []ir.Field
	seen := make(map[string]bool)
	for i, v := range lockVars {
		fname := sanitizeIdent(v.Name())
		if fname == "_" || seen[fname] {
			fname = fmt.Sprintf("_mu%d", i)
		}
		seen[fname] = true
		fields = append(fields, ir.I64(fname))
		def.FieldNames = append(def.FieldNames, v.Name())
		def.FieldTypes = append(def.FieldTypes, "sync.Mutex")
		e.lockField[v] = fname
	}
	def.IR = ir.NewStruct(def.Name, fields...)
	e.prog.AddStruct(def.IR)
	e.lockSt = def
}

// structDefOf maps a (possibly pointer) type to its lowered struct.
func (e *extractor) structDefOf(t types.Type) *StructDef {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return e.structByType[n.Obj()]
}

// isBareMutex reports whether t is sync.Mutex or sync.RWMutex itself
// (not a struct containing one).
func isBareMutex(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// mutexField resolves `x.mu` in `x.mu.Lock()` to its struct field when
// mu is a sync.Mutex/RWMutex field of a lowered struct.
func (e *extractor) mutexField(sel *ast.SelectorExpr) (*StructDef, string, ast.Expr) {
	selection := e.pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil, "", nil
	}
	fv, ok := selection.Obj().(*types.Var)
	if !ok || !isBareMutex(fv.Type()) {
		return nil, "", nil
	}
	def := e.structDefOf(selection.Recv())
	if def == nil {
		return nil, "", nil
	}
	idx := selection.Index()[0]
	if idx >= len(def.IR.Fields) {
		return nil, "", nil
	}
	return def, def.IR.Fields[idx].Name, sel.X
}

// breakCycles drops call edges that would make the call graph recursive:
// ir.Finalize rejects recursion, and static frequencies need a DAG. DFS
// in sorted proc order keeps the dropped set deterministic.
func (e *extractor) breakCycles() {
	byName := make(map[string]*goFunc, len(e.funcs))
	for _, fn := range e.funcs {
		byName[fn.proc] = fn
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(fn *goFunc)
	visit = func(fn *goFunc) {
		color[fn.proc] = gray
		for _, callee := range fn.calls {
			next := byName[callee]
			if next == nil {
				continue
			}
			switch color[callee] {
			case gray:
				if !e.dropped[[2]string{fn.proc, callee}] {
					e.dropped[[2]string{fn.proc, callee}] = true
					e.note("recursive call %s -> %s dropped (static pass needs an acyclic call graph)", fn.proc, callee)
				}
			case white:
				visit(next)
			}
		}
		color[fn.proc] = black
	}
	sort.Slice(e.funcs, func(i, j int) bool { return e.funcs[i].proc < e.funcs[j].proc })
	for _, fn := range e.funcs {
		if color[fn.proc] == white {
			visit(fn)
		}
	}
}

// declareThreads models the package's goroutine structure: every
// function containing a `go` statement runs as a thread itself (the
// spawning goroutine), and each `go` site contributes one thread — or
// SpawnsPerLoopGo when the spawn sits in a loop, so distinct-thread
// conflicts on the spawned body exist. Structured spawn sites are
// declared by the spawn statement instead; they only reserve a CPU
// number here, so flat and structured threads share one numbering.
// MaxThreads caps the total.
func (e *extractor) declareThreads() {
	cpu := 0
	capped := false
	add := func(proc string, params []int) {
		if cpu >= e.opts.MaxThreads {
			capped = true
			return
		}
		e.threads = append(e.threads, irtext.ThreadDecl{CPU: cpu, Proc: proc, Params: params, Iters: 1})
		cpu++
	}
	for _, fn := range e.funcs {
		if len(fn.spawns) == 0 {
			continue
		}
		add(fn.proc, nil)
		for _, sp := range fn.spawns {
			if pl := e.spawnPlan[sp.stmt]; pl != nil {
				if cpu < e.opts.MaxThreads {
					pl.cpu = cpu
					cpu++
					continue
				}
				e.demoteSpawn(pl)
			}
			n := 1
			if sp.inLoop {
				n = e.opts.SpawnsPerLoopGo
			}
			params := e.spawnParams(sp)
			for i := 0; i < n; i++ {
				add(sp.callee.proc, params)
			}
		}
	}
	if capped {
		e.note("thread count capped at %d; remaining `go` sites not modeled", e.opts.MaxThreads)
	}
}

// spawnParams binds the spawned thread's parameter vector positionally:
// slot 0 the receiver, slots 1.. the call arguments, truncated at the
// first argument that does not resolve to a named instance (unbound
// slots read as unknown, which staticshare treats conservatively).
func (e *extractor) spawnParams(sp *spawn) []int {
	var params []int
	bind := func(expr ast.Expr) bool {
		if expr == nil {
			params = append(params, 0) // unused receiver slot of a plain function
			return true
		}
		if idx, ok := e.namedInstanceOf(expr); ok {
			params = append(params, idx)
			return true
		}
		return false
	}
	if !bind(sp.recv) {
		return nil
	}
	for _, arg := range sp.args {
		if !bind(arg) {
			break
		}
	}
	return params
}

// namedInstanceOf resolves &pkgVar / pkgVar / capturedVar expressions to
// their assigned shared instance index.
func (e *extractor) namedInstanceOf(expr ast.Expr) (int, bool) {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return 0, false
			}
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.Ident:
			if v, ok := e.objOf(x).(*types.Var); ok {
				if idx, ok := e.instIdx[v]; ok && idx >= 0 {
					return idx, true
				}
			}
			return 0, false
		default:
			return 0, false
		}
	}
}

func (e *extractor) objOf(id *ast.Ident) types.Object {
	if obj := e.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return e.pkg.Info.Defs[id]
}

package gofront

import (
	"strings"
	"testing"

	"structlayout/internal/irtext"
	"structlayout/internal/staticshare"
)

// lowered renders the lint's lowered program so tests can assert on the
// emitted sync statements.
func lowered(t *testing.T, rep *Report) string {
	t.Helper()
	if rep.Model == nil {
		t.Fatal("report carries no model")
	}
	return irtext.Format(rep.Model.File)
}

// TestWaitGroupJoinRefines pins the headline gofront refinement: a
// fan-out/join over a WaitGroup orders the parent's post-Wait writes
// after the workers, so the parent/worker field pair stops being a
// false-sharing finding.
func TestWaitGroupJoinRefines(t *testing.T) {
	rep := lintSrc(t, "wgjoin", `
package wgjoin

import "sync"

type State struct {
	a int64
	b int64
	total int64
}

var st State
var wg sync.WaitGroup

func Run() {
	wg.Add(2)
	go workerA()
	go workerB()
	wg.Wait()
	st.total = st.a + st.b
}

func workerA() {
	defer wg.Done()
	st.a = 1
}

func workerB() {
	defer wg.Done()
	st.b = 2
}
`)
	text := lowered(t, rep)
	for _, want := range []string{"spawn g0", "spawn g1", "join g0", "join g1"} {
		if !strings.Contains(text, want) {
			t.Errorf("lowered program missing %q:\n%s", want, text)
		}
	}
	// Workers run strictly in parallel with each other (a/b may falsely
	// share), but the parent's total never races with either.
	if !hasCode(rep.Findings, staticshare.CodeFalseSharing) {
		t.Errorf("worker/worker pair should still be flagged: %+v", rep.Findings)
	}
	for _, f := range rep.Findings {
		for _, field := range f.Fields {
			if field == "total" {
				t.Errorf("post-Wait field reached a finding despite the join: %+v", f)
			}
		}
	}
}

// TestChannelHandoffLintsClean pins the channel refinement end to end:
// a producer hands an item through an unbuffered channel and only the
// consumer writes afterwards, so the package lints clean instead of
// producing a false static-false-sharing finding.
func TestChannelHandoffLintsClean(t *testing.T) {
	rep := lintSrc(t, "handoff", `
package handoff

type Item struct {
	payload int64
	checksum int64
}

var item Item
var ready = make(chan struct{})

func Run() {
	go produce()
	go consume()
}

func produce() {
	item.payload = 42
	ready <- struct{}{}
}

func consume() {
	<-ready
	item.checksum = item.payload + 1
}
`)
	text := lowered(t, rep)
	for _, want := range []string{"send ch0", "recv ch0"} {
		if !strings.Contains(text, want) {
			t.Errorf("lowered program missing %q:\n%s", want, text)
		}
	}
	if len(rep.Findings) != 0 {
		t.Errorf("handoff package should lint clean, got: %+v", rep.Findings)
	}
}

// TestWaitGroupEscapeStaysFlat pins the conservative side: a WaitGroup
// passed to a helper can be Added/Doned out of sight, so no joins may
// be claimed and the post-Wait write stays a finding.
func TestWaitGroupEscapeStaysFlat(t *testing.T) {
	rep := lintSrc(t, "wgescape", `
package wgescape

import "sync"

type State struct {
	a int64
	total int64
}

var st State
var wg sync.WaitGroup

func Run() {
	wg.Add(1)
	go worker()
	hand(&wg)
	wg.Wait()
	st.total = st.a
}

func hand(w *sync.WaitGroup) {}

func worker() {
	defer wg.Done()
	st.a = 1
}
`)
	text := lowered(t, rep)
	if strings.Contains(text, "join ") {
		t.Errorf("escaping WaitGroup must not produce joins:\n%s", text)
	}
	if !hasCode(rep.Findings, staticshare.CodeFalseSharing) {
		t.Errorf("unjoined spawn should keep the finding: %+v", rep.Findings)
	}
}

// TestLoopSpawnStaysFlat pins that `go` in a loop keeps the flat
// SpawnsPerLoopGo thread model — the DSL allows spawn statements only
// at the top level.
func TestLoopSpawnStaysFlat(t *testing.T) {
	rep := lintSrc(t, "loopgo", `
package loopgo

type S struct {
	a int64
	b int64
}

var g S

func Run() {
	for i := 0; i < 4; i++ {
		go worker()
	}
}

func worker() { g.a = 1 }
`)
	text := lowered(t, rep)
	if strings.Contains(text, "spawn ") {
		t.Errorf("loop spawn must stay flat:\n%s", text)
	}
	if len(rep.Model.File.Threads) != 3 {
		t.Errorf("got %d threads, want 3 (parent + SpawnsPerLoopGo)", len(rep.Model.File.Threads))
	}
}

// TestClosedChannelStaysFlat pins that a channel with any use beyond
// one send and one receive (here: close) is not turned into a
// rendezvous edge — close lets the receive complete without a send.
func TestClosedChannelStaysFlat(t *testing.T) {
	rep := lintSrc(t, "closed", `
package closed

type S struct {
	a int64
	b int64
}

var g S
var done = make(chan struct{})

func Run() {
	go produce()
	go consume()
}

func produce() {
	g.a = 1
	close(done)
}

func consume() {
	<-done
	g.b = g.a
}
`)
	text := lowered(t, rep)
	if strings.Contains(text, "send ") || strings.Contains(text, "recv ") {
		t.Errorf("closed channel must not become a rendezvous edge:\n%s", text)
	}
	if !hasCode(rep.Findings, staticshare.CodeFalseSharing) {
		t.Errorf("close-signaled handoff must stay flagged (conservative): %+v", rep.Findings)
	}
}

// Package affinity implements the static/profile-based affinity analysis of
// §4.1, following the single-threaded framework of Hundt et al. (CGO'06)
// that the paper builds on:
//
//   - Fields are grouped into affinity groups: the fields accessed at the
//     same level of granularity — within one loop, or within one block of
//     straight-line code.
//   - Each group's weight is the execution frequency of that granularity
//     (the loop's ExecutionCount, or the block's frequency).
//   - Hotness of a field is its dynamic reference count.
//   - The Minimum Heuristic refines pair weights: within a loop, the
//     affinity of (f_i, f_j) is the minimum of the two fields' dynamic
//     access counts there, since the weight of any acyclic path containing
//     both is upper-bounded by that minimum.
//
// The paper's CycleGain approximations (§3.1) are applied here: only
// intra-procedural paths are considered (groups never span procedures) and
// MemoryDistance is assumed below threshold within a group. The idealized
// model's store discount ("a store target gains nothing", §2) is available
// as the DiscountStores option; the implemented pipeline of §4.1 — whose
// Figure 5 keeps the write-write edge f1–f2 — does not apply it, so the
// default here matches Figure 5.
package affinity

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/ir"
	"structlayout/internal/profile"
)

// Options selects heuristic variants; the zero value is the paper's
// configuration.
type Options struct {
	// PlainGroupWeight disables the Minimum Heuristic and weights every
	// pair in a group by the group's execution frequency (the CGO'06
	// heuristic the paper refines). Ablation: BenchmarkAblationMinHeuristic.
	PlainGroupWeight bool
	// DiscountStores applies the idealized model's rule that a pair whose
	// accesses are all stores gains nothing from co-location ("store
	// misses ... are mostly harmless", §2). Ablation knob; off by default
	// to match the implemented pipeline and Figure 5.
	DiscountStores bool
	// MemoryDistanceThreshold, when positive, enables the idealized
	// model's MemoryDistance test (§2): a group whose code touches more
	// than this many bytes of non-struct memory per occurrence contributes
	// no CycleGain — by the time the second field is accessed, the first
	// one's line has been evicted. The paper's implementation ignores MD
	// ("we assume that the MemoryDistance between fields of the same
	// affinity group is always below the threshold T", §3.1), so the
	// default 0 disables it.
	MemoryDistanceThreshold int64
}

// GroupKind tells which granularity produced a group.
type GroupKind uint8

const (
	// LoopGroup covers the fields accessed within one loop.
	LoopGroup GroupKind = iota
	// StraightLineGroup covers the fields of one straight-line block
	// outside any loop.
	StraightLineGroup
)

// String names the kind.
func (k GroupKind) String() string {
	if k == LoopGroup {
		return "loop"
	}
	return "straight-line"
}

// Group is one affinity group of a single struct.
type Group struct {
	Kind GroupKind
	// Where identifies the loop or block for reports.
	Where string
	// Weight is the granularity's execution frequency: EC(L) or Freq(B).
	Weight float64
	// Counts holds each member field's dynamic access counts inside the
	// group.
	Counts map[int]profile.Counts
	// MemoryDistance estimates the bytes of non-struct memory the group's
	// code touches per occurrence (per loop iteration / per block
	// execution): the paper's MD, used by the optional threshold test.
	MemoryDistance int64
}

// Graph is the affinity graph of one struct: nodes are fields, edges are
// CycleGain estimates (unscaled; the FLG applies k1).
type Graph struct {
	Struct *ir.StructType
	// Weights maps canonical field pairs (i < j) to accumulated affinity.
	Weights map[[2]int]float64
	// Hotness is each field's program-wide dynamic reference count.
	Hotness map[int]float64
	// Reads and Writes are program-wide dynamic counts per field.
	Reads, Writes map[int]float64
	// Groups lists the affinity groups, for the tool's advisory report.
	Groups []Group
}

// PairKey canonicalizes a field pair.
func PairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Build computes the affinity graph of st over the whole program, using
// the profile for frequencies.
func Build(p *ir.Program, pf *profile.Profile, st *ir.StructType, opts Options) *Graph {
	g := &Graph{
		Struct:  st,
		Weights: make(map[[2]int]float64),
		Hotness: make(map[int]float64),
		Reads:   make(map[int]float64),
		Writes:  make(map[int]float64),
	}
	for _, pr := range p.Procs {
		buildProc(g, pr, pf, st, opts)
	}
	// Program-wide hotness and read/write counts.
	for _, b := range p.Blocks() {
		n := pf.BlockCount(b)
		if n == 0 {
			continue
		}
		for _, in := range b.FieldInstrs() {
			if in.Struct != st {
				continue
			}
			g.Hotness[in.Field] += n
			if in.Acc == ir.Read {
				g.Reads[in.Field] += n
			} else {
				g.Writes[in.Field] += n
			}
		}
	}
	return g
}

// buildProc adds one procedure's groups: one group per loop (fields in
// blocks whose innermost loop is that loop) and one per straight-line block
// outside loops. Loops group their own blocks only — a nested loop is its
// own, hotter granularity.
func buildProc(g *Graph, pr *ir.Procedure, pf *profile.Profile, st *ir.StructType, opts Options) {
	for _, l := range pr.Loops {
		counts := make(map[int]profile.Counts)
		var memBytes float64
		ec := pf.LoopEC(l)
		for _, b := range l.Blocks {
			addBlockCounts(counts, b, pf, st)
			if ec > 0 {
				// Per-iteration share of the block's memory traffic.
				memBytes += blockMemBytes(b) * pf.BlockCount(b) / ec
			}
		}
		if len(counts) > 0 {
			g.addGroup(Group{Kind: LoopGroup, Where: l.Name(), Weight: ec, Counts: counts, MemoryDistance: int64(memBytes)}, opts)
		}
	}
	for _, b := range pr.Blocks {
		if b.Loop != nil || b.Synthetic {
			continue
		}
		counts := make(map[int]profile.Counts)
		addBlockCounts(counts, b, pf, st)
		if len(counts) > 0 {
			g.addGroup(Group{Kind: StraightLineGroup, Where: b.Name(), Weight: pf.BlockCount(b), Counts: counts, MemoryDistance: int64(blockMemBytes(b))}, opts)
		}
	}
}

// blockMemBytes estimates the distinct non-struct memory a block touches
// per execution: a streaming sweep advances by its stride, a random access
// lands on a fresh line in expectation, a fixed access revisits one spot.
func blockMemBytes(b *ir.BasicBlock) float64 {
	var n float64
	for _, in := range b.Instrs {
		if in.Op != ir.OpMem {
			continue
		}
		switch in.Pattern {
		case ir.MemSeq:
			stride := in.Stride
			if stride == 0 {
				stride = 8
			}
			n += float64(stride)
		case ir.MemRand:
			n += 128 // one fresh cache line in expectation
		case ir.MemFixed:
			// Revisits the same location: no new footprint.
		}
	}
	return n
}

// addBlockCounts accumulates the block's dynamic field counts for st.
func addBlockCounts(counts map[int]profile.Counts, b *ir.BasicBlock, pf *profile.Profile, st *ir.StructType) {
	n := pf.BlockCount(b)
	if n == 0 {
		return
	}
	for _, in := range b.FieldInstrs() {
		if in.Struct != st {
			continue
		}
		c := counts[in.Field]
		if in.Acc == ir.Read {
			c.Reads += n
		} else {
			c.Writes += n
		}
		counts[in.Field] = c
	}
}

// addGroup folds a group's pairwise contributions into the graph.
func (g *Graph) addGroup(gr Group, opts Options) {
	g.Groups = append(g.Groups, gr)
	if opts.MemoryDistanceThreshold > 0 && gr.MemoryDistance >= opts.MemoryDistanceThreshold {
		// §2: CycleGain is zero when the intervening memory traffic would
		// evict the first field's line before the second is reached.
		return
	}
	fields := make([]int, 0, len(gr.Counts))
	for f := range gr.Counts {
		fields = append(fields, f)
	}
	sort.Ints(fields)
	for i := 0; i < len(fields); i++ {
		for j := i + 1; j < len(fields); j++ {
			fi, fj := fields[i], fields[j]
			ci, cj := gr.Counts[fi], gr.Counts[fj]
			if opts.DiscountStores && ci.Reads == 0 && cj.Reads == 0 {
				// A pair that is only ever stored gains nothing from
				// co-location (§2: store misses rarely stall).
				continue
			}
			var w float64
			if opts.PlainGroupWeight {
				w = gr.Weight
			} else {
				// Minimum Heuristic (§4.1).
				w = ci.Total()
				if t := cj.Total(); t < w {
					w = t
				}
			}
			if w > 0 {
				g.Weights[PairKey(fi, fj)] += w
			}
		}
	}
}

// Weight returns the affinity between two fields.
func (g *Graph) Weight(a, b int) float64 {
	if a == b {
		return 0
	}
	return g.Weights[PairKey(a, b)]
}

// HottestFirst returns all field indices sorted by descending hotness
// (field index breaks ties), including fields never accessed.
func (g *Graph) HottestFirst() []int {
	order := make([]int, len(g.Struct.Fields))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ha, hb := g.Hotness[order[a]], g.Hotness[order[b]]
		if ha != hb {
			return ha > hb
		}
		return order[a] < order[b]
	})
	return order
}

// Dump renders the advisory report: per-field hotness and R/W counts, then
// edges sorted by weight — the format "serves as input to a variety of
// scripts" in the paper's compiler (§4.1).
func (g *Graph) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "affinity graph for struct %s\n", g.Struct.Name)
	for _, fi := range g.HottestFirst() {
		f := g.Struct.Fields[fi]
		fmt.Fprintf(&sb, "  field %-20s hot=%.6g R=%.6g W=%.6g\n",
			f.Name, g.Hotness[fi], g.Reads[fi], g.Writes[fi])
	}
	type edge struct {
		k [2]int
		w float64
	}
	edges := make([]edge, 0, len(g.Weights))
	for k, w := range g.Weights {
		edges = append(edges, edge{k, w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		return edges[i].k[0] < edges[j].k[0] || (edges[i].k[0] == edges[j].k[0] && edges[i].k[1] < edges[j].k[1])
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "  edge %s -- %s  w=%.6g\n",
			g.Struct.Fields[e.k[0]].Name, g.Struct.Fields[e.k[1]].Name, e.w)
	}
	for _, gr := range g.Groups {
		fmt.Fprintf(&sb, "  group %-14s %-20s weight=%.6g fields=%d\n", gr.Kind, gr.Where, gr.Weight, len(gr.Counts))
	}
	return sb.String()
}

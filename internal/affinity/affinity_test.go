package affinity

import (
	"strings"
	"testing"

	"structlayout/internal/ir"
	"structlayout/internal/profile"
)

// figure4 reproduces the paper's running example (Figures 4 and 5):
//
//	/* entry PBO count: n */
//	S.f1 = ; S.f2 = ;
//	for i in 0..N {  S.f3 = ;  = S.f3 + S.f1;  = S.f3  }
//
// with entry count folded to 1 run of the snippet and the snippet executed
// n times via an outer caller loop.
func figure4(t testing.TB, n, N int64) (*ir.Program, *ir.StructType, *profile.Profile) {
	t.Helper()
	p := ir.NewProgram("fig4")
	s := ir.NewStruct("S", ir.I64("f1"), ir.I64("f2"), ir.I64("f3"))
	p.AddStruct(s)
	b := p.NewProc("snippet")
	b.Write(s, "f1", ir.Shared(0))
	b.Write(s, "f2", ir.Shared(0))
	b.Loop(N, func(b *ir.Builder) {
		b.Write(s, "f3", ir.Shared(0))
		b.Read(s, "f3", ir.Shared(0))
		b.Read(s, "f1", ir.Shared(0))
		b.Read(s, "f3", ir.Shared(0))
	})
	b.Done()
	caller := p.NewProc("main")
	caller.Loop(n, func(b *ir.Builder) { b.Call("snippet") })
	caller.Done()
	p.MustFinalize()
	pf, err := profile.StaticEstimate(p, []string{"main"})
	if err != nil {
		t.Fatal(err)
	}
	return p, s, pf
}

func TestFigure5AffinityGraph(t *testing.T) {
	const n, N = 10, 100
	p, s, pf := figure4(t, n, N)
	g := Build(p, pf, s, Options{})

	f1, f2, f3 := 0, 1, 2
	// Straight-line group {f1,f2}: weight n (min(n,n)).
	if got := g.Weight(f1, f2); got != n {
		t.Fatalf("w(f1,f2) = %v, want %v", got, n)
	}
	// Loop group {f1,f3}: counts f1=nN, f3=3nN; min = nN.
	if got := g.Weight(f1, f3); got != n*N {
		t.Fatalf("w(f1,f3) = %v, want %v", got, n*N)
	}
	// f2 and f3 never share a granularity.
	if got := g.Weight(f2, f3); got != 0 {
		t.Fatalf("w(f2,f3) = %v, want 0", got)
	}
	// Figure 5 annotations: f1 h=N+n per snippet run (times n runs).
	if got := g.Hotness[f1]; got != n*(N+1) {
		t.Fatalf("hot(f1) = %v, want %v", got, n*(N+1))
	}
	if got := g.Hotness[f3]; got != 3*n*N {
		t.Fatalf("hot(f3) = %v", got)
	}
	if g.Reads[f3] != 2*n*N || g.Writes[f3] != n*N {
		t.Fatalf("f3 R=%v W=%v", g.Reads[f3], g.Writes[f3])
	}
	if g.Reads[f2] != 0 || g.Writes[f2] != n {
		t.Fatalf("f2 R=%v W=%v", g.Reads[f2], g.Writes[f2])
	}
}

func TestPlainGroupWeightAblation(t *testing.T) {
	const n, N = 10, 100
	p, s, pf := figure4(t, n, N)
	g := Build(p, pf, s, Options{PlainGroupWeight: true})
	// Plain CGO'06 weighting: loop group weight EC(L) = nN for every pair.
	if got := g.Weight(0, 2); got != n*N {
		t.Fatalf("plain w(f1,f3) = %v, want %v", got, n*N)
	}
	// Straight-line block weight = n.
	if got := g.Weight(0, 1); got != n {
		t.Fatalf("plain w(f1,f2) = %v, want %v", got, n)
	}
}

func TestMinimumHeuristicBoundsPlain(t *testing.T) {
	// Minimum-heuristic weights never exceed group-count-based weights when
	// a field is accessed once per iteration.
	p := ir.NewProgram("min")
	s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"))
	p.AddStruct(s)
	b := p.NewProc("f")
	b.Loop(1000, func(b *ir.Builder) {
		b.Read(s, "a", ir.Shared(0))
		b.If(0.1, func(b *ir.Builder) {
			b.Read(s, "b", ir.Shared(0))
		})
	})
	b.Done()
	p.MustFinalize()
	pf, _ := profile.StaticEstimate(p, []string{"f"})

	min := Build(p, pf, s, Options{})
	plain := Build(p, pf, s, Options{PlainGroupWeight: true})
	// b executes only 10% of iterations; the minimum heuristic must see
	// that, the plain heuristic cannot ("both hot and cold basic blocks
	// inside the loop are weighted equally").
	if wm, wp := min.Weight(0, 1), plain.Weight(0, 1); wm >= wp {
		t.Fatalf("min heuristic (%v) should be below plain (%v)", wm, wp)
	}
	if got := min.Weight(0, 1); got != 100 {
		t.Fatalf("min weight = %v, want 100", got)
	}
}

func TestStoreOnlyPairContributesNothing(t *testing.T) {
	p := ir.NewProgram("stores")
	s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"))
	p.AddStruct(s)
	b := p.NewProc("f")
	b.Loop(50, func(b *ir.Builder) {
		b.Write(s, "a", ir.Shared(0))
		b.Write(s, "b", ir.Shared(0))
	})
	b.Done()
	p.MustFinalize()
	pf, _ := profile.StaticEstimate(p, []string{"f"})

	g := Build(p, pf, s, Options{DiscountStores: true})
	if got := g.Weight(0, 1); got != 0 {
		t.Fatalf("store-only pair weight = %v, want 0", got)
	}
	withStores := Build(p, pf, s, Options{})
	if got := withStores.Weight(0, 1); got != 50 {
		t.Fatalf("default (Figure 5) weight = %v, want 50", got)
	}
}

func TestNestedLoopsFormSeparateGroups(t *testing.T) {
	p := ir.NewProgram("nest")
	s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"), ir.I64("c"))
	p.AddStruct(s)
	b := p.NewProc("f")
	b.Loop(10, func(b *ir.Builder) {
		b.Read(s, "a", ir.Shared(0))
		b.Loop(100, func(b *ir.Builder) {
			b.Read(s, "b", ir.Shared(0))
			b.Read(s, "c", ir.Shared(0))
		})
	})
	b.Done()
	p.MustFinalize()
	pf, _ := profile.StaticEstimate(p, []string{"f"})
	g := Build(p, pf, s, Options{})

	// b,c pair in the inner loop: counts 1000 each.
	if got := g.Weight(1, 2); got != 1000 {
		t.Fatalf("w(b,c) = %v, want 1000", got)
	}
	// a is only in the outer loop group; inner-loop fields are not.
	if got := g.Weight(0, 1); got != 0 {
		t.Fatalf("w(a,b) = %v, want 0 (different granularity)", got)
	}
	loopGroups := 0
	for _, gr := range g.Groups {
		if gr.Kind == LoopGroup {
			loopGroups++
		}
	}
	if loopGroups != 2 {
		t.Fatalf("loop groups = %d, want 2", loopGroups)
	}
}

func TestIntraProceduralOnly(t *testing.T) {
	// Fields accessed in different procedures get no affinity even when
	// one calls the other (the paper's approximation §3.1).
	p := ir.NewProgram("interproc")
	s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"))
	p.AddStruct(s)
	callee := p.NewProc("callee")
	callee.Read(s, "b", ir.Shared(0))
	callee.Done()
	caller := p.NewProc("caller")
	caller.Loop(100, func(b *ir.Builder) {
		b.Read(s, "a", ir.Shared(0))
		b.Call("callee")
	})
	caller.Done()
	p.MustFinalize()
	pf, _ := profile.StaticEstimate(p, []string{"caller"})
	g := Build(p, pf, s, Options{})
	if got := g.Weight(0, 1); got != 0 {
		t.Fatalf("cross-procedure affinity = %v, want 0", got)
	}
	// Both fields still count as hot.
	if g.Hotness[0] != 100 || g.Hotness[1] != 100 {
		t.Fatalf("hotness = %v/%v", g.Hotness[0], g.Hotness[1])
	}
}

func TestHottestFirst(t *testing.T) {
	_, s, _ := figure4(t, 1, 10)
	g := &Graph{Struct: s, Hotness: map[int]float64{0: 5, 1: 50, 2: 5}}
	order := g.HottestFirst()
	if order[0] != 1 || order[1] != 0 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestDumpReport(t *testing.T) {
	p, s, pf := figure4(t, 3, 7)
	g := Build(p, pf, s, Options{})
	d := g.Dump()
	for _, want := range []string{"affinity graph for struct S", "field f3", "edge f1 -- f3", "group loop"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestPostInlineAffinity(t *testing.T) {
	// §7: "post-inline computation to better capture the effects of
	// inter-procedural paths". Build the same program twice: only the
	// inlined version exposes the caller/callee affinity edge.
	build := func(inline bool) (*ir.Program, *ir.StructType) {
		p := ir.NewProgram("postinline")
		s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"))
		p.AddStruct(s)
		helper := p.NewProc("helper")
		helper.Read(s, "b", ir.Shared(0))
		helper.Done()
		caller := p.NewProc("caller")
		caller.Loop(100, func(b *ir.Builder) {
			b.Read(s, "a", ir.Shared(0))
			b.Call("helper")
		})
		caller.Done()
		if inline {
			if err := p.Inline(ir.InlineOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		return p.MustFinalize(), s
	}

	pPlain, sPlain := build(false)
	pfPlain, _ := profile.StaticEstimate(pPlain, []string{"caller"})
	gPlain := Build(pPlain, pfPlain, sPlain, Options{})
	if got := gPlain.Weight(0, 1); got != 0 {
		t.Fatalf("without inlining, cross-proc affinity = %v, want 0", got)
	}

	pInl, sInl := build(true)
	pfInl, _ := profile.StaticEstimate(pInl, []string{"caller"})
	gInl := Build(pInl, pfInl, sInl, Options{})
	if got := gInl.Weight(0, 1); got != 100 {
		t.Fatalf("after inlining, affinity = %v, want 100", got)
	}
}

func TestMemoryDistanceThreshold(t *testing.T) {
	// Figure 1 meets §2's MemoryDistance: a loop reads f1, sweeps a large
	// buffer, then reads f2. With the threshold enabled, the sweep kills
	// the f1-f2 gain; the paper's default (threshold off) keeps it.
	p := ir.NewProgram("md")
	s := ir.NewStruct("S", ir.I64("f1"), ir.I64("f2"))
	p.AddStruct(s)
	p.AddRegion("big", 1<<22, false)
	b := p.NewProc("f")
	b.Loop(100, func(b *ir.Builder) {
		b.Read(s, "f1", ir.LoopVar())
		b.MemSweep("big", ir.Read, 65536) // 64 KiB of fresh data per iteration
		b.Read(s, "f2", ir.LoopVar())
	})
	b.Done()
	p.MustFinalize()
	pf, _ := profile.StaticEstimate(p, []string{"f"})

	plain := Build(p, pf, s, Options{})
	if got := plain.Weight(0, 1); got != 100 {
		t.Fatalf("threshold disabled: w = %v, want 100", got)
	}
	md := Build(p, pf, s, Options{MemoryDistanceThreshold: 32768})
	if got := md.Weight(0, 1); got != 0 {
		t.Fatalf("threshold enabled: w = %v, want 0", got)
	}
	// A lenient threshold keeps the edge.
	loose := Build(p, pf, s, Options{MemoryDistanceThreshold: 1 << 20})
	if got := loose.Weight(0, 1); got != 100 {
		t.Fatalf("loose threshold: w = %v, want 100", got)
	}
	// The group records its MD estimate for reports.
	found := false
	for _, gr := range md.Groups {
		if gr.Kind == LoopGroup && gr.MemoryDistance >= 65536 {
			found = true
		}
	}
	if !found {
		t.Fatal("loop group's MemoryDistance not recorded")
	}
}

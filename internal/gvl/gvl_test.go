package gvl

import (
	"strings"
	"testing"

	"structlayout/internal/coherence"
	"structlayout/internal/core"
	"structlayout/internal/exec"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/machine"
	"structlayout/internal/sampling"
)

func i64v(name string) Var { return Var{Name: name, Size: 8, Align: 8} }

func TestAssignPoolsAffinesSeparatesHazards(t *testing.T) {
	vars := []Var{i64v("walk_a"), i64v("walk_b"), i64v("ctr"), i64v("cold")}
	g := NewGraph(vars)
	g.Hotness[0], g.Hotness[1], g.Hotness[2] = 100, 90, 80
	g.AddGain(0, 1, 500)
	g.AddLoss(0, 2, 300)
	g.AddLoss(1, 2, 300)

	lay, err := Assign(g, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !lay.SameLine(0, 1) {
		t.Fatalf("affine globals split:\n%s", lay)
	}
	if lay.SameLine(0, 2) || lay.SameLine(1, 2) {
		t.Fatalf("hazard global pooled with its victims:\n%s", lay)
	}
	// Addresses respect alignment and don't collide.
	seen := map[int64]bool{}
	for v, a := range lay.Addr {
		if a%int64(vars[v].Align) != 0 {
			t.Fatalf("var %d at %d violates alignment", v, a)
		}
		if seen[a] {
			t.Fatalf("address %d reused", a)
		}
		seen[a] = true
	}
	if !strings.Contains(lay.String(), "pools") {
		t.Fatal("String output malformed")
	}
}

func TestAssignEmpty(t *testing.T) {
	if _, err := Assign(NewGraph(nil), 128); err == nil {
		t.Fatal("empty variable set accepted")
	}
}

// TestFromFLGEndToEnd drives the full pipeline: a program whose "globals"
// are a singleton struct, collected and analyzed like any struct, then
// converted to a GVL pool assignment.
func TestFromFLGEndToEnd(t *testing.T) {
	p := ir.NewProgram("globals")
	gs := ir.NewStruct("globals",
		ir.I64("g_walk0"), ir.I64("g_walk1"), ir.I64("g_ctr"), ir.I64("g_cfg"),
	)
	p.AddStruct(gs)
	rd := p.NewProc("reader")
	rd.Loop(400, func(b *ir.Builder) {
		b.Read(gs, "g_walk0", ir.Shared(0))
		b.Read(gs, "g_walk1", ir.Shared(0))
		b.Compute(25)
	})
	rd.Done()
	wr := p.NewProc("writer")
	wr.Loop(400, func(b *ir.Builder) {
		b.Write(gs, "g_ctr", ir.Shared(0))
		b.Compute(40)
	})
	wr.Done()
	p.MustFinalize()

	r, err := exec.NewRunner(p, exec.Config{
		Topo:     machine.Bus4(),
		Cache:    coherence.DefaultItanium(),
		Seed:     4,
		Sampling: &sampling.Config{IntervalCycles: 150, Seed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	gsLay, err := layout.Original(gs, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DefineArena(gsLay, 1); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 4; cpu++ {
		proc := "reader"
		if cpu%2 == 1 {
			proc = "writer"
		}
		if err := r.AddThread(cpu, proc, nil, 3); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	analysis, err := core.NewAnalysis(p, res.Profile, res.Trace, core.Options{LineSize: 128, SliceCycles: 3000})
	if err != nil {
		t.Fatal(err)
	}
	fg, err := analysis.BuildFLG("globals")
	if err != nil {
		t.Fatal(err)
	}
	lay, err := Assign(FromFLG(fg), 128)
	if err != nil {
		t.Fatal(err)
	}
	w0, w1, ctr := gs.FieldIndex("g_walk0"), gs.FieldIndex("g_walk1"), gs.FieldIndex("g_ctr")
	if !lay.SameLine(w0, w1) {
		t.Fatalf("walked globals split:\n%s", lay)
	}
	if lay.SameLine(w0, ctr) {
		t.Fatalf("counter pooled with walked globals:\n%s", lay)
	}
}

// Package gvl applies the paper's technique to global variable layout —
// the second problem domain its contribution list claims (§1.1: the
// CodeConcurrency technique "is also applicable to other related problem
// domains such as global variables layout") and the integration the
// conclusion plans with the compiler's GVL framework (McIntosh et al.,
// PACT'06).
//
// Global scalars differ from struct fields in one way only: there is no
// enclosing record, so the optimizer is free to *pool* arbitrary variables
// into cache-line-sized groups and give every pool its own line. The
// mechanics are otherwise the paper's: affinity says which globals want to
// share a line, CodeConcurrency says which must not.
//
// The implementation models the program's globals as fields of a synthetic
// singleton record, reuses the FLG and clustering machinery, and returns a
// pool assignment with concrete line-aligned addresses.
package gvl

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/affinity"
	"structlayout/internal/cluster"
	"structlayout/internal/flg"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
)

// Var is one global variable.
type Var struct {
	Name  string
	Size  int
	Align int
}

// Graph carries the per-variable-pair weights, in the FLG's semantics:
// Gain from co-access affinity, Loss from concurrent access with a write.
type Graph struct {
	Vars    []Var
	Gain    map[[2]int]float64
	Loss    map[[2]int]float64
	Hotness map[int]float64
}

// NewGraph builds an empty graph over the variables.
func NewGraph(vars []Var) *Graph {
	return &Graph{
		Vars:    vars,
		Gain:    make(map[[2]int]float64),
		Loss:    make(map[[2]int]float64),
		Hotness: make(map[int]float64),
	}
}

// AddGain accumulates affinity between two variables.
func (g *Graph) AddGain(a, b int, w float64) { g.Gain[affinity.PairKey(a, b)] += w }

// AddLoss accumulates concurrency loss between two variables.
func (g *Graph) AddLoss(a, b int, w float64) { g.Loss[affinity.PairKey(a, b)] += w }

// FromFLG converts a struct's Field Layout Graph into a GVL graph: the
// compiler's GVL framework consumes exactly the per-symbol analogue of the
// per-field data (the adapter a production integration would use).
func FromFLG(fg *flg.Graph) *Graph {
	vars := make([]Var, len(fg.Struct.Fields))
	for i, f := range fg.Struct.Fields {
		vars[i] = Var{Name: f.Name, Size: f.Size, Align: f.Align}
	}
	g := NewGraph(vars)
	for k, w := range fg.Gain {
		g.Gain[k] = w
	}
	for k, w := range fg.Loss {
		g.Loss[k] = w
	}
	for k, v := range fg.Hotness {
		g.Hotness[k] = v
	}
	return g
}

// Layout is a pool assignment: every pool occupies its own cache line(s).
type Layout struct {
	// Pools lists variable indices per pool, hottest pool first.
	Pools [][]int
	// Addr is each variable's assigned address.
	Addr []int64
	// Size is the total data-section size.
	Size int64
	// LineSize is the pooling granularity.
	LineSize int
	// Intra and Inter are the clustering quality metrics.
	Intra, Inter float64
}

// Assign pools the globals. Variables with negative mutual weight never
// share a line; affine variables pool together up to line capacity.
func Assign(g *Graph, lineSize int) (*Layout, error) {
	if len(g.Vars) == 0 {
		return nil, fmt.Errorf("gvl: no variables")
	}
	// Synthesize the singleton record and reuse the struct machinery.
	fields := make([]ir.Field, len(g.Vars))
	for i, v := range g.Vars {
		fields[i] = ir.Field{Name: v.Name, Size: v.Size, Align: v.Align}
	}
	st := ir.NewStruct("__globals", fields...)
	ag := &affinity.Graph{Struct: st, Weights: g.Gain, Hotness: g.Hotness}
	fg := &flg.Graph{Struct: st, Gain: g.Gain, Loss: g.Loss, Hotness: g.Hotness, Affinity: ag}

	res := cluster.Greedy(fg, lineSize)
	lay, err := layout.PackClusters(st, "gvl", res.Clusters, lineSize, layout.PackOptions{
		Separate: cluster.SeparatePredicate(fg, res.Clusters),
	})
	if err != nil {
		return nil, err
	}
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	out := &Layout{
		Pools:    res.Clusters,
		Addr:     make([]int64, len(g.Vars)),
		Size:     int64(lay.Size),
		LineSize: lineSize,
		Intra:    res.IntraWeight,
		Inter:    res.InterWeight,
	}
	for i := range g.Vars {
		out.Addr[i] = int64(lay.Offsets[i])
	}
	return out, nil
}

// LineOf returns the cache line a variable's address falls on.
func (l *Layout) LineOf(v int) int64 { return l.Addr[v] / int64(l.LineSize) }

// SameLine reports whether two variables share a cache line.
func (l *Layout) SameLine(a, b int) bool { return l.LineOf(a) == l.LineOf(b) }

// String renders the pool assignment.
func (l *Layout) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "global variable layout: %d pools, %d bytes (intra %.6g, inter %.6g)\n",
		len(l.Pools), l.Size, l.Intra, l.Inter)
	type entry struct {
		v    int
		addr int64
	}
	var all []entry
	for v := range l.Addr {
		all = append(all, entry{v, l.Addr[v]})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].addr < all[j].addr })
	curLine := int64(-1)
	for _, e := range all {
		if line := e.addr / int64(l.LineSize); line != curLine {
			curLine = line
			fmt.Fprintf(&sb, "  -- line %d --\n", curLine)
		}
		fmt.Fprintf(&sb, "  %6d  var#%d\n", e.addr, e.v)
	}
	return sb.String()
}

// Package report renders the semi-automatic tool's advisory output. The
// paper's tool does not just emit a layout: it "also outputs the factors
// that favored that layout decision" — intra- and inter-cluster edge
// weights and the edges with large positive or negative weight — so that a
// programmer can either adopt the suggested layout or fold the evidence
// into a manual one (§1, §1.1).
package report

import (
	"fmt"
	"strings"

	"structlayout/internal/cluster"
	"structlayout/internal/diag"
	"structlayout/internal/flg"
	"structlayout/internal/layout"
	"structlayout/internal/quality"
	"structlayout/internal/staticshare"
)

// Report bundles a layout suggestion with its supporting evidence.
type Report struct {
	// Graph is the FLG the suggestion derives from.
	Graph *flg.Graph
	// Clustering is the partition chosen.
	Clustering cluster.Result
	// Suggested is the produced layout.
	Suggested *layout.Layout
	// Original is the pre-existing layout, for the side-by-side diff.
	Original *layout.Layout
	// TopEdges bounds how many large-weight edges are listed each way.
	TopEdges int
	// Diagnostics carries the analysis pipeline's data-quality log; when
	// it records a degradation the advisory is visibly flagged, because a
	// layout suggested without (say) concurrency evidence cannot promise
	// the paper's false-sharing guarantees.
	Diagnostics *diag.Log
	// Quality is the composite measurement-quality assessment; when its
	// graded verdict is SUSPECT the advisory is flagged even though no
	// individual check crossed a degradation threshold.
	Quality *quality.Assessment
	// Static, when non-nil, is the static sharing classification digest
	// for this struct (internal/staticshare), including whether its
	// CycleLoss prior was blended into the graph. Nil keeps existing
	// advisories byte-identical.
	Static *staticshare.StructSummary
}

// Degraded reports whether the advisory rests on degraded evidence.
func (r *Report) Degraded() bool { return r.Diagnostics.Degraded() }

// QualityVerdict grades the advisory's evidence: the score-based verdict,
// escalated to Degraded when the diagnostics log recorded a fallback.
func (r *Report) QualityVerdict() quality.Verdict {
	v := r.Quality.Verdict()
	if r.Degraded() && v < quality.Degraded {
		v = quality.Degraded
	}
	return v
}

// String renders the full advisory text.
func (r *Report) String() string {
	var sb strings.Builder
	st := r.Graph.Struct
	fmt.Fprintf(&sb, "==== layout advisory for struct %s ====\n", st.Name)
	if r.Degraded() {
		sb.WriteString("!!!! DEGRADED: built from incomplete measurement data; see diagnostics below !!!!\n")
	} else if r.QualityVerdict() == quality.Suspect {
		sb.WriteString("???? SUSPECT: measurement quality below the calibrated threshold; re-collect before adopting unattended ????\n")
	}
	fmt.Fprintf(&sb, "fields: %d, dense size: %d bytes, line size: %d bytes\n\n",
		len(st.Fields), st.MinBytes(), r.Suggested.LineSize)

	fmt.Fprintf(&sb, "-- clustering: intra-cluster weight %.6g, inter-cluster weight %.6g --\n",
		r.Clustering.IntraWeight, r.Clustering.InterWeight)
	for i, c := range r.Clustering.Clusters {
		fmt.Fprintf(&sb, "cluster %2d (%s):", i, clusterHeat(r.Graph, c))
		for _, f := range c {
			fmt.Fprintf(&sb, " %s", st.Fields[f].Name)
		}
		fmt.Fprintln(&sb)
	}

	top := r.TopEdges
	if top <= 0 {
		top = 10
	}
	fmt.Fprintf(&sb, "\n-- large positive edges (co-locate) --\n")
	pos := 0
	for _, e := range r.Graph.Edges() {
		if e.Weight() <= 0 || pos >= top {
			break
		}
		pos++
		fmt.Fprintf(&sb, "  %-20s ~ %-20s  +%.6g (gain %.6g, loss %.6g)\n",
			st.Fields[e.F1].Name, st.Fields[e.F2].Name, e.Weight(), e.Gain, e.Loss)
	}
	fmt.Fprintf(&sb, "\n-- large negative edges (separate: potential false sharing) --\n")
	negs := r.Graph.NegativeEdges()
	for i := 0; i < len(negs) && i < top; i++ {
		e := negs[len(negs)-1-i] // most negative first
		fmt.Fprintf(&sb, "  %-20s x %-20s  %.6g (gain %.6g, loss %.6g)\n",
			st.Fields[e.F1].Name, st.Fields[e.F2].Name, e.Weight(), e.Gain, e.Loss)
	}

	if r.Static != nil {
		fmt.Fprintf(&sb, "\n-- static sharing --\n%s", r.Static)
	}

	if r.Quality != nil {
		fmt.Fprintf(&sb, "\n-- measurement quality --\n%s\n", r.Quality)
	}
	if r.Diagnostics.Len() > 0 {
		fmt.Fprintf(&sb, "\n-- diagnostics (data quality) --\n%s", r.Diagnostics.String())
	}

	fmt.Fprintf(&sb, "\n-- suggested layout --\n%s", r.Suggested.Dump())
	fmt.Fprintf(&sb, "\n-- C definition --\n%s", r.Suggested.EmitC())
	if r.Original != nil {
		fmt.Fprintf(&sb, "\n-- original layout --\n%s", r.Original.Dump())
		fmt.Fprintf(&sb, "\n-- movement --\n%s", Diff(r.Original, r.Suggested))
	}
	return sb.String()
}

// clusterHeat summarizes a cluster's total hotness.
func clusterHeat(g *flg.Graph, c []int) string {
	h := 0.0
	for _, f := range c {
		h += g.Hotness[f]
	}
	return fmt.Sprintf("hot=%.4g", h)
}

// Diff lists fields whose cache line changed between two layouts of the
// same struct.
func Diff(a, b *layout.Layout) string {
	var sb strings.Builder
	moved := 0
	for fi, f := range a.Struct.Fields {
		la, lb := a.LineOf(fi), b.LineOf(fi)
		if la != lb {
			moved++
			fmt.Fprintf(&sb, "  %-24s line %d -> line %d\n", f.Name, la, lb)
		}
	}
	if moved == 0 {
		return "  (no fields changed cache lines)\n"
	}
	return sb.String()
}

package report

import (
	"strings"
	"testing"

	"structlayout/internal/affinity"
	"structlayout/internal/cluster"
	"structlayout/internal/diag"
	"structlayout/internal/flg"
	"structlayout/internal/ir"
	"structlayout/internal/layout"
	"structlayout/internal/quality"
)

func fixture(t testing.TB) (*flg.Graph, cluster.Result, *layout.Layout, *layout.Layout) {
	t.Helper()
	st := ir.NewStruct("S", ir.I64("hot1"), ir.I64("hot2"), ir.I64("wr"), ir.I64("cold"))
	hot := map[int]float64{0: 100, 1: 90, 2: 40, 3: 1}
	ag := &affinity.Graph{Struct: st, Weights: map[[2]int]float64{}, Hotness: hot}
	g := &flg.Graph{
		Struct:   st,
		Gain:     map[[2]int]float64{{0, 1}: 500},
		Loss:     map[[2]int]float64{{0, 2}: 300, {1, 2}: 250},
		Hotness:  hot,
		Affinity: ag,
	}
	res := cluster.Greedy(g, 128)
	lay, err := layout.PackClusters(st, "flg-auto", res.Clusters, 128,
		layout.PackOptions{Separate: cluster.SeparatePredicate(g, res.Clusters)})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := layout.Original(st, 128)
	if err != nil {
		t.Fatal(err)
	}
	return g, res, lay, orig
}

func TestReportContents(t *testing.T) {
	g, res, lay, orig := fixture(t)
	r := &Report{Graph: g, Clustering: res, Suggested: lay, Original: orig, TopEdges: 5}
	text := r.String()
	for _, want := range []string{
		"layout advisory for struct S",
		"intra-cluster weight",
		"inter-cluster weight",
		"large positive edges",
		"hot1                 ~ hot2",
		"large negative edges",
		"x wr", // most negative listed (hot1 x wr)
		"suggested layout",
		"C definition",
		"uint64_t",
		"original layout",
		"movement",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

func TestReportWithoutOriginal(t *testing.T) {
	g, res, lay, _ := fixture(t)
	r := &Report{Graph: g, Clustering: res, Suggested: lay}
	text := r.String()
	if strings.Contains(text, "original layout") {
		t.Fatal("report should omit the original section when absent")
	}
}

func TestReportQualitySurfaced(t *testing.T) {
	g, res, lay, orig := fixture(t)
	mk := func(score float64) *Report {
		return &Report{Graph: g, Clustering: res, Suggested: lay, Original: orig,
			Quality: &quality.Assessment{Score: score, HasTrace: true}}
	}

	clean := mk(1.0).String()
	if !strings.Contains(clean, "-- measurement quality --") {
		t.Fatalf("assessment not surfaced:\n%s", clean)
	}
	if strings.Contains(clean, "SUSPECT") {
		t.Fatalf("clean report carries a SUSPECT banner:\n%s", clean)
	}

	suspect := mk(quality.SuspectBelow - 0.01).String()
	if !strings.Contains(suspect, "???? SUSPECT") {
		t.Fatalf("suspect-score report missing the banner:\n%s", suspect)
	}

	// A degraded diagnostic escalates past the numeric verdict: the
	// DEGRADED banner wins even when the score alone would grade OK.
	r := mk(1.0)
	r.Diagnostics = diag.NewLog()
	r.Diagnostics.Add(diag.Degraded, "core", "trace-quality", "test escalation")
	if v := r.QualityVerdict(); v != quality.Degraded {
		t.Fatalf("verdict = %v, want escalation to Degraded", v)
	}
	if text := r.String(); !strings.Contains(text, "!!!! DEGRADED") {
		t.Fatalf("escalated report missing the DEGRADED banner:\n%s", text)
	}
}

func TestDiff(t *testing.T) {
	_, _, lay, orig := fixture(t)
	d := Diff(orig, lay)
	if strings.Contains(d, "no fields changed") {
		t.Fatalf("expected movement between layouts:\n%s", d)
	}
	same := Diff(orig, orig)
	if !strings.Contains(same, "no fields changed") {
		t.Fatalf("identical layouts should report no movement: %s", same)
	}
}

package flg

import (
	"bytes"
	"strings"
	"testing"

	"structlayout/internal/affinity"
	"structlayout/internal/concurrency"
	"structlayout/internal/fieldmap"
	"structlayout/internal/ir"
	"structlayout/internal/profile"
)

// buildScenario: two procedures; reader loops over f0,f1 (affinity);
// writer hammers f2; a synthetic concurrency map says reader-block and
// writer-block run concurrently.
func buildScenario(t testing.TB) (*ir.Program, *ir.StructType, *affinity.Graph, *fieldmap.File, *concurrency.Map) {
	t.Helper()
	p := ir.NewProgram("flgtest")
	s := ir.NewStruct("S", ir.I64("f0"), ir.I64("f1"), ir.I64("f2"))
	p.AddStruct(s)
	rd := p.NewProc("reader")
	rd.Loop(100, func(b *ir.Builder) {
		b.Read(s, "f0", ir.Shared(0))
		b.Read(s, "f1", ir.Shared(0))
	})
	rd.Done()
	wr := p.NewProc("writer")
	wr.Loop(100, func(b *ir.Builder) {
		b.Write(s, "f2", ir.Shared(0))
	})
	wr.Done()
	p.MustFinalize()

	pf, err := profile.StaticEstimate(p, []string{"reader", "writer"})
	if err != nil {
		t.Fatal(err)
	}
	ag := affinity.Build(p, pf, s, affinity.Options{})
	fmf := fieldmap.Build(p)

	// Locate the two field-bearing blocks.
	var readerBlk, writerBlk ir.BlockID = -1, -1
	for _, b := range p.Blocks() {
		if len(b.FieldInstrs()) == 0 {
			continue
		}
		if b.Proc.Name == "reader" {
			readerBlk = b.Global
		} else {
			writerBlk = b.Global
		}
	}
	if readerBlk < 0 || writerBlk < 0 {
		t.Fatal("blocks not found")
	}
	cm := &concurrency.Map{CC: map[concurrency.Pair]float64{
		concurrency.MakePair(readerBlk, writerBlk): 50,
	}}
	return p, s, ag, fmf, cm
}

func TestGainAndLossCombine(t *testing.T) {
	_, _, ag, fmf, cm := buildScenario(t)
	g := Build(ag, cm, fmf, Options{})

	// Affinity: f0-f1 min(100,100)=100 gain, no loss (no write in pair's
	// concurrent blocks? f0,f1 read in readerBlk; writerBlk writes f2 only;
	// loss edges are (f0,f2) and (f1,f2)).
	if got := g.Weight(0, 1); got != 100 {
		t.Fatalf("w(f0,f1) = %v, want 100", got)
	}
	// Loss: CC=50 joins (f0,f2) and (f1,f2) with k2=1.
	if got := g.Weight(0, 2); got != -50 {
		t.Fatalf("w(f0,f2) = %v, want -50", got)
	}
	if got := g.Weight(1, 2); got != -50 {
		t.Fatalf("w(f1,f2) = %v, want -50", got)
	}
	if got := g.Weight(1, 1); got != 0 {
		t.Fatalf("self weight = %v", got)
	}
}

func TestK1K2Scaling(t *testing.T) {
	_, _, ag, fmf, cm := buildScenario(t)
	g := Build(ag, cm, fmf, Options{K1: 2, K2: 10})
	if got := g.Weight(0, 1); got != 200 {
		t.Fatalf("k1-scaled gain = %v, want 200", got)
	}
	if got := g.Weight(0, 2); got != -500 {
		t.Fatalf("k2-scaled loss = %v, want -500", got)
	}
}

func TestAliasOracleSuppressesLoss(t *testing.T) {
	_, _, ag, fmf, cm := buildScenario(t)
	g := Build(ag, cm, fmf, Options{
		AliasOracle: func(b1, b2 ir.BlockID) bool { return true },
	})
	if got := g.Weight(0, 2); got != 0 {
		t.Fatalf("alias-suppressed loss = %v, want 0", got)
	}
	if got := g.Weight(0, 1); got != 100 {
		t.Fatalf("gain must be unaffected, got %v", got)
	}
}

func TestReadOnlyConcurrencyNoLoss(t *testing.T) {
	// Two reader blocks concurrent: no write, no loss.
	p := ir.NewProgram("ro")
	s := ir.NewStruct("S", ir.I64("a"), ir.I64("b"))
	p.AddStruct(s)
	r1 := p.NewProc("r1")
	r1.Loop(10, func(b *ir.Builder) { b.Read(s, "a", ir.Shared(0)) })
	r1.Done()
	r2 := p.NewProc("r2")
	r2.Loop(10, func(b *ir.Builder) { b.Read(s, "b", ir.Shared(0)) })
	r2.Done()
	p.MustFinalize()
	pf, _ := profile.StaticEstimate(p, []string{"r1", "r2"})
	ag := affinity.Build(p, pf, s, affinity.Options{})
	fmf := fieldmap.Build(p)
	var blks []ir.BlockID
	for _, b := range p.Blocks() {
		if len(b.FieldInstrs()) > 0 {
			blks = append(blks, b.Global)
		}
	}
	cm := &concurrency.Map{CC: map[concurrency.Pair]float64{concurrency.MakePair(blks[0], blks[1]): 99}}
	g := Build(ag, cm, fmf, Options{})
	if got := g.Weight(0, 1); got != 0 {
		t.Fatalf("read-read concurrency produced loss %v", got)
	}
}

func TestEdgesSortedAndImportant(t *testing.T) {
	_, _, ag, fmf, cm := buildScenario(t)
	g := Build(ag, cm, fmf, Options{})
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("edges = %d, want 3", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i].Weight() > edges[i-1].Weight() {
			t.Fatal("edges not sorted by weight")
		}
	}
	// Important edges: all negatives (2) + top-1 positive.
	imp := g.ImportantEdges(1)
	if len(imp) != 3 {
		t.Fatalf("important edges = %d, want 3", len(imp))
	}
	imp0 := g.ImportantEdges(0)
	if len(imp0) != 2 {
		t.Fatalf("negatives only = %d, want 2", len(imp0))
	}
	if len(g.NegativeEdges()) != 2 {
		t.Fatal("NegativeEdges wrong")
	}
}

func TestSubgraph(t *testing.T) {
	_, _, ag, fmf, cm := buildScenario(t)
	g := Build(ag, cm, fmf, Options{})
	sg := g.Subgraph(g.NegativeEdges())
	if got := sg.Weight(0, 1); got != 0 {
		t.Fatalf("dropped edge still present: %v", got)
	}
	if got := sg.Weight(0, 2); got != -50 {
		t.Fatalf("kept edge = %v", got)
	}
	nodes := sg.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("subgraph nodes = %v", nodes)
	}
}

func TestBuildWithoutConcurrency(t *testing.T) {
	_, _, ag, _, _ := buildScenario(t)
	g := Build(ag, nil, nil, Options{})
	if got := g.Weight(0, 1); got != 100 {
		t.Fatalf("gain-only graph w = %v", got)
	}
	if len(g.Loss) != 0 {
		t.Fatal("loss appeared without concurrency data")
	}
}

func TestDump(t *testing.T) {
	_, _, ag, fmf, cm := buildScenario(t)
	g := Build(ag, cm, fmf, Options{})
	d := g.Dump()
	if !strings.Contains(d, "field layout graph for struct S") || !strings.Contains(d, "net=") {
		t.Fatalf("dump malformed:\n%s", d)
	}
}

func TestWriteDOT(t *testing.T) {
	_, _, ag, fmf, cm := buildScenario(t)
	g := Build(ag, cm, fmf, Options{})
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graph "S" {`,
		`label="f0"`,
		`#2a7d4f`, // co-location edge
		`#b3362a`, // separation edge
		`style=dashed`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// Isolated nodes appear only on request.
	gg := Build(ag, nil, nil, Options{})
	var lean, full bytes.Buffer
	_ = gg.WriteDOT(&lean, false)
	_ = gg.WriteDOT(&full, true)
	if strings.Contains(lean.String(), `label="f2"`) {
		t.Fatal("edge-less field rendered without withIsolated")
	}
	if !strings.Contains(full.String(), `label="f2"`) {
		t.Fatal("withIsolated did not render the edge-less field")
	}
}

// Package flg builds the paper's Field Layout Graph (§2): a weighted
// undirected graph over one struct's fields where
//
//	w(f1, f2) = CycleGain(f1, f2) − CycleLoss(f1, f2)
//
// CycleGain comes from the affinity graph (k1 × affinity, §3.1/§4.1);
// CycleLoss comes from CodeConcurrency joined with the field mapping file
// (§3.2/§4.3): for every pair of blocks (B1, B2) where B1 accesses f1, B2
// accesses f2, and at least one of the two accesses is a write,
//
//	CycleLoss(f1, f2) = k2 × Σ CC(B1, B2).
//
// The paper notes this over-approximates false sharing because it cannot
// distinguish struct instances; an optional alias oracle reproduces the
// suggested mitigation ("whenever alias analysis determines that the
// addresses of two structure instances do not alias ... no false sharing").
package flg

import (
	"fmt"
	"sort"
	"strings"

	"structlayout/internal/affinity"
	"structlayout/internal/concurrency"
	"structlayout/internal/diag"
	"structlayout/internal/fieldmap"
	"structlayout/internal/ir"
)

// Options tunes graph construction. K1 and K2 are the paper's tunable
// constants; zero values take defaults.
type Options struct {
	// K1 scales CycleGain (default 1).
	K1 float64
	// K2 scales CycleLoss (default 1). Larger K2 separates false-sharing
	// fields more aggressively at the cost of locality; the ablation bench
	// sweeps it.
	K2 float64
	// AliasOracle, when non-nil, reports that two blocks are known to only
	// ever touch distinct instances of the struct, suppressing their
	// CycleLoss contribution.
	AliasOracle func(b1, b2 ir.BlockID) bool
	// ExclusionOracle, when non-nil, reports that two specific accesses
	// (identified by block and field-instruction sequence) can never
	// execute concurrently — e.g. both run under the same shared lock
	// (internal/locks). Their CycleLoss contribution is suppressed.
	ExclusionOracle func(b1 ir.BlockID, seq1 int, b2 ir.BlockID, seq2 int) bool
	// Diag, when non-nil, receives graph-construction observations:
	// missing CycleLoss inputs (affinity-only graph) and concurrency
	// evidence that could not be joined with the FMF.
	Diag *diag.Log
}

func (o *Options) fillDefaults() {
	if o.K1 == 0 {
		o.K1 = 1
	}
	if o.K2 == 0 {
		o.K2 = 1
	}
}

// Edge is one weighted field pair, for reports.
type Edge struct {
	F1, F2 int
	Gain   float64
	Loss   float64
}

// Weight is the net edge weight.
func (e Edge) Weight() float64 { return e.Gain - e.Loss }

// Graph is the Field Layout Graph of one struct.
type Graph struct {
	Struct *ir.StructType
	// Gain and Loss hold the scaled components per canonical pair.
	Gain map[[2]int]float64
	Loss map[[2]int]float64
	// Hotness orders fields for the clustering seed choice.
	Hotness map[int]float64
	// Affinity retains the underlying affinity graph for reports.
	Affinity *affinity.Graph
}

// Build combines the affinity graph with the concurrency map and FMF into
// the FLG.
func Build(ag *affinity.Graph, cm *concurrency.Map, fmf *fieldmap.File, opts Options) *Graph {
	opts.fillDefaults()
	g := &Graph{
		Struct:   ag.Struct,
		Gain:     make(map[[2]int]float64, len(ag.Weights)),
		Loss:     make(map[[2]int]float64),
		Hotness:  ag.Hotness,
		Affinity: ag,
	}
	for k, w := range ag.Weights {
		g.Gain[k] = opts.K1 * w
	}
	if cm != nil && fmf != nil {
		g.addCycleLoss(cm, fmf, opts)
	} else {
		opts.Diag.Add(diag.Degraded, "flg", "no-cycleloss",
			"struct %s: concurrency map or FMF unavailable; graph carries CycleGain only", g.Struct.Name)
	}
	return g
}

// addCycleLoss joins the concurrency map with the FMF.
func (g *Graph) addCycleLoss(cm *concurrency.Map, fmf *fieldmap.File, opts Options) {
	touching := fmf.BlocksTouching(g.Struct.Name)
	if len(touching) == 0 {
		opts.Diag.Add(diag.Info, "flg", "no-fmf-blocks",
			"struct %s: FMF lists no blocks touching it; CycleLoss is zero", g.Struct.Name)
		return
	}
	// Deterministic block order.
	blocks := make([]ir.BlockID, 0, len(touching))
	for b := range touching {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })

	for i, b1 := range blocks {
		for j := i; j < len(blocks); j++ {
			b2 := blocks[j]
			cc := cm.Value(b1, b2)
			if cc == 0 {
				continue
			}
			if opts.AliasOracle != nil && opts.AliasOracle(b1, b2) {
				continue
			}
			e1, e2 := touching[b1], touching[b2]
			for _, a1 := range e1 {
				for _, a2 := range e2 {
					if a1.Acc != ir.Write && a2.Acc != ir.Write {
						continue // false sharing needs at least one write
					}
					if a1.Field == a2.Field {
						// Same field concurrently accessed is true sharing
						// (or per-instance traffic); layout cannot separate
						// a field from itself.
						continue
					}
					if opts.ExclusionOracle != nil && opts.ExclusionOracle(b1, a1.Seq, b2, a2.Seq) {
						continue // mutually excluded: never truly concurrent
					}
					g.Loss[affinity.PairKey(a1.Field, a2.Field)] += opts.K2 * cc
				}
			}
		}
	}
}

// Weight returns the net edge weight between two fields.
func (g *Graph) Weight(a, b int) float64 {
	if a == b {
		return 0
	}
	k := affinity.PairKey(a, b)
	return g.Gain[k] - g.Loss[k]
}

// Edges returns all edges with a non-zero component, sorted by descending
// net weight (stable field-pair tiebreak).
func (g *Graph) Edges() []Edge {
	keys := make(map[[2]int]bool, len(g.Gain)+len(g.Loss))
	for k := range g.Gain {
		keys[k] = true
	}
	for k := range g.Loss {
		keys[k] = true
	}
	edges := make([]Edge, 0, len(keys))
	for k := range keys {
		edges = append(edges, Edge{F1: k[0], F2: k[1], Gain: g.Gain[k], Loss: g.Loss[k]})
	}
	sort.Slice(edges, func(i, j int) bool {
		wi, wj := edges[i].Weight(), edges[j].Weight()
		if wi != wj {
			return wi > wj
		}
		if edges[i].F1 != edges[j].F1 {
			return edges[i].F1 < edges[j].F1
		}
		return edges[i].F2 < edges[j].F2
	})
	return edges
}

// NegativeEdges returns every edge with negative net weight.
func (g *Graph) NegativeEdges() []Edge {
	var out []Edge
	for _, e := range g.Edges() {
		if e.Weight() < 0 {
			out = append(out, e)
		}
	}
	return out
}

// ImportantEdges implements the §5.2 filter: all negative edges plus the
// topK positive edges (the paper uses 20).
func (g *Graph) ImportantEdges(topK int) []Edge {
	edges := g.Edges()
	var out []Edge
	positives := 0
	for _, e := range edges {
		switch {
		case e.Weight() < 0:
			out = append(out, e)
		case e.Weight() > 0 && positives < topK:
			out = append(out, e)
			positives++
		}
	}
	return out
}

// Subgraph builds a reduced FLG containing only the given edges; nodes with
// zero degree disappear (they keep their hotness for seed ordering). Used
// by the incremental/"best performance" mode (§5.2).
func (g *Graph) Subgraph(edges []Edge) *Graph {
	sg := &Graph{
		Struct:   g.Struct,
		Gain:     make(map[[2]int]float64, len(edges)),
		Loss:     make(map[[2]int]float64, len(edges)),
		Hotness:  g.Hotness,
		Affinity: g.Affinity,
	}
	for _, e := range edges {
		k := affinity.PairKey(e.F1, e.F2)
		if e.Gain != 0 {
			sg.Gain[k] = e.Gain
		}
		if e.Loss != 0 {
			sg.Loss[k] = e.Loss
		}
	}
	return sg
}

// Nodes returns the fields with at least one incident edge, ascending.
func (g *Graph) Nodes() []int {
	set := make(map[int]bool)
	for k := range g.Gain {
		set[k[0]] = true
		set[k[1]] = true
	}
	for k := range g.Loss {
		set[k[0]] = true
		set[k[1]] = true
	}
	out := make([]int, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// Dump renders the graph: the semi-automatic tool's evidence output of
// "inter-cluster and intra-cluster edge weights, and a list of edges having
// a large negative or positive weight" starts from this.
func (g *Graph) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "field layout graph for struct %s\n", g.Struct.Name)
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %-20s -- %-20s gain=%.6g loss=%.6g net=%.6g\n",
			g.Struct.Fields[e.F1].Name, g.Struct.Fields[e.F2].Name, e.Gain, e.Loss, e.Weight())
	}
	return sb.String()
}

package flg

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the graph in Graphviz DOT syntax, the visual companion
// to the tool's textual advisory: solid green edges want co-location
// (CycleGain dominates), dashed red edges demand separation (CycleLoss
// dominates), and node size follows hotness. Edge width scales with |net
// weight| relative to the graph's largest edge. Fields without any edge are
// omitted unless withIsolated is set.
func (g *Graph) WriteDOT(w io.Writer, withIsolated bool) error {
	edges := g.Edges()
	var maxAbs float64
	for _, e := range edges {
		if a := abs(e.Weight()); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var maxHot float64
	for _, h := range g.Hotness {
		if h > maxHot {
			maxHot = h
		}
	}
	if maxHot == 0 {
		maxHot = 1
	}

	if _, err := fmt.Fprintf(w, "graph %q {\n  layout=neato;\n  overlap=false;\n  node [shape=box, style=filled, fillcolor=\"#f5f1e8\"];\n", g.Struct.Name); err != nil {
		return err
	}
	nodes := map[int]bool{}
	for _, e := range edges {
		nodes[e.F1] = true
		nodes[e.F2] = true
	}
	if withIsolated {
		for fi := range g.Struct.Fields {
			nodes[fi] = true
		}
	}
	ordered := make([]int, 0, len(nodes))
	for fi := range nodes {
		ordered = append(ordered, fi)
	}
	sort.Ints(ordered)
	for _, fi := range ordered {
		hot := g.Hotness[fi] / maxHot
		fmt.Fprintf(w, "  f%d [label=%q, fontsize=%.0f];\n",
			fi, g.Struct.Fields[fi].Name, 10+hot*14)
	}
	for _, e := range edges {
		width := 0.5 + 4*abs(e.Weight())/maxAbs
		if e.Weight() >= 0 {
			fmt.Fprintf(w, "  f%d -- f%d [color=\"#2a7d4f\", penwidth=%.2f, label=\"+%.3g\"];\n",
				e.F1, e.F2, width, e.Weight())
		} else {
			fmt.Fprintf(w, "  f%d -- f%d [color=\"#b3362a\", style=dashed, penwidth=%.2f, label=\"%.3g\"];\n",
				e.F1, e.F2, width, e.Weight())
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

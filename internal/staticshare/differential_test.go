package staticshare

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"structlayout/internal/irtext"
)

// goldenPrograms returns every committed .slp program: the DSL goldens,
// the example programs, and the gofront lowered goldens.
func goldenPrograms(t *testing.T) map[string]*irtext.File {
	t.Helper()
	var paths []string
	for _, pattern := range []string{
		"../../examples/lint/*.slp",
		"../../examples/dslprogram/*.slp",
		"../driver/testdata/*.slp",
		"../gofront/testdata/*.slp",
	} {
		m, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, m...)
	}
	sort.Strings(paths)
	if len(paths) < 5 {
		t.Fatalf("found only %d golden .slp programs: %v", len(paths), paths)
	}
	files := make(map[string]*irtext.File, len(paths))
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		f, err := irtext.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		files[p] = f
	}
	return files
}

// TestSummaryEqualsExactOnGoldens is the differential gate for the
// summary-based classifier: on every committed golden program the
// summary path must produce classifications bit-identical to the exact
// per-access-pair walk — classes, certainty, evidence indices, and the
// float Weights, with no tolerance.
func TestSummaryEqualsExactOnGoldens(t *testing.T) {
	for path, f := range goldenPrograms(t) {
		cfg := FileConfig(f)
		sum, err := Analyze(f.Prog, cfg)
		if err != nil {
			t.Fatalf("%s: summary analyze: %v", path, err)
		}
		cfg.ExactClassify = true
		exact, err := Analyze(f.Prog, cfg)
		if err != nil {
			t.Fatalf("%s: exact analyze: %v", path, err)
		}
		if !reflect.DeepEqual(sum.Pairs, exact.Pairs) {
			t.Errorf("%s: summary and exact classifications differ\nsummary: %+v\nexact:   %+v",
				path, sum.Pairs, exact.Pairs)
		}
		if !reflect.DeepEqual(sum.Accesses, exact.Accesses) {
			t.Errorf("%s: collected accesses differ between paths", path)
		}
	}
}

// TestSummaryLintEqualsExactOnGoldens extends the differential gate
// through the linter: the ranked findings (including weights and the
// per-thread-lock check, which has its own memoized group walk) must be
// byte-identical between the two paths.
func TestSummaryLintEqualsExactOnGoldens(t *testing.T) {
	for path, f := range goldenPrograms(t) {
		sumF, _, err := LintFile(f, 128)
		if err != nil {
			t.Fatalf("%s: summary lint: %v", path, err)
		}
		exactF, _, err := LintFileExact(f, 128)
		if err != nil {
			t.Fatalf("%s: exact lint: %v", path, err)
		}
		sj, err := MarshalFindings(sumF)
		if err != nil {
			t.Fatal(err)
		}
		ej, err := MarshalFindings(exactF)
		if err != nil {
			t.Fatal(err)
		}
		if string(sj) != string(ej) {
			t.Errorf("%s: lint findings differ\nsummary: %s\nexact:   %s", path, sj, ej)
		}
	}
}

// TestSummaryEqualsExactSynthetic stresses the equivalence on synthetic
// programs that exercise the corners the goldens miss: recursion (SCC
// components), unknown arena counts, param bindings, sweeps, and
// frequency mixes from nested loops and branches.
func TestSummaryEqualsExactSynthetic(t *testing.T) {
	// (Recursive programs would exercise multi-node SCCs, but ir.Finalize
	// rejects call cycles, so that path stays defensive-only.)
	programs := map[string]string{
		"diamond-freq": `
program diamond
struct S {
    a i64
    b i64
    c i64
}
proc top {
    call left
    call right
}
proc left {
    loop 7 {
        write S.a shared 0
    }
}
proc right {
    if 0.25 {
        write S.b shared 0
    } else {
        read S.c shared 0
    }
}
arena S 1
thread 0 top iters 5
thread 1 top iters 2
`,
		"param-mix": `
program parammix
struct P {
    x i64
    y i64
}
proc w {
    write P.x param 0
    write P.y param 1
}
arena P 4
thread 0 w params 0 1 iters 2
thread 1 w params 0 2 iters 3
thread 2 w params 1 3 iters 1
`,
		"sweep-unknown-count": `
program sweep
struct U {
    a i64
    b i64
}
proc s {
    loop 4 {
        write U.a loopvar
    }
    read U.b shared 3
}
thread 0 s
thread 1 s
`,
	}
	for name, src := range programs {
		f, err := irtext.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg := FileConfig(f)
		if name == "sweep-unknown-count" {
			// Strip the FileConfig one-instance default so the
			// unknown-count path is actually exercised.
			delete(cfg.Arenas, "U")
		}
		sum, err := Analyze(f.Prog, cfg)
		if err != nil {
			t.Fatalf("%s: summary analyze: %v", name, err)
		}
		cfg.ExactClassify = true
		exact, err := Analyze(f.Prog, cfg)
		if err != nil {
			t.Fatalf("%s: exact analyze: %v", name, err)
		}
		if !reflect.DeepEqual(sum.Pairs, exact.Pairs) {
			t.Errorf("%s: summary and exact classifications differ\nsummary: %+v\nexact:   %+v",
				name, sum.Pairs, exact.Pairs)
		}
	}
}

// TestProcSummariesBuilt pins the summary-path plumbing: each procedure
// with field-touching instructions gets exactly one summary, and
// signature-identical accesses land in one group.
func TestProcSummariesBuilt(t *testing.T) {
	src := `
program summaries
struct S {
    a i64
    b i64
}
proc w {
    write S.a shared 0
    write S.a shared 0
    read S.b shared 0
}
proc q {
    call w
}
arena S 1
thread 0 w iters 1
thread 1 q iters 1
`
	f, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(f.Prog, FileConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	ps := res.ProcSummaryOf("w")
	if ps == nil {
		t.Fatal("no summary for proc w")
	}
	// Two identical S.a writes collapse into one group of count 2, plus
	// the S.b read: two groups.
	if len(ps.Groups) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(ps.Groups), ps.Groups)
	}
	var total int64
	for _, c := range ps.Groups[0].LocalFreq {
		total += c
	}
	if ps.Groups[0].Field != 0 || !ps.Groups[0].Write || total != 2 {
		t.Errorf("group 0 = %+v (member total %d), want the two S.a writes", ps.Groups[0], total)
	}
	if res.ProcSummaryOf("q") != nil {
		t.Error("proc q touches no fields but has a summary")
	}
	// The exact path must not build summaries at all.
	cfg := FileConfig(f)
	cfg.ExactClassify = true
	exact, err := Analyze(f.Prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact.ProcSummaryOf("w") != nil {
		t.Error("exact path built a summary")
	}
}
